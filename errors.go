package gputopdown

import (
	"errors"
	"fmt"

	"gputopdown/internal/cupti"
)

// Typed errors of the public API. Callers should test with errors.Is /
// errors.As rather than matching message strings; every constructor and
// Profile* method wraps these sentinels with contextual detail.
var (
	// ErrUnknownSuite reports a suite name that resolves to no applications.
	ErrUnknownSuite = errors.New("unknown benchmark suite")
	// ErrUnknownApp reports an application name absent from its suite.
	ErrUnknownApp = errors.New("unknown application")
	// ErrNoKernels reports an application run that launched no kernels, so
	// there is nothing to analyse.
	ErrNoKernels = errors.New("application launched no kernels")
)

// ErrKernelPanic marks a kernel invocation whose simulation panicked. The
// panic is isolated to that invocation: the device is reset and the rest of
// the application keeps profiling, with the failure recorded on
// AppResult.Failed (or returned, wrapped in a *KernelError, when every
// kernel fails). Test with errors.Is.
var ErrKernelPanic = cupti.ErrKernelPanic

// KernelError is the structured failure of one kernel invocation under
// profiling: which kernel, which replay pass (or -1 when the failure was not
// tied to a pass), and the underlying cause. Profile* methods wrap it, so
// errors.As recovers it through any number of layers:
//
//	var ke *gputopdown.KernelError
//	if errors.As(err, &ke) {
//	        log.Printf("kernel %s failed on pass %d: %v", ke.Kernel, ke.Pass, ke.Err)
//	}
type KernelError = cupti.KernelError

// GetApp resolves an application by suite and name, returning typed errors:
// ErrUnknownSuite when the suite has no applications at all, ErrUnknownApp
// when the suite exists but the name does not. LookupApp is the legacy
// boolean variant.
func GetApp(suite, name string) (*App, error) {
	app, ok := LookupApp(suite, name)
	if ok {
		return app, nil
	}
	if len(SuiteApps(suite)) == 0 {
		return nil, fmt.Errorf("gputopdown: suite %q: %w", suite, ErrUnknownSuite)
	}
	return nil, fmt.Errorf("gputopdown: app %s/%s: %w", suite, name, ErrUnknownApp)
}

package gputopdown

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"gputopdown/internal/kernel"
	"gputopdown/internal/serve"
	"gputopdown/internal/workloads"
)

// panicApp's only kernel loads far outside any allocation, which panics in
// the memory substrate: with every kernel failed, ProfileApp must return
// the isolation errors joined together.
func panicApp() *App {
	return &App{Name: "panics", Suite: "test", Run: func(ctx *workloads.RunCtx) error {
		b := kernel.NewBuilder("wild")
		gid := b.GlobalIDX()
		addr := b.IMad(gid, b.MovImm(4), b.MovImm(1<<30))
		b.Ldg(addr, 0, 4)
		b.Exit()
		return ctx.Exec(&kernel.Launch{
			Program: b.MustBuild(),
			Grid:    kernel.Dim3{X: 1},
			Block:   kernel.Dim3{X: 32},
		})
	}}
}

// TestTypedErrorUnwrapping audits the whole wrapping stack — fmt.Errorf
// chains, errors.Join aggregation, the retry layer's permanent marker, and
// the daemon runner — for errors.Is/errors.As transparency: however many
// layers wrap a failure, the public sentinels stay reachable.
func TestTypedErrorUnwrapping(t *testing.T) {
	ctx := context.Background()
	runner := NewJobRunner("rtx4000")

	cases := []struct {
		name string
		err  func() error
		is   []error
		as   bool // must unwrap to *KernelError
	}{
		{
			name: "unknown suite through GetApp",
			err:  func() error { _, err := GetApp("nosuite", "hotspot"); return err },
			is:   []error{ErrUnknownSuite},
		},
		{
			name: "unknown app through GetApp",
			err:  func() error { _, err := GetApp("rodinia", "noapp"); return err },
			is:   []error{ErrUnknownApp},
		},
		{
			name: "unknown app through the job runner's permanent marker",
			err: func() error {
				_, err := runner.Run(ctx, &JobRequest{Suite: "rodinia", App: "noapp"})
				return err
			},
			is: []error{ErrUnknownApp, serve.ErrPermanent},
		},
		{
			name: "unknown gpu through the job runner",
			err: func() error {
				_, err := runner.Run(ctx, &JobRequest{Suite: "rodinia", App: "hotspot", GPU: "nogpu"})
				return err
			},
			is: []error{serve.ErrPermanent},
		},
		{
			name: "no kernels through ProfileApp",
			err: func() error {
				empty := &App{Name: "empty", Suite: "test", Run: func(*workloads.RunCtx) error { return nil }}
				_, err := testProfiler(1).ProfileApp(ctx, empty)
				return err
			},
			is: []error{ErrNoKernels},
		},
		{
			name: "kernel panic through isolation, errors.Join and ProfileApp",
			err: func() error {
				_, err := testProfiler(1).ProfileApp(ctx, panicApp())
				return err
			},
			is: []error{ErrKernelPanic},
			as: true,
		},
		{
			name: "kernel panic through the job runner's permanent marker",
			err: func() error {
				_, perr := testProfiler(1).ProfileApp(ctx, panicApp())
				return serve.MarkPermanent(fmt.Errorf("job: %w", perr))
			},
			is: []error{ErrKernelPanic, serve.ErrPermanent},
			as: true,
		},
		{
			name: "cancellation through ProfileApp",
			err: func() error {
				cctx, cancel := context.WithCancel(ctx)
				cancel()
				app, _ := GetApp("rodinia", "hotspot")
				_, err := testProfiler(1).ProfileApp(cctx, app)
				return err
			},
			// A pre-cancelled run never reaches a kernel, so there is no
			// *KernelError — just the context sentinel.
			is: []error{context.Canceled},
		},
		{
			name: "aggregated app failures through ProfileApps and errors.Join",
			err: func() error {
				apps := []*App{panicApp(), {Name: "empty", Suite: "test", Run: func(*workloads.RunCtx) error { return nil }}}
				_, err := testProfiler(1).ProfileApps(ctx, apps)
				return err
			},
			is: []error{ErrKernelPanic, ErrNoKernels},
			as: true,
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.err()
			if err == nil {
				t.Fatal("expected an error")
			}
			for _, sentinel := range c.is {
				if !errors.Is(err, sentinel) {
					t.Errorf("errors.Is(%v, %v) = false", err, sentinel)
				}
			}
			if c.as {
				var ke *KernelError
				if !errors.As(err, &ke) {
					t.Errorf("errors.As(%v, *KernelError) = false", err)
				} else if ke.Kernel == "" {
					t.Error("KernelError lost its kernel name")
				}
			}
		})
	}
}

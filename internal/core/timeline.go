package core

import (
	"gputopdown/internal/obs"
	"gputopdown/internal/pmu"
	"gputopdown/internal/sm"
)

// TimelinePoint is one interval of an intra-kernel timeline: the Top-Down
// analysis of the counters accumulated during [StartCycle,
// StartCycle+Interval).
type TimelinePoint struct {
	StartCycle uint64
	Interval   uint64
	Analysis   *Analysis
}

// AnalyzeTimeline turns per-interval counter samples (sim.RunResult.Trace)
// into a sequence of Top-Down analyses — the paper's §V.D dynamic analysis
// pushed below kernel granularity. Intervals in which nothing executed are
// skipped. This consumes full counter snapshots and therefore only works on
// the simulator (real PMUs would need hardware PM sampling); the analysis
// itself is the unchanged Top-Down machinery.
func (an *Analyzer) AnalyzeTimeline(kernelName string, samples []sm.Counters, interval uint64) []TimelinePoint {
	var out []TimelinePoint
	if an.tracer != nil {
		spanStart := an.tracer.Now()
		defer func() {
			an.tracer.Complete(obs.PIDProfiler, 2, "core",
				"timeline "+kernelName, spanStart,
				map[string]any{"samples": len(samples), "points": len(out),
					"interval_cycles": interval})
		}()
	}
	for i := range samples {
		s := &samples[i]
		if s.InstExecuted == 0 && s.ActiveWarpCycles == 0 {
			continue
		}
		values := pmu.Values{}
		for _, id := range pmu.AllCounters() {
			values[id] = pmu.Read(s, id)
		}
		a := an.Analyze(kernelName, values)
		a.Weight = float64(s.ActiveCycles)
		out = append(out, TimelinePoint{
			StartCycle: uint64(i) * interval,
			Interval:   interval,
			Analysis:   a,
		})
	}
	return out
}

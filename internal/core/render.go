package core

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Row is one line of a flattened Top-Down hierarchy: the component's path
// (e.g. "backend/memory/imc_miss"), its depth, IPC contribution and share of
// IPC_MAX.
type Row struct {
	Path     string  `json:"path"`
	Level    int     `json:"level"`
	IPC      float64 `json:"ipc"`
	Fraction float64 `json:"fraction"`
}

// Rows flattens the analysis into hierarchy rows, depth-first, suitable for
// CSV/JSON export or plotting.
func (a *Analysis) Rows() []Row {
	var rows []Row
	add := func(path string, level int, v float64) {
		rows = append(rows, Row{Path: path, Level: level, IPC: v, Fraction: a.Fraction(v)})
	}
	add("retire", 1, a.Retire)
	add("divergence", 1, a.Divergence)
	if a.Level >= Level2 {
		add("divergence/branch", 2, a.Branch)
		add("divergence/replay", 2, a.Replay)
		add("frontend", 1, a.Frontend)
		add("frontend/fetch", 2, a.Fetch)
		a.addDetail(&rows, "frontend/fetch/", a.FetchDetail)
		add("frontend/decode", 2, a.Decode)
		a.addDetail(&rows, "frontend/decode/", a.DecodeDetail)
		add("backend", 1, a.Backend)
		add("backend/core", 2, a.Core)
		a.addDetail(&rows, "backend/core/", a.CoreDetail)
		add("backend/memory", 2, a.Memory)
		a.addDetail(&rows, "backend/memory/", a.MemoryDetail)
	} else {
		add("stall", 1, a.Stall)
	}
	return rows
}

func (a *Analysis) addDetail(rows *[]Row, prefix string, d map[string]float64) {
	if a.Level < Level3 || d == nil {
		return
	}
	for _, k := range sortedKeys(d) {
		*rows = append(*rows, Row{Path: prefix + k, Level: 3, IPC: d[k], Fraction: a.Fraction(d[k])})
	}
}

// CSV renders the analysis as comma-separated hierarchy rows with a header.
func (a *Analysis) CSV() string {
	var sb strings.Builder
	sb.WriteString("kernel,gpu,tool,component,level,ipc,fraction\n")
	for _, r := range a.Rows() {
		fmt.Fprintf(&sb, "%s,%s,%s,%s,%d,%.6f,%.6f\n",
			csvEscape(a.Kernel), csvEscape(a.GPU), a.Tool, r.Path, r.Level, r.IPC, r.Fraction)
	}
	return sb.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// jsonAnalysis is the stable export schema.
type jsonAnalysis struct {
	Kernel     string             `json:"kernel"`
	GPU        string             `json:"gpu"`
	CC         string             `json:"compute_capability"`
	Tool       string             `json:"tool"`
	Level      int                `json:"level"`
	Normalized bool               `json:"normalized"`
	IPCMax     float64            `json:"ipc_max"`
	Rows       []Row              `json:"components"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// JSONOption configures Analysis.JSON export.
type JSONOption func(*jsonOptions)

type jsonOptions struct{ canonical bool }

// CanonicalJSON normalises the export for byte-stable comparison: negative
// zeros (which can fall out of clamped float arithmetic) become positive
// zeros, so two analyses that agree numerically always marshal to identical
// bytes. Map keys are already sorted by encoding/json; nothing else in the
// schema is run-dependent.
func CanonicalJSON() JSONOption { return func(o *jsonOptions) { o.canonical = true } }

func canonFloat(v float64) float64 {
	if v == 0 {
		return 0 // collapses -0.0 to +0.0
	}
	return v
}

// JSON renders the analysis as a stable JSON document including the raw
// profiler metrics it consumed.
func (a *Analysis) JSON(opts ...JSONOption) ([]byte, error) {
	var o jsonOptions
	for _, opt := range opts {
		opt(&o)
	}
	ja := jsonAnalysis{
		Kernel:     a.Kernel,
		GPU:        a.GPU,
		CC:         a.CC.String(),
		Tool:       a.Tool,
		Level:      a.Level,
		Normalized: a.Normalized,
		IPCMax:     a.IPCMax,
		Rows:       a.Rows(),
		Metrics:    a.Metrics,
	}
	if o.canonical {
		ja.IPCMax = canonFloat(ja.IPCMax)
		rows := make([]Row, len(ja.Rows))
		for i, r := range ja.Rows {
			r.IPC = canonFloat(r.IPC)
			r.Fraction = canonFloat(r.Fraction)
			rows[i] = r
		}
		ja.Rows = rows
		if ja.Metrics != nil {
			m := make(map[string]float64, len(ja.Metrics))
			for k, v := range ja.Metrics {
				m[k] = canonFloat(v)
			}
			ja.Metrics = m
		}
	}
	return json.MarshalIndent(ja, "", "  ")
}

package core

import (
	"math"
	"strings"
	"testing"

	"gputopdown/internal/gpu"
	"gputopdown/internal/pmu"
)

func TestRooflineComputeBound(t *testing.T) {
	spec := gpu.QuadroRTX4000()
	v := pmu.Values{
		pmu.CtrInstExecuted: 2_000_000,
		pmu.CtrActiveCycles: 1_000_000,
		pmu.CtrLoadSectors:  100, // almost no memory traffic
		pmu.CtrStoreSectors: 0,
	}
	r := ComputeRoofline(spec, v)
	if r == nil {
		t.Fatal("nil roofline")
	}
	if r.Bound != "compute" {
		t.Errorf("bound = %s, want compute (intensity %.3f)", r.Bound, r.IntensityInstPerByte)
	}
	// IPC 2 on a 36-SM device at IPC_MAX 2: at the peak.
	if math.Abs(r.CeilingFraction-1) > 0.01 {
		t.Errorf("ceiling fraction = %g, want ~1", r.CeilingFraction)
	}
	if r.PeakGIPS <= 0 || r.AchievedGIPS <= 0 {
		t.Errorf("non-positive throughput: %+v", r)
	}
}

func TestRooflineMemoryBound(t *testing.T) {
	spec := gpu.QuadroRTX4000()
	// A bandwidth-starved profile: 128 MB of traffic for 100k instructions
	// over 1M cycles on each of the 36 SMs.
	v := pmu.Values{
		pmu.CtrInstExecuted: 100_000,
		pmu.CtrActiveCycles: 36_000_000,
		pmu.CtrLoadSectors:  3_000_000,
		pmu.CtrStoreSectors: 1_000_000,
	}
	r := ComputeRoofline(spec, v)
	if r.Bound != "memory" {
		t.Errorf("bound = %s, want memory", r.Bound)
	}
	if r.MemCeilingGIPS >= r.PeakGIPS {
		t.Errorf("memory ceiling %.2f not below peak %.2f", r.MemCeilingGIPS, r.PeakGIPS)
	}
	if r.CeilingFraction <= 0 || r.CeilingFraction > 1.5 {
		t.Errorf("ceiling fraction = %g", r.CeilingFraction)
	}
}

func TestRooflineNilOnEmpty(t *testing.T) {
	if ComputeRoofline(gpu.QuadroRTX4000(), pmu.Values{}) != nil {
		t.Error("empty values produced a roofline")
	}
}

func TestRooflineNoMemoryTraffic(t *testing.T) {
	r := ComputeRoofline(gpu.QuadroRTX4000(), pmu.Values{
		pmu.CtrInstExecuted: 1000,
		pmu.CtrActiveCycles: 1000,
	})
	if r.Bound != "compute" {
		t.Errorf("traffic-free kernel bound = %s", r.Bound)
	}
}

func TestRooflineString(t *testing.T) {
	r := ComputeRoofline(gpu.QuadroRTX4000(), pmu.Values{
		pmu.CtrInstExecuted: 1000,
		pmu.CtrActiveCycles: 1000,
		pmu.CtrLoadSectors:  1000,
	})
	s := r.String()
	for _, want := range []string{"GIPS", "inst/B", "bound"} {
		if !strings.Contains(s, want) {
			t.Errorf("roofline string missing %q: %s", want, s)
		}
	}
}

func TestRooflineRequestValid(t *testing.T) {
	req := RooflineRequest()
	if len(req) < 4 {
		t.Fatalf("request too small: %v", req)
	}
	if _, err := pmu.BuildSchedule(req); err != nil {
		t.Fatal(err)
	}
}

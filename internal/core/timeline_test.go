package core

import (
	"testing"

	"gputopdown/internal/gpu"
	"gputopdown/internal/obs"
	"gputopdown/internal/sm"
)

// activeSample builds a plausible non-idle interval counter delta.
func activeSample(scale uint64) sm.Counters {
	c := sm.Counters{
		ActiveCycles:       100 * scale,
		ElapsedCycles:      120 * scale,
		ActiveWarpCycles:   800 * scale,
		SubpActiveCycles:   400 * scale,
		InstExecuted:       150 * scale,
		InstIssued:         160 * scale,
		ThreadInstExecuted: 150 * 32 * scale,
	}
	c.WarpStateCycles[sm.StateSelected] = 160 * scale
	c.WarpStateCycles[sm.StateLongScoreboard] = 640 * scale
	return c
}

// TestAnalyzeTimelineAllIdle: a run whose every interval is idle must yield
// an empty timeline, not a slice of degenerate analyses.
func TestAnalyzeTimelineAllIdle(t *testing.T) {
	an := NewAnalyzer(gpu.QuadroRTX4000(), Level1)
	idle := make([]sm.Counters, 8)
	// Idle intervals may still accrue elapsed cycles (warps all drained).
	for i := range idle {
		idle[i].ElapsedCycles = 100
	}
	points := an.AnalyzeTimeline("k", idle, 100)
	if len(points) != 0 {
		t.Fatalf("all-idle run produced %d timeline points, want 0", len(points))
	}
	if points := an.AnalyzeTimeline("k", nil, 100); len(points) != 0 {
		t.Fatalf("nil samples produced %d points, want 0", len(points))
	}
}

// TestAnalyzeTimelineWeightsAndPositions: every returned point must carry a
// populated Weight (its interval's active cycles) and the StartCycle of the
// sample index it came from, idle gaps included.
func TestAnalyzeTimelineWeightsAndPositions(t *testing.T) {
	an := NewAnalyzer(gpu.QuadroRTX4000(), Level1)
	const interval = 100
	samples := []sm.Counters{
		activeSample(1),
		{}, // idle gap — skipped, but indices after it keep their position
		activeSample(2),
		activeSample(3),
	}
	points := an.AnalyzeTimeline("k", samples, interval)
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3 (idle interval skipped)", len(points))
	}
	wantStarts := []uint64{0, 200, 300}
	wantWeights := []float64{100, 200, 300}
	for i, p := range points {
		if p.Analysis == nil {
			t.Fatalf("point %d has nil Analysis", i)
		}
		if p.Analysis.Weight == 0 {
			t.Errorf("point %d Weight not populated", i)
		}
		if p.Analysis.Weight != wantWeights[i] {
			t.Errorf("point %d Weight = %v, want %v", i, p.Analysis.Weight, wantWeights[i])
		}
		if p.StartCycle != wantStarts[i] {
			t.Errorf("point %d StartCycle = %d, want %d", i, p.StartCycle, wantStarts[i])
		}
		if p.Interval != interval {
			t.Errorf("point %d Interval = %d, want %d", i, p.Interval, interval)
		}
		if p.Analysis.Retire <= 0 {
			t.Errorf("point %d Retire = %v, want > 0", i, p.Analysis.Retire)
		}
	}
}

// TestAnalyzeTimelineObserverSpan: with a tracer attached the timeline
// analysis itself becomes a span carrying sample/point counts.
func TestAnalyzeTimelineObserverSpan(t *testing.T) {
	an := NewAnalyzer(gpu.QuadroRTX4000(), Level1)
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	an.SetObserver(tr, reg)
	samples := []sm.Counters{activeSample(1), activeSample(2)}
	points := an.AnalyzeTimeline("k", samples, 50)
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	var found bool
	for _, e := range tr.Events() {
		if e.Ph == "X" && e.Name == "timeline k" {
			found = true
			if e.Args["samples"].(int) != 2 || e.Args["points"].(int) != 2 {
				t.Errorf("timeline span args = %v", e.Args)
			}
		}
	}
	if !found {
		t.Error("no timeline span recorded")
	}
	// Each interval analysis must also have fed the analysis self-metrics.
	if got := reg.Counter("analysis_total", "", nil).Value(); got != 2 {
		t.Errorf("analysis_total = %v, want 2", got)
	}
}

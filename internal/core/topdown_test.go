package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"gputopdown/internal/gpu"
	"gputopdown/internal/pmu"
	"gputopdown/internal/sm"
)

// ncuValues builds a counter set for the Turing path. ipc/issued are per
// active cycle; eff is warp efficiency in [0,1]; stallCycles spreads
// warp-cycles across the given states.
func ncuValues(activeCycles, instExec, instIss uint64, eff float64, states map[sm.WarpState]uint64) pmu.Values {
	v := pmu.Values{
		pmu.CtrActiveCycles:       activeCycles,
		pmu.CtrInstExecuted:       instExec,
		pmu.CtrInstIssued:         instIss,
		pmu.CtrThreadInstExecuted: uint64(float64(instExec*32) * eff),
	}
	var warpCycles uint64
	for s, c := range states {
		v[pmu.StallCounter(s)] = c
		warpCycles += c
	}
	v[pmu.CtrActiveWarpCycles] = warpCycles
	return v
}

func turingAnalyzer(level int) *Analyzer { return NewAnalyzer(gpu.QuadroRTX4000(), level) }
func pascalAnalyzer(level int) *Analyzer { return NewAnalyzer(gpu.GTX1070(), level) }

func TestLevelCapOnPascal(t *testing.T) {
	if a := pascalAnalyzer(3); a.Level != Level2 {
		t.Errorf("Pascal level-3 request capped to %d, want 2", a.Level)
	}
	if a := turingAnalyzer(3); a.Level != Level3 {
		t.Errorf("Turing level = %d, want 3", a.Level)
	}
	if a := turingAnalyzer(0); a.Level != Level1 {
		t.Errorf("level 0 clamped to %d, want 1", a.Level)
	}
	if a := turingAnalyzer(9); a.Level != Level3 {
		t.Errorf("level 9 clamped to %d, want 3", a.Level)
	}
}

func TestToolDispatch(t *testing.T) {
	if got := turingAnalyzer(1).Registry.Tool(); got != "ncu" {
		t.Errorf("Turing tool = %s", got)
	}
	if got := pascalAnalyzer(1).Registry.Tool(); got != "nvprof" {
		t.Errorf("Pascal tool = %s", got)
	}
}

// TestEquationIdentities checks the paper's equations (1)-(5),(7) on a
// synthetic profile.
func TestEquationIdentities(t *testing.T) {
	// IPC_REPORTED=1.0, warp_eff=0.75, issued=1.2 on IPC_MAX=2.
	v := ncuValues(1000, 1000, 1200, 0.75, map[sm.WarpState]uint64{
		sm.StateLongScoreboard: 500,
		sm.StateNoInstruction:  100,
	})
	a := turingAnalyzer(3).Analyze("k", v)
	if math.Abs(a.Retire-0.75) > 1e-9 {
		t.Errorf("Retire = %g, want 0.75", a.Retire)
	}
	if math.Abs(a.Branch-0.25) > 1e-9 {
		t.Errorf("Branch = %g, want 0.25", a.Branch)
	}
	if math.Abs(a.Replay-0.2) > 1e-9 {
		t.Errorf("Replay = %g, want 0.2", a.Replay)
	}
	if math.Abs(a.Divergence-0.45) > 1e-9 {
		t.Errorf("Divergence = %g", a.Divergence)
	}
	// eq (7): stall = 2 - 0.75 - 0.45 = 0.8.
	if math.Abs(a.Stall-0.8) > 1e-9 {
		t.Errorf("Stall = %g, want 0.8", a.Stall)
	}
	// eq (1): components close.
	if sum := a.Retire + a.Divergence + a.Stall; math.Abs(sum-a.IPCMax) > 1e-9 {
		t.Errorf("eq(1) violated: %g != %g", sum, a.IPCMax)
	}
	// Normalised mode: Frontend+Backend == Stall.
	if math.Abs(a.Frontend+a.Backend-a.Stall) > 1e-9 {
		t.Errorf("normalised FE+BE = %g != stall %g", a.Frontend+a.Backend, a.Stall)
	}
	// 500/600 of the stall is memory (long_scoreboard), 100/600 fetch.
	if math.Abs(a.Memory-0.8*5.0/6.0) > 1e-9 {
		t.Errorf("Memory = %g", a.Memory)
	}
	if math.Abs(a.Fetch-0.8/6.0) > 1e-9 {
		t.Errorf("Fetch = %g", a.Fetch)
	}
	// Level 3 details present and summing to their level-2 parents.
	var memSum float64
	for _, x := range a.MemoryDetail {
		memSum += x
	}
	if math.Abs(memSum-a.Memory) > 1e-9 {
		t.Errorf("memory detail sum %g != %g", memSum, a.Memory)
	}
	if a.MemoryDetail["long_scoreboard"] == 0 {
		t.Error("long_scoreboard detail missing")
	}
}

func TestRawModeUsesPaperEquations(t *testing.T) {
	// Unnormalised mode follows eq. (8)-(14) literally: pct/100 x stall.
	an := turingAnalyzer(2)
	an.Normalize = false
	v := ncuValues(1000, 500, 500, 1.0, map[sm.WarpState]uint64{
		sm.StateLongScoreboard: 400, // 40% of warp-cycles
		sm.StateNotSelected:    600, // unlisted in tables; leaves residual
	})
	a := an.Analyze("k", v)
	// stall = 2 - 0.5 = 1.5; memory = 40/100 * 1.5 = 0.6.
	if math.Abs(a.Memory-0.6) > 1e-9 {
		t.Errorf("raw Memory = %g, want 0.6", a.Memory)
	}
	if a.Frontend+a.Backend >= a.Stall {
		t.Error("raw mode should leave a residual with unlisted states")
	}
}

func TestNvprofPathEquations(t *testing.T) {
	// Pascal path: nvprof metrics drive the same equations.
	v := pmu.Values{
		pmu.CtrActiveCycles:       1000,
		pmu.CtrInstExecuted:       2000,
		pmu.CtrInstIssued:         2200,
		pmu.CtrThreadInstExecuted: 2000 * 32, // full efficiency
	}
	// nvprof stall groups: memory_dependency <- long_scoreboard.
	v[pmu.StallCounter(sm.StateLongScoreboard)] = 300
	v[pmu.StallCounter(sm.StateNoInstruction)] = 100
	a := pascalAnalyzer(2).Analyze("k", v)
	if a.Tool != "nvprof" {
		t.Fatalf("tool = %s", a.Tool)
	}
	// ipc=2, eff=1: retire=2, branch=0, replay=0.2, stall=4-2.2=1.8.
	if math.Abs(a.Retire-2) > 1e-9 || math.Abs(a.Replay-0.2) > 1e-9 {
		t.Errorf("retire/replay = %g/%g", a.Retire, a.Replay)
	}
	if math.Abs(a.Stall-1.8) > 1e-9 {
		t.Errorf("stall = %g, want 1.8", a.Stall)
	}
	// memory:fetch = 3:1 of the stall.
	if math.Abs(a.Memory-1.35) > 1e-9 || math.Abs(a.Fetch-0.45) > 1e-9 {
		t.Errorf("memory/fetch = %g/%g, want 1.35/0.45", a.Memory, a.Fetch)
	}
	if a.FetchDetail != nil {
		t.Error("nvprof path produced level-3 detail")
	}
}

// Property: for arbitrary counter values the analysis is well-formed: no
// negative components, eq (1) closes in normalised mode, details sum to
// parents.
func TestAnalysisWellFormedProperty(t *testing.T) {
	an := turingAnalyzer(3)
	f := func(exec, issExtra, effRaw uint16, s1, s2, s3, s4 uint16) bool {
		active := uint64(1000)
		instExec := uint64(exec)
		instIss := instExec + uint64(issExtra)%500
		// Keep issued within the dispatch bound so eq (7) stays positive.
		if instIss > active*2 {
			instIss = active * 2
		}
		if instExec > instIss {
			instExec = instIss
		}
		eff := float64(effRaw%1001) / 1000
		v := ncuValues(active, instExec, instIss, eff, map[sm.WarpState]uint64{
			sm.StateLongScoreboard:   uint64(s1),
			sm.StateNoInstruction:    uint64(s2),
			sm.StateMathPipeThrottle: uint64(s3),
			sm.StateBarrier:          uint64(s4),
		})
		a := an.Analyze("q", v)
		for _, x := range []float64{a.Retire, a.Branch, a.Replay, a.Fetch, a.Decode, a.Core, a.Memory, a.Stall} {
			if x < -1e-9 || math.IsNaN(x) {
				return false
			}
		}
		if math.Abs(a.Retire+a.Divergence+a.Frontend+a.Backend-a.IPCMax) > 1e-6 {
			// Closure holds whenever at least one listed stall state is
			// non-zero; with all-zero states the stall cannot be attributed.
			if s1|s2|s3|s4 != 0 {
				return false
			}
		}
		sumDetail := func(d map[string]float64) float64 {
			var t float64
			for _, x := range d {
				t += x
			}
			return t
		}
		if math.Abs(sumDetail(a.MemoryDetail)-a.Memory) > 1e-6 {
			return false
		}
		if math.Abs(sumDetail(a.FetchDetail)-a.Fetch) > 1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregateWeighted(t *testing.T) {
	an := turingAnalyzer(2)
	a1 := an.Analyze("k1", ncuValues(1000, 1500, 1500, 1.0, map[sm.WarpState]uint64{sm.StateLongScoreboard: 100}))
	a2 := an.Analyze("k2", ncuValues(1000, 500, 500, 1.0, map[sm.WarpState]uint64{sm.StateNoInstruction: 100}))
	a1.Weight = 3000
	a2.Weight = 1000
	agg := Aggregate("app", []*Analysis{a1, a2})
	wantRetire := (a1.Retire*3 + a2.Retire) / 4
	if math.Abs(agg.Retire-wantRetire) > 1e-9 {
		t.Errorf("aggregate retire = %g, want %g", agg.Retire, wantRetire)
	}
	if agg.Kernel != "app" || agg.Weight != 4000 {
		t.Errorf("aggregate meta: %s %g", agg.Kernel, agg.Weight)
	}
	// Closure preserved by linearity.
	if math.Abs(agg.Retire+agg.Divergence+agg.Frontend+agg.Backend-agg.IPCMax) > 1e-9 {
		t.Error("aggregate closure violated")
	}
	if Aggregate("none", nil) != nil {
		t.Error("empty aggregate should be nil")
	}
}

func TestAggregateDefaultsWeight(t *testing.T) {
	an := turingAnalyzer(1)
	a1 := an.Analyze("k1", ncuValues(1000, 2000, 2000, 1.0, nil))
	a2 := an.Analyze("k2", ncuValues(1000, 0, 0, 1.0, nil))
	agg := Aggregate("app", []*Analysis{a1, a2})
	if math.Abs(agg.Retire-1.0) > 1e-9 { // (2.0 + 0)/2
		t.Errorf("unweighted aggregate retire = %g, want 1.0", agg.Retire)
	}
}

func TestMetricNamesMatchLevel(t *testing.T) {
	l1 := turingAnalyzer(1).MetricNames()
	l3 := turingAnalyzer(3).MetricNames()
	if len(l1) != 3 {
		t.Errorf("level-1 ncu needs %d metrics, want 3", len(l1))
	}
	if len(l3) != 3+16 {
		t.Errorf("level-3 ncu needs %d metrics, want 19", len(l3))
	}
	p2 := pascalAnalyzer(2).MetricNames()
	if len(p2) != 11 {
		t.Errorf("level-2 nvprof needs %d metrics, want 11", len(p2))
	}
}

func TestCounterRequestSchedulesToEightPasses(t *testing.T) {
	req, err := turingAnalyzer(3).CounterRequest()
	if err != nil {
		t.Fatal(err)
	}
	sched, err := pmu.BuildSchedule(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.NumPasses(); got != 8 {
		t.Errorf("level-3 analysis needs %d passes, want 8 (paper §V.E)", got)
	}
	// Level 1 should be single-pass: all free-running counters.
	req1, _ := turingAnalyzer(1).CounterRequest()
	sched1, _ := pmu.BuildSchedule(req1)
	if got := sched1.NumPasses(); got != 1 {
		t.Errorf("level-1 analysis needs %d passes, want 1", got)
	}
}

func TestStringRendering(t *testing.T) {
	v := ncuValues(1000, 1000, 1100, 0.9, map[sm.WarpState]uint64{
		sm.StateLongScoreboard: 300,
		sm.StateIMCMiss:        100,
	})
	a := turingAnalyzer(3).Analyze("srad_cuda_1", v)
	s := a.String()
	for _, want := range []string{"srad_cuda_1", "Retire", "Divergence", "Frontend", "Backend", "Memory", "long_scoreboard", "imc_miss"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
	a1 := turingAnalyzer(1).Analyze("k", v)
	if !strings.Contains(a1.String(), "Stall") {
		t.Error("level-1 rendering missing Stall line")
	}
}

func TestFractionAndDegradation(t *testing.T) {
	a := &Analysis{IPCMax: 2, Retire: 0.5}
	if a.Fraction(1) != 0.5 {
		t.Error("Fraction broken")
	}
	if a.Degradation() != 1.5 {
		t.Error("Degradation broken")
	}
	z := &Analysis{}
	if z.Fraction(1) != 0 {
		t.Error("zero IPCMax Fraction not guarded")
	}
}

func TestWarpEfficiencyClamped(t *testing.T) {
	// Divergence mitigation can push thread_inst above inst*32 in theory;
	// efficiency must clamp at 1 so Branch never goes negative.
	v := ncuValues(1000, 1000, 1000, 1.2, map[sm.WarpState]uint64{sm.StateWait: 10})
	a := turingAnalyzer(2).Analyze("k", v)
	if a.Branch < 0 {
		t.Errorf("Branch = %g, want >= 0", a.Branch)
	}
}

func TestMemoryComponentLabels(t *testing.T) {
	for _, seg := range ncuMemorySegs {
		if MemoryComponentLabels[seg] == "" {
			t.Errorf("memory segment %q has no figure label", seg)
		}
	}
}

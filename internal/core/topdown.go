// Package core implements the paper's contribution: the Top-Down performance
// analysis methodology for NVIDIA GPUs (Fig. 3 and equations (1)–(14)).
//
// The hierarchy splits the theoretical peak IPC of an SM (IPC_MAX, the
// number of dispatch units per SM) into:
//
//	Retire                — useful work actually completed
//	Divergence            — Branch (warp underutilisation) + Replay
//	Stall · Frontend      — Fetch + Decode
//	Stall · Backend       — Core + Memory
//
// with level-3 detail under Fetch, Decode, Core and Memory on CC >= 7.2
// devices. The analyzer consumes profiler metrics by their tool names
// (nvprof for CC < 7.2, ncu for CC >= 7.2) exactly as the paper's tool does,
// so the full pipeline is: PMU counters -> passes -> metrics -> Top-Down.
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"gputopdown/internal/gpu"
	"gputopdown/internal/metrics"
	"gputopdown/internal/obs"
	"gputopdown/internal/pmu"
)

// Level selects analysis depth.
const (
	Level1 = 1
	Level2 = 2
	Level3 = 3
)

// Analysis is the Top-Down result for one kernel (or a weighted aggregate of
// kernels). All component values are in IPC units; Fraction converts to a
// share of IPC_MAX.
type Analysis struct {
	Tool   string
	GPU    string
	CC     gpu.CC
	Kernel string
	Level  int
	// Normalized reports whether stall components were renormalised to fill
	// IPC_STALL exactly (the paper's "normalized to total IPC degradation").
	Normalized bool

	IPCMax float64

	// Level 1.
	Retire     float64
	Divergence float64
	Frontend   float64
	Backend    float64
	// Stall is the total stall IPC (eq. 7): Frontend+Backend when
	// normalised, possibly larger otherwise (residual in unlisted states).
	Stall float64

	// Level 2.
	Branch float64 // divergence: warp underutilisation (eq. 3)
	Replay float64 // divergence: instruction re-issue (eq. 4)
	Fetch  float64
	Decode float64
	Core   float64
	Memory float64

	// Level 3 (CC >= 7.2 only): component name -> IPC contribution.
	FetchDetail  map[string]float64
	DecodeDetail map[string]float64
	CoreDetail   map[string]float64
	MemoryDetail map[string]float64

	// Metrics holds the raw profiler metric values the analysis consumed.
	Metrics map[string]float64

	// Weight carries the aggregation weight (kernel duration in cycles) so
	// analyses can be combined per §V.D.
	Weight float64
}

// Fraction converts an IPC component to a share of IPC_MAX in [0,1].
func (a *Analysis) Fraction(v float64) float64 {
	if a.IPCMax == 0 {
		return 0
	}
	return v / a.IPCMax
}

// Degradation returns IPC_MAX - Retire: the total IPC lost.
func (a *Analysis) Degradation() float64 { return a.IPCMax - a.Retire }

// ncu level-3 component groupings (Tables VI and VIII).
var (
	ncuFetchSegs  = []string{"no_instruction", "barrier", "membar", "branch_resolving", "sleeping"}
	ncuDecodeSegs = []string{"misc", "dispatch_stall"}
	ncuCoreSegs   = []string{"math_pipe_throttle", "wait", "tex_throttle"}
	ncuMemorySegs = []string{"long_scoreboard", "imc_miss", "mio_throttle", "drain", "lg_throttle", "short_scoreboard"}
)

// MemoryComponentLabels maps level-3 memory segments to the labels used in
// the paper's Fig. 7/10 discussion.
var MemoryComponentLabels = map[string]string{
	"long_scoreboard":  "L1",
	"imc_miss":         "Constant",
	"mio_throttle":     "MIO Throttle",
	"drain":            "Drain",
	"lg_throttle":      "LG Throttle",
	"short_scoreboard": "Short Scoreboard",
}

func ncuStallMetric(seg string) string {
	return "smsp__warp_issue_stalled_" + seg + "_per_warp_active.pct"
}

// Analyzer computes Top-Down analyses for one device.
type Analyzer struct {
	Spec     *gpu.Spec
	Registry *metrics.Registry
	// Level is the analysis depth (1..3). Level 3 requires CC >= 7.2.
	Level int
	// Normalize renormalises stall components over their sum so the level-1
	// stack adds up to IPC_MAX (default true, as in the paper's figures).
	Normalize bool

	// Observability (nil/disabled by default; see SetObserver/SetLogger).
	tracer    *obs.Tracer
	obsOn     bool
	mAnalyses *obs.Counter
	hAnalWall *obs.Histogram
	log       *obs.Logger // component "core"
}

// SetObserver attaches an execution tracer and metrics registry to the
// analyzer: every Analyze and AnalyzeTimeline call becomes a wall-clock span
// and feeds the analysis self-metrics. Either argument may be nil.
func (an *Analyzer) SetObserver(tr *obs.Tracer, reg *obs.Registry) {
	an.tracer = tr
	an.obsOn = tr != nil || reg != nil
	an.mAnalyses = reg.Counter("analysis_total",
		"Top-Down analyses computed (kernels plus timeline intervals).", nil)
	an.hAnalWall = reg.Histogram("analysis_wall_seconds",
		"Wall-clock duration of individual Top-Down analyses.", nil, nil)
}

// SetLogger attaches a structured logger; each computed analysis is logged at
// debug level under component "core". Nil detaches.
func (an *Analyzer) SetLogger(l *obs.Logger) { an.log = l.Component("core") }

// NewAnalyzer builds an analyzer for a device at the given level. It caps
// the level at 2 on pre-unified-metrics devices, where the PMU lacks the
// detailed breakdown (paper Fig. 3).
func NewAnalyzer(spec *gpu.Spec, level int) *Analyzer {
	if level < Level1 {
		level = Level1
	}
	if level > Level3 {
		level = Level3
	}
	if !spec.Compute.UsesUnifiedMetrics() && level > Level2 {
		level = Level2
	}
	return &Analyzer{
		Spec:      spec,
		Registry:  metrics.ForCC(spec.Compute),
		Level:     level,
		Normalize: true,
	}
}

// MetricNames returns the profiler metrics the analysis consumes at the
// configured level — what the paper's tool asks nvprof/ncu for.
func (an *Analyzer) MetricNames() []string {
	var names []string
	if an.Registry.Tool() == "ncu" {
		names = append(names,
			"smsp__inst_executed.avg.per_cycle_active",
			"smsp__thread_inst_executed_per_inst_executed.ratio",
			"smsp__inst_issued.avg.per_cycle_active",
		)
		if an.Level >= Level2 {
			for _, seg := range ncuFetchSegs {
				names = append(names, ncuStallMetric(seg))
			}
			for _, seg := range ncuDecodeSegs {
				names = append(names, ncuStallMetric(seg))
			}
			for _, seg := range ncuCoreSegs {
				names = append(names, ncuStallMetric(seg))
			}
			for _, seg := range ncuMemorySegs {
				names = append(names, ncuStallMetric(seg))
			}
		}
		return names
	}
	names = append(names, "ipc", "warp_execution_efficiency", "issued_ipc")
	if an.Level >= Level2 {
		names = append(names,
			"stall_inst_fetch", "stall_sync", "stall_other",
			"stall_exec_dependency", "stall_pipe_busy",
			"stall_memory_dependency", "stall_constant_memory_dependency",
			"stall_memory_throttle",
		)
	}
	return names
}

// CounterRequest returns the raw PMU counters behind MetricNames, ready for
// a cupti.Session.
func (an *Analyzer) CounterRequest() ([]pmu.CounterID, error) {
	return an.Registry.CountersFor(an.MetricNames())
}

// Analyze computes the Top-Down breakdown from collected counter values.
func (an *Analyzer) Analyze(kernelName string, values pmu.Values) *Analysis {
	if an.obsOn {
		spanStart := an.tracer.Now()
		wallStart := time.Now()
		defer func() {
			an.mAnalyses.Inc()
			an.hAnalWall.Observe(time.Since(wallStart).Seconds())
			if an.tracer != nil {
				an.tracer.Complete(obs.PIDProfiler, 2, "core",
					"analyze "+kernelName, spanStart,
					map[string]any{"level": an.Level, "tool": an.Registry.Tool()})
			}
		}()
	}
	ctx := &metrics.Context{Spec: an.Spec, Values: values}
	eval := func(name string) float64 {
		v, err := an.Registry.Eval(name, ctx)
		if err != nil {
			panic(fmt.Sprintf("core: %v", err))
		}
		return v
	}

	a := &Analysis{
		Tool:       an.Registry.Tool(),
		GPU:        an.Spec.Name,
		CC:         an.Spec.Compute,
		Kernel:     kernelName,
		Level:      an.Level,
		Normalized: an.Normalize,
		IPCMax:     an.Spec.IPCMax(),
		Metrics:    map[string]float64{},
	}
	for _, n := range an.MetricNames() {
		a.Metrics[n] = eval(n)
	}

	var ipcRep, warpEff, ipcIss float64
	if a.Tool == "ncu" {
		ipcRep = a.Metrics["smsp__inst_executed.avg.per_cycle_active"]
		warpEff = a.Metrics["smsp__thread_inst_executed_per_inst_executed.ratio"] / 32
		ipcIss = a.Metrics["smsp__inst_issued.avg.per_cycle_active"]
	} else {
		ipcRep = a.Metrics["ipc"]
		warpEff = a.Metrics["warp_execution_efficiency"] / 100
		ipcIss = a.Metrics["issued_ipc"]
	}
	if warpEff > 1 {
		warpEff = 1
	}

	// Equations (2)–(5) and (7).
	a.Retire = ipcRep * warpEff
	a.Branch = ipcRep * (1 - warpEff)
	a.Replay = ipcIss - ipcRep
	if a.Replay < 0 {
		a.Replay = 0
	}
	a.Divergence = a.Branch + a.Replay
	a.Stall = a.IPCMax - a.Divergence - a.Retire
	if a.Stall < 0 {
		a.Stall = 0
	}

	if an.Level < Level2 {
		an.logAnalysis(a)
		return a
	}

	// Level 2: stall category percentages (eqs. 6, 8–14).
	var fetchPct, decodePct, corePct, memPct float64
	var fetchParts, decodeParts, coreParts, memParts map[string]float64
	if a.Tool == "ncu" {
		sum := func(segs []string) (float64, map[string]float64) {
			parts := map[string]float64{}
			var t float64
			for _, seg := range segs {
				v := a.Metrics[ncuStallMetric(seg)]
				parts[seg] = v
				t += v
			}
			return t, parts
		}
		fetchPct, fetchParts = sum(ncuFetchSegs)
		decodePct, decodeParts = sum(ncuDecodeSegs)
		corePct, coreParts = sum(ncuCoreSegs)
		memPct, memParts = sum(ncuMemorySegs)
	} else {
		fetchPct = a.Metrics["stall_inst_fetch"] + a.Metrics["stall_sync"]
		decodePct = a.Metrics["stall_other"]
		corePct = a.Metrics["stall_exec_dependency"] + a.Metrics["stall_pipe_busy"]
		memPct = a.Metrics["stall_memory_dependency"] +
			a.Metrics["stall_constant_memory_dependency"] +
			a.Metrics["stall_memory_throttle"]
	}

	// Scale percentages into IPC: eq. (8)-(14) use pct/100 x IPC_STALL; the
	// normalised mode instead distributes IPC_STALL across the listed
	// categories so the stack closes (the paper's figure normalisation).
	scale := a.Stall / 100
	if an.Normalize {
		if total := fetchPct + decodePct + corePct + memPct; total > 0 {
			scale = a.Stall / total
		} else {
			scale = 0
		}
	}
	a.Fetch = fetchPct * scale
	a.Decode = decodePct * scale
	a.Core = corePct * scale
	a.Memory = memPct * scale
	a.Frontend = a.Fetch + a.Decode
	a.Backend = a.Core + a.Memory

	if an.Level < Level3 || a.Tool != "ncu" {
		an.logAnalysis(a)
		return a
	}

	scaleDetail := func(parts map[string]float64) map[string]float64 {
		out := make(map[string]float64, len(parts))
		for k, v := range parts {
			out[k] = v * scale
		}
		return out
	}
	a.FetchDetail = scaleDetail(fetchParts)
	a.DecodeDetail = scaleDetail(decodeParts)
	a.CoreDetail = scaleDetail(coreParts)
	a.MemoryDetail = scaleDetail(memParts)
	an.logAnalysis(a)
	return a
}

// logAnalysis emits the per-analysis debug record (level-1 shares only; the
// full hierarchy is in the Analysis itself).
func (an *Analyzer) logAnalysis(a *Analysis) {
	if !an.log.On(obs.LevelDebug) {
		return
	}
	an.log.Debug("analysis computed",
		"kernel", a.Kernel, "level", a.Level, "tool", a.Tool,
		"retire", a.Fraction(a.Retire), "divergence", a.Fraction(a.Divergence),
		"frontend", a.Fraction(a.Frontend), "backend", a.Fraction(a.Backend))
}

// Aggregate combines per-kernel analyses into one application-level analysis
// weighted by each kernel's duration (paper §V.D: "average values, weighted
// by the length of each kernel"). Analyses must share tool/GPU/level.
func Aggregate(name string, as []*Analysis) *Analysis {
	if len(as) == 0 {
		return nil
	}
	var totalW float64
	for _, a := range as {
		w := a.Weight
		if w <= 0 {
			w = 1
		}
		totalW += w
	}
	out := &Analysis{
		Tool:       as[0].Tool,
		GPU:        as[0].GPU,
		CC:         as[0].CC,
		Kernel:     name,
		Level:      as[0].Level,
		Normalized: as[0].Normalized,
		IPCMax:     as[0].IPCMax,
		Metrics:    map[string]float64{},
		Weight:     totalW,
	}
	acc := func(dst *float64, v, w float64) { *dst += v * w / totalW }
	for _, a := range as {
		w := a.Weight
		if w <= 0 {
			w = 1
		}
		acc(&out.Retire, a.Retire, w)
		acc(&out.Divergence, a.Divergence, w)
		acc(&out.Frontend, a.Frontend, w)
		acc(&out.Backend, a.Backend, w)
		acc(&out.Stall, a.Stall, w)
		acc(&out.Branch, a.Branch, w)
		acc(&out.Replay, a.Replay, w)
		acc(&out.Fetch, a.Fetch, w)
		acc(&out.Decode, a.Decode, w)
		acc(&out.Core, a.Core, w)
		acc(&out.Memory, a.Memory, w)
		for k, v := range a.Metrics {
			out.Metrics[k] += v * w / totalW
		}
		mergeDetail := func(dst *map[string]float64, src map[string]float64) {
			if src == nil {
				return
			}
			if *dst == nil {
				*dst = map[string]float64{}
			}
			for k, v := range src {
				(*dst)[k] += v * w / totalW
			}
		}
		mergeDetail(&out.FetchDetail, a.FetchDetail)
		mergeDetail(&out.DecodeDetail, a.DecodeDetail)
		mergeDetail(&out.CoreDetail, a.CoreDetail)
		mergeDetail(&out.MemoryDetail, a.MemoryDetail)
	}
	return out
}

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// String renders the analysis as an indented hierarchy with percentages of
// IPC_MAX.
func (a *Analysis) String() string {
	var sb strings.Builder
	pct := func(v float64) string { return fmt.Sprintf("%5.1f%%", 100*a.Fraction(v)) }
	fmt.Fprintf(&sb, "Top-Down %s on %s (CC %s, %s), IPC_MAX=%.0f\n",
		a.Kernel, a.GPU, a.CC, a.Tool, a.IPCMax)
	fmt.Fprintf(&sb, "  Retire      %s\n", pct(a.Retire))
	fmt.Fprintf(&sb, "  Divergence  %s\n", pct(a.Divergence))
	if a.Level >= Level2 {
		fmt.Fprintf(&sb, "    Branch    %s\n", pct(a.Branch))
		fmt.Fprintf(&sb, "    Replay    %s\n", pct(a.Replay))
		fmt.Fprintf(&sb, "  Frontend    %s\n", pct(a.Frontend))
		fmt.Fprintf(&sb, "    Fetch     %s\n", pct(a.Fetch))
		a.detail(&sb, a.FetchDetail)
		fmt.Fprintf(&sb, "    Decode    %s\n", pct(a.Decode))
		a.detail(&sb, a.DecodeDetail)
		fmt.Fprintf(&sb, "  Backend     %s\n", pct(a.Backend))
		fmt.Fprintf(&sb, "    Core      %s\n", pct(a.Core))
		a.detail(&sb, a.CoreDetail)
		fmt.Fprintf(&sb, "    Memory    %s\n", pct(a.Memory))
		a.detail(&sb, a.MemoryDetail)
	} else {
		fmt.Fprintf(&sb, "  Stall       %s\n", pct(a.Stall))
	}
	return sb.String()
}

func (a *Analysis) detail(sb *strings.Builder, d map[string]float64) {
	if a.Level < Level3 || d == nil {
		return
	}
	for _, k := range sortedKeys(d) {
		fmt.Fprintf(sb, "      %-18s %5.1f%%\n", k, 100*a.Fraction(d[k]))
	}
}

package core

import (
	"fmt"

	"gputopdown/internal/gpu"
	"gputopdown/internal/pmu"
)

// Roofline is an instruction-roofline placement (Ding & Williams' GPU
// variant of the model the paper's related work [26] applies): achieved warp
// instruction throughput against the device's issue ceiling and its
// bandwidth-limited slope, at the kernel's measured instruction intensity.
// It complements Top-Down: Top-Down says *which component* eats the lost
// IPC, the roofline says how far performance sits from either ceiling.
type Roofline struct {
	// IntensityInstPerByte is warp instructions per DRAM-traffic byte.
	IntensityInstPerByte float64
	// AchievedGIPS is the measured warp-instruction throughput in 1e9
	// instructions/second.
	AchievedGIPS float64
	// PeakGIPS is the device issue ceiling.
	PeakGIPS float64
	// MemCeilingGIPS is the bandwidth-limited ceiling at this intensity.
	MemCeilingGIPS float64
	// Bound is "memory" when the bandwidth roof is the binding one,
	// otherwise "compute".
	Bound string
	// CeilingFraction is achieved / min(PeakGIPS, MemCeilingGIPS).
	CeilingFraction float64
}

// RooflineRequest returns the raw counters the roofline needs.
func RooflineRequest() []pmu.CounterID {
	return []pmu.CounterID{
		pmu.CtrInstExecuted, pmu.CtrActiveCycles,
		pmu.CtrLoadSectors, pmu.CtrStoreSectors,
	}
}

// ComputeRoofline places the measured counters on the device's instruction
// roofline. Returns nil when no instructions were measured.
func ComputeRoofline(spec *gpu.Spec, values pmu.Values) *Roofline {
	inst := float64(values[pmu.CtrInstExecuted])
	cycles := float64(values[pmu.CtrActiveCycles])
	if inst == 0 || cycles == 0 {
		return nil
	}
	bytes := float64(values[pmu.CtrLoadSectors]+values[pmu.CtrStoreSectors]) * float64(spec.SectorSize)
	clockHz := float64(spec.ClockMHz) * 1e6

	r := &Roofline{}
	// inst/cycles is the per-SM IPC (cycles are summed over active SMs);
	// scaling by the SM count gives the device-level rate at full spread.
	r.AchievedGIPS = inst / cycles * float64(spec.SMs) * clockHz / 1e9
	r.PeakGIPS = spec.IPCMax() * float64(spec.SMs) * clockHz / 1e9
	if bytes == 0 {
		// No memory traffic: purely compute-side, infinite intensity.
		r.IntensityInstPerByte = 0
		r.MemCeilingGIPS = r.PeakGIPS
		r.Bound = "compute"
	} else {
		r.IntensityInstPerByte = inst / bytes
		bwBytesPerSec := spec.DRAMBytesPerCycle * clockHz
		r.MemCeilingGIPS = r.IntensityInstPerByte * bwBytesPerSec / 1e9
		if r.MemCeilingGIPS < r.PeakGIPS {
			r.Bound = "memory"
		} else {
			r.Bound = "compute"
		}
	}
	ceiling := r.PeakGIPS
	if r.MemCeilingGIPS < ceiling && r.MemCeilingGIPS > 0 {
		ceiling = r.MemCeilingGIPS
	}
	if ceiling > 0 {
		r.CeilingFraction = r.AchievedGIPS / ceiling
	}
	return r
}

// String renders the placement on one line.
func (r *Roofline) String() string {
	return fmt.Sprintf("roofline: %.2f GIPS at %.3f inst/B (%s-bound ceiling %.2f GIPS, %.0f%% of it)",
		r.AchievedGIPS, r.IntensityInstPerByte, r.Bound,
		minF(r.PeakGIPS, r.MemCeilingGIPS), 100*r.CeilingFraction)
}

func minF(a, b float64) float64 {
	if b > 0 && b < a {
		return b
	}
	return a
}

package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"gputopdown/internal/sm"
)

func sampleAnalysis(t *testing.T, level int) *Analysis {
	t.Helper()
	v := ncuValues(1000, 800, 900, 0.85, map[sm.WarpState]uint64{
		sm.StateLongScoreboard: 400,
		sm.StateIMCMiss:        100,
		sm.StateNoInstruction:  80,
		sm.StateBarrier:        20,
	})
	return turingAnalyzer(level).Analyze("srad_cuda_1", v)
}

func TestRowsCoverHierarchy(t *testing.T) {
	a := sampleAnalysis(t, Level3)
	rows := a.Rows()
	byPath := map[string]Row{}
	for _, r := range rows {
		if _, dup := byPath[r.Path]; dup {
			t.Errorf("duplicate row %q", r.Path)
		}
		byPath[r.Path] = r
	}
	for _, p := range []string{
		"retire", "divergence", "divergence/branch", "divergence/replay",
		"frontend", "frontend/fetch", "frontend/fetch/no_instruction",
		"frontend/decode", "backend", "backend/core",
		"backend/memory", "backend/memory/long_scoreboard",
		"backend/memory/imc_miss",
	} {
		if _, ok := byPath[p]; !ok {
			t.Errorf("missing row %q", p)
		}
	}
	// Level-1 rows must sum to IPC_MAX in normalised mode.
	var l1 float64
	for _, r := range rows {
		if r.Level == 1 {
			l1 += r.IPC
		}
	}
	if math.Abs(l1-a.IPCMax) > 1e-9 {
		t.Errorf("level-1 rows sum to %g, want %g", l1, a.IPCMax)
	}
	// Level-3 memory rows must sum to the memory level-2 row.
	var mem3 float64
	for _, r := range rows {
		if strings.HasPrefix(r.Path, "backend/memory/") {
			mem3 += r.IPC
		}
	}
	if math.Abs(mem3-byPath["backend/memory"].IPC) > 1e-9 {
		t.Errorf("memory leaves sum to %g, parent %g", mem3, byPath["backend/memory"].IPC)
	}
}

func TestRowsLevel1HasStall(t *testing.T) {
	a := sampleAnalysis(t, Level1)
	rows := a.Rows()
	found := false
	for _, r := range rows {
		if r.Path == "stall" {
			found = true
		}
		if strings.Contains(r.Path, "/") {
			t.Errorf("level-1 rows contain deep path %q", r.Path)
		}
	}
	if !found {
		t.Error("level-1 rows missing stall")
	}
}

func TestCSVWellFormed(t *testing.T) {
	a := sampleAnalysis(t, Level3)
	csv := a.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "kernel,gpu,tool,component,level,ipc,fraction" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != len(a.Rows())+1 {
		t.Errorf("csv has %d lines, want %d", len(lines), len(a.Rows())+1)
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != 6 {
			t.Errorf("row %q has %d commas", l, got)
		}
	}
}

func TestCSVEscaping(t *testing.T) {
	if got := csvEscape(`a,b`); got != `"a,b"` {
		t.Errorf("comma escape: %q", got)
	}
	if got := csvEscape(`a"b`); got != `"a""b"` {
		t.Errorf("quote escape: %q", got)
	}
	if got := csvEscape("plain"); got != "plain" {
		t.Errorf("plain mangled: %q", got)
	}
}

func TestJSONRoundtrip(t *testing.T) {
	a := sampleAnalysis(t, Level3)
	data, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Kernel     string  `json:"kernel"`
		Tool       string  `json:"tool"`
		CC         string  `json:"compute_capability"`
		IPCMax     float64 `json:"ipc_max"`
		Components []Row   `json:"components"`
		Metrics    map[string]float64
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Kernel != "srad_cuda_1" || decoded.Tool != "ncu" || decoded.CC != "7.5" {
		t.Errorf("metadata lost: %+v", decoded)
	}
	if decoded.IPCMax != 2 {
		t.Errorf("IPCMax = %g", decoded.IPCMax)
	}
	if len(decoded.Components) != len(a.Rows()) {
		t.Errorf("components %d != rows %d", len(decoded.Components), len(a.Rows()))
	}
	if len(decoded.Metrics) == 0 {
		t.Error("metrics missing from JSON")
	}
}

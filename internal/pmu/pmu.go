// Package pmu models the GPU's Performance Monitoring Unit: the raw hardware
// counters an SM can expose, the limited number of physical counter slots,
// and the scheduling of a counter request onto multiple kernel-replay
// passes.
//
// The key constraint the paper leans on (§II.A, §V.E) is that the PMU cannot
// observe everything at once: warp-state counters go through a small number
// of multiplexers (NumStateMuxes per subpartition, one state each per pass)
// and generic counters through GenericSlotsPerPass slots, while cycle and
// instruction counters are free-running and cost nothing. A full level-3
// Top-Down metric set therefore needs 8 passes — the replay factor behind
// the paper's ~13x profiling overhead (Fig. 13).
package pmu

import (
	"fmt"
	"sort"

	"gputopdown/internal/sm"
)

// CounterID identifies one raw PMU counter.
type CounterID uint16

// Raw counters. The first block is free-running; warp-state counters occupy
// a contiguous range starting at CtrStallBase.
const (
	CtrActiveCycles CounterID = iota
	CtrElapsedCycles
	CtrActiveWarpCycles
	CtrSubpActiveCycles
	CtrInstExecuted
	CtrInstIssued
	CtrThreadInstExecuted
	CtrBlocksLaunched
	CtrWarpsLaunched

	// CtrStallBase + s is the warp-cycle counter of sm.WarpState s.
	CtrStallBase
	ctrStallEnd = CtrStallBase + sm.NumWarpStates - 1
)

// Generic (slotted) counters continue after the warp-state range.
const (
	CtrBranchInstrs CounterID = ctrStallEnd + 1 + iota
	CtrDivergentBranches
	CtrSharedLoads
	CtrSharedStores
	CtrSharedBankConflicts
	CtrGlobalLoads
	CtrGlobalStores
	CtrLoadSectors
	CtrStoreSectors
	CtrL1Hits
	CtrL1Misses
	CtrL2Hits
	CtrL2Misses
	CtrConstLoads
	CtrIMCHits
	CtrIMCMisses
	CtrTexFetches
	CtrAtomics
	CtrICacheHits
	CtrICacheMisses
	CtrRegBankConflicts
	numCounters
)

// NumCounters is the number of defined raw counters.
const NumCounters = int(numCounters)

// PMU capacity per pass.
const (
	// GenericSlotsPerPass is how many slotted (non-state, non-free) counters
	// one pass can collect.
	GenericSlotsPerPass = 4
	// NumStateMuxes is how many warp-state multiplexers exist; each observes
	// one warp state per pass.
	NumStateMuxes = 2
)

// StallCounter returns the counter observing warp-state s.
func StallCounter(s sm.WarpState) CounterID {
	return CtrStallBase + CounterID(s)
}

// IsWarpState reports whether id is a warp-state counter and which state.
func IsWarpState(id CounterID) (sm.WarpState, bool) {
	if id >= CtrStallBase && id <= ctrStallEnd {
		return sm.WarpState(id - CtrStallBase), true
	}
	return 0, false
}

// IsFreeRunning reports whether the counter is collected without consuming a
// slot (cycle and instruction counters run continuously on real PMUs).
func IsFreeRunning(id CounterID) bool { return id < CtrStallBase }

// StateMux returns the multiplexer a warp-state counter is wired to.
func StateMux(id CounterID) int {
	s, ok := IsWarpState(id)
	if !ok {
		return -1
	}
	return int(s) % NumStateMuxes
}

// Valid reports whether id names a defined counter.
func Valid(id CounterID) bool { return id < numCounters }

// Name returns a raw, ncu-flavoured counter name.
func Name(id CounterID) string {
	if s, ok := IsWarpState(id); ok {
		return "smsp__warps_issue_stalled_" + s.String()
	}
	switch id {
	case CtrActiveCycles:
		return "sm__cycles_active"
	case CtrElapsedCycles:
		return "sm__cycles_elapsed"
	case CtrActiveWarpCycles:
		return "smsp__warps_active"
	case CtrSubpActiveCycles:
		return "smsp__cycles_active"
	case CtrInstExecuted:
		return "smsp__inst_executed"
	case CtrInstIssued:
		return "smsp__inst_issued"
	case CtrThreadInstExecuted:
		return "smsp__thread_inst_executed"
	case CtrBlocksLaunched:
		return "sm__ctas_launched"
	case CtrWarpsLaunched:
		return "smsp__warps_launched"
	case CtrBranchInstrs:
		return "smsp__inst_executed_op_branch"
	case CtrDivergentBranches:
		return "smsp__branch_targets_threads_divergent"
	case CtrSharedLoads:
		return "smsp__inst_executed_op_shared_ld"
	case CtrSharedStores:
		return "smsp__inst_executed_op_shared_st"
	case CtrSharedBankConflicts:
		return "l1tex__data_bank_conflicts_pipe_lsu_mem_shared"
	case CtrGlobalLoads:
		return "smsp__inst_executed_op_global_ld"
	case CtrGlobalStores:
		return "smsp__inst_executed_op_global_st"
	case CtrLoadSectors:
		return "l1tex__t_sectors_pipe_lsu_mem_global_op_ld"
	case CtrStoreSectors:
		return "l1tex__t_sectors_pipe_lsu_mem_global_op_st"
	case CtrL1Hits:
		return "l1tex__t_sectors_lookup_hit"
	case CtrL1Misses:
		return "l1tex__t_sectors_lookup_miss"
	case CtrL2Hits:
		return "lts__t_sectors_lookup_hit"
	case CtrL2Misses:
		return "lts__t_sectors_lookup_miss"
	case CtrConstLoads:
		return "smsp__inst_executed_op_ldc"
	case CtrIMCHits:
		return "idc__requests_lookup_hit"
	case CtrIMCMisses:
		return "idc__requests_lookup_miss"
	case CtrTexFetches:
		return "smsp__inst_executed_op_texture"
	case CtrAtomics:
		return "smsp__inst_executed_op_global_atom"
	case CtrICacheHits:
		return "icc__requests_lookup_hit"
	case CtrICacheMisses:
		return "icc__requests_lookup_miss"
	case CtrRegBankConflicts:
		return "smsp__operand_collector_bank_conflicts"
	}
	return fmt.Sprintf("counter_%d", uint16(id))
}

// Read extracts a counter's value from an SM counter snapshot.
func Read(c *sm.Counters, id CounterID) uint64 {
	if s, ok := IsWarpState(id); ok {
		return c.WarpStateCycles[s]
	}
	switch id {
	case CtrActiveCycles:
		return c.ActiveCycles
	case CtrElapsedCycles:
		return c.ElapsedCycles
	case CtrActiveWarpCycles:
		return c.ActiveWarpCycles
	case CtrSubpActiveCycles:
		return c.SubpActiveCycles
	case CtrInstExecuted:
		return c.InstExecuted
	case CtrInstIssued:
		return c.InstIssued
	case CtrThreadInstExecuted:
		return c.ThreadInstExecuted
	case CtrBlocksLaunched:
		return c.BlocksLaunched
	case CtrWarpsLaunched:
		return c.WarpsLaunched
	case CtrBranchInstrs:
		return c.BranchInstrs
	case CtrDivergentBranches:
		return c.DivergentBranches
	case CtrSharedLoads:
		return c.SharedLoads
	case CtrSharedStores:
		return c.SharedStores
	case CtrSharedBankConflicts:
		return c.SharedBankConflicts
	case CtrGlobalLoads:
		return c.GlobalLoads
	case CtrGlobalStores:
		return c.GlobalStores
	case CtrLoadSectors:
		return c.LoadSectors
	case CtrStoreSectors:
		return c.StoreSectors
	case CtrL1Hits:
		return c.L1Hits
	case CtrL1Misses:
		return c.L1Misses
	case CtrL2Hits:
		return c.L2Hits
	case CtrL2Misses:
		return c.L2Misses
	case CtrConstLoads:
		return c.ConstLoads
	case CtrIMCHits:
		return c.IMCHits
	case CtrIMCMisses:
		return c.IMCMisses
	case CtrTexFetches:
		return c.TexFetches
	case CtrAtomics:
		return c.Atomics
	case CtrICacheHits:
		return c.ICacheHits
	case CtrICacheMisses:
		return c.ICacheMisses
	case CtrRegBankConflicts:
		return c.RegBankConflicts
	}
	panic(fmt.Sprintf("pmu: unknown counter %d", uint16(id)))
}

// Schedule maps a counter request onto replay passes respecting the PMU's
// per-pass capacity. Free-running counters are attached to pass 0.
type Schedule struct {
	// Passes[i] lists the counters collected during pass i.
	Passes [][]CounterID
}

// NumPasses returns how many kernel replays the schedule needs.
func (s *Schedule) NumPasses() int { return len(s.Passes) }

// Fingerprint returns a 64-bit FNV-1a hash of the schedule's pass structure:
// which counters are collected on which pass, in order. Two sessions whose
// schedules share a fingerprint merge per-pass readings identically, which is
// what lets the replay result cache be shared across sessions — cached merged
// values are only valid under the same pass identity.
func (s *Schedule) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for shift := 0; shift < 64; shift += 8 {
			h ^= (v >> shift) & 0xFF
			h *= prime
		}
	}
	mix(uint64(len(s.Passes)))
	for _, pass := range s.Passes {
		mix(uint64(len(pass)))
		for _, id := range pass {
			mix(uint64(id))
		}
	}
	return h
}

// PassOf returns the pass index collecting the given counter, or -1.
func (s *Schedule) PassOf(id CounterID) int {
	for i, pass := range s.Passes {
		for _, c := range pass {
			if c == id {
				return i
			}
		}
	}
	return -1
}

// BuildSchedule packs the requested counters into as few passes as the PMU
// capacity allows. The request is deduplicated; order does not matter.
func BuildSchedule(request []CounterID) (*Schedule, error) {
	seen := make(map[CounterID]bool, len(request))
	var free, state, generic []CounterID
	for _, id := range request {
		if !Valid(id) {
			return nil, fmt.Errorf("pmu: unknown counter id %d", uint16(id))
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		switch {
		case IsFreeRunning(id):
			free = append(free, id)
		default:
			if _, ok := IsWarpState(id); ok {
				state = append(state, id)
			} else {
				generic = append(generic, id)
			}
		}
	}
	sort.Slice(free, func(i, j int) bool { return free[i] < free[j] })
	sort.Slice(state, func(i, j int) bool { return state[i] < state[j] })
	sort.Slice(generic, func(i, j int) bool { return generic[i] < generic[j] })

	// Pass count: warp-state counters are limited per-mux, generic ones by
	// slot count. At least one pass even for a free-only request.
	perMux := make([]int, NumStateMuxes)
	for _, id := range state {
		perMux[StateMux(id)]++
	}
	passes := 1
	for _, n := range perMux {
		if n > passes {
			passes = n
		}
	}
	if g := (len(generic) + GenericSlotsPerPass - 1) / GenericSlotsPerPass; g > passes {
		passes = g
	}

	sched := &Schedule{Passes: make([][]CounterID, passes)}
	sched.Passes[0] = append(sched.Passes[0], free...)
	next := make([]int, NumStateMuxes)
	for _, id := range state {
		m := StateMux(id)
		sched.Passes[next[m]] = append(sched.Passes[next[m]], id)
		next[m]++
	}
	for i, id := range generic {
		sched.Passes[i/GenericSlotsPerPass] = append(sched.Passes[i/GenericSlotsPerPass], id)
	}
	return sched, nil
}

// AllCounters returns every defined counter id, for exhaustive tests.
func AllCounters() []CounterID {
	ids := make([]CounterID, 0, NumCounters)
	for id := CounterID(0); id < numCounters; id++ {
		ids = append(ids, id)
	}
	return ids
}

// Values holds merged counter readings across passes.
type Values map[CounterID]uint64

// Merge records the counters of one completed pass into v.
func (v Values) Merge(pass []CounterID, c *sm.Counters) {
	for _, id := range pass {
		v[id] = Read(c, id)
	}
}

// Clone returns an independent copy of v. The replay result cache hands the
// same logical values to many kernel records; cloning keeps them isolated.
func (v Values) Clone() Values {
	out := make(Values, len(v))
	for id, val := range v {
		out[id] = val
	}
	return out
}

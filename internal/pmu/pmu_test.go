package pmu

import (
	"testing"
	"testing/quick"

	"gputopdown/internal/sm"
)

func TestCounterClassification(t *testing.T) {
	if !IsFreeRunning(CtrActiveCycles) || !IsFreeRunning(CtrInstIssued) {
		t.Error("cycle/inst counters must be free-running")
	}
	if IsFreeRunning(CtrL1Misses) || IsFreeRunning(StallCounter(sm.StateWait)) {
		t.Error("slotted counters misclassified as free-running")
	}
	for s := sm.WarpState(0); s < sm.NumWarpStates; s++ {
		id := StallCounter(s)
		got, ok := IsWarpState(id)
		if !ok || got != s {
			t.Errorf("StallCounter(%v) roundtrip failed: %v %v", s, got, ok)
		}
		if m := StateMux(id); m < 0 || m >= NumStateMuxes {
			t.Errorf("state %v mux %d out of range", s, m)
		}
	}
	if StateMux(CtrL1Hits) != -1 {
		t.Error("non-state counter has a mux")
	}
}

func TestNamesUniqueAndNonEmpty(t *testing.T) {
	seen := map[string]bool{}
	for _, id := range AllCounters() {
		n := Name(id)
		if n == "" {
			t.Errorf("counter %d has empty name", id)
		}
		if seen[n] {
			t.Errorf("duplicate counter name %q", n)
		}
		seen[n] = true
	}
}

func TestReadCoversAllCounters(t *testing.T) {
	var c sm.Counters
	c.ActiveCycles = 1
	c.InstExecuted = 2
	c.WarpStateCycles[sm.StateBarrier] = 7
	c.L2Misses = 9
	for _, id := range AllCounters() {
		_ = Read(&c, id) // must not panic
	}
	if Read(&c, CtrActiveCycles) != 1 || Read(&c, CtrInstExecuted) != 2 {
		t.Error("free counter read wrong")
	}
	if Read(&c, StallCounter(sm.StateBarrier)) != 7 {
		t.Error("state counter read wrong")
	}
	if Read(&c, CtrL2Misses) != 9 {
		t.Error("generic counter read wrong")
	}
}

// level3Request mirrors the full level-3 Top-Down counter set: every stall
// state in the paper's Tables VI and VIII plus the free-running IPC inputs.
func level3Request() []CounterID {
	req := []CounterID{
		CtrActiveCycles, CtrActiveWarpCycles, CtrInstExecuted, CtrInstIssued,
		CtrThreadInstExecuted,
	}
	states := []sm.WarpState{
		sm.StateNoInstruction, sm.StateBarrier, sm.StateMembar,
		sm.StateBranchResolving, sm.StateSleeping, sm.StateMisc,
		sm.StateDispatchStall, sm.StateMathPipeThrottle,
		sm.StateLongScoreboard, sm.StateIMCMiss, sm.StateMIOThrottle,
		sm.StateDrain, sm.StateLGThrottle, sm.StateShortScoreboard,
		sm.StateWait, sm.StateTEXThrottle,
	}
	for _, s := range states {
		req = append(req, StallCounter(s))
	}
	return req
}

func TestLevel3SetNeedsEightPasses(t *testing.T) {
	// The paper observes each kernel executed 8 times for a level-3 analysis
	// (§V.E, Fig. 13). 16 warp-state counters through 2 muxes -> 8 passes.
	sched, err := BuildSchedule(level3Request())
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.NumPasses(); got != 8 {
		t.Errorf("level-3 schedule needs %d passes, want 8", got)
	}
}

func TestFreeOnlyRequestIsOnePass(t *testing.T) {
	sched, err := BuildSchedule([]CounterID{CtrInstExecuted, CtrActiveCycles, CtrThreadInstExecuted})
	if err != nil {
		t.Fatal(err)
	}
	if sched.NumPasses() != 1 {
		t.Errorf("free-only request needs %d passes, want 1", sched.NumPasses())
	}
}

func TestScheduleRespectsCapacity(t *testing.T) {
	sched, err := BuildSchedule(AllCounters())
	if err != nil {
		t.Fatal(err)
	}
	for i, pass := range sched.Passes {
		generic := 0
		mux := make([]int, NumStateMuxes)
		for _, id := range pass {
			if IsFreeRunning(id) {
				continue
			}
			if _, ok := IsWarpState(id); ok {
				mux[StateMux(id)]++
			} else {
				generic++
			}
		}
		if generic > GenericSlotsPerPass {
			t.Errorf("pass %d has %d generic counters (cap %d)", i, generic, GenericSlotsPerPass)
		}
		for m, n := range mux {
			if n > 1 {
				t.Errorf("pass %d observes %d states on mux %d", i, n, m)
			}
		}
	}
}

func TestScheduleCoversRequestExactlyOnce(t *testing.T) {
	req := level3Request()
	req = append(req, CtrL1Hits, CtrL1Misses, CtrIMCMisses, CtrIMCMisses) // dup
	sched, err := BuildSchedule(req)
	if err != nil {
		t.Fatal(err)
	}
	count := map[CounterID]int{}
	for _, pass := range sched.Passes {
		for _, id := range pass {
			count[id]++
		}
	}
	for _, id := range req {
		if count[id] != 1 {
			t.Errorf("counter %s scheduled %d times", Name(id), count[id])
		}
	}
}

func TestScheduleRejectsUnknown(t *testing.T) {
	if _, err := BuildSchedule([]CounterID{CounterID(9999)}); err == nil {
		t.Error("unknown counter accepted")
	}
}

func TestPassOf(t *testing.T) {
	sched, _ := BuildSchedule(level3Request())
	if sched.PassOf(CtrInstExecuted) != 0 {
		t.Error("free counter not in pass 0")
	}
	if sched.PassOf(CtrRegBankConflicts) != -1 {
		t.Error("unrequested counter found")
	}
	if sched.PassOf(StallCounter(sm.StateWait)) < 0 {
		t.Error("requested state counter not scheduled")
	}
}

func TestValuesMerge(t *testing.T) {
	var c sm.Counters
	c.InstExecuted = 5
	c.WarpStateCycles[sm.StateWait] = 11
	v := Values{}
	v.Merge([]CounterID{CtrInstExecuted, StallCounter(sm.StateWait)}, &c)
	if v[CtrInstExecuted] != 5 || v[StallCounter(sm.StateWait)] != 11 {
		t.Errorf("merge produced %v", v)
	}
}

// Property: any subset of valid counters schedules successfully, covers
// everything exactly once and respects capacity.
func TestSchedulePropertyRandomSubsets(t *testing.T) {
	all := AllCounters()
	f := func(mask uint64, mask2 uint64) bool {
		var req []CounterID
		for i, id := range all {
			bit := uint(i) % 64
			src := mask
			if i >= 64 {
				src = mask2
			}
			if src&(1<<bit) != 0 {
				req = append(req, id)
			}
		}
		sched, err := BuildSchedule(req)
		if err != nil {
			return false
		}
		got := map[CounterID]int{}
		for _, pass := range sched.Passes {
			generic := 0
			mux := make([]int, NumStateMuxes)
			for _, id := range pass {
				got[id]++
				if IsFreeRunning(id) {
					continue
				}
				if _, ok := IsWarpState(id); ok {
					mux[StateMux(id)]++
				} else {
					generic++
				}
			}
			if generic > GenericSlotsPerPass {
				return false
			}
			for _, n := range mux {
				if n > 1 {
					return false
				}
			}
		}
		for _, id := range req {
			if got[id] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

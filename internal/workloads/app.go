// Package workloads provides the benchmark applications the paper evaluates:
// synthetic-but-faithful reconstructions of the Rodinia 3.1 suite, the Altis
// suite and the CUDA binaryPartitionCG sample, written in the mini ISA.
//
// Each application reproduces the microarchitectural character the paper
// attributes to its original (memory-bound stencils, constant-cache-bound
// ML kernels, divergent graph traversals, ...), not its exact numerics —
// see DESIGN.md's substitution table. Data is generated deterministically
// from a per-app seed, so profiling runs are exactly reproducible.
package workloads

import (
	"fmt"
	"math/rand"

	"gputopdown/internal/kernel"
	"gputopdown/internal/sim"
)

// LaunchFunc executes one kernel launch — natively or under a profiler.
type LaunchFunc func(*kernel.Launch) error

// RunCtx is handed to an application's Run: the device to allocate on, the
// executor for kernel launches, and a seeded RNG for input generation.
type RunCtx struct {
	Dev  *sim.Device
	Exec LaunchFunc
	Rng  *rand.Rand
}

// App is one benchmark application.
type App struct {
	Name        string
	Suite       string
	Description string
	// Run allocates inputs and executes the app's kernels through ctx.Exec.
	Run func(ctx *RunCtx) error
}

// ID returns suite/name.
func (a *App) ID() string { return a.Suite + "/" + a.Name }

// Execute runs the app on a device with a deterministic per-app seed.
func (a *App) Execute(dev *sim.Device, exec LaunchFunc) error {
	ctx := &RunCtx{
		Dev:  dev,
		Exec: exec,
		Rng:  rand.New(rand.NewSource(seedFor(a.ID()))),
	}
	if err := a.Run(ctx); err != nil {
		return fmt.Errorf("workloads: %s: %w", a.ID(), err)
	}
	return nil
}

// seedFor derives a stable seed from an app id.
func seedFor(id string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return int64(h & 0x7FFFFFFFFFFFFFFF)
}

// Lookup finds an app by suite and name across all registered suites.
func Lookup(suite, name string) (*App, bool) {
	var apps []*App
	switch suite {
	case "rodinia":
		apps = Rodinia()
	case "altis":
		apps = Altis()
	case "shoc":
		apps = SHOC()
	case "cudasamples":
		apps = CUDASamples()
	default:
		return nil, false
	}
	for _, a := range apps {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Suites returns the registered suite names.
func Suites() []string { return []string{"rodinia", "altis", "shoc", "cudasamples"} }

// BySuite returns a suite's apps.
func BySuite(suite string) []*App {
	switch suite {
	case "rodinia":
		return Rodinia()
	case "altis":
		return Altis()
	case "shoc":
		return SHOC()
	case "cudasamples":
		return CUDASamples()
	}
	return nil
}

// ---- input-data helpers ----

// randF32 fills device memory with uniform floats in [lo, hi).
func randF32(ctx *RunCtx, addr uint64, n int, lo, hi float32) {
	vs := make([]float32, n)
	for i := range vs {
		vs[i] = lo + (hi-lo)*ctx.Rng.Float32()
	}
	ctx.Dev.Storage.WriteF32Slice(addr, vs)
}

// randIdx fills device memory with uniform indices in [0, max).
func randIdx(ctx *RunCtx, addr uint64, n, max int) {
	vs := make([]uint32, n)
	for i := range vs {
		vs[i] = uint32(ctx.Rng.Intn(max))
	}
	ctx.Dev.Storage.WriteU32Slice(addr, vs)
}

// zeroF32 clears a float32 buffer.
func zeroF32(ctx *RunCtx, addr uint64, n int) {
	ctx.Dev.Storage.WriteF32Slice(addr, make([]float32, n))
}

// launch1D builds a 1-D launch with the given block size.
func launch1D(p *kernel.Program, elems, block int, params ...uint64) *kernel.Launch {
	return &kernel.Launch{
		Program: p,
		Grid:    kernel.Dim3{X: (elems + block - 1) / block},
		Block:   kernel.Dim3{X: block},
		Params:  params,
	}
}

package workloads

import "gputopdown/internal/kernel"

// GemmAutotune models the workload a CUPTI-attached profiler sees under an
// autotuning or benchmarking harness: the same GEMM configuration launched
// back-to-back with identical inputs while the harness collects timing
// samples (Filipovič et al. build whole counter datasets this way, running
// thousands of such repetitions per kernel). From the second repetition on
// the launches are byte-identical — C holds the same product it is about to
// be overwritten with — which is exactly the redundancy the profiler's
// replay result cache exists to exploit: invocation 1 fills C (miss),
// invocation 2 re-proves the new end state (miss), and every later
// repetition replays from the cache without re-simulation.
//
// 20 repetitions is at the low end of real harnesses (Kernel Tuner and KTT
// default to tens of observations per configuration); it keeps the profiled
// run short while leaving 18 of 20 invocations cacheable.
func GemmAutotune() *App {
	return makeGemmAutotune("gemm_autotune", 128, 20)
}

// GemmAutotuneSized is GemmAutotune with an explicit problem size and
// repetition count (dim must be a multiple of the 16x16 tile) — real
// harnesses sweep both. Tests use a small instance so the cache path is
// exercised cheaply.
func GemmAutotuneSized(dim, reps int) *App {
	return makeGemmAutotune("gemm_autotune", dim, reps)
}

// makeGemmAutotune builds an autotune app multiplying dim x dim matrices
// reps times. dim must be a multiple of the 16x16 tile.
func makeGemmAutotune(name string, dim, reps int) *App {
	return &App{
		Name:  name,
		Suite: "altis",
		Description: "autotuning harness: one shared-memory GEMM configuration " +
			"launched repeatedly with identical inputs",
		Run: func(ctx *RunCtx) error {
			a := ctx.Dev.Alloc(dim * dim * 4)
			bm := ctx.Dev.Alloc(dim * dim * 4)
			c := ctx.Dev.Alloc(dim * dim * 4)
			randF32(ctx, a, dim*dim, -1, 1)
			randF32(ctx, bm, dim*dim, -1, 1)
			prog := tiledMatMulProgram("sgemm_kernel", 16)
			for rep := 0; rep < reps; rep++ {
				l := &kernel.Launch{
					Program: prog,
					Grid:    kernel.Dim3{X: dim / 16, Y: dim / 16},
					Block:   kernel.Dim3{X: 16, Y: 16},
					Params:  []uint64{a, bm, c, uint64(dim), uint64(dim)},
				}
				if err := ctx.Exec(l); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

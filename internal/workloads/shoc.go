package workloads

import (
	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
)

// SHOC returns a reconstruction of the Scalable Heterogeneous Computing
// benchmark suite, the second ancestor of Altis (paper §V.C, ref [17]).
// SHOC's members are mostly microbenchmark-grade kernels with a sharply
// defined bottleneck each, which makes the suite a useful orthogonal probe
// of the Top-Down attribution: every app should land on its advertised
// component.
func SHOC() []*App {
	return []*App{
		shocTriad(), shocReduction(), shocScan(), shocFFT(), shocMD(),
		shocMD5Hash(), shocSpmv(), shocStencil2D(), shocSort(), shocGEMM(),
		shocNeuralNet(), shocS3D(), shocBFS(), shocDeviceMemory(),
	}
}

func shocTriad() *App {
	return &App{
		Name:  "triad",
		Suite: "shoc",
		Description: "STREAM triad: pure bandwidth, one FMA per two loads " +
			"and a store",
		Run: func(ctx *RunCtx) error {
			const n = 192 * 1024
			a := ctx.Dev.Alloc(n * 4)
			bBuf := ctx.Dev.Alloc(n * 4)
			randF32(ctx, a, n, 0, 1)
			randF32(ctx, bBuf, n, 0, 1)
			prog := streamProgram("triad_kernel", 1)
			for it := 0; it < 2; it++ {
				if err := ctx.Exec(launch1D(prog, n, 256, a, bBuf, n)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func shocReduction() *App {
	return &App{
		Name:        "reduction",
		Suite:       "shoc",
		Description: "tree reduction in shared memory: barrier-phased",
		Run: func(ctx *RunCtx) error {
			const n = 128 * 1024
			in := ctx.Dev.Alloc(n * 4)
			out := ctx.Dev.Alloc(n / 256 * 4)
			randF32(ctx, in, n, 0, 1)
			prog := reductionProgram("reduce_kernel", 256)
			for it := 0; it < 2; it++ {
				if err := ctx.Exec(launch1D(prog, n, 256, in, out)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// shocScanKernel: a Hillis-Steele inclusive scan inside shared memory.
// params (in, out, n).
func shocScanKernel() *kernel.Program {
	b := kernel.NewBuilder("scan_kernel")
	sh := b.DeclShared(256 * 4 * 2)
	in := b.Param(0)
	out := b.Param(1)
	n := b.Param(2)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)
	tid := b.S2R(isa.SRTidX)
	four := b.MovImm(4)
	v := b.Ldg(b.IMad(gid, four, in), 0, 4)
	cur := b.Mov(v)
	shAddr := b.IMad(tid, four, b.MovImm(sh))
	b.Sts(shAddr, cur, 0, 4)
	b.Bar()
	for stride := 1; stride < 256; stride *= 2 {
		p := b.ISetpImm(isa.CmpGE, tid, int64(stride))
		b.If(p)
		prev := b.Lds(shAddr, int64(-stride*4), 4)
		b.MovTo(cur, b.IAdd(cur, prev))
		b.EndIf()
		b.Bar()
		b.Sts(shAddr, cur, 0, 4)
		b.Bar()
	}
	b.Stg(b.IMad(gid, four, out), cur, 0, 4)
	b.Exit()
	return b.MustBuild()
}

func shocScan() *App {
	return &App{
		Name:        "scan",
		Suite:       "shoc",
		Description: "Hillis-Steele prefix sum: synchronisation-dominated",
		Run: func(ctx *RunCtx) error {
			const n = 64 * 1024
			in := ctx.Dev.Alloc(n * 4)
			out := ctx.Dev.Alloc(n * 4)
			randIdx(ctx, in, n, 64)
			prog := shocScanKernel()
			return ctx.Exec(launch1D(prog, n, 256, in, out, n))
		},
	}
}

// shocFFTKernel: butterfly exchange stages over shared memory with twiddle
// arithmetic. params (in, out, n).
func shocFFTKernel() *kernel.Program {
	b := kernel.NewBuilder("fft_kernel")
	sh := b.DeclShared(256 * 4)
	in := b.Param(0)
	out := b.Param(1)
	n := b.Param(2)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)
	tid := b.S2R(isa.SRTidX)
	four := b.MovImm(4)
	re := b.Ldg(b.IMad(gid, four, in), 0, 4)
	shAddr := b.IMad(tid, four, b.MovImm(sh))
	for stage := 1; stage <= 128; stage *= 2 {
		b.Sts(shAddr, re, 0, 4)
		b.Bar()
		partner := b.Xor(tid, b.MovImm(int64(stage)))
		other := b.Lds(b.IMad(partner, four, b.MovImm(sh)), 0, 4)
		tw := b.Mufu(isa.MufuCOS, b.FMul(b.I2F(tid), b.FConst(0.049)))
		b.MovTo(re, b.FFma(other, tw, re))
		b.Bar()
	}
	b.Stg(b.IMad(gid, four, out), re, 0, 4)
	b.Exit()
	return b.MustBuild()
}

func shocFFT() *App {
	return &App{
		Name:        "fft",
		Suite:       "shoc",
		Description: "radix-2 butterfly stages: shared-memory exchange plus SFU twiddles",
		Run: func(ctx *RunCtx) error {
			const n = 32 * 1024
			in := ctx.Dev.Alloc(n * 4)
			out := ctx.Dev.Alloc(n * 4)
			randF32(ctx, in, n, -1, 1)
			prog := shocFFTKernel()
			return ctx.Exec(launch1D(prog, n, 256, in, out, n))
		},
	}
}

func shocMD() *App {
	return &App{
		Name:        "md",
		Suite:       "shoc",
		Description: "Lennard-Jones neighbour-list forces: gather plus FP compute",
		Run: func(ctx *RunCtx) error {
			const atoms = 32 * 1024
			const neighbours = 8
			idx := ctx.Dev.Alloc(atoms * neighbours * 4)
			pos := ctx.Dev.Alloc(atoms * 4)
			force := ctx.Dev.Alloc(atoms * 4)
			randIdx(ctx, idx, atoms*neighbours, atoms)
			randF32(ctx, pos, atoms, 0, 1)
			prog := gatherProgram("compute_lj_force", neighbours, 8)
			return ctx.Exec(launch1D(prog, atoms, 192, idx, pos, force, atoms))
		},
	}
}

// shocMD5Kernel: long integer mix chains per thread, no memory in the loop —
// pure ALU.
func shocMD5Kernel(rounds int) *kernel.Program {
	b := kernel.NewBuilder("md5_kernel")
	out := b.Param(0)
	n := b.Param(1)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)
	a := b.Mov(gid)
	c := b.IAddImm(gid, 0x67452301)
	// An outer counted loop re-executes the unrolled mixing body, keeping
	// the register footprint bounded while the dynamic round count stays
	// high.
	b.ForImm(0, int64((rounds+11)/12), 1)
	for i := 0; i < 12; i++ {
		t := b.IAdd(b.And(a, c), b.IMulImm(a, 5))
		t2 := b.Xor(b.Shl(t, 7), b.Shr(t, 3))
		b.MovTo(a, b.IAdd(c, t2))
		b.MovTo(c, t)
	}
	b.EndFor()
	b.Stg(b.IMad(gid, b.MovImm(4), out), a, 0, 4)
	b.Exit()
	return b.MustBuild()
}

func shocMD5Hash() *App {
	return &App{
		Name:        "md5hash",
		Suite:       "shoc",
		Description: "hash search: register-resident integer mixing, issue-bound",
		Run: func(ctx *RunCtx) error {
			const n = 64 * 1024
			out := ctx.Dev.Alloc(n * 4)
			prog := shocMD5Kernel(48)
			return ctx.Exec(launch1D(prog, n, 256, out, n))
		},
	}
}

func shocSpmv() *App {
	return &App{
		Name:        "spmv",
		Suite:       "shoc",
		Description: "sparse matrix-vector product in CSR: irregular gathers",
		Run: func(ctx *RunCtx) error {
			const rows = 48 * 1024
			const nnzPerRow = 6
			cols := ctx.Dev.Alloc(rows * nnzPerRow * 4)
			x := ctx.Dev.Alloc(rows * 4)
			y := ctx.Dev.Alloc(rows * 4)
			randIdx(ctx, cols, rows*nnzPerRow, rows)
			randF32(ctx, x, rows, 0, 1)
			prog := gatherProgram("spmv_csr_scalar", nnzPerRow, 1)
			for it := 0; it < 2; it++ {
				if err := ctx.Exec(launch1D(prog, rows, 192, cols, x, y, rows)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func shocStencil2D() *App {
	return &App{
		Name:        "stencil2d",
		Suite:       "shoc",
		Description: "9-point-style 2-D stencil iterations",
		Run: func(ctx *RunCtx) error {
			const w, h = 512, 128
			in := ctx.Dev.Alloc(w * h * 4)
			out := ctx.Dev.Alloc(w * h * 4)
			randF32(ctx, in, w*h, 0, 1)
			prog := stencil2DProgram("StencilKernel", 4)
			l := &kernel.Launch{
				Program: prog,
				Grid:    kernel.Dim3{X: w / 32, Y: h / 4},
				Block:   kernel.Dim3{X: 32, Y: 4},
				Params:  []uint64{in, out, w, h},
			}
			for it := 0; it < 3; it++ {
				if err := ctx.Exec(l); err != nil {
					return err
				}
				in, out = out, in
				l.Params = []uint64{in, out, w, h}
			}
			return nil
		},
	}
}

func shocSort() *App {
	return &App{
		Name:        "sort",
		Suite:       "shoc",
		Description: "radix sort passes: histogram atomics and scatters",
		Run: func(ctx *RunCtx) error {
			const n = 64 * 1024
			keys := ctx.Dev.Alloc(n * 4)
			hist := ctx.Dev.Alloc(256 * 4)
			scratch := ctx.Dev.Alloc(n * 4)
			randIdx(ctx, keys, n, 1<<30)
			hi := histogramProgram("radixSortStep", 256)
			scatter := stridedProgram("radixScatter", 64)
			for digit := 0; digit < 2; digit++ {
				zeroF32(ctx, hist, 256)
				if err := ctx.Exec(launch1D(hi, n, 256, keys, hist, n)); err != nil {
					return err
				}
				if err := ctx.Exec(launch1D(scatter, n/16, 256, keys, scratch, n/16)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func shocGEMM() *App {
	return &App{
		Name:        "gemm",
		Suite:       "shoc",
		Description: "tiled dense matrix multiply",
		Run: func(ctx *RunCtx) error {
			const m, n, k = 128, 128, 256
			a := ctx.Dev.Alloc(m * k * 4)
			bm := ctx.Dev.Alloc(k * n * 4)
			c := ctx.Dev.Alloc(m * n * 4)
			randF32(ctx, a, m*k, -1, 1)
			randF32(ctx, bm, k*n, -1, 1)
			prog := tiledMatMulProgram("sgemmNN", 16)
			l := &kernel.Launch{
				Program: prog,
				Grid:    kernel.Dim3{X: n / 16, Y: m / 16},
				Block:   kernel.Dim3{X: 16, Y: 16},
				Params:  []uint64{a, bm, c, k, n},
			}
			return ctx.Exec(l)
		},
	}
}

func shocNeuralNet() *App {
	return &App{
		Name:        "neuralnet",
		Suite:       "shoc",
		Description: "feed-forward layer with constant-memory weights",
		Run: func(ctx *RunCtx) error {
			const n = 24 * 1024
			in := ctx.Dev.Alloc(n * 4)
			out := ctx.Dev.Alloc(n * 4)
			randIdx(ctx, in, n, 1<<20)
			weights := make([]float32, 4096)
			for i := range weights {
				weights[i] = ctx.Rng.Float32() - 0.5
			}
			ctx.Dev.Const.WriteF32Slice(kernel.ParamSpace, weights)
			prog := constLookupFull("nn_forward", kernel.ParamSpace, 4096, 24, 2, true, true, 24*1024)
			return ctx.Exec(launch1D(prog, n, 256, in, out, n))
		},
	}
}

func shocS3D() *App {
	return &App{
		Name:        "s3d",
		Suite:       "shoc",
		Description: "combustion chemistry rates: transcendental-heavy per-cell work",
		Run: func(ctx *RunCtx) error {
			const n = 48 * 1024
			out := ctx.Dev.Alloc(n * 4)
			prog := computeLoopProgram("ratt_kernel", isa.PipeSFU, 4)
			return ctx.Exec(launch1D(prog, n, 192, out, n, 8))
		},
	}
}

func shocBFS() *App {
	app := bfsApp("shoc", 1)
	app.Description = "level-synchronous BFS (SHOC graph sizes)"
	return app
}

func shocDeviceMemory() *App {
	return &App{
		Name:        "devicememory",
		Suite:       "shoc",
		Description: "memory microbenchmarks: coalesced, strided and random access",
		Run: func(ctx *RunCtx) error {
			const n = 96 * 1024
			buf := ctx.Dev.Alloc(n * 64)
			out := ctx.Dev.Alloc(n * 4)
			idx := ctx.Dev.Alloc(n * 4)
			randF32(ctx, buf, n, 0, 1)
			randIdx(ctx, idx, n, 1<<30)
			coalesced := streamProgram("readGlobalMemoryCoalesced", 0)
			strided := stridedProgram("readGlobalMemoryUnit", 64)
			random := gupsProgram("readGlobalMemoryRandom")
			if err := ctx.Exec(launch1D(coalesced, n, 256, buf, out, n)); err != nil {
				return err
			}
			if err := ctx.Exec(launch1D(strided, n/4, 256, buf, out, n/4)); err != nil {
				return err
			}
			return ctx.Exec(launch1D(random, n/2, 256, buf, idx, n/2, n-1))
		},
	}
}

package workloads

import (
	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
)

// Altis returns the Altis suite reconstruction (paper §V.C): a Rodinia/SHOC
// evolution refit with modern features and DNN-flavoured applications. The
// ML members (cnn, lstm) read their weights through the constant path, which
// is what makes the constant cache the top level-3 contributor in the
// paper's Fig. 10.
func Altis() []*App {
	sradApp, _ := makeSrad("altis", "srad", 128, 30)
	return []*App{
		bfsApp("altis", 2), cfdApp("altis", 2), dwt2dApp(), gemmApp(),
		gupsApp(), kmeansApp("altis"), lavaMDApp("altis"), mandelbrotApp(),
		maxflopsApp(), nwApp("altis"), particlefilterApp("altis"),
		pathfinderApp("altis"), raytracingApp(), sortApp(), whereApp(),
		cnnApp(), lstmApp(), mlpApp(), gruApp(), sradApp,
	}
}

func dwt2dApp() *App {
	return &App{
		Name:  "dwt2d",
		Suite: "altis",
		Description: "2-D discrete wavelet transform: strided pass over rows " +
			"then a coalesced pass over columns",
		Run: func(ctx *RunCtx) error {
			const n = 64 * 1024
			in := ctx.Dev.Alloc(n * 4 * 8) // room for the strided pass
			out := ctx.Dev.Alloc(n * 4)
			randF32(ctx, in, n, 0, 1)
			rows := stridedProgram("fdwt53_rows", 32)
			cols := streamProgram("fdwt53_cols", 4)
			if err := ctx.Exec(launch1D(rows, n, 256, in, out, n)); err != nil {
				return err
			}
			return ctx.Exec(launch1D(cols, n, 256, out, out, n))
		},
	}
}

func gemmApp() *App {
	return &App{
		Name:        "gemm",
		Suite:       "altis",
		Description: "dense matrix multiply with shared-memory tiles",
		Run: func(ctx *RunCtx) error {
			const m, n, k = 128, 192, 384
			a := ctx.Dev.Alloc(m * k * 4)
			bm := ctx.Dev.Alloc(k * n * 4)
			c := ctx.Dev.Alloc(m * n * 4)
			randF32(ctx, a, m*k, -1, 1)
			randF32(ctx, bm, k*n, -1, 1)
			prog := tiledMatMulProgram("sgemm_kernel", 16)
			l := &kernel.Launch{
				Program: prog,
				Grid:    kernel.Dim3{X: n / 16, Y: m / 16},
				Block:   kernel.Dim3{X: 16, Y: 16},
				Params:  []uint64{a, bm, c, k, n},
			}
			return ctx.Exec(l)
		},
	}
}

func gupsApp() *App {
	return &App{
		Name:  "gups",
		Suite: "altis",
		Description: "giga-updates-per-second: random read-modify-writes " +
			"across a table far larger than L2",
		Run: func(ctx *RunCtx) error {
			const tableWords = 1 << 21 // 8 MB > 4 MB L2
			const updates = 96 * 1024
			table := ctx.Dev.Alloc(tableWords * 4)
			idx := ctx.Dev.Alloc(updates * 4)
			randIdx(ctx, idx, updates, 1<<30)
			prog := gupsProgram("gups_kernel")
			l := launch1D(prog, updates, 256, table, idx, updates, tableWords-1)
			return ctx.Exec(l)
		},
	}
}

func mandelbrotApp() *App {
	return &App{
		Name:  "mandelbrot",
		Suite: "altis",
		Description: "escape-time fractal: register-resident FP32 iteration, " +
			"the highest-retire Altis app (paper ~70%)",
		Run: func(ctx *RunCtx) error {
			const w, h = 256, 128
			out := ctx.Dev.Alloc(w * h * 4)
			prog := mandelbrotProgram("mandelbrot_kernel")
			l := &kernel.Launch{
				Program: prog,
				Grid:    kernel.Dim3{X: w / 32, Y: h / 4},
				Block:   kernel.Dim3{X: 32, Y: 4},
				Params:  []uint64{out, w, 96},
			}
			return ctx.Exec(l)
		},
	}
}

func maxflopsApp() *App {
	return &App{
		Name:        "maxflops",
		Suite:       "altis",
		Description: "peak-FLOPS microbenchmark: pure FMA chains",
		Run: func(ctx *RunCtx) error {
			const n = 64 * 1024
			out := ctx.Dev.Alloc(n * 4)
			prog := computeLoopProgram("maxflops_fp32", isa.PipeFMA, 16)
			return ctx.Exec(launch1D(prog, n, 256, out, n, 24))
		},
	}
}

func raytracingApp() *App {
	return &App{
		Name:  "raytracing",
		Suite: "altis",
		Description: "ray-scene intersection stand-in: texture-path fetches " +
			"with divergent shading work",
		Run: func(ctx *RunCtx) error {
			const n = 32 * 1024
			img := ctx.Dev.Alloc((1 << 14) * 4)
			out := ctx.Dev.Alloc(n * 4)
			shade := ctx.Dev.Alloc(n * 4)
			randF32(ctx, img, 1<<14, 0, 1)
			randIdx(ctx, shade, n, 1<<16)
			tex := texSampleProgram("raytracing_render", 6)
			div := divergentProgram("raytracing_shade", 16, 4)
			if err := ctx.Exec(launch1D(tex, n, 192, img, out, n)); err != nil {
				return err
			}
			return ctx.Exec(launch1D(div, n, 192, shade, out, n))
		},
	}
}

func sortApp() *App {
	return &App{
		Name:  "sort",
		Suite: "altis",
		Description: "radix sort: per-digit histogram and scatter passes " +
			"with atomic bucket counters",
		Run: func(ctx *RunCtx) error {
			const n = 96 * 1024
			keys := ctx.Dev.Alloc(n * 4)
			hist := ctx.Dev.Alloc(256 * 4)
			scratch := ctx.Dev.Alloc(n * 4)
			randIdx(ctx, keys, n, 1<<30)
			hi := histogramProgram("radixSortBlocks", 256)
			scatter := stridedProgram("scatter_pass", 64)
			for digit := 0; digit < 3; digit++ {
				zeroF32(ctx, hist, 256)
				if err := ctx.Exec(launch1D(hi, n, 256, keys, hist, n)); err != nil {
					return err
				}
				if err := ctx.Exec(launch1D(scatter, n/16, 256, keys, scratch, n/16)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// whereKernel: params (in, out, counter, n, thresholdBits). Stream
// compaction: ballot/popcount bookkeeping per warp, per-lane atomic slot
// reservation, divergent scatter of the kept elements.
func whereKernel() *kernel.Program {
	b := kernel.NewBuilder("where_kernel")
	in := b.Param(0)
	out := b.Param(1)
	counter := b.Param(2)
	n := b.Param(3)
	thr := b.Param(4)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)
	lane := b.S2R(isa.SRLaneID)
	v := b.Ldg(b.IMad(gid, b.MovImm(4), in), 0, 4)
	keep := b.ISetp(isa.CmpGT, v, thr)
	// Warp-level bookkeeping, as the cooperative-groups version computes.
	ballot := b.Ballot(keep)
	one := b.MovImm(1)
	lmask := b.IAddImm(b.ShlReg(one, lane), -1)
	rank := b.Popc(b.And(ballot, lmask))
	_ = rank
	// Kept lanes reserve an output slot and scatter.
	pos := b.AtomIf(keep, false, isa.AtomAdd, counter, one, 0)
	b.StgIf(keep, false, b.IMad(pos, b.MovImm(4), out), v, 0, 4)
	b.Exit()
	return b.MustBuild()
}

func whereApp() *App {
	return &App{
		Name:  "where",
		Suite: "altis",
		Description: "stream compaction: ballots, per-warp atomics and " +
			"divergent scatters",
		Run: func(ctx *RunCtx) error {
			const n = 64 * 1024
			in := ctx.Dev.Alloc(n * 4)
			out := ctx.Dev.Alloc(n * 4 * 2)
			counter := ctx.Dev.Alloc(4)
			randIdx(ctx, in, n, 1<<20)
			ctx.Dev.Storage.Write(counter, 0, 4)
			prog := whereKernel()
			return ctx.Exec(launch1D(prog, n, 256, in, out, counter, n, 1<<19))
		},
	}
}

func cnnApp() *App {
	return &App{
		Name:  "cnn",
		Suite: "altis",
		Description: "convolution inference stand-in: weights live in " +
			"constant memory (16 KB, far beyond the 2 KB IMC) — the paper's " +
			"DNN constant-cache bottleneck",
		Run: func(ctx *RunCtx) error {
			const n = 48 * 1024
			in := ctx.Dev.Alloc(n * 4)
			out := ctx.Dev.Alloc(n * 4)
			randIdx(ctx, in, n, 1<<20)
			weights := make([]float32, 4096)
			for i := range weights {
				weights[i] = ctx.Rng.Float32() - 0.5
			}
			ctx.Dev.Const.WriteF32Slice(kernel.ParamSpace, weights)
			conv := constLookupFull("conv_forward", kernel.ParamSpace, 4096, 36, 2, true, true, 24*1024)
			pool := streamProgram("maxpool_forward", 3)
			if err := ctx.Exec(launch1D(conv, n, 256, in, out, n)); err != nil {
				return err
			}
			return ctx.Exec(launch1D(pool, n, 256, out, out, n))
		},
	}
}

func mlpApp() *App {
	return &App{
		Name:  "mlp",
		Suite: "altis",
		Description: "fully-connected inference stand-in: layer weights " +
			"stream through the constant cache",
		Run: func(ctx *RunCtx) error {
			const n = 32 * 1024
			in := ctx.Dev.Alloc(n * 4)
			out := ctx.Dev.Alloc(n * 4)
			randIdx(ctx, in, n, 1<<20)
			weights := make([]float32, 8192)
			for i := range weights {
				weights[i] = ctx.Rng.Float32() - 0.5
			}
			ctx.Dev.Const.WriteF32Slice(kernel.ParamSpace, weights)
			layer := constLookupFull("fc_forward", kernel.ParamSpace, 8192, 32, 2, true, true, 24*1024)
			for l := 0; l < 2; l++ {
				if err := ctx.Exec(launch1D(layer, n, 256, in, out, n)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func gruApp() *App {
	return &App{
		Name:  "gru",
		Suite: "altis",
		Description: "gated recurrent unit stand-in: two constant-weight " +
			"gate matvecs per step plus elementwise updates",
		Run: func(ctx *RunCtx) error {
			const n = 24 * 1024
			in := ctx.Dev.Alloc(n * 4)
			out := ctx.Dev.Alloc(n * 4)
			randIdx(ctx, in, n, 1<<20)
			weights := make([]float32, 4096)
			for i := range weights {
				weights[i] = ctx.Rng.Float32() - 0.5
			}
			ctx.Dev.Const.WriteF32Slice(kernel.ParamSpace, weights)
			gates := constLookupFull("gru_gates", kernel.ParamSpace, 4096, 28, 2, true, true, 24*1024)
			update := streamProgram("gru_update", 4)
			for step := 0; step < 2; step++ {
				if err := ctx.Exec(launch1D(gates, n, 256, in, out, n)); err != nil {
					return err
				}
			}
			return ctx.Exec(launch1D(update, n, 256, out, out, n))
		},
	}
}

func lstmApp() *App {
	return &App{
		Name:  "lstm",
		Suite: "altis",
		Description: "recurrent cell stand-in: gate matvecs against constant " +
			"weight tables plus SFU activations",
		Run: func(ctx *RunCtx) error {
			const n = 32 * 1024
			in := ctx.Dev.Alloc(n * 4)
			out := ctx.Dev.Alloc(n * 4)
			act := ctx.Dev.Alloc(n * 4)
			randIdx(ctx, in, n, 1<<20)
			weights := make([]float32, 8192) // 32 KB of gate weights
			for i := range weights {
				weights[i] = ctx.Rng.Float32() - 0.5
			}
			ctx.Dev.Const.WriteF32Slice(kernel.ParamSpace, weights)
			gates := constLookupFull("lstm_gates", kernel.ParamSpace, 8192, 40, 2, true, true, 24*1024)
			activ := computeLoopProgram("lstm_activation", isa.PipeSFU, 2)
			for step := 0; step < 2; step++ {
				if err := ctx.Exec(launch1D(gates, n, 256, in, out, n)); err != nil {
					return err
				}
				if err := ctx.Exec(launch1D(activ, n, 256, act, n, 4)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

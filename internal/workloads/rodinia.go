package workloads

import (
	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
)

// Rodinia returns the Rodinia-3.1 suite reconstruction (paper §V.B). Each
// app mimics the microarchitectural profile of its namesake: srad_v2,
// heartwall, hotspot3D and pathfinder retire well; myocyte and nn stress the
// constant cache; bfs diverges; most of the rest is backend/memory bound.
func Rodinia() []*App {
	return []*App{
		backpropApp(), bfsApp("rodinia", 1), btreeApp(), cfdApp("rodinia", 1),
		gaussianApp(), heartwallApp(), hotspotApp(), hotspot3DApp(),
		huffmanApp(), kmeansApp("rodinia"), lavaMDApp("rodinia"), ludApp(),
		myocyteApp(), nnApp(), nwApp("rodinia"), particlefilterApp("rodinia"),
		pathfinderApp("rodinia"), sradV1App(), sradV2App(), streamclusterApp(),
	}
}

func backpropApp() *App {
	return &App{
		Name:  "backprop",
		Suite: "rodinia",
		Description: "two-layer perceptron training step: shared-memory " +
			"layer-forward reduction plus streaming weight adjustment",
		Run: func(ctx *RunCtx) error {
			const n = 64 * 1024
			in := ctx.Dev.Alloc(n * 4)
			hidden := ctx.Dev.Alloc(n / 256 * 4)
			weights := ctx.Dev.Alloc(n * 4)
			randF32(ctx, in, n, 0, 1)
			randF32(ctx, weights, n, -0.5, 0.5)
			forward := reductionProgram("bpnn_layerforward", 256)
			adjust := streamProgram("bpnn_adjust_weights", 6)
			for epoch := 0; epoch < 2; epoch++ {
				if err := ctx.Exec(launch1D(forward, n, 256, in, hidden)); err != nil {
					return err
				}
				if err := ctx.Exec(launch1D(adjust, n, 256, in, weights, n)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// bfsKernel: params (offsets, edges, dist, n, level). Threads whose distance
// equals level relax their out-edges.
func bfsKernel(name string) *kernel.Program {
	b := kernel.NewBuilder(name)
	offsets := b.Param(0)
	edges := b.Param(1)
	dist := b.Param(2)
	n := b.Param(3)
	level := b.Param(4)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)
	four := b.MovImm(4)
	d := b.Ldg(b.IMad(gid, four, dist), 0, 4)
	p := b.ISetp(isa.CmpEQ, d, level)
	b.If(p)
	oaddr := b.IMad(gid, four, offsets)
	start := b.Ldg(oaddr, 0, 4)
	end := b.Ldg(oaddr, 4, 4)
	count := b.ISub(end, start)
	ebase := b.IMad(start, four, edges)
	nlevel := b.IAddImm(level, 1)
	i := b.For(0, count, 1)
	nb := b.Ldg(b.IMad(i, four, ebase), 0, 4)
	daddr := b.IMad(nb, four, dist)
	dn := b.Ldg(daddr, 0, 4)
	unvisited := b.ISetpImm(isa.CmpGE, dn, 1<<20)
	b.StgIf(unvisited, false, daddr, nlevel, 0, 4)
	b.EndFor()
	b.EndIf()
	b.Exit()
	return b.MustBuild()
}

func bfsApp(suite string, version int) *App {
	return &App{
		Name:  "bfs",
		Suite: suite,
		Description: "level-synchronous breadth-first search over a random " +
			"graph in CSR form: divergent, irregular gathers",
		Run: func(ctx *RunCtx) error {
			const nodes = 48 * 1024
			degree := 4 + version // altis refit bumps the average degree
			edgesN := nodes * degree
			offsets := ctx.Dev.Alloc((nodes + 1) * 4)
			edges := ctx.Dev.Alloc(edgesN * 4)
			dist := ctx.Dev.Alloc(nodes * 4)
			offs := make([]uint32, nodes+1)
			for i := 1; i <= nodes; i++ {
				offs[i] = offs[i-1] + uint32(ctx.Rng.Intn(2*degree))
				if offs[i] > uint32(edgesN) {
					offs[i] = uint32(edgesN)
				}
			}
			ctx.Dev.Storage.WriteU32Slice(offsets, offs)
			randIdx(ctx, edges, edgesN, nodes)
			d0 := make([]uint32, nodes)
			for i := range d0 {
				d0[i] = 1 << 21
			}
			d0[0] = 0
			ctx.Dev.Storage.WriteU32Slice(dist, d0)
			prog := bfsKernel("bfs_kernel")
			for level := 0; level < 7; level++ {
				l := launch1D(prog, nodes, 256, offsets, edges, dist, nodes, uint64(level))
				if err := ctx.Exec(l); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func btreeApp() *App {
	return &App{
		Name:  "b+tree",
		Suite: "rodinia",
		Description: "bundled key lookups walking randomised node chains: " +
			"dependent loads, pure memory latency",
		Run: func(ctx *RunCtx) error {
			const n = 16 * 1024
			nodes := n / 32 // one chain per warp
			chain := ctx.Dev.Alloc(nodes * 4)
			keys := ctx.Dev.Alloc(nodes * 32 * 4)
			out := ctx.Dev.Alloc(n * 4)
			// A random permutation cycle defeats both caches and prefetch.
			perm := ctx.Rng.Perm(nodes)
			next := make([]uint32, nodes)
			for i := 0; i < nodes; i++ {
				next[perm[i]] = uint32(perm[(i+1)%nodes])
			}
			ctx.Dev.Storage.WriteU32Slice(chain, next)
			randIdx(ctx, keys, nodes*32, 1<<20)
			prog := pointerChaseProgram("findK")
			for q := 0; q < 2; q++ {
				if err := ctx.Exec(launch1D(prog, n, 128, chain, keys, out, 48)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func cfdApp(suite string, version int) *App {
	return &App{
		Name:  "cfd",
		Suite: suite,
		Description: "unstructured-grid Euler solver: neighbour-gather flux " +
			"computation plus a streaming time step",
		Run: func(ctx *RunCtx) error {
			const elems = 48 * 1024
			const k = 4
			idx := ctx.Dev.Alloc(elems * k * 4)
			data := ctx.Dev.Alloc(elems * 4)
			out := ctx.Dev.Alloc(elems * 4)
			if version >= 2 {
				// Altis refit: neighbour lists sorted into windows for
				// locality ("better performance" per §V.C).
				ids := make([]uint32, elems*k)
				for i := range ids {
					base := (i / (256 * k)) * 256
					ids[i] = uint32(base + ctx.Rng.Intn(512))
					if ids[i] >= elems {
						ids[i] = uint32(elems - 1)
					}
				}
				ctx.Dev.Storage.WriteU32Slice(idx, ids)
			} else {
				randIdx(ctx, idx, elems*k, elems)
			}
			randF32(ctx, data, elems, 0, 1)
			flux := gatherProgram("compute_flux", k, 6)
			step := streamProgram("time_step", 4)
			for it := 0; it < 3; it++ {
				if err := ctx.Exec(launch1D(flux, elems, 192, idx, data, out, elems)); err != nil {
					return err
				}
				if err := ctx.Exec(launch1D(step, elems, 192, out, data, elems)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func gaussianApp() *App {
	return &App{
		Name:  "gaussian",
		Suite: "rodinia",
		Description: "Gaussian elimination: a long sequence of tiny Fan1/Fan2 " +
			"launches that never fill the machine",
		Run: func(ctx *RunCtx) error {
			const dim = 512
			m := ctx.Dev.Alloc(dim * dim * 4)
			v := ctx.Dev.Alloc(dim * 4)
			randF32(ctx, m, dim*dim, 0.1, 1)
			randF32(ctx, v, dim, 0.1, 1)
			fan1 := streamProgram("Fan1", 2)
			fan2 := streamProgram("Fan2", 3)
			for it := 0; it < 24; it++ {
				rows := dim - it*16
				if err := ctx.Exec(launch1D(fan1, rows, 128, v, v, uint64(rows))); err != nil {
					return err
				}
				if err := ctx.Exec(launch1D(fan2, rows*16, 128, m, m, uint64(rows*16))); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func heartwallApp() *App {
	return &App{
		Name:  "heartwall",
		Suite: "rodinia",
		Description: "template-matching convolutions expressed as tiled " +
			"shared-memory matrix products: compute-dense, high retire",
		Run: func(ctx *RunCtx) error {
			const m, n, k = 128, 128, 288
			a := ctx.Dev.Alloc(m * k * 4)
			bm := ctx.Dev.Alloc(k * n * 4)
			c := ctx.Dev.Alloc(m * n * 4)
			randF32(ctx, a, m*k, -1, 1)
			randF32(ctx, bm, k*n, -1, 1)
			prog := tiledMatMulProgram("heartwall_conv", 8)
			l := &kernel.Launch{
				Program: prog,
				Grid:    kernel.Dim3{X: n / 8, Y: m / 8},
				Block:   kernel.Dim3{X: 8, Y: 8},
				Params:  []uint64{a, bm, c, k, n},
			}
			sums := ctx.Dev.Alloc(m * n / 256 * 4)
			track := divergentProgram("heartwall_track", 12, 6)
			red := reductionProgram("heartwall_reduce", 256)
			for f := 0; f < 2; f++ {
				if err := ctx.Exec(l); err != nil {
					return err
				}
				if err := ctx.Exec(launch1D(track, m*n, 256, c, c, m*n)); err != nil {
					return err
				}
				if err := ctx.Exec(launch1D(red, m*n, 256, c, sums)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func hotspotApp() *App {
	return &App{
		Name:        "hotspot",
		Suite:       "rodinia",
		Description: "2-D thermal stencil with moderate arithmetic per point",
		Run: func(ctx *RunCtx) error {
			const w, h = 512, 256
			in := ctx.Dev.Alloc(w * h * 4)
			out := ctx.Dev.Alloc(w * h * 4)
			randF32(ctx, in, w*h, 0, 100)
			prog := stencil2DProgram("calculate_temp", 6)
			l := &kernel.Launch{
				Program: prog,
				Grid:    kernel.Dim3{X: w / 32, Y: h / 4},
				Block:   kernel.Dim3{X: 32, Y: 4},
				Params:  []uint64{in, out, w, h},
			}
			for it := 0; it < 4; it++ {
				if err := ctx.Exec(l); err != nil {
					return err
				}
				in, out = out, in
				l.Params = []uint64{in, out, w, h}
			}
			return nil
		},
	}
}

func hotspot3DApp() *App {
	return &App{
		Name:  "hotspot3D",
		Suite: "rodinia",
		Description: "3-D thermal stencil streaming the Z dimension in " +
			"registers: strong reuse, high retire",
		Run: func(ctx *RunCtx) error {
			const w, h, d = 96, 96, 32
			in := ctx.Dev.Alloc(w * h * d * 4)
			out := ctx.Dev.Alloc(w * h * d * 4)
			randF32(ctx, in, w*h*d, 0, 100)
			prog := stencil3DProgram("hotspotOpt1", 10)
			l := &kernel.Launch{
				Program: prog,
				Grid:    kernel.Dim3{X: w / 32, Y: h / 8},
				Block:   kernel.Dim3{X: 32, Y: 8},
				Params:  []uint64{in, out, w, h, d},
			}
			for it := 0; it < 3; it++ {
				if err := ctx.Exec(l); err != nil {
					return err
				}
				in, out = out, in
				l.Params = []uint64{in, out, w, h, d}
			}
			return nil
		},
	}
}

func huffmanApp() *App {
	return &App{
		Name:  "huffman",
		Suite: "rodinia",
		Description: "entropy coding: data-dependent branch paths and " +
			"histogram atomics",
		Run: func(ctx *RunCtx) error {
			const n = 64 * 1024
			in := ctx.Dev.Alloc(n * 4)
			out := ctx.Dev.Alloc(n * 4)
			hist := ctx.Dev.Alloc(256 * 4)
			randIdx(ctx, in, n, 1<<16)
			zeroF32(ctx, hist, 256)
			div := divergentProgram("vlc_encode", 20, 4)
			hi := histogramProgram("histo_kernel", 256)
			if err := ctx.Exec(launch1D(div, n, 256, in, out, n)); err != nil {
				return err
			}
			return ctx.Exec(launch1D(hi, n, 256, in, hist, n))
		},
	}
}

func kmeansApp(suite string) *App {
	return &App{
		Name:  "kmeans",
		Suite: suite,
		Description: "distance computation against a small centroid table in " +
			"constant memory plus streaming updates",
		Run: func(ctx *RunCtx) error {
			const n = 48 * 1024
			const dims = 8
			feats := ctx.Dev.Alloc(n * 4)
			idx := ctx.Dev.Alloc(n * dims * 4)
			out := ctx.Dev.Alloc(n * 4)
			randF32(ctx, feats, n, 0, 1)
			randIdx(ctx, idx, n*dims, n)
			randIdxU := idx // feature gathers per dimension
			// Centroids fit the IMC: mostly hits, a realistic light load.
			centroids := make([]float32, 128)
			for i := range centroids {
				centroids[i] = ctx.Rng.Float32()
			}
			ctx.Dev.Const.WriteF32Slice(kernel.ParamSpace, centroids)
			dist := gatherProgram("kmeansPoint", dims, 2)
			assign := constLookupProgram("kmeans_assign", kernel.ParamSpace, 128, 8, 2, true)
			for it := 0; it < 2; it++ {
				if err := ctx.Exec(launch1D(dist, n, 256, randIdxU, feats, out, n)); err != nil {
					return err
				}
				if err := ctx.Exec(launch1D(assign, n, 256, out, out, n)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func lavaMDApp(suite string) *App {
	return &App{
		Name:  "lavamd",
		Suite: suite,
		Description: "n-body short-range forces in shared-memory tiles: " +
			"compute-heavy with barrier phases",
		Run: func(ctx *RunCtx) error {
			const m, n, k = 128, 128, 256
			a := ctx.Dev.Alloc(m * k * 4)
			bm := ctx.Dev.Alloc(k * n * 4)
			c := ctx.Dev.Alloc(m * n * 4)
			randF32(ctx, a, m*k, -1, 1)
			randF32(ctx, bm, k*n, -1, 1)
			mm := tiledMatMulProgram("kernel_gpu_cuda", 8)
			stream := streamProgram("lavamd_update", 8)
			l := &kernel.Launch{
				Program: mm,
				Grid:    kernel.Dim3{X: n / 8, Y: m / 8},
				Block:   kernel.Dim3{X: 8, Y: 8},
				Params:  []uint64{a, bm, c, k, n},
			}
			if err := ctx.Exec(l); err != nil {
				return err
			}
			return ctx.Exec(launch1D(stream, m*n, 256, c, c, m*n))
		},
	}
}

func ludApp() *App {
	return &App{
		Name:  "lud",
		Suite: "rodinia",
		Description: "blocked LU decomposition: alternating tiny diagonal " +
			"kernels and tile updates",
		Run: func(ctx *RunCtx) error {
			const dim = 256
			m := ctx.Dev.Alloc(dim * dim * 4)
			randF32(ctx, m, dim*dim, 0.1, 1)
			diag := streamProgram("lud_diagonal", 4)
			peri := streamProgram("lud_perimeter", 4)
			inner := tiledMatMulProgram("lud_internal", 8)
			for t := 0; t < 4; t++ {
				rem := dim - t*16
				if rem < 32 {
					break
				}
				if err := ctx.Exec(launch1D(diag, 256, 128, m, m, 256)); err != nil {
					return err
				}
				if err := ctx.Exec(launch1D(peri, rem*16, 128, m, m, uint64(rem*16))); err != nil {
					return err
				}
				g := rem / 8
				l := &kernel.Launch{
					Program: inner,
					Grid:    kernel.Dim3{X: g, Y: g},
					Block:   kernel.Dim3{X: 8, Y: 8},
					Params:  []uint64{m, m, m, 32, 128},
				}
				if err := ctx.Exec(l); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func myocyteApp() *App {
	return &App{
		Name:  "myocyte",
		Suite: "rodinia",
		Description: "cardiac ODE integration: tiny grid (no parallelism) " +
			"reading large model-parameter tables through the constant cache",
		Run: func(ctx *RunCtx) error {
			const n = 4 * 64 // 4 blocks of 64 threads: deliberately tiny
			in := ctx.Dev.Alloc(n * 4)
			out := ctx.Dev.Alloc(n * 4)
			randIdx(ctx, in, n, 1<<20)
			table := make([]float32, 8192) // 32 KB >> 2 KB IMC
			for i := range table {
				table[i] = ctx.Rng.Float32()
			}
			ctx.Dev.Const.WriteF32Slice(kernel.ParamSpace, table)
			prog := constLookupProgram("solver_2", kernel.ParamSpace, 8192, 48, 6, true)
			for step := 0; step < 3; step++ {
				if err := ctx.Exec(launch1D(prog, n, 64, in, out, n)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func nnApp() *App {
	return &App{
		Name:  "nn",
		Suite: "rodinia",
		Description: "nearest-neighbour search against record tables read " +
			"through the constant cache",
		Run: func(ctx *RunCtx) error {
			// Few records per launch: like myocyte, nn offers the machine
			// little parallelism, so its dependent record walks through the
			// constant bank cannot be hidden.
			const n = 1536
			in := ctx.Dev.Alloc(n * 4)
			out := ctx.Dev.Alloc(n * 4)
			randIdx(ctx, in, n, 1<<20)
			table := make([]float32, 4096) // 16 KB > IMC
			for i := range table {
				table[i] = ctx.Rng.Float32()
			}
			ctx.Dev.Const.WriteF32Slice(kernel.ParamSpace, table)
			prog := constLookupChase("euclid", kernel.ParamSpace, 4096, 48, 1, true, true)
			for q := 0; q < 3; q++ {
				if err := ctx.Exec(launch1D(prog, n, 64, in, out, n)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// nwKernel: params (ref, out, n). Wavefront DP over a shared-memory tile:
// barrier-dominated with integer max/add work.
func nwKernel(name string, steps int) *kernel.Program {
	b := kernel.NewBuilder(name)
	sh := b.DeclShared(64 * 4)
	ref := b.Param(0)
	out := b.Param(1)
	n := b.Param(2)
	tid := b.S2R(isa.SRTidX)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)
	four := b.MovImm(4)
	v := b.Ldg(b.IMad(gid, four, ref), 0, 4)
	shAddr := b.IMad(tid, four, b.MovImm(sh))
	leftIdx := b.AndImm(b.IAddImm(tid, 63), 63)
	leftAddr := b.IMad(leftIdx, four, b.MovImm(sh))
	b.Sts(shAddr, v, 0, 4)
	b.Bar()
	cur := b.Mov(v)
	for i := 0; i < steps; i++ {
		left := b.Lds(leftAddr, 0, 4)
		up := b.Lds(shAddr, 0, 4)
		m := b.IMax(left, up)
		b.MovTo(cur, b.IAdd(m, cur))
		b.Bar()
		b.Sts(shAddr, cur, 0, 4)
		b.Bar()
	}
	b.Stg(b.IMad(gid, four, out), cur, 0, 4)
	b.Exit()
	return b.MustBuild()
}

func nwApp(suite string) *App {
	return &App{
		Name:  "nw",
		Suite: suite,
		Description: "Needleman-Wunsch wavefront alignment: " +
			"synchronisation-bound shared-memory diagonals",
		Run: func(ctx *RunCtx) error {
			const n = 16 * 1024
			ref := ctx.Dev.Alloc(n * 4)
			out := ctx.Dev.Alloc(n * 4)
			randIdx(ctx, ref, n, 32)
			prog := nwKernel("needle_cuda_shared_1", 12)
			for pass := 0; pass < 2; pass++ {
				if err := ctx.Exec(launch1D(prog, n, 64, ref, out, n)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func particlefilterApp(suite string) *App {
	return &App{
		Name:  "particlefilter",
		Suite: suite,
		Description: "particle propagation, likelihood and resampling: " +
			"mixed compute, reduction and histogram phases",
		Run: func(ctx *RunCtx) error {
			const n = 32 * 1024
			in := ctx.Dev.Alloc(n * 4)
			out := ctx.Dev.Alloc(n * 4)
			sums := ctx.Dev.Alloc(n / 256 * 4)
			hist := ctx.Dev.Alloc(64 * 4)
			randIdx(ctx, in, n, 1<<16)
			prop := streamProgram("likelihood_kernel", 10)
			red := reductionProgram("sum_kernel", 256)
			hi := histogramProgram("normalize_weights", 64)
			if err := ctx.Exec(launch1D(prop, n, 256, in, out, n)); err != nil {
				return err
			}
			if err := ctx.Exec(launch1D(red, n, 256, out, sums)); err != nil {
				return err
			}
			return ctx.Exec(launch1D(hi, n, 256, in, hist, n))
		},
	}
}

// pathfinderKernel: params (wall, result, cols). Each block keeps a row
// segment in shared memory and advances several DP rows per launch — mostly
// compute between barriers, so it retires well.
func pathfinderKernel(name string, rowsPerLaunch int) *kernel.Program {
	b := kernel.NewBuilder(name)
	sh := b.DeclShared(256 * 4)
	wall := b.Param(0)
	result := b.Param(1)
	cols := b.Param(2)
	tid := b.S2R(isa.SRTidX)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, cols), false)
	four := b.MovImm(4)
	cur := b.Ldg(b.IMad(gid, four, result), 0, 4)
	shAddr := b.IMad(tid, four, b.MovImm(sh))
	lAddr := b.IMad(b.AndImm(b.IAddImm(tid, 255), 255), four, b.MovImm(sh))
	rAddr := b.IMad(b.AndImm(b.IAddImm(tid, 1), 255), four, b.MovImm(sh))
	colsBytes := b.Shl(cols, 2)
	wAddr := b.IMad(gid, four, wall)
	// Prefetch every row's wall cost up front: the loads issue back to back
	// so their latencies overlap, and the DP loop proper runs out of
	// registers and shared memory — the structure that makes the real
	// pathfinder one of the healthiest Rodinia kernels.
	wv := make([]isa.Reg, rowsPerLaunch)
	for r := 0; r < rowsPerLaunch; r++ {
		wv[r] = b.Ldg(wAddr, 0, 4)
		wAddr = b.IAdd(wAddr, colsBytes)
	}
	_ = colsBytes
	for r := 0; r < rowsPerLaunch; r++ {
		b.Sts(shAddr, cur, 0, 4)
		b.Bar()
		left := b.Lds(lAddr, 0, 4)
		right := b.Lds(rAddr, 0, 4)
		up := b.Lds(shAddr, 0, 4)
		best := b.IMin(b.IMin(left, right), up)
		b.MovTo(cur, b.IAdd(best, wv[r]))
		// A chain of integer work per row (cost clamping, penalty terms)
		// keeps the ALU fed between barriers, as the real kernel's index
		// arithmetic does.
		t := b.IMulImm(cur, 3)
		t = b.IAddImm(t, 17)
		t = b.Shr(t, 1)
		t = b.IMax(t, cur)
		t = b.IMin(t, b.IAddImm(cur, 64))
		t = b.Xor(t, best)
		b.MovTo(cur, b.IMax(cur, b.ISub(t, t)))
		b.Bar()
	}
	b.Stg(b.IMad(gid, four, result), cur, 0, 4)
	b.Exit()
	return b.MustBuild()
}

func pathfinderApp(suite string) *App {
	return &App{
		Name:  "pathfinder",
		Suite: suite,
		Description: "grid dynamic programming: shared-memory rows, good " +
			"arithmetic density, high retire",
		Run: func(ctx *RunCtx) error {
			const cols = 32 * 1024
			const rows = 8
			wall := ctx.Dev.Alloc(cols * rows * 4)
			result := ctx.Dev.Alloc(cols * 4)
			randIdx(ctx, wall, cols*rows, 16)
			randIdx(ctx, result, cols, 16)
			prog := pathfinderKernel("dynproc_kernel", rows)
			for pass := 0; pass < 2; pass++ {
				if err := ctx.Exec(launch1D(prog, cols, 256, wall, result, cols)); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func sradV1App() *App {
	app, _ := makeSrad("rodinia", "srad_v1", 128, 24)
	app.Description = "speckle-reducing anisotropic diffusion, v1 kernels"
	return app
}

func sradV2App() *App {
	return &App{
		Name:  "srad_v2",
		Suite: "rodinia",
		Description: "SRAD v2: retiled stencil with high arithmetic " +
			"intensity — among the healthiest Rodinia kernels",
		Run: func(ctx *RunCtx) error {
			const w, h = 256, 256
			in := ctx.Dev.Alloc(w * h * 4)
			out := ctx.Dev.Alloc(w * h * 4)
			randF32(ctx, in, w*h, 0, 1)
			prog := stencil2DProgram("srad_cuda_v2", 24)
			l := &kernel.Launch{
				Program: prog,
				Grid:    kernel.Dim3{X: w / 32, Y: h / 4},
				Block:   kernel.Dim3{X: 32, Y: 4},
				Params:  []uint64{in, out, w, h},
			}
			for it := 0; it < 4; it++ {
				if err := ctx.Exec(l); err != nil {
					return err
				}
				in, out = out, in
				l.Params = []uint64{in, out, w, h}
			}
			return nil
		},
	}
}

func streamclusterApp() *App {
	return &App{
		Name:  "streamcluster",
		Suite: "rodinia",
		Description: "online clustering: bandwidth-bound distance streams " +
			"with an irregular assignment gather",
		Run: func(ctx *RunCtx) error {
			const n = 128 * 1024
			const k = 8
			in := ctx.Dev.Alloc(n * 4)
			out := ctx.Dev.Alloc(n * 4)
			idx := ctx.Dev.Alloc(n / 4 * k * 4)
			randF32(ctx, in, n, 0, 1)
			randIdx(ctx, idx, n/4*k, n)
			dist := streamProgram("pgain_dist", 2)
			assign := gatherProgram("pgain_assign", k, 1)
			if err := ctx.Exec(launch1D(dist, n, 256, in, out, n)); err != nil {
				return err
			}
			return ctx.Exec(launch1D(assign, n/4, 256, idx, in, out, n/4))
		},
	}
}

package workloads

import (
	"reflect"
	"testing"

	"gputopdown/internal/gpu"
	"gputopdown/internal/kernel"
	"gputopdown/internal/sim"
)

// collectRuns executes an app on a fresh device with the given engine,
// trace setting and intra-launch worker count, and returns every launch's
// full RunResult — cycles, aggregate counters, per-SM deltas and trace
// samples.
func collectRuns(t *testing.T, a *App, spec *gpu.Spec, fastForward bool, traceInterval uint64, workers int) []*sim.RunResult {
	t.Helper()
	dev := sim.NewDevice(spec)
	dev.SetFastForward(fastForward)
	dev.SetSimWorkers(workers)
	if traceInterval > 0 {
		dev.EnableTrace(traceInterval)
	}
	var runs []*sim.RunResult
	err := a.Execute(dev, func(l *kernel.Launch) error {
		res, err := dev.Launch(l)
		if err != nil {
			return err
		}
		runs = append(runs, res)
		return nil
	})
	if err != nil {
		t.Fatalf("%s: %v", a.ID(), err)
	}
	return runs
}

// TestEngineEquivalenceAllApps pins the engines' bit-identity invariant:
// for every suite app on both paper GPUs, each launch's RunResult (Cycles,
// Counters, PerSM, Trace) must be byte-for-byte equal across the naive
// per-cycle loop, the fast-forward engine, and the parallel epoch-lockstep
// engine (4 workers, fast-forward composed).
func TestEngineEquivalenceAllApps(t *testing.T) {
	specs := []struct {
		name string
		mk   func() *gpu.Spec
	}{
		{"turing", func() *gpu.Spec { return gpu.QuadroRTX4000().WithSMs(4) }},
		{"pascal", func() *gpu.Spec { return gpu.GTX1070().WithSMs(4) }},
	}
	for _, suite := range Suites() {
		for _, a := range BySuite(suite) {
			for _, spec := range specs {
				a, spec := a, spec
				t.Run(a.ID()+"/"+spec.name, func(t *testing.T) {
					t.Parallel()
					naive := collectRuns(t, a, spec.mk(), false, 0, 1)
					ff := collectRuns(t, a, spec.mk(), true, 0, 1)
					par := collectRuns(t, a, spec.mk(), true, 0, 4)
					compareRuns(t, "fast-forward", naive, ff)
					compareRuns(t, "parallel", naive, par)
				})
			}
		}
	}
}

// TestEngineEquivalenceWithTracing repeats the equivalence check with the
// intra-kernel timeline enabled on a representative subset: trace samples
// are the finest-grained observable (one counter delta per 64 cycles) and
// the fast-forward engine must land every sample on the exact cycle the
// naive loop does.
func TestEngineEquivalenceWithTracing(t *testing.T) {
	apps := []struct{ suite, name string }{
		{"rodinia", "srad_v2"},                     // memory-bound: longest skips
		{"rodinia", "backprop"},                    // barriers + shared memory
		{"cudasamples", "binaryPartitionCG_tile8"}, // divergence
	}
	for _, id := range apps {
		a, ok := Lookup(id.suite, id.name)
		if !ok {
			t.Fatalf("unknown app %s/%s", id.suite, id.name)
		}
		t.Run(a.ID(), func(t *testing.T) {
			t.Parallel()
			spec := func() *gpu.Spec { return gpu.QuadroRTX4000().WithSMs(4) }
			naive := collectRuns(t, a, spec(), false, 64, 1)
			ff := collectRuns(t, a, spec(), true, 64, 1)
			par := collectRuns(t, a, spec(), true, 64, 4)
			compareRuns(t, "fast-forward", naive, ff)
			compareRuns(t, "parallel", naive, par)
		})
	}
}

func compareRuns(t *testing.T, engine string, naive, other []*sim.RunResult) {
	t.Helper()
	if len(naive) != len(other) {
		t.Fatalf("launch count differs: naive %d, %s %d", len(naive), engine, len(other))
	}
	for i := range naive {
		n, f := naive[i], other[i]
		if n.Cycles != f.Cycles {
			t.Errorf("launch %d (%s): cycles differ: naive %d, %s %d", i, n.Kernel, n.Cycles, engine, f.Cycles)
		}
		if !reflect.DeepEqual(n.Counters, f.Counters) {
			t.Errorf("launch %d (%s): aggregate counters differ:\nnaive: %+v\n%s: %+v", i, n.Kernel, n.Counters, engine, f.Counters)
		}
		if !reflect.DeepEqual(n.PerSM, f.PerSM) {
			t.Errorf("launch %d (%s): per-SM counters differ vs %s", i, n.Kernel, engine)
		}
		if !reflect.DeepEqual(n.Trace, f.Trace) {
			t.Errorf("launch %d (%s): trace samples differ (naive %d samples, %s %d)", i, n.Kernel, len(n.Trace), engine, len(f.Trace))
		}
		if !reflect.DeepEqual(n, f) {
			t.Errorf("launch %d (%s): RunResult differs beyond compared fields vs %s", i, n.Kernel, engine)
		}
	}
}

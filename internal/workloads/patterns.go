package workloads

import (
	"fmt"

	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
)

// This file is the kernel-pattern library: parameterised builders for the
// microarchitectural behaviours the suites are composed of. Each returns a
// finished Program; the comment above each builder documents its launch
// parameters in order.

// streamProgram: params (in, out, n).
// out[i] = chain of `flops` FMAs over in[i]. Coalesced, bandwidth-bound for
// small flops, compute-bound for large.
func streamProgram(name string, flops int) *kernel.Program {
	b := kernel.NewBuilder(name)
	in := b.Param(0)
	out := b.Param(1)
	n := b.Param(2)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)
	off := b.Shl(gid, 2)
	x := b.Ldg(b.IAdd(in, off), 0, 4)
	c := b.FConst(1.0009765625)
	acc := b.Mov(x)
	for i := 0; i < flops; i++ {
		nv := b.FFma(acc, c, x)
		b.MovTo(acc, nv)
	}
	b.Stg(b.IAdd(out, off), acc, 0, 4)
	b.Exit()
	return b.MustBuild()
}

// stridedProgram: params (in, out, n). Loads with a strideBytes stride so a
// warp touches one sector per lane — replay- and sector-heavy.
func stridedProgram(name string, strideBytes int64) *kernel.Program {
	b := kernel.NewBuilder(name)
	in := b.Param(0)
	out := b.Param(1)
	n := b.Param(2)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)
	saddr := b.IMad(gid, b.MovImm(strideBytes), in)
	v := b.Ldg(saddr, 0, 4)
	v2 := b.FFma(v, b.FConst(0.5), v)
	b.Stg(b.IMad(gid, b.MovImm(4), out), v2, 0, 4)
	b.Exit()
	return b.MustBuild()
}

// gatherProgram: params (idx, data, out, n). out[i] = sum_k data[idx[i*K+k]]
// — the irregular-access core of graph workloads.
func gatherProgram(name string, k int, flopsPer int) *kernel.Program {
	b := kernel.NewBuilder(name)
	idx := b.Param(0)
	data := b.Param(1)
	out := b.Param(2)
	n := b.Param(3)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)
	base := b.IMad(gid, b.MovImm(int64(k)*4), idx)
	acc := b.FConst(0)
	i := b.ForImm(0, int64(k), 1)
	ioff := b.Shl(i, 2)
	id := b.Ldg(b.IAdd(base, ioff), 0, 4)
	v := b.Ldg(b.IMad(id, b.MovImm(4), data), 0, 4)
	nv := b.FAdd(acc, v)
	for f := 0; f < flopsPer; f++ {
		nv = b.FFma(nv, b.FConst(0.999), v)
	}
	b.MovTo(acc, nv)
	b.EndFor()
	b.Stg(b.IMad(gid, b.MovImm(4), out), acc, 0, 4)
	b.Exit()
	return b.MustBuild()
}

// constLookupProgram: params (in, out, n). Each thread performs `reads`
// indexed loads from the constant bank at tableOff, hammering the
// immediate-constant cache when the table exceeds it (the myocyte/nn and
// DNN-weight behaviour the paper highlights).
//
// uniform selects warp-uniform indices (every lane reads the same word, as
// DNN weight streaming and shared ODE parameters do — pressure comes from
// table capacity) versus per-lane divergent indices (per-thread record
// lookups, which additionally serialise the constant port).
func constLookupProgram(name string, tableOff int64, tableWords int64, reads, flops int, uniform bool) *kernel.Program {
	return constLookupChase(name, tableOff, tableWords, reads, flops, uniform, false)
}

// constLookupChase is constLookupProgram with an optional dependent index
// chain: each lookup's index derives from the previous value, so constant
// misses serialise per warp instead of overlapping — the record-walking
// behaviour of nn.
func constLookupChase(name string, tableOff int64, tableWords int64, reads, flops int, uniform, chase bool) *kernel.Program {
	return constLookupFull(name, tableOff, tableWords, reads, flops, uniform, chase, 0)
}

// constLookupFull additionally reserves sharedBytes of (otherwise unused)
// shared memory per block, limiting residency the way real kernels' tile
// buffers do — the lever that keeps DNN stand-ins from hiding their
// constant-cache misses behind deep occupancy.
func constLookupFull(name string, tableOff int64, tableWords int64, reads, flops int, uniform, chase bool, sharedBytes int) *kernel.Program {
	if tableWords&(tableWords-1) != 0 {
		panic(fmt.Sprintf("workloads: %s table size %d not a power of two", name, tableWords))
	}
	b := kernel.NewBuilder(name)
	if sharedBytes > 0 {
		b.DeclShared(sharedBytes)
	}
	in := b.Param(0)
	out := b.Param(1)
	n := b.Param(2)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)
	feat := b.Ldg(b.IMad(gid, b.MovImm(4), in), 0, 4)
	acc := b.FConst(0)
	var cursor isa.Reg
	if uniform {
		// Warp-uniform starting point: all lanes of a warp read the same
		// constant word each iteration, but distinct warps walk distinct
		// streams (as distinct output tiles consume distinct weights).
		cursor = b.IMad(b.S2R(isa.SRCtaIDX), b.MovImm(131), b.IMulImm(b.S2R(isa.SRWarpID), 29))
	} else {
		cursor = b.Mov(feat)
	}
	i := b.ForImm(0, int64(reads), 1)
	mixed := b.IAdd(b.IMulImm(cursor, 2654435761), b.IMulImm(i, 97))
	word := b.AndImm(mixed, tableWords-1)
	coff := b.IMad(word, b.MovImm(4), b.MovImm(tableOff))
	v := b.Ldc(coff, 0, 4)
	nv := b.FFma(v, b.I2F(feat), acc)
	for f := 0; f < flops; f++ {
		nv = b.FFma(nv, b.FConst(1.0001), v)
	}
	b.MovTo(acc, nv)
	if chase {
		// Next index depends on the loaded value: the lookup chain cannot
		// overlap its constant-cache misses.
		b.MovTo(cursor, b.IAdd(mixed, b.F2I(b.FMul(v, b.FConst(4096)))))
	} else {
		b.MovTo(cursor, mixed)
	}
	b.EndFor()
	b.Stg(b.IMad(gid, b.MovImm(4), out), acc, 0, 4)
	b.Exit()
	return b.MustBuild()
}

// stencil2DProgram: params (in, out, W, H). 5-point Jacobi step, launched
// with block (32,4) and a 2-D grid. Boundary threads exit.
func stencil2DProgram(name string, extraFlops int) *kernel.Program {
	b := kernel.NewBuilder(name)
	in := b.Param(0)
	out := b.Param(1)
	w := b.Param(2)
	h := b.Param(3)
	x := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	y := b.IMad(b.S2R(isa.SRCtaIDY), b.S2R(isa.SRNTidY), b.S2R(isa.SRTidY))
	b.ExitIf(b.ISetpImm(isa.CmpLT, x, 1), false)
	b.ExitIf(b.ISetpImm(isa.CmpLT, y, 1), false)
	b.ExitIf(b.ISetp(isa.CmpGE, x, b.IAddImm(w, -1)), false)
	b.ExitIf(b.ISetp(isa.CmpGE, y, b.IAddImm(h, -1)), false)
	row := b.IMad(y, w, x)
	caddr := b.IMad(row, b.MovImm(4), in)
	wBytes := b.Shl(w, 2)
	c := b.Ldg(caddr, 0, 4)
	nv := b.Ldg(b.ISub(caddr, wBytes), 0, 4)
	sv := b.Ldg(b.IAdd(caddr, wBytes), 0, 4)
	ev := b.Ldg(caddr, 4, 4)
	wv := b.Ldg(caddr, -4, 4)
	sum := b.FAdd(b.FAdd(nv, sv), b.FAdd(ev, wv))
	lap := b.FFma(c, b.FConst(-4), sum)
	res := b.FFma(lap, b.FConst(0.2), c)
	for i := 0; i < extraFlops; i++ {
		res = b.FFma(res, b.FConst(0.9999), c)
	}
	b.Stg(b.IMad(row, b.MovImm(4), out), res, 0, 4)
	b.Exit()
	return b.MustBuild()
}

// stencil3DProgram: params (in, out, W, H, D). The kernel walks the Z
// dimension in-thread (streaming reuse), as hotspot3D does. extraFlops adds
// per-point arithmetic (the thermal model's coefficient math).
func stencil3DProgram(name string, extraFlops int) *kernel.Program {
	b := kernel.NewBuilder(name)
	in := b.Param(0)
	out := b.Param(1)
	w := b.Param(2)
	h := b.Param(3)
	d := b.Param(4)
	x := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	y := b.IMad(b.S2R(isa.SRCtaIDY), b.S2R(isa.SRNTidY), b.S2R(isa.SRTidY))
	b.ExitIf(b.ISetpImm(isa.CmpLT, x, 1), false)
	b.ExitIf(b.ISetpImm(isa.CmpLT, y, 1), false)
	b.ExitIf(b.ISetp(isa.CmpGE, x, b.IAddImm(w, -1)), false)
	b.ExitIf(b.ISetp(isa.CmpGE, y, b.IAddImm(h, -1)), false)
	plane := b.IMul(w, h)
	planeBytes := b.Shl(plane, 2)
	wBytes := b.Shl(w, 2)
	row := b.IMad(y, w, x)
	addr := b.IMad(row, b.MovImm(4), in) // z = 0
	oaddr := b.IMad(row, b.MovImm(4), out)
	below := b.Ldg(addr, 0, 4)
	cur := b.Ldg(b.IAdd(addr, planeBytes), 0, 4)
	z := b.For(1, b.IAddImm(d, -1), 1)
	zoff := b.IMul(z, planeBytes)
	a := b.IAdd(addr, zoff)
	above := b.Ldg(b.IAdd(a, planeBytes), 0, 4)
	nv := b.Ldg(b.ISub(a, wBytes), 0, 4)
	sv := b.Ldg(b.IAdd(a, wBytes), 0, 4)
	ev := b.Ldg(a, 4, 4)
	wv := b.Ldg(a, -4, 4)
	sum6 := b.FAdd(b.FAdd(b.FAdd(nv, sv), b.FAdd(ev, wv)), b.FAdd(above, below))
	lap := b.FFma(cur, b.FConst(-6), sum6)
	res := b.FFma(lap, b.FConst(0.125), cur)
	for i := 0; i < extraFlops; i++ {
		res = b.FFma(res, b.FConst(0.99995), cur)
	}
	b.Stg(b.IAdd(oaddr, zoff), res, 0, 4)
	b.MovTo(below, cur)
	b.MovTo(cur, above)
	b.EndFor()
	b.Exit()
	return b.MustBuild()
}

// tiledMatMulProgram: params (A, B, C, K, N). C[MxN] = A[MxK] x B[KxN] with
// T x T shared tiles, launched with block (T, T) and grid (N/T, M/T). The
// compute core of gemm, heartwall and lavaMD stand-ins.
func tiledMatMulProgram(name string, tile int) *kernel.Program {
	b := kernel.NewBuilder(name)
	tb := int64(tile)
	shA := b.DeclShared(tile * tile * 4)
	shB := b.DeclShared(tile * tile * 4)
	a := b.Param(0)
	bm := b.Param(1)
	cm := b.Param(2)
	kdim := b.Param(3)
	ndim := b.Param(4)
	tx := b.S2R(isa.SRTidX)
	ty := b.S2R(isa.SRTidY)
	row := b.IMad(b.S2R(isa.SRCtaIDY), b.MovImm(tb), ty)
	col := b.IMad(b.S2R(isa.SRCtaIDX), b.MovImm(tb), tx)
	acc := b.FConst(0)
	kBytes := b.Shl(kdim, 2)
	nBytes := b.Shl(ndim, 2)
	// Per-thread shared addresses.
	shARow := b.IMad(ty, b.MovImm(tb*4), b.MovImm(shA))
	shBRow := b.IMad(ty, b.MovImm(tb*4), b.MovImm(shB))
	shAAddr := b.IMad(tx, b.MovImm(4), shARow)
	shBAddr := b.IMad(tx, b.MovImm(4), shBRow)
	nTiles := b.Shr(kdim, int64(log2(tile)))
	t := b.For(0, nTiles, 1)
	// Load A[row][t*T+tx] and B[t*T+ty][col].
	ak := b.IMad(t, b.MovImm(tb), tx)
	aAddr := b.IAdd(b.IMad(row, kBytes, a), b.Shl(ak, 2))
	av := b.Ldg(aAddr, 0, 4)
	b.Sts(shAAddr, av, 0, 4)
	bk := b.IMad(t, b.MovImm(tb), ty)
	bAddr := b.IAdd(b.IMad(bk, nBytes, bm), b.Shl(col, 2))
	bv := b.Ldg(bAddr, 0, 4)
	b.Sts(shBAddr, bv, 0, 4)
	b.Bar()
	kk := b.ForImm(0, tb, 1)
	av2 := b.Lds(b.IMad(kk, b.MovImm(4), shARow), 0, 4)
	bv2 := b.Lds(b.IMad(kk, b.MovImm(tb*4), b.IMad(tx, b.MovImm(4), b.MovImm(shB))), 0, 4)
	nacc := b.FFma(av2, bv2, acc)
	b.MovTo(acc, nacc)
	b.EndFor()
	b.Bar()
	b.EndFor()
	cAddr := b.IAdd(b.IMad(row, nBytes, cm), b.Shl(col, 2))
	b.Stg(cAddr, acc, 0, 4)
	b.Exit()
	return b.MustBuild()
}

func log2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

// reductionProgram: params (in, out). Block-wide shared-memory tree sum into
// out[blockIdx], block size must equal blockSize.
func reductionProgram(name string, blockSize int) *kernel.Program {
	b := kernel.NewBuilder(name)
	sh := b.DeclShared(blockSize * 4)
	in := b.Param(0)
	out := b.Param(1)
	tid := b.S2R(isa.SRTidX)
	gid := b.GlobalIDX()
	four := b.MovImm(4)
	v := b.Ldg(b.IMad(gid, four, in), 0, 4)
	shAddr := b.IMad(tid, four, b.MovImm(sh))
	b.Sts(shAddr, v, 0, 4)
	b.Bar()
	for stride := blockSize / 2; stride >= 1; stride /= 2 {
		p := b.ISetpImm(isa.CmpLT, tid, int64(stride))
		b.If(p)
		other := b.Lds(shAddr, int64(stride*4), 4)
		mine := b.Lds(shAddr, 0, 4)
		b.Sts(shAddr, b.FAdd(mine, other), 0, 4)
		b.EndIf()
		b.Bar()
	}
	p0 := b.ISetpImm(isa.CmpEQ, tid, 0)
	b.If(p0)
	total := b.Lds(shAddr, 0, 4)
	b.Stg(b.IMad(b.S2R(isa.SRCtaIDX), four, out), total, 0, 4)
	b.EndIf()
	b.Exit()
	return b.MustBuild()
}

// pointerChaseProgram: params (chain, keys, out, steps). Serial dependent
// node-chain walks — one chain per warp, with the warp's lanes scanning the
// node's keys cooperatively (coalesced), the b+tree findK access pattern:
// pure memory latency on the chain, streaming on the keys.
func pointerChaseProgram(name string) *kernel.Program {
	b := kernel.NewBuilder(name)
	chain := b.Param(0)
	keys := b.Param(1)
	out := b.Param(2)
	steps := b.Param(3)
	gid := b.GlobalIDX()
	lane := b.S2R(isa.SRLaneID)
	// Warp-uniform chain cursor: every lane follows the same node sequence.
	cur := b.Shr(gid, 5)
	best := b.MovImm(0)
	b.For(0, steps, 1)
	// Lanes scan the current node's 32 keys cooperatively.
	keyAddr := b.IMad(b.IMad(cur, b.MovImm(32), lane), b.MovImm(4), keys)
	k := b.Ldg(keyAddr, 0, 4)
	b.MovTo(best, b.IMax(best, k))
	// Dependent next-node load (uniform across the warp).
	nxt := b.Ldg(b.IMad(cur, b.MovImm(4), chain), 0, 4)
	b.MovTo(cur, nxt)
	b.EndFor()
	b.Stg(b.IMad(gid, b.MovImm(4), out), best, 0, 4)
	b.Exit()
	return b.MustBuild()
}

// divergentProgram: params (in, out, n). A 2-way data-dependent branch with
// asymmetric work — warp-efficiency loss proportional to imbalance.
func divergentProgram(name string, heavyOps, lightOps int) *kernel.Program {
	b := kernel.NewBuilder(name)
	in := b.Param(0)
	out := b.Param(1)
	n := b.Param(2)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)
	off := b.Shl(gid, 2)
	v := b.Ldg(b.IAdd(in, off), 0, 4)
	parity := b.AndImm(v, 1)
	acc := b.I2F(v)
	p := b.ISetpImm(isa.CmpEQ, parity, 1)
	b.If(p)
	for i := 0; i < heavyOps; i++ {
		b.MovTo(acc, b.FFma(acc, b.FConst(1.01), acc))
	}
	b.Else()
	for i := 0; i < lightOps; i++ {
		b.MovTo(acc, b.FAdd(acc, b.FConst(1)))
	}
	b.EndIf()
	b.Stg(b.IAdd(out, off), acc, 0, 4)
	b.Exit()
	return b.MustBuild()
}

// computeLoopProgram: params (out, n, iters). A register-resident FMA chain
// per thread (maxflops). pipe selects FP32, FP64 or SFU work.
func computeLoopProgram(name string, pipe isa.Pipe, unroll int) *kernel.Program {
	b := kernel.NewBuilder(name)
	out := b.Param(0)
	n := b.Param(1)
	iters := b.Param(2)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)
	switch pipe {
	case isa.PipeFP64:
		acc := b.DConst(1.000001)
		x := b.DConst(0.999999)
		b.For(0, iters, 1)
		for i := 0; i < unroll; i++ {
			b.MovTo(acc, b.DFma(acc, x, acc))
		}
		b.EndFor()
		b.Stg(b.IMad(gid, b.MovImm(8), out), acc, 0, 8)
	case isa.PipeSFU:
		acc := b.FConst(0.5)
		b.For(0, iters, 1)
		for i := 0; i < unroll; i++ {
			b.MovTo(acc, b.Mufu(isa.MufuSIN, acc))
		}
		b.EndFor()
		b.Stg(b.IMad(gid, b.MovImm(4), out), acc, 0, 4)
	default:
		acc := b.FConst(1.000001)
		x := b.FConst(0.999999)
		b.For(0, iters, 1)
		for i := 0; i < unroll; i++ {
			b.MovTo(acc, b.FFma(acc, x, acc))
		}
		b.EndFor()
		b.Stg(b.IMad(gid, b.MovImm(4), out), acc, 0, 4)
	}
	b.Exit()
	return b.MustBuild()
}

// mandelbrotProgram: params (out, W, maxIter). Escape-time iteration with a
// per-thread break — high arithmetic intensity, mild divergence.
func mandelbrotProgram(name string) *kernel.Program {
	b := kernel.NewBuilder(name)
	out := b.Param(0)
	w := b.Param(1)
	maxIter := b.Param(2)
	x := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	y := b.IMad(b.S2R(isa.SRCtaIDY), b.S2R(isa.SRNTidY), b.S2R(isa.SRTidY))
	// c = (x/W*3.5-2.5, y/W*2-1)
	fw := b.I2F(w)
	invW := b.Mufu(isa.MufuRCP, fw)
	cr := b.FFma(b.FMul(b.I2F(x), invW), b.FConst(3.5), b.FConst(-2.5))
	ci := b.FFma(b.FMul(b.I2F(y), invW), b.FConst(2.0), b.FConst(-1.0))
	zr := b.FConst(0)
	zi := b.FConst(0)
	count := b.MovImm(0)
	b.For(0, maxIter, 1)
	zr2 := b.FMul(zr, zr)
	zi2 := b.FMul(zi, zi)
	mag := b.FAdd(zr2, zi2)
	esc := b.FSetp(isa.CmpGT, mag, b.FConst(4))
	b.BreakIf(esc, false)
	nzi := b.FFma(b.FMul(zr, zi), b.FConst(2), ci)
	nzr := b.FAdd(b.FAdd(zr2, b.FMul(zi2, b.FConst(-1))), cr)
	b.MovTo(zr, nzr)
	b.MovTo(zi, nzi)
	b.MovTo(count, b.IAddImm(count, 1))
	b.EndFor()
	row := b.IMad(y, w, x)
	b.Stg(b.IMad(row, b.MovImm(4), out), count, 0, 4)
	b.Exit()
	return b.MustBuild()
}

// histogramProgram: params (in, hist, n). Atomic updates into `bins` bins
// (power of two) — contention and L2 atomic traffic.
func histogramProgram(name string, bins int64) *kernel.Program {
	b := kernel.NewBuilder(name)
	in := b.Param(0)
	hist := b.Param(1)
	n := b.Param(2)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)
	v := b.Ldg(b.IMad(gid, b.MovImm(4), in), 0, 4)
	bin := b.AndImm(v, bins-1)
	one := b.MovImm(1)
	b.Red(isa.AtomAdd, b.IMad(bin, b.MovImm(4), hist), one, 0)
	b.Exit()
	return b.MustBuild()
}

// gupsProgram: params (table, idx, n, tableMask). Random read-modify-writes
// across a large table — the classic memory-latency-bound GUPS.
func gupsProgram(name string) *kernel.Program {
	b := kernel.NewBuilder(name)
	table := b.Param(0)
	idxs := b.Param(1)
	n := b.Param(2)
	mask := b.Param(3)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)
	r := b.Ldg(b.IMad(gid, b.MovImm(4), idxs), 0, 4)
	slot := b.And(r, mask)
	addr := b.IMad(slot, b.MovImm(4), table)
	v := b.Ldg(addr, 0, 4)
	b.Stg(addr, b.Xor(v, gid), 0, 4)
	b.Exit()
	return b.MustBuild()
}

// texSampleProgram: params (img, out, n). Texture-path fetches with a
// deterministic swizzle (the raytracing stand-in together with divergence).
func texSampleProgram(name string, fetches int) *kernel.Program {
	b := kernel.NewBuilder(name)
	img := b.Param(0)
	out := b.Param(1)
	n := b.Param(2)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)
	acc := b.FConst(0)
	cur := b.Mov(gid)
	for i := 0; i < fetches; i++ {
		mix := b.AndImm(b.IMulImm(cur, 1103515245), (1<<14)-1)
		v := b.Tex(b.IMad(mix, b.MovImm(4), img), 0)
		b.MovTo(acc, b.FAdd(acc, v))
		b.MovTo(cur, b.IAddImm(mix, 12345))
	}
	b.Stg(b.IMad(gid, b.MovImm(4), out), acc, 0, 4)
	b.Exit()
	return b.MustBuild()
}

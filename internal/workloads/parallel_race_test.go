package workloads

import (
	"testing"

	"gputopdown/internal/gpu"
)

// TestParallelEngineRaceApps drives the parallel engine (4 workers) over two
// memory-heavy suite apps and pins bit-identity against the sequential
// fast-forward engine. Under `go test -race` — the CI configuration — this
// is the data-race gate for the epoch worker pool: gups hammers random L2
// slices with atomics, myocyte mixes long latency chains with heavy
// fast-forwarding.
func TestParallelEngineRaceApps(t *testing.T) {
	apps := []struct{ suite, name string }{
		{"altis", "gups"},
		{"rodinia", "myocyte"},
	}
	for _, id := range apps {
		a, ok := Lookup(id.suite, id.name)
		if !ok {
			t.Fatalf("unknown app %s/%s", id.suite, id.name)
		}
		t.Run(a.ID(), func(t *testing.T) {
			t.Parallel()
			spec := func() *gpu.Spec { return gpu.QuadroRTX4000().WithSMs(4) }
			seq := collectRuns(t, a, spec(), true, 0, 1)
			par := collectRuns(t, a, spec(), true, 0, 4)
			compareRuns(t, "parallel", seq, par)
		})
	}
}

package workloads

import (
	"fmt"

	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
)

// CUDASamples returns the CUDA Toolkit sample reconstructions used in the
// paper's §V.A: binaryPartitionCG at every tile size the paper sweeps.
func CUDASamples() []*App {
	var apps []*App
	for _, t := range BinaryPartitionTileSizes {
		apps = append(apps, BinaryPartitionCG(t))
	}
	return apps
}

// BinaryPartitionTileSizes is the paper's Fig. 4 sweep: thread-block tiles
// from warp size down to four threads.
var BinaryPartitionTileSizes = []int{32, 16, 8, 4}

// binaryPartitionKernel: params (in, oddCount, evenCount, sums, n).
//
// Mirrors the CUDA sample: each thread loads a value from a random array and
// the tile is binary-partitioned by the odd/even predicate. Both partitions
// reduce their values (tile-width shuffles) and tile leaders update global
// counters and sums atomically. Shrinking the tile trades divergence for
// synchronisation and atomic traffic: exactly the shift from Divergence to
// Backend/Memory the paper's Fig. 4 shows.
func binaryPartitionKernel(tile int) *kernel.Program {
	if tile < 2 || tile > 32 || tile&(tile-1) != 0 {
		panic(fmt.Sprintf("workloads: invalid cooperative tile size %d", tile))
	}
	b := kernel.NewBuilder(fmt.Sprintf("oddEvenCountAndSumCG_tile%d", tile))
	in := b.Param(0)
	oddCount := b.Param(1)
	evenCount := b.Param(2)
	sums := b.Param(3)
	n := b.Param(4)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)
	lane := b.S2R(isa.SRLaneID)
	laneInTile := b.AndImm(lane, int64(tile-1))
	v := b.Ldg(b.IMad(gid, b.MovImm(4), in), 0, 4)
	odd := b.AndImm(v, 1)
	isOdd := b.ISetpImm(isa.CmpEQ, odd, 1)

	// Binary partition: each side counts its members within the tile via
	// ballot+mask, then reduces its values with tile-width shuffles. The
	// divergent region does the partition-specific work.
	ballot := b.Ballot(isOdd)
	tmask0 := b.ShlReg(b.MovImm(int64((1<<tile)-1)), b.And(lane, b.MovImm(int64(^(tile-1)&31))))
	oddInTile := b.Popc(b.And(ballot, tmask0))

	// Each side owns a zero-masked accumulator so the in-partition butterfly
	// reduces only its members' contributions.
	zero := b.MovImm(0)
	oddVal := b.Sel(isOdd, b.IMulImm(v, 3), zero)
	evenVal := b.Sel(isOdd, zero, b.IAddImm(b.ShlReg(v, b.MovImm(1)), 7))

	// The partition-specific reductions run inside the divergent region, as
	// the cooperative-groups sample's binary_partition + reduce does:
	// log2(tile) shuffle steps per side, so the divergent work shrinks as
	// the tile does.
	b.If(isOdd)
	for delta := tile / 2; delta >= 1; delta /= 2 {
		o := b.ShflXor(oddVal, int64(delta))
		b.MovTo(oddVal, b.IAdd(oddVal, o))
	}
	b.Else()
	for delta := tile / 2; delta >= 1; delta /= 2 {
		o := b.ShflXor(evenVal, int64(delta))
		b.MovTo(evenVal, b.IAdd(evenVal, o))
	}
	b.EndIf()

	// Converged tile-wide butterfly combines both sides' partials. (The
	// counts published below are exact via the ballot; the sum is the
	// shuffle-reduce approximation a warp-collective reduce produces when
	// partitions interleave — this is a characterisation microbenchmark.)
	total := b.IAdd(oddVal, evenVal)
	for delta := tile / 2; delta >= 1; delta /= 2 {
		o := b.ShflXor(total, int64(delta))
		b.MovTo(total, b.IAdd(total, o))
	}

	// Tile leaders publish counts and sum; smaller tiles mean more leaders
	// hammering the same three counters.
	leader := b.ISetpImm(isa.CmpEQ, laneInTile, 0)
	b.If(leader)
	evenInTile := b.ISub(b.MovImm(int64(tile)), oddInTile)
	b.Red(isa.AtomAdd, oddCount, oddInTile, 0)
	b.Red(isa.AtomAdd, evenCount, evenInTile, 0)
	b.Red(isa.AtomAdd, sums, total, 0)
	b.EndIf()
	b.Exit()
	return b.MustBuild()
}

// BinaryPartitionCG builds the binaryPartitionCG sample with the given
// cooperative-group tile size.
func BinaryPartitionCG(tile int) *App {
	return &App{
		Name:  fmt.Sprintf("binaryPartitionCG_tile%d", tile),
		Suite: "cudasamples",
		Description: "binary-partition cooperative groups sample: odd/even " +
			"partition, tile reduce and global counters",
		Run: func(ctx *RunCtx) error {
			const n = 96 * 1024
			in := ctx.Dev.Alloc(n * 4)
			oddCount := ctx.Dev.Alloc(4)
			evenCount := ctx.Dev.Alloc(4)
			sums := ctx.Dev.Alloc(4)
			randIdx(ctx, in, n, 1<<20)
			for _, a := range []uint64{oddCount, evenCount, sums} {
				ctx.Dev.Storage.Write(a, 0, 4)
			}
			prog := binaryPartitionKernel(tile)
			l := launch1D(prog, n, 256, in, oddCount, evenCount, sums, n)
			for rep := 0; rep < 2; rep++ {
				if err := ctx.Exec(l); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

package workloads

import (
	"testing"

	"gputopdown/internal/gpu"
	"gputopdown/internal/kernel"
	"gputopdown/internal/sim"
	"gputopdown/internal/sm"
)

// runApp executes an app natively on a small device and returns the
// aggregate counters and number of launches.
func runApp(t *testing.T, a *App) (sm.Counters, int) {
	t.Helper()
	dev := sim.NewDevice(gpu.QuadroRTX4000().WithSMs(4))
	var total sm.Counters
	launches := 0
	err := a.Execute(dev, func(l *kernel.Launch) error {
		res, err := dev.Launch(l)
		if err != nil {
			return err
		}
		total.Add(&res.Counters)
		launches++
		return nil
	})
	if err != nil {
		t.Fatalf("%s: %v", a.ID(), err)
	}
	return total, launches
}

func checkSane(t *testing.T, a *App, c sm.Counters, launches int) {
	t.Helper()
	if launches == 0 {
		t.Errorf("%s: no kernels launched", a.ID())
	}
	if c.InstExecuted == 0 {
		t.Errorf("%s: no instructions executed", a.ID())
	}
	if c.StateSum() != c.ActiveWarpCycles {
		t.Errorf("%s: state closure violated: %d != %d", a.ID(), c.StateSum(), c.ActiveWarpCycles)
	}
	if c.InstIssued < c.InstExecuted {
		t.Errorf("%s: issued %d < executed %d", a.ID(), c.InstIssued, c.InstExecuted)
	}
	if c.ThreadInstExecuted == 0 {
		t.Errorf("%s: no thread instructions", a.ID())
	}
}

func TestRodiniaAppsRun(t *testing.T) {
	for _, a := range Rodinia() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			c, n := runApp(t, a)
			checkSane(t, a, c, n)
		})
	}
}

func TestAltisAppsRun(t *testing.T) {
	for _, a := range Altis() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			c, n := runApp(t, a)
			checkSane(t, a, c, n)
		})
	}
}

func TestSHOCAppsRun(t *testing.T) {
	for _, a := range SHOC() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			c, n := runApp(t, a)
			checkSane(t, a, c, n)
		})
	}
}

func TestCUDASamplesRun(t *testing.T) {
	for _, a := range CUDASamples() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			c, n := runApp(t, a)
			checkSane(t, a, c, n)
		})
	}
}

func TestSuiteRegistry(t *testing.T) {
	if len(Rodinia()) < 18 {
		t.Errorf("Rodinia has %d apps", len(Rodinia()))
	}
	if len(Altis()) < 15 {
		t.Errorf("Altis has %d apps", len(Altis()))
	}
	if len(SHOC()) < 12 {
		t.Errorf("SHOC has %d apps", len(SHOC()))
	}
	if len(CUDASamples()) != len(BinaryPartitionTileSizes) {
		t.Errorf("CUDASamples has %d apps", len(CUDASamples()))
	}
	for _, s := range Suites() {
		apps := BySuite(s)
		if len(apps) == 0 {
			t.Errorf("suite %s empty", s)
		}
		seen := map[string]bool{}
		for _, a := range apps {
			if a.Suite != s {
				t.Errorf("%s listed under %s", a.ID(), s)
			}
			if a.Description == "" {
				t.Errorf("%s has no description", a.ID())
			}
			if seen[a.Name] {
				t.Errorf("duplicate app %s in %s", a.Name, s)
			}
			seen[a.Name] = true
		}
	}
	if _, ok := Lookup("rodinia", "bfs"); !ok {
		t.Error("rodinia/bfs not found")
	}
	if _, ok := Lookup("nope", "bfs"); ok {
		t.Error("bogus suite found")
	}
	if _, ok := Lookup("rodinia", "nope"); ok {
		t.Error("bogus app found")
	}
	if BySuite("nope") != nil {
		t.Error("bogus suite returned apps")
	}
}

func TestSeedStability(t *testing.T) {
	if seedFor("rodinia/bfs") != seedFor("rodinia/bfs") {
		t.Error("seed not stable")
	}
	if seedFor("rodinia/bfs") == seedFor("altis/bfs") {
		t.Error("seeds collide across suites")
	}
}

// Characterisation checks that the suite members show the microarchitectural
// signatures the paper relies on.
func TestCharacterisationSignatures(t *testing.T) {
	get := func(suite, name string) sm.Counters {
		a, ok := Lookup(suite, name)
		if !ok {
			t.Fatalf("%s/%s missing", suite, name)
		}
		c, _ := runApp(t, a)
		return c
	}

	// myocyte and nn: IMC misses must be substantial (constant pressure).
	for _, name := range []string{"myocyte", "nn"} {
		c := get("rodinia", name)
		if c.IMCMisses < c.IMCHits/8 {
			t.Errorf("rodinia/%s: IMC misses %d vs hits %d — constant pressure missing",
				name, c.IMCMisses, c.IMCHits)
		}
	}
	// kmeans keeps its centroid table resident: high IMC hit rate.
	if c := get("rodinia", "kmeans"); c.IMCMisses*20 > c.IMCHits {
		t.Errorf("rodinia/kmeans: IMC miss rate too high (%d misses / %d hits)",
			c.IMCMisses, c.IMCHits)
	}
	// bfs diverges.
	if c := get("rodinia", "bfs"); c.DivergentBranches == 0 {
		t.Error("rodinia/bfs shows no divergence")
	}
	// binaryPartitionCG: smaller tiles -> more atomics.
	c32, _ := runApp(t, BinaryPartitionCG(32))
	c4, _ := runApp(t, BinaryPartitionCG(4))
	if c4.Atomics <= c32.Atomics {
		t.Errorf("tile4 atomics %d <= tile32 atomics %d", c4.Atomics, c32.Atomics)
	}
}

package workloads

import (
	"math"

	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
)

// SRAD (speckle-reducing anisotropic diffusion) is rebuilt with real
// diffusion dynamics because the paper's §V.D uses its two kernels to show
// temporal phase behaviour (Figs. 11 and 12): early invocations are
// backend/memory heavy; as the image converges, per-pixel guards start
// short-circuiting the expensive paths and pressure shifts toward the
// frontend. Here that emerges from the data: the kernels smooth the image,
// gradients shrink below the threshold, and the cheap paths take over.

// sradThreshold is the squared-gradient guard. Calibrated so that, with
// sradLambda diffusion on uniform noise, the phase flip lands near
// invocation 50 of 100 (as in the paper's figures).
const (
	sradThreshold = 0.0005
	sradLambda    = 0.08
)

// sradKernel1: params (J, C, W, H, thrBits). Computes the diffusion
// coefficient; pixels whose local gradient energy is below the threshold
// take a cheap path (c = 1) instead of the diagonal loads and SFU work.
func sradKernel1() *kernel.Program {
	b := kernel.NewBuilder("srad_cuda_1")
	j := b.Param(0)
	c := b.Param(1)
	w := b.Param(2)
	h := b.Param(3)
	thr := b.Param(4)
	x := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	y := b.IMad(b.S2R(isa.SRCtaIDY), b.S2R(isa.SRNTidY), b.S2R(isa.SRTidY))
	b.ExitIf(b.ISetpImm(isa.CmpLT, x, 1), false)
	b.ExitIf(b.ISetpImm(isa.CmpLT, y, 1), false)
	b.ExitIf(b.ISetp(isa.CmpGE, x, b.IAddImm(w, -1)), false)
	b.ExitIf(b.ISetp(isa.CmpGE, y, b.IAddImm(h, -1)), false)
	row := b.IMad(y, w, x)
	four := b.MovImm(4)
	jAddr := b.IMad(row, four, j)
	cAddr := b.IMad(row, four, c)
	wBytes := b.Shl(w, 2)
	// Hysteresis: pixels whose coefficient saturated (converged
	// neighbourhood) skip the whole stencil — this is what empties the
	// kernel as the image converges (phase 2 of Fig. 11).
	cPrev := b.Ldg(cAddr, 0, 4)
	cOut := b.Mov(cPrev)
	pActive := b.FSetp(isa.CmpLT, cPrev, b.FConst(0.999999))
	b.If(pActive)
	jc := b.Ldg(jAddr, 0, 4)
	jn := b.Ldg(b.ISub(jAddr, wBytes), 0, 4)
	js := b.Ldg(b.IAdd(jAddr, wBytes), 0, 4)
	je := b.Ldg(jAddr, 4, 4)
	jw := b.Ldg(jAddr, -4, 4)
	neg := b.FConst(-1)
	dn := b.FAdd(jn, b.FMul(jc, neg))
	ds := b.FAdd(js, b.FMul(jc, neg))
	de := b.FAdd(je, b.FMul(jc, neg))
	dw := b.FAdd(jw, b.FMul(jc, neg))
	g2 := b.FFma(dn, dn, b.FFma(ds, ds, b.FFma(de, de, b.FMul(dw, dw))))
	cNew := b.FConst(1)
	p := b.FSetp(isa.CmpGT, g2, thr)
	b.If(p)
	// Rough neighbourhood: diagonal loads plus the SFU-based coefficient.
	d1 := b.Ldg(b.ISub(jAddr, b.IAddImm(wBytes, 4)), 0, 4)
	d2 := b.Ldg(b.IAdd(jAddr, b.IAddImm(wBytes, 4)), 0, 4)
	d3 := b.Ldg(b.ISub(jAddr, b.IAddImm(wBytes, -4)), 0, 4)
	d4 := b.Ldg(b.IAdd(jAddr, b.IAddImm(wBytes, -4)), 0, 4)
	diag := b.FAdd(b.FAdd(d1, d2), b.FAdd(d3, d4))
	l := b.FFma(diag, b.FConst(0.05), b.FAdd(b.FAdd(dn, ds), b.FAdd(de, dw)))
	denom := b.FFma(l, l, b.FFma(g2, b.FConst(2), b.FConst(1)))
	b.MovTo(cNew, b.Mufu(isa.MufuRCP, denom))
	b.EndIf()
	b.MovTo(cOut, cNew)
	b.EndIf()
	b.Stg(cAddr, cOut, 0, 4)
	b.Exit()
	return b.MustBuild()
}

// sradKernel2: params (J, C, W, H, lambdaBits). Applies the diffusion
// update; pixels whose coefficient saturated at 1 (converged neighbourhood)
// skip the neighbour traffic entirely.
func sradKernel2() *kernel.Program {
	b := kernel.NewBuilder("srad_cuda_2")
	j := b.Param(0)
	c := b.Param(1)
	w := b.Param(2)
	h := b.Param(3)
	lam := b.Param(4)
	x := b.IMad(b.S2R(isa.SRCtaIDX), b.S2R(isa.SRNTidX), b.S2R(isa.SRTidX))
	y := b.IMad(b.S2R(isa.SRCtaIDY), b.S2R(isa.SRNTidY), b.S2R(isa.SRTidY))
	b.ExitIf(b.ISetpImm(isa.CmpLT, x, 1), false)
	b.ExitIf(b.ISetpImm(isa.CmpLT, y, 1), false)
	b.ExitIf(b.ISetp(isa.CmpGE, x, b.IAddImm(w, -1)), false)
	b.ExitIf(b.ISetp(isa.CmpGE, y, b.IAddImm(h, -1)), false)
	row := b.IMad(y, w, x)
	four := b.MovImm(4)
	cAddr := b.IMad(row, four, c)
	jAddr := b.IMad(row, four, j)
	wBytes := b.Shl(w, 2)
	cc := b.Ldg(cAddr, 0, 4)
	p := b.FSetp(isa.CmpLT, cc, b.FConst(0.999999))
	b.If(p)
	cn := b.Ldg(b.ISub(cAddr, wBytes), 0, 4)
	cs := b.Ldg(b.IAdd(cAddr, wBytes), 0, 4)
	ce := b.Ldg(cAddr, 4, 4)
	cw := b.Ldg(cAddr, -4, 4)
	jc := b.Ldg(jAddr, 0, 4)
	jn := b.Ldg(b.ISub(jAddr, wBytes), 0, 4)
	js := b.Ldg(b.IAdd(jAddr, wBytes), 0, 4)
	je := b.Ldg(jAddr, 4, 4)
	jw := b.Ldg(jAddr, -4, 4)
	// Diffusion step. The coefficient loads participate in the stencil the
	// way the real kernel's do, but the update keeps a floor under the
	// effective conductivity so speckle keeps dissolving instead of being
	// frozen by edge preservation (synthetic noise has no true edges).
	cAvg := b.FMul(b.FAdd(b.FAdd(cn, cs), b.FAdd(ce, cw)), b.FConst(0.25))
	cEff := b.FMax(cAvg, b.FConst(0.8))
	neg := b.FConst(-1)
	lap := b.FFma(jc, b.FMul(b.FConst(-4), neg), b.FConst(0)) // placeholder, rebuilt below
	_ = lap
	sum4 := b.FAdd(b.FAdd(jn, js), b.FAdd(je, jw))
	div := b.FFma(jc, b.FConst(-4), sum4)
	upd := b.FFma(b.FMul(b.FMul(lam, b.FConst(0.25)), cEff), div, jc)
	b.Stg(jAddr, upd, 0, 4)
	b.EndIf()
	b.Exit()
	return b.MustBuild()
}

// SradDynamic returns the 100-invocation SRAD used for the paper's dynamic
// analysis (Figs. 11 and 12): long enough for the convergence-driven phase
// transition to land mid-run.
func SradDynamic() *App {
	app, _ := makeSrad("altis", "srad_dynamic", 128, 100)
	return app
}

// makeSrad builds an SRAD app over a size x size image running iters
// diffusion iterations (two kernel invocations each).
func makeSrad(suite, name string, size, iters int) (*App, int) {
	return &App{
		Name:  name,
		Suite: suite,
		Description: "speckle-reducing anisotropic diffusion: two stencil " +
			"kernels with convergence-driven phase behaviour",
		Run: func(ctx *RunCtx) error {
			jBuf := ctx.Dev.Alloc(size * size * 4)
			cBuf := ctx.Dev.Alloc(size * size * 4)
			// Speckle is high-frequency by nature: checkerboard-modulated
			// noise, which diffusion dissolves completely (white noise would
			// leave slow low-frequency residue and smear the phase flip).
			img := make([]float32, size*size)
			for y := 0; y < size; y++ {
				for x := 0; x < size; x++ {
					// Speckle amplitude grows smoothly across the image, so
					// neighbouring pixels (and hence whole warps) converge
					// together and the phase flip is coherent.
					amp := float32(0.15) + 0.85*float32(x)/float32(size)
					n := amp * (0.5 + 0.5*ctx.Rng.Float32())
					if (x+y)%2 == 1 {
						n = -n
					}
					img[y*size+x] = 0.5 + n
				}
			}
			ctx.Dev.Storage.WriteF32Slice(jBuf, img)
			zeroF32(ctx, cBuf, size*size)
			k1 := sradKernel1()
			k2 := sradKernel2()
			thr := uint64(math.Float32bits(sradThreshold))
			lam := uint64(math.Float32bits(sradLambda))
			grid := kernel.Dim3{X: size / 32, Y: size / 4}
			block := kernel.Dim3{X: 32, Y: 4}
			for it := 0; it < iters; it++ {
				l1 := &kernel.Launch{Program: k1, Grid: grid, Block: block,
					Params: []uint64{jBuf, cBuf, uint64(size), uint64(size), thr}}
				if err := ctx.Exec(l1); err != nil {
					return err
				}
				l2 := &kernel.Launch{Program: k2, Grid: grid, Block: block,
					Params: []uint64{jBuf, cBuf, uint64(size), uint64(size), lam}}
				if err := ctx.Exec(l2); err != nil {
					return err
				}
			}
			return nil
		},
	}, iters
}

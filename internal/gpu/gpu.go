// Package gpu defines device specifications for the simulator. A Spec bundles
// everything the paper's Table IX reports for the two evaluation GPUs (GTX
// 1070 and Quadro RTX 4000) plus the microarchitectural parameters the
// pipeline model needs: cache geometries, execution-pipe lane widths,
// latencies and queue depths.
//
// The Top-Down methodology dispatches on compute capability: CC < 7.2 GPUs
// expose nvprof-style events+metrics, CC >= 7.2 the unified ncu metrics
// (paper §II.A); CC.UsesUnifiedMetrics encodes that split.
package gpu

import (
	"fmt"

	"gputopdown/internal/isa"
)

// WarpSize is the number of threads per warp.
const WarpSize = 32

// CC is a CUDA compute capability.
type CC struct {
	Major, Minor int
}

// String implements fmt.Stringer (e.g. "6.1").
func (c CC) String() string { return fmt.Sprintf("%d.%d", c.Major, c.Minor) }

// AtLeast reports whether c >= major.minor.
func (c CC) AtLeast(major, minor int) bool {
	if c.Major != major {
		return c.Major > major
	}
	return c.Minor >= minor
}

// UsesUnifiedMetrics reports whether the device uses the unified (ncu-style)
// metrics model. NVIDIA unified events and metrics starting with CC 7.2
// (paper §II.A); earlier capabilities use the nvprof events+metrics model.
func (c CC) UsesUnifiedMetrics() bool { return c.AtLeast(7, 2) }

// Spec describes a GPU device. Fields in the first block mirror the paper's
// Table IX; the rest parameterise the pipeline and memory models.
type Spec struct {
	Name         string
	Architecture string // "Pascal", "Turing", ...
	Compute      CC

	// Table IX characteristics.
	SMs                int
	SubpartitionsPerSM int
	CUDACores          int
	MemoryGB           int
	MemoryType         string
	PowerW             int

	// Dispatch and residency.
	DispatchPerSubpartition  int // dispatch units per subpartition
	WarpSlotsPerSubpartition int // resident warp contexts per subpartition
	MaxThreadsPerSM          int
	MaxBlocksPerSM           int
	RegistersPerSM           int // 32-bit registers per SM
	SharedMemPerSM           int // bytes

	// Clock, for cycle <-> time conversion.
	ClockMHz int

	// Instruction supply.
	InstrBytes     int // encoded instruction width (8 on Pascal, 16 on Turing)
	ICacheSize     int // per-SM L1 instruction cache bytes
	ICacheWays     int
	IBufferEntries int // instruction-buffer entries per warp
	// FetchCyclesPerLine is how long the SM's single fetch port is busy per
	// icache line; with more subpartitions sharing the port (Pascal), supply
	// pressure rises and no_instruction stalls grow.
	FetchCyclesPerLine int
	// DecodeDelay is the fetch-hit to issue-ready latency in cycles.
	DecodeDelay int

	// Data caches. All caches are sectored: LineSize bytes per line,
	// SectorSize bytes transferred per miss.
	L1Size     int // per-SM L1 data cache bytes
	L1Ways     int
	LineSize   int
	SectorSize int
	L2Size     int // device-wide L2 bytes
	L2Ways     int
	// L2Slices is the number of address-interleaved L2 partitions (and DRAM
	// channels behind them), as real GPUs slice the L2 across memory
	// partitions. Consecutive cache lines map to consecutive slices; each
	// slice is an independent L2Size/L2Slices cache backed by a channel with
	// 1/L2Slices of the DRAM bandwidth and queue depth. Must be a power of
	// two. The slicing is a device property — every launch engine (naive,
	// fast-forward, parallel) simulates the same sliced structure, which is
	// what lets the parallel engine shard memory traffic by slice without
	// changing results.
	L2Slices int

	// Constant path: a small immediate-constant cache (IMC) in front of a
	// constant bank.
	IMCSize       int
	IMCWays       int
	ConstBankSize int

	// Latencies in core cycles.
	ALULatency    int
	FMALatency    int
	FP64Latency   int
	SFULatency    int
	SharedLatency int
	L1Latency     int // L1 hit
	L2Latency     int // L1 miss, L2 hit (total)
	DRAMLatency   int // L2 miss (total)
	IMCHitLatency int
	IMCMissExtra  int // added on an immediate-constant cache miss
	BranchLatency int // branch-resolving cycles after a taken BRA issues
	TEXLatency    int

	// Execution-pipe lane widths per subpartition. A warp instruction
	// occupies its pipe for WarpSize/lanes cycles.
	PipeLanes [isa.NumPipes]int

	// Queue depths (entries) per subpartition, and the DRAM request queue
	// for the whole device.
	LGQueueDepth   int
	MIOQueueDepth  int
	TEXQueueDepth  int
	DRAMQueueDepth int
	// DRAMBytesPerCycle is device memory bandwidth expressed per core cycle.
	DRAMBytesPerCycle float64

	// Register file banks per subpartition; simultaneous reads of distinct
	// registers in the same bank cost an extra cycle (classified "misc").
	RegFileBanks int

	// DivergenceMitigation in [0,1] models post-Volta independent thread
	// scheduling "stealing" work for idle lanes in divergent regions (paper
	// §IV.B); it only affects the thread-instruction count (warp
	// efficiency), not timing.
	DivergenceMitigation float64

	// SchedulingPolicy selects the warp scheduler: "gto" (greedy-then-
	// oldest) or "lrr" (loose round-robin).
	SchedulingPolicy string
}

// IPCMax returns the paper's IPC_MAX: the number of dispatch units per SM
// (§IV.C), i.e. the peak warp instructions a single SM can issue per cycle.
func (s *Spec) IPCMax() float64 {
	return float64(s.SubpartitionsPerSM * s.DispatchPerSubpartition)
}

// WarpsPerSM returns the maximum resident warps per SM.
func (s *Spec) WarpsPerSM() int {
	return s.SubpartitionsPerSM * s.WarpSlotsPerSubpartition
}

// Validate checks internal consistency of the spec.
func (s *Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("gpu: spec has no name")
	case s.SMs < 1:
		return fmt.Errorf("gpu %s: SMs = %d", s.Name, s.SMs)
	case s.SubpartitionsPerSM < 1:
		return fmt.Errorf("gpu %s: SubpartitionsPerSM = %d", s.Name, s.SubpartitionsPerSM)
	case s.DispatchPerSubpartition < 1:
		return fmt.Errorf("gpu %s: DispatchPerSubpartition = %d", s.Name, s.DispatchPerSubpartition)
	case s.WarpSlotsPerSubpartition < 1:
		return fmt.Errorf("gpu %s: WarpSlotsPerSubpartition = %d", s.Name, s.WarpSlotsPerSubpartition)
	case s.MaxThreadsPerSM < WarpSize:
		return fmt.Errorf("gpu %s: MaxThreadsPerSM = %d", s.Name, s.MaxThreadsPerSM)
	case s.ClockMHz <= 0:
		return fmt.Errorf("gpu %s: ClockMHz = %d", s.Name, s.ClockMHz)
	case s.LineSize <= 0 || s.SectorSize <= 0 || s.LineSize%s.SectorSize != 0:
		return fmt.Errorf("gpu %s: line size %d / sector size %d", s.Name, s.LineSize, s.SectorSize)
	case s.L1Size <= 0 || s.L2Size <= 0 || s.ICacheSize <= 0 || s.IMCSize <= 0:
		return fmt.Errorf("gpu %s: non-positive cache size", s.Name)
	case s.L2Slices < 1 || s.L2Slices&(s.L2Slices-1) != 0:
		return fmt.Errorf("gpu %s: L2Slices = %d (want a power of two)", s.Name, s.L2Slices)
	case s.L2Size%s.L2Slices != 0:
		return fmt.Errorf("gpu %s: L2Size %d not divisible by %d slices", s.Name, s.L2Size, s.L2Slices)
	case s.FetchCyclesPerLine < 1 || s.DecodeDelay < 1:
		return fmt.Errorf("gpu %s: fetch throughput/decode delay must be positive", s.Name)
	case s.SchedulingPolicy != "gto" && s.SchedulingPolicy != "lrr":
		return fmt.Errorf("gpu %s: unknown scheduling policy %q", s.Name, s.SchedulingPolicy)
	case s.DivergenceMitigation < 0 || s.DivergenceMitigation > 1:
		return fmt.Errorf("gpu %s: DivergenceMitigation = %g", s.Name, s.DivergenceMitigation)
	}
	for p, lanes := range s.PipeLanes {
		if lanes < 1 || lanes > WarpSize {
			return fmt.Errorf("gpu %s: pipe %s has %d lanes", s.Name, isa.Pipe(p), lanes)
		}
	}
	if s.LGQueueDepth < 1 || s.MIOQueueDepth < 1 || s.TEXQueueDepth < 1 || s.DRAMQueueDepth < 1 {
		return fmt.Errorf("gpu %s: non-positive queue depth", s.Name)
	}
	return nil
}

// WithSMs returns a copy of the spec with a different SM count, used to
// downscale devices for fast tests. L2 capacity is kept proportional so
// working-set behaviour scales with it.
func (s *Spec) WithSMs(n int) *Spec {
	c := *s
	c.Name = fmt.Sprintf("%s/%dsm", s.Name, n)
	c.L2Size = s.L2Size * n / s.SMs
	if c.L2Size < 64*1024 {
		c.L2Size = 64 * 1024
	}
	// Keep the scaled capacity an exact multiple of the slice granularity so
	// every slice gets the same whole number of lines.
	if g := c.L2Slices * c.LineSize; g > 0 {
		if r := c.L2Size % g; r != 0 {
			c.L2Size += g - r
		}
	}
	c.SMs = n
	return &c
}

// GTX1070 returns the NVIDIA GeForce GTX 1070 model (Pascal, CC 6.1) from
// the paper's Table IX.
func GTX1070() *Spec {
	s := &Spec{
		Name:         "NVIDIA GTX 1070",
		Architecture: "Pascal",
		Compute:      CC{6, 1},

		SMs:                15,
		SubpartitionsPerSM: 4,
		CUDACores:          1920,
		MemoryGB:           8,
		MemoryType:         "DDR5",
		PowerW:             150,

		DispatchPerSubpartition:  1,
		WarpSlotsPerSubpartition: 16,
		MaxThreadsPerSM:          2048,
		MaxBlocksPerSM:           32,
		RegistersPerSM:           65536,
		SharedMemPerSM:           96 * 1024,

		ClockMHz: 1506,

		InstrBytes:         8,
		ICacheSize:         8 * 1024,
		ICacheWays:         4,
		IBufferEntries:     2,
		FetchCyclesPerLine: 3,
		DecodeDelay:        4,

		L1Size:     48 * 1024,
		L1Ways:     4,
		LineSize:   128,
		SectorSize: 32,
		L2Size:     2 * 1024 * 1024,
		L2Ways:     16,
		L2Slices:   4,

		IMCSize:       2 * 1024,
		IMCWays:       4,
		ConstBankSize: 64 * 1024,

		ALULatency:    6,
		FMALatency:    6,
		FP64Latency:   8,
		SFULatency:    14,
		SharedLatency: 24,
		L1Latency:     32,
		L2Latency:     216,
		DRAMLatency:   440,
		IMCHitLatency: 4,
		IMCMissExtra:  180,
		BranchLatency: 8,
		TEXLatency:    80,

		PipeLanes: pipeLanes(map[isa.Pipe]int{
			isa.PipeALU:  32,
			isa.PipeFMA:  32,
			isa.PipeFP64: 1,
			isa.PipeSFU:  8,
			isa.PipeLSU:  8,
			isa.PipeMIO:  8,
			isa.PipeTEX:  2,
			isa.PipeCBU:  32,
		}),

		LGQueueDepth:      16,
		MIOQueueDepth:     8,
		TEXQueueDepth:     4,
		DRAMQueueDepth:    96,
		DRAMBytesPerCycle: 170,

		RegFileBanks: 4,

		DivergenceMitigation: 0,
		SchedulingPolicy:     "gto",
	}
	mustValidate(s)
	return s
}

// QuadroRTX4000 returns the NVIDIA Quadro RTX 4000 model (Turing, CC 7.5)
// from the paper's Table IX. The paper reports 2 SM subpartitions for this
// part and IPC_MAX follows from it.
func QuadroRTX4000() *Spec {
	s := &Spec{
		Name:         "NVIDIA Quadro RTX 4000",
		Architecture: "Turing",
		Compute:      CC{7, 5},

		SMs:                36,
		SubpartitionsPerSM: 2,
		CUDACores:          2304,
		MemoryGB:           8,
		MemoryType:         "DDR6",
		PowerW:             160,

		DispatchPerSubpartition:  1,
		WarpSlotsPerSubpartition: 16,
		MaxThreadsPerSM:          1024,
		MaxBlocksPerSM:           16,
		RegistersPerSM:           65536,
		SharedMemPerSM:           64 * 1024,

		ClockMHz: 1545,

		InstrBytes:         16,
		ICacheSize:         16 * 1024,
		ICacheWays:         4,
		IBufferEntries:     3,
		FetchCyclesPerLine: 1,
		DecodeDelay:        2,

		L1Size:     64 * 1024,
		L1Ways:     4,
		LineSize:   128,
		SectorSize: 32,
		L2Size:     4 * 1024 * 1024,
		L2Ways:     16,
		L2Slices:   4,

		IMCSize:       2 * 1024,
		IMCWays:       4,
		ConstBankSize: 64 * 1024,

		ALULatency:    4,
		FMALatency:    4,
		FP64Latency:   8,
		SFULatency:    12,
		SharedLatency: 22,
		L1Latency:     28,
		L2Latency:     188,
		DRAMLatency:   420,
		IMCHitLatency: 4,
		IMCMissExtra:  160,
		BranchLatency: 7,
		TEXLatency:    72,

		PipeLanes: pipeLanes(map[isa.Pipe]int{
			isa.PipeALU:  32,
			isa.PipeFMA:  32,
			isa.PipeFP64: 1,
			isa.PipeSFU:  4,
			isa.PipeLSU:  8,
			isa.PipeMIO:  8,
			isa.PipeTEX:  2,
			isa.PipeCBU:  32,
		}),

		LGQueueDepth:      16,
		MIOQueueDepth:     8,
		TEXQueueDepth:     4,
		DRAMQueueDepth:    128,
		DRAMBytesPerCycle: 270,

		RegFileBanks: 4,

		DivergenceMitigation: 0.3,
		SchedulingPolicy:     "gto",
	}
	mustValidate(s)
	return s
}

// All returns the built-in device models, keyed by a short CLI-friendly id.
func All() map[string]*Spec {
	return map[string]*Spec{
		"gtx1070": GTX1070(),
		"rtx4000": QuadroRTX4000(),
	}
}

// Lookup resolves a short device id ("gtx1070", "rtx4000"); ok is false for
// unknown ids.
func Lookup(id string) (*Spec, bool) {
	s, ok := All()[id]
	return s, ok
}

func pipeLanes(m map[isa.Pipe]int) [isa.NumPipes]int {
	var lanes [isa.NumPipes]int
	for i := range lanes {
		lanes[i] = 1
	}
	for p, n := range m {
		lanes[p] = n
	}
	return lanes
}

func mustValidate(s *Spec) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
}

package gpu

import (
	"testing"

	"gputopdown/internal/isa"
)

func TestTable9Characteristics(t *testing.T) {
	// The paper's Table IX, verbatim.
	p := GTX1070()
	if p.Compute != (CC{6, 1}) || p.Architecture != "Pascal" {
		t.Errorf("GTX1070 CC/arch = %s/%s", p.Compute, p.Architecture)
	}
	if p.MemoryGB != 8 || p.MemoryType != "DDR5" {
		t.Errorf("GTX1070 memory = %dGB %s", p.MemoryGB, p.MemoryType)
	}
	if p.CUDACores != 1920 || p.SMs != 15 || p.SubpartitionsPerSM != 4 || p.PowerW != 150 {
		t.Errorf("GTX1070 cores/SMs/subparts/power = %d/%d/%d/%d",
			p.CUDACores, p.SMs, p.SubpartitionsPerSM, p.PowerW)
	}

	q := QuadroRTX4000()
	if q.Compute != (CC{7, 5}) || q.Architecture != "Turing" {
		t.Errorf("RTX4000 CC/arch = %s/%s", q.Compute, q.Architecture)
	}
	if q.MemoryGB != 8 || q.MemoryType != "DDR6" {
		t.Errorf("RTX4000 memory = %dGB %s", q.MemoryGB, q.MemoryType)
	}
	if q.CUDACores != 2304 || q.SMs != 36 || q.SubpartitionsPerSM != 2 || q.PowerW != 160 {
		t.Errorf("RTX4000 cores/SMs/subparts/power = %d/%d/%d/%d",
			q.CUDACores, q.SMs, q.SubpartitionsPerSM, q.PowerW)
	}
}

func TestCCComparisons(t *testing.T) {
	cases := []struct {
		cc      CC
		unified bool
	}{
		{CC{3, 0}, false},
		{CC{6, 1}, false},
		{CC{7, 0}, false},
		{CC{7, 2}, true},
		{CC{7, 5}, true},
		{CC{8, 0}, true},
	}
	for _, c := range cases {
		if got := c.cc.UsesUnifiedMetrics(); got != c.unified {
			t.Errorf("CC %s UsesUnifiedMetrics = %v, want %v", c.cc, got, c.unified)
		}
	}
	if !(CC{7, 5}).AtLeast(7, 5) || (CC{7, 5}).AtLeast(8, 0) || !(CC{8, 0}).AtLeast(7, 5) {
		t.Error("AtLeast comparison broken")
	}
	if (CC{6, 1}).String() != "6.1" {
		t.Errorf("CC String = %q", (CC{6, 1}).String())
	}
}

func TestIPCMaxFollowsDispatchUnits(t *testing.T) {
	// Paper §IV.C: IPC_MAX equals the number of dispatch units per SM.
	if got := GTX1070().IPCMax(); got != 4 {
		t.Errorf("GTX1070 IPCMax = %g, want 4", got)
	}
	if got := QuadroRTX4000().IPCMax(); got != 2 {
		t.Errorf("RTX4000 IPCMax = %g, want 2", got)
	}
}

func TestSpecsValidate(t *testing.T) {
	for id, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	base := GTX1070()
	mutations := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.SMs = 0 },
		func(s *Spec) { s.SubpartitionsPerSM = 0 },
		func(s *Spec) { s.ClockMHz = 0 },
		func(s *Spec) { s.SectorSize = 48 }, // not dividing line size
		func(s *Spec) { s.L2Size = 0 },
		func(s *Spec) { s.SchedulingPolicy = "random" },
		func(s *Spec) { s.DivergenceMitigation = 2 },
		func(s *Spec) { s.PipeLanes[isa.PipeFMA] = 0 },
		func(s *Spec) { s.LGQueueDepth = 0 },
	}
	for i, mut := range mutations {
		c := *base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestWithSMsScalesL2(t *testing.T) {
	s := QuadroRTX4000()
	d := s.WithSMs(4)
	if d.SMs != 4 {
		t.Errorf("SMs = %d", d.SMs)
	}
	if d.L2Size >= s.L2Size {
		t.Errorf("L2 did not scale down: %d >= %d", d.L2Size, s.L2Size)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("downscaled spec invalid: %v", err)
	}
	// Original untouched.
	if s.SMs != 36 {
		t.Error("WithSMs mutated the receiver")
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("gtx1070"); !ok {
		t.Error("gtx1070 not found")
	}
	if _, ok := Lookup("rtx4000"); !ok {
		t.Error("rtx4000 not found")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus device found")
	}
}

func TestWarpsPerSM(t *testing.T) {
	if got := GTX1070().WarpsPerSM(); got != 64 {
		t.Errorf("GTX1070 WarpsPerSM = %d, want 64", got)
	}
	if got := QuadroRTX4000().WarpsPerSM(); got != 32 {
		t.Errorf("RTX4000 WarpsPerSM = %d, want 32", got)
	}
}

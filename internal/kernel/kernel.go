// Package kernel represents GPU kernels for the simulator: the program (a
// sequence of mini-ISA instructions), the launch configuration (grid and
// block geometry, parameters), and a builder DSL with structured control flow
// that computes SIMT reconvergence points automatically — the role the
// compiler's SSY/BSSY instructions play on real NVIDIA hardware.
package kernel

import (
	"fmt"
	"strings"

	"gputopdown/internal/isa"
)

// WarpSize is the number of threads per warp on every NVIDIA architecture.
const WarpSize = 32

// MaxBlockThreads is the architectural limit on threads per block.
const MaxBlockThreads = 1024

// Dim3 is a CUDA-style 3-dimensional extent. Zero components are treated as 1
// by Norm, so Dim3{X: 256} is a valid 1-D shape.
type Dim3 struct {
	X, Y, Z int
}

// Norm returns d with zero components replaced by 1.
func (d Dim3) Norm() Dim3 {
	if d.X == 0 {
		d.X = 1
	}
	if d.Y == 0 {
		d.Y = 1
	}
	if d.Z == 0 {
		d.Z = 1
	}
	return d
}

// Count returns the total number of elements in the extent.
func (d Dim3) Count() int {
	d = d.Norm()
	return d.X * d.Y * d.Z
}

// String implements fmt.Stringer.
func (d Dim3) String() string {
	d = d.Norm()
	return fmt.Sprintf("(%d,%d,%d)", d.X, d.Y, d.Z)
}

// Program is a compiled kernel: straight-line instruction storage plus the
// static resource requirements that constrain SM occupancy.
type Program struct {
	Name string
	// Instrs is the instruction stream; branch targets are indices into it.
	Instrs []isa.Instr
	// NumRegs is the number of general-purpose registers each thread uses.
	NumRegs int
	// SharedBytes is the static shared-memory allocation per block.
	SharedBytes int
	// LocalBytes is the per-thread local (spill) space.
	LocalBytes int
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Instrs) }

// Validate checks the structural invariants the simulator relies on.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("kernel: program has no name")
	}
	if len(p.Instrs) == 0 {
		return fmt.Errorf("kernel %s: empty program", p.Name)
	}
	if p.NumRegs < 1 || p.NumRegs > isa.MaxRegs {
		return fmt.Errorf("kernel %s: NumRegs %d out of range [1,%d]", p.Name, p.NumRegs, isa.MaxRegs)
	}
	hasExit := false
	for i, in := range p.Instrs {
		if err := in.Validate(len(p.Instrs)); err != nil {
			return fmt.Errorf("kernel %s: instr %d (%s): %w", p.Name, i, in.Op, err)
		}
		if in.Op == isa.OpEXIT {
			hasExit = true
		}
	}
	if !hasExit {
		return fmt.Errorf("kernel %s: program has no EXIT", p.Name)
	}
	if last := p.Instrs[len(p.Instrs)-1]; last.Op != isa.OpEXIT && last.Op != isa.OpBRA {
		return fmt.Errorf("kernel %s: program falls off the end (last op %s)", p.Name, last.Op)
	}
	return nil
}

// Disassemble renders the program as numbered SASS-flavoured lines.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d instrs, %d regs, %dB shared, %dB local\n",
		p.Name, len(p.Instrs), p.NumRegs, p.SharedBytes, p.LocalBytes)
	for i, in := range p.Instrs {
		fmt.Fprintf(&sb, "%4d: %s\n", i, in.String())
	}
	return sb.String()
}

// Launch is one kernel invocation: which program, with what geometry and
// parameters. Params are copied into the device constant bank before
// execution (as the CUDA driver does), so kernels read them through LDC.
type Launch struct {
	Program *Program
	Grid    Dim3
	Block   Dim3
	// Params are 64-bit kernel parameters (pointers and scalars).
	Params []uint64
	// DynamicSharedBytes is added to the program's static shared allocation.
	DynamicSharedBytes int
}

// BlockThreads returns threads per block.
func (l *Launch) BlockThreads() int { return l.Block.Count() }

// WarpsPerBlock returns warps per block (rounded up).
func (l *Launch) WarpsPerBlock() int {
	return (l.BlockThreads() + WarpSize - 1) / WarpSize
}

// NumBlocks returns the total grid size in blocks.
func (l *Launch) NumBlocks() int { return l.Grid.Count() }

// TotalThreads returns grid size in threads.
func (l *Launch) TotalThreads() int { return l.NumBlocks() * l.BlockThreads() }

// SharedBytes returns the total per-block shared memory footprint.
func (l *Launch) SharedBytes() int {
	return l.Program.SharedBytes + l.DynamicSharedBytes
}

// Validate checks launch-configuration invariants.
func (l *Launch) Validate() error {
	if l.Program == nil {
		return fmt.Errorf("kernel: launch has no program")
	}
	if err := l.Program.Validate(); err != nil {
		return err
	}
	bt := l.BlockThreads()
	if bt < 1 || bt > MaxBlockThreads {
		return fmt.Errorf("kernel %s: block %s has %d threads, want [1,%d]",
			l.Program.Name, l.Block, bt, MaxBlockThreads)
	}
	if l.NumBlocks() < 1 {
		return fmt.Errorf("kernel %s: empty grid %s", l.Program.Name, l.Grid)
	}
	return nil
}

// ParamBase is the constant-bank offset at which launch parameters are
// materialised, mirroring CUDA's c[0x0][0x160]-style parameter space. User
// constant data written by the host must live at ParamSpace or above.
const (
	ParamBase  = 0x160
	ParamSpace = 0x1000
)

// ParamOffset returns the constant-bank offset of the i-th launch parameter.
func ParamOffset(i int) int64 { return ParamBase + int64(i)*8 }

package kernel

import (
	"fmt"
	"math"

	"gputopdown/internal/isa"
)

// Builder assembles a Program instruction by instruction. It provides
// structured control flow (If/Else/EndIf, For loops, Break) and computes the
// SIMT reconvergence point of every potentially divergent branch, the job
// done by the compiler on real hardware. Value-producing emit methods
// allocate a fresh destination register and return it, so kernels read like
// three-address code:
//
//	b := kernel.NewBuilder("saxpy")
//	x := b.Param(0)
//	i := b.GlobalIDX()
//	...
//
// The zero value is not usable; call NewBuilder. All methods record the first
// error encountered and become no-ops afterwards; Build returns that error.
type Builder struct {
	name     string
	instrs   []isa.Instr
	nextReg  int
	nextPred int
	shared   int
	local    int
	frames   []frame
	err      error
}

type frameKind uint8

const (
	frameIf frameKind = iota
	frameElse
	frameFor
)

type frame struct {
	kind frameKind
	// branchIdx is the conditional forward branch to patch at End*.
	branchIdx int
	// elseJumpIdx is the unconditional then→end jump (frameElse only).
	elseJumpIdx int
	// top is the loop-head index (frameFor only).
	top int
	// counter/limit/step drive the For increment (frameFor only).
	counter isa.Reg
	limit   isa.Reg
	step    int64
	// breaks are BreakIf branch indices awaiting the end label.
	breaks []int
}

// NewBuilder returns a builder for a kernel with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// Err returns the first error recorded by the builder, if any.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("kernel %s: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// Reg allocates a fresh general-purpose register.
func (b *Builder) Reg() isa.Reg {
	if b.nextReg >= isa.MaxRegs {
		b.fail("out of registers (max %d)", isa.MaxRegs)
		return isa.Reg(0)
	}
	r := isa.Reg(b.nextReg)
	b.nextReg++
	return r
}

// Pred allocates a predicate register from the rotating pool P0..P6. Kernels
// with more than NumPreds simultaneously-live predicates will misbehave; the
// suite kernels stay well below that.
func (b *Builder) Pred() isa.PredReg {
	p := isa.P0 + isa.PredReg(b.nextPred)
	b.nextPred = (b.nextPred + 1) % isa.NumPreds
	return p
}

// DeclShared reserves n bytes of static shared memory and returns the base
// offset of the reservation.
func (b *Builder) DeclShared(n int) int64 {
	off := int64(b.shared)
	b.shared += n
	// Keep 8-byte alignment for subsequent declarations.
	b.shared = (b.shared + 7) &^ 7
	return off
}

// DeclLocal reserves n bytes of per-thread local memory and returns its base
// offset.
func (b *Builder) DeclLocal(n int) int64 {
	off := int64(b.local)
	b.local += n
	b.local = (b.local + 7) &^ 7
	return off
}

// Here returns the index the next emitted instruction will occupy.
func (b *Builder) Here() int { return len(b.instrs) }

func (b *Builder) emit(in isa.Instr) int {
	if b.err != nil {
		return len(b.instrs)
	}
	b.instrs = append(b.instrs, in)
	return len(b.instrs) - 1
}

// Emit appends a raw instruction (advanced use; the structured helpers are
// preferred). A zero Pred field means unpredicated (PT).
func (b *Builder) Emit(in isa.Instr) int {
	return b.emit(in)
}

func (b *Builder) alu3(op isa.Op, a, c, d isa.Reg, imm int64) isa.Reg {
	dst := b.Reg()
	b.emit(isa.Instr{Op: op, Dst: dst, Srcs: [3]isa.Reg{a, c, d}, Imm: imm, Pred: isa.PT})
	return dst
}

// ---- Integer pipe ----

// IAdd returns a + c.
func (b *Builder) IAdd(a, c isa.Reg) isa.Reg { return b.alu3(isa.OpIADD, a, c, isa.RZ, 0) }

// IAddImm returns a + imm.
func (b *Builder) IAddImm(a isa.Reg, imm int64) isa.Reg {
	return b.alu3(isa.OpIADD, a, isa.RZ, isa.RZ, imm)
}

// ISub returns a - c.
func (b *Builder) ISub(a, c isa.Reg) isa.Reg { return b.alu3(isa.OpISUB, a, c, isa.RZ, 0) }

// IMul returns a * c.
func (b *Builder) IMul(a, c isa.Reg) isa.Reg { return b.alu3(isa.OpIMUL, a, c, isa.RZ, 0) }

// IMulImm returns a * imm.
func (b *Builder) IMulImm(a isa.Reg, imm int64) isa.Reg {
	return b.alu3(isa.OpIMUL, a, isa.RZ, isa.RZ, imm)
}

// IMad returns a*c + d.
func (b *Builder) IMad(a, c, d isa.Reg) isa.Reg { return b.alu3(isa.OpIMAD, a, c, d, 0) }

// Shl returns a << imm.
func (b *Builder) Shl(a isa.Reg, imm int64) isa.Reg {
	return b.alu3(isa.OpISHL, a, isa.RZ, isa.RZ, imm)
}

// ShlReg returns a << c.
func (b *Builder) ShlReg(a, c isa.Reg) isa.Reg { return b.alu3(isa.OpISHL, a, c, isa.RZ, 0) }

// ShrReg returns a >> c (arithmetic).
func (b *Builder) ShrReg(a, c isa.Reg) isa.Reg { return b.alu3(isa.OpISHR, a, c, isa.RZ, 0) }

// Popc returns the population count of a.
func (b *Builder) Popc(a isa.Reg) isa.Reg { return b.alu3(isa.OpPOPC, a, isa.RZ, isa.RZ, 0) }

// Shr returns a >> imm (arithmetic).
func (b *Builder) Shr(a isa.Reg, imm int64) isa.Reg {
	return b.alu3(isa.OpISHR, a, isa.RZ, isa.RZ, imm)
}

// And returns a & c.
func (b *Builder) And(a, c isa.Reg) isa.Reg { return b.alu3(isa.OpIAND, a, c, isa.RZ, 0) }

// AndImm returns a & imm.
func (b *Builder) AndImm(a isa.Reg, imm int64) isa.Reg {
	return b.alu3(isa.OpIAND, a, isa.RZ, isa.RZ, imm)
}

// Or returns a | c.
func (b *Builder) Or(a, c isa.Reg) isa.Reg { return b.alu3(isa.OpIOR, a, c, isa.RZ, 0) }

// Xor returns a ^ c.
func (b *Builder) Xor(a, c isa.Reg) isa.Reg { return b.alu3(isa.OpIXOR, a, c, isa.RZ, 0) }

// XorImm returns a ^ imm.
func (b *Builder) XorImm(a isa.Reg, imm int64) isa.Reg {
	return b.alu3(isa.OpIXOR, a, isa.RZ, isa.RZ, imm)
}

// IMin returns min(a, c).
func (b *Builder) IMin(a, c isa.Reg) isa.Reg { return b.alu3(isa.OpIMIN, a, c, isa.RZ, 0) }

// IMax returns max(a, c).
func (b *Builder) IMax(a, c isa.Reg) isa.Reg { return b.alu3(isa.OpIMAX, a, c, isa.RZ, 0) }

// ISetp compares a <cmp> c into a fresh predicate.
func (b *Builder) ISetp(cmp isa.CmpOp, a, c isa.Reg) isa.PredReg {
	p := b.Pred()
	b.emit(isa.Instr{Op: isa.OpISETP, PDst: p, Cmp: cmp, Srcs: [3]isa.Reg{a, c, isa.RZ}, Pred: isa.PT})
	return p
}

// ISetpImm compares a <cmp> imm into a fresh predicate.
func (b *Builder) ISetpImm(cmp isa.CmpOp, a isa.Reg, imm int64) isa.PredReg {
	p := b.Pred()
	b.emit(isa.Instr{Op: isa.OpISETP, PDst: p, Cmp: cmp, Srcs: [3]isa.Reg{a, isa.RZ, isa.RZ}, Imm: imm, Pred: isa.PT})
	return p
}

// ---- FP32 pipe ----

// FAdd returns a + c (float32).
func (b *Builder) FAdd(a, c isa.Reg) isa.Reg { return b.alu3(isa.OpFADD, a, c, isa.RZ, 0) }

// FMul returns a * c (float32).
func (b *Builder) FMul(a, c isa.Reg) isa.Reg { return b.alu3(isa.OpFMUL, a, c, isa.RZ, 0) }

// FFma returns a*c + d (float32).
func (b *Builder) FFma(a, c, d isa.Reg) isa.Reg { return b.alu3(isa.OpFFMA, a, c, d, 0) }

// FMin returns min(a, c) (float32).
func (b *Builder) FMin(a, c isa.Reg) isa.Reg { return b.alu3(isa.OpFMIN, a, c, isa.RZ, 0) }

// FMax returns max(a, c) (float32).
func (b *Builder) FMax(a, c isa.Reg) isa.Reg { return b.alu3(isa.OpFMAX, a, c, isa.RZ, 0) }

// FSetp compares a <cmp> c (float32) into a fresh predicate.
func (b *Builder) FSetp(cmp isa.CmpOp, a, c isa.Reg) isa.PredReg {
	p := b.Pred()
	b.emit(isa.Instr{Op: isa.OpFSETP, PDst: p, Cmp: cmp, Srcs: [3]isa.Reg{a, c, isa.RZ}, Pred: isa.PT})
	return p
}

// I2F converts an integer to float32.
func (b *Builder) I2F(a isa.Reg) isa.Reg { return b.alu3(isa.OpI2F, a, isa.RZ, isa.RZ, 0) }

// F2I truncates a float32 to integer.
func (b *Builder) F2I(a isa.Reg) isa.Reg { return b.alu3(isa.OpF2I, a, isa.RZ, isa.RZ, 0) }

// ---- FP64 pipe ----

// DAdd returns a + c (float64).
func (b *Builder) DAdd(a, c isa.Reg) isa.Reg { return b.alu3(isa.OpDADD, a, c, isa.RZ, 0) }

// DMul returns a * c (float64).
func (b *Builder) DMul(a, c isa.Reg) isa.Reg { return b.alu3(isa.OpDMUL, a, c, isa.RZ, 0) }

// DFma returns a*c + d (float64).
func (b *Builder) DFma(a, c, d isa.Reg) isa.Reg { return b.alu3(isa.OpDFMA, a, c, d, 0) }

// ---- SFU pipe ----

// Mufu computes a transcendental of a on the SFU pipe.
func (b *Builder) Mufu(f isa.MufuFunc, a isa.Reg) isa.Reg {
	dst := b.Reg()
	b.emit(isa.Instr{Op: isa.OpMUFU, Mufu: f, Dst: dst, Srcs: [3]isa.Reg{a, isa.RZ, isa.RZ}, Pred: isa.PT})
	return dst
}

// ---- Data movement ----

// MovImm loads a 64-bit immediate into a fresh register.
func (b *Builder) MovImm(v int64) isa.Reg {
	dst := b.Reg()
	b.emit(isa.Instr{Op: isa.OpMOV32, Dst: dst, Imm: v, Pred: isa.PT})
	return dst
}

// FConst loads a float32 constant.
func (b *Builder) FConst(v float32) isa.Reg {
	return b.MovImm(int64(math.Float32bits(v)))
}

// DConst loads a float64 constant.
func (b *Builder) DConst(v float64) isa.Reg {
	return b.MovImm(int64(math.Float64bits(v)))
}

// Mov copies a register.
func (b *Builder) Mov(a isa.Reg) isa.Reg { return b.alu3(isa.OpMOV, a, isa.RZ, isa.RZ, 0) }

// MovTo overwrites dst with src (for loop-carried values).
func (b *Builder) MovTo(dst, src isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpMOV, Dst: dst, Srcs: [3]isa.Reg{src, isa.RZ, isa.RZ}, Pred: isa.PT})
}

// MovToIf overwrites dst with src in threads where p (negated if neg) holds.
func (b *Builder) MovToIf(p isa.PredReg, neg bool, dst, src isa.Reg) {
	b.emit(isa.Instr{Op: isa.OpMOV, Dst: dst, Srcs: [3]isa.Reg{src, isa.RZ, isa.RZ}, Pred: p, PredNeg: neg})
}

// Sel returns p ? a : c.
func (b *Builder) Sel(p isa.PredReg, a, c isa.Reg) isa.Reg {
	dst := b.Reg()
	b.emit(isa.Instr{Op: isa.OpSEL, PDst: p, Dst: dst, Srcs: [3]isa.Reg{a, c, isa.RZ}, Pred: isa.PT})
	return dst
}

// S2R reads a special register.
func (b *Builder) S2R(sr isa.SpecialReg) isa.Reg {
	dst := b.Reg()
	b.emit(isa.Instr{Op: isa.OpS2R, Dst: dst, Imm: int64(sr), Pred: isa.PT})
	return dst
}

// GlobalIDX computes the flattened global thread index
// blockIdx.x*blockDim.x + threadIdx.x.
func (b *Builder) GlobalIDX() isa.Reg {
	tid := b.S2R(isa.SRTidX)
	cta := b.S2R(isa.SRCtaIDX)
	ntid := b.S2R(isa.SRNTidX)
	return b.IMad(cta, ntid, tid)
}

// ---- Warp communication ----

// ShflXor reads the source register from lane (laneid ^ mask).
func (b *Builder) ShflXor(a isa.Reg, mask int64) isa.Reg {
	dst := b.Reg()
	b.emit(isa.Instr{Op: isa.OpSHFL, Dst: dst, Srcs: [3]isa.Reg{a, isa.RZ, isa.RZ}, Imm: mask, Pred: isa.PT})
	return dst
}

// Ballot returns the warp-wide ballot mask of predicate p.
func (b *Builder) Ballot(p isa.PredReg) isa.Reg {
	dst := b.Reg()
	b.emit(isa.Instr{Op: isa.OpVOTE, PDst: p, Dst: dst, Pred: isa.PT})
	return dst
}

// ---- Memory ----

// Ldg loads size bytes from global memory at [addr+off].
func (b *Builder) Ldg(addr isa.Reg, off int64, size int) isa.Reg {
	dst := b.Reg()
	b.emit(isa.Instr{Op: isa.OpLDG, Dst: dst, Srcs: [3]isa.Reg{addr, isa.RZ, isa.RZ}, Imm: off, Size: uint8(size), Pred: isa.PT})
	return dst
}

// Stg stores size bytes of val to global memory at [addr+off].
func (b *Builder) Stg(addr, val isa.Reg, off int64, size int) {
	b.emit(isa.Instr{Op: isa.OpSTG, Srcs: [3]isa.Reg{addr, val, isa.RZ}, Imm: off, Size: uint8(size), Pred: isa.PT})
}

// StgIf is Stg predicated on p (negated if neg).
func (b *Builder) StgIf(p isa.PredReg, neg bool, addr, val isa.Reg, off int64, size int) {
	b.emit(isa.Instr{Op: isa.OpSTG, Srcs: [3]isa.Reg{addr, val, isa.RZ}, Imm: off, Size: uint8(size), Pred: p, PredNeg: neg})
}

// Lds loads from shared memory at [addr+off].
func (b *Builder) Lds(addr isa.Reg, off int64, size int) isa.Reg {
	dst := b.Reg()
	b.emit(isa.Instr{Op: isa.OpLDS, Dst: dst, Srcs: [3]isa.Reg{addr, isa.RZ, isa.RZ}, Imm: off, Size: uint8(size), Pred: isa.PT})
	return dst
}

// Sts stores to shared memory at [addr+off].
func (b *Builder) Sts(addr, val isa.Reg, off int64, size int) {
	b.emit(isa.Instr{Op: isa.OpSTS, Srcs: [3]isa.Reg{addr, val, isa.RZ}, Imm: off, Size: uint8(size), Pred: isa.PT})
}

// Ldl loads from per-thread local memory.
func (b *Builder) Ldl(addr isa.Reg, off int64, size int) isa.Reg {
	dst := b.Reg()
	b.emit(isa.Instr{Op: isa.OpLDL, Dst: dst, Srcs: [3]isa.Reg{addr, isa.RZ, isa.RZ}, Imm: off, Size: uint8(size), Pred: isa.PT})
	return dst
}

// Stl stores to per-thread local memory.
func (b *Builder) Stl(addr, val isa.Reg, off int64, size int) {
	b.emit(isa.Instr{Op: isa.OpSTL, Srcs: [3]isa.Reg{addr, val, isa.RZ}, Imm: off, Size: uint8(size), Pred: isa.PT})
}

// Ldc loads size bytes from the constant bank at [addr+off].
func (b *Builder) Ldc(addr isa.Reg, off int64, size int) isa.Reg {
	dst := b.Reg()
	b.emit(isa.Instr{Op: isa.OpLDC, Dst: dst, Srcs: [3]isa.Reg{addr, isa.RZ, isa.RZ}, Imm: off, Size: uint8(size), Pred: isa.PT})
	return dst
}

// LdcOff loads from a fixed constant-bank offset.
func (b *Builder) LdcOff(off int64, size int) isa.Reg {
	dst := b.Reg()
	b.emit(isa.Instr{Op: isa.OpLDC, Dst: dst, Srcs: [3]isa.Reg{isa.RZ, isa.RZ, isa.RZ}, Imm: off, Size: uint8(size), Pred: isa.PT})
	return dst
}

// Param loads the i-th 64-bit launch parameter from the constant bank, the
// way compiled CUDA kernels read c[0x0][0x160+...].
func (b *Builder) Param(i int) isa.Reg {
	return b.LdcOff(ParamOffset(i), 8)
}

// Tex performs a texture fetch at coordinate register a.
func (b *Builder) Tex(a isa.Reg, off int64) isa.Reg {
	dst := b.Reg()
	b.emit(isa.Instr{Op: isa.OpTEX, Dst: dst, Srcs: [3]isa.Reg{a, isa.RZ, isa.RZ}, Imm: off, Size: 4, Pred: isa.PT})
	return dst
}

// Atom performs an atomic RMW on global memory and returns the old value.
func (b *Builder) Atom(op isa.AtomOp, addr, val isa.Reg, off int64) isa.Reg {
	dst := b.Reg()
	b.emit(isa.Instr{Op: isa.OpATOM, Atom: op, Dst: dst, Srcs: [3]isa.Reg{addr, val, isa.RZ}, Imm: off, Size: 4, Pred: isa.PT})
	return dst
}

// AtomIf is Atom predicated on p (negated if neg): only lanes where the
// predicate holds perform the RMW and receive the old value.
func (b *Builder) AtomIf(p isa.PredReg, neg bool, op isa.AtomOp, addr, val isa.Reg, off int64) isa.Reg {
	dst := b.Reg()
	b.emit(isa.Instr{Op: isa.OpATOM, Atom: op, Dst: dst, Srcs: [3]isa.Reg{addr, val, isa.RZ}, Imm: off, Size: 4, Pred: p, PredNeg: neg})
	return dst
}

// Red performs an atomic reduction (no return value) on global memory.
func (b *Builder) Red(op isa.AtomOp, addr, val isa.Reg, off int64) {
	b.emit(isa.Instr{Op: isa.OpRED, Atom: op, Srcs: [3]isa.Reg{addr, val, isa.RZ}, Imm: off, Size: 4, Pred: isa.PT})
}

// RedIf is Red predicated on p (negated if neg).
func (b *Builder) RedIf(p isa.PredReg, neg bool, op isa.AtomOp, addr, val isa.Reg, off int64) {
	b.emit(isa.Instr{Op: isa.OpRED, Atom: op, Srcs: [3]isa.Reg{addr, val, isa.RZ}, Imm: off, Size: 4, Pred: p, PredNeg: neg})
}

// ---- Synchronization and control ----

// Bar emits a CTA-wide barrier (__syncthreads).
func (b *Builder) Bar() {
	b.emit(isa.Instr{Op: isa.OpBAR, Pred: isa.PT})
}

// Membar emits a memory barrier.
func (b *Builder) Membar() {
	b.emit(isa.Instr{Op: isa.OpMEMBAR, Pred: isa.PT})
}

// Nanosleep puts the warp to sleep for roughly cycles cycles.
func (b *Builder) Nanosleep(cycles int64) {
	b.emit(isa.Instr{Op: isa.OpNANOSLEEP, Imm: cycles, Pred: isa.PT})
}

// Exit terminates all threads reaching it.
func (b *Builder) Exit() {
	b.emit(isa.Instr{Op: isa.OpEXIT, Pred: isa.PT})
}

// ExitIf terminates the threads where p (negated if neg) holds — the
// "if (gid >= n) return;" guard idiom.
func (b *Builder) ExitIf(p isa.PredReg, neg bool) {
	b.emit(isa.Instr{Op: isa.OpEXIT, Pred: p, PredNeg: neg})
}

// If opens a region executed by threads where p holds. Potentially divergent.
func (b *Builder) If(p isa.PredReg) {
	// Threads where !p jump ahead; patched at Else/EndIf.
	idx := b.emit(isa.Instr{Op: isa.OpBRA, Pred: p, PredNeg: true})
	b.frames = append(b.frames, frame{kind: frameIf, branchIdx: idx})
}

// IfNot opens a region executed by threads where p does not hold.
func (b *Builder) IfNot(p isa.PredReg) {
	idx := b.emit(isa.Instr{Op: isa.OpBRA, Pred: p, PredNeg: false})
	b.frames = append(b.frames, frame{kind: frameIf, branchIdx: idx})
}

// Else switches the open If region to its complement path.
func (b *Builder) Else() {
	if len(b.frames) == 0 || b.frames[len(b.frames)-1].kind != frameIf {
		b.fail("Else without matching If")
		return
	}
	f := &b.frames[len(b.frames)-1]
	// Unconditional jump from the end of the then-path to the end.
	f.elseJumpIdx = b.emit(isa.Instr{Op: isa.OpBRA, Pred: isa.PT})
	// The If branch lands at the start of the else-path.
	if b.err == nil {
		b.instrs[f.branchIdx].Target = len(b.instrs)
	}
	f.kind = frameElse
}

// EndIf closes an If/Else region, patching branch targets and reconvergence
// points to the instruction that follows.
func (b *Builder) EndIf() {
	if len(b.frames) == 0 || (b.frames[len(b.frames)-1].kind != frameIf && b.frames[len(b.frames)-1].kind != frameElse) {
		b.fail("EndIf without matching If")
		return
	}
	f := b.frames[len(b.frames)-1]
	b.frames = b.frames[:len(b.frames)-1]
	if b.err != nil {
		return
	}
	end := len(b.instrs)
	if f.kind == frameIf {
		b.instrs[f.branchIdx].Target = end
	}
	b.instrs[f.branchIdx].Recon = end
	if f.kind == frameElse {
		b.instrs[f.elseJumpIdx].Target = end
		b.instrs[f.elseJumpIdx].Recon = end
	}
}

// For opens a counted loop: for (i = start; i < limit; i += step). It returns
// the counter register. limit is a register so per-thread trip counts (and
// hence loop divergence) are expressible; use MovImm for uniform limits.
func (b *Builder) For(start int64, limit isa.Reg, step int64) isa.Reg {
	if step <= 0 {
		// The loop exits on counter >= limit; a non-positive step could
		// never reach it.
		b.fail("For with non-positive step %d", step)
		return isa.Reg(0)
	}
	i := b.MovImm(start)
	top := len(b.instrs)
	p := b.Pred()
	// Exit test at the top: i >= limit leaves the loop.
	b.emit(isa.Instr{Op: isa.OpISETP, PDst: p, Cmp: isa.CmpGE, Srcs: [3]isa.Reg{i, limit, isa.RZ}, Pred: isa.PT})
	idx := b.emit(isa.Instr{Op: isa.OpBRA, Pred: p}) // patched to end
	b.frames = append(b.frames, frame{kind: frameFor, branchIdx: idx, top: top, counter: i, limit: limit, step: step})
	return i
}

// ForImm is For with an immediate limit.
func (b *Builder) ForImm(start, limit, step int64) isa.Reg {
	return b.For(start, b.MovImm(limit), step)
}

// BreakIf jumps to the loop end in threads where p (negated if neg) holds.
func (b *Builder) BreakIf(p isa.PredReg, neg bool) {
	for k := len(b.frames) - 1; k >= 0; k-- {
		if b.frames[k].kind == frameFor {
			idx := b.emit(isa.Instr{Op: isa.OpBRA, Pred: p, PredNeg: neg})
			b.frames[k].breaks = append(b.frames[k].breaks, idx)
			return
		}
	}
	b.fail("BreakIf outside any For")
}

// EndFor closes the innermost For loop.
func (b *Builder) EndFor() {
	if len(b.frames) == 0 || b.frames[len(b.frames)-1].kind != frameFor {
		b.fail("EndFor without matching For")
		return
	}
	f := b.frames[len(b.frames)-1]
	b.frames = b.frames[:len(b.frames)-1]
	if b.err != nil {
		return
	}
	// i += step
	b.emit(isa.Instr{Op: isa.OpIADD, Dst: f.counter, Srcs: [3]isa.Reg{f.counter, isa.RZ, isa.RZ}, Imm: f.step, Pred: isa.PT})
	// Unconditional back-edge to the top test.
	back := b.emit(isa.Instr{Op: isa.OpBRA, Pred: isa.PT})
	end := len(b.instrs)
	b.instrs[back].Target = f.top
	b.instrs[back].Recon = end
	b.instrs[f.branchIdx].Target = end
	b.instrs[f.branchIdx].Recon = end
	for _, idx := range f.breaks {
		b.instrs[idx].Target = end
		b.instrs[idx].Recon = end
	}
}

// Build finalises the program. An EXIT is appended if the stream does not
// already end with one.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.frames) != 0 {
		return nil, fmt.Errorf("kernel %s: %d unclosed control-flow regions", b.name, len(b.frames))
	}
	if n := len(b.instrs); n == 0 || b.instrs[n-1].Op != isa.OpEXIT {
		b.Exit()
	}
	regs := b.nextReg
	if regs < 1 {
		regs = 1
	}
	p := &Program{
		Name:        b.name,
		Instrs:      b.instrs,
		NumRegs:     regs,
		SharedBytes: b.shared,
		LocalBytes:  b.local,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for static kernel definitions.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

package kernel

import (
	"strings"
	"testing"

	"gputopdown/internal/isa"
)

func TestDim3Norm(t *testing.T) {
	d := Dim3{X: 4}
	if got := d.Norm(); got != (Dim3{4, 1, 1}) {
		t.Errorf("Norm = %v", got)
	}
	if d.Count() != 4 {
		t.Errorf("Count = %d", d.Count())
	}
	if (Dim3{2, 3, 4}).Count() != 24 {
		t.Error("Count of (2,3,4) != 24")
	}
	if (Dim3{}).Count() != 1 {
		t.Error("Count of zero Dim3 != 1")
	}
}

func TestBuilderSimpleKernel(t *testing.T) {
	b := NewBuilder("simple")
	ptr := b.Param(0)
	gid := b.GlobalIDX()
	addr := b.IMad(gid, b.MovImm(4), ptr)
	v := b.Ldg(addr, 0, 4)
	v2 := b.IAddImm(v, 1)
	b.Stg(addr, v2, 0, 4)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() == 0 || p.NumRegs == 0 {
		t.Fatalf("bad program: %+v", p)
	}
	if p.Instrs[p.Len()-1].Op != isa.OpEXIT {
		t.Error("program does not end with EXIT")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderAppendsExit(t *testing.T) {
	b := NewBuilder("noexit")
	b.MovImm(1)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Instrs[p.Len()-1].Op != isa.OpEXIT {
		t.Error("Build did not append EXIT")
	}
}

func TestIfEndIfPatching(t *testing.T) {
	b := NewBuilder("if")
	x := b.MovImm(1)
	p := b.ISetpImm(isa.CmpGT, x, 0)
	b.If(p)
	b.MovImm(2)
	b.EndIf()
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Find the BRA.
	var bra *isa.Instr
	var braIdx int
	for i := range prog.Instrs {
		if prog.Instrs[i].Op == isa.OpBRA {
			bra = &prog.Instrs[i]
			braIdx = i
			break
		}
	}
	if bra == nil {
		t.Fatal("If emitted no branch")
	}
	if !bra.PredNeg {
		t.Error("If branch must be on the negated predicate")
	}
	// Target and reconvergence point are the instruction after the region:
	// the MOV32I body is one instruction.
	want := braIdx + 2
	if bra.Target != want || bra.Recon != want {
		t.Errorf("If branch target/recon = %d/%d, want %d", bra.Target, bra.Recon, want)
	}
}

func TestIfElsePatching(t *testing.T) {
	b := NewBuilder("ifelse")
	x := b.MovImm(1)
	p := b.ISetpImm(isa.CmpGT, x, 0)
	b.If(p)
	b.MovImm(2) // then body
	b.Else()
	b.MovImm(3) // else body
	b.EndIf()
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var bras []int
	for i := range prog.Instrs {
		if prog.Instrs[i].Op == isa.OpBRA {
			bras = append(bras, i)
		}
	}
	if len(bras) != 2 {
		t.Fatalf("want 2 branches, got %d", len(bras))
	}
	ifBra, elseJump := prog.Instrs[bras[0]], prog.Instrs[bras[1]]
	// If branch lands at the start of the else body (after the else jump).
	if ifBra.Target != bras[1]+1 {
		t.Errorf("If branch target = %d, want %d", ifBra.Target, bras[1]+1)
	}
	end := bras[1] + 2 // else body is one instruction
	if ifBra.Recon != end {
		t.Errorf("If branch recon = %d, want %d", ifBra.Recon, end)
	}
	if elseJump.Pred != isa.PT || elseJump.Target != end {
		t.Errorf("else jump = %+v, want unconditional to %d", elseJump, end)
	}
}

func TestForLoopShape(t *testing.T) {
	b := NewBuilder("loop")
	limit := b.MovImm(10)
	i := b.For(0, limit, 1)
	b.IAddImm(i, 0) // body uses counter
	b.EndFor()
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var exitBra, backBra *isa.Instr
	for k := range prog.Instrs {
		in := &prog.Instrs[k]
		if in.Op != isa.OpBRA {
			continue
		}
		if in.Pred == isa.PT {
			backBra = in
		} else {
			exitBra = in
		}
	}
	if exitBra == nil || backBra == nil {
		t.Fatal("loop missing exit or back branch")
	}
	if backBra.Target >= len(prog.Instrs) || prog.Instrs[backBra.Target].Op != isa.OpISETP {
		t.Errorf("back edge should land on the top ISETP test, lands on %v", prog.Instrs[backBra.Target].Op)
	}
	if exitBra.Target != exitBra.Recon {
		t.Errorf("loop exit branch target %d != recon %d", exitBra.Target, exitBra.Recon)
	}
}

func TestBreakIfPatchesToLoopEnd(t *testing.T) {
	b := NewBuilder("break")
	limit := b.MovImm(100)
	i := b.For(0, limit, 1)
	p := b.ISetpImm(isa.CmpGT, i, 5)
	b.BreakIf(p, false)
	b.EndFor()
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// All conditional branches must land inside the program.
	for idx, in := range prog.Instrs {
		if in.Op == isa.OpBRA && (in.Target < 0 || in.Target > len(prog.Instrs)) {
			t.Errorf("instr %d: branch target %d out of range", idx, in.Target)
		}
	}
}

func TestUnbalancedControlFlowErrors(t *testing.T) {
	b := NewBuilder("bad")
	x := b.MovImm(1)
	b.If(b.ISetpImm(isa.CmpGT, x, 0))
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted unclosed If")
	}

	b2 := NewBuilder("bad2")
	b2.EndIf()
	if _, err := b2.Build(); err == nil {
		t.Error("Build accepted EndIf without If")
	}

	b3 := NewBuilder("bad3")
	b3.EndFor()
	if _, err := b3.Build(); err == nil {
		t.Error("Build accepted EndFor without For")
	}

	b4 := NewBuilder("bad4")
	p := b4.ISetpImm(isa.CmpGT, b4.MovImm(1), 0)
	b4.BreakIf(p, false)
	if _, err := b4.Build(); err == nil {
		t.Error("Build accepted BreakIf outside For")
	}
}

func TestForZeroStepErrors(t *testing.T) {
	b := NewBuilder("zstep")
	b.For(0, b.MovImm(1), 0)
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted zero-step For")
	}
}

func TestPredRotation(t *testing.T) {
	b := NewBuilder("preds")
	seen := map[isa.PredReg]bool{}
	for i := 0; i < isa.NumPreds; i++ {
		p := b.Pred()
		if p == isa.PT {
			t.Fatal("allocator returned PT")
		}
		seen[p] = true
	}
	if len(seen) != isa.NumPreds {
		t.Errorf("allocator produced %d distinct predicates, want %d", len(seen), isa.NumPreds)
	}
	if b.Pred() != isa.P0 {
		t.Error("allocator did not wrap to P0")
	}
}

func TestDeclSharedAlignment(t *testing.T) {
	b := NewBuilder("sh")
	off0 := b.DeclShared(12)
	off1 := b.DeclShared(4)
	if off0 != 0 {
		t.Errorf("first shared offset = %d", off0)
	}
	if off1%8 != 0 {
		t.Errorf("second shared offset %d not 8-byte aligned", off1)
	}
	b.Exit()
	p, _ := b.Build()
	if p.SharedBytes < 16 {
		t.Errorf("SharedBytes = %d, want >= 16", p.SharedBytes)
	}
}

func TestLaunchValidation(t *testing.T) {
	b := NewBuilder("k")
	b.Exit()
	prog := b.MustBuild()

	good := &Launch{Program: prog, Grid: Dim3{X: 4}, Block: Dim3{X: 128}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid launch rejected: %v", err)
	}
	if good.WarpsPerBlock() != 4 {
		t.Errorf("WarpsPerBlock = %d", good.WarpsPerBlock())
	}
	if good.TotalThreads() != 512 {
		t.Errorf("TotalThreads = %d", good.TotalThreads())
	}

	tooBig := &Launch{Program: prog, Grid: Dim3{X: 1}, Block: Dim3{X: 2048}}
	if err := tooBig.Validate(); err == nil {
		t.Error("block of 2048 threads accepted")
	}
	noProg := &Launch{Grid: Dim3{X: 1}, Block: Dim3{X: 32}}
	if err := noProg.Validate(); err == nil {
		t.Error("launch without program accepted")
	}
}

func TestProgramValidateRejectsEmptyAndFallthrough(t *testing.T) {
	p := &Program{Name: "e", NumRegs: 1}
	if err := p.Validate(); err == nil {
		t.Error("empty program accepted")
	}
	p2 := &Program{Name: "f", NumRegs: 1, Instrs: []isa.Instr{{Op: isa.OpIADD, Dst: isa.R(0)}}}
	if err := p2.Validate(); err == nil {
		t.Error("program without EXIT accepted")
	}
}

func TestDisassembleContainsName(t *testing.T) {
	b := NewBuilder("disasm_me")
	b.MovImm(7)
	b.Exit()
	p := b.MustBuild()
	d := p.Disassemble()
	if !strings.Contains(d, "disasm_me") || !strings.Contains(d, "MOV32I") || !strings.Contains(d, "EXIT") {
		t.Errorf("disassembly missing content:\n%s", d)
	}
}

func TestParamOffsets(t *testing.T) {
	if ParamOffset(0) != ParamBase {
		t.Error("param 0 not at base")
	}
	if ParamOffset(3) != ParamBase+24 {
		t.Error("param stride != 8")
	}
	if ParamOffset(100) >= ParamSpace {
		t.Error("reasonable param count exceeds reserved space")
	}
}

func TestBuilderErrorSticky(t *testing.T) {
	b := NewBuilder("sticky")
	b.EndIf() // error
	before := b.Here()
	b.MovImm(1) // must be a no-op after error
	if b.Here() != before {
		t.Error("builder kept emitting after error")
	}
	if b.Err() == nil {
		t.Error("Err() did not surface the error")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid program")
		}
	}()
	b := NewBuilder("panic")
	b.EndFor()
	b.MustBuild()
}

func TestForNegativeStepErrors(t *testing.T) {
	b := NewBuilder("negstep")
	b.For(10, b.MovImm(0), -1)
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted negative-step For (would never terminate)")
	}
}

func TestNestedBreakTargetsInnermostLoop(t *testing.T) {
	b := NewBuilder("nested_break")
	outer := b.For(0, b.MovImm(4), 1)
	_ = outer
	inner := b.For(0, b.MovImm(8), 1)
	p := b.ISetpImm(isa.CmpGT, inner, 2)
	b.BreakIf(p, false)
	b.EndFor()
	b.EndFor()
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The break branch must land strictly before the outer EndFor's
	// increment, i.e. inside the outer loop body.
	var breakTarget = -1
	braCount := 0
	for _, in := range prog.Instrs {
		if in.Op == isa.OpBRA && in.Pred != isa.PT {
			braCount++
			if braCount == 3 { // outer test, inner test, then the break
				breakTarget = in.Target
			}
		}
	}
	if breakTarget < 0 || breakTarget >= prog.Len() {
		t.Fatalf("break target %d out of range", breakTarget)
	}
}

package kernel

// Program fingerprinting for the replay result cache (internal/cupti): two
// programs with equal fingerprints are treated as the same code. The hash is
// 64-bit FNV-1a over every semantic field of every instruction plus the
// static resource requirements, so it is stable across process runs and
// independent of pointer identity — rebuilding a kernel from the same builder
// source yields the same fingerprint.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type fnvHash uint64

func (h *fnvHash) mix(v uint64) {
	x := uint64(*h)
	for shift := 0; shift < 64; shift += 8 {
		x ^= (v >> shift) & 0xFF
		x *= fnvPrime
	}
	*h = fnvHash(x)
}

func (h *fnvHash) mixBool(b bool) {
	if b {
		h.mix(1)
	} else {
		h.mix(0)
	}
}

func (h *fnvHash) mixString(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= fnvPrime
	}
	*h = fnvHash(x)
}

// Fingerprint returns a content hash of the program: name, resource
// requirements and the full instruction stream. It is what the replay cache
// keys kernel identity on.
func (p *Program) Fingerprint() uint64 {
	h := fnvHash(fnvOffset)
	h.mixString(p.Name)
	h.mix(uint64(p.NumRegs))
	h.mix(uint64(p.SharedBytes))
	h.mix(uint64(p.LocalBytes))
	h.mix(uint64(len(p.Instrs)))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		h.mix(uint64(in.Op))
		h.mix(uint64(in.Dst))
		for _, s := range in.Srcs {
			h.mix(uint64(s))
		}
		h.mix(uint64(in.Imm))
		h.mix(uint64(in.Pred))
		h.mixBool(in.PredNeg)
		h.mix(uint64(in.PDst))
		h.mix(uint64(in.Cmp))
		h.mix(uint64(in.Mufu))
		h.mix(uint64(in.Atom))
		h.mix(uint64(in.Size))
		h.mix(uint64(in.Target))
		h.mix(uint64(in.Recon))
	}
	return uint64(h)
}

// ConfigHash returns a content hash of the launch configuration — geometry,
// dynamic shared memory and parameter values — combined with the program
// fingerprint. Together with the device memory and constant-bank hashes it
// identifies a byte-identical kernel invocation.
func (l *Launch) ConfigHash() uint64 {
	h := fnvHash(fnvOffset)
	h.mix(l.Program.Fingerprint())
	g, b := l.Grid.Norm(), l.Block.Norm()
	h.mix(uint64(g.X))
	h.mix(uint64(g.Y))
	h.mix(uint64(g.Z))
	h.mix(uint64(b.X))
	h.mix(uint64(b.Y))
	h.mix(uint64(b.Z))
	h.mix(uint64(l.DynamicSharedBytes))
	h.mix(uint64(len(l.Params)))
	for _, p := range l.Params {
		h.mix(p)
	}
	return uint64(h)
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrUnknownJob reports a job ID the store has never seen.
var ErrUnknownJob = errors.New("unknown job")

// ErrJobCancelled is the cancellation cause installed when a client DELETEs
// a job; it distinguishes client cancellation from a deadline when both
// surface as context errors inside the run.
var ErrJobCancelled = errors.New("job cancelled by client")

// job is the store's mutable record. All fields after the immutable header
// are guarded by the store mutex; snapshots are taken under it.
type job struct {
	id          string
	req         *JobRequest
	submittedAt time.Time

	state       JobState
	attempt     int
	maxAttempts int
	err         error
	startedAt   time.Time
	finishedAt  time.Time

	// cancel aborts the running attempt with ErrJobCancelled as cause; nil
	// unless the job is running.
	cancel context.CancelCauseFunc
	// report is set exactly once, on success.
	report *Report
}

// Store is the in-memory job registry: submission order preserved, statuses
// snapshotted under a single mutex, safe for concurrent handlers/workers.
type Store struct {
	mu    sync.Mutex
	seq   int
	jobs  map[string]*job
	order []string
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{jobs: make(map[string]*job)}
}

// Add registers a new queued job and returns its ID.
func (st *Store) Add(req *JobRequest, maxAttempts int, now time.Time) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	id := fmt.Sprintf("job-%06d", st.seq)
	st.jobs[id] = &job{
		id:          id,
		req:         req,
		submittedAt: now,
		state:       StateQueued,
		maxAttempts: maxAttempts,
	}
	st.order = append(st.order, id)
	return id
}

// snapshot converts the record to its wire form. Caller holds st.mu.
func (j *job) snapshot() *JobStatus {
	s := &JobStatus{
		ID:          j.id,
		State:       j.state,
		Attempt:     j.attempt,
		MaxAttempts: j.maxAttempts,
		SubmittedAt: j.submittedAt,
		Request:     j.req,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		s.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		s.FinishedAt = &t
	}
	return s
}

// Status returns the wire status of one job.
func (st *Store) Status(id string) (*JobStatus, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.snapshot(), nil
}

// List returns every job's status in submission order.
func (st *Store) List() []*JobStatus {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*JobStatus, 0, len(st.order))
	for _, id := range st.order {
		out = append(out, st.jobs[id].snapshot())
	}
	return out
}

// Report returns the report of a succeeded job. ok is false when the job
// exists but has no report yet (not succeeded).
func (st *Store) Report(id string) (rep *Report, status *JobStatus, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j.report, j.snapshot(), nil
}

// Cancel moves a queued job straight to cancelled, or signals a running
// job's context with ErrJobCancelled (the worker then records the terminal
// state). Cancelling a terminal job is a no-op. Returns the post-cancel
// status.
func (st *Store) Cancel(id string, now time.Time) (*JobStatus, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.err = ErrJobCancelled
		j.finishedAt = now
	case StateRunning:
		if j.cancel != nil {
			j.cancel(ErrJobCancelled)
		}
	}
	return j.snapshot(), nil
}

// claim transitions a queued job to running for a new attempt; returns
// false when the job was cancelled while queued (or is otherwise not
// runnable), telling the worker to skip it.
func (st *Store) claim(id string, cancel context.CancelCauseFunc, now time.Time) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok || j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.attempt = 1
	j.startedAt = now
	j.cancel = cancel
	return true
}

// retrying bumps the attempt counter before a retry run.
func (st *Store) retrying(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if j, ok := st.jobs[id]; ok {
		j.attempt++
	}
}

// finish records the terminal state of a run. The worker decides the state
// (succeeded / failed / cancelled); rep is non-nil only for success.
func (st *Store) finish(id string, state JobState, rep *Report, err error, now time.Time) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return
	}
	j.state = state
	j.report = rep
	j.err = err
	j.finishedAt = now
	j.cancel = nil
}

// cancelQueued marks every still-queued job cancelled with cause — the
// drain path: workers skip them when their claim fails. Returns how many.
func (st *Store) cancelQueued(cause error, now time.Time) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, j := range st.jobs {
		if j.state == StateQueued {
			j.state = StateCancelled
			j.err = cause
			j.finishedAt = now
			n++
		}
	}
	return n
}

// cancelRunning signals every running job's context with cause — the drain
// deadline path. Returns how many were signalled.
func (st *Store) cancelRunning(cause error) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, j := range st.jobs {
		if j.state == StateRunning && j.cancel != nil {
			j.cancel(cause)
			n++
		}
	}
	return n
}

// counts returns the number of jobs per state, for metrics and drain logs.
func (st *Store) counts() map[JobState]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[JobState]int)
	for _, j := range st.jobs {
		out[j.state]++
	}
	return out
}

// ids returns all job IDs sorted, a test convenience.
func (st *Store) ids() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := append([]string(nil), st.order...)
	sort.Strings(out)
	return out
}

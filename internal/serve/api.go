// Package serve implements the profiling-as-a-service layer: versioned
// wire types, an in-memory job store, a bounded worker pool with
// deadline/cancellation propagation, bounded retries with exponential
// backoff, and a graceful-drain HTTP server. The package is transport and
// policy; the actual profiling work is injected as a Runner so serve never
// imports the root package (which re-exports these types).
package serve

import (
	"errors"
	"fmt"
	"time"

	"gputopdown/internal/core"
)

// APIVersion is the wire-format version every request and report carries.
// Breaking changes to the JSON schema bump this and mount a new route
// prefix; v1 fields are append-only.
const APIVersion = "v1"

// ErrBadRequest marks a request that failed validation. Test with
// errors.Is; the wrapping message says which field.
var ErrBadRequest = errors.New("bad request")

// JobRequest is the versioned submission body for POST /api/v1/jobs. The
// zero value of every optional field means "profiler default", so a minimal
// request is {"suite": "altis", "app": "gups"}.
type JobRequest struct {
	// APIVersion is optional on input ("" means current) but always set on
	// echo-back.
	APIVersion string `json:"api_version,omitempty"`

	// Suite and App select the workload (required).
	Suite string `json:"suite"`
	App   string `json:"app"`

	// GPU selects the simulated device by name; "" uses the daemon default.
	GPU string `json:"gpu,omitempty"`
	// Level is the Top-Down hierarchy depth 1..3; 0 uses the default.
	Level int `json:"level,omitempty"`
	// Mode is the counter collection mode ("smpc" or "hwpm"); "" default.
	Mode string `json:"mode,omitempty"`
	// RawEquations reports the paper's literal equations (8)-(14) instead
	// of the figure normalisation.
	RawEquations bool `json:"raw_equations,omitempty"`
	// SampleEvery profiles every n-th invocation of each kernel (paper
	// §VII); 0 profiles all.
	SampleEvery int `json:"sample_every,omitempty"`
	// ReplayWorkers bounds concurrent replay passes; 0 uses the default.
	ReplayWorkers int `json:"replay_workers,omitempty"`
	// SimWorkers is the intra-launch parallelism degree: workers one kernel
	// launch shards its SM simulation across. 0 uses the default (1,
	// sequential). Added in a backward-compatible v1 revision; absent on
	// old clients means sequential, and results are bit-identical at every
	// setting.
	SimWorkers int `json:"sim_workers,omitempty"`
	// ReplayCache and FastForward toggle those engines; nil keeps the
	// daemon default (tri-state so "false" is distinguishable from unset).
	ReplayCache *bool `json:"replay_cache,omitempty"`
	FastForward *bool `json:"fast_forward,omitempty"`

	// TimeoutMS is the per-job deadline in milliseconds from the moment
	// the job starts running (not queue time); 0 uses the daemon default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxAttempts caps runs of this job including the first; 0 uses the
	// daemon default, 1 disables retries.
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// Validate checks the request against schema v1. Every failure wraps
// ErrBadRequest.
func (r *JobRequest) Validate() error {
	if r.APIVersion != "" && r.APIVersion != APIVersion {
		return fmt.Errorf("%w: api_version %q unsupported (want %q)", ErrBadRequest, r.APIVersion, APIVersion)
	}
	if r.Suite == "" {
		return fmt.Errorf("%w: suite is required", ErrBadRequest)
	}
	if r.App == "" {
		return fmt.Errorf("%w: app is required", ErrBadRequest)
	}
	if r.Level < 0 || r.Level > 3 {
		return fmt.Errorf("%w: level %d outside 0..3", ErrBadRequest, r.Level)
	}
	switch r.Mode {
	case "", "smpc", "hwpm":
	default:
		return fmt.Errorf("%w: mode %q (want smpc or hwpm)", ErrBadRequest, r.Mode)
	}
	if r.SampleEvery < 0 {
		return fmt.Errorf("%w: sample_every %d negative", ErrBadRequest, r.SampleEvery)
	}
	if r.ReplayWorkers < 0 {
		return fmt.Errorf("%w: replay_workers %d negative", ErrBadRequest, r.ReplayWorkers)
	}
	if r.SimWorkers < 0 {
		return fmt.Errorf("%w: sim_workers %d negative", ErrBadRequest, r.SimWorkers)
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("%w: timeout_ms %d negative", ErrBadRequest, r.TimeoutMS)
	}
	if r.MaxAttempts < 0 {
		return fmt.Errorf("%w: max_attempts %d negative", ErrBadRequest, r.MaxAttempts)
	}
	return nil
}

// JobState is the lifecycle state of a job. Transitions are
// queued → running → {succeeded, failed, cancelled}, plus the short-circuit
// queued → cancelled for jobs deleted before a worker picks them up.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateSucceeded JobState = "succeeded"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	switch s {
	case StateSucceeded, StateFailed, StateCancelled:
		return true
	}
	return false
}

// JobStatus is the wire representation of a job's progress, returned by
// submit, status, and cancel endpoints.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Attempt is the number of runs started so far (1-based once running).
	Attempt     int    `json:"attempt"`
	MaxAttempts int    `json:"max_attempts"`
	Error       string `json:"error,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	Request *JobRequest `json:"request"`
}

// Analysis is the stable JSON form of one Top-Down breakdown, matching the
// schema of core.Analysis.JSON so daemon reports and direct library exports
// are interchangeable.
type Analysis struct {
	Kernel     string             `json:"kernel"`
	GPU        string             `json:"gpu"`
	CC         string             `json:"compute_capability"`
	Tool       string             `json:"tool"`
	Level      int                `json:"level"`
	Normalized bool               `json:"normalized"`
	IPCMax     float64            `json:"ipc_max"`
	Components []core.Row         `json:"components"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// KernelReport is one kernel invocation's slice of a Report.
type KernelReport struct {
	Kernel     string    `json:"kernel"`
	Invocation int       `json:"invocation"`
	Cycles     uint64    `json:"cycles"`
	Analysis   *Analysis `json:"analysis,omitempty"`
}

// KernelFailure records a kernel invocation that panicked and was isolated
// (the rest of the application completed without it).
type KernelFailure struct {
	Kernel string `json:"kernel"`
	Pass   int    `json:"pass"`
	Error  string `json:"error"`
}

// Report is the versioned profiling result for GET /api/v1/jobs/{id}/report.
// It carries everything AppResult does in wire-stable form; WallSeconds is
// the one field that varies between identical runs.
type Report struct {
	APIVersion     string          `json:"api_version"`
	App            string          `json:"app"`
	Suite          string          `json:"suite"`
	GPU            string          `json:"gpu"`
	Passes         int             `json:"passes"`
	NativeCycles   uint64          `json:"native_cycles"`
	ProfiledCycles uint64          `json:"profiled_cycles"`
	WallSeconds    float64         `json:"wall_seconds"`
	Kernels        []KernelReport  `json:"kernels"`
	Aggregate      *Analysis       `json:"aggregate,omitempty"`
	Failed         []KernelFailure `json:"failed,omitempty"`
}

// Canonical returns a copy of the report with WallSeconds zeroed — the one
// field that varies between identical runs. Everything else in the schema is
// deterministic, so canonical reports of identical runs are byte-identical
// when marshalled; the golden corpus (internal/check) stores this form. The
// receiver is not modified; nested kernels and analyses are shared read-only.
func (r *Report) Canonical() *Report {
	if r == nil {
		return nil
	}
	c := *r
	c.WallSeconds = 0
	return &c
}

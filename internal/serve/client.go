package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client talks to a gpuprofd daemon over its v1 HTTP API. The zero value
// is unusable; set Base (e.g. "http://127.0.0.1:8791"). HTTP defaults to
// http.DefaultClient.
type Client struct {
	Base string
	HTTP *http.Client
}

// ErrJobFailed reports a job that reached a terminal state other than
// succeeded while being waited on; the wrapping message carries the
// daemon-side error string.
var ErrJobFailed = errors.New("job did not succeed")

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues the request and decodes a JSON body into out (when non-nil).
// Non-2xx responses become errors carrying the server's "error" field.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("serve client: encode %s %s: %w", method, path, err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return fmt.Errorf("serve client: %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("serve client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return fmt.Errorf("serve client: %s %s: %s (HTTP %d)", method, path, msg, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serve client: decode %s %s: %w", method, path, err)
	}
	return nil
}

// Submit posts a job and returns its initial status.
func (c *Client) Submit(ctx context.Context, req *JobRequest) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, "/api/v1/jobs", req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches the current status of a job.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// List fetches every job's status in submission order.
func (c *Client) List(ctx context.Context) ([]*JobStatus, error) {
	var out struct {
		Jobs []*JobStatus `json:"jobs"`
	}
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Report fetches the report of a succeeded job (the server answers 409
// until then, which surfaces here as an error).
func (c *Client) Report(ctx context.Context, id string) (*Report, error) {
	var rep Report
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id+"/report", nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Cancel requests cancellation and returns the post-cancel status (the job
// may still be "running" briefly while the cancellation lands).
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodDelete, "/api/v1/jobs/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls every poll interval until the job reaches a terminal state or
// ctx expires. It returns the terminal status; a non-succeeded terminal
// state also returns an error wrapping ErrJobFailed.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			if st.State != StateSucceeded {
				return st, fmt.Errorf("serve client: job %s %s: %s: %w", id, st.State, st.Error, ErrJobFailed)
			}
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return st, fmt.Errorf("serve client: wait %s: %w", id, ctx.Err())
		}
	}
}

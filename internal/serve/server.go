package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"gputopdown/internal/obs"
)

// Runner executes one profiling job. The root package injects the real
// implementation (Profiler construction + ProfileApp + Report conversion);
// tests inject fakes. It must honour ctx: the daemon's deadline and
// cancellation guarantees are only as good as the runner's.
type Runner func(ctx context.Context, req *JobRequest) (*Report, error)

// ErrDraining reports a submission rejected because the server is shutting
// down; ErrQueueFull one rejected because the bounded queue is at capacity.
// Both map to HTTP 503.
var (
	ErrDraining  = errors.New("server draining")
	ErrQueueFull = errors.New("job queue full")
)

// Options configures a Server. Runner is required; everything else has a
// usable default.
type Options struct {
	Runner Runner
	// Workers is the worker-pool size (default 1): at most this many jobs
	// run concurrently, each internally fanning out replay passes.
	Workers int
	// QueueDepth bounds jobs waiting for a worker (default 64);
	// submissions beyond it get 503 rather than unbounded memory.
	QueueDepth int
	// DefaultTimeout applies to jobs that do not set timeout_ms; 0 means
	// no deadline.
	DefaultTimeout time.Duration
	// DefaultMaxAttempts applies to jobs that do not set max_attempts
	// (default 1: no retries unless asked).
	DefaultMaxAttempts int
	// Backoff schedules retry delays; zero value retries immediately.
	Backoff Backoff
	// Clock drives queue/run timing and backoff waits (default wall clock).
	Clock Clock
	// Registry receives job metrics when non-nil.
	Registry *obs.Registry
	// Logger logs job lifecycle (nil-safe).
	Logger *obs.Logger
	// Obs, when non-nil, is mounted at "/" so one port serves both the job
	// API and the observability endpoints (/healthz, /metrics, ...).
	Obs http.Handler
}

// Server is the profiling job daemon: HTTP API, store, and worker pool.
// Construct with New (which starts the workers), serve via Start or mount
// Handler, and stop with Drain.
type Server struct {
	opts  Options
	clock Clock
	log   *obs.Logger
	store *Store
	mux   *http.ServeMux

	qmu      sync.Mutex
	queue    chan string
	qclosed  bool
	draining bool

	wg sync.WaitGroup

	httpMu sync.Mutex
	srv    *http.Server
	ln     net.Listener
	done   chan struct{}

	mQueued    *obs.Gauge
	mRunning   *obs.Gauge
	mRetries   *obs.Counter
	mCompleted map[JobState]*obs.Counter
	mQueueLat  *obs.Histogram
	mRunLat    *obs.Histogram
}

// New builds the server and starts its worker pool. The pool idles on the
// queue until jobs arrive; call Drain to stop it.
func New(opts Options) (*Server, error) {
	if opts.Runner == nil {
		return nil, errors.New("serve: Options.Runner is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.DefaultMaxAttempts <= 0 {
		opts.DefaultMaxAttempts = 1
	}
	if opts.Clock == nil {
		opts.Clock = realClock{}
	}
	s := &Server{
		opts:  opts,
		clock: opts.Clock,
		log:   opts.Logger.Component("serve"),
		store: NewStore(),
		queue: make(chan string, opts.QueueDepth),
	}
	s.initMetrics(opts.Registry)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	if opts.Obs != nil {
		s.mux.Handle("/", opts.Obs)
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

func (s *Server) initMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.NewRegistry() // throwaway sink, keeps the hot path branch-free
	}
	s.mQueued = reg.Gauge("gpuprofd_jobs_queued", "Jobs waiting for a worker.", nil)
	s.mRunning = reg.Gauge("gpuprofd_jobs_running", "Jobs currently executing.", nil)
	s.mRetries = reg.Counter("gpuprofd_job_retries_total", "Job attempt re-runs after retryable failures.", nil)
	s.mCompleted = make(map[JobState]*obs.Counter)
	for _, st := range []JobState{StateSucceeded, StateFailed, StateCancelled} {
		s.mCompleted[st] = reg.Counter("gpuprofd_jobs_completed_total",
			"Jobs reaching a terminal state.", obs.Labels{"state": string(st)})
	}
	lat := []float64{0.001, 0.01, 0.1, 1, 10, 60, 600}
	s.mQueueLat = reg.Histogram("gpuprofd_job_queue_seconds", "Submission-to-start latency.", lat, nil)
	s.mRunLat = reg.Histogram("gpuprofd_job_run_seconds", "Start-to-terminal latency.", lat, nil)
}

// Store exposes the job store (read-mostly; tests and embedders).
func (s *Server) Store() *Store { return s.store }

// Handler returns the daemon's routing handler, independent of any
// listener — tests drive it through net/http/httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// Submit enqueues a job directly (the in-process path the HTTP handler
// shares). The request must already carry any defaults the caller wants;
// validation failures wrap ErrBadRequest.
func (s *Server) Submit(req *JobRequest) (*JobStatus, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.APIVersion == "" {
		req.APIVersion = APIVersion
	}
	maxAttempts := req.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = s.opts.DefaultMaxAttempts
	}

	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if len(s.queue) == cap(s.queue) {
		return nil, ErrQueueFull
	}
	id := s.store.Add(req, maxAttempts, s.clock.Now())
	s.queue <- id
	s.mQueued.Add(1)
	st, _ := s.store.Status(id)
	if s.log.On(obs.LevelInfo) {
		s.log.Info("job queued", "job", id, "suite", req.Suite, "app", req.App)
	}
	return st, nil
}

func (s *Server) worker() {
	defer s.wg.Done()
	for id := range s.queue {
		s.runJob(id)
	}
}

func (s *Server) runJob(id string) {
	status, err := s.store.Status(id)
	if err != nil {
		return
	}
	req := status.Request

	cctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	now := s.clock.Now()
	if !s.store.claim(id, cancel, now) {
		// Cancelled while queued (DELETE or drain) — nothing to run.
		s.mQueued.Add(-1)
		s.mCompleted[StateCancelled].Inc()
		return
	}
	s.mQueued.Add(-1)
	s.mQueueLat.Observe(now.Sub(status.SubmittedAt).Seconds())
	s.mRunning.Add(1)
	defer s.mRunning.Add(-1)

	timeout := s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	rctx := context.Context(cctx)
	if timeout > 0 {
		tctx, tcancel := context.WithTimeout(cctx, timeout)
		defer tcancel()
		rctx = tctx
	}

	start := s.clock.Now()
	rep, err := runWithRetry(rctx, status.MaxAttempts, s.opts.Backoff, s.clock,
		func(attempt int) (*Report, error) { return s.opts.Runner(rctx, req) },
		func(attempt int) {
			s.store.retrying(id)
			s.mRetries.Inc()
			if s.log.On(obs.LevelWarn) {
				s.log.Warn("job retrying", "job", id, "attempt", attempt)
			}
		})
	end := s.clock.Now()
	s.mRunLat.Observe(end.Sub(start).Seconds())

	state := StateSucceeded
	switch {
	case err == nil:
	case errors.Is(context.Cause(cctx), ErrJobCancelled), errors.Is(err, ErrJobCancelled):
		state = StateCancelled
	default:
		state = StateFailed
	}
	s.store.finish(id, state, rep, err, end)
	s.mCompleted[state].Inc()
	if s.log.On(obs.LevelInfo) {
		s.log.Info("job finished", "job", id, "state", string(state),
			"seconds", end.Sub(start).Seconds(), "err", fmt.Sprint(err))
	}
}

// Start listens on addr ("host:0" picks a free port; see Addr) and serves
// the handler until Drain.
func (s *Server) Start(addr string) error {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.srv != nil {
		return fmt.Errorf("serve: server already started on %s", s.ln.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	s.done = make(chan struct{})
	go func(srv *http.Server, done chan struct{}) {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.log.Warn("serve loop exited", "err", err)
		}
		close(done)
	}(s.srv, s.done)
	if s.log.On(obs.LevelInfo) {
		s.log.Info("daemon listening", "addr", ln.Addr().String())
	}
	return nil
}

// Addr returns the bound listen address, or "" before Start.
func (s *Server) Addr() string {
	s.httpMu.Lock()
	defer s.httpMu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Drain performs graceful shutdown: new submissions are rejected with 503,
// still-queued jobs are cancelled, running jobs are given until ctx
// expires to finish (then their contexts are cancelled and they are
// awaited), and finally the HTTP listener (if started) is shut down. Safe
// to call once; the worker pool is gone afterwards.
func (s *Server) Drain(ctx context.Context) error {
	s.qmu.Lock()
	already := s.draining
	s.draining = true
	if !s.qclosed {
		s.qclosed = true
		close(s.queue)
	}
	s.qmu.Unlock()
	if already {
		return errors.New("serve: Drain called twice")
	}
	if n := s.store.cancelQueued(ErrDraining, s.clock.Now()); n > 0 && s.log.On(obs.LevelInfo) {
		s.log.Info("drain: cancelled queued jobs", "n", n)
	}

	idle := make(chan struct{})
	go func() { s.wg.Wait(); close(idle) }()
	select {
	case <-idle:
	case <-ctx.Done():
		n := s.store.cancelRunning(fmt.Errorf("drain deadline: %w", context.Cause(ctx)))
		if s.log.On(obs.LevelWarn) {
			s.log.Warn("drain deadline hit, cancelling running jobs", "n", n)
		}
		<-idle // cancellation lands within a pass; workers exit promptly
	}

	s.httpMu.Lock()
	srv, done := s.srv, s.done
	s.srv, s.ln, s.done = nil, nil, nil
	s.httpMu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Shutdown(context.Background())
	<-done
	if s.log.On(obs.LevelInfo) {
		s.log.Info("daemon drained")
	}
	return err
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone is the only failure
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	st, err := s.Submit(&req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, st)
	case errors.Is(err, ErrBadRequest):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, ErrDraining), errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.store.List()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.store.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep, st, err := s.store.Report(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if rep == nil {
		// Exists but not succeeded (yet): the status explains why.
		writeJSON(w, http.StatusConflict, st)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.store.Cancel(r.PathValue("id"), s.clock.Now())
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

// fakeClock delivers After immediately while recording the requested
// waits, so backoff tests are deterministic and take zero wall time.
type fakeClock struct {
	mu    sync.Mutex
	now   time.Time
	waits []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	c.waits = append(c.waits, d)
	c.now = c.now.Add(d)
	now := c.now
	c.mu.Unlock()
	ch := make(chan time.Time, 1)
	ch <- now
	return ch
}

func (c *fakeClock) recorded() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.waits...)
}

func testReport(req *JobRequest) *Report {
	return &Report{
		APIVersion:     APIVersion,
		App:            req.App,
		Suite:          req.Suite,
		GPU:            "TEST GPU",
		Passes:         3,
		NativeCycles:   1000,
		ProfiledCycles: 3000,
		Kernels:        []KernelReport{{Kernel: "k", Invocation: 0, Cycles: 1000}},
	}
}

func okRunner(ctx context.Context, req *JobRequest) (*Report, error) {
	return testReport(req), nil
}

func request() *JobRequest { return &JobRequest{Suite: "altis", App: "gups"} }

func mustServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Runner == nil {
		opts.Runner = okRunner
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Drain(ctx) //nolint:errcheck // second Drain in tests that drained already
	})
	return s
}

// TestSubmitPollReport drives the full happy path over real HTTP:
// submit → wait → report, and checks the terminal status metadata.
func TestSubmitPollReport(t *testing.T) {
	s := mustServer(t, Options{Workers: 2})
	h := httptest.NewServer(s.Handler())
	defer h.Close()
	c := &Client{Base: h.URL}
	ctx := context.Background()

	st, err := c.Submit(ctx, request())
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Request.APIVersion != APIVersion {
		t.Fatalf("submit status %+v lacks id or echoed api_version", st)
	}

	st, err = c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateSucceeded || st.Attempt != 1 || st.StartedAt == nil || st.FinishedAt == nil {
		t.Fatalf("terminal status %+v, want succeeded attempt 1 with timestamps", st)
	}

	rep, err := c.Report(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, testReport(request())) {
		t.Errorf("report round-trip mismatch:\ngot  %+v\nwant %+v", rep, testReport(request()))
	}

	if _, err := c.Report(ctx, "job-999999"); err == nil {
		t.Error("report of unknown job did not error")
	}
	if _, err := c.Status(ctx, "job-999999"); err == nil {
		t.Error("status of unknown job did not error")
	}
}

// TestSubmitValidation: schema violations come back as 400/ErrBadRequest
// without ever reaching the queue.
func TestSubmitValidation(t *testing.T) {
	s := mustServer(t, Options{})
	cases := []*JobRequest{
		{},                                       // no suite
		{Suite: "altis"},                         // no app
		{Suite: "a", App: "b", Level: 9},         // level out of range
		{Suite: "a", App: "b", Mode: "wrong"},    // bad mode
		{Suite: "a", App: "b", TimeoutMS: -1},    // negative timeout
		{Suite: "a", App: "b", SimWorkers: -1},   // negative sim workers
		{Suite: "a", App: "b", APIVersion: "v2"}, // future version
	}
	for i, req := range cases {
		if _, err := s.Submit(req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("case %d: Submit(%+v) = %v, want ErrBadRequest", i, req, err)
		}
	}
	if len(s.Store().List()) != 0 {
		t.Error("invalid submissions reached the store")
	}
}

// TestCancelRunning: DELETE on a running job lands within the 2s budget
// and records the cancelled state with ErrJobCancelled as cause.
func TestCancelRunning(t *testing.T) {
	started := make(chan struct{})
	s := mustServer(t, Options{
		Runner: func(ctx context.Context, req *JobRequest) (*Report, error) {
			close(started)
			<-ctx.Done()
			return nil, context.Cause(ctx)
		},
	})
	st, err := s.Submit(request())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Store().Cancel(st.ID, time.Now()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		cur, _ := s.Store().Status(st.ID)
		if cur.State.Terminal() {
			if cur.State != StateCancelled {
				t.Fatalf("cancelled job ended %s (%s), want cancelled", cur.State, cur.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s 2s after cancel", cur.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCancelQueued: a job deleted before any worker claims it goes
// straight to cancelled and is skipped by the pool.
func TestCancelQueued(t *testing.T) {
	gate := make(chan struct{})
	ran := make(chan string, 8)
	s := mustServer(t, Options{
		Workers: 1,
		Runner: func(ctx context.Context, req *JobRequest) (*Report, error) {
			ran <- req.App
			<-gate
			return testReport(req), nil
		},
	})
	first, err := s.Submit(request())
	if err != nil {
		t.Fatal(err)
	}
	<-ran // worker is now blocked inside job 1
	second, err := s.Submit(&JobRequest{Suite: "altis", App: "fft"})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Store().Cancel(second.ID, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("queued job after cancel = %s, want cancelled immediately", st.State)
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Store().Status(first.ID); got.State != StateSucceeded {
		t.Errorf("first job = %s, want succeeded", got.State)
	}
	select {
	case app := <-ran:
		t.Errorf("cancelled queued job %s still ran", app)
	default:
	}
}

// TestDeadline: a per-job timeout_ms fails the job with
// context.DeadlineExceeded, not cancelled.
func TestDeadline(t *testing.T) {
	s := mustServer(t, Options{
		Runner: func(ctx context.Context, req *JobRequest) (*Report, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	st, err := s.Submit(&JobRequest{Suite: "altis", App: "gups", TimeoutMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		cur, _ := s.Store().Status(st.ID)
		if cur.State.Terminal() {
			if cur.State != StateFailed {
				t.Fatalf("timed-out job = %s, want failed", cur.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timed-out job did not terminate")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRetryBackoffDeterministic: with a fake clock and a fixed jitter
// source, the retry schedule is exactly reproducible and the job succeeds
// on its final allowed attempt.
func TestRetryBackoffDeterministic(t *testing.T) {
	clock := newFakeClock()
	var calls int
	var mu sync.Mutex
	jitter := []float64{0.5, 1.0 - 1e-9}
	ji := 0
	s := mustServer(t, Options{
		Clock: clock,
		Backoff: Backoff{
			Base: 100 * time.Millisecond, Factor: 2, Max: time.Second,
			Jitter: 0.5,
			Rand: func() float64 {
				v := jitter[ji%len(jitter)]
				ji++
				return v
			},
		},
		Runner: func(ctx context.Context, req *JobRequest) (*Report, error) {
			mu.Lock()
			calls++
			n := calls
			mu.Unlock()
			if n < 3 {
				return nil, fmt.Errorf("transient failure %d", n)
			}
			return testReport(req), nil
		},
	})
	st, err := s.Submit(&JobRequest{Suite: "altis", App: "gups", MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, _ := s.Store().Status(st.ID)
		if cur.State.Terminal() {
			if cur.State != StateSucceeded || cur.Attempt != 3 {
				t.Fatalf("retried job = %s attempt %d (%s), want succeeded on attempt 3",
					cur.State, cur.Attempt, cur.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retried job did not terminate")
		}
		time.Sleep(time.Millisecond)
	}
	// delay(1) = 100ms + 0.5·0.5·100ms = 125ms; delay(2) = 200ms + ~0.5·200ms.
	want := []time.Duration{125 * time.Millisecond, 300*time.Millisecond - 1}
	got := clock.recorded()
	if len(got) != len(want) {
		t.Fatalf("recorded waits %v, want %d waits", got, len(want))
	}
	for i := range want {
		if d := got[i] - want[i]; d < -time.Microsecond || d > time.Microsecond {
			t.Errorf("wait %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestRetryPermanent: a MarkPermanent failure stops after one attempt and
// the original sentinel still unwraps through attempt wrapper + Join.
func TestRetryPermanent(t *testing.T) {
	sentinel := errors.New("no such app")
	var calls int
	var mu sync.Mutex
	s := mustServer(t, Options{
		Clock: newFakeClock(),
		Runner: func(ctx context.Context, req *JobRequest) (*Report, error) {
			mu.Lock()
			calls++
			mu.Unlock()
			return nil, MarkPermanent(fmt.Errorf("lookup %s: %w", req.App, sentinel))
		},
	})
	st, err := s.Submit(&JobRequest{Suite: "altis", App: "nope", MaxAttempts: 5})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, _ := s.Store().Status(st.ID)
		if cur.State.Terminal() {
			if cur.State != StateFailed || cur.Attempt != 1 {
				t.Fatalf("permanent failure = %s attempt %d, want failed attempt 1", cur.State, cur.Attempt)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not terminate")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Errorf("permanent failure ran %d times, want 1", calls)
	}
}

// TestRunWithRetryUnwrap: the joined multi-attempt error keeps errors.Is /
// errors.As working for the per-attempt causes.
func TestRunWithRetryUnwrap(t *testing.T) {
	sentinel := errors.New("backend blew up")
	clock := newFakeClock()
	_, err := runWithRetry(context.Background(), 3, Backoff{}, clock,
		func(attempt int) (*Report, error) {
			return nil, fmt.Errorf("run %d: %w", attempt, sentinel)
		}, nil)
	if err == nil {
		t.Fatal("exhausted retries returned nil error")
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("errors.Is through join+wrap lost the sentinel: %v", err)
	}
}

// TestQueueFull: submissions beyond QueueDepth are rejected, not queued
// unbounded.
func TestQueueFull(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	s := mustServer(t, Options{
		Workers:    1,
		QueueDepth: 1,
		Runner: func(ctx context.Context, req *JobRequest) (*Report, error) {
			<-gate
			return testReport(req), nil
		},
	})
	// Worker takes the first; the single queue slot holds the second; the
	// third must bounce. Submitting the first may race the worker pickup,
	// so allow a brief settle.
	if _, err := s.Submit(request()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if _, err := s.Submit(request()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(request()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit = %v, want ErrQueueFull", err)
	}
}

// TestDrainGraceful: Drain lets the running job finish, cancels queued
// jobs, rejects new submissions, and leaks no goroutines.
func TestDrainGraceful(t *testing.T) {
	before := runtime.NumGoroutine()
	gate := make(chan struct{})
	started := make(chan struct{})
	s, err := New(Options{
		Workers: 1,
		Runner: func(ctx context.Context, req *JobRequest) (*Report, error) {
			select {
			case <-started:
			default:
				close(started)
			}
			<-gate
			return testReport(req), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c := &Client{Base: "http://" + s.Addr()}
	ctx := context.Background()

	running, err := c.Submit(ctx, request())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := c.Submit(ctx, &JobRequest{Suite: "altis", App: "fft"})
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(dctx)
	}()
	time.Sleep(20 * time.Millisecond) // let Drain gate submissions
	select {
	case err := <-drained:
		t.Fatalf("Drain returned (%v) while a job was still running", err)
	default:
	}
	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}

	if got, _ := s.Store().Status(running.ID); got.State != StateSucceeded {
		t.Errorf("running job after drain = %s, want succeeded", got.State)
	}
	if got, _ := s.Store().Status(queued.ID); got.State != StateCancelled {
		t.Errorf("queued job after drain = %s, want cancelled", got.State)
	}
	if _, err := s.Submit(request()); !errors.Is(err, ErrDraining) {
		t.Errorf("submit after drain = %v, want ErrDraining", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d > %d before test: drain leaked", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDrainDeadline: when running jobs outlive the drain context, their
// contexts are cancelled and Drain still returns with the pool stopped.
func TestDrainDeadline(t *testing.T) {
	s, err := New(Options{
		Runner: func(ctx context.Context, req *JobRequest) (*Report, error) {
			<-ctx.Done()
			return nil, context.Cause(ctx)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(request())
	if err != nil {
		t.Fatal(err)
	}
	waitRunning := time.Now().Add(2 * time.Second)
	for {
		cur, _ := s.Store().Status(st.ID)
		if cur.State == StateRunning {
			break
		}
		if time.Now().After(waitRunning) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	dctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("Drain after deadline: %v", err)
	}
	cur, _ := s.Store().Status(st.ID)
	if !cur.State.Terminal() {
		t.Errorf("job after deadline drain = %s, want terminal", cur.State)
	}
}

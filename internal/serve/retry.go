package serve

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Clock abstracts time for the retry machinery so tests drive backoff with
// a fake clock and zero wall-time.
type Clock interface {
	Now() time.Time
	// After behaves like time.After. Implementations must deliver on a
	// buffered channel so an abandoned wait (context won the select) does
	// not leak a goroutine.
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// ErrPermanent marks an error that must not be retried regardless of
// attempts remaining — wrong app name, invalid request, a deterministic
// simulator failure that would reproduce bit-identically. Wrap with
// MarkPermanent; the retry loop tests errors.Is(err, ErrPermanent).
var ErrPermanent = errors.New("permanent failure")

// MarkPermanent wraps err so Retryable reports false while errors.Is /
// errors.As still reach the original chain (the %w is on err itself, so
// errors.Is(marked, ErrUnknownApp) keeps working).
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }

// Unwrap exposes both the marker and the cause, so errors.Is finds either.
func (e *permanentError) Unwrap() []error { return []error{ErrPermanent, e.err} }

// Retryable reports whether a run failure is worth another attempt:
// context cancellation/deadline and permanent-marked errors are not, all
// other errors are.
func Retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	case errors.Is(err, ErrPermanent):
		return false
	}
	return true
}

// Backoff computes retry delays: Base·Factor^(attempt-1) capped at Max,
// plus up to Jitter fraction of the computed delay drawn from Rand. The
// zero value means "no waiting" (all delays zero) — useful in tests.
type Backoff struct {
	Base   time.Duration
	Factor float64
	Max    time.Duration
	// Jitter in [0,1) adds Rand()·Jitter·delay on top. Rand defaults to a
	// constant 0 (no jitter) so behaviour is deterministic unless a source
	// is supplied.
	Jitter float64
	Rand   func() float64
}

// DefaultBackoff is the daemon's retry schedule: 250ms·2^n capped at 10s,
// ±20% jitter.
func DefaultBackoff(rand func() float64) Backoff {
	return Backoff{Base: 250 * time.Millisecond, Factor: 2, Max: 10 * time.Second, Jitter: 0.2, Rand: rand}
}

// Delay returns the wait before retry number attempt (attempt 1 = delay
// before the second run).
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 || attempt <= 0 {
		return 0
	}
	d := float64(b.Base)
	for i := 1; i < attempt; i++ {
		d *= b.Factor
		if b.Max > 0 && d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Max > 0 && d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 && b.Rand != nil {
		d += b.Rand() * b.Jitter * d
	}
	return time.Duration(d)
}

// runWithRetry executes run up to maxAttempts times, sleeping
// backoff.Delay between failed attempts via clock (or returning early when
// ctx is done). onRetry is invoked before each re-run with the upcoming
// attempt number (2-based). The returned error joins every attempt's
// failure so errors.Is / errors.As unwrap through the whole history.
func runWithRetry(ctx context.Context, maxAttempts int, backoff Backoff, clock Clock,
	run func(attempt int) (*Report, error), onRetry func(attempt int)) (*Report, error) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var attempts []error
	for attempt := 1; ; attempt++ {
		rep, err := run(attempt)
		if err == nil {
			return rep, nil
		}
		attempts = append(attempts, fmt.Errorf("attempt %d: %w", attempt, err))
		if attempt >= maxAttempts || !Retryable(err) {
			return nil, errors.Join(attempts...)
		}
		select {
		case <-clock.After(backoff.Delay(attempt)):
		case <-ctx.Done():
			attempts = append(attempts, fmt.Errorf("retry wait: %w", context.Cause(ctx)))
			return nil, errors.Join(attempts...)
		}
		if onRetry != nil {
			onRetry(attempt + 1)
		}
	}
}

// Package isa defines the miniature SASS-like instruction set executed by the
// GPU simulator. It models the operation repertoire of an NVIDIA Streaming
// Multiprocessor at the granularity the Top-Down methodology cares about:
// which execution pipe an instruction occupies, whether it touches memory and
// in which address space, whether it carries control flow, and how its
// operands are encoded.
//
// The package is purely declarative: opcode metadata, register names and the
// instruction container. Functional semantics live in internal/sm (the
// interpreter) and timing lives in internal/gpu (per-architecture latencies).
package isa

import "fmt"

// Reg identifies a general-purpose register operand. Each thread of a warp
// has a private copy of every register. RZ is the hardwired zero register:
// it reads as zero and discards writes, exactly as on real NVIDIA hardware.
type Reg uint16

// Register file bounds. MaxRegs is the per-thread architectural register
// count; kernels declare how many they actually use, which constrains
// occupancy (registers per SM are finite).
const (
	MaxRegs = 255
	// RZ is the zero register.
	RZ Reg = 255
)

// R returns the n-th general purpose register. It panics if n is out of
// range, which turns kernel-authoring typos into immediate failures.
func R(n int) Reg {
	if n < 0 || n >= MaxRegs {
		panic(fmt.Sprintf("isa: register R%d out of range [0,%d)", n, MaxRegs))
	}
	return Reg(n)
}

// String implements fmt.Stringer for registers.
func (r Reg) String() string {
	if r == RZ {
		return "RZ"
	}
	return fmt.Sprintf("R%d", uint16(r))
}

// PredReg identifies a predicate register. P0..P6 are writable; PT is the
// constant-true predicate used for unpredicated execution. PT is deliberately
// the zero value so a zero Instr is unpredicated.
type PredReg uint8

// Predicate registers.
const (
	// PT always reads true.
	PT PredReg = iota
	P0
	P1
	P2
	P3
	P4
	P5
	P6
	// NumPreds is the count of writable predicate registers.
	NumPreds = 7
)

// String implements fmt.Stringer for predicate registers.
func (p PredReg) String() string {
	if p == PT {
		return "PT"
	}
	return fmt.Sprintf("P%d", uint8(p)-1)
}

// SpecialReg enumerates the read-only special registers exposed through S2R,
// mirroring the CUDA built-ins (threadIdx, blockIdx, blockDim, gridDim,
// laneid, warpid and the SM clock).
type SpecialReg uint8

// Special registers readable via S2R.
const (
	SRTidX SpecialReg = iota
	SRTidY
	SRTidZ
	SRCtaIDX
	SRCtaIDY
	SRCtaIDZ
	SRNTidX
	SRNTidY
	SRNTidZ
	SRNCtaIDX
	SRNCtaIDY
	SRNCtaIDZ
	SRLaneID
	SRWarpID
	SRClockLo
	numSpecialRegs
)

var specialRegNames = [...]string{
	"SR_TID.X", "SR_TID.Y", "SR_TID.Z",
	"SR_CTAID.X", "SR_CTAID.Y", "SR_CTAID.Z",
	"SR_NTID.X", "SR_NTID.Y", "SR_NTID.Z",
	"SR_NCTAID.X", "SR_NCTAID.Y", "SR_NCTAID.Z",
	"SR_LANEID", "SR_WARPID", "SR_CLOCKLO",
}

// String implements fmt.Stringer for special registers.
func (s SpecialReg) String() string {
	if int(s) < len(specialRegNames) {
		return specialRegNames[s]
	}
	return fmt.Sprintf("SR_%d", uint8(s))
}

// Pipe identifies the execution pipe (functional-unit class) an instruction
// is dispatched to. Each SM subpartition owns one instance of each pipe with
// an architecture-specific lane width; an instruction occupies its pipe for
// warpSize/lanes cycles (the initiation interval).
type Pipe uint8

// Execution pipes.
const (
	// PipeALU executes integer and logic operations.
	PipeALU Pipe = iota
	// PipeFMA executes single-precision floating-point operations.
	PipeFMA
	// PipeFP64 executes double-precision floating-point operations.
	PipeFP64
	// PipeSFU executes transcendental operations (MUFU.*).
	PipeSFU
	// PipeLSU issues global/local memory operations into the LG queue.
	PipeLSU
	// PipeMIO issues shared-memory and other MIO-class operations.
	PipeMIO
	// PipeTEX issues texture operations.
	PipeTEX
	// PipeCBU is the control/branch/barrier unit.
	PipeCBU
	// NumPipes is the number of distinct execution pipes.
	NumPipes = 8
)

var pipeNames = [...]string{"ALU", "FMA", "FP64", "SFU", "LSU", "MIO", "TEX", "CBU"}

// String implements fmt.Stringer for pipes.
func (p Pipe) String() string {
	if int(p) < len(pipeNames) {
		return pipeNames[p]
	}
	return fmt.Sprintf("PIPE_%d", uint8(p))
}

// Space identifies a memory address space.
type Space uint8

// Memory spaces.
const (
	SpaceNone Space = iota
	// SpaceGlobal is device memory, cached in L1 and L2.
	SpaceGlobal
	// SpaceShared is per-SM scratchpad memory with 32 banks.
	SpaceShared
	// SpaceLocal is per-thread spill space (global memory, always coalesced
	// by the compiler's interleaving).
	SpaceLocal
	// SpaceConstant is the read-only constant bank cached by the IMC.
	SpaceConstant
	// SpaceTexture is the texture path through L1TEX.
	SpaceTexture
)

var spaceNames = [...]string{"", "GLOBAL", "SHARED", "LOCAL", "CONST", "TEX"}

// String implements fmt.Stringer for spaces.
func (s Space) String() string {
	if int(s) < len(spaceNames) {
		return spaceNames[s]
	}
	return fmt.Sprintf("SPACE_%d", uint8(s))
}

// CmpOp is the comparison operator of ISETP/FSETP/DSETP.
type CmpOp uint8

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

var cmpNames = [...]string{"EQ", "NE", "LT", "LE", "GT", "GE"}

// String implements fmt.Stringer for comparison operators.
func (c CmpOp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("CMP_%d", uint8(c))
}

// MufuFunc selects the transcendental computed by MUFU on the SFU pipe.
type MufuFunc uint8

// MUFU functions.
const (
	MufuRCP MufuFunc = iota
	MufuRSQ
	MufuSQRT
	MufuSIN
	MufuCOS
	MufuLG2
	MufuEX2
)

var mufuNames = [...]string{"RCP", "RSQ", "SQRT", "SIN", "COS", "LG2", "EX2"}

// String implements fmt.Stringer for MUFU functions.
func (m MufuFunc) String() string {
	if int(m) < len(mufuNames) {
		return mufuNames[m]
	}
	return fmt.Sprintf("MUFU_%d", uint8(m))
}

// AtomOp selects the read-modify-write performed by ATOM/RED.
type AtomOp uint8

// Atomic operations.
const (
	AtomAdd AtomOp = iota
	AtomMin
	AtomMax
	AtomExch
	AtomAnd
	AtomOr
	AtomCAS
)

var atomNames = [...]string{"ADD", "MIN", "MAX", "EXCH", "AND", "OR", "CAS"}

// String implements fmt.Stringer for atomic operations.
func (a AtomOp) String() string {
	if int(a) < len(atomNames) {
		return atomNames[a]
	}
	return fmt.Sprintf("ATOM_%d", uint8(a))
}

// Op is an opcode of the mini ISA.
type Op uint8

// Opcodes. The set covers the instruction classes that matter for Top-Down
// attribution: every execution pipe, every memory space, divergent control
// flow, synchronization, warp communication and atomics.
const (
	OpNOP Op = iota

	// Integer pipe.
	OpIADD  // Dst = Src0 + Src1 (+Imm)
	OpISUB  // Dst = Src0 - Src1
	OpIMUL  // Dst = Src0 * Src1
	OpIMAD  // Dst = Src0*Src1 + Src2
	OpISHL  // Dst = Src0 << (Src1+Imm)
	OpISHR  // Dst = Src0 >> (Src1+Imm) (arithmetic)
	OpIAND  // Dst = Src0 & Src1
	OpIOR   // Dst = Src0 | Src1
	OpIXOR  // Dst = Src0 ^ Src1
	OpIMIN  // Dst = min(Src0, Src1)
	OpIMAX  // Dst = max(Src0, Src1)
	OpPOPC  // Dst = popcount(Src0)
	OpISETP // PDst = Src0 <Cmp> Src1

	// FP32 pipe.
	OpFADD  // float32 add
	OpFMUL  // float32 mul
	OpFFMA  // float32 fused multiply-add
	OpFMIN  // float32 min
	OpFMAX  // float32 max
	OpFSETP // float32 compare into predicate
	OpI2F   // int64 -> float32
	OpF2I   // float32 -> int64 (truncating)

	// FP64 pipe.
	OpDADD  // float64 add
	OpDMUL  // float64 mul
	OpDFMA  // float64 fused multiply-add
	OpDSETP // float64 compare into predicate

	// SFU pipe.
	OpMUFU // transcendental, selected by Mufu field

	// Data movement.
	OpMOV   // Dst = Src0 (or Imm when Src0 == RZ)
	OpMOV32 // Dst = Imm
	OpSEL   // Dst = Pred? Src0 : Src1 (selector in PSrc)
	OpS2R   // Dst = special register

	// Warp communication (MIO-class on real hardware).
	OpSHFL // Dst = register of lane (laneid ^ Imm) — butterfly shuffle
	OpVOTE // Dst = ballot mask of predicate PSrc across the warp

	// Memory.
	OpLDG  // load from global:  Dst = [Src0 + Imm]
	OpSTG  // store to global:   [Src0 + Imm] = Src1
	OpLDS  // load from shared
	OpSTS  // store to shared
	OpLDL  // load from local
	OpSTL  // store to local
	OpLDC  // load from constant bank (through IMC)
	OpTEX  // texture fetch
	OpATOM // atomic RMW on global, returns old value in Dst
	OpRED  // reduction (atomic without return)

	// Control flow and synchronization.
	OpBRA       // predicated branch to Target, reconverging at Recon
	OpEXIT      // thread exit
	OpBAR       // CTA-wide barrier (__syncthreads)
	OpMEMBAR    // memory barrier
	OpNANOSLEEP // put warp to sleep for Imm cycles

	numOps
)

// OpInfo is static metadata for an opcode.
type OpInfo struct {
	Name     string
	Pipe     Pipe
	Space    Space // memory space, SpaceNone for non-memory ops
	IsLoad   bool
	IsStore  bool
	IsAtomic bool
	// WritesDst reports whether the op produces a GPR result.
	WritesDst bool
	// WritesPred reports whether the op produces a predicate result.
	WritesPred bool
	// IsBranch, IsBarrier, IsExit flag control-flow classes.
	IsBranch  bool
	IsBarrier bool
	IsExit    bool
	// NumSrcs is how many GPR sources the op reads.
	NumSrcs int
}

var opInfos = [numOps]OpInfo{
	OpNOP: {Name: "NOP", Pipe: PipeALU},

	OpIADD:  {Name: "IADD", Pipe: PipeALU, WritesDst: true, NumSrcs: 2},
	OpISUB:  {Name: "ISUB", Pipe: PipeALU, WritesDst: true, NumSrcs: 2},
	OpIMUL:  {Name: "IMUL", Pipe: PipeALU, WritesDst: true, NumSrcs: 2},
	OpIMAD:  {Name: "IMAD", Pipe: PipeALU, WritesDst: true, NumSrcs: 3},
	OpISHL:  {Name: "ISHL", Pipe: PipeALU, WritesDst: true, NumSrcs: 2},
	OpISHR:  {Name: "ISHR", Pipe: PipeALU, WritesDst: true, NumSrcs: 2},
	OpIAND:  {Name: "IAND", Pipe: PipeALU, WritesDst: true, NumSrcs: 2},
	OpIOR:   {Name: "IOR", Pipe: PipeALU, WritesDst: true, NumSrcs: 2},
	OpIXOR:  {Name: "IXOR", Pipe: PipeALU, WritesDst: true, NumSrcs: 2},
	OpIMIN:  {Name: "IMIN", Pipe: PipeALU, WritesDst: true, NumSrcs: 2},
	OpIMAX:  {Name: "IMAX", Pipe: PipeALU, WritesDst: true, NumSrcs: 2},
	OpPOPC:  {Name: "POPC", Pipe: PipeALU, WritesDst: true, NumSrcs: 1},
	OpISETP: {Name: "ISETP", Pipe: PipeALU, WritesPred: true, NumSrcs: 2},

	OpFADD:  {Name: "FADD", Pipe: PipeFMA, WritesDst: true, NumSrcs: 2},
	OpFMUL:  {Name: "FMUL", Pipe: PipeFMA, WritesDst: true, NumSrcs: 2},
	OpFFMA:  {Name: "FFMA", Pipe: PipeFMA, WritesDst: true, NumSrcs: 3},
	OpFMIN:  {Name: "FMIN", Pipe: PipeFMA, WritesDst: true, NumSrcs: 2},
	OpFMAX:  {Name: "FMAX", Pipe: PipeFMA, WritesDst: true, NumSrcs: 2},
	OpFSETP: {Name: "FSETP", Pipe: PipeFMA, WritesPred: true, NumSrcs: 2},
	OpI2F:   {Name: "I2F", Pipe: PipeFMA, WritesDst: true, NumSrcs: 1},
	OpF2I:   {Name: "F2I", Pipe: PipeFMA, WritesDst: true, NumSrcs: 1},

	OpDADD:  {Name: "DADD", Pipe: PipeFP64, WritesDst: true, NumSrcs: 2},
	OpDMUL:  {Name: "DMUL", Pipe: PipeFP64, WritesDst: true, NumSrcs: 2},
	OpDFMA:  {Name: "DFMA", Pipe: PipeFP64, WritesDst: true, NumSrcs: 3},
	OpDSETP: {Name: "DSETP", Pipe: PipeFP64, WritesPred: true, NumSrcs: 2},

	OpMUFU: {Name: "MUFU", Pipe: PipeSFU, WritesDst: true, NumSrcs: 1},

	OpMOV:   {Name: "MOV", Pipe: PipeALU, WritesDst: true, NumSrcs: 1},
	OpMOV32: {Name: "MOV32I", Pipe: PipeALU, WritesDst: true},
	OpSEL:   {Name: "SEL", Pipe: PipeALU, WritesDst: true, NumSrcs: 2},
	OpS2R:   {Name: "S2R", Pipe: PipeALU, WritesDst: true},

	OpSHFL: {Name: "SHFL", Pipe: PipeMIO, WritesDst: true, NumSrcs: 1},
	OpVOTE: {Name: "VOTE.BALLOT", Pipe: PipeALU, WritesDst: true},

	OpLDG:  {Name: "LDG", Pipe: PipeLSU, Space: SpaceGlobal, IsLoad: true, WritesDst: true, NumSrcs: 1},
	OpSTG:  {Name: "STG", Pipe: PipeLSU, Space: SpaceGlobal, IsStore: true, NumSrcs: 2},
	OpLDS:  {Name: "LDS", Pipe: PipeMIO, Space: SpaceShared, IsLoad: true, WritesDst: true, NumSrcs: 1},
	OpSTS:  {Name: "STS", Pipe: PipeMIO, Space: SpaceShared, IsStore: true, NumSrcs: 2},
	OpLDL:  {Name: "LDL", Pipe: PipeLSU, Space: SpaceLocal, IsLoad: true, WritesDst: true, NumSrcs: 1},
	OpSTL:  {Name: "STL", Pipe: PipeLSU, Space: SpaceLocal, IsStore: true, NumSrcs: 2},
	OpLDC:  {Name: "LDC", Pipe: PipeLSU, Space: SpaceConstant, IsLoad: true, WritesDst: true, NumSrcs: 1},
	OpTEX:  {Name: "TEX", Pipe: PipeTEX, Space: SpaceTexture, IsLoad: true, WritesDst: true, NumSrcs: 1},
	OpATOM: {Name: "ATOM", Pipe: PipeLSU, Space: SpaceGlobal, IsAtomic: true, IsLoad: true, IsStore: true, WritesDst: true, NumSrcs: 3},
	OpRED:  {Name: "RED", Pipe: PipeLSU, Space: SpaceGlobal, IsAtomic: true, IsStore: true, NumSrcs: 2},

	OpBRA:       {Name: "BRA", Pipe: PipeCBU, IsBranch: true},
	OpEXIT:      {Name: "EXIT", Pipe: PipeCBU, IsExit: true},
	OpBAR:       {Name: "BAR.SYNC", Pipe: PipeCBU, IsBarrier: true},
	OpMEMBAR:    {Name: "MEMBAR", Pipe: PipeCBU},
	OpNANOSLEEP: {Name: "NANOSLEEP", Pipe: PipeCBU},
}

// Info returns the static metadata for op. It panics on an invalid opcode.
func (o Op) Info() OpInfo {
	if int(o) >= int(numOps) {
		panic(fmt.Sprintf("isa: invalid opcode %d", uint8(o)))
	}
	return opInfos[o]
}

// String implements fmt.Stringer for opcodes.
func (o Op) String() string {
	if int(o) < int(numOps) {
		return opInfos[o].Name
	}
	return fmt.Sprintf("OP_%d", uint8(o))
}

// NumOps is the number of defined opcodes, exported for table-driven tests.
const NumOps = int(numOps)

// Instr is one machine instruction. The encoding is deliberately wide and
// uniform — the simulator interprets it directly instead of decoding a byte
// stream, but the instruction still occupies a per-architecture byte width in
// the instruction cache (see gpu.Spec.InstrBytes).
type Instr struct {
	Op   Op
	Dst  Reg    // GPR destination (RZ when unused)
	Srcs [3]Reg // GPR sources (RZ when unused)
	Imm  int64  // immediate operand / shift amount / address offset

	// Pred guards execution: the instruction only takes effect in threads
	// where Pred (negated when PredNeg) evaluates true. PT means always.
	Pred    PredReg
	PredNeg bool

	// PDst receives the result of *SETP and is the source predicate of
	// SEL/VOTE (field reused to keep the struct compact).
	PDst PredReg

	// Cmp is the comparator for *SETP.
	Cmp CmpOp
	// Mufu selects the SFU function of MUFU.
	Mufu MufuFunc
	// Atom selects the RMW of ATOM/RED.
	Atom AtomOp

	// Size is the access width in bytes for memory ops (4 or 8).
	Size uint8

	// Target is the branch destination (index into the program) for BRA.
	Target int
	// Recon is the reconvergence point (immediate post-dominator) for a
	// potentially divergent BRA, precomputed by the kernel builder.
	Recon int
}

// String disassembles the instruction into a SASS-flavoured line.
func (in Instr) String() string {
	info := in.Op.Info()
	s := ""
	if in.Pred != PT || in.PredNeg {
		neg := ""
		if in.PredNeg {
			neg = "!"
		}
		s = fmt.Sprintf("@%s%s ", neg, in.Pred)
	}
	s += info.Name
	switch {
	case in.Op == OpS2R:
		s += fmt.Sprintf(" %s, %s", in.Dst, SpecialReg(in.Imm))
	case in.Op == OpMOV32:
		s += fmt.Sprintf(" %s, 0x%x", in.Dst, in.Imm)
	case in.Op == OpMUFU:
		s += fmt.Sprintf(".%s %s, %s", in.Mufu, in.Dst, in.Srcs[0])
	case in.Op == OpATOM || in.Op == OpRED:
		s += fmt.Sprintf(".%s [%s+0x%x], %s", in.Atom, in.Srcs[0], in.Imm, in.Srcs[1])
		if in.Op == OpATOM {
			s = fmt.Sprintf("%s ; -> %s", s, in.Dst)
		}
	case info.IsLoad:
		s += fmt.Sprintf(".%d %s, [%s+0x%x]", in.Size*8, in.Dst, in.Srcs[0], in.Imm)
	case info.IsStore:
		s += fmt.Sprintf(".%d [%s+0x%x], %s", in.Size*8, in.Srcs[0], in.Imm, in.Srcs[1])
	case info.IsBranch:
		s += fmt.Sprintf(" %d (recon %d)", in.Target, in.Recon)
	case info.WritesPred:
		s += fmt.Sprintf(".%s %s, %s, %s", in.Cmp, in.PDst, in.Srcs[0], in.Srcs[1])
	case info.WritesDst:
		s += fmt.Sprintf(" %s", in.Dst)
		for i := 0; i < info.NumSrcs; i++ {
			s += fmt.Sprintf(", %s", in.Srcs[i])
		}
		if in.Imm != 0 {
			s += fmt.Sprintf(", 0x%x", in.Imm)
		}
	}
	return s
}

// SourceRegs returns the GPR sources actually read by the instruction,
// excluding RZ, compacted into a fixed-size array together with the count of
// valid entries. The fixed-size return keeps the call allocation-free, which
// matters because the SM's decoded-instruction cache and scoreboard consult
// it on the issue hot path.
func (in Instr) SourceRegs() (regs [3]Reg, n int) {
	info := in.Op.Info()
	for i := 0; i < info.NumSrcs; i++ {
		if in.Srcs[i] != RZ {
			regs[n] = in.Srcs[i]
			n++
		}
	}
	return regs, n
}

// Validate checks structural invariants of the instruction and returns a
// descriptive error for the first violation found.
func (in Instr) Validate(programLen int) error {
	if int(in.Op) >= int(numOps) {
		return fmt.Errorf("invalid opcode %d", uint8(in.Op))
	}
	info := in.Op.Info()
	if info.WritesDst && in.Dst == RZ && in.Op != OpNOP {
		// Writing RZ is legal (discard) but almost always a kernel bug;
		// the builder never emits it, so flag it here.
		if !info.IsAtomic {
			return fmt.Errorf("%s writes RZ", info.Name)
		}
	}
	if info.IsBranch {
		if in.Target < 0 || in.Target >= programLen {
			return fmt.Errorf("branch target %d out of program [0,%d)", in.Target, programLen)
		}
		if in.Recon < 0 || in.Recon > programLen {
			return fmt.Errorf("reconvergence point %d out of program [0,%d]", in.Recon, programLen)
		}
	}
	if (info.IsLoad || info.IsStore) && in.Size != 4 && in.Size != 8 {
		return fmt.Errorf("%s has access size %d, want 4 or 8", info.Name, in.Size)
	}
	if in.Op == OpS2R && (in.Imm < 0 || in.Imm >= int64(numSpecialRegs)) {
		return fmt.Errorf("S2R reads invalid special register %d", in.Imm)
	}
	return nil
}

package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpInfoCoversAllOpcodes(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		info := op.Info()
		if info.Name == "" {
			t.Errorf("opcode %d has no name", op)
		}
		if int(info.Pipe) >= NumPipes {
			t.Errorf("%s: invalid pipe %d", info.Name, info.Pipe)
		}
		if info.NumSrcs < 0 || info.NumSrcs > 3 {
			t.Errorf("%s: NumSrcs %d out of range", info.Name, info.NumSrcs)
		}
	}
}

func TestOpPipeAssignments(t *testing.T) {
	cases := []struct {
		op   Op
		pipe Pipe
	}{
		{OpIADD, PipeALU},
		{OpIMAD, PipeALU},
		{OpFADD, PipeFMA},
		{OpFFMA, PipeFMA},
		{OpDFMA, PipeFP64},
		{OpMUFU, PipeSFU},
		{OpLDG, PipeLSU},
		{OpSTG, PipeLSU},
		{OpLDC, PipeLSU},
		{OpLDS, PipeMIO},
		{OpSTS, PipeMIO},
		{OpSHFL, PipeMIO},
		{OpTEX, PipeTEX},
		{OpBRA, PipeCBU},
		{OpBAR, PipeCBU},
		{OpEXIT, PipeCBU},
	}
	for _, c := range cases {
		if got := c.op.Info().Pipe; got != c.pipe {
			t.Errorf("%s: pipe = %s, want %s", c.op, got, c.pipe)
		}
	}
}

func TestMemoryOpSpaces(t *testing.T) {
	cases := []struct {
		op    Op
		space Space
		load  bool
		store bool
	}{
		{OpLDG, SpaceGlobal, true, false},
		{OpSTG, SpaceGlobal, false, true},
		{OpLDS, SpaceShared, true, false},
		{OpSTS, SpaceShared, false, true},
		{OpLDL, SpaceLocal, true, false},
		{OpSTL, SpaceLocal, false, true},
		{OpLDC, SpaceConstant, true, false},
		{OpTEX, SpaceTexture, true, false},
		{OpATOM, SpaceGlobal, true, true},
		{OpRED, SpaceGlobal, false, true},
	}
	for _, c := range cases {
		info := c.op.Info()
		if info.Space != c.space {
			t.Errorf("%s: space = %s, want %s", c.op, info.Space, c.space)
		}
		if info.IsLoad != c.load || info.IsStore != c.store {
			t.Errorf("%s: load/store = %v/%v, want %v/%v", c.op, info.IsLoad, info.IsStore, c.load, c.store)
		}
	}
}

func TestRegConstruction(t *testing.T) {
	if R(0) != Reg(0) || R(254) != Reg(254) {
		t.Fatal("R(n) does not map identity for valid n")
	}
	defer func() {
		if recover() == nil {
			t.Error("R(255) should panic (RZ is not addressable via R)")
		}
	}()
	R(255)
}

func TestRegStrings(t *testing.T) {
	if RZ.String() != "RZ" {
		t.Errorf("RZ.String() = %q", RZ.String())
	}
	if R(7).String() != "R7" {
		t.Errorf("R(7).String() = %q", R(7).String())
	}
	if PT.String() != "PT" {
		t.Errorf("PT.String() = %q", PT.String())
	}
	if P3.String() != "P3" {
		t.Errorf("P3.String() = %q", P3.String())
	}
}

func TestSourceRegsSkipsRZ(t *testing.T) {
	in := Instr{Op: OpIMAD, Dst: R(4), Srcs: [3]Reg{R(1), RZ, R(2)}}
	got, n := in.SourceRegs()
	if n != 2 || got[0] != R(1) || got[1] != R(2) {
		t.Errorf("SourceRegs = %v (n=%d), want [R1 R2]", got, n)
	}
}

func TestSourceRegsAllocFree(t *testing.T) {
	in := Instr{Op: OpIMAD, Dst: R(4), Srcs: [3]Reg{R(1), R(2), R(3)}}
	var n int
	allocs := testing.AllocsPerRun(100, func() {
		_, n = in.SourceRegs()
	})
	if n != 3 {
		t.Fatalf("SourceRegs count = %d, want 3", n)
	}
	if allocs != 0 {
		t.Errorf("SourceRegs allocates %v per call, want 0", allocs)
	}
}

func TestValidateBranchBounds(t *testing.T) {
	in := Instr{Op: OpBRA, Pred: PT, Target: 10, Recon: 11}
	if err := in.Validate(12); err != nil {
		t.Errorf("valid branch rejected: %v", err)
	}
	in.Target = 12
	if err := in.Validate(12); err == nil {
		t.Error("out-of-range branch target accepted")
	}
	in.Target = 3
	in.Recon = -1
	if err := in.Validate(12); err == nil {
		t.Error("negative reconvergence point accepted")
	}
}

func TestValidateMemorySize(t *testing.T) {
	in := Instr{Op: OpLDG, Dst: R(0), Srcs: [3]Reg{R(1), RZ, RZ}, Size: 4, Pred: PT}
	if err := in.Validate(1); err != nil {
		t.Errorf("valid LDG rejected: %v", err)
	}
	in.Size = 3
	if err := in.Validate(1); err == nil {
		t.Error("LDG with size 3 accepted")
	}
}

func TestValidateSpecialReg(t *testing.T) {
	in := Instr{Op: OpS2R, Dst: R(0), Imm: int64(SRLaneID), Pred: PT}
	if err := in.Validate(1); err != nil {
		t.Errorf("valid S2R rejected: %v", err)
	}
	in.Imm = 99
	if err := in.Validate(1); err == nil {
		t.Error("S2R with bogus special register accepted")
	}
}

func TestDisassemblyShapes(t *testing.T) {
	cases := []struct {
		in   Instr
		want string // substring that must appear
	}{
		{Instr{Op: OpIADD, Dst: R(3), Srcs: [3]Reg{R(1), R(2), RZ}, Pred: PT}, "IADD R3, R1, R2"},
		{Instr{Op: OpMOV32, Dst: R(5), Imm: 0xff, Pred: PT}, "MOV32I R5, 0xff"},
		{Instr{Op: OpLDG, Dst: R(2), Srcs: [3]Reg{R(8), RZ, RZ}, Imm: 0x10, Size: 4, Pred: PT}, "LDG.32 R2, [R8+0x10]"},
		{Instr{Op: OpSTG, Srcs: [3]Reg{R(8), R(2), RZ}, Size: 8, Pred: PT}, "STG.64 [R8+0x0], R2"},
		{Instr{Op: OpBRA, Target: 7, Recon: 9, Pred: P1, PredNeg: true}, "@!P1 BRA 7"},
		{Instr{Op: OpISETP, PDst: P2, Cmp: CmpLT, Srcs: [3]Reg{R(0), R(1), RZ}, Pred: PT}, "ISETP.LT P2, R0, R1"},
		{Instr{Op: OpMUFU, Mufu: MufuSIN, Dst: R(4), Srcs: [3]Reg{R(3), RZ, RZ}, Pred: PT}, "MUFU.SIN R4, R3"},
		{Instr{Op: OpS2R, Dst: R(0), Imm: int64(SRTidX), Pred: PT}, "S2R R0, SR_TID.X"},
	}
	for _, c := range cases {
		got := c.in.String()
		if !strings.Contains(got, c.want) {
			t.Errorf("disasm %v = %q, want substring %q", c.in.Op, got, c.want)
		}
	}
}

func TestStringerTotality(t *testing.T) {
	// Every enum's String must be total, including out-of-range values.
	if Pipe(200).String() == "" || Space(200).String() == "" ||
		CmpOp(200).String() == "" || MufuFunc(200).String() == "" ||
		AtomOp(200).String() == "" || Op(200).String() == "" ||
		SpecialReg(200).String() == "" {
		t.Error("a Stringer returned empty for out-of-range value")
	}
	for p := Pipe(0); int(p) < NumPipes; p++ {
		if p.String() == "" {
			t.Errorf("pipe %d has empty name", p)
		}
	}
}

// Property: SourceRegs never returns RZ and never returns more than the
// opcode's declared source count.
func TestSourceRegsProperty(t *testing.T) {
	f := func(opRaw uint8, s0, s1, s2 uint16) bool {
		op := Op(int(opRaw) % NumOps)
		in := Instr{Op: op, Srcs: [3]Reg{Reg(s0 % 256), Reg(s1 % 256), Reg(s2 % 256)}}
		regs, n := in.SourceRegs()
		if n > op.Info().NumSrcs {
			return false
		}
		for _, r := range regs[:n] {
			if r == RZ {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package sm

import (
	"fmt"

	"gputopdown/internal/isa"
	"gputopdown/internal/mem"
)

// Deferred-memory (two-phase tick) support for the parallel intra-launch
// engine.
//
// The sequential engine interleaves every SM's shared-memory traffic in a
// single global order: (guard iteration, SM id, issue order within the tick,
// sector/lane order within the instruction). The parallel engine reproduces
// that order per shared structure without running SMs in sequence:
//
//   Phase A (parallel over SMs): Tick runs with s.deferred set. Every
//     global/local/texture/atomic memory instruction records a memReq in the
//     SM's epoch mailbox instead of touching the shared L2 slices, DRAM
//     channels or device Storage. Everything SM-private — L1 filtering,
//     instruction/replay accounting, pipe and dispatch occupancy, the posted
//     half of stores — still happens inline, so Tick's control flow (and the
//     fast-forward bound it computes) is unchanged.
//
//   Phase B (parallel over L2 slices): each slice's owner worker calls
//     DrainSlice(slice) on every SM in id order. The drain walks the mailbox
//     in issue order and processes only the sectors and lanes that map to its
//     slice: L2 slice accesses, DRAM channel requests, and the functional
//     Storage reads/writes/RMWs. Because any two accesses to the same address
//     share a slice, every per-structure access sequence equals the
//     sequential engine's — same order, same cycle stamps — so cache state,
//     channel backpressure and functional memory evolve bit-identically.
//     Per-slice L2 hit/miss deltas land in s.defStats[slice] (one cell per
//     slice, no cross-worker sharing).
//
//   Phase C (parallel over SMs): FinalizeEpoch applies each request's
//     completion back to the issuing warp (register scoreboard, store drain
//     lists, memory queues), merges the per-slice stat deltas, and takes any
//     trace sample the tick owed. Only then may the engine fast-forward the
//     SM, exactly as the sequential loop advances after a tick.
//
// Lane routing assumes naturally aligned accesses (the ISA's 4- and 8-byte
// ops at their natural alignment), so no access straddles a cache line and
// every lane belongs to exactly one slice.

// memReq kinds.
const (
	reqLoad   uint8 = iota + 1 // LDG / LDL
	reqStore                   // STG / STL
	reqAtomic                  // ATOM / RED
	reqTex                     // TEX
)

// memReq is one deferred memory instruction in the epoch mailbox.
type memReq struct {
	kind  uint8
	pmask uint32
	in    *isa.Instr
	w     *warp
	sp    *subpart
	now   uint64 // SM cycle at issue
	base  uint64 // phase-A completion floor (L1/L2/TEX latency)

	ops        int // atomic: active lane-operations
	contention int // atomic: max same-address lanes

	addrs     [32]uint64 // per-lane effective addresses (active lanes only)
	laneSlice [32]uint8  // owning L2 slice per active lane

	// Sectors needing shared-memory service (for loads/tex: L1 misses only),
	// the slice owning each, and the completion cycle phase B writes back.
	// Each sectorDone entry is written by exactly one slice worker.
	sectors     []uint64
	sectorSlice []uint8
	sectorDone  []uint64
}

// SetDeferred switches the SM between inline (sequential engine) and
// mailbox (parallel engine) servicing of shared-memory instructions.
// Enabling with requests pending is a driver bug (they would replay);
// disabling drops any pending requests — the teardown path after a failed
// launch runs during panic unwinding, where the mailbox is already garbage.
func (s *SM) SetDeferred(on bool) {
	if on && len(s.reqs) > 0 {
		panic(fmt.Sprintf("sm %d: SetDeferred with %d requests pending", s.id, len(s.reqs)))
	}
	if !on {
		for i := range s.reqs {
			s.reqs[i].in, s.reqs[i].w, s.reqs[i].sp = nil, nil, nil
		}
		s.reqs = s.reqs[:0]
		s.pendingSample = false
	}
	s.deferred = on
}

// newReq appends a mailbox entry, recycling the sector backings of the slot's
// previous occupant (the mailbox is truncated, never freed, between epochs).
func (s *SM) newReq() *memReq {
	n := len(s.reqs)
	if n < cap(s.reqs) {
		s.reqs = s.reqs[:n+1]
	} else {
		s.reqs = append(s.reqs, memReq{})
	}
	r := &s.reqs[n]
	r.sectors = r.sectors[:0]
	r.sectorSlice = r.sectorSlice[:0]
	r.sectorDone = r.sectorDone[:0]
	return r
}

// recordLanes captures the active lanes' addresses and owning slices.
func (s *SM) recordLanes(r *memReq, addrs *[32]uint64, pmask uint32) {
	for lane := 0; lane < 32; lane++ {
		if pmask&(1<<lane) != 0 {
			r.addrs[lane] = addrs[lane]
			r.laneSlice[lane] = uint8(s.ms.SliceOf(addrs[lane]))
		}
	}
}

// recordSector queues one sector for phase-B service.
func (s *SM) recordSector(r *memReq, sec uint64) {
	r.sectors = append(r.sectors, sec)
	r.sectorSlice = append(r.sectorSlice, uint8(s.ms.SliceOf(sec)))
	r.sectorDone = append(r.sectorDone, 0)
}

// deferGlobal is the phase-A half of execMemory's global/local/atomic/texture
// cases: it performs every SM-private side effect the sequential path would
// (L1 filtering, instruction statistics, the posted half of stores) and
// buffers the shared-memory half into the mailbox. The returned
// (extraIssues, pipeBusy) replay accounting depends only on sector and lane
// counts, so it is exact before the shared system is consulted.
func (s *SM) deferGlobal(sp *subpart, w *warp, in *isa.Instr, pmask uint32, now uint64, addrs *[32]uint64, sectors []uint64) (int, uint64) {
	spec := s.spec
	n := len(sectors)

	switch in.Op {
	case isa.OpLDG, isa.OpLDL:
		s.dp.BeginDeferredLoad(n)
		r := s.newReq()
		r.kind, r.in, r.w, r.sp = reqLoad, in, w, sp
		r.now, r.pmask = now, pmask
		r.base = now + uint64(spec.L1Latency)
		for _, sec := range sectors {
			if s.dp.L1LoadSector(sec) {
				continue // hit completes at the L1 floor; nothing to defer
			}
			s.recordSector(r, sec)
		}
		s.recordLanes(r, addrs, pmask)
		return max0(n-1) / 4, uint64(max1(n / 2))

	case isa.OpSTG, isa.OpSTL:
		// Stores are posted: the warp-visible completion and the MEMBAR
		// visibility horizon are pure latency terms, applied here so the
		// in-tick bookkeeping (drain lists, fences, queue occupancy) matches
		// the sequential engine cycle for cycle. Only the L2/DRAM traffic and
		// the functional writes wait for phase B.
		s.dp.BeginDeferredStore(n)
		posted := now + uint64(spec.L1Latency) + uint64(n)
		visible := now + uint64(spec.L2Latency)
		w.storesPending = append(w.storesPending, posted)
		w.fenceUntil = maxU64(w.fenceUntil, visible)
		sp.lgQueue.Push(posted)
		r := s.newReq()
		r.kind, r.in, r.w, r.sp = reqStore, in, w, sp
		r.now, r.pmask = now, pmask
		for _, sec := range sectors {
			s.recordSector(r, sec)
		}
		s.recordLanes(r, addrs, pmask)
		return max0(n-1) / 4, uint64(max1(n / 2))

	case isa.OpATOM, isa.OpRED:
		ops := int(popcount(pmask))
		contention := mem.MaxContention(addrs, pmask)
		s.dp.BeginDeferredAtomic(ops)
		r := s.newReq()
		r.kind, r.in, r.w, r.sp = reqAtomic, in, w, sp
		r.now, r.pmask = now, pmask
		r.base = now + uint64(spec.L2Latency)
		r.ops, r.contention = ops, contention
		for _, sec := range sectors {
			s.recordSector(r, sec)
		}
		s.recordLanes(r, addrs, pmask)
		return max0(ops-1) / 4, uint64(max1(ops / 2))

	case isa.OpTEX:
		s.dp.BeginDeferredTex()
		r := s.newReq()
		r.kind, r.in, r.w, r.sp = reqTex, in, w, sp
		r.now, r.pmask = now, pmask
		r.base = now + uint64(spec.TEXLatency)
		for _, sec := range sectors {
			if s.dp.L1LoadSector(sec) {
				continue // hit: L1 + filtering latency == the TEX floor
			}
			s.recordSector(r, sec)
		}
		s.recordLanes(r, addrs, pmask)
		return max0(n-1) / 4, uint64(max1(n / 2))
	}
	panic(fmt.Sprintf("sm: deferGlobal on non-deferrable op %s", in.Op))
}

// DrainSlice services every mailbox entry's traffic that maps to one L2
// slice: the timing accesses (L2 slice, DRAM channel) and the functional
// Storage operations. Safe to call concurrently for distinct slices of the
// same SM — each touches only its own slice's cache and channel, its own
// defStats cell, disjoint sectorDone entries, and (because equal addresses
// share a slice) non-overlapping Storage ranges and register lanes.
func (s *SM) DrainSlice(slice int) {
	st := &s.defStats[slice]
	sl := uint8(slice)
	for i := range s.reqs {
		r := &s.reqs[i]
		size := int(r.in.Size)
		switch r.kind {
		case reqLoad:
			for k, sec := range r.sectors {
				if r.sectorSlice[k] == sl {
					r.sectorDone[k] = s.dp.SharedLoadSector(r.now, sec, slice, st)
				}
			}
			for lane := 0; lane < 32; lane++ {
				if r.pmask&(1<<lane) != 0 && r.laneSlice[lane] == sl {
					r.w.regs[r.in.Dst][lane] = s.storage.Read(r.addrs[lane], size)
				}
			}
		case reqStore:
			for k, sec := range r.sectors {
				if r.sectorSlice[k] == sl {
					s.dp.SharedStoreSector(r.now, sec, slice, st)
				}
			}
			for lane := 0; lane < 32; lane++ {
				if r.pmask&(1<<lane) != 0 && r.laneSlice[lane] == sl {
					s.storage.Write(r.addrs[lane], r.w.readReg(r.in.Srcs[1], lane), size)
				}
			}
		case reqAtomic:
			for k, sec := range r.sectors {
				if r.sectorSlice[k] == sl {
					r.sectorDone[k] = s.dp.SharedAtomicSector(r.now, sec, slice, st)
				}
			}
			for lane := 0; lane < 32; lane++ {
				if r.pmask&(1<<lane) == 0 || r.laneSlice[lane] != sl {
					continue
				}
				old := s.storage.Read(r.addrs[lane], size)
				val := r.w.readReg(r.in.Srcs[1], lane)
				var nv uint64
				switch r.in.Atom {
				case isa.AtomAdd:
					nv = uint64(int64(old) + int64(val))
				case isa.AtomMin:
					nv = old
					if int64(val) < int64(old) {
						nv = val
					}
				case isa.AtomMax:
					nv = old
					if int64(val) > int64(old) {
						nv = val
					}
				case isa.AtomExch:
					nv = val
				case isa.AtomAnd:
					nv = old & val
				case isa.AtomOr:
					nv = old | val
				case isa.AtomCAS:
					nv = old
					if old == uint64(int64(r.w.readReg(r.in.Srcs[2], lane))) {
						nv = val
					}
				}
				s.storage.Write(r.addrs[lane], nv, size)
				if r.in.Op == isa.OpATOM {
					r.w.regs[r.in.Dst][lane] = old
				}
			}
		case reqTex:
			texExtra := uint64(s.spec.TEXLatency - s.spec.L1Latency)
			for k, sec := range r.sectors {
				if r.sectorSlice[k] == sl {
					r.sectorDone[k] = s.dp.SharedLoadSector(r.now, sec, slice, st) + texExtra
				}
			}
			for lane := 0; lane < 32; lane++ {
				if r.pmask&(1<<lane) != 0 && r.laneSlice[lane] == sl {
					r.w.regs[r.in.Dst][lane] = s.storage.Read(r.addrs[lane], size)
				}
			}
		}
	}
}

// FinalizeEpoch applies the drained mailbox back to the SM: completion times
// to the register scoreboard, drain lists and memory queues; per-slice L2
// statistics into the data path; and the trace sample the tick deferred.
// After it returns, the SM's observable state equals what the sequential
// engine's inline Tick would have left. One FinalizeEpoch per Tick; the
// engine must not Tick or AdvanceTo the SM between a deferred Tick and its
// FinalizeEpoch.
func (s *SM) FinalizeEpoch() {
	for i := range s.reqs {
		r := &s.reqs[i]
		done := r.base
		for _, d := range r.sectorDone {
			if d > done {
				done = d
			}
		}
		switch r.kind {
		case reqLoad:
			r.w.setRegReady(r.in.Dst, done, depLong)
			r.sp.lgQueue.Push(done)
		case reqStore:
			// Fully applied in phase A.
		case reqAtomic:
			done = s.dp.AtomicAdjust(done, r.ops, r.contention)
			if r.in.Op == isa.OpATOM {
				r.w.setRegReady(r.in.Dst, done, depLong)
			}
			r.w.storesPending = append(r.w.storesPending, done)
			r.sp.lgQueue.Push(done)
		case reqTex:
			r.w.setRegReady(r.in.Dst, done, depLong)
			r.sp.texQueue.Push(done)
		}
		r.in, r.w, r.sp = nil, nil, nil // don't pin warps past their reap
	}
	s.reqs = s.reqs[:0]
	for i := range s.defStats {
		if st := &s.defStats[i]; st.L2Hits|st.L2Misses != 0 {
			s.dp.MergeSharedStats(st)
			*st = mem.DataPathStats{}
		}
	}
	if s.pendingSample {
		s.pendingSample = false
		cur := s.Counters()
		s.traceSamples = append(s.traceSamples, cur.Sub(&s.traceBase))
		s.traceBase = cur
	}
}

// HasDeferred reports whether the mailbox holds unapplied requests.
func (s *SM) HasDeferred() bool { return len(s.reqs) > 0 }

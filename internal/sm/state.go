// Package sm implements the Streaming Multiprocessor pipeline model: warps
// with SIMT reconvergence stacks, instruction fetch through a private
// instruction cache, greedy-then-oldest / round-robin warp scheduling,
// register scoreboarding, functional-unit initiation intervals, the memory
// instruction queues and — centrally for the Top-Down methodology — a
// per-cycle warp-state classifier that assigns every active warp to exactly
// one of the ncu warp-stall states each cycle.
//
// The package also interprets the mini ISA functionally (real per-thread
// register values, addresses and predicates), so cache hits, divergence and
// bank conflicts emerge from the data the workload actually processes.
package sm

import "fmt"

// WarpState is the scheduler-eye view of one warp in one cycle. The first
// two states are the productive ones; the rest are the stall taxonomy of
// NVIDIA's smsp__warp_issue_stalled_* metrics (paper Tables VI and VIII).
type WarpState uint8

// Warp states. Every active warp is in exactly one state each cycle.
const (
	// StateSelected: the warp issued an instruction this cycle.
	StateSelected WarpState = iota
	// StateNotSelected: eligible but another warp was picked.
	StateNotSelected
	// StateNoInstruction: waiting on instruction fetch / icache miss.
	StateNoInstruction
	// StateBarrier: waiting for sibling warps at a CTA barrier.
	StateBarrier
	// StateMembar: waiting on a memory barrier.
	StateMembar
	// StateBranchResolving: waiting for a branch target / PC update.
	StateBranchResolving
	// StateSleeping: all threads blocked, yielded or asleep.
	StateSleeping
	// StateMisc: miscellaneous, including register-bank conflicts.
	StateMisc
	// StateDispatchStall: waiting on a dispatch conflict.
	StateDispatchStall
	// StateMathPipeThrottle: required execution pipe busy.
	StateMathPipeThrottle
	// StateLongScoreboard: waiting on an L1TEX (global/local/texture) load
	// dependency.
	StateLongScoreboard
	// StateShortScoreboard: waiting on an MIO (shared memory) dependency.
	StateShortScoreboard
	// StateWait: waiting on a fixed-latency execution dependency.
	StateWait
	// StateIMCMiss: waiting on an immediate-constant cache miss.
	StateIMCMiss
	// StateMIOThrottle: MIO instruction queue full.
	StateMIOThrottle
	// StateLGThrottle: LG (load/global) instruction queue full.
	StateLGThrottle
	// StateTEXThrottle: texture queue full.
	StateTEXThrottle
	// StateDrain: warp exited, waiting for outstanding stores.
	StateDrain
	// NumWarpStates is the number of per-cycle warp states.
	NumWarpStates = 18
)

var warpStateNames = [NumWarpStates]string{
	"selected", "not_selected", "no_instruction", "barrier", "membar",
	"branch_resolving", "sleeping", "misc", "dispatch_stall",
	"math_pipe_throttle", "long_scoreboard", "short_scoreboard", "wait",
	"imc_miss", "mio_throttle", "lg_throttle", "tex_throttle", "drain",
}

// String implements fmt.Stringer.
func (s WarpState) String() string {
	if int(s) < NumWarpStates {
		return warpStateNames[s]
	}
	return fmt.Sprintf("state_%d", uint8(s))
}

// Counters is everything one SM counts during execution. The PMU exposes a
// selected subset per pass; metrics (internal/metrics) are ratios of these.
type Counters struct {
	// Cycles the SM had at least one resident warp.
	ActiveCycles uint64
	// ElapsedCycles since the kernel launched (includes pre-work idle).
	ElapsedCycles uint64
	// Sum over cycles of the number of active warps (denominator of the
	// per_warp_active.pct metrics).
	ActiveWarpCycles uint64
	// Sum over cycles of active subpartitions (subpartitions with >= 1
	// resident warp).
	SubpActiveCycles uint64

	// InstExecuted counts retired warp instructions; InstIssued includes
	// replays, so InstIssued >= InstExecuted always.
	InstExecuted uint64
	InstIssued   uint64
	// ThreadInstExecuted counts thread-level instructions (active lanes).
	ThreadInstExecuted uint64

	// WarpStateCycles[s] is warp-cycles spent in state s.
	WarpStateCycles [NumWarpStates]uint64

	// Control flow.
	BranchInstrs      uint64
	DivergentBranches uint64

	// Work geometry.
	BlocksLaunched uint64
	WarpsLaunched  uint64

	// Shared memory.
	SharedLoads         uint64
	SharedStores        uint64
	SharedBankConflicts uint64 // extra cycles from conflicts

	// Memory path (copied from mem.DataPathStats at collection time).
	GlobalLoads  uint64
	GlobalStores uint64
	LoadSectors  uint64
	StoreSectors uint64
	L1Hits       uint64
	L1Misses     uint64
	L2Hits       uint64
	L2Misses     uint64
	ConstLoads   uint64
	IMCHits      uint64
	IMCMisses    uint64
	TexFetches   uint64
	Atomics      uint64

	// Instruction cache.
	ICacheHits   uint64
	ICacheMisses uint64

	// Register-file bank conflicts (classified under misc).
	RegBankConflicts uint64
}

// Add accumulates o into c, for aggregating per-SM counters device-wide.
func (c *Counters) Add(o *Counters) {
	c.ActiveCycles += o.ActiveCycles
	c.ElapsedCycles += o.ElapsedCycles
	c.ActiveWarpCycles += o.ActiveWarpCycles
	c.SubpActiveCycles += o.SubpActiveCycles
	c.InstExecuted += o.InstExecuted
	c.InstIssued += o.InstIssued
	c.ThreadInstExecuted += o.ThreadInstExecuted
	for i := range c.WarpStateCycles {
		c.WarpStateCycles[i] += o.WarpStateCycles[i]
	}
	c.BranchInstrs += o.BranchInstrs
	c.DivergentBranches += o.DivergentBranches
	c.BlocksLaunched += o.BlocksLaunched
	c.WarpsLaunched += o.WarpsLaunched
	c.SharedLoads += o.SharedLoads
	c.SharedStores += o.SharedStores
	c.SharedBankConflicts += o.SharedBankConflicts
	c.GlobalLoads += o.GlobalLoads
	c.GlobalStores += o.GlobalStores
	c.LoadSectors += o.LoadSectors
	c.StoreSectors += o.StoreSectors
	c.L1Hits += o.L1Hits
	c.L1Misses += o.L1Misses
	c.L2Hits += o.L2Hits
	c.L2Misses += o.L2Misses
	c.ConstLoads += o.ConstLoads
	c.IMCHits += o.IMCHits
	c.IMCMisses += o.IMCMisses
	c.TexFetches += o.TexFetches
	c.Atomics += o.Atomics
	c.ICacheHits += o.ICacheHits
	c.ICacheMisses += o.ICacheMisses
	c.RegBankConflicts += o.RegBankConflicts
}

// Sub returns c - o field-by-field, for per-launch deltas of cumulative
// counters.
func (c Counters) Sub(o *Counters) Counters {
	r := c
	r.ActiveCycles -= o.ActiveCycles
	r.ElapsedCycles -= o.ElapsedCycles
	r.ActiveWarpCycles -= o.ActiveWarpCycles
	r.SubpActiveCycles -= o.SubpActiveCycles
	r.InstExecuted -= o.InstExecuted
	r.InstIssued -= o.InstIssued
	r.ThreadInstExecuted -= o.ThreadInstExecuted
	for i := range r.WarpStateCycles {
		r.WarpStateCycles[i] -= o.WarpStateCycles[i]
	}
	r.BranchInstrs -= o.BranchInstrs
	r.DivergentBranches -= o.DivergentBranches
	r.BlocksLaunched -= o.BlocksLaunched
	r.WarpsLaunched -= o.WarpsLaunched
	r.SharedLoads -= o.SharedLoads
	r.SharedStores -= o.SharedStores
	r.SharedBankConflicts -= o.SharedBankConflicts
	r.GlobalLoads -= o.GlobalLoads
	r.GlobalStores -= o.GlobalStores
	r.LoadSectors -= o.LoadSectors
	r.StoreSectors -= o.StoreSectors
	r.L1Hits -= o.L1Hits
	r.L1Misses -= o.L1Misses
	r.L2Hits -= o.L2Hits
	r.L2Misses -= o.L2Misses
	r.ConstLoads -= o.ConstLoads
	r.IMCHits -= o.IMCHits
	r.IMCMisses -= o.IMCMisses
	r.TexFetches -= o.TexFetches
	r.Atomics -= o.Atomics
	r.ICacheHits -= o.ICacheHits
	r.ICacheMisses -= o.ICacheMisses
	r.RegBankConflicts -= o.RegBankConflicts
	return r
}

// TotalStallCycles sums warp-cycles over all non-productive states.
func (c *Counters) TotalStallCycles() uint64 {
	var t uint64
	for s := StateNoInstruction; s < NumWarpStates; s++ {
		t += c.WarpStateCycles[s]
	}
	return t
}

// StateSum sums warp-cycles over every state, which must equal
// ActiveWarpCycles (property-tested).
func (c *Counters) StateSum() uint64 {
	var t uint64
	for _, v := range c.WarpStateCycles {
		t += v
	}
	return t
}

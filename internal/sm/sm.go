package sm

import (
	"fmt"

	"gputopdown/internal/gpu"
	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
	"gputopdown/internal/mem"
)

// subpart is one SM subpartition: a warp scheduler, a dispatch unit, one
// instance of each execution pipe and the memory instruction queues.
type subpart struct {
	warps        []*warp // fixed slots, nil = free
	nres         int     // occupied slots, maintained by LaunchBlock/reapFinished
	pipeFree     [isa.NumPipes]uint64
	dispatchFree uint64
	lgQueue      *mem.TimedQueue
	mioQueue     *mem.TimedQueue
	texQueue     *mem.TimedQueue
	lastIssued   int // slot of the most recently issued warp (GTO/LRR)
}

func (sp *subpart) resident() int { return sp.nres }

func (sp *subpart) freeSlots() int { return len(sp.warps) - sp.nres }

// SM is one Streaming Multiprocessor.
type SM struct {
	spec      *gpu.Spec
	id        int
	dp        *mem.DataPath
	ms        *mem.MemSys
	icache    *mem.Cache
	storage   *mem.Storage
	constBank *mem.ConstantBank
	subparts  []*subpart
	blocks    []*blockCtx

	cycle     uint64
	fetchBusy uint64
	launchSeq uint64

	// Fast-forward bookkeeping. nextWakeup is the bound computed by the
	// most recent Tick: the earliest cycle at which the next Tick can do
	// anything other than exactly repeat the last one (see NextWakeup).
	// tickEvent is set by classify when it mutates cross-warp state
	// (barrier release on warp death) and forces the bound to collapse to
	// the current cycle. residencyVer counts resource-occupancy changes so
	// the device's dispatcher can skip SMs whose last rejection is still
	// current.
	nextWakeup   uint64
	tickEvent    bool
	residencyVer uint64

	// Adaptive fast-forward hysteresis. Wakeup bookkeeping (per-warp bound
	// minimisation, the state histogram AdvanceTo replays) is pure overhead
	// while the SM issues every cycle, so after adaptiveHotTicks consecutive
	// non-quiescent ticks wakeTrack turns the bookkeeping off; the first
	// quiescent tick (every subpartition idle) re-arms it. Purely host-side:
	// simulation results are bit-identical either way.
	adaptiveFF bool
	wakeTrack  bool
	hotStreak  uint32

	// drainCount tracks warps that have finished but still hold outstanding
	// stores, so the per-tick reap scan runs only when it can reap.
	drainCount int

	// noWakeList disables the per-warp wake-list skip in Tick (test hook:
	// the exactness test runs both ways and demands identical counters).
	noWakeList bool

	// progCache holds the per-program decoded-instruction tables (see
	// decode.go), keyed by program identity and retained for the SM's
	// lifetime — replay passes re-launch the same programs.
	progCache map[*kernel.Program]*decodedProgram

	// Launch-wide context for local-memory addressing, set by the device.
	localBase    uint64
	totalThreads int

	// Per-tick scratch buffers (no allocation in the cycle loop).
	// candScratch is a single backing array shared by every subpartition of
	// a tick in turn: Tick truncates it per subpartition and stores the
	// (possibly re-grown) backing once per tick. sectorScratch backs
	// CoalesceSectorsInto in the issue path; storePool recycles reaped
	// warps' storesPending backings into newly launched warps.
	stateScratch  [64]WarpState
	candScratch   []int
	sectorScratch []uint64
	storePool     [][]uint64

	// Quiet-span accounting snapshot, rebuilt by every Tick: how many
	// resident warps sit in each state (by lastState), how many
	// subpartitions have residents, and the total resident count. AdvanceTo
	// replays these per-cycle deltas in O(states) instead of O(warps).
	stateHist   [NumWarpStates]uint64
	activeSubps uint64
	histWarps   uint64

	// Tracing: when traceInterval > 0 the SM snapshots a counter delta
	// every traceInterval cycles, giving an intra-kernel timeline.
	traceInterval uint64
	traceBase     Counters
	traceSamples  []Counters

	// Occupancy accounting.
	residentBlocks  int
	residentThreads int
	residentWarps   int
	residentRegs    int
	residentShared  int

	// Deferred-memory (two-phase tick) state for the parallel engine; see
	// deferred.go. When deferred is set, Tick buffers every shared-memory
	// operation into reqs (the epoch mailbox) instead of applying it, and the
	// engine later calls DrainSlice per L2 slice and FinalizeEpoch.
	deferred      bool
	reqs          []memReq
	defStats      []mem.DataPathStats // per-slice L2 hit/miss accumulators
	pendingSample bool                // trace sample owed by FinalizeEpoch

	ctr Counters
}

// New builds an SM around the device-shared memory system, global storage
// and constant bank.
func New(spec *gpu.Spec, id int, ms *mem.MemSys, storage *mem.Storage, constBank *mem.ConstantBank) *SM {
	s := &SM{
		spec:          spec,
		id:            id,
		dp:            mem.NewDataPath(spec, id, ms),
		ms:            ms,
		icache:        mem.NewCache("L1I", spec.ICacheSize, spec.ICacheWays, spec.LineSize, spec.LineSize),
		storage:       storage,
		constBank:     constBank,
		adaptiveFF:    true,
		wakeTrack:     true,
		candScratch:   make([]int, 0, spec.WarpSlotsPerSubpartition),
		sectorScratch: make([]uint64, 0, 64),
		defStats:      make([]mem.DataPathStats, ms.NumSlices()),
	}
	for i := 0; i < spec.SubpartitionsPerSM; i++ {
		s.subparts = append(s.subparts, &subpart{
			warps:    make([]*warp, spec.WarpSlotsPerSubpartition),
			lgQueue:  mem.NewTimedQueue(spec.LGQueueDepth),
			mioQueue: mem.NewTimedQueue(spec.MIOQueueDepth),
			texQueue: mem.NewTimedQueue(spec.TEXQueueDepth),
		})
	}
	return s
}

// SetLaunchContext installs the per-launch local-memory base and total
// thread count used for local address interleaving.
func (s *SM) SetLaunchContext(localBase uint64, totalThreads int) {
	s.localBase = localBase
	s.totalThreads = totalThreads
}

// Busy reports whether any warp is resident.
func (s *SM) Busy() bool { return s.residentWarps > 0 }

// ResidentBlocks returns the number of thread blocks currently resident —
// the per-SM occupancy signal the observability layer samples onto its
// simulated-time trace track.
func (s *SM) ResidentBlocks() int { return s.residentBlocks }

// Cycle returns the SM's current cycle.
func (s *SM) Cycle() uint64 { return s.cycle }

// CanAccept reports whether a block of the launch fits in the SM's free
// resources right now.
func (s *SM) CanAccept(l *kernel.Launch) bool {
	bt := l.BlockThreads()
	wpb := l.WarpsPerBlock()
	if s.residentBlocks+1 > s.spec.MaxBlocksPerSM {
		return false
	}
	if s.residentThreads+bt > s.spec.MaxThreadsPerSM {
		return false
	}
	if s.residentRegs+l.Program.NumRegs*bt > s.spec.RegistersPerSM {
		return false
	}
	if s.residentShared+l.SharedBytes() > s.spec.SharedMemPerSM {
		return false
	}
	// Warps are dealt to subpartitions round-robin starting at 0; each must
	// have room for its share.
	n := len(s.subparts)
	for k, sp := range s.subparts {
		need := (wpb - k + n - 1) / n
		if need > sp.freeSlots() {
			return false
		}
	}
	return true
}

// LaunchBlock makes a block resident. Callers must check CanAccept first.
func (s *SM) LaunchBlock(l *kernel.Launch, ctaid [3]int64, blockLinear int) {
	bt := l.BlockThreads()
	wpb := l.WarpsPerBlock()
	blk := &blockCtx{
		ctaid:       ctaid,
		blockLinear: blockLinear,
		launch:      l,
		dec:         s.decodeProgram(l.Program),
		shared:      make([]byte, l.SharedBytes()),
		liveWarps:   wpb,
		remaining:   wpb,
	}
	for wi := 0; wi < wpb; wi++ {
		members := uint32(0xFFFFFFFF)
		if rem := bt - wi*kernel.WarpSize; rem < kernel.WarpSize {
			members = (1 << rem) - 1
		}
		spIdx := wi % len(s.subparts)
		sp := s.subparts[spIdx]
		slot := -1
		for j, ws := range sp.warps {
			if ws == nil {
				slot = j
				break
			}
		}
		if slot < 0 {
			panic(fmt.Sprintf("sm %d: no free warp slot in subpartition %d (CanAccept not honoured)", s.id, spIdx))
		}
		s.launchSeq++
		w := newWarp(spIdx*len(sp.warps)+slot, spIdx, wi, blk, members, l.Program.NumRegs, s.launchSeq)
		if n := len(s.storePool); n > 0 {
			// Recycle a reaped warp's storesPending backing.
			w.storesPending = s.storePool[n-1][:0]
			s.storePool[n-1] = nil
			s.storePool = s.storePool[:n-1]
		}
		sp.warps[slot] = w
		sp.nres++
		blk.warps = append(blk.warps, w)
	}
	s.blocks = append(s.blocks, blk)
	s.residentBlocks++
	s.residentThreads += bt
	s.residentWarps += wpb
	s.residentRegs += l.Program.NumRegs * bt
	s.residentShared += l.SharedBytes()
	s.ctr.BlocksLaunched++
	s.ctr.WarpsLaunched += uint64(wpb)
	s.residencyVer++
	// New warps are immediately runnable; any previously computed
	// fast-forward bound no longer holds.
	s.nextWakeup = s.cycle
}

// checkBarrier releases a block's barrier when every live warp has arrived.
func (s *SM) checkBarrier(b *blockCtx) {
	if b.arrived == 0 || b.arrived < b.liveWarps {
		return
	}
	for _, w := range b.warps {
		w.atBarrier = false
		// The release is a cross-warp event: drop the released warps'
		// wake-list bounds so the next Tick reclassifies them immediately.
		w.wakeAt = 0
	}
	b.arrived = 0
}

// neverWake marks a warp with no self-contained wakeup bound (e.g. blocked
// at a barrier: only another warp's arrival or death can release it, and
// those are issue/tick events that collapse the bound anyway).
const neverWake = ^uint64(0)

// ensureFetched models the instruction supply: one line-fetch per SM per
// cycle through the L1 instruction cache. It returns true when the warp's
// next instruction is available in its instruction buffer, and otherwise
// the cycle at which this warp's fetch wait can end (port free or decode
// complete).
func (s *SM) ensureFetched(w *warp, pc int, now uint64) (bool, uint64) {
	lineSize := uint64(s.spec.LineSize)
	line := uint64(pc*s.spec.InstrBytes) / lineSize
	if w.fetchedLine == line+1 {
		return now >= w.ifetchReady, w.ifetchReady
	}
	if s.fetchBusy > now {
		return false, s.fetchBusy // fetch port busy this cycle
	}
	s.fetchBusy = now + uint64(s.spec.FetchCyclesPerLine)
	w.fetchedLine = line + 1
	if s.icache.Access(line * lineSize) {
		s.ctr.ICacheHits++
		w.ifetchReady = now + uint64(s.spec.DecodeDelay)
	} else {
		s.ctr.ICacheMisses++
		w.ifetchReady = now + uint64(s.spec.L2Latency)/2 + uint64(s.spec.DecodeDelay)
	}
	return false, w.ifetchReady
}

// classify determines the warp's state this cycle. eligible is true only
// when the warp could issue right now. For ineligible warps, wake is the
// earliest cycle at which the warp's classification can change — until
// then, re-running classify would return the same state and mutate
// nothing. Bounds may be in the past (e.g. a drained store list); Tick
// clamps them to now+1.
func (s *SM) classify(sp *subpart, w *warp, now uint64) (state WarpState, eligible bool, wake uint64) {
	// Fast path: still inside a known scoreboard-stall window.
	if now < w.stallUntil {
		return w.stallState, false, w.stallUntil
	}
	w.syncStack()
	if w.finished {
		if w.block.liveWarps > 0 && !w.deadCounted() {
			w.markDead()
			w.block.liveWarps--
			s.drainCount++
			s.checkBarrier(w.block)
			// The death may have released the block barrier, changing
			// peers classified earlier this tick: force a normal tick.
			s.tickEvent = true
		}
		// Reaped by reapFinished at the last store's completion cycle.
		return StateDrain, false, w.lastStoreDone()
	}
	if w.atBarrier {
		return StateBarrier, false, neverWake
	}
	if w.membarPending {
		if w.drainStores(now) > 0 || now < w.fenceUntil {
			return StateMembar, false, maxU64(w.lastStoreDone(), w.fenceUntil)
		}
		w.membarPending = false
	}
	if now < w.nextEligible {
		return w.eligibleReason, false, w.nextEligible
	}
	pc := w.top().pc
	if pc >= w.block.launch.Program.Len() {
		panic(fmt.Sprintf("sm %d: warp %d ran past program end (kernel %s)", s.id, w.id, w.block.launch.Program.Name))
	}
	if ok, fwake := s.ensureFetched(w, pc, now); !ok {
		return StateNoInstruction, false, fwake
	}
	d := &w.block.dec.instrs[pc]
	if ready, kind := w.scoreboardDec(d); ready > now {
		st := kind.stallState()
		w.stallUntil = ready
		w.stallState = st
		return st, false, ready
	}
	if now < sp.dispatchFree {
		return StateDispatchStall, false, sp.dispatchFree
	}
	if sp.pipeFree[d.pipe] > now {
		return d.throttle, false, sp.pipeFree[d.pipe]
	}
	switch d.queue {
	case queueLG:
		if sp.lgQueue.Full(now) {
			return StateLGThrottle, false, sp.lgQueue.NextCompletion()
		}
	case queueMIO:
		if sp.mioQueue.Full(now) {
			return StateMIOThrottle, false, sp.mioQueue.NextCompletion()
		}
	case queueTEX:
		if sp.texQueue.Full(now) {
			return StateTEXThrottle, false, sp.texQueue.NextCompletion()
		}
	}
	return StateSelected, true, now
}

// pick selects one eligible warp per the spec's scheduling policy.
// candidates holds slot indices; returns -1 when empty.
func (s *SM) pick(sp *subpart, candidates []int) int {
	if len(candidates) == 0 {
		return -1
	}
	if s.spec.SchedulingPolicy == "lrr" {
		// First eligible slot after the last issued one.
		n := len(sp.warps)
		for off := 1; off <= n; off++ {
			slot := (sp.lastIssued + off) % n
			for _, c := range candidates {
				if c == slot {
					return slot
				}
			}
		}
		return candidates[0]
	}
	// Greedy-then-oldest: keep issuing the same warp while possible,
	// otherwise the oldest (smallest launch sequence).
	for _, c := range candidates {
		if c == sp.lastIssued && sp.warps[c] != nil {
			return c
		}
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if sp.warps[c].launchSeq < sp.warps[best].launchSeq {
			best = c
		}
	}
	return best
}

// adaptiveHotTicks is the hysteresis threshold for adaptive fast-forward:
// after this many consecutive non-quiescent ticks, wakeup bookkeeping is
// pure overhead (nothing is skippable while the SM keeps issuing) and turns
// off until the next fully-idle tick.
const adaptiveHotTicks = 64

// Tick advances the SM one cycle and recomputes the fast-forward bound
// (see NextWakeup).
func (s *SM) Tick() {
	now := s.cycle
	s.ctr.ElapsedCycles++
	activeWarps := 0
	quiet := true     // no issue, reap or cross-warp event this tick
	wake := neverWake // min over ineligible warps' wakeup bounds
	track := s.wakeTrack
	if track {
		s.stateHist = [NumWarpStates]uint64{}
		s.activeSubps = 0
	}

	// candidates shares one backing array (s.candScratch) across every
	// subpartition: pick consumes it before the next truncation, and the
	// possibly re-grown backing is stored back exactly once after the loop.
	candidates := s.candScratch[:0]
	for _, sp := range s.subparts {
		if sp.nres == 0 {
			continue
		}
		candidates = candidates[:0]
		states := &s.stateScratch
		for slot, w := range sp.warps {
			if w == nil {
				continue
			}
			activeWarps++
			if now < w.wakeAt && !s.noWakeList {
				// Wake-list skip: the warp's last classify bound proves a
				// re-run now would return lastState and mutate nothing.
				// lastState is never Selected/NotSelected here (eligible
				// warps get wakeAt = 0), so the winner pass below accounts
				// the skipped warp exactly as a fresh classify would.
				states[slot] = w.lastState
				if w.wakeAt < wake {
					wake = w.wakeAt
				}
				continue
			}
			st, eligible, wb := s.classify(sp, w, now)
			states[slot] = st
			if eligible {
				candidates = append(candidates, slot)
				w.wakeAt = 0
			} else {
				if wb <= now {
					wb = now + 1
				}
				if wb < wake {
					wake = wb
				}
				w.wakeAt = wb
			}
		}
		winner := s.pick(sp, candidates)
		for slot, w := range sp.warps {
			if w == nil {
				continue
			}
			st := states[slot]
			if slot == winner {
				st = StateSelected
			} else if st == StateSelected {
				st = StateNotSelected // eligible but not picked
			}
			s.ctr.WarpStateCycles[st]++
			if track {
				s.stateHist[st]++
			}
			w.lastState = st
		}
		if winner >= 0 {
			s.issue(sp, sp.warps[winner], now)
			sp.lastIssued = winner
			quiet = false
		}
		s.ctr.SubpActiveCycles++
		if track {
			s.activeSubps++
		}
	}
	s.candScratch = candidates[:0]

	if track {
		s.histWarps = uint64(activeWarps)
	}
	s.ctr.ActiveWarpCycles += uint64(activeWarps)
	if activeWarps > 0 {
		s.ctr.ActiveCycles++
	}

	if s.drainCount > 0 && s.reapFinished(now) {
		quiet = false
	}
	if s.tickEvent {
		s.tickEvent = false
		quiet = false
	}
	s.cycle++
	if s.traceInterval > 0 && s.cycle%s.traceInterval == 0 {
		if s.deferred {
			// The snapshot must include this tick's shared-memory statistics,
			// which are still sitting in the mailbox; FinalizeEpoch takes it
			// right after merging them — the same point in the cycle's
			// observable order as the inline sample here.
			s.pendingSample = true
		} else {
			cur := s.Counters()
			s.traceSamples = append(s.traceSamples, cur.Sub(&s.traceBase))
			s.traceBase = cur
		}
	}

	if !track {
		// Bookkeeping is off: never fast-forward. Re-arm at the first
		// quiescent tick — the tick on which every subpartition sat idle —
		// or once the SM drains. That one tick's skip window is forfeited;
		// the next tick rebuilds the histogram before any skip can happen.
		if quiet || activeWarps == 0 {
			s.wakeTrack = true
			s.hotStreak = 0
		}
		s.nextWakeup = s.cycle
		return
	}
	if s.adaptiveFF && activeWarps > 0 {
		if quiet {
			s.hotStreak = 0
		} else if s.hotStreak++; s.hotStreak >= adaptiveHotTicks {
			// adaptiveHotTicks consecutive non-quiescent ticks: the SM is
			// issuing steadily, fast-forward has nothing to skip, and the
			// histogram rebuild is pure overhead. Go hot.
			s.wakeTrack = false
			s.hotStreak = 0
		}
	}
	if !quiet || wake <= s.cycle {
		s.nextWakeup = s.cycle
		return
	}
	if s.traceInterval > 0 {
		// The tick that lands one cycle before a sample boundary emits the
		// sample (cycle becomes a multiple of the interval after its
		// increment); keep that tick in the normal path so the snapshot is
		// taken exactly where the naive loop takes it.
		if b := (s.cycle/s.traceInterval+1)*s.traceInterval - 1; b < wake {
			wake = b
		}
	}
	s.nextWakeup = wake
}

// NextWakeup returns the bound computed by the most recent Tick: the
// earliest cycle at which the next Tick can differ from an exact repeat of
// the last one. When the last tick issued an instruction, reaped a warp or
// released a barrier, the bound is simply the current cycle (no skip).
// Otherwise every resident warp is blocked with a known release cycle and
// re-running Tick before the minimum of those would increment exactly the
// same counters by exactly the same amounts — which is what AdvanceTo does
// in O(warps) instead.
func (s *SM) NextWakeup() uint64 { return s.nextWakeup }

// AdvanceTo bulk-accounts the cycles [s.cycle, target) as exact repeats of
// the last tick and jumps the clock to target. Only legal up to the bound
// reported by NextWakeup; the panic guards the bit-identity invariant.
func (s *SM) AdvanceTo(target uint64) {
	if target <= s.cycle {
		return
	}
	if target > s.nextWakeup {
		panic(fmt.Sprintf("sm %d: AdvanceTo(%d) beyond wakeup bound %d", s.id, target, s.nextWakeup))
	}
	n := target - s.cycle
	for st, c := range s.stateHist {
		if c > 0 {
			s.ctr.WarpStateCycles[st] += n * c
		}
	}
	s.ctr.SubpActiveCycles += n * s.activeSubps
	s.ctr.ElapsedCycles += n
	s.ctr.ActiveWarpCycles += n * s.histWarps
	if s.histWarps > 0 {
		s.ctr.ActiveCycles += n
	}
	s.cycle = target
}

// SetAdaptiveFF enables or disables the adaptive fast-forward hysteresis.
// When disabled, wakeup bookkeeping runs on every tick (the PR3 behaviour).
// Host-side only: simulation results are identical either way.
func (s *SM) SetAdaptiveFF(on bool) {
	s.adaptiveFF = on
	if !on {
		s.wakeTrack = true
		s.hotStreak = 0
	}
}

// ResidencyVersion increments whenever the SM's resource occupancy changes
// (block launched or warp reaped). The device's dispatcher uses it as a
// dirty flag: an SM that rejected a block keeps rejecting it until the
// version moves, because CanAccept is a pure function of occupancy.
func (s *SM) ResidencyVersion() uint64 { return s.residencyVer }

// reapFinished frees warps whose threads have all exited and whose stores
// have drained, and retires completed blocks. Returns whether anything was
// freed (a residency event that invalidates fast-forward bounds).
func (s *SM) reapFinished(now uint64) bool {
	reaped := false
	for _, sp := range s.subparts {
		for slot, w := range sp.warps {
			if w == nil || !w.finished {
				continue
			}
			if w.drainStores(now) > 0 {
				continue
			}
			sp.warps[slot] = nil
			sp.nres--
			s.drainCount--
			if cap(w.storesPending) > 0 {
				s.storePool = append(s.storePool, w.storesPending[:0])
			}
			s.residentWarps--
			s.residentThreads -= int(popcount(w.members))
			s.residentRegs -= len(w.regs) * int(popcount(w.members))
			s.residencyVer++
			reaped = true
			w.block.remaining--
			if w.block.remaining == 0 {
				s.retireBlock(w.block)
			}
		}
	}
	return reaped
}

func (s *SM) retireBlock(b *blockCtx) {
	for i, blk := range s.blocks {
		if blk == b {
			s.blocks = append(s.blocks[:i], s.blocks[i+1:]...)
			break
		}
	}
	s.residentBlocks--
	s.residentShared -= b.launch.SharedBytes()
}

// CheckQueues calls report for every timed structure whose live entries are
// out of order: the per-subpartition LG/MIO/TEX instruction queues. The
// invariant checker uses it to assert the monotone-completion property that
// NextCompletion (and hence every fast-forward wakeup bound) depends on.
func (s *SM) CheckQueues(report func(queue string, subpart int)) {
	for i, sp := range s.subparts {
		if !sp.lgQueue.Sorted() {
			report("lg", i)
		}
		if !sp.mioQueue.Sorted() {
			report("mio", i)
		}
		if !sp.texQueue.Sorted() {
			report("tex", i)
		}
	}
}

// ResidentWarps returns the number of warps currently resident — the
// occupancy figure the invariant checker crosses against the warp-state
// histogram.
func (s *SM) ResidentWarps() int { return s.residentWarps }

// Counters returns the SM's counters including the memory-path statistics.
func (s *SM) Counters() Counters {
	c := s.ctr
	st := s.dp.Stats()
	c.GlobalLoads = st.GlobalLoads
	c.GlobalStores = st.GlobalStores
	c.LoadSectors = st.LoadSectors
	c.StoreSectors = st.StoreSectors
	c.L1Hits = st.L1Hits
	c.L1Misses = st.L1Misses
	c.L2Hits = st.L2Hits
	c.L2Misses = st.L2Misses
	c.ConstLoads = st.ConstLoads
	c.IMCHits = st.IMCHits
	c.IMCMisses = st.IMCMisses
	c.TexFetches = st.TexFetches
	c.Atomics = st.Atomics
	return c
}

// ResetCounters zeroes all statistics (between profiler passes).
func (s *SM) ResetCounters() {
	s.ctr = Counters{}
	s.dp.ResetStats()
}

// FlushCaches invalidates the SM-private caches (between profiler passes).
func (s *SM) FlushCaches() {
	s.dp.Flush()
	s.icache.Flush()
}

// FlushIMC invalidates the immediate-constant cache, done at every kernel
// launch since constant-bank contents change with it.
func (s *SM) FlushIMC() { s.dp.FlushIMC() }

// EnableTrace starts per-interval counter snapshots (an intra-kernel
// timeline). interval is in cycles; 0 disables. Existing samples are
// discarded and the delta base is re-anchored at the current counters.
func (s *SM) EnableTrace(interval uint64) {
	s.traceInterval = interval
	s.traceSamples = nil
	s.traceBase = s.Counters()
}

// DisableTrace stops tracing and clears samples.
func (s *SM) DisableTrace() {
	s.traceInterval = 0
	s.traceSamples = nil
}

// TraceSamples returns the per-interval counter deltas recorded since
// EnableTrace, oldest first.
func (s *SM) TraceSamples() []Counters { return s.traceSamples }

// ResetClock rewinds the SM's cycle counter and pipeline bookkeeping to zero
// between kernel launches. Only legal when idle.
func (s *SM) ResetClock() {
	if s.Busy() {
		panic(fmt.Sprintf("sm %d: ResetClock while busy", s.id))
	}
	s.cycle = 0
	s.fetchBusy = 0
	s.nextWakeup = 0
	s.tickEvent = false
	s.wakeTrack = true
	s.hotStreak = 0
	s.reqs = s.reqs[:0]
	s.pendingSample = false
	for _, sp := range s.subparts {
		sp.pipeFree = [isa.NumPipes]uint64{}
		sp.dispatchFree = 0
		sp.lgQueue.Reset()
		sp.mioQueue.Reset()
		sp.texQueue.Reset()
		sp.lastIssued = 0
	}
}

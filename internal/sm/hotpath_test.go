package sm

import (
	"testing"

	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
)

// TestDecodeMatchesOpInfo pins the decoded-instruction cache to the inline
// computations it replaced: for every opcode, every decoded field must equal
// the value classify/issue would have derived from isa.OpInfo on the fly.
func TestDecodeMatchesOpInfo(t *testing.T) {
	s := testSMBacked()
	spec := s.spec
	for op := isa.Op(0); int(op) < isa.NumOps; op++ {
		for _, size := range []uint8{4, 8} {
			in := isa.Instr{
				Op:   op,
				Dst:  isa.R(4),
				Srcs: [3]isa.Reg{isa.R(1), isa.R(2), isa.R(3)},
				Pred: isa.P1,
				PDst: isa.P2,
				Size: size,
			}
			info := op.Info()
			d := s.decodeInstr(&in)
			if d.pipe != info.Pipe {
				t.Errorf("%s: pipe %v, want %v", op, d.pipe, info.Pipe)
			}
			if d.throttle != throttleState(info.Pipe) {
				t.Errorf("%s: throttle %v, want %v", op, d.throttle, throttleState(info.Pipe))
			}
			if d.isMem != (info.IsLoad || info.IsStore) {
				t.Errorf("%s: isMem %v", op, d.isMem)
			}
			wantQ := queueNone
			switch {
			case info.Pipe == isa.PipeLSU && op != isa.OpLDC:
				wantQ = queueLG
			case info.Pipe == isa.PipeMIO:
				wantQ = queueMIO
			case info.Pipe == isa.PipeTEX:
				wantQ = queueTEX
			}
			if d.queue != wantQ {
				t.Errorf("%s: queue %d, want %d", op, d.queue, wantQ)
			}
			if want := uint64(ceilDiv(kernel.WarpSize, spec.PipeLanes[info.Pipe])); d.ii != want {
				t.Errorf("%s: ii %d, want %d", op, d.ii, want)
			}
			wantDispatch := uint64(1)
			if d.isMem && size == 8 || info.Pipe == isa.PipeFP64 {
				wantDispatch = 2
			}
			if d.dispatch != wantDispatch {
				t.Errorf("%s size %d: dispatch %d, want %d", op, size, d.dispatch, wantDispatch)
			}
			var wantLat uint64
			switch info.Pipe {
			case isa.PipeFMA:
				wantLat = uint64(spec.FMALatency)
			case isa.PipeFP64:
				wantLat = uint64(spec.FP64Latency)
			case isa.PipeSFU:
				wantLat = uint64(spec.SFULatency)
			default:
				wantLat = uint64(spec.ALULatency)
			}
			if d.lat != wantLat {
				t.Errorf("%s: lat %d, want %d", op, d.lat, wantLat)
			}
			regs, n := in.SourceRegs()
			if int(d.nsrcs) != n || d.srcs != regs {
				t.Errorf("%s: srcs %v/%d, want %v/%d", op, d.srcs, d.nsrcs, regs, n)
			}
			if d.checkDst != info.WritesDst {
				t.Errorf("%s: checkDst %v, want %v", op, d.checkDst, info.WritesDst)
			}
			if d.pred != in.Pred {
				t.Errorf("%s: pred %v", op, d.pred)
			}
			wantPDst := isa.PT
			if op == isa.OpSEL || op == isa.OpVOTE {
				wantPDst = in.PDst
			}
			if d.pdstRead != wantPDst {
				t.Errorf("%s: pdstRead %v, want %v", op, d.pdstRead, wantPDst)
			}
		}
	}
}

// TestDecodeProgramCached pins the per-SM memoisation: decoding the same
// program twice must return the same table, and distinct programs distinct
// tables.
func TestDecodeProgramCached(t *testing.T) {
	s := testSMBacked()
	p1 := singleWarpLaunch().Program
	p2 := barrierDrainLaunch().Program
	d1 := s.decodeProgram(p1)
	if s.decodeProgram(p1) != d1 {
		t.Error("re-decoding the same program built a new table")
	}
	if s.decodeProgram(p2) == d1 {
		t.Error("distinct programs share a decoded table")
	}
	if len(d1.instrs) != p1.Len() {
		t.Errorf("decoded table has %d entries for a %d-instruction program", len(d1.instrs), p1.Len())
	}
}

// runOneBlockWake is runOneBlock with the wake-list skip forced off, giving
// the classify-every-warp-every-tick reference engine.
func runOneBlockWake(t *testing.T, l *kernel.Launch, ff, noWakeList bool) smRun {
	t.Helper()
	s := testSMBacked()
	s.noWakeList = noWakeList
	if !s.CanAccept(l) {
		t.Fatalf("block of %s does not fit on an idle SM", l.Program.Name)
	}
	s.LaunchBlock(l, [3]int64{}, 0)
	var r smRun
	for guard := 0; s.Busy(); guard++ {
		if guard > 2_000_000 {
			t.Fatalf("%s: SM did not go idle", l.Program.Name)
		}
		s.Tick()
		if ff {
			if w := s.NextWakeup(); w > s.Cycle() {
				s.AdvanceTo(w)
				r.skips++
			}
		}
	}
	r.ctr = s.Counters()
	r.cycles = s.Cycle()
	return r
}

// TestWakeListEquivalence demands bit-identical counters with the per-warp
// wake-list skip on and off, for kernels covering barrier release by a dying
// peer, store drain, long-scoreboard stalls and empty subpartitions — the
// cases where a stale skip would mis-account warp states.
func TestWakeListEquivalence(t *testing.T) {
	for _, l := range []*kernel.Launch{barrierDrainLaunch(), singleWarpLaunch()} {
		ref := runOneBlockWake(t, l, false, true)
		for _, ff := range []bool{false, true} {
			got := runOneBlockWake(t, l, ff, false)
			if got.cycles != ref.cycles {
				t.Errorf("%s ff=%v: cycles %d, want %d", l.Program.Name, ff, got.cycles, ref.cycles)
			}
			if got.ctr != ref.ctr {
				t.Errorf("%s ff=%v: counters diverge from no-wake-list engine:\nref: %+v\ngot: %+v",
					l.Program.Name, ff, ref.ctr, got.ctr)
			}
		}
	}
}

// TestWakeListSkipsClassify verifies the wake-list actually arms: during a
// long-scoreboard stall the stalled warp must carry a bound strictly past
// the next cycle, which is what lets Tick bypass classify for it.
func TestWakeListSkipsClassify(t *testing.T) {
	s := testSMBacked()
	l := singleWarpLaunch()
	s.LaunchBlock(l, [3]int64{}, 0)
	armed := false
	for guard := 0; s.Busy() && !armed; guard++ {
		if guard > 2_000_000 {
			t.Fatal("SM did not go idle")
		}
		s.Tick()
		for _, sp := range s.subparts {
			for _, w := range sp.warps {
				if w != nil && w.wakeAt > s.Cycle()+1 {
					armed = true
				}
			}
		}
	}
	if !armed {
		t.Error("no warp ever armed a wake-list bound past the next cycle")
	}
}

// multiSubpartLaunch builds one block whose warps land on every
// subpartition: 8 warps of straight-line ALU work.
func multiSubpartLaunch() *kernel.Launch {
	b := kernel.NewBuilder("multisubp")
	gid := b.GlobalIDX()
	x := b.I2F(gid)
	for i := 0; i < 6; i++ {
		x = b.FFma(x, x, x)
	}
	addr := b.IAddImm(b.Shl(gid, 2), 4096)
	b.Stg(addr, x, 0, 4)
	b.Exit()
	return &kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 256},
	}
}

// TestCandScratchSingleBacking pins the candidate-scratch invariant: one
// backing array, sized to a single subpartition's slots, serves every
// subpartition of every tick without ever being regrown — pick always
// consumes the slice before the next truncation.
func TestCandScratchSingleBacking(t *testing.T) {
	s := testSMBacked()
	l := multiSubpartLaunch()
	s.LaunchBlock(l, [3]int64{}, 0)
	if cap(s.candScratch) != s.spec.WarpSlotsPerSubpartition {
		t.Fatalf("initial candScratch cap %d, want %d", cap(s.candScratch), s.spec.WarpSlotsPerSubpartition)
	}
	base := &s.candScratch[:1][0]
	for guard := 0; s.Busy(); guard++ {
		if guard > 2_000_000 {
			t.Fatal("SM did not go idle")
		}
		s.Tick()
	}
	if got := &s.candScratch[:1][0]; got != base {
		t.Error("candScratch backing was reallocated during the run")
	}
	// Every warp of every subpartition executed the whole program exactly
	// once: cross-subpartition scheduling stayed correct while sharing the
	// one backing.
	want := uint64(256 / kernel.WarpSize * l.Program.Len())
	if got := s.Counters().InstExecuted; got != want {
		t.Errorf("InstExecuted %d, want %d", got, want)
	}
}

// steadyLaunch builds a long-running single block (a deep FFMA reduction
// loop) that keeps all subpartitions busy for thousands of cycles with no
// launches or reaps — the steady state the allocation gate measures.
func steadyLaunch() *kernel.Launch {
	b := kernel.NewBuilder("steady")
	gid := b.GlobalIDX()
	x := b.I2F(gid)
	b.ForImm(0, 2000, 1)
	x = b.FFma(x, x, x)
	b.EndFor()
	addr := b.IAddImm(b.Shl(gid, 2), 4096)
	b.Stg(addr, x, 0, 4)
	b.Exit()
	return &kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 256},
	}
}

// TestTickSteadyStateAllocs is the zero-allocation gate on the cycle loop:
// with tracing off, a steady-state Tick must not allocate at all.
func TestTickSteadyStateAllocs(t *testing.T) {
	s := testSMBacked()
	s.LaunchBlock(steadyLaunch(), [3]int64{}, 0)
	for i := 0; i < 200 && s.Busy(); i++ {
		s.Tick() // warm up: fetch, decode, scratch growth
	}
	if !s.Busy() {
		t.Fatal("steady kernel drained during warm-up; lengthen the loop")
	}
	allocs := testing.AllocsPerRun(400, func() { s.Tick() })
	if allocs != 0 {
		t.Errorf("steady-state Tick allocates %v per call, want 0", allocs)
	}
	if !s.Busy() {
		t.Fatal("steady kernel drained during measurement; lengthen the loop")
	}
}

// memSteadyLaunch is steadyLaunch with a strided global load/store pair in
// the loop body, driving the coalescer and LG queue every iteration.
func memSteadyLaunch() *kernel.Launch {
	b := kernel.NewBuilder("memsteady")
	gid := b.GlobalIDX()
	addr := b.IAddImm(b.Shl(gid, 3), 8192) // stride 8: two sectors per warp quad
	b.ForImm(0, 2000, 1)
	v := b.Ldg(addr, 0, 4)
	b.Stg(addr, v, 4, 4)
	b.EndFor()
	b.Exit()
	return &kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 256},
	}
}

// TestIssueMemorySteadyStateAllocs extends the zero-allocation gate to the
// memory issue path: coalescing into the SM scratch buffer and the pooled
// store lists must not allocate once warm.
func TestIssueMemorySteadyStateAllocs(t *testing.T) {
	s := testSMBacked()
	s.LaunchBlock(memSteadyLaunch(), [3]int64{}, 0)
	for i := 0; i < 3000 && s.Busy(); i++ {
		s.Tick()
	}
	if !s.Busy() {
		t.Fatal("memory kernel drained during warm-up; lengthen the loop")
	}
	allocs := testing.AllocsPerRun(400, func() { s.Tick() })
	if allocs != 0 {
		t.Errorf("steady-state memory Tick allocates %v per call, want 0", allocs)
	}
}

// TestStorePoolRecycles pins the storesPending slab pool: after a launch's
// warps are reaped, relaunching must reuse their backings instead of growing
// fresh ones.
func TestStorePoolRecycles(t *testing.T) {
	s := testSMBacked()
	l := multiSubpartLaunch()
	run := func() {
		s.LaunchBlock(l, [3]int64{}, 0)
		for guard := 0; s.Busy(); guard++ {
			if guard > 2_000_000 {
				t.Fatal("SM did not go idle")
			}
			s.Tick()
		}
	}
	run()
	if len(s.storePool) == 0 {
		t.Fatal("no store slabs returned to the pool after reap")
	}
	pooled := len(s.storePool)
	run()
	if len(s.storePool) != pooled {
		t.Errorf("pool size drifted across an identical relaunch: %d -> %d (slabs not recycled)", pooled, len(s.storePool))
	}
}

// saturatingLaunch fills every warp slot (8 warps per subpartition) with
// independent FFMA/IADD chains so some warp can issue on every cycle —
// the maxflops-like regime the adaptive hysteresis exists for.
func saturatingLaunch() *kernel.Launch {
	b := kernel.NewBuilder("saturate")
	gid := b.GlobalIDX()
	x := b.I2F(gid)
	y := b.MovImm(3)
	b.ForImm(0, 300, 1)
	x = b.FFma(x, x, x)
	y = b.IAdd(y, y)
	x = b.FFma(x, x, x)
	y = b.IAdd(y, y)
	b.EndFor()
	addr := b.IAddImm(b.Shl(gid, 2), 4096)
	b.Stg(addr, b.IAdd(b.F2I(x), y), 0, 4)
	b.Exit()
	return &kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 1024},
	}
}

// TestAdaptiveFFGoesHotAndRearms drives a saturating ALU kernel and checks
// the hysteresis actually disables tracking, then re-arms by drain time —
// with counters identical to the non-adaptive engine.
func TestAdaptiveFFGoesHotAndRearms(t *testing.T) {
	l := saturatingLaunch()

	run := func(adaptive bool) (Counters, uint64, bool) {
		s := testSMBacked()
		s.SetAdaptiveFF(adaptive)
		s.LaunchBlock(l, [3]int64{}, 0)
		wentHot := false
		for guard := 0; s.Busy(); guard++ {
			if guard > 2_000_000 {
				t.Fatal("SM did not go idle")
			}
			s.Tick()
			if !s.wakeTrack {
				wentHot = true
			}
			if w := s.NextWakeup(); w > s.Cycle() {
				s.AdvanceTo(w)
			}
		}
		if !s.wakeTrack {
			t.Error("tracking still off after drain; re-arm failed")
		}
		return s.Counters(), s.Cycle(), wentHot
	}

	ctrAdaptive, cycAdaptive, hot := run(true)
	if !hot {
		t.Error("adaptive hysteresis never disabled tracking on a saturating kernel")
	}
	ctrAlways, cycAlways, hotOff := run(false)
	if hotOff {
		t.Error("tracking disabled with adaptive fast-forward off")
	}
	if ctrAdaptive != ctrAlways || cycAdaptive != cycAlways {
		t.Errorf("adaptive engine diverged: cycles %d vs %d", cycAdaptive, cycAlways)
	}
}

func benchTickLoop(b *testing.B, l *kernel.Launch) {
	s := testSMBacked()
	s.LaunchBlock(l, [3]int64{}, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Busy() {
			s.LaunchBlock(l, [3]int64{}, 0)
		}
		s.Tick()
	}
}

// BenchmarkIssueALU measures the per-cycle cost of a saturated ALU SM —
// the decoded-cache and adaptive-tracking fast path.
func BenchmarkIssueALU(b *testing.B) {
	benchTickLoop(b, steadyLaunch())
}

// BenchmarkIssueMemory measures the per-cycle cost with the LSU path hot:
// coalescing, queue pushes and store tracking.
func BenchmarkIssueMemory(b *testing.B) {
	benchTickLoop(b, memSteadyLaunch())
}

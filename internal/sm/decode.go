package sm

import (
	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
)

// The decoded-instruction cache precomputes, once per (program, SM), every
// piece of issue metadata that classify and issue would otherwise rederive
// from isa.OpInfo on every cycle: the execution pipe and its throttle
// classification, the front-end queue that gates issue, the compacted
// non-RZ source-register list for the scoreboard, the guard and read
// predicates, the initiation interval and dispatch occupancy, the
// fixed-latency completion time, and whether the static register operands
// collide in a register-file bank. All of these are pure functions of the
// instruction and the GPU spec, so hoisting them out of the per-cycle path
// cannot change any simulation result — only host time.

// queue class an instruction must find non-full before issuing.
const (
	queueNone uint8 = iota
	queueLG
	queueMIO
	queueTEX
)

// decodedInstr is the per-program issue metadata for one isa.Instr. It is
// read on every classify and every issue of that instruction; the original
// Instr is still consulted for functional semantics (immediates, lane
// operands, branch targets).
type decodedInstr struct {
	srcs  [3]isa.Reg // non-RZ GPR sources, compacted
	nsrcs uint8
	dst   isa.Reg
	// checkDst enables the WAW hazard check on dst.
	checkDst bool
	// pred is the guard predicate (PT = unpredicated); pdstRead is the
	// predicate read through PDst by SEL/VOTE (PT = none).
	pred     isa.PredReg
	pdstRead isa.PredReg

	pipe isa.Pipe
	// throttle is the warp state reported while pipe is busy.
	throttle WarpState
	// queue selects the front-end queue whose fullness blocks issue.
	queue uint8
	isMem bool // load or store: issue charges replay dispatch cycles

	// bankConflict marks statically colliding source registers (the operand
	// collector needs an extra cycle; see issue).
	bankConflict bool

	// ii is the pipe initiation interval; dispatch the base dispatch-unit
	// occupancy in cycles; lat the fixed-latency result completion delay for
	// the instruction's pipe (ALU/FMA/FP64/SFU — unused by memory ops).
	ii       uint64
	dispatch uint64
	lat      uint64
}

// decodedProgram is the flat decoded table for one kernel program.
type decodedProgram struct {
	instrs []decodedInstr
}

// throttleState maps a busy pipe to the stall classification the warp
// reports while waiting for it.
func throttleState(p isa.Pipe) WarpState {
	switch p {
	case isa.PipeLSU:
		return StateLGThrottle
	case isa.PipeMIO:
		return StateMIOThrottle
	case isa.PipeTEX:
		return StateTEXThrottle
	default:
		return StateMathPipeThrottle
	}
}

// decodeInstr computes the issue metadata of one instruction under the SM's
// spec. Every field mirrors a computation previously performed inline in
// classify/issue; the equivalence is pinned by TestDecodeMatchesOpInfo.
func (s *SM) decodeInstr(in *isa.Instr) decodedInstr {
	spec := s.spec
	info := in.Op.Info()
	d := decodedInstr{
		dst:      in.Dst,
		checkDst: info.WritesDst,
		pred:     in.Pred,
		pdstRead: isa.PT,
		pipe:     info.Pipe,
		throttle: throttleState(info.Pipe),
		isMem:    info.IsLoad || info.IsStore,
		ii:       uint64(ceilDiv(kernel.WarpSize, spec.PipeLanes[info.Pipe])),
		dispatch: 1,
	}
	d.srcs, d.nsrcs = func() ([3]isa.Reg, uint8) {
		regs, n := in.SourceRegs()
		return regs, uint8(n)
	}()
	if in.Op == isa.OpSEL || in.Op == isa.OpVOTE {
		d.pdstRead = in.PDst
	}
	switch info.Pipe {
	case isa.PipeLSU:
		if in.Op != isa.OpLDC {
			d.queue = queueLG
		}
	case isa.PipeMIO:
		d.queue = queueMIO
	case isa.PipeTEX:
		d.queue = queueTEX
	}
	if d.isMem && in.Size == 8 || info.Pipe == isa.PipeFP64 {
		d.dispatch = 2
	}
	switch info.Pipe {
	case isa.PipeFMA:
		d.lat = uint64(spec.FMALatency)
	case isa.PipeFP64:
		d.lat = uint64(spec.FP64Latency)
	case isa.PipeSFU:
		d.lat = uint64(spec.SFULatency)
	default:
		d.lat = uint64(spec.ALULatency)
	}
	// Register-file bank collision between distinct source registers is a
	// property of the static operands alone. Identical registers in the
	// 2-source case broadcast and never conflict.
	if banks := spec.RegFileBanks; banks > 1 && info.NumSrcs >= 2 {
		seen := 0
		conflict := false
		for i := 0; i < info.NumSrcs; i++ {
			r := in.Srcs[i]
			if r == isa.RZ {
				continue
			}
			bit := 1 << (int(r) % banks)
			if seen&bit != 0 {
				conflict = true
				break
			}
			seen |= bit
		}
		if conflict && !(info.NumSrcs == 2 && in.Srcs[0] == in.Srcs[1]) {
			d.bankConflict = true
		}
	}
	return d
}

// decodeProgram returns the SM's decoded table for p, building and caching
// it on first use. The cache is keyed by program identity: workloads reuse
// one Program value across launches (and replay passes re-launch the same
// programs), so in steady state LaunchBlock performs one map lookup and no
// decoding. The table depends on the SM's spec, which is immutable after
// construction, so a cached entry never goes stale.
func (s *SM) decodeProgram(p *kernel.Program) *decodedProgram {
	if d, ok := s.progCache[p]; ok {
		return d
	}
	d := &decodedProgram{instrs: make([]decodedInstr, len(p.Instrs))}
	for i := range p.Instrs {
		d.instrs[i] = s.decodeInstr(&p.Instrs[i])
	}
	if s.progCache == nil {
		s.progCache = make(map[*kernel.Program]*decodedProgram)
	}
	s.progCache[p] = d
	return d
}

// scoreboardDec is scoreboardBlock over the decoded metadata: the
// latest-ready operand among compacted sources, the WAW destination and the
// read predicates, with its dependency class.
func (w *warp) scoreboardDec(d *decodedInstr) (uint64, depKind) {
	var ready uint64
	kind := depNone
	for i := 0; i < int(d.nsrcs); i++ {
		r := d.srcs[i]
		if int(r) < len(w.regReady) && w.regReady[r] > ready {
			ready = w.regReady[r]
			kind = w.regDep[r]
		}
	}
	if d.checkDst {
		if r := d.dst; r != isa.RZ && int(r) < len(w.regReady) && w.regReady[r] > ready {
			ready = w.regReady[r]
			kind = w.regDep[r]
		}
	}
	if d.pred != isa.PT && w.predReady[d.pred] > ready {
		ready = w.predReady[d.pred]
		kind = depFixed
	}
	if d.pdstRead != isa.PT && w.predReady[d.pdstRead] > ready {
		ready = w.predReady[d.pdstRead]
		kind = depFixed
	}
	return ready, kind
}

package sm

import (
	"fmt"
	"math"
	"math/bits"

	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
	"gputopdown/internal/mem"
)

func f32bits(f float32) uint64 { return uint64(math.Float32bits(f)) }
func f32val(b uint64) float32  { return math.Float32frombits(uint32(b)) }
func f64bits(f float64) uint64 { return math.Float64bits(f) }
func f64val(b uint64) float64  { return math.Float64frombits(b) }
func ceilDiv(a, b int) int     { return (a + b - 1) / b }
func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// issue executes the next instruction of the selected warp: functional
// semantics first (real register values, real addresses), then timing
// (scoreboard completion times, pipe initiation intervals, queue pushes,
// replay accounting).
func (s *SM) issue(sp *subpart, w *warp, now uint64) {
	topIdx := len(w.stack) - 1
	pc := w.stack[topIdx].pc
	in := &w.block.launch.Program.Instrs[pc]
	d := &w.block.dec.instrs[pc]
	active := w.activeMask()
	pmask := w.predMask(in.Pred, in.PredNeg) & active
	spec := s.spec

	s.ctr.InstIssued++
	s.ctr.InstExecuted++
	s.ctr.ThreadInstExecuted += popcount(pmask)
	if len(w.stack) > 1 && spec.DivergenceMitigation > 0 {
		// Post-Volta independent thread scheduling lets idle lanes of a
		// divergent warp make progress on the other path; credit a fraction
		// of them as executed thread-instructions (affects warp efficiency
		// only — see DESIGN.md).
		idle := popcount((w.members &^ w.exited) &^ active)
		s.ctr.ThreadInstExecuted += uint64(spec.DivergenceMitigation * float64(idle))
	}

	// Register-file bank conflict between distinct source registers: the
	// operand collector needs an extra cycle, surfacing as a "misc" stall on
	// the warp's next instruction. A static property, precomputed at decode.
	if d.bankConflict {
		s.ctr.RegBankConflicts++
		if w.nextEligible < now+2 {
			w.nextEligible = now + 2
			w.eligibleReason = StateMisc
		}
	}

	// Initiation interval: the pipe is occupied for warpSize/lanes cycles.
	ii := d.ii
	dispatchCycles := d.dispatch
	advancePC := true

	switch {
	case in.Op == isa.OpNOP:
		// nothing

	case in.Op == isa.OpS2R:
		s.execS2R(w, in, pmask, now)
		w.setRegReady(in.Dst, now+uint64(spec.ALULatency), depFixed)

	case in.Op == isa.OpMOV32:
		for lane := 0; lane < 32; lane++ {
			if pmask&(1<<lane) != 0 {
				w.regs[in.Dst][lane] = uint64(in.Imm)
			}
		}
		w.setRegReady(in.Dst, now+uint64(spec.ALULatency), depFixed)

	case in.Op == isa.OpMOV:
		for lane := 0; lane < 32; lane++ {
			if pmask&(1<<lane) != 0 {
				w.regs[in.Dst][lane] = w.readReg(in.Srcs[0], lane)
			}
		}
		w.setRegReady(in.Dst, now+uint64(spec.ALULatency), depFixed)

	case in.Op == isa.OpSEL:
		sel := w.predMask(in.PDst, false)
		for lane := 0; lane < 32; lane++ {
			if pmask&(1<<lane) == 0 {
				continue
			}
			if sel&(1<<lane) != 0 {
				w.regs[in.Dst][lane] = w.readReg(in.Srcs[0], lane)
			} else {
				w.regs[in.Dst][lane] = w.readReg(in.Srcs[1], lane)
			}
		}
		w.setRegReady(in.Dst, now+uint64(spec.ALULatency), depFixed)

	case in.Op == isa.OpVOTE:
		ballot := uint64(w.preds[in.PDst] & pmask)
		if in.PDst == isa.PT {
			ballot = uint64(pmask)
		}
		for lane := 0; lane < 32; lane++ {
			if pmask&(1<<lane) != 0 {
				w.regs[in.Dst][lane] = ballot
			}
		}
		w.setRegReady(in.Dst, now+uint64(spec.ALULatency), depFixed)

	case in.Op == isa.OpSHFL:
		var snap [32]uint64
		for lane := 0; lane < 32; lane++ {
			snap[lane] = w.readReg(in.Srcs[0], lane)
		}
		for lane := 0; lane < 32; lane++ {
			if pmask&(1<<lane) != 0 {
				w.regs[in.Dst][lane] = snap[lane^int(in.Imm&31)]
			}
		}
		done := now + uint64(spec.SharedLatency)/2
		w.setRegReady(in.Dst, done, depShort)
		sp.mioQueue.Push(done)

	case in.Op == isa.OpMUFU:
		for lane := 0; lane < 32; lane++ {
			if pmask&(1<<lane) == 0 {
				continue
			}
			x := f32val(w.readReg(in.Srcs[0], lane))
			var r float32
			switch in.Mufu {
			case isa.MufuRCP:
				r = 1 / x
			case isa.MufuRSQ:
				r = float32(1 / math.Sqrt(float64(x)))
			case isa.MufuSQRT:
				r = float32(math.Sqrt(float64(x)))
			case isa.MufuSIN:
				r = float32(math.Sin(float64(x)))
			case isa.MufuCOS:
				r = float32(math.Cos(float64(x)))
			case isa.MufuLG2:
				r = float32(math.Log2(float64(x)))
			case isa.MufuEX2:
				r = float32(math.Exp2(float64(x)))
			}
			w.regs[in.Dst][lane] = f32bits(r)
		}
		w.setRegReady(in.Dst, now+uint64(spec.SFULatency), depFixed)

	case in.Op == isa.OpISETP || in.Op == isa.OpFSETP || in.Op == isa.OpDSETP:
		s.execSetp(w, in, pmask, now)

	case d.pipe == isa.PipeALU || d.pipe == isa.PipeFMA || d.pipe == isa.PipeFP64:
		s.execALU(w, in, pmask, now, d.lat)

	case d.isMem:
		extraIssues, pipeBusy := s.execMemory(sp, w, in, pmask, now)
		s.ctr.InstIssued += uint64(extraIssues)
		if pipeBusy > ii {
			ii = pipeBusy
		}
		// Replayed issues occupy the dispatch unit for real cycles, so the
		// subpartition's issue rate (and hence issued IPC) stays bounded by
		// its dispatch bandwidth.
		dispatchCycles += uint64(extraIssues)

	case in.Op == isa.OpBRA:
		s.ctr.BranchInstrs++
		taken := pmask
		notTaken := active &^ taken
		top := &w.stack[topIdx]
		switch {
		case taken == 0:
			top.pc = pc + 1
		case notTaken == 0:
			top.pc = in.Target
		default:
			s.ctr.DivergentBranches++
			top.pc = in.Recon // this entry becomes the reconvergence point
			w.stack = append(w.stack,
				stackEntry{pc: in.Target, rpc: in.Recon, mask: taken},
				stackEntry{pc: pc + 1, rpc: in.Recon, mask: notTaken},
			)
		}
		advancePC = false
		if w.nextEligible < now+uint64(spec.BranchLatency) {
			w.nextEligible = now + uint64(spec.BranchLatency)
			w.eligibleReason = StateBranchResolving
		}

	case in.Op == isa.OpEXIT:
		w.exited |= pmask

	case in.Op == isa.OpBAR:
		w.atBarrier = true
		w.block.arrived++
		// The release check runs after advancing the PC so the warp resumes
		// past the barrier.

	case in.Op == isa.OpMEMBAR:
		w.membarPending = true

	case in.Op == isa.OpNANOSLEEP:
		if in.Imm > 0 {
			w.nextEligible = now + uint64(in.Imm)
			w.eligibleReason = StateSleeping
		}

	default:
		panic(fmt.Sprintf("sm: unhandled opcode %s", in.Op))
	}

	if advancePC {
		w.stack[topIdx].pc = pc + 1
	}
	if in.Op == isa.OpBAR {
		s.checkBarrier(w.block)
	}

	sp.pipeFree[d.pipe] = now + ii
	sp.dispatchFree = now + dispatchCycles
}

func (s *SM) execS2R(w *warp, in *isa.Instr, pmask uint32, now uint64) {
	blk := w.block
	grid := blk.launch.Grid.Norm()
	block := blk.launch.Block.Norm()
	for lane := 0; lane < 32; lane++ {
		if pmask&(1<<lane) == 0 {
			continue
		}
		var v int64
		switch isa.SpecialReg(in.Imm) {
		case isa.SRTidX:
			x, _, _ := blk.threadID(w.warpInBlock, lane)
			v = x
		case isa.SRTidY:
			_, y, _ := blk.threadID(w.warpInBlock, lane)
			v = y
		case isa.SRTidZ:
			_, _, z := blk.threadID(w.warpInBlock, lane)
			v = z
		case isa.SRCtaIDX:
			v = blk.ctaid[0]
		case isa.SRCtaIDY:
			v = blk.ctaid[1]
		case isa.SRCtaIDZ:
			v = blk.ctaid[2]
		case isa.SRNTidX:
			v = int64(block.X)
		case isa.SRNTidY:
			v = int64(block.Y)
		case isa.SRNTidZ:
			v = int64(block.Z)
		case isa.SRNCtaIDX:
			v = int64(grid.X)
		case isa.SRNCtaIDY:
			v = int64(grid.Y)
		case isa.SRNCtaIDZ:
			v = int64(grid.Z)
		case isa.SRLaneID:
			v = int64(lane)
		case isa.SRWarpID:
			v = int64(w.warpInBlock)
		case isa.SRClockLo:
			v = int64(now)
		}
		w.regs[in.Dst][lane] = uint64(v)
	}
}

// readReg returns a lane's register value, with RZ reading zero.
func (w *warp) readReg(r isa.Reg, lane int) uint64 {
	if r == isa.RZ {
		return 0
	}
	return w.regs[r][lane]
}

// intOperandB implements the uniform "operand B = Srcs[1] + Imm" rule for
// integer operations, which gives immediate forms when Srcs[1] is RZ.
func (w *warp) intOperandB(in *isa.Instr, lane int) int64 {
	return int64(w.readReg(in.Srcs[1], lane)) + in.Imm
}

func (s *SM) execSetp(w *warp, in *isa.Instr, pmask uint32, now uint64) {
	var result uint32
	for lane := 0; lane < 32; lane++ {
		if pmask&(1<<lane) == 0 {
			continue
		}
		var cmp int // -1, 0, +1
		switch in.Op {
		case isa.OpISETP:
			a := int64(w.readReg(in.Srcs[0], lane))
			b := w.intOperandB(in, lane)
			switch {
			case a < b:
				cmp = -1
			case a > b:
				cmp = 1
			}
		case isa.OpFSETP:
			a := f32val(w.readReg(in.Srcs[0], lane))
			b := f32val(w.readReg(in.Srcs[1], lane))
			if in.Srcs[1] == isa.RZ && in.Imm != 0 {
				b = f32val(uint64(in.Imm))
			}
			switch {
			case a < b:
				cmp = -1
			case a > b:
				cmp = 1
			}
		case isa.OpDSETP:
			a := f64val(w.readReg(in.Srcs[0], lane))
			b := f64val(w.readReg(in.Srcs[1], lane))
			if in.Srcs[1] == isa.RZ && in.Imm != 0 {
				b = f64val(uint64(in.Imm))
			}
			switch {
			case a < b:
				cmp = -1
			case a > b:
				cmp = 1
			}
		}
		var t bool
		switch in.Cmp {
		case isa.CmpEQ:
			t = cmp == 0
		case isa.CmpNE:
			t = cmp != 0
		case isa.CmpLT:
			t = cmp < 0
		case isa.CmpLE:
			t = cmp <= 0
		case isa.CmpGT:
			t = cmp > 0
		case isa.CmpGE:
			t = cmp >= 0
		}
		if t {
			result |= 1 << lane
		}
	}
	w.setPred(in.PDst, pmask, result)
	lat := s.spec.ALULatency
	if in.Op == isa.OpFSETP {
		lat = s.spec.FMALatency
	} else if in.Op == isa.OpDSETP {
		lat = s.spec.FP64Latency
	}
	if in.PDst != isa.PT {
		w.predReady[in.PDst] = now + uint64(lat)
	}
}

func (s *SM) execALU(w *warp, in *isa.Instr, pmask uint32, now uint64, lat uint64) {
	for lane := 0; lane < 32; lane++ {
		if pmask&(1<<lane) == 0 {
			continue
		}
		var res uint64
		switch in.Op {
		case isa.OpIADD:
			res = uint64(int64(w.readReg(in.Srcs[0], lane)) + w.intOperandB(in, lane))
		case isa.OpISUB:
			res = uint64(int64(w.readReg(in.Srcs[0], lane)) - w.intOperandB(in, lane))
		case isa.OpIMUL:
			res = uint64(int64(w.readReg(in.Srcs[0], lane)) * w.intOperandB(in, lane))
		case isa.OpIMAD:
			res = uint64(int64(w.readReg(in.Srcs[0], lane))*int64(w.readReg(in.Srcs[1], lane)) +
				int64(w.readReg(in.Srcs[2], lane)) + in.Imm)
		case isa.OpISHL:
			res = uint64(int64(w.readReg(in.Srcs[0], lane)) << uint(w.intOperandB(in, lane)&63))
		case isa.OpISHR:
			res = uint64(int64(w.readReg(in.Srcs[0], lane)) >> uint(w.intOperandB(in, lane)&63))
		case isa.OpIAND:
			res = w.readReg(in.Srcs[0], lane) & uint64(w.intOperandB(in, lane))
		case isa.OpIOR:
			res = w.readReg(in.Srcs[0], lane) | uint64(w.intOperandB(in, lane))
		case isa.OpIXOR:
			res = w.readReg(in.Srcs[0], lane) ^ uint64(w.intOperandB(in, lane))
		case isa.OpIMIN:
			a, b := int64(w.readReg(in.Srcs[0], lane)), w.intOperandB(in, lane)
			if b < a {
				a = b
			}
			res = uint64(a)
		case isa.OpIMAX:
			a, b := int64(w.readReg(in.Srcs[0], lane)), w.intOperandB(in, lane)
			if b > a {
				a = b
			}
			res = uint64(a)
		case isa.OpPOPC:
			res = uint64(bits.OnesCount64(w.readReg(in.Srcs[0], lane)))
		case isa.OpFADD:
			res = f32bits(f32val(w.readReg(in.Srcs[0], lane)) + w.f32OperandB(in, lane))
		case isa.OpFMUL:
			res = f32bits(f32val(w.readReg(in.Srcs[0], lane)) * w.f32OperandB(in, lane))
		case isa.OpFFMA:
			res = f32bits(f32val(w.readReg(in.Srcs[0], lane))*f32val(w.readReg(in.Srcs[1], lane)) +
				f32val(w.readReg(in.Srcs[2], lane)))
		case isa.OpFMIN:
			res = f32bits(float32(math.Min(float64(f32val(w.readReg(in.Srcs[0], lane))), float64(w.f32OperandB(in, lane)))))
		case isa.OpFMAX:
			res = f32bits(float32(math.Max(float64(f32val(w.readReg(in.Srcs[0], lane))), float64(w.f32OperandB(in, lane)))))
		case isa.OpI2F:
			res = f32bits(float32(int64(w.readReg(in.Srcs[0], lane))))
		case isa.OpF2I:
			res = uint64(int64(f32val(w.readReg(in.Srcs[0], lane))))
		case isa.OpDADD:
			res = f64bits(f64val(w.readReg(in.Srcs[0], lane)) + w.f64OperandB(in, lane))
		case isa.OpDMUL:
			res = f64bits(f64val(w.readReg(in.Srcs[0], lane)) * w.f64OperandB(in, lane))
		case isa.OpDFMA:
			res = f64bits(f64val(w.readReg(in.Srcs[0], lane))*f64val(w.readReg(in.Srcs[1], lane)) +
				f64val(w.readReg(in.Srcs[2], lane)))
		default:
			panic(fmt.Sprintf("sm: unhandled ALU op %s", in.Op))
		}
		w.regs[in.Dst][lane] = res
	}
	// lat is the decoded pipe latency (FMA/FP64/ALU per the spec).
	w.setRegReady(in.Dst, now+lat, depFixed)
}

func (w *warp) f32OperandB(in *isa.Instr, lane int) float32 {
	if in.Srcs[1] == isa.RZ && in.Imm != 0 {
		return f32val(uint64(in.Imm))
	}
	return f32val(w.readReg(in.Srcs[1], lane))
}

func (w *warp) f64OperandB(in *isa.Instr, lane int) float64 {
	if in.Srcs[1] == isa.RZ && in.Imm != 0 {
		return f64val(uint64(in.Imm))
	}
	return f64val(w.readReg(in.Srcs[1], lane))
}

// execMemory handles every load/store/atomic. It returns the number of
// extra (replay) issues and the LSU/MIO occupancy in cycles.
func (s *SM) execMemory(sp *subpart, w *warp, in *isa.Instr, pmask uint32, now uint64) (extraIssues int, pipeBusy uint64) {
	spec := s.spec
	size := int(in.Size)

	switch in.Op {
	case isa.OpLDG, isa.OpSTG, isa.OpATOM, isa.OpRED:
		var addrs [32]uint64
		for lane := 0; lane < 32; lane++ {
			if pmask&(1<<lane) != 0 {
				addrs[lane] = uint64(int64(w.readReg(in.Srcs[0], lane)) + in.Imm)
			}
		}
		sectors := mem.CoalesceSectorsInto(s.sectorScratch[:0], &addrs, pmask, size, uint64(spec.SectorSize))
		s.sectorScratch = sectors // keep the (possibly re-grown) backing
		if s.deferred {
			return s.deferGlobal(sp, w, in, pmask, now, &addrs, sectors)
		}
		switch in.Op {
		case isa.OpLDG:
			for lane := 0; lane < 32; lane++ {
				if pmask&(1<<lane) != 0 {
					w.regs[in.Dst][lane] = s.storage.Read(addrs[lane], size)
				}
			}
			done, n := s.dp.GlobalLoad(now, sectors)
			w.setRegReady(in.Dst, done, depLong)
			sp.lgQueue.Push(done)
			return (max0(n - 1)) / 4, uint64(max1(n / 2))
		case isa.OpSTG:
			for lane := 0; lane < 32; lane++ {
				if pmask&(1<<lane) != 0 {
					s.storage.Write(addrs[lane], w.readReg(in.Srcs[1], lane), size)
				}
			}
			posted, visible, n := s.dp.GlobalStore(now, sectors)
			w.storesPending = append(w.storesPending, posted)
			w.fenceUntil = maxU64(w.fenceUntil, visible)
			sp.lgQueue.Push(posted)
			return (max0(n - 1)) / 4, uint64(max1(n / 2))
		default: // ATOM, RED
			ops := int(popcount(pmask))
			contention := mem.MaxContention(&addrs, pmask)
			for lane := 0; lane < 32; lane++ {
				if pmask&(1<<lane) == 0 {
					continue
				}
				old := s.storage.Read(addrs[lane], size)
				val := w.readReg(in.Srcs[1], lane)
				var nv uint64
				switch in.Atom {
				case isa.AtomAdd:
					nv = uint64(int64(old) + int64(val))
				case isa.AtomMin:
					nv = old
					if int64(val) < int64(old) {
						nv = val
					}
				case isa.AtomMax:
					nv = old
					if int64(val) > int64(old) {
						nv = val
					}
				case isa.AtomExch:
					nv = val
				case isa.AtomAnd:
					nv = old & val
				case isa.AtomOr:
					nv = old | val
				case isa.AtomCAS:
					nv = old
					if old == uint64(int64(w.readReg(in.Srcs[2], lane))) {
						nv = val
					}
				}
				s.storage.Write(addrs[lane], nv, size)
				if in.Op == isa.OpATOM {
					w.regs[in.Dst][lane] = old
				}
			}
			done, _ := s.dp.Atomic(now, sectors, ops, contention)
			if in.Op == isa.OpATOM {
				w.setRegReady(in.Dst, done, depLong)
			}
			w.storesPending = append(w.storesPending, done)
			sp.lgQueue.Push(done)
			return max0(ops-1) / 4, uint64(max1(ops / 2))
		}

	case isa.OpLDS, isa.OpSTS:
		var addrs [32]uint64
		for lane := 0; lane < 32; lane++ {
			if pmask&(1<<lane) != 0 {
				addrs[lane] = uint64(int64(w.readReg(in.Srcs[0], lane)) + in.Imm)
			}
		}
		degree := mem.BankConflictDegree(&addrs, pmask, size)
		if degree > 1 {
			s.ctr.SharedBankConflicts += uint64(degree - 1)
		}
		done := now + uint64(spec.SharedLatency) + uint64(max0(degree-1))
		if in.Op == isa.OpLDS {
			s.ctr.SharedLoads++
			for lane := 0; lane < 32; lane++ {
				if pmask&(1<<lane) != 0 {
					w.regs[in.Dst][lane] = w.block.sharedRead(addrs[lane], size)
				}
			}
			w.setRegReady(in.Dst, done, depShort)
		} else {
			s.ctr.SharedStores++
			for lane := 0; lane < 32; lane++ {
				if pmask&(1<<lane) != 0 {
					w.block.sharedWrite(addrs[lane], w.readReg(in.Srcs[1], lane), size)
				}
			}
			w.storesPending = append(w.storesPending, done)
		}
		sp.mioQueue.Push(done)
		return max0(degree - 1), uint64(degree)

	case isa.OpLDL, isa.OpSTL:
		var addrs [32]uint64
		bt := w.block.launch.BlockThreads()
		for lane := 0; lane < 32; lane++ {
			if pmask&(1<<lane) == 0 {
				continue
			}
			off := uint64(int64(w.readReg(in.Srcs[0], lane)) + in.Imm)
			gtid := uint64(w.block.blockLinear*bt + w.warpInBlock*kernel.WarpSize + lane)
			// Local memory is interleaved per-word so that same-offset
			// accesses across a warp coalesce, as the hardware arranges.
			addrs[lane] = s.localBase + (off/uint64(size))*uint64(size)*uint64(s.totalThreads) + gtid*uint64(size)
		}
		sectors := mem.CoalesceSectorsInto(s.sectorScratch[:0], &addrs, pmask, size, uint64(spec.SectorSize))
		s.sectorScratch = sectors
		if s.deferred {
			return s.deferGlobal(sp, w, in, pmask, now, &addrs, sectors)
		}
		if in.Op == isa.OpLDL {
			for lane := 0; lane < 32; lane++ {
				if pmask&(1<<lane) != 0 {
					w.regs[in.Dst][lane] = s.storage.Read(addrs[lane], size)
				}
			}
			done, n := s.dp.GlobalLoad(now, sectors)
			w.setRegReady(in.Dst, done, depLong)
			sp.lgQueue.Push(done)
			return max0(n-1) / 4, uint64(max1(n / 2))
		}
		for lane := 0; lane < 32; lane++ {
			if pmask&(1<<lane) != 0 {
				s.storage.Write(addrs[lane], w.readReg(in.Srcs[1], lane), size)
			}
		}
		posted, visible, n := s.dp.GlobalStore(now, sectors)
		w.storesPending = append(w.storesPending, posted)
		w.fenceUntil = maxU64(w.fenceUntil, visible)
		sp.lgQueue.Push(posted)
		return max0(n-1) / 4, uint64(max1(n / 2))

	case isa.OpLDC:
		// Per-lane offsets support indexed constant reads; the IMC works in
		// 64-byte lines. At most 32 active lanes means at most 32 unique
		// lines, so a fixed array avoids the per-issue allocation.
		var lines [32]uint64
		nlines := 0
		done := now
		anyMiss := false
		for lane := 0; lane < 32; lane++ {
			if pmask&(1<<lane) == 0 {
				continue
			}
			off := int64(w.readReg(in.Srcs[0], lane)) + in.Imm
			w.regs[in.Dst][lane] = s.constBank.Read(off, size)
			line := uint64(off) / 64
			dup := false
			for _, l := range lines[:nlines] {
				if l == line {
					dup = true
					break
				}
			}
			if !dup {
				lines[nlines] = line
				nlines++
				dn, hit := s.dp.ConstLoad(now, int64(line*64))
				if !hit {
					anyMiss = true
				}
				done = maxU64(done, dn)
			}
		}
		kind := depFixed
		if anyMiss {
			kind = depIMC
		}
		w.setRegReady(in.Dst, done, kind)
		return max0(nlines - 1), uint64(max1(nlines))

	case isa.OpTEX:
		var addrs [32]uint64
		for lane := 0; lane < 32; lane++ {
			if pmask&(1<<lane) != 0 {
				addrs[lane] = uint64(int64(w.readReg(in.Srcs[0], lane)) + in.Imm)
			}
		}
		sectors := mem.CoalesceSectorsInto(s.sectorScratch[:0], &addrs, pmask, size, uint64(spec.SectorSize))
		s.sectorScratch = sectors
		if s.deferred {
			return s.deferGlobal(sp, w, in, pmask, now, &addrs, sectors)
		}
		for lane := 0; lane < 32; lane++ {
			if pmask&(1<<lane) != 0 {
				w.regs[in.Dst][lane] = s.storage.Read(addrs[lane], size)
			}
		}
		done, n := s.dp.TexFetch(now, sectors)
		w.setRegReady(in.Dst, done, depLong)
		sp.texQueue.Push(done)
		return max0(n-1) / 4, uint64(max1(n / 2))
	}
	panic(fmt.Sprintf("sm: unhandled memory op %s", in.Op))
}

func max0(x int) int {
	if x < 0 {
		return 0
	}
	return x
}

func max1(x int) int {
	if x < 1 {
		return 1
	}
	return x
}

package sm

import (
	"testing"
	"testing/quick"

	"gputopdown/internal/gpu"
	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
	"gputopdown/internal/mem"
)

func testSM() *SM {
	spec := gpu.QuadroRTX4000().WithSMs(1)
	ms := mem.NewMemSys(spec)
	st := mem.NewStorage(1 << 20)
	cb := mem.NewConstantBank(spec.ConstBankSize)
	return New(spec, 0, ms, st, cb)
}

func trivialLaunch(threads int) *kernel.Launch {
	b := kernel.NewBuilder("triv")
	b.MovImm(1)
	b.Exit()
	return &kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: threads},
	}
}

func TestWarpStateStringsTotal(t *testing.T) {
	seen := map[string]bool{}
	for s := WarpState(0); s < NumWarpStates; s++ {
		n := s.String()
		if n == "" || seen[n] {
			t.Errorf("state %d name %q empty or duplicated", s, n)
		}
		seen[n] = true
	}
	if WarpState(99).String() == "" {
		t.Error("out-of-range state has empty name")
	}
}

func TestCountersAddSubRoundtrip(t *testing.T) {
	f := func(a, b uint64, s1, s2 uint8) bool {
		var x, y Counters
		x.InstExecuted = a
		x.WarpStateCycles[s1%NumWarpStates] = b
		y.InstIssued = b
		y.WarpStateCycles[s2%NumWarpStates] = a
		sum := x
		sum.Add(&y)
		back := sum.Sub(&y)
		return back == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSIMTStackDivergeReconverge(t *testing.T) {
	w := newWarp(0, 0, 0, nil, 0xFFFFFFFF, 8, 1)
	if got := w.activeMask(); got != 0xFFFFFFFF {
		t.Fatalf("initial mask %x", got)
	}
	// Simulate a divergent branch at pc=5, recon=10, taken mask = odd lanes.
	taken := uint32(0xAAAAAAAA)
	top := w.top()
	top.pc = 10 // becomes recon entry
	w.stack = append(w.stack,
		stackEntry{pc: 8, rpc: 10, mask: taken},
		stackEntry{pc: 6, rpc: 10, mask: ^taken},
	)
	w.syncStack()
	if w.top().pc != 6 || w.activeMask() != ^taken {
		t.Fatalf("fallthrough path not on top: pc=%d mask=%x", w.top().pc, w.activeMask())
	}
	// Fallthrough path reaches the reconvergence point.
	w.top().pc = 10
	w.syncStack()
	if w.top().pc != 8 || w.activeMask() != taken {
		t.Fatalf("taken path not resumed: pc=%d mask=%x", w.top().pc, w.activeMask())
	}
	// Taken path reaches reconvergence: full warp resumes at 10.
	w.top().pc = 10
	w.syncStack()
	if len(w.stack) != 1 || w.activeMask() != 0xFFFFFFFF || w.top().pc != 10 {
		t.Fatalf("reconvergence failed: depth=%d mask=%x pc=%d", len(w.stack), w.activeMask(), w.top().pc)
	}
}

func TestSyncStackDropsDeadRegions(t *testing.T) {
	w := newWarp(0, 0, 0, nil, 0xF, 8, 1)
	w.stack = append(w.stack, stackEntry{pc: 3, rpc: 9, mask: 0x3})
	w.exited = 0x3 // the whole nested region exits
	w.syncStack()
	if len(w.stack) != 1 {
		t.Fatalf("dead region not popped, depth=%d", len(w.stack))
	}
	if w.finished {
		t.Fatal("warp wrongly finished with live lanes")
	}
	w.exited = 0xF
	w.syncStack()
	if !w.finished {
		t.Fatal("warp with all lanes exited not finished")
	}
}

func TestPredMask(t *testing.T) {
	w := newWarp(0, 0, 0, nil, 0xFFFFFFFF, 8, 1)
	w.setPred(isa.P2, 0xFFFFFFFF, 0x0000FFFF)
	if got := w.predMask(isa.P2, false); got != 0x0000FFFF {
		t.Errorf("predMask = %x", got)
	}
	if got := w.predMask(isa.P2, true); got != 0xFFFF0000 {
		t.Errorf("negated predMask = %x", got)
	}
	if got := w.predMask(isa.PT, false); got != 0xFFFFFFFF {
		t.Errorf("PT mask = %x", got)
	}
	// Partial update preserves other lanes.
	w.setPred(isa.P2, 0x3, 0x1)
	if got := w.predMask(isa.P2, false); got != 0x0000FFFD {
		t.Errorf("partial setPred = %x", got)
	}
}

func TestScoreboardBlockPicksLatest(t *testing.T) {
	w := newWarp(0, 0, 0, nil, 0xFFFFFFFF, 16, 1)
	w.setRegReady(isa.R(1), 100, depLong)
	w.setRegReady(isa.R(2), 50, depShort)
	in := isa.Instr{Op: isa.OpIADD, Dst: isa.R(3), Srcs: [3]isa.Reg{isa.R(1), isa.R(2), isa.RZ}}
	ready, kind := w.scoreboardBlock(&in)
	if ready != 100 || kind != depLong {
		t.Errorf("scoreboard = (%d,%v), want (100,depLong)", ready, kind)
	}
	// WAW on destination.
	in2 := isa.Instr{Op: isa.OpMOV32, Dst: isa.R(1)}
	ready2, _ := w.scoreboardBlock(&in2)
	if ready2 != 100 {
		t.Errorf("WAW not detected: %d", ready2)
	}
}

func TestDepKindStates(t *testing.T) {
	cases := map[depKind]WarpState{
		depFixed: StateWait,
		depLong:  StateLongScoreboard,
		depShort: StateShortScoreboard,
		depIMC:   StateIMCMiss,
		depNone:  StateWait,
	}
	for k, want := range cases {
		if got := k.stallState(); got != want {
			t.Errorf("%v.stallState() = %v, want %v", k, got, want)
		}
	}
}

func TestOccupancyAccounting(t *testing.T) {
	s := testSM()
	l := trivialLaunch(256)
	if !s.CanAccept(l) {
		t.Fatal("empty SM rejects small block")
	}
	n := 0
	for s.CanAccept(l) {
		s.LaunchBlock(l, [3]int64{int64(n), 0, 0}, n)
		n++
		if n > 100 {
			t.Fatal("CanAccept never saturates")
		}
	}
	spec := s.spec
	maxByThreads := spec.MaxThreadsPerSM / 256
	maxByWarps := spec.WarpsPerSM() / 8
	want := maxByThreads
	if maxByWarps < want {
		want = maxByWarps
	}
	if spec.MaxBlocksPerSM < want {
		want = spec.MaxBlocksPerSM
	}
	if n != want {
		t.Errorf("accepted %d blocks, want %d", n, want)
	}
	// Run to completion and verify resources return to zero.
	for s.Busy() {
		s.Tick()
	}
	if s.residentBlocks != 0 || s.residentThreads != 0 || s.residentWarps != 0 ||
		s.residentRegs != 0 || s.residentShared != 0 {
		t.Errorf("resources leaked: blocks=%d threads=%d warps=%d regs=%d shared=%d",
			s.residentBlocks, s.residentThreads, s.residentWarps, s.residentRegs, s.residentShared)
	}
}

func TestSharedMemoryLimitsResidency(t *testing.T) {
	s := testSM()
	b := kernel.NewBuilder("bigshared")
	b.DeclShared(s.spec.SharedMemPerSM/2 + 1)
	b.Exit()
	l := &kernel.Launch{Program: b.MustBuild(), Grid: kernel.Dim3{X: 4}, Block: kernel.Dim3{X: 32}}
	if !s.CanAccept(l) {
		t.Fatal("first block rejected")
	}
	s.LaunchBlock(l, [3]int64{0, 0, 0}, 0)
	if s.CanAccept(l) {
		t.Error("second block accepted despite shared-memory limit")
	}
}

func TestRegisterLimitsResidency(t *testing.T) {
	s := testSM()
	b := kernel.NewBuilder("reghog")
	for i := 0; i < 200; i++ {
		b.Reg()
	}
	b.Exit()
	prog := b.MustBuild()
	// 200 regs x 512 threads = 102400 > 65536: must be rejected.
	l := &kernel.Launch{Program: prog, Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 512}}
	if s.CanAccept(l) {
		t.Error("register-file overcommit accepted")
	}
	l2 := &kernel.Launch{Program: prog, Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 128}}
	if !s.CanAccept(l2) {
		t.Error("fitting block rejected")
	}
}

func TestTickIdleSM(t *testing.T) {
	s := testSM()
	s.Tick()
	c := s.Counters()
	if c.ActiveCycles != 0 {
		t.Error("idle tick counted as active")
	}
	if c.ElapsedCycles != 1 {
		t.Errorf("elapsed = %d", c.ElapsedCycles)
	}
}

func TestResetClockPanicsWhenBusy(t *testing.T) {
	s := testSM()
	s.LaunchBlock(trivialLaunch(32), [3]int64{0, 0, 0}, 0)
	defer func() {
		if recover() == nil {
			t.Error("ResetClock on busy SM did not panic")
		}
	}()
	s.ResetClock()
}

func TestGTOPrefersSameWarp(t *testing.T) {
	s := testSM()
	sp := s.subparts[0]
	sp.warps[1] = &warp{launchSeq: 9}
	sp.warps[3] = &warp{launchSeq: 4}
	sp.warps[5] = &warp{launchSeq: 2}
	sp.lastIssued = 3
	if got := s.pick(sp, []int{1, 3, 5}); got != 3 {
		t.Errorf("GTO picked %d, want greedy 3", got)
	}
	// Oldest otherwise.
	sp.lastIssued = 0
	if got := s.pick(sp, []int{1, 5}); got != 5 {
		t.Errorf("GTO picked %d, want oldest 5", got)
	}
	if got := s.pick(sp, nil); got != -1 {
		t.Errorf("empty candidates -> %d", got)
	}
}

func TestLRRRotates(t *testing.T) {
	s := testSM()
	s.spec = func() *gpu.Spec { c := *s.spec; c.SchedulingPolicy = "lrr"; return &c }()
	sp := s.subparts[0]
	sp.lastIssued = 3
	if got := s.pick(sp, []int{1, 3, 5}); got != 5 {
		t.Errorf("LRR picked %d, want next-after-3 = 5", got)
	}
	sp.lastIssued = 5
	if got := s.pick(sp, []int{1, 3}); got != 1 {
		t.Errorf("LRR picked %d, want wraparound 1", got)
	}
}

func TestDrainStores(t *testing.T) {
	w := newWarp(0, 0, 0, nil, 1, 4, 1)
	w.storesPending = []uint64{10, 30, 20}
	if n := w.drainStores(15); n != 2 {
		t.Errorf("pending after t=15: %d, want 2", n)
	}
	if w.lastStoreDone() != 30 {
		t.Errorf("lastStoreDone = %d", w.lastStoreDone())
	}
	if n := w.drainStores(100); n != 0 {
		t.Errorf("pending after t=100: %d", n)
	}
}

func TestThreadIDMapping(t *testing.T) {
	blk := &blockCtx{launch: &kernel.Launch{Block: kernel.Dim3{X: 8, Y: 4, Z: 2}}}
	x, y, z := blk.threadID(0, 0)
	if x != 0 || y != 0 || z != 0 {
		t.Errorf("thread 0 = (%d,%d,%d)", x, y, z)
	}
	x, y, z = blk.threadID(0, 13) // linear 13 = x 5, y 1, z 0
	if x != 5 || y != 1 || z != 0 {
		t.Errorf("thread 13 = (%d,%d,%d), want (5,1,0)", x, y, z)
	}
	x, y, z = blk.threadID(1, 10) // linear 42 = x 2, y 1, z 1
	if x != 2 || y != 1 || z != 1 {
		t.Errorf("thread 42 = (%d,%d,%d), want (2,1,1)", x, y, z)
	}
}

func TestSharedAccessBounds(t *testing.T) {
	blk := &blockCtx{
		launch: &kernel.Launch{Program: &kernel.Program{Name: "x"}},
		shared: make([]byte, 64),
	}
	blk.sharedWrite(0, 42, 4)
	if blk.sharedRead(0, 4) != 42 {
		t.Error("shared roundtrip failed")
	}
	blk.sharedWrite(56, 1<<40, 8)
	if blk.sharedRead(56, 8) != 1<<40 {
		t.Error("8-byte shared roundtrip failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds shared access did not panic")
		}
	}()
	blk.sharedRead(62, 4)
}

func TestTotalStallCyclesExcludesProductive(t *testing.T) {
	var c Counters
	c.WarpStateCycles[StateSelected] = 10
	c.WarpStateCycles[StateNotSelected] = 5
	c.WarpStateCycles[StateLongScoreboard] = 7
	c.WarpStateCycles[StateBarrier] = 3
	if got := c.TotalStallCycles(); got != 10 {
		t.Errorf("TotalStallCycles = %d, want 10", got)
	}
	if got := c.StateSum(); got != 25 {
		t.Errorf("StateSum = %d, want 25", got)
	}
}

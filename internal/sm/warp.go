package sm

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
)

// depKind classifies the producer of a pending register value, so that a
// consumer stalled on it can be attributed to the right scoreboard state.
type depKind uint8

const (
	depNone  depKind = iota
	depFixed         // ALU/FMA/FP64/SFU result (fixed latency) -> stalled_wait
	depLong          // L1TEX load (global/local/texture)       -> long_scoreboard
	depShort         // MIO operation (shared, shuffle)         -> short_scoreboard
	depIMC           // immediate-constant miss                 -> imc_miss
)

func (k depKind) stallState() WarpState {
	switch k {
	case depLong:
		return StateLongScoreboard
	case depShort:
		return StateShortScoreboard
	case depIMC:
		return StateIMCMiss
	default:
		return StateWait
	}
}

// stackEntry is one level of the SIMT reconvergence stack: execute from pc
// with mask until pc reaches rpc (the immediate post-dominator), then pop.
// The bottom entry has rpc == -1 and never pops.
type stackEntry struct {
	pc   int
	rpc  int
	mask uint32
}

// warp is one resident warp context.
type warp struct {
	id          int // slot index within the SM (debugging)
	subp        int
	block       *blockCtx
	warpInBlock int
	launchSeq   uint64 // global age for greedy-then-oldest scheduling

	members uint32 // lanes backed by real threads (last warp may be partial)
	exited  uint32
	stack   []stackEntry

	regs  [][32]uint64 // [reg][lane]
	preds [8]uint32    // index 0 is PT (unused; PT handled specially)

	regReady  []uint64
	regDep    []depKind
	predReady [8]uint64

	// nextEligible delays issue until the given cycle, classified as
	// eligibleReason while waiting (branch resolving, sleeping, misc).
	nextEligible   uint64
	eligibleReason WarpState

	// stallCache short-circuits reclassification while the warp is blocked
	// on a scoreboard dependency whose release cycle is already known:
	// nothing about the warp can change until then, because it cannot
	// issue. stallUntil is the expiry; stallState the cached answer.
	stallUntil uint64
	stallState WarpState

	atBarrier     bool
	membarPending bool

	// storesPending holds posted-completion cycles of outstanding stores
	// (post-EXIT drain); fenceUntil is the memory-order visibility horizon
	// MEMBAR waits on.
	storesPending []uint64
	fenceUntil    uint64

	// Instruction supply: fetchedLine is 1+line index currently in the
	// warp's instruction buffer (0 = nothing fetched yet).
	fetchedLine uint64
	ifetchReady uint64

	// lastState is the warp state accounted by the most recent Tick. The
	// fast-forward engine (SM.AdvanceTo) replays it for every bulk-skipped
	// cycle: while no warp on the SM can issue and no wakeup bound has
	// expired, the per-cycle classification is provably constant.
	lastState WarpState

	// wakeAt is the warp's private wake-list entry: the bound returned by its
	// most recent classify call. While now < wakeAt, Tick skips classify
	// entirely and charges lastState — classify's contract guarantees it
	// would return the same state and mutate nothing until then. Eligible
	// warps always get wakeAt = 0 (never skipped), and checkBarrier resets
	// released warps' wakeAt so a barrier release is seen immediately.
	wakeAt uint64

	finished bool
	dead     bool // finished already accounted against block.liveWarps
}

// deadCounted reports whether the warp's death was already accounted.
func (w *warp) deadCounted() bool { return w.dead }

// markDead records that the warp's death has been accounted.
func (w *warp) markDead() { w.dead = true }

func newWarp(id, subp, warpInBlock int, blk *blockCtx, members uint32, numRegs int, seq uint64) *warp {
	return &warp{
		id:          id,
		subp:        subp,
		block:       blk,
		warpInBlock: warpInBlock,
		launchSeq:   seq,
		members:     members,
		stack:       []stackEntry{{pc: 0, rpc: -1, mask: members}},
		regs:        make([][32]uint64, numRegs),
		regReady:    make([]uint64, numRegs),
		regDep:      make([]depKind, numRegs),
	}
}

// top returns the active stack entry. Callers must ensure the stack is
// non-empty (it always is until the warp finishes).
func (w *warp) top() *stackEntry { return &w.stack[len(w.stack)-1] }

// activeMask is the set of lanes executing at the current stack top.
func (w *warp) activeMask() uint32 { return w.top().mask &^ w.exited }

// syncStack pops completed regions: entries whose pc reached their
// reconvergence point and entries with no live lanes left. It sets finished
// when every member lane has exited.
func (w *warp) syncStack() {
	for {
		if w.members&^w.exited == 0 {
			w.finished = true
			return
		}
		top := w.top()
		if top.mask&^w.exited == 0 && len(w.stack) > 1 {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		if top.rpc >= 0 && top.pc == top.rpc {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		return
	}
}

// predMask evaluates a guard predicate over all lanes.
func (w *warp) predMask(p isa.PredReg, neg bool) uint32 {
	var m uint32
	if p == isa.PT {
		m = 0xFFFFFFFF
	} else {
		m = w.preds[p]
	}
	if neg {
		m = ^m
	}
	return m
}

// setPred assigns predicate p in the given lanes to the bits of value.
func (w *warp) setPred(p isa.PredReg, lanes uint32, value uint32) {
	if p == isa.PT {
		return
	}
	w.preds[p] = (w.preds[p] &^ lanes) | (value & lanes)
}

// setRegReady records the completion time and producer class of a register.
func (w *warp) setRegReady(r isa.Reg, ready uint64, kind depKind) {
	if r == isa.RZ {
		return
	}
	w.regReady[r] = ready
	w.regDep[r] = kind
}

// scoreboardBlock returns the latest-ready operand among the instruction's
// sources, destination (WAW) and guard predicate, with its dependency class.
// It is the ad-hoc form of scoreboardDec — the hot path uses the decoded
// table; this wrapper decodes the hazard-relevant fields on the fly so both
// paths share one scoreboard implementation.
func (w *warp) scoreboardBlock(in *isa.Instr) (uint64, depKind) {
	d := decodedInstr{
		dst:      in.Dst,
		checkDst: in.Op.Info().WritesDst,
		pred:     in.Pred,
		pdstRead: isa.PT,
	}
	regs, n := in.SourceRegs()
	d.srcs, d.nsrcs = regs, uint8(n)
	// SEL and VOTE read the predicate in PDst.
	if in.Op == isa.OpSEL || in.Op == isa.OpVOTE {
		d.pdstRead = in.PDst
	}
	return w.scoreboardDec(&d)
}

// drainStores drops completed stores and returns the number still pending.
func (w *warp) drainStores(now uint64) int {
	i := 0
	for _, d := range w.storesPending {
		if d > now {
			w.storesPending[i] = d
			i++
		}
	}
	w.storesPending = w.storesPending[:i]
	return i
}

// lastStoreDone returns the latest completion among pending stores.
func (w *warp) lastStoreDone() uint64 {
	var m uint64
	for _, d := range w.storesPending {
		if d > m {
			m = d
		}
	}
	return m
}

func popcount(m uint32) uint64 { return uint64(bits.OnesCount32(m)) }

// blockCtx is one resident thread block (CTA): geometry, shared memory and
// barrier bookkeeping.
type blockCtx struct {
	ctaid       [3]int64
	blockLinear int
	launch      *kernel.Launch
	dec         *decodedProgram // per-SM decoded table for launch.Program
	shared      []byte
	liveWarps   int
	remaining   int // warps not yet fully drained
	arrived     int // warps waiting at the current barrier
	warps       []*warp
}

func (b *blockCtx) sharedRead(addr uint64, size int) uint64 {
	if int(addr)+size > len(b.shared) {
		panic(fmt.Sprintf("sm: shared read of %d bytes at 0x%x outside %d-byte block allocation (kernel %s)",
			size, addr, len(b.shared), b.launch.Program.Name))
	}
	if size == 8 {
		return binary.LittleEndian.Uint64(b.shared[addr:])
	}
	return uint64(binary.LittleEndian.Uint32(b.shared[addr:]))
}

func (b *blockCtx) sharedWrite(addr uint64, v uint64, size int) {
	if int(addr)+size > len(b.shared) {
		panic(fmt.Sprintf("sm: shared write of %d bytes at 0x%x outside %d-byte block allocation (kernel %s)",
			size, addr, len(b.shared), b.launch.Program.Name))
	}
	if size == 8 {
		binary.LittleEndian.PutUint64(b.shared[addr:], v)
		return
	}
	binary.LittleEndian.PutUint32(b.shared[addr:], uint32(v))
}

// threadID returns the (x,y,z) thread index of a lane of a warp.
func (b *blockCtx) threadID(warpInBlock, lane int) (int64, int64, int64) {
	lin := int64(warpInBlock*kernel.WarpSize + lane)
	bd := b.launch.Block.Norm()
	x := lin % int64(bd.X)
	y := (lin / int64(bd.X)) % int64(bd.Y)
	z := lin / int64(bd.X*bd.Y)
	return x, y, z
}

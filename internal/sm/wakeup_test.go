package sm

import (
	"testing"

	"gputopdown/internal/gpu"
	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
	"gputopdown/internal/mem"
)

// testSMBacked builds a single SM whose storage has a mapped scratch region
// covering the addresses the wakeup-test kernels touch.
func testSMBacked() *SM {
	spec := gpu.QuadroRTX4000().WithSMs(1)
	ms := mem.NewMemSys(spec)
	st := mem.NewStorage(1 << 20)
	st.Alloc(1 << 19) // map the low half; kernels address well below this
	cb := mem.NewConstantBank(spec.ConstBankSize)
	return New(spec, 0, ms, st, cb)
}

// smRun drives one SM to completion on a single block. When ff is true it
// jumps to NextWakeup whenever the bound allows, exactly as Device.Launch
// does; skips counts the jump windows taken.
type smRun struct {
	ctr     Counters
	cycles  uint64
	skips   int
	samples []Counters
}

func runOneBlock(t *testing.T, l *kernel.Launch, traceInterval uint64, ff bool) smRun {
	t.Helper()
	s := testSMBacked()
	if traceInterval > 0 {
		s.EnableTrace(traceInterval)
	}
	if !s.CanAccept(l) {
		t.Fatalf("block of %s does not fit on an idle SM", l.Program.Name)
	}
	s.LaunchBlock(l, [3]int64{}, 0)
	var r smRun
	for guard := 0; s.Busy(); guard++ {
		if guard > 2_000_000 {
			t.Fatalf("%s: SM did not go idle", l.Program.Name)
		}
		s.Tick()
		if w := s.NextWakeup(); w < s.Cycle() {
			t.Fatalf("%s: NextWakeup %d behind clock %d", l.Program.Name, w, s.Cycle())
		}
		if ff {
			if w := s.NextWakeup(); w > s.Cycle() {
				s.AdvanceTo(w)
				r.skips++
			}
		}
	}
	r.ctr = s.Counters()
	r.cycles = s.Cycle()
	r.samples = append(r.samples, s.TraceSamples()...)
	return r
}

// assertEquivalent runs the block under both engines and demands identical
// counters, cycle counts and trace samples, with the fast-forward side
// actually taking skips (otherwise the case exercises nothing).
func assertEquivalent(t *testing.T, l *kernel.Launch, traceInterval uint64) {
	t.Helper()
	naive := runOneBlock(t, l, traceInterval, false)
	ff := runOneBlock(t, l, traceInterval, true)
	if ff.skips == 0 {
		t.Errorf("%s: fast-forward took no skips; case exercises nothing", l.Program.Name)
	}
	if naive.cycles != ff.cycles {
		t.Errorf("%s: cycles differ: naive %d, ff %d", l.Program.Name, naive.cycles, ff.cycles)
	}
	if naive.ctr != ff.ctr {
		t.Errorf("%s: counters differ:\nnaive: %+v\nff:    %+v", l.Program.Name, naive.ctr, ff.ctr)
	}
	if len(naive.samples) != len(ff.samples) {
		t.Fatalf("%s: trace sample count differs: naive %d, ff %d", l.Program.Name, len(naive.samples), len(ff.samples))
	}
	for i := range naive.samples {
		if naive.samples[i] != ff.samples[i] {
			t.Errorf("%s: trace sample %d differs", l.Program.Name, i)
		}
	}
}

// barrierDrainLaunch builds a 2-warp block where warp 0 issues a long-latency
// load-dependent store and exits (entering drain with the store in flight)
// while warp 1 waits at the block barrier — the barrier-with-draining-peer
// wakeup case: the barrier warp has no self bound (neverWake) and the bound
// must come from the dying peer's store completion and death event.
func barrierDrainLaunch() *kernel.Launch {
	b := kernel.NewBuilder("bardrain")
	gid := b.GlobalIDX()
	addr := b.IAddImm(b.Shl(gid, 2), 4096)
	p := b.ISetpImm(isa.CmpLT, gid, 32) // warp 0 only
	v := b.Ldg(addr, 0, 4)              // long-scoreboard dependency
	b.StgIf(p, false, addr, v, 0, 4)
	b.ExitIf(p, false)
	b.Bar()
	b.Stg(addr, v, 0, 4)
	b.Exit()
	return &kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 64},
	}
}

// singleWarpLaunch builds a 1-warp block: on a 4-subpartition SM, three
// subpartitions stay empty, pinning the empty-subpartition accounting
// (SubpActiveCycles, ActiveWarpCycles) under bulk skips.
func singleWarpLaunch() *kernel.Launch {
	b := kernel.NewBuilder("onewarp")
	gid := b.GlobalIDX()
	addr := b.IAddImm(b.Shl(gid, 2), 8192)
	acc := b.MovImm(0)
	for i := 0; i < 4; i++ {
		v := b.Ldg(addr, int64(i*256), 4) // serialized long-latency loads
		acc = b.IAdd(acc, v)
	}
	b.Stg(addr, acc, 0, 4)
	b.Exit()
	return &kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 32},
	}
}

func TestWakeupBarrierWithDrainingPeer(t *testing.T) {
	assertEquivalent(t, barrierDrainLaunch(), 0)
}

func TestWakeupEmptySubpartitions(t *testing.T) {
	l := singleWarpLaunch()
	assertEquivalent(t, l, 0)

	// The empty subpartitions must contribute nothing to SubpActiveCycles:
	// with one resident warp the closure SubpActiveCycles == ActiveCycles
	// holds on a 4-subpartition SM.
	r := runOneBlock(t, l, 0, true)
	if r.ctr.SubpActiveCycles != r.ctr.ActiveCycles {
		t.Errorf("SubpActiveCycles %d != ActiveCycles %d with a single resident warp",
			r.ctr.SubpActiveCycles, r.ctr.ActiveCycles)
	}
}

// TestWakeupTraceBoundaryClipping enables tracing with an interval short
// enough that long-scoreboard skip windows straddle sample boundaries: the
// bound must clip to one cycle before each boundary so every sample is
// taken by a normal tick, landing on the exact cycle the naive loop uses.
func TestWakeupTraceBoundaryClipping(t *testing.T) {
	const interval = 16
	l := singleWarpLaunch()
	assertEquivalent(t, l, interval)

	// Every computed bound must respect the clipping invariant.
	s := testSMBacked()
	s.EnableTrace(interval)
	s.LaunchBlock(l, [3]int64{}, 0)
	clipped := false
	for guard := 0; s.Busy(); guard++ {
		if guard > 2_000_000 {
			t.Fatal("SM did not go idle")
		}
		s.Tick()
		w := s.NextWakeup()
		if bound := (s.Cycle()/interval+1)*interval - 1; w > bound {
			t.Fatalf("NextWakeup %d skips past trace boundary tick %d", w, bound)
		} else if w == bound && w > s.Cycle() {
			clipped = true
		}
		s.AdvanceTo(w)
	}
	if !clipped {
		t.Error("no skip window was clipped at a trace boundary; shorten the interval")
	}
}

// TestAdvanceToGuardsBound pins the safety rail: jumping past the reported
// bound must panic rather than silently corrupt counters.
func TestAdvanceToGuardsBound(t *testing.T) {
	s := testSMBacked()
	l := singleWarpLaunch()
	s.LaunchBlock(l, [3]int64{}, 0)
	for i := 0; i < 10_000 && s.Busy(); i++ {
		s.Tick()
		if w := s.NextWakeup(); w > s.Cycle() {
			defer func() {
				if recover() == nil {
					t.Error("AdvanceTo beyond NextWakeup did not panic")
				}
			}()
			s.AdvanceTo(w + 1)
			return
		}
	}
	t.Fatal("no skip window found")
}

package mem

import (
	"testing"

	"gputopdown/internal/gpu"
)

// slicedSpec returns a paper spec with the L2 split n ways.
func slicedSpec(n int) *gpu.Spec {
	spec := gpu.QuadroRTX4000()
	spec.L2Slices = n
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return spec
}

// TestSliceRoutingPartition pins the routing invariants for every supported
// slice count: each address maps to exactly one in-range slice, all bytes of
// a cache line share it, consecutive lines interleave round-robin, and the
// slices partition the line space into equal shares.
func TestSliceRoutingPartition(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		ms := NewMemSys(slicedSpec(n))
		if ms.NumSlices() != n {
			t.Fatalf("n=%d: NumSlices = %d", n, ms.NumSlices())
		}
		line := uint64(ms.spec.LineSize)
		perSlice := make([]int, n)
		const lines = 1 << 12
		for ln := uint64(0); ln < lines; ln++ {
			base := ln * line
			s := ms.SliceOf(base)
			if s < 0 || s >= n {
				t.Fatalf("n=%d: SliceOf(%#x) = %d out of range", n, base, s)
			}
			if want := int(ln) % n; s != want {
				t.Fatalf("n=%d: line %d routed to slice %d, want round-robin %d", n, ln, s, want)
			}
			perSlice[s]++
			// Every byte of the line lands on the same slice, and the rebased
			// address preserves the byte offset within the line.
			for _, off := range []uint64{1, line / 2, line - 1} {
				if got := ms.SliceOf(base + off); got != s {
					t.Fatalf("n=%d: %#x+%d routed to %d, line base to %d", n, base, off, got, s)
				}
				if ms.Rebase(base+off)-ms.Rebase(base) != off {
					t.Fatalf("n=%d: Rebase does not preserve offset %d within line %#x", n, off, base)
				}
			}
		}
		for s, c := range perSlice {
			if c != lines/n {
				t.Errorf("n=%d: slice %d owns %d of %d lines, want %d", n, s, c, lines, lines/n)
			}
		}
	}
}

// TestSliceRebaseDense pins that rebasing maps each slice's lines onto a
// dense private line space: the k-th line owned by a slice rebases to local
// line k, so set indexing behaves exactly like an unsliced cache of the
// slice's size.
func TestSliceRebaseDense(t *testing.T) {
	ms := NewMemSys(slicedSpec(4))
	line := uint64(ms.spec.LineSize)
	next := make([]uint64, ms.NumSlices())
	for ln := uint64(0); ln < 1<<10; ln++ {
		base := ln * line
		s := ms.SliceOf(base)
		if got := ms.Rebase(base); got != next[s]*line {
			t.Fatalf("line %d (slice %d): Rebase = %#x, want dense %#x", ln, s, got, next[s]*line)
		}
		next[s]++
	}
}

// FuzzSliceRouting drives the routing pair (SliceOf, Rebase) with arbitrary
// addresses and slice counts and checks bijectivity: the (slice, rebased)
// pair must reconstruct the original address exactly, so every address is
// owned by exactly one slice-local line and no two addresses collide.
func FuzzSliceRouting(f *testing.F) {
	f.Add(uint64(0), uint8(4))
	f.Add(uint64(0x1234_5678), uint8(1))
	f.Add(uint64(1)<<40, uint8(8))
	f.Add(^uint64(0)>>8, uint8(2))
	systems := map[uint8]*MemSys{}
	for _, n := range []uint8{1, 2, 4, 8} {
		systems[n] = NewMemSys(slicedSpec(int(n)))
	}
	f.Fuzz(func(t *testing.T, addr uint64, nRaw uint8) {
		n := []uint8{1, 2, 4, 8}[nRaw%4]
		ms := systems[n]
		s := ms.SliceOf(addr)
		if s < 0 || s >= int(n) {
			t.Fatalf("SliceOf(%#x) = %d with %d slices", addr, s, n)
		}
		local := ms.Rebase(addr)
		// Reconstruct: local line number, re-interleaved with the slice index,
		// plus the preserved byte offset.
		lineShift, sliceBits := ms.lineShift, ms.sliceBits
		back := ((local>>lineShift)<<sliceBits|uint64(s))<<lineShift | (local & ms.lineMask)
		if back != addr {
			t.Fatalf("routing not bijective: addr %#x -> (slice %d, local %#x) -> %#x", addr, s, local, back)
		}
		// Line-mates agree on the slice.
		lineBase := addr &^ ms.lineMask
		if ms.SliceOf(lineBase) != s || ms.SliceOf(lineBase|ms.lineMask) != s {
			t.Fatalf("line containing %#x split across slices", addr)
		}
	})
}

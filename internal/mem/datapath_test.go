package mem

import (
	"testing"

	"gputopdown/internal/gpu"
)

func newTestPath() *DataPath {
	spec := gpu.QuadroRTX4000()
	return NewDataPath(spec, 0, NewMemSys(spec))
}

func TestGlobalLoadHierarchy(t *testing.T) {
	dp := newTestPath()
	sectors := []uint64{0x1000, 0x1020}

	// Cold: misses everywhere, completion beyond DRAM latency.
	done, n := dp.GlobalLoad(100, sectors)
	if n != 2 {
		t.Errorf("sector count %d", n)
	}
	if done < 100+uint64(dp.spec.DRAMLatency) {
		t.Errorf("cold load done at %d, want >= %d", done, 100+dp.spec.DRAMLatency)
	}
	st := dp.Stats()
	if st.L1Misses != 2 || st.L2Misses != 2 {
		t.Errorf("cold stats %+v", st)
	}

	// Warm: L1 hits, completion at L1 latency.
	done2, _ := dp.GlobalLoad(1000, sectors)
	if done2 != 1000+uint64(dp.spec.L1Latency) {
		t.Errorf("warm load done at %d, want %d", done2, 1000+dp.spec.L1Latency)
	}
	if dp.Stats().L1Hits != 2 {
		t.Errorf("warm stats %+v", dp.Stats())
	}
}

func TestGlobalLoadL2Hit(t *testing.T) {
	dp := newTestPath()
	sectors := []uint64{0x2000}
	dp.GlobalLoad(0, sectors)
	dp.L1.Flush() // evict from L1 but keep in L2
	done, _ := dp.GlobalLoad(5000, sectors)
	if done != 5000+uint64(dp.spec.L2Latency) {
		t.Errorf("L2-hit load done at %d, want %d", done, 5000+dp.spec.L2Latency)
	}
}

func TestGlobalStoreWriteThrough(t *testing.T) {
	dp := newTestPath()
	sectors := []uint64{0x3000}
	dp.GlobalStore(0, sectors)
	if dp.L1.Probe(0x3000) {
		t.Error("store allocated in L1 (should be write-through no-allocate)")
	}
	if !dp.Mem.Probe(0x3000) {
		t.Error("store did not allocate in L2")
	}
	st := dp.Stats()
	if st.GlobalStores != 1 || st.StoreSectors != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestConstLoadIMC(t *testing.T) {
	dp := newTestPath()
	done1, hit1 := dp.ConstLoad(0, 0x160)
	if hit1 {
		t.Error("cold constant load hit")
	}
	if done1 <= uint64(dp.spec.IMCHitLatency) {
		t.Error("miss latency not applied")
	}
	done2, hit2 := dp.ConstLoad(1000, 0x160)
	if !hit2 {
		t.Error("warm constant load missed")
	}
	if done2 != 1000+uint64(dp.spec.IMCHitLatency) {
		t.Errorf("hit done at %d", done2)
	}
	st := dp.Stats()
	if st.IMCHits != 1 || st.IMCMisses != 1 || st.ConstLoads != 2 {
		t.Errorf("stats %+v", st)
	}
}

func TestAtomicSerialisation(t *testing.T) {
	dp := newTestPath()
	sectors := []uint64{0x4000}
	dp.GlobalLoad(0, sectors) // warm L2
	d1, _ := dp.Atomic(1000, sectors, 1, 1)
	d32, _ := dp.Atomic(1000, sectors, 32, 32)
	dspread, _ := dp.Atomic(1000, sectors, 32, 1)
	if d32 <= d1 {
		t.Errorf("32-way same-address contention (%d) not slower than 1 op (%d)", d32, d1)
	}
	if dspread >= d32 {
		t.Errorf("spread atomics (%d) not faster than same-address (%d)", dspread, d32)
	}
	if dp.Stats().Atomics != 65 {
		t.Errorf("stats %+v", dp.Stats())
	}
}

func TestTexFetchSlowerThanL1(t *testing.T) {
	dp := newTestPath()
	sectors := []uint64{0x5000}
	dp.GlobalLoad(0, sectors) // warm caches
	doneTex, _ := dp.TexFetch(1000, sectors)
	if doneTex < 1000+uint64(dp.spec.TEXLatency) {
		t.Errorf("tex fetch done at %d, want >= %d", doneTex, 1000+dp.spec.TEXLatency)
	}
}

func TestFlushKeepsStats(t *testing.T) {
	dp := newTestPath()
	dp.GlobalLoad(0, []uint64{0x100})
	dp.ConstLoad(0, 0)
	dp.Flush()
	if dp.L1.Probe(0x100) {
		t.Error("flush left L1 data")
	}
	if dp.Stats().GlobalLoads != 1 {
		t.Error("flush cleared stats")
	}
	dp.ResetStats()
	if dp.Stats().GlobalLoads != 0 {
		t.Error("ResetStats kept stats")
	}
}

func TestDataPathDeterminism(t *testing.T) {
	run := func() DataPathStats {
		dp := newTestPath()
		for i := 0; i < 100; i++ {
			dp.GlobalLoad(uint64(i*10), []uint64{uint64(i%7) * 32, uint64(i%13) * 4096})
			dp.ConstLoad(uint64(i*10), int64(i%5)*64)
		}
		return dp.Stats()
	}
	if run() != run() {
		t.Error("identical access sequences produced different stats")
	}
}

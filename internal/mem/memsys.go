package mem

import (
	"fmt"

	"gputopdown/internal/gpu"
)

// MemSys is the device-shared half of the memory hierarchy: the L2 cache
// split into Spec.L2Slices address-interleaved slices, each backed by its own
// DRAM channel with an equal share of the device bandwidth and request-queue
// depth. Consecutive cache lines map to consecutive slices (the interleaving
// real GPUs use across memory partitions), so streaming traffic spreads
// evenly.
//
// The slicing is part of the device model, not an engine option: every launch
// engine simulates the same sliced structure, which is what lets the parallel
// engine assign each slice to one worker and drain per-slice request
// mailboxes without any cross-worker synchronisation on cache or channel
// state.
type MemSys struct {
	spec    *gpu.Spec
	nSlices int
	// Address routing: slice = bits of the line number just above the line
	// offset; the slice-local address drops those bits so each slice sees a
	// dense, private line space.
	lineShift uint
	sliceBits uint
	sliceMask uint64
	lineMask  uint64

	slices []*Cache
	chans  []*DRAM
}

// NewMemSys builds the sliced L2 + DRAM channels for a device spec.
func NewMemSys(spec *gpu.Spec) *MemSys {
	n := spec.L2Slices
	if n < 1 {
		n = 1
	}
	if n&(n-1) != 0 {
		panic(fmt.Sprintf("mem: L2Slices = %d (want a power of two)", n))
	}
	lineShift, ok := log2u64(uint64(spec.LineSize))
	if !ok {
		panic(fmt.Sprintf("mem: line size %d (want a power of two)", spec.LineSize))
	}
	sliceBits, _ := log2u64(uint64(n))
	m := &MemSys{
		spec:      spec,
		nSlices:   n,
		lineShift: lineShift,
		sliceBits: sliceBits,
		sliceMask: uint64(n) - 1,
		lineMask:  uint64(spec.LineSize) - 1,
		slices:    make([]*Cache, n),
		chans:     make([]*DRAM, n),
	}
	chanDepth := spec.DRAMQueueDepth / n
	if chanDepth < 1 {
		chanDepth = 1
	}
	for i := 0; i < n; i++ {
		m.slices[i] = NewCache(fmt.Sprintf("L2[%d]", i), spec.L2Size/n, spec.L2Ways,
			spec.LineSize, spec.SectorSize)
		m.chans[i] = NewDRAM(spec.DRAMLatency, spec.DRAMBytesPerCycle/float64(n), chanDepth)
	}
	return m
}

// NumSlices returns the slice count.
func (m *MemSys) NumSlices() int { return m.nSlices }

// SliceOf returns the slice owning the cache line containing addr. Every
// address maps to exactly one slice, and all bytes of one line map to the
// same slice.
func (m *MemSys) SliceOf(addr uint64) int {
	return int((addr >> m.lineShift) & m.sliceMask)
}

// Rebase converts addr to its slice-local form: the slice-index bits are
// dropped from the line number so each slice addresses a dense line space
// (set indexing and tags then behave exactly like an unsliced cache of the
// slice's size). The byte offset within the line is preserved.
func (m *MemSys) Rebase(addr uint64) uint64 {
	return ((addr >> (m.lineShift + m.sliceBits)) << m.lineShift) | (addr & m.lineMask)
}

// Unrebase is the inverse of Rebase: it reconstructs the original device
// address from a slice index and a slice-local address. For every addr,
// Unrebase(SliceOf(addr), Rebase(addr)) == addr — the bijection the invariant
// checker (and FuzzSliceRouting) asserts.
func (m *MemSys) Unrebase(slice int, local uint64) uint64 {
	line := (local >> m.lineShift << m.sliceBits) | uint64(slice)
	return (line << m.lineShift) | (local & m.lineMask)
}

// AccessSlice runs a lookup for addr (an original, un-rebased address) on the
// given slice, filling on miss, and reports whether it hit. The caller must
// pass slice == SliceOf(addr); splitting routing from access lets the
// parallel engine's drain loop reuse a precomputed slice tag.
func (m *MemSys) AccessSlice(slice int, addr uint64) bool {
	return m.slices[slice].Access(m.Rebase(addr))
}

// Access routes addr to its slice and performs the lookup.
func (m *MemSys) Access(addr uint64) bool {
	return m.AccessSlice(m.SliceOf(addr), addr)
}

// Probe reports whether the sector containing addr is present, without
// modifying any state.
func (m *MemSys) Probe(addr uint64) bool {
	return m.slices[m.SliceOf(addr)].Probe(m.Rebase(addr))
}

// RequestSlice enqueues an n-byte transfer on the given slice's DRAM channel
// and returns its completion cycle.
func (m *MemSys) RequestSlice(slice int, now uint64, n int) uint64 {
	return m.chans[slice].Request(now, n)
}

// Slice exposes one L2 slice for tests.
func (m *MemSys) Slice(i int) *Cache { return m.slices[i] }

// Chan exposes one DRAM channel for tests.
func (m *MemSys) Chan(i int) *DRAM { return m.chans[i] }

// L2Stats returns the slice-aggregated L2 statistics.
func (m *MemSys) L2Stats() CacheStats {
	var st CacheStats
	for _, c := range m.slices {
		s := c.Stats()
		st.Lookups += s.Lookups
		st.Hits += s.Hits
		st.Misses += s.Misses
		st.Evictions += s.Evictions
	}
	return st
}

// DRAMStats returns the channel-aggregated DRAM statistics.
func (m *MemSys) DRAMStats() DRAMStats {
	var st DRAMStats
	for _, d := range m.chans {
		s := d.Stats()
		st.Requests += s.Requests
		st.Bytes += s.Bytes
		st.QueueRejects += s.QueueRejects
	}
	return st
}

// FlushL2 invalidates every slice (statistics preserved).
func (m *MemSys) FlushL2() {
	for _, c := range m.slices {
		c.Flush()
	}
}

// ResetDRAM clears every channel's queue state and statistics.
func (m *MemSys) ResetDRAM() {
	for _, d := range m.chans {
		d.Reset()
	}
}

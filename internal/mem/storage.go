package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Storage is flat byte-addressable device memory with a bump allocator. The
// first page is left unmapped so that address 0 can serve as a null pointer;
// out-of-bounds accesses panic, turning kernel addressing bugs into
// immediate failures instead of silent corruption.
type Storage struct {
	data []byte
	next uint64
	base uint64
}

// NewStorage creates a device memory of the given size in bytes.
func NewStorage(size int) *Storage {
	const page = 4096
	return &Storage{data: make([]byte, size), next: page, base: page}
}

// Alloc reserves n bytes (8-byte aligned) and returns the device address.
func (s *Storage) Alloc(n int) uint64 {
	if n < 0 {
		panic("mem: negative allocation")
	}
	addr := s.next
	s.next += uint64(n)
	s.next = (s.next + 7) &^ 7
	if s.next > uint64(len(s.data)) {
		panic(fmt.Sprintf("mem: device out of memory (%d of %d bytes used)", s.next, len(s.data)))
	}
	return addr
}

// FreeAll releases every allocation (the data itself is retained).
func (s *Storage) FreeAll() { s.next = s.base }

// Size returns the total capacity in bytes.
func (s *Storage) Size() int { return len(s.data) }

// Clone returns an independent storage with the same capacity, watermark and
// allocated contents. Bytes beyond the watermark are not copied (they are
// unreachable until re-allocated), so cloning costs O(allocated), not
// O(capacity) — what makes per-pass device cloning in the concurrent replay
// engine affordable.
func (s *Storage) Clone() *Storage {
	c := &Storage{data: make([]byte, len(s.data)), next: s.next, base: s.base}
	copy(c.data[s.base:s.next], s.data[s.base:s.next])
	return c
}

// CopyFrom makes s's allocated state identical to src's: same watermark and
// allocated contents. Capacities must match.
func (s *Storage) CopyFrom(src *Storage) {
	if len(s.data) != len(src.data) {
		panic(fmt.Sprintf("mem: CopyFrom between storages of %d and %d bytes", len(s.data), len(src.data)))
	}
	s.next = src.next
	s.base = src.base
	copy(s.data[s.base:s.next], src.data[src.base:src.next])
}

// Snapshot copies the allocated region of device memory, so a profiler can
// restore pre-kernel state between replay passes (as CUPTI's kernel replay
// save/restore does).
func (s *Storage) Snapshot() []byte {
	snap := make([]byte, s.next-s.base)
	copy(snap, s.data[s.base:s.next])
	return snap
}

// Restore writes back a Snapshot taken at the same allocation watermark.
func (s *Storage) Restore(snap []byte) {
	if uint64(len(snap)) != s.next-s.base {
		panic(fmt.Sprintf("mem: restore of %d bytes against %d allocated", len(snap), s.next-s.base))
	}
	copy(s.data[s.base:s.next], snap)
}

// AdoptSnapshot installs snap as the entire allocated region, moving the
// watermark to match. Unlike Restore it does not require the current
// watermark to agree with the snapshot's, so a cloned device can be re-synced
// to another device's state even after its own allocations diverged.
func (s *Storage) AdoptSnapshot(snap []byte) {
	n := s.base + uint64(len(snap))
	if n > uint64(len(s.data)) {
		panic(fmt.Sprintf("mem: adopt of %d bytes exceeds capacity %d", len(snap), len(s.data)))
	}
	s.next = n
	copy(s.data[s.base:n], snap)
}

// fnv1aOffset and fnv1aPrime are the 64-bit FNV-1a parameters, used for the
// cheap content hashes the replay result cache keys on.
const (
	fnv1aOffset = 14695981039346656037
	fnv1aPrime  = 1099511628211
)

// HashAllocated returns a 64-bit FNV-1a hash of the allocation watermark and
// the allocated contents — the "memory-snapshot hash" component of the replay
// result cache key. Two storages with equal hashes hold (modulo hash
// collisions) byte-identical reachable device memory.
func (s *Storage) HashAllocated() uint64 {
	h := uint64(fnv1aOffset)
	for shift := 0; shift < 64; shift += 8 {
		h ^= (s.next >> shift) & 0xFF
		h *= fnv1aPrime
	}
	for _, b := range s.data[s.base:s.next] {
		h ^= uint64(b)
		h *= fnv1aPrime
	}
	return h
}

// Mark returns the current allocation watermark, to be restored by Release —
// a scoped-arena idiom for per-launch allocations like local-memory backing.
func (s *Storage) Mark() uint64 { return s.next }

// Release rewinds the allocator to a previous Mark.
func (s *Storage) Release(mark uint64) {
	if mark < s.base || mark > s.next {
		panic(fmt.Sprintf("mem: Release(0x%x) outside [0x%x,0x%x]", mark, s.base, s.next))
	}
	s.next = mark
}

// InBounds reports whether [addr, addr+n) is a mapped device range.
func (s *Storage) InBounds(addr uint64, n int) bool {
	return addr >= s.base && addr+uint64(n) <= s.next
}

func (s *Storage) check(addr uint64, n int) {
	if !s.InBounds(addr, n) {
		panic(fmt.Sprintf("mem: access of %d bytes at 0x%x outside allocated [0x%x,0x%x)", n, addr, s.base, s.next))
	}
}

// Read returns size (4 or 8) bytes at addr, zero-extended to 64 bits.
func (s *Storage) Read(addr uint64, size int) uint64 {
	s.check(addr, size)
	switch size {
	case 4:
		return uint64(binary.LittleEndian.Uint32(s.data[addr:]))
	case 8:
		return binary.LittleEndian.Uint64(s.data[addr:])
	default:
		panic(fmt.Sprintf("mem: unsupported access size %d", size))
	}
}

// Write stores the low size (4 or 8) bytes of v at addr.
func (s *Storage) Write(addr uint64, v uint64, size int) {
	s.check(addr, size)
	switch size {
	case 4:
		binary.LittleEndian.PutUint32(s.data[addr:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(s.data[addr:], v)
	default:
		panic(fmt.Sprintf("mem: unsupported access size %d", size))
	}
}

// ReadF32 reads a float32 at addr.
func (s *Storage) ReadF32(addr uint64) float32 {
	return math.Float32frombits(uint32(s.Read(addr, 4)))
}

// WriteF32 stores a float32 at addr.
func (s *Storage) WriteF32(addr uint64, v float32) {
	s.Write(addr, uint64(math.Float32bits(v)), 4)
}

// WriteU32Slice copies a []uint32 to device memory starting at addr.
func (s *Storage) WriteU32Slice(addr uint64, vs []uint32) {
	for i, v := range vs {
		s.Write(addr+uint64(i)*4, uint64(v), 4)
	}
}

// WriteF32Slice copies a []float32 to device memory starting at addr.
func (s *Storage) WriteF32Slice(addr uint64, vs []float32) {
	for i, v := range vs {
		s.WriteF32(addr+uint64(i)*4, v)
	}
}

// ReadU32Slice copies n uint32 values from device memory at addr.
func (s *Storage) ReadU32Slice(addr uint64, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(s.Read(addr+uint64(i)*4, 4))
	}
	return out
}

// ReadF32Slice copies n float32 values from device memory at addr.
func (s *Storage) ReadF32Slice(addr uint64, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = s.ReadF32(addr + uint64(i)*4)
	}
	return out
}

// ConstantBank is the device's read-only constant space: launch parameters
// live in the low region (kernel.ParamBase onward) and user __constant__
// data above kernel.ParamSpace. It is backed by plain bytes; timing is
// applied by the IMC cache in the data path.
type ConstantBank struct {
	data []byte
}

// NewConstantBank creates a constant bank of the given size.
func NewConstantBank(size int) *ConstantBank {
	return &ConstantBank{data: make([]byte, size)}
}

// Size returns the bank capacity in bytes.
func (c *ConstantBank) Size() int { return len(c.data) }

func (c *ConstantBank) check(off int64, n int) {
	if off < 0 || int(off)+n > len(c.data) {
		panic(fmt.Sprintf("mem: constant access of %d bytes at 0x%x outside bank of %d bytes", n, off, len(c.data)))
	}
}

// Read returns size (4 or 8) bytes at offset off.
func (c *ConstantBank) Read(off int64, size int) uint64 {
	c.check(off, size)
	switch size {
	case 4:
		return uint64(binary.LittleEndian.Uint32(c.data[off:]))
	case 8:
		return binary.LittleEndian.Uint64(c.data[off:])
	default:
		panic(fmt.Sprintf("mem: unsupported constant access size %d", size))
	}
}

// Write stores the low size bytes of v at offset off (host-side API).
func (c *ConstantBank) Write(off int64, v uint64, size int) {
	c.check(off, size)
	switch size {
	case 4:
		binary.LittleEndian.PutUint32(c.data[off:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(c.data[off:], v)
	default:
		panic(fmt.Sprintf("mem: unsupported constant access size %d", size))
	}
}

// WriteF32Slice copies float32 values into the bank at offset off.
func (c *ConstantBank) WriteF32Slice(off int64, vs []float32) {
	for i, v := range vs {
		c.Write(off+int64(i)*4, uint64(math.Float32bits(v)), 4)
	}
}

// Clear zeroes the bank.
func (c *ConstantBank) Clear() {
	for i := range c.data {
		c.data[i] = 0
	}
}

// Clone returns an independent copy of the bank.
func (c *ConstantBank) Clone() *ConstantBank {
	out := &ConstantBank{data: make([]byte, len(c.data))}
	copy(out.data, c.data)
	return out
}

// CopyFrom overwrites the bank with src's contents. Sizes must match.
func (c *ConstantBank) CopyFrom(src *ConstantBank) {
	if len(c.data) != len(src.data) {
		panic(fmt.Sprintf("mem: constant CopyFrom between banks of %d and %d bytes", len(c.data), len(src.data)))
	}
	copy(c.data, src.data)
}

// Hash returns a 64-bit FNV-1a hash of the bank contents, the constant-space
// component of the replay result cache key (applications may rewrite
// __constant__ data between launches, e.g. kmeans centroids).
func (c *ConstantBank) Hash() uint64 {
	h := uint64(fnv1aOffset)
	for _, b := range c.data {
		h ^= uint64(b)
		h *= fnv1aPrime
	}
	return h
}

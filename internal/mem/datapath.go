package mem

import "gputopdown/internal/gpu"

// DataPathStats counts per-SM memory-path activity, feeding the PMU's
// memory counters.
type DataPathStats struct {
	GlobalLoads  uint64 // warp-level load instructions
	GlobalStores uint64
	LoadSectors  uint64
	StoreSectors uint64
	L1Hits       uint64
	L1Misses     uint64
	L2Hits       uint64
	L2Misses     uint64
	ConstLoads   uint64
	IMCHits      uint64
	IMCMisses    uint64
	TexFetches   uint64
	Atomics      uint64
}

// DataPath is the per-SM slice of the memory hierarchy: a private L1 data
// cache and immediate-constant cache in front of the device-shared sliced
// L2/DRAM system. All methods take the SM's current cycle and return the
// completion cycle of the access.
type DataPath struct {
	spec *gpu.Spec
	L1   *Cache
	IMC  *Cache
	Mem  *MemSys // shared with every other SM
	st   DataPathStats
}

// NewDataPath builds the private caches for one SM around the shared memory
// system.
func NewDataPath(spec *gpu.Spec, smID int, ms *MemSys) *DataPath {
	return &DataPath{
		spec: spec,
		L1:   NewCache("L1D", spec.L1Size, spec.L1Ways, spec.LineSize, spec.SectorSize),
		IMC:  NewCache("IMC", spec.IMCSize, spec.IMCWays, 64, 64),
		Mem:  ms,
	}
}

// loadSector runs one 32-byte sector through L1→L2→DRAM and returns its
// completion cycle.
func (dp *DataPath) loadSector(now uint64, addr uint64) uint64 {
	if dp.L1.Access(addr) {
		dp.st.L1Hits++
		return now + uint64(dp.spec.L1Latency)
	}
	dp.st.L1Misses++
	return dp.SharedLoadSector(now, addr, dp.Mem.SliceOf(addr), &dp.st)
}

// SharedLoadSector runs one sector through the shared L2 slice → DRAM channel
// (the part of a load below the SM-private L1) and returns its completion
// cycle. The caller passes slice == Mem.SliceOf(addr). L2 hit/miss counts go
// to st, not the DataPath's own statistics: the parallel engine drains slices
// of one SM from different workers concurrently and merges per-slice deltas
// afterwards (sums commute, so the merged totals match the sequential
// engine's bit for bit). The sequential path passes &dp.st.
func (dp *DataPath) SharedLoadSector(now uint64, addr uint64, slice int, st *DataPathStats) uint64 {
	if dp.Mem.AccessSlice(slice, addr) {
		st.L2Hits++
		return now + uint64(dp.spec.L2Latency)
	}
	st.L2Misses++
	done := dp.Mem.RequestSlice(slice, now, int(dp.spec.SectorSize))
	base := now + uint64(dp.spec.DRAMLatency)
	if done < base {
		done = base
	}
	return done
}

// SharedStoreSector runs one store sector through the shared L2 slice,
// charging the DRAM channel on a write miss.
func (dp *DataPath) SharedStoreSector(now uint64, addr uint64, slice int, st *DataPathStats) {
	if dp.Mem.AccessSlice(slice, addr) {
		st.L2Hits++
		return
	}
	st.L2Misses++
	dp.Mem.RequestSlice(slice, now, int(dp.spec.SectorSize))
}

// SharedAtomicSector runs one atomic sector through the shared L2 slice and
// returns its completion cycle (0 on an L2 hit: a hit does not lengthen the
// atomic's L2-latency base).
func (dp *DataPath) SharedAtomicSector(now uint64, addr uint64, slice int, st *DataPathStats) uint64 {
	if dp.Mem.AccessSlice(slice, addr) {
		st.L2Hits++
		return 0
	}
	st.L2Misses++
	d := dp.Mem.RequestSlice(slice, now, int(dp.spec.SectorSize))
	if base := now + uint64(dp.spec.DRAMLatency); d < base {
		d = base
	}
	return d
}

// MergeSharedStats folds a per-slice L2 hit/miss delta (accumulated by a
// parallel drain) into the DataPath's statistics.
func (dp *DataPath) MergeSharedStats(st *DataPathStats) {
	dp.st.L2Hits += st.L2Hits
	dp.st.L2Misses += st.L2Misses
}

// The Begin* methods record the instruction-level statistics of a deferred
// memory operation during the compute phase, before its shared-memory half
// has run. Together with L1LoadSector they let the SM split GlobalLoad /
// GlobalStore / Atomic / TexFetch into a phase-A (SM-private) and a phase-B
// (per-slice) part that sum to exactly the sequential accounting.

// BeginDeferredLoad records a global load of n sectors.
func (dp *DataPath) BeginDeferredLoad(n int) {
	dp.st.GlobalLoads++
	dp.st.LoadSectors += uint64(n)
}

// BeginDeferredStore records a global store of n sectors.
func (dp *DataPath) BeginDeferredStore(n int) {
	dp.st.GlobalStores++
	dp.st.StoreSectors += uint64(n)
}

// BeginDeferredAtomic records a warp atomic with ops active lanes.
func (dp *DataPath) BeginDeferredAtomic(ops int) { dp.st.Atomics += uint64(ops) }

// BeginDeferredTex records a texture fetch.
func (dp *DataPath) BeginDeferredTex() { dp.st.TexFetches++ }

// L1LoadSector runs one sector through the SM-private L1 only, reporting
// whether it hit; a miss is routed to the shared system by the caller.
func (dp *DataPath) L1LoadSector(addr uint64) bool {
	if dp.L1.Access(addr) {
		dp.st.L1Hits++
		return true
	}
	dp.st.L1Misses++
	return false
}

// AtomicAdjust applies the atomic unit's serialisation penalties on top of a
// request's cache/DRAM completion cycle: same-address RMWs serialise
// strictly, distinct addresses still share the unit's throughput.
func (dp *DataPath) AtomicAdjust(done uint64, ops, maxContention int) uint64 {
	const (
		sameAddrPer = 4 // cycles per additional same-address RMW
		throughput  = 1 // cycles per additional distinct-address RMW
	)
	if maxContention > 1 {
		done += uint64((maxContention - 1) * sameAddrPer)
	}
	if extra := ops - maxContention; extra > 0 {
		done += uint64(extra * throughput)
	}
	return done
}

// GlobalLoad services a warp global-load touching the given sectors and
// returns (completion cycle, sector count). The warp's destination register
// becomes ready at the completion cycle (long-scoreboard dependency).
func (dp *DataPath) GlobalLoad(now uint64, sectors []uint64) (uint64, int) {
	dp.st.GlobalLoads++
	dp.st.LoadSectors += uint64(len(sectors))
	done := now + uint64(dp.spec.L1Latency)
	for _, s := range sectors {
		if d := dp.loadSector(now, s); d > done {
			done = d
		}
	}
	return done, len(sectors)
}

// GlobalStore services a warp global-store. NVIDIA L1s are write-through /
// no-allocate: stores go straight to L2 (allocating there). Stores are
// posted — the warp is done with one once the write queue accepts it — but
// full memory-order visibility (what MEMBAR waits on) takes an L2 round
// trip. Returns (posted completion, visibility completion, sector count).
// DRAM bandwidth is still charged for L2 write misses.
func (dp *DataPath) GlobalStore(now uint64, sectors []uint64) (posted, visible uint64, n int) {
	dp.st.GlobalStores++
	dp.st.StoreSectors += uint64(len(sectors))
	posted = now + uint64(dp.spec.L1Latency) + uint64(len(sectors))
	visible = now + uint64(dp.spec.L2Latency)
	for _, s := range sectors {
		dp.SharedStoreSector(now, s, dp.Mem.SliceOf(s), &dp.st)
	}
	return posted, visible, len(sectors)
}

// ConstLoad services an immediate-constant load at a bank offset and reports
// (completion cycle, hit). Misses pay the IMC refill latency — the stall ncu
// reports as stalled_imc_miss.
func (dp *DataPath) ConstLoad(now uint64, off int64) (uint64, bool) {
	dp.st.ConstLoads++
	if dp.IMC.Access(uint64(off)) {
		dp.st.IMCHits++
		return now + uint64(dp.spec.IMCHitLatency), true
	}
	dp.st.IMCMisses++
	return now + uint64(dp.spec.IMCHitLatency+dp.spec.IMCMissExtra), false
}

// TexFetch services a texture fetch through the L1TEX path.
func (dp *DataPath) TexFetch(now uint64, sectors []uint64) (uint64, int) {
	dp.st.TexFetches++
	done := now + uint64(dp.spec.TEXLatency)
	for _, s := range sectors {
		d := dp.loadSector(now, s)
		// The texture pipeline adds filtering latency on top of the cache
		// access.
		d += uint64(dp.spec.TEXLatency - dp.spec.L1Latency)
		if d > done {
			done = d
		}
	}
	return done, len(sectors)
}

// Atomic services a warp atomic touching the given sectors with `ops`
// active lane-operations, of which at most `maxContention` target the same
// address. Atomics bypass L1 and execute at the L2; same-address operations
// serialise strictly (the L2 ROP performs one RMW at a time per address)
// and distinct addresses still share the L2 atomic unit's throughput.
func (dp *DataPath) Atomic(now uint64, sectors []uint64, ops, maxContention int) (uint64, int) {
	dp.st.Atomics += uint64(ops)
	done := now + uint64(dp.spec.L2Latency)
	for _, s := range sectors {
		if d := dp.SharedAtomicSector(now, s, dp.Mem.SliceOf(s), &dp.st); d > done {
			done = d
		}
	}
	return dp.AtomicAdjust(done, ops, maxContention), len(sectors)
}

// Stats returns a copy of the accumulated statistics.
func (dp *DataPath) Stats() DataPathStats { return dp.st }

// Flush invalidates the SM-private caches (profiler replay hygiene).
func (dp *DataPath) Flush() {
	dp.L1.Flush()
	dp.IMC.Flush()
}

// FlushIMC invalidates only the immediate-constant cache, which happens on
// every kernel launch because the constant bank contents (parameters,
// __constant__ data) may have changed.
func (dp *DataPath) FlushIMC() { dp.IMC.Flush() }

// ResetStats zeroes the statistics without touching cache contents.
func (dp *DataPath) ResetStats() { dp.st = DataPathStats{} }

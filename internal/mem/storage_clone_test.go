package mem

import (
	"reflect"
	"testing"
)

func TestStorageCloneIndependence(t *testing.T) {
	s := NewStorage(1 << 16)
	a := s.Alloc(64)
	s.WriteU32Slice(a, []uint32{1, 2, 3, 4})

	c := s.Clone()
	if c.Size() != s.Size() || c.Mark() != s.Mark() {
		t.Fatalf("clone shape (%d,%d) != original (%d,%d)", c.Size(), c.Mark(), s.Size(), s.Mark())
	}
	if got := c.ReadU32Slice(a, 4); !reflect.DeepEqual(got, []uint32{1, 2, 3, 4}) {
		t.Fatalf("clone contents = %v", got)
	}
	c.WriteU32Slice(a, []uint32{9, 9, 9, 9})
	if got := s.ReadU32Slice(a, 4); !reflect.DeepEqual(got, []uint32{1, 2, 3, 4}) {
		t.Fatal("mutating the clone changed the original")
	}
}

func TestStorageAdoptSnapshotMovesWatermark(t *testing.T) {
	s := NewStorage(1 << 16)
	a := s.Alloc(32)
	s.WriteU32Slice(a, []uint32{7, 7})
	snap := s.Snapshot()

	// A drifted clone: extra allocation moved its watermark.
	c := s.Clone()
	c.Alloc(128)
	if c.Mark() == s.Mark() {
		t.Fatal("test setup: watermarks should differ")
	}
	c.AdoptSnapshot(snap)
	if c.Mark() != s.Mark() {
		t.Fatalf("AdoptSnapshot left watermark %d, want %d", c.Mark(), s.Mark())
	}
	if got := c.ReadU32Slice(a, 2); !reflect.DeepEqual(got, []uint32{7, 7}) {
		t.Fatalf("adopted contents = %v, want [7 7]", got)
	}
}

func TestHashAllocatedSensitivity(t *testing.T) {
	s := NewStorage(1 << 16)
	a := s.Alloc(64)
	s.WriteU32Slice(a, []uint32{1, 2, 3, 4})
	h0 := s.HashAllocated()

	if s.Clone().HashAllocated() != h0 {
		t.Fatal("clone hashes differently from its source")
	}
	s.WriteU32Slice(a, []uint32{1, 2, 3, 5})
	if s.HashAllocated() == h0 {
		t.Fatal("content change did not change the hash")
	}
	s.WriteU32Slice(a, []uint32{1, 2, 3, 4})
	if s.HashAllocated() != h0 {
		t.Fatal("hash is not a pure function of allocated bytes")
	}
	s.Alloc(8)
	if s.HashAllocated() == h0 {
		t.Fatal("watermark move did not change the hash")
	}
}

func TestConstantBankCloneAndHash(t *testing.T) {
	b := NewConstantBank(1 << 12)
	b.Write(0x200, 0xABCD, 8)
	h0 := b.Hash()

	c := b.Clone()
	if c.Hash() != h0 {
		t.Fatal("constant clone hashes differently")
	}
	c.Write(0x200, 0x1234, 8)
	if b.Read(0x200, 8) != 0xABCD {
		t.Fatal("mutating constant clone changed the original")
	}
	if c.Hash() == h0 {
		t.Fatal("constant rewrite did not change the hash")
	}
	c.CopyFrom(b)
	if c.Hash() != h0 || c.Read(0x200, 8) != 0xABCD {
		t.Fatal("CopyFrom did not restore the source state")
	}
}

package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache("t", 1024, 2, 128, 32)
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) {
		t.Error("repeat access missed")
	}
	if !c.Access(31) {
		t.Error("same-sector access missed")
	}
	if c.Access(32) {
		t.Error("adjacent sector of same line hit before fill")
	}
	if !c.Access(32) {
		t.Error("filled sector missed")
	}
	st := c.Stats()
	if st.Hits+st.Misses != st.Lookups {
		t.Errorf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, st.Lookups)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 2 sets: lines 0 and 2 map to set 0, line 4 also set 0.
	c := NewCache("t", 512, 2, 128, 32)
	if c.Sets() != 2 || c.Ways() != 2 {
		t.Fatalf("geometry sets=%d ways=%d", c.Sets(), c.Ways())
	}
	c.Access(0)   // line 0 -> set 0
	c.Access(256) // line 2 -> set 0
	c.Access(0)   // touch line 0 so line 2 is LRU
	c.Access(512) // line 4 -> set 0, evicts line 2
	if !c.Probe(0) {
		t.Error("recently used line evicted")
	}
	if c.Probe(256) {
		t.Error("LRU line survived eviction")
	}
	if c.Stats().Evictions == 0 {
		t.Error("eviction not counted")
	}
}

func TestCacheFlush(t *testing.T) {
	c := NewCache("t", 1024, 2, 128, 32)
	c.Access(64)
	c.Flush()
	if c.Probe(64) {
		t.Error("flush left data behind")
	}
	if c.Stats().Lookups != 1 {
		t.Error("flush cleared stats")
	}
	c.Reset()
	if c.Stats().Lookups != 0 {
		t.Error("reset kept stats")
	}
}

// Property: for any access sequence, Hits+Misses == Lookups and a repeat of
// the immediately preceding address always hits.
func TestCacheAccountingProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewCache("q", 4096, 4, 128, 32)
		for i := 0; i < int(n); i++ {
			a := uint64(rng.Intn(1 << 16))
			c.Access(a)
			if !c.Access(a) {
				return false // immediate re-access must hit
			}
		}
		st := c.Stats()
		return st.Hits+st.Misses == st.Lookups
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDRAMLatencyAndBandwidth(t *testing.T) {
	d := NewDRAM(100, 2.0, 8) // 2 bytes/cycle
	done1 := d.Request(0, 32)
	if done1 != 100 {
		t.Errorf("first request done at %d, want 100", done1)
	}
	// Second request must wait for the bus: 32B at 2B/c = 16 cycles.
	done2 := d.Request(0, 32)
	if done2 != 116 {
		t.Errorf("second request done at %d, want 116", done2)
	}
	st := d.Stats()
	if st.Requests != 2 || st.Bytes != 64 {
		t.Errorf("stats %+v", st)
	}
}

func TestDRAMQueueFull(t *testing.T) {
	d := NewDRAM(1000, 1000, 2)
	d.Request(0, 32)
	d.Request(0, 32)
	if !d.Full(0) {
		t.Error("queue of depth 2 not full after 2 in-flight requests")
	}
	if d.Full(2000) {
		t.Error("queue still full after completions drained")
	}
	if d.Stats().QueueRejects == 0 {
		t.Error("reject not counted")
	}
}

func TestTimedQueue(t *testing.T) {
	q := NewTimedQueue(2)
	q.Push(10)
	q.Push(20)
	if !q.Full(5) {
		t.Error("queue not full")
	}
	if q.Full(15) {
		t.Error("queue full after first completion")
	}
	if q.Len(15) != 1 {
		t.Errorf("Len(15) = %d", q.Len(15))
	}
	q.Reset()
	if q.Len(0) != 0 {
		t.Error("reset did not empty queue")
	}
}

func TestTimedQueueOutOfOrderPush(t *testing.T) {
	q := NewTimedQueue(4)
	q.Push(30)
	q.Push(10) // violates monotonicity; must still drain correctly
	if q.Len(20) != 1 {
		t.Errorf("Len(20) = %d, want 1", q.Len(20))
	}
}

func TestCoalesceFullyCoalesced(t *testing.T) {
	var addrs [32]uint64
	for i := range addrs {
		addrs[i] = uint64(0x1000 + i*4)
	}
	sectors := CoalesceSectors(&addrs, 0xFFFFFFFF, 4, 32)
	if len(sectors) != 4 {
		t.Errorf("coalesced 32x4B -> %d sectors, want 4", len(sectors))
	}
}

func TestCoalesceBroadcast(t *testing.T) {
	var addrs [32]uint64
	for i := range addrs {
		addrs[i] = 0x2000
	}
	if got := CoalesceSectors(&addrs, 0xFFFFFFFF, 4, 32); len(got) != 1 {
		t.Errorf("broadcast -> %d sectors, want 1", len(got))
	}
}

func TestCoalesceStrided(t *testing.T) {
	var addrs [32]uint64
	for i := range addrs {
		addrs[i] = uint64(0x1000 + i*128) // one sector each
	}
	if got := CoalesceSectors(&addrs, 0xFFFFFFFF, 4, 32); len(got) != 32 {
		t.Errorf("stride-128 -> %d sectors, want 32", len(got))
	}
}

func TestCoalesceRespectsMask(t *testing.T) {
	var addrs [32]uint64
	for i := range addrs {
		addrs[i] = uint64(i * 128)
	}
	if got := CoalesceSectors(&addrs, 0x3, 4, 32); len(got) != 2 {
		t.Errorf("2 active lanes -> %d sectors, want 2", len(got))
	}
	if got := CoalesceSectors(&addrs, 0, 4, 32); len(got) != 0 {
		t.Errorf("no active lanes -> %d sectors, want 0", len(got))
	}
}

func TestCoalesceCrossSector(t *testing.T) {
	var addrs [32]uint64
	addrs[0] = 30 // 8-byte access spanning sectors 0 and 1
	if got := CoalesceSectors(&addrs, 1, 8, 32); len(got) != 2 {
		t.Errorf("cross-sector 8B access -> %d sectors, want 2", len(got))
	}
}

// Property: sector count is between 1 and popcount(mask)*2 for active masks,
// results are sorted and unique, and every result is sector-aligned.
func TestCoalesceProperty(t *testing.T) {
	f := func(seed int64, mask uint32) bool {
		if mask == 0 {
			mask = 1
		}
		rng := rand.New(rand.NewSource(seed))
		var addrs [32]uint64
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(1 << 20))
		}
		got := CoalesceSectors(&addrs, mask, 4, 32)
		active := 0
		for i := 0; i < 32; i++ {
			if mask&(1<<i) != 0 {
				active++
			}
		}
		if len(got) < 1 || len(got) > active*2 {
			return false
		}
		for i, s := range got {
			if s%32 != 0 {
				return false
			}
			if i > 0 && got[i-1] >= s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBankConflicts(t *testing.T) {
	var addrs [32]uint64
	// Conflict-free: consecutive words.
	for i := range addrs {
		addrs[i] = uint64(i * 4)
	}
	if d := BankConflictDegree(&addrs, 0xFFFFFFFF, 4); d != 1 {
		t.Errorf("consecutive words degree = %d, want 1", d)
	}
	// 2-way conflict: stride 2 words -> lanes 0 and 16 share bank 0.
	for i := range addrs {
		addrs[i] = uint64(i * 8)
	}
	if d := BankConflictDegree(&addrs, 0xFFFFFFFF, 4); d != 2 {
		t.Errorf("stride-2 degree = %d, want 2", d)
	}
	// Worst case: all lanes hit bank 0 with distinct words.
	for i := range addrs {
		addrs[i] = uint64(i * 4 * SharedBanks)
	}
	if d := BankConflictDegree(&addrs, 0xFFFFFFFF, 4); d != 32 {
		t.Errorf("same-bank degree = %d, want 32", d)
	}
	// Broadcast: same word everywhere.
	for i := range addrs {
		addrs[i] = 128
	}
	if d := BankConflictDegree(&addrs, 0xFFFFFFFF, 4); d != 1 {
		t.Errorf("broadcast degree = %d, want 1", d)
	}
}

func TestBankConflictDegreeBounds(t *testing.T) {
	f := func(seed int64, mask uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		var addrs [32]uint64
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(1<<14)) &^ 3
		}
		d := BankConflictDegree(&addrs, mask, 4)
		if mask == 0 {
			return d == 0
		}
		return d >= 1 && d <= 32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniqueAddrs(t *testing.T) {
	var addrs [32]uint64
	for i := range addrs {
		addrs[i] = uint64(i % 4)
	}
	if got := UniqueAddrs(&addrs, 0xFFFFFFFF); got != 4 {
		t.Errorf("UniqueAddrs = %d, want 4", got)
	}
	if got := UniqueAddrs(&addrs, 0x1); got != 1 {
		t.Errorf("UniqueAddrs single lane = %d, want 1", got)
	}
}

func TestStorageAllocReadWrite(t *testing.T) {
	s := NewStorage(1 << 20)
	a := s.Alloc(64)
	b := s.Alloc(64)
	if a == 0 || b == a {
		t.Fatalf("alloc returned %d, %d", a, b)
	}
	if a%8 != 0 || b%8 != 0 {
		t.Error("allocations not 8-byte aligned")
	}
	s.Write(a, 0xDEADBEEF, 4)
	if got := s.Read(a, 4); got != 0xDEADBEEF {
		t.Errorf("read back %x", got)
	}
	s.Write(b, 0x1122334455667788, 8)
	if got := s.Read(b, 8); got != 0x1122334455667788 {
		t.Errorf("read back %x", got)
	}
	s.WriteF32(a+8, 3.5)
	if got := s.ReadF32(a + 8); got != 3.5 {
		t.Errorf("float read back %g", got)
	}
}

func TestStorageBoundsPanics(t *testing.T) {
	s := NewStorage(1 << 16)
	a := s.Alloc(16)
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds read did not panic")
		}
	}()
	_ = s.Read(a+16384, 4)
}

func TestStorageNullPagePanics(t *testing.T) {
	s := NewStorage(1 << 16)
	defer func() {
		if recover() == nil {
			t.Error("null-page access did not panic")
		}
	}()
	_ = s.Read(0, 4)
}

func TestStorageSlices(t *testing.T) {
	s := NewStorage(1 << 16)
	a := s.Alloc(128)
	in := []float32{1, 2, 3, 4}
	s.WriteF32Slice(a, in)
	out := s.ReadF32Slice(a, 4)
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("slice roundtrip %v != %v", in, out)
		}
	}
	u := []uint32{9, 8, 7}
	s.WriteU32Slice(a+64, u)
	got := s.ReadU32Slice(a+64, 3)
	for i := range u {
		if u[i] != got[i] {
			t.Fatalf("u32 roundtrip %v != %v", u, got)
		}
	}
}

func TestStorageFreeAll(t *testing.T) {
	s := NewStorage(1 << 16)
	a := s.Alloc(32)
	s.FreeAll()
	b := s.Alloc(32)
	if a != b {
		t.Errorf("FreeAll did not rewind allocator: %d vs %d", a, b)
	}
}

func TestConstantBank(t *testing.T) {
	c := NewConstantBank(4096)
	c.Write(0x160, 42, 8)
	if got := c.Read(0x160, 8); got != 42 {
		t.Errorf("read back %d", got)
	}
	c.Write(8, 0xFFFF, 4)
	if got := c.Read(8, 4); got != 0xFFFF {
		t.Errorf("read back %x", got)
	}
	c.WriteF32Slice(256, []float32{1.5, 2.5})
	if got := c.Read(260, 4); got == 0 {
		t.Error("float slice write missing")
	}
	c.Clear()
	if c.Read(0x160, 8) != 0 {
		t.Error("clear left data")
	}
}

func TestConstantBankBoundsPanics(t *testing.T) {
	c := NewConstantBank(64)
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds constant read did not panic")
		}
	}()
	_ = c.Read(64, 4)
}

// referenceCache is an obviously-correct model: a map of resident sectors
// with exact LRU order per set, against which the real sectored cache is
// checked on random access streams.
type referenceCache struct {
	sets, ways           int
	lineSize, sectorSize uint64
	// lines[set] is LRU-ordered, most recent last; each entry is a tag with
	// its resident sector set.
	lines [][]refLine
}

type refLine struct {
	tag     uint64
	sectors map[uint64]bool
}

func newReferenceCache(size, ways, lineSize, sectorSize int) *referenceCache {
	sets := size / (ways * lineSize)
	if sets < 1 {
		sets = 1
	}
	r := &referenceCache{sets: sets, ways: ways, lineSize: uint64(lineSize), sectorSize: uint64(sectorSize)}
	r.lines = make([][]refLine, sets)
	return r
}

func (r *referenceCache) access(addr uint64) bool {
	lineAddr := addr / r.lineSize
	tag := lineAddr / uint64(r.sets)
	set := int(lineAddr % uint64(r.sets))
	sector := (addr % r.lineSize) / r.sectorSize
	ls := r.lines[set]
	for i := range ls {
		if ls[i].tag == tag {
			hit := ls[i].sectors[sector]
			ls[i].sectors[sector] = true
			// Move to most-recent position.
			ln := ls[i]
			copy(ls[i:], ls[i+1:])
			ls[len(ls)-1] = ln
			return hit
		}
	}
	// Miss: allocate, evicting LRU if full.
	if len(ls) >= r.ways {
		ls = ls[1:]
	}
	ls = append(ls, refLine{tag: tag, sectors: map[uint64]bool{sector: true}})
	r.lines[set] = ls
	return false
}

func TestCacheAgainstReferenceModel(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		c := NewCache("dut", 2048, 4, 128, 32)
		ref := newReferenceCache(2048, 4, 128, 32)
		for i := 0; i < 4000; i++ {
			// A mix of hot and cold addresses exercises hits, sector fills
			// and evictions.
			var a uint64
			if rng.Intn(2) == 0 {
				a = uint64(rng.Intn(1 << 11)) // hot region
			} else {
				a = uint64(rng.Intn(1 << 18)) // cold region
			}
			got := c.Access(a)
			want := ref.access(a)
			if got != want {
				t.Fatalf("trial %d access %d (addr %#x): dut hit=%v, reference hit=%v",
					trial, i, a, got, want)
			}
		}
	}
}

package mem

// CoalesceSectors reduces the per-thread addresses of one warp memory
// instruction to the set of unique memory sectors touched, which is the unit
// of L1/L2/DRAM traffic. addrs[i] is the address of lane i; only lanes whose
// bit is set in mask participate; size is the per-thread access width in
// bytes. The result is sorted ascending and deduplicated — fully coalesced
// 4-byte accesses from 32 lanes touch 4 sectors of 32 bytes, a strided or
// random pattern up to 32 (or 64 for 8-byte accesses spanning sectors).
func CoalesceSectors(addrs *[32]uint64, mask uint32, size int, sectorSize uint64) []uint64 {
	return CoalesceSectorsInto(make([]uint64, 0, 8), addrs, mask, size, sectorSize)
}

// CoalesceSectorsInto is CoalesceSectors with a caller-provided backing
// slice: the result is appended to dst[:0] and shares its array, so a caller
// that owns a reusable scratch buffer pays no allocation once the buffer has
// grown to the warp's sector footprint (at most 64 entries: 32 lanes of
// 8-byte accesses each straddling a sector boundary). The SM issue path
// passes a per-SM scratch buffer here; the returned slice must therefore be
// fully consumed before the next memory instruction issues on that SM, which
// the memory data path guarantees (it only iterates, never retains).
func CoalesceSectorsInto(dst []uint64, addrs *[32]uint64, mask uint32, size int, sectorSize uint64) []uint64 {
	sectors := dst[:0]
	for lane := 0; lane < 32; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		first := addrs[lane] / sectorSize
		last := (addrs[lane] + uint64(size) - 1) / sectorSize
		for s := first; s <= last; s++ {
			sectors = insertSorted(sectors, s*sectorSize)
		}
	}
	return sectors
}

func insertSorted(xs []uint64, v uint64) []uint64 {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(xs) && xs[lo] == v {
		return xs
	}
	xs = append(xs, 0)
	copy(xs[lo+1:], xs[lo:])
	xs[lo] = v
	return xs
}

// SharedBanks is the number of shared-memory banks on every modern NVIDIA
// architecture.
const SharedBanks = 32

// BankConflictDegree returns the number of shared-memory cycles one warp
// access needs: the maximum, over banks, of distinct 4-byte words requested
// in that bank. Lanes reading the same word broadcast and do not conflict.
// The result is at least 1 when any lane is active, so it can be used
// directly as the replay/serialisation factor.
func BankConflictDegree(addrs *[32]uint64, mask uint32, size int) int {
	// words per bank; same word counted once (broadcast).
	var bankWords [SharedBanks][]uint64
	degree := 0
	for lane := 0; lane < 32; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		// An 8-byte access occupies two consecutive words.
		nwords := (size + 3) / 4
		for w := 0; w < nwords; w++ {
			word := addrs[lane]/4 + uint64(w)
			bank := int(word % SharedBanks)
			found := false
			for _, ex := range bankWords[bank] {
				if ex == word {
					found = true
					break
				}
			}
			if !found {
				bankWords[bank] = append(bankWords[bank], word)
				if len(bankWords[bank]) > degree {
					degree = len(bankWords[bank])
				}
			}
		}
	}
	if degree == 0 && mask != 0 {
		degree = 1
	}
	return degree
}

// UniqueAddrs returns the count of distinct active-lane addresses.
func UniqueAddrs(addrs *[32]uint64, mask uint32) int {
	seen := make(map[uint64]struct{}, 8)
	for lane := 0; lane < 32; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		seen[addrs[lane]] = struct{}{}
	}
	return len(seen)
}

// MaxContention returns the largest number of active lanes targeting one
// address — the strict serialisation depth of a warp atomic, since the L2
// ROP unit performs same-address read-modify-writes one at a time.
func MaxContention(addrs *[32]uint64, mask uint32) int {
	counts := make(map[uint64]int, 8)
	best := 0
	for lane := 0; lane < 32; lane++ {
		if mask&(1<<lane) == 0 {
			continue
		}
		counts[addrs[lane]]++
		if counts[addrs[lane]] > best {
			best = counts[addrs[lane]]
		}
	}
	return best
}

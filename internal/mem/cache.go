// Package mem implements the GPU memory substrate: device-memory storage,
// sectored set-associative caches (L1 data, L1 instruction, immediate-
// constant), a bandwidth/latency DRAM model with a finite request queue,
// timed instruction queues (LG/MIO/TEX), the global-memory coalescer and the
// shared-memory bank-conflict model.
//
// Everything here is deterministic: given the same access sequence, every
// structure returns the same hits, misses and completion cycles. That
// property is what makes CUPTI-style multi-pass kernel replay (internal/
// cupti) sound.
package mem

import (
	"fmt"
	"math/bits"
)

// CacheStats counts cache activity. Hits+Misses == Lookups always holds
// (checked by property tests).
type CacheStats struct {
	Lookups   uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

type cacheLine struct {
	tag     uint64
	valid   bool
	sectors uint32 // bitmask of valid sectors within the line
	lastUse uint64 // LRU timestamp
}

// Cache is a sectored, set-associative, LRU cache. A lookup hits only if the
// specific sector of the line is present; a miss fills that sector (and
// allocates the line if needed), modelling NVIDIA's 128-byte lines with
// 32-byte sectors.
type Cache struct {
	name       string
	sets       int
	ways       int
	lineSize   uint64
	sectorSize uint64
	// Shift/mask fast path for the (overwhelmingly common) power-of-two
	// geometry: lineShift/sectorShift replace the per-access divisions and
	// setShift/setMask the set modulo. pow2 gates the fast path.
	lineShift   uint
	sectorShift uint
	setShift    uint
	setMask     uint64
	pow2        bool
	lines       []cacheLine // sets*ways, row-major by set
	tick        uint64
	stats       CacheStats
}

func log2u64(v uint64) (uint, bool) {
	if v == 0 || v&(v-1) != 0 {
		return 0, false
	}
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s, true
}

// NewCache builds a cache of size bytes with the given associativity and
// line/sector geometry. size must be a multiple of ways*lineSize.
func NewCache(name string, size, ways, lineSize, sectorSize int) *Cache {
	if size <= 0 || ways <= 0 || lineSize <= 0 || sectorSize <= 0 {
		panic(fmt.Sprintf("mem: bad cache geometry %s size=%d ways=%d line=%d sector=%d",
			name, size, ways, lineSize, sectorSize))
	}
	if lineSize%sectorSize != 0 {
		panic(fmt.Sprintf("mem: %s line size %d not a multiple of sector size %d", name, lineSize, sectorSize))
	}
	sets := size / (ways * lineSize)
	if sets < 1 {
		sets = 1
	}
	c := &Cache{
		name:       name,
		sets:       sets,
		ways:       ways,
		lineSize:   uint64(lineSize),
		sectorSize: uint64(sectorSize),
		lines:      make([]cacheLine, sets*ways),
	}
	ls, lok := log2u64(c.lineSize)
	ss, sok := log2u64(c.sectorSize)
	ts, setsOK := log2u64(uint64(sets))
	if lok && sok && setsOK {
		c.lineShift, c.sectorShift, c.setShift = ls, ss, ts
		c.setMask = uint64(sets) - 1
		c.pow2 = true
	}
	return c
}

// locate splits addr into (tag, set index, sector bit) per the cache
// geometry.
func (c *Cache) locate(addr uint64) (tag uint64, set int, sectorBit uint32) {
	if c.pow2 {
		lineAddr := addr >> c.lineShift
		return lineAddr >> c.setShift, int(lineAddr & c.setMask),
			uint32(1) << ((addr & (c.lineSize - 1)) >> c.sectorShift)
	}
	lineAddr := addr / c.lineSize
	return lineAddr / uint64(c.sets), int(lineAddr % uint64(c.sets)),
		uint32(1) << ((addr % c.lineSize) / c.sectorSize)
}

// Access looks up the sector containing addr, filling it on a miss, and
// reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.tick++
	c.stats.Lookups++
	tag, set, sectorBit := c.locate(addr)

	base := set * c.ways
	var victim, lruWay int
	var lruTick uint64 = ^uint64(0)
	victim = -1
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			ln.lastUse = c.tick
			if ln.sectors&sectorBit != 0 {
				c.stats.Hits++
				return true
			}
			// Line present, sector absent: sector miss, fill the sector.
			ln.sectors |= sectorBit
			c.stats.Misses++
			return false
		}
		if !ln.valid {
			if victim < 0 {
				victim = w
			}
		} else if ln.lastUse < lruTick {
			lruTick = ln.lastUse
			lruWay = w
		}
	}
	c.stats.Misses++
	if victim < 0 {
		victim = lruWay
		c.stats.Evictions++
	}
	c.lines[base+victim] = cacheLine{tag: tag, valid: true, sectors: sectorBit, lastUse: c.tick}
	return false
}

// Probe reports whether the sector containing addr is present without
// modifying any state.
func (c *Cache) Probe(addr uint64) bool {
	tag, set, sectorBit := c.locate(addr)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag && ln.sectors&sectorBit != 0 {
			return true
		}
	}
	return false
}

// Flush invalidates every line, as the profiler does between replay passes.
// Statistics are preserved.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
}

// Reset flushes the cache and zeroes its statistics.
func (c *Cache) Reset() {
	c.Flush()
	c.stats = CacheStats{}
	c.tick = 0
}

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() CacheStats { return c.stats }

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Sets and Ways expose the geometry for tests.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SectorSize returns the sector size in bytes.
func (c *Cache) SectorSize() uint64 { return c.sectorSize }

// ResidentLines counts the valid lines currently held. It can never exceed
// Sets()*Ways(); the invariant checker asserts that bound.
func (c *Cache) ResidentLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// ResidentSectors counts the valid sectors across all resident lines. A line
// with no valid sectors cannot exist (allocation always fills one sector), so
// ResidentSectors() >= ResidentLines() whenever any line is resident.
func (c *Cache) ResidentSectors() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n += bits.OnesCount32(c.lines[i].sectors)
		}
	}
	return n
}

package mem

// DRAMStats counts device-memory activity.
type DRAMStats struct {
	Requests     uint64
	Bytes        uint64
	QueueRejects uint64 // requests bounced off a full queue
}

// DRAM models device memory as a fixed service latency plus a bandwidth
// constraint, fronted by a finite request queue. When the queue is full the
// requester must retry later — the condition the SM reports as a memory-
// throttle stall.
type DRAM struct {
	latency       uint64
	bytesPerCycle float64
	queueDepth    int

	// bandFree is the cycle at which the data bus becomes free.
	bandFree float64
	// inflight[head:] holds completion cycles of queued requests, oldest
	// first. Drained entries advance head; the slice is compacted lazily so
	// a drain is amortized O(1) instead of an O(n) copy per completion.
	inflight []uint64
	head     int
	stats    DRAMStats
}

// NewDRAM builds a DRAM model. latency is the full L2-miss service latency in
// core cycles; bytesPerCycle is the sustained bandwidth.
func NewDRAM(latency int, bytesPerCycle float64, queueDepth int) *DRAM {
	return &DRAM{
		latency:       uint64(latency),
		bytesPerCycle: bytesPerCycle,
		queueDepth:    queueDepth,
		inflight:      make([]uint64, 0, queueDepth),
	}
}

func (d *DRAM) drain(now uint64) {
	for d.head < len(d.inflight) && d.inflight[d.head] <= now {
		d.head++
	}
	if d.head == len(d.inflight) {
		d.inflight = d.inflight[:0]
		d.head = 0
	} else if d.head > 64 && d.head*2 >= len(d.inflight) {
		n := copy(d.inflight, d.inflight[d.head:])
		d.inflight = d.inflight[:n]
		d.head = 0
	}
}

// Full reports whether the request queue is full at the given cycle.
func (d *DRAM) Full(now uint64) bool {
	d.drain(now)
	if len(d.inflight)-d.head >= d.queueDepth {
		d.stats.QueueRejects++
		return true
	}
	return false
}

// Request enqueues a transfer of n bytes at cycle now and returns its
// completion cycle. Callers must check Full first; Request never rejects.
func (d *DRAM) Request(now uint64, n int) uint64 {
	d.drain(now)
	start := float64(now)
	if d.bandFree > start {
		start = d.bandFree
	}
	d.bandFree = start + float64(n)/d.bytesPerCycle
	done := uint64(start) + d.latency
	// Keep the inflight list sorted by completion; completions are
	// monotonic because start times are.
	d.inflight = append(d.inflight, done)
	d.stats.Requests++
	d.stats.Bytes += uint64(n)
	return done
}

// Stats returns a copy of the accumulated statistics.
func (d *DRAM) Stats() DRAMStats { return d.stats }

// PendingSorted reports whether the live portion of the inflight list is in
// non-decreasing completion order — the invariant the drain loop depends on.
// It is a non-mutating scan for the invariant checker.
func (d *DRAM) PendingSorted() bool {
	for i := d.head + 1; i < len(d.inflight); i++ {
		if d.inflight[i] < d.inflight[i-1] {
			return false
		}
	}
	return true
}

// Reset clears queue state and statistics.
func (d *DRAM) Reset() {
	d.bandFree = 0
	d.inflight = d.inflight[:0]
	d.head = 0
	d.stats = DRAMStats{}
}

// TimedQueue is a bounded queue of in-flight operations identified only by
// their completion cycles. The SM front-ends use it for the LG, MIO and TEX
// instruction queues: a full queue at issue time is a throttle stall.
type TimedQueue struct {
	depth int
	// pending[head:] holds live completion cycles, oldest first; drained
	// entries advance head and the slice is compacted lazily (see DRAM).
	pending []uint64
	head    int
}

// NewTimedQueue builds a queue with the given depth.
func NewTimedQueue(depth int) *TimedQueue {
	return &TimedQueue{depth: depth, pending: make([]uint64, 0, depth)}
}

func (q *TimedQueue) drain(now uint64) {
	for q.head < len(q.pending) && q.pending[q.head] <= now {
		q.head++
	}
	if q.head == len(q.pending) {
		q.pending = q.pending[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 >= len(q.pending) {
		n := copy(q.pending, q.pending[q.head:])
		q.pending = q.pending[:n]
		q.head = 0
	}
}

// Full reports whether the queue has no free entry at cycle now.
func (q *TimedQueue) Full(now uint64) bool {
	q.drain(now)
	return len(q.pending)-q.head >= q.depth
}

// Push records an operation completing at cycle done. Entries must be pushed
// in non-decreasing completion order (true for in-order pipes).
func (q *TimedQueue) Push(done uint64) {
	if n := len(q.pending); n > q.head && q.pending[n-1] > done {
		// Preserve sortedness even if a caller violates monotonicity.
		i := n
		for i > q.head && q.pending[i-1] > done {
			i--
		}
		q.pending = append(q.pending, 0)
		copy(q.pending[i+1:], q.pending[i:])
		q.pending[i] = done
		return
	}
	q.pending = append(q.pending, done)
}

// NextCompletion returns the earliest pending completion cycle, or 0 when
// the queue is empty. A full queue gains a free entry exactly at this
// cycle, so it bounds how long a throttled warp stays throttled.
func (q *TimedQueue) NextCompletion() uint64 {
	if q.head == len(q.pending) {
		return 0
	}
	return q.pending[q.head]
}

// Len returns the occupancy at cycle now.
func (q *TimedQueue) Len(now uint64) int {
	q.drain(now)
	return len(q.pending) - q.head
}

// Reset empties the queue.
func (q *TimedQueue) Reset() { q.pending, q.head = q.pending[:0], 0 }

// Sorted reports whether the live portion of the queue is in non-decreasing
// completion order — the invariant Push maintains and NextCompletion depends
// on. It is a non-mutating scan for the invariant checker.
func (q *TimedQueue) Sorted() bool {
	for i := q.head + 1; i < len(q.pending); i++ {
		if q.pending[i] < q.pending[i-1] {
			return false
		}
	}
	return true
}

package mem

// DRAMStats counts device-memory activity.
type DRAMStats struct {
	Requests     uint64
	Bytes        uint64
	QueueRejects uint64 // requests bounced off a full queue
}

// DRAM models device memory as a fixed service latency plus a bandwidth
// constraint, fronted by a finite request queue. When the queue is full the
// requester must retry later — the condition the SM reports as a memory-
// throttle stall.
type DRAM struct {
	latency       uint64
	bytesPerCycle float64
	queueDepth    int

	// bandFree is the cycle at which the data bus becomes free.
	bandFree float64
	// inflight holds completion cycles of queued requests, oldest first.
	inflight []uint64
	stats    DRAMStats
}

// NewDRAM builds a DRAM model. latency is the full L2-miss service latency in
// core cycles; bytesPerCycle is the sustained bandwidth.
func NewDRAM(latency int, bytesPerCycle float64, queueDepth int) *DRAM {
	return &DRAM{
		latency:       uint64(latency),
		bytesPerCycle: bytesPerCycle,
		queueDepth:    queueDepth,
		inflight:      make([]uint64, 0, queueDepth),
	}
}

func (d *DRAM) drain(now uint64) {
	i := 0
	for i < len(d.inflight) && d.inflight[i] <= now {
		i++
	}
	if i > 0 {
		d.inflight = append(d.inflight[:0], d.inflight[i:]...)
	}
}

// Full reports whether the request queue is full at the given cycle.
func (d *DRAM) Full(now uint64) bool {
	d.drain(now)
	if len(d.inflight) >= d.queueDepth {
		d.stats.QueueRejects++
		return true
	}
	return false
}

// Request enqueues a transfer of n bytes at cycle now and returns its
// completion cycle. Callers must check Full first; Request never rejects.
func (d *DRAM) Request(now uint64, n int) uint64 {
	d.drain(now)
	start := float64(now)
	if d.bandFree > start {
		start = d.bandFree
	}
	d.bandFree = start + float64(n)/d.bytesPerCycle
	done := uint64(start) + d.latency
	// Keep the inflight list sorted by completion; completions are
	// monotonic because start times are.
	d.inflight = append(d.inflight, done)
	d.stats.Requests++
	d.stats.Bytes += uint64(n)
	return done
}

// Stats returns a copy of the accumulated statistics.
func (d *DRAM) Stats() DRAMStats { return d.stats }

// Reset clears queue state and statistics.
func (d *DRAM) Reset() {
	d.bandFree = 0
	d.inflight = d.inflight[:0]
	d.stats = DRAMStats{}
}

// TimedQueue is a bounded queue of in-flight operations identified only by
// their completion cycles. The SM front-ends use it for the LG, MIO and TEX
// instruction queues: a full queue at issue time is a throttle stall.
type TimedQueue struct {
	depth   int
	pending []uint64
}

// NewTimedQueue builds a queue with the given depth.
func NewTimedQueue(depth int) *TimedQueue {
	return &TimedQueue{depth: depth, pending: make([]uint64, 0, depth)}
}

func (q *TimedQueue) drain(now uint64) {
	i := 0
	for i < len(q.pending) && q.pending[i] <= now {
		i++
	}
	if i > 0 {
		q.pending = append(q.pending[:0], q.pending[i:]...)
	}
}

// Full reports whether the queue has no free entry at cycle now.
func (q *TimedQueue) Full(now uint64) bool {
	q.drain(now)
	return len(q.pending) >= q.depth
}

// Push records an operation completing at cycle done. Entries must be pushed
// in non-decreasing completion order (true for in-order pipes).
func (q *TimedQueue) Push(done uint64) {
	if n := len(q.pending); n > 0 && q.pending[n-1] > done {
		// Preserve sortedness even if a caller violates monotonicity.
		i := n
		for i > 0 && q.pending[i-1] > done {
			i--
		}
		q.pending = append(q.pending, 0)
		copy(q.pending[i+1:], q.pending[i:])
		q.pending[i] = done
		return
	}
	q.pending = append(q.pending, done)
}

// Len returns the occupancy at cycle now.
func (q *TimedQueue) Len(now uint64) int {
	q.drain(now)
	return len(q.pending)
}

// Reset empties the queue.
func (q *TimedQueue) Reset() { q.pending = q.pending[:0] }

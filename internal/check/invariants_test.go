package check

import (
	"strings"
	"testing"

	"gputopdown/internal/core"
	"gputopdown/internal/gpu"
	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
	"gputopdown/internal/mem"
	"gputopdown/internal/pmu"
	"gputopdown/internal/sim"
	"gputopdown/internal/sm"
)

// testSpec is a reduced Turing device: enough structure (2 SMs, sliced L2,
// multiple DRAM channels) to exercise every law cheaply.
func testSpec() *gpu.Spec { return gpu.QuadroRTX4000().WithSMs(2) }

// goodCounters returns a counter snapshot satisfying every counter law.
func goodCounters() sm.Counters {
	var c sm.Counters
	c.ElapsedCycles = 100
	c.ActiveCycles = 80
	c.ActiveWarpCycles = 240
	c.SubpActiveCycles = 160
	c.InstExecuted = 50
	c.InstIssued = 55
	c.ThreadInstExecuted = 50 * gpu.WarpSize
	c.WarpStateCycles[0] = 240 // histogram sums to ActiveWarpCycles
	c.BlocksLaunched = 2
	c.WarpsLaunched = 6
	return c
}

func lawCounts(inv *Invariants) map[string]int {
	m := make(map[string]int)
	for _, v := range inv.Violations() {
		m[v.Law]++
	}
	return m
}

func TestCheckCountersClean(t *testing.T) {
	inv := New()
	c := goodCounters()
	inv.CheckCounters("clean", &c)
	if err := inv.Err(); err != nil {
		t.Fatalf("clean counters violated laws: %v", err)
	}
}

func TestCheckCountersViolations(t *testing.T) {
	inv := New()
	c := goodCounters()
	c.WarpStateCycles[0]++     // state-histogram-sum
	c.ActiveCycles = 101       // active-within-elapsed
	c.SubpActiveCycles = 100   // subp-active-cover
	c.InstIssued = 49          // issued-covers-executed
	c.ThreadInstExecuted = 1e9 // thread-inst-bound
	inv.CheckCounters("bad", &c)
	want := []string{
		"state-histogram-sum", "active-within-elapsed", "subp-active-cover",
		"issued-covers-executed", "thread-inst-bound",
	}
	got := lawCounts(inv)
	for _, law := range want {
		if got[law] != 1 {
			t.Errorf("law %s: %d violations, want 1 (all: %v)", law, got[law], got)
		}
	}
	if inv.Count() != len(want) {
		t.Errorf("Count = %d, want %d", inv.Count(), len(want))
	}
	if err := inv.Err(); err == nil || !strings.Contains(err.Error(), "state-histogram-sum") {
		t.Errorf("Err should name the violated law, got %v", err)
	}
}

func TestNilReceiverSafe(t *testing.T) {
	var inv *Invariants
	c := goodCounters()
	inv.CheckCounters("nil", &c)
	inv.CheckMemSys("nil", mem.NewMemSys(testSpec()), 0)
	inv.CheckPassMerge("k", nil, nil, nil)
	inv.CheckAnalysis(nil)
	inv.CheckEpoch(nil, 0) // nil receiver returns before touching the device
	inv.CheckLaunch(nil, nil)
	inv.Reset()
	if inv.Count() != 0 || inv.Err() != nil || inv.Violations() != nil {
		t.Fatal("nil receiver must be inert")
	}
}

func TestCheckMemSysClean(t *testing.T) {
	inv := New()
	ms := mem.NewMemSys(testSpec())
	// Touch the memory system so the accounting laws see nonzero traffic.
	for a := uint64(0); a < 1<<16; a += 128 {
		ms.Access(a)
	}
	inv.CheckMemSys("clean", ms, 12345)
	if err := inv.Err(); err != nil {
		t.Fatalf("clean memory system violated laws: %v", err)
	}
}

func TestViolationCapAndReset(t *testing.T) {
	inv := New()
	c := goodCounters()
	c.InstIssued = 0 // one violation per call
	c.InstExecuted = 1
	c.ThreadInstExecuted = 0
	for i := 0; i < maxRecorded+10; i++ {
		inv.CheckCounters("cap", &c)
	}
	if inv.Count() != maxRecorded+10 {
		t.Errorf("Count = %d, want %d", inv.Count(), maxRecorded+10)
	}
	if got := len(inv.Violations()); got != maxRecorded {
		t.Errorf("recorded %d violations, want cap %d", got, maxRecorded)
	}
	if err := inv.Err(); err == nil || !strings.Contains(err.Error(), "more") {
		t.Errorf("Err should summarise the overflow, got %v", err)
	}
	inv.Reset()
	if inv.Count() != 0 || inv.Err() != nil {
		t.Error("Reset must clear all state")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Law: "l", Context: "c", Detail: "d"}
	if got := v.String(); got != "l [c]: d" {
		t.Errorf("String = %q", got)
	}
}

// testProgram is a tiny two-branch kernel with global memory traffic: enough
// to put warps through stall states, caches, and DRAM on a real device.
func testProgram() *kernel.Program {
	b := kernel.NewBuilder("checkk")
	buf := b.Param(0)
	gid := b.GlobalIDX()
	idx := b.AndImm(gid, 255)
	addr := b.IMad(idx, b.MovImm(4), buf)
	v := b.Ldg(addr, 0, 4)
	p := b.ISetpImm(isa.CmpGT, b.AndImm(gid, 1), 0)
	b.If(p)
	v = b.IAddImm(v, 3)
	b.Else()
	v = b.IMulImm(v, 5)
	b.EndIf()
	i := b.ForImm(0, 4, 1)
	v = b.IAdd(v, i)
	b.EndFor()
	b.Stg(addr, v, 0, 4)
	b.Exit()
	return b.MustBuild()
}

func launchOn(t *testing.T, inv *Invariants, workers int, trace uint64) *sim.RunResult {
	t.Helper()
	d := sim.NewDevice(testSpec())
	d.SetChecker(inv)
	d.SetSimWorkers(workers)
	if trace > 0 {
		d.EnableTrace(trace)
	}
	buf := d.Alloc(256 * 4)
	l := &kernel.Launch{
		Program: testProgram(),
		Grid:    kernel.Dim3{X: 4},
		Block:   kernel.Dim3{X: 128},
		Params:  []uint64{buf},
	}
	return d.MustLaunch(l)
}

// TestDeviceHooksClean drives a real device with the checker attached, both
// engines, tracing on and off: every in-loop law must hold.
func TestDeviceHooksClean(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
		trace   uint64
	}{
		{"sequential", 1, 0},
		{"sequential-traced", 1, 64},
		{"parallel", 2, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inv := New()
			launchOn(t, inv, tc.workers, tc.trace)
			if err := inv.Err(); err != nil {
				t.Fatalf("invariants violated on a clean run: %v", err)
			}
		})
	}
}

// TestCheckLaunchViolations corrupts a real RunResult field by field to prove
// the launch-level laws actually fire.
func TestCheckLaunchViolations(t *testing.T) {
	res := launchOn(t, nil, 1, 0)
	d := sim.NewDevice(testSpec())

	mutations := []struct {
		law    string
		mutate func(r *sim.RunResult)
	}{
		{"per-sm-sum", func(r *sim.RunResult) { r.Counters.InstExecuted++; r.Counters.InstIssued++ }},
		{"sms-used", func(r *sim.RunResult) { r.SMsUsed++ }},
		{"block-conservation", func(r *sim.RunResult) { r.Blocks++ }},
		{"warps-per-block", func(r *sim.RunResult) {
			r.Counters.WarpsLaunched = 0
			r.PerSM[0].WarpsLaunched = 0
			r.PerSM[1].WarpsLaunched = 0
		}},
	}
	for _, m := range mutations {
		t.Run(m.law, func(t *testing.T) {
			cp := *res
			cp.Counters = res.Counters
			cp.PerSM = append([]sm.Counters(nil), res.PerSM...)
			m.mutate(&cp)
			inv := New()
			inv.CheckLaunch(d, &cp)
			if lawCounts(inv)[m.law] == 0 {
				t.Fatalf("mutation did not trigger %s (violations: %v)", m.law, inv.Violations())
			}
		})
	}
}

func TestCheckPassMerge(t *testing.T) {
	var pass0, pass1 sm.Counters
	pass0.ElapsedCycles = 100
	pass0.InstExecuted = 40
	pass0.WarpStateCycles[1] = 7
	pass1 = pass0 // free-running counters identical across passes
	pass1.WarpStateCycles[2] = 9

	stall1 := pmu.StallCounter(1)
	stall2 := pmu.StallCounter(2)
	passes := [][]pmu.CounterID{
		{pmu.CtrInstExecuted, stall1},
		{stall2},
	}
	perPass := []sm.Counters{pass0, pass1}
	merged := pmu.Values{
		pmu.CtrInstExecuted: 40,
		stall1:              7,
		stall2:              9,
	}

	inv := New()
	inv.CheckPassMerge("k", passes, perPass, merged)
	if err := inv.Err(); err != nil {
		t.Fatalf("consistent merge flagged: %v", err)
	}

	t.Run("missing-counter", func(t *testing.T) {
		inv := New()
		bad := pmu.Values{pmu.CtrInstExecuted: 40, stall1: 7}
		inv.CheckPassMerge("k", passes, perPass, bad)
		if lawCounts(inv)["pass-merge-complete"] == 0 {
			t.Fatal("missing counter not flagged")
		}
	})
	t.Run("wrong-value", func(t *testing.T) {
		inv := New()
		bad := pmu.Values{pmu.CtrInstExecuted: 40, stall1: 8, stall2: 9}
		inv.CheckPassMerge("k", passes, perPass, bad)
		if lawCounts(inv)["pass-merge-value"] == 0 {
			t.Fatal("wrong merged value not flagged")
		}
	})
	t.Run("free-running-drift", func(t *testing.T) {
		inv := New()
		drift := []sm.Counters{pass0, pass1}
		drift[1].InstExecuted = 41
		inv.CheckPassMerge("k", passes, drift, merged)
		if lawCounts(inv)["free-running-determinism"] == 0 {
			t.Fatal("free-running drift not flagged")
		}
	})
	t.Run("count-mismatch", func(t *testing.T) {
		inv := New()
		inv.CheckPassMerge("k", passes, perPass[:1], merged)
		if lawCounts(inv)["pass-merge"] == 0 {
			t.Fatal("pass count mismatch not flagged")
		}
	})
}

// goodAnalysis returns a level-2 normalised analysis obeying every closure.
func goodAnalysis() *core.Analysis {
	return &core.Analysis{
		Kernel: "k", Level: core.Level2, Normalized: true, IPCMax: 2,
		Retire: 0.5, Divergence: 0.1, Branch: 0.06, Replay: 0.04,
		Stall: 1.4, Frontend: 0.4, Fetch: 0.3, Decode: 0.1,
		Backend: 1.0, Core: 0.25, Memory: 0.75,
	}
}

func TestCheckAnalysis(t *testing.T) {
	inv := New()
	inv.CheckAnalysis(goodAnalysis())
	if err := inv.Err(); err != nil {
		t.Fatalf("closed analysis flagged: %v", err)
	}

	cases := []struct {
		law    string
		mutate func(a *core.Analysis)
	}{
		{"component-range", func(a *core.Analysis) { a.Retire = -0.5 }},
		{"component-range", func(a *core.Analysis) { a.Memory = a.IPCMax + 1 }},
		{"divergence-closure", func(a *core.Analysis) { a.Branch += 0.01 }},
		{"frontend-closure", func(a *core.Analysis) { a.Fetch += 0.01 }},
		{"backend-closure", func(a *core.Analysis) { a.Core += 0.01 }},
		{"stall-closure", func(a *core.Analysis) { a.Stall -= 0.01 }},
		{"level1-sum", func(a *core.Analysis) {
			a.Retire -= 0.01 // keeps every closure but breaks the stack total
		}},
	}
	for _, tc := range cases {
		t.Run(tc.law, func(t *testing.T) {
			a := goodAnalysis()
			tc.mutate(a)
			inv := New()
			inv.CheckAnalysis(a)
			if lawCounts(inv)[tc.law] == 0 {
				t.Fatalf("mutation did not trigger %s (violations: %v)", tc.law, inv.Violations())
			}
		})
	}

	t.Run("level3-detail", func(t *testing.T) {
		a := goodAnalysis()
		a.Level = core.Level3
		a.FetchDetail = map[string]float64{"no_inst": 0.2, "wait": 0.1}
		a.DecodeDetail = map[string]float64{"dispatch": 0.1}
		a.CoreDetail = map[string]float64{"alu": 0.25}
		a.MemoryDetail = map[string]float64{"lg": 0.5, "mio": 0.25}
		inv := New()
		inv.CheckAnalysis(a)
		if err := inv.Err(); err != nil {
			t.Fatalf("closed level-3 analysis flagged: %v", err)
		}
		a.MemoryDetail["lg"] += 0.01
		inv.Reset()
		inv.CheckAnalysis(a)
		if lawCounts(inv)["memory-detail-closure"] == 0 {
			t.Fatal("detail drift not flagged")
		}
	})

	t.Run("level1-no-closures", func(t *testing.T) {
		inv := New()
		inv.CheckAnalysis(&core.Analysis{Kernel: "k", Level: core.Level1, IPCMax: 2, Retire: 0.5, Stall: 1.5})
		if err := inv.Err(); err != nil {
			t.Fatalf("level-1 analysis must only face range checks: %v", err)
		}
	})
}

// Package check is the conformance subsystem: an in-loop invariant checker
// asserting the simulator's conservation laws (this file), a metamorphic
// property engine asserting that configuration perturbations never change
// results (metamorphic.go), and the canonical-report helpers behind the
// golden corpus gate (diff.go).
//
// The invariant checker follows the simulator-validation practice argued for
// in arXiv:1811.08933 and the counter-consistency methodology of
// arXiv:2102.05299: conservation laws are checked inside the model while it
// runs, not just via end-to-end diffs. Invariants implements sim.Checker and
// cupti.Checker, so one instance can be attached to a device (SetChecker),
// a profiling session, and the analyzer output path at once.
package check

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"gputopdown/internal/core"
	"gputopdown/internal/gpu"
	"gputopdown/internal/mem"
	"gputopdown/internal/pmu"
	"gputopdown/internal/sim"
	"gputopdown/internal/sm"
)

// analysisEps is the absolute tolerance, in IPC units, for the floating-point
// closure laws on Top-Down analyses. Components are O(IPC_MAX) ~ O(1); the
// slack covers duration-weighted aggregation across many kernels.
const analysisEps = 1e-6

// maxRecorded caps how many violations keep their full detail; Count still
// reflects every violation past the cap.
const maxRecorded = 64

// Violation is one failed conservation law.
type Violation struct {
	// Law names the invariant, e.g. "state-histogram-sum".
	Law string
	// Context locates the check: kernel, SM, slice, pass...
	Context string
	// Detail is the human-readable mismatch.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s [%s]: %s", v.Law, v.Context, v.Detail)
}

// Invariants records conservation-law violations observed by the in-loop
// hooks. All methods are nil-receiver safe and allocation-free on the nil
// receiver, so callers hold one possibly-nil *Invariants and call through it
// unconditionally — the disabled path is a nil check (benchmark-gated by
// BenchmarkChecksDisabled). Recording is mutex-protected: with concurrent
// replay the cloned devices invoke the hooks from multiple goroutines.
type Invariants struct {
	mu         sync.Mutex
	violations []Violation
	total      int
}

// New builds an empty invariant recorder.
func New() *Invariants { return &Invariants{} }

// Interface conformance: the device- and session-level hook contracts.
var _ sim.Checker = (*Invariants)(nil)

func (inv *Invariants) violate(law, context, format string, args ...any) {
	if inv == nil {
		return
	}
	inv.mu.Lock()
	inv.total++
	if len(inv.violations) < maxRecorded {
		inv.violations = append(inv.violations, Violation{
			Law:     law,
			Context: context,
			Detail:  fmt.Sprintf(format, args...),
		})
	}
	inv.mu.Unlock()
}

// Count returns the total number of violations observed, including any past
// the detail cap.
func (inv *Invariants) Count() int {
	if inv == nil {
		return 0
	}
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return inv.total
}

// Violations returns a copy of the recorded violations (at most maxRecorded).
func (inv *Invariants) Violations() []Violation {
	if inv == nil {
		return nil
	}
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return append([]Violation(nil), inv.violations...)
}

// Err returns nil when every checked law held, otherwise one error
// summarising the recorded violations.
func (inv *Invariants) Err() error {
	if inv == nil {
		return nil
	}
	inv.mu.Lock()
	defer inv.mu.Unlock()
	if inv.total == 0 {
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "check: %d invariant violation(s)", inv.total)
	for i, v := range inv.violations {
		if i == 8 {
			fmt.Fprintf(&sb, "\n  ... %d more", inv.total-i)
			break
		}
		fmt.Fprintf(&sb, "\n  %s", v.String())
	}
	return fmt.Errorf("%s", sb.String())
}

// Reset discards all recorded violations.
func (inv *Invariants) Reset() {
	if inv == nil {
		return
	}
	inv.mu.Lock()
	inv.violations = inv.violations[:0]
	inv.total = 0
	inv.mu.Unlock()
}

// CheckCounters asserts the counter conservation laws on one snapshot (a
// live cumulative SM counter set, a per-launch delta, or a trace-interval
// delta — the laws hold for all three):
//
//   - the warp-state histogram sums to ActiveWarpCycles: every active warp is
//     in exactly one state each cycle
//   - ActiveCycles <= ElapsedCycles
//   - SubpActiveCycles >= ActiveCycles: an active cycle has at least one
//     active subpartition
//   - InstIssued >= InstExecuted: issues include replays
//   - ThreadInstExecuted <= WarpSize * InstExecuted
func (inv *Invariants) CheckCounters(context string, c *sm.Counters) {
	if inv == nil {
		return
	}
	if got, want := c.StateSum(), c.ActiveWarpCycles; got != want {
		inv.violate("state-histogram-sum", context,
			"sum(WarpStateCycles) = %d, want ActiveWarpCycles = %d", got, want)
	}
	if c.ActiveCycles > c.ElapsedCycles {
		inv.violate("active-within-elapsed", context,
			"ActiveCycles = %d > ElapsedCycles = %d", c.ActiveCycles, c.ElapsedCycles)
	}
	if c.SubpActiveCycles < c.ActiveCycles {
		inv.violate("subp-active-cover", context,
			"SubpActiveCycles = %d < ActiveCycles = %d", c.SubpActiveCycles, c.ActiveCycles)
	}
	if c.InstIssued < c.InstExecuted {
		inv.violate("issued-covers-executed", context,
			"InstIssued = %d < InstExecuted = %d", c.InstIssued, c.InstExecuted)
	}
	if c.ThreadInstExecuted > gpu.WarpSize*c.InstExecuted {
		inv.violate("thread-inst-bound", context,
			"ThreadInstExecuted = %d > %d * InstExecuted = %d",
			c.ThreadInstExecuted, gpu.WarpSize, gpu.WarpSize*c.InstExecuted)
	}
}

// CheckMemSys asserts the memory-system conservation laws: per-slice cache
// accounting (Hits+Misses == Lookups), line-residency bounds, sorted DRAM
// channel queues, and the address<->(slice, local) bijection on a sample of
// addresses around the given probe point.
func (inv *Invariants) CheckMemSys(context string, ms *mem.MemSys, probe uint64) {
	if inv == nil {
		return
	}
	for i := 0; i < ms.NumSlices(); i++ {
		c := ms.Slice(i)
		st := c.Stats()
		if st.Hits+st.Misses != st.Lookups {
			inv.violate("cache-accounting", fmt.Sprintf("%s L2[%d]", context, i),
				"Hits(%d) + Misses(%d) != Lookups(%d)", st.Hits, st.Misses, st.Lookups)
		}
		if lines, cap := c.ResidentLines(), c.Sets()*c.Ways(); lines > cap {
			inv.violate("line-residency-bound", fmt.Sprintf("%s L2[%d]", context, i),
				"ResidentLines = %d > Sets*Ways = %d", lines, cap)
		}
		if c.ResidentSectors() < c.ResidentLines() {
			inv.violate("sector-residency", fmt.Sprintf("%s L2[%d]", context, i),
				"ResidentSectors = %d < ResidentLines = %d (a line with no valid sector)",
				c.ResidentSectors(), c.ResidentLines())
		}
		if !ms.Chan(i).PendingSorted() {
			inv.violate("dram-queue-monotone", fmt.Sprintf("%s DRAM[%d]", context, i),
				"inflight completion cycles out of order")
		}
	}
	// Slice-routing bijection on a deterministic probe sample: line counts
	// are conserved across Rebase exactly when Unrebase inverts it.
	for k := uint64(0); k < 8; k++ {
		addr := probe*2654435761 + k*4096 + k // spread over lines and slices
		if got := ms.Unrebase(ms.SliceOf(addr), ms.Rebase(addr)); got != addr {
			inv.violate("slice-rebase-bijection", context,
				"Unrebase(SliceOf, Rebase)(%#x) = %#x", addr, got)
		}
	}
}

// CheckEpoch is the stride-gated in-loop sweep (sim.Checker): per-SM counter
// laws, timed instruction queue order, and the memory-system laws, all on the
// live mid-launch state.
func (inv *Invariants) CheckEpoch(d *sim.Device, guard uint64) {
	if inv == nil {
		return
	}
	for i, s := range d.SMs {
		ctx := fmt.Sprintf("epoch %d SM %d", guard, i)
		c := s.Counters()
		inv.CheckCounters(ctx, &c)
		s.CheckQueues(func(queue string, subpart int) {
			inv.violate("timed-queue-monotone", ctx,
				"%s queue of subpartition %d out of order", queue, subpart)
		})
	}
	inv.CheckMemSys(fmt.Sprintf("epoch %d", guard), d.Mem, guard)
}

// CheckLaunch runs once per completed launch (sim.Checker): the per-launch
// counter deltas must obey the counter laws, the device aggregate must equal
// the per-SM sum, block accounting must close against the grid, and the
// trace samples (when present) must each be law-abiding deltas.
func (inv *Invariants) CheckLaunch(d *sim.Device, res *sim.RunResult) {
	if inv == nil {
		return
	}
	ctx := "launch " + res.Kernel
	inv.CheckCounters(ctx, &res.Counters)

	var sum sm.Counters
	used := 0
	for i := range res.PerSM {
		inv.CheckCounters(fmt.Sprintf("%s SM %d", ctx, i), &res.PerSM[i])
		sum.Add(&res.PerSM[i])
		if res.PerSM[i].BlocksLaunched > 0 {
			used++
		}
	}
	if sum != res.Counters {
		inv.violate("per-sm-sum", ctx, "device aggregate != sum of per-SM deltas")
	}
	if used != res.SMsUsed {
		inv.violate("sms-used", ctx,
			"SMs with blocks = %d, want SMsUsed = %d", used, res.SMsUsed)
	}
	if res.Counters.BlocksLaunched != uint64(res.Blocks) {
		inv.violate("block-conservation", ctx,
			"BlocksLaunched = %d, want grid size = %d", res.Counters.BlocksLaunched, res.Blocks)
	}
	if res.Counters.WarpsLaunched < res.Counters.BlocksLaunched {
		inv.violate("warps-per-block", ctx,
			"WarpsLaunched = %d < BlocksLaunched = %d",
			res.Counters.WarpsLaunched, res.Counters.BlocksLaunched)
	}
	for i := range res.Trace {
		inv.CheckCounters(fmt.Sprintf("%s trace[%d]", ctx, i), &res.Trace[i])
	}
	inv.CheckMemSys(ctx, d.Mem, res.Cycles)
}

// CheckPassMerge asserts the PMU merge laws (cupti.Checker): every scheduled
// counter must appear in the merged values with the reading of the pass that
// collected it, and free-running counters must read identically on every
// pass — the determinism the pass-order merge relies on.
func (inv *Invariants) CheckPassMerge(kernel string, passes [][]pmu.CounterID, perPass []sm.Counters, merged pmu.Values) {
	if inv == nil {
		return
	}
	if len(perPass) != len(passes) {
		inv.violate("pass-merge", "kernel "+kernel,
			"%d pass results for %d scheduled passes", len(perPass), len(passes))
		return
	}
	for pi, pass := range passes {
		ctx := fmt.Sprintf("kernel %s pass %d", kernel, pi)
		for _, id := range pass {
			got, ok := merged[id]
			if !ok {
				inv.violate("pass-merge-complete", ctx,
					"scheduled counter %s missing from merged values", pmu.Name(id))
				continue
			}
			if want := pmu.Read(&perPass[pi], id); got != want {
				inv.violate("pass-merge-value", ctx,
					"merged %s = %d, want collecting pass's reading %d", pmu.Name(id), got, want)
			}
			if pmu.IsFreeRunning(id) {
				for pj := range perPass {
					if v := pmu.Read(&perPass[pj], id); v != merged[id] {
						inv.violate("free-running-determinism", ctx,
							"%s reads %d on pass %d but %d on collecting pass",
							pmu.Name(id), v, pj, merged[id])
					}
				}
			}
		}
	}
}

// CheckAnalysis asserts the Top-Down closure laws on one analysis: children
// sum to parents at every level, components stay within [0, IPC_MAX], and in
// normalised mode the level-1 stack fills IPC_MAX exactly (the "fractions sum
// to 1" law), all within analysisEps.
func (inv *Invariants) CheckAnalysis(a *core.Analysis) {
	if inv == nil || a == nil {
		return
	}
	ctx := fmt.Sprintf("analysis %s L%d", a.Kernel, a.Level)
	closeTo := func(law string, got, want float64) {
		if math.Abs(got-want) > analysisEps {
			inv.violate(law, ctx, "got %.9f, want %.9f (|Δ| = %.3g)", got, want, math.Abs(got-want))
		}
	}
	inRange := func(name string, v float64) {
		if v < -analysisEps || v > a.IPCMax+analysisEps {
			inv.violate("component-range", ctx, "%s = %.9f outside [0, IPC_MAX=%.0f]", name, v, a.IPCMax)
		}
	}
	inRange("Retire", a.Retire)
	inRange("Divergence", a.Divergence)
	inRange("Stall", a.Stall)
	inRange("Branch", a.Branch)
	inRange("Replay", a.Replay)
	inRange("Frontend", a.Frontend)
	inRange("Backend", a.Backend)
	inRange("Fetch", a.Fetch)
	inRange("Decode", a.Decode)
	inRange("Core", a.Core)
	inRange("Memory", a.Memory)

	if a.Level >= core.Level2 {
		closeTo("divergence-closure", a.Branch+a.Replay, a.Divergence)
		closeTo("frontend-closure", a.Fetch+a.Decode, a.Frontend)
		closeTo("backend-closure", a.Core+a.Memory, a.Backend)
		// Frontend+Backend can fall short of Stall only when the stall
		// category percentages degenerate to zero (scale = 0); it must never
		// exceed it in normalised mode.
		if fb := a.Frontend + a.Backend; fb > a.Stall+analysisEps {
			inv.violate("stall-closure", ctx,
				"Frontend+Backend = %.9f > Stall = %.9f", fb, a.Stall)
		} else if a.Normalized && fb > 0 {
			closeTo("stall-closure", fb, a.Stall)
			// Level-1 stack: Retire + Divergence + Frontend + Backend fills
			// IPC_MAX (fractions sum to 1) unless Stall was clamped at zero.
			if a.Stall > 0 {
				closeTo("level1-sum", a.Retire+a.Divergence+fb, a.IPCMax)
			}
		}
	}
	sumDetail := func(m map[string]float64) float64 {
		var t float64
		for _, v := range m {
			t += v
		}
		return t
	}
	if a.Level >= core.Level3 && a.FetchDetail != nil {
		closeTo("fetch-detail-closure", sumDetail(a.FetchDetail), a.Fetch)
		closeTo("decode-detail-closure", sumDetail(a.DecodeDetail), a.Decode)
		closeTo("core-detail-closure", sumDetail(a.CoreDetail), a.Core)
		closeTo("memory-detail-closure", sumDetail(a.MemoryDetail), a.Memory)
	}
}

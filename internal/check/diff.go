package check

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"

	"gputopdown/internal/serve"
)

// ReportJSON marshals a report in its canonical byte form: wall-clock zeroed,
// two-space indentation, trailing newline. cmd/goldengen and the golden gate
// test share this helper, so the committed corpus and the freshly profiled
// reports are compared byte-for-byte with no formatting slack.
func ReportJSON(rep *serve.Report) ([]byte, error) {
	b, err := json.MarshalIndent(rep.Canonical(), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// maxDiffLines caps DiffJSON output; a diverged report can disagree on
// thousands of leaves and the first few localise the change.
const maxDiffLines = 40

// DiffJSON compares two JSON documents structurally and returns a readable
// per-node diff: one line per diverging path, want vs got. It returns "" when
// the documents are byte-identical. Byte-different but semantically equal
// documents (formatting drift) are reported as such — the golden gate treats
// that as a failure too, since the corpus is compared byte-for-byte.
func DiffJSON(want, got []byte) string {
	if bytes.Equal(want, got) {
		return ""
	}
	var w, g any
	if err := json.Unmarshal(want, &w); err != nil {
		return "want side is not valid JSON: " + err.Error()
	}
	if err := json.Unmarshal(got, &g); err != nil {
		return "got side is not valid JSON: " + err.Error()
	}
	var lines []string
	diffNode("$", w, g, &lines)
	if len(lines) == 0 {
		return "documents are semantically equal but byte-different (formatting or key-order drift)"
	}
	if len(lines) > maxDiffLines {
		lines = append(lines[:maxDiffLines], fmt.Sprintf("... and %d more diverging nodes", len(lines)-maxDiffLines))
	}
	return strings.Join(lines, "\n")
}

func diffNode(path string, w, g any, lines *[]string) {
	if len(*lines) > maxDiffLines {
		return
	}
	switch wv := w.(type) {
	case map[string]any:
		gv, ok := g.(map[string]any)
		if !ok {
			*lines = append(*lines, fmt.Sprintf("%s: want object, got %s", path, typeName(g)))
			return
		}
		for _, k := range unionKeys(wv, gv) {
			wc, inW := wv[k]
			gc, inG := gv[k]
			sub := path + "." + k
			switch {
			case !inG:
				*lines = append(*lines, fmt.Sprintf("%s: missing (want %s)", sub, renderLeaf(wc)))
			case !inW:
				*lines = append(*lines, fmt.Sprintf("%s: unexpected (got %s)", sub, renderLeaf(gc)))
			default:
				diffNode(sub, wc, gc, lines)
			}
		}
	case []any:
		gv, ok := g.([]any)
		if !ok {
			*lines = append(*lines, fmt.Sprintf("%s: want array, got %s", path, typeName(g)))
			return
		}
		if len(wv) != len(gv) {
			*lines = append(*lines, fmt.Sprintf("%s: length %d, want %d", path, len(gv), len(wv)))
		}
		n := len(wv)
		if len(gv) < n {
			n = len(gv)
		}
		for i := 0; i < n; i++ {
			diffNode(fmt.Sprintf("%s[%d]", path, i), wv[i], gv[i], lines)
		}
	default:
		if !reflect.DeepEqual(w, g) {
			*lines = append(*lines, fmt.Sprintf("%s: got %s, want %s", path, renderLeaf(g), renderLeaf(w)))
		}
	}
}

func unionKeys(a, b map[string]any) []string {
	ks := make([]string, 0, len(a)+len(b))
	for k := range a {
		ks = append(ks, k)
	}
	for k := range b {
		if _, dup := a[k]; !dup {
			ks = append(ks, k)
		}
	}
	sort.Strings(ks)
	return ks
}

func typeName(v any) string {
	switch v.(type) {
	case map[string]any:
		return "object"
	case []any:
		return "array"
	case nil:
		return "null"
	case string:
		return "string"
	case bool:
		return "bool"
	case float64:
		return "number"
	}
	return fmt.Sprintf("%T", v)
}

func renderLeaf(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	if len(b) > 80 {
		return string(b[:77]) + "..."
	}
	return string(b)
}

package check

import "fmt"

// Metamorphic property testing: configuration knobs that change how the
// simulator does its work — not what work it does — must leave the profiled
// result bit-identical. Each Property mutates one knob away from BaseConfig;
// the engine runs the base once, then every mutation, and compares canonical
// report bytes. This catches the class of bug where a performance path
// (parallel replay, sliced simulation, decoded-instruction cache,
// fast-forward) silently changes results.

// Config is the knob vector a metamorphic Runner receives. The zero value is
// not meaningful; start from BaseConfig.
type Config struct {
	// ReplayWorkers bounds concurrent replay passes (1 = sequential).
	ReplayWorkers int
	// SimWorkers shards one launch's SM simulation (1 = sequential).
	SimWorkers int
	// FastForward enables the adaptive idle-cycle skip.
	FastForward bool
	// ReplayCache enables the decoded-instruction replay cache.
	ReplayCache bool
	// Tracing attaches interval tracing to the run.
	Tracing bool
	// Observer attaches a progress observer (metrics sink).
	Observer bool
	// Checks attaches the in-loop invariant checker.
	Checks bool
}

// BaseConfig is the reference point every property mutates away from:
// sequential everywhere, all accelerations on (the production default), no
// instrumentation attached.
func BaseConfig() Config {
	return Config{
		ReplayWorkers: 1,
		SimWorkers:    1,
		FastForward:   true,
		ReplayCache:   true,
	}
}

// Property is one result-preserving transformation of the configuration.
type Property struct {
	// Name identifies the property in failure output, e.g. "sim-workers-4".
	Name string
	// Mutate returns the perturbed configuration. It must not change
	// anything that legitimately alters the result (GPU, level, mode).
	Mutate func(Config) Config
}

// Properties is the standard table: every knob the paper's methodology and
// this reproduction promise to be observation-only or schedule-only.
func Properties() []Property {
	return []Property{
		{Name: "tracing-on", Mutate: func(c Config) Config { c.Tracing = true; return c }},
		{Name: "observer-on", Mutate: func(c Config) Config { c.Observer = true; return c }},
		{Name: "checks-on", Mutate: func(c Config) Config { c.Checks = true; return c }},
		{Name: "replay-workers-4", Mutate: func(c Config) Config { c.ReplayWorkers = 4; return c }},
		{Name: "sim-workers-4", Mutate: func(c Config) Config { c.SimWorkers = 4; return c }},
		{Name: "replay-cache-off", Mutate: func(c Config) Config { c.ReplayCache = false; return c }},
		{Name: "fast-forward-off", Mutate: func(c Config) Config { c.FastForward = false; return c }},
	}
}

// Runner executes one profile under the given configuration and returns the
// canonical report bytes (ReportJSON form). The root package injects this;
// check cannot construct a Profiler without an import cycle.
type Runner func(cfg Config) ([]byte, error)

// Metamorphic runs the base configuration once, then each property's mutated
// configuration, and returns an error naming every property whose report
// bytes diverged from the base (with a per-node diff) or whose run failed.
func Metamorphic(run Runner, props []Property) error {
	base := BaseConfig()
	want, err := run(base)
	if err != nil {
		return fmt.Errorf("base config: %w", err)
	}
	var failures []string
	for _, p := range props {
		got, err := run(p.Mutate(base))
		if err != nil {
			failures = append(failures, fmt.Sprintf("property %s: run failed: %v", p.Name, err))
			continue
		}
		if d := DiffJSON(want, got); d != "" {
			failures = append(failures, fmt.Sprintf("property %s: result diverged from base:\n%s", p.Name, d))
		}
	}
	if len(failures) == 0 {
		return nil
	}
	msg := failures[0]
	for _, f := range failures[1:] {
		msg += "\n" + f
	}
	return fmt.Errorf("%d of %d metamorphic properties violated:\n%s", len(failures), len(props), msg)
}

package check

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestBaseConfig(t *testing.T) {
	c := BaseConfig()
	if c.ReplayWorkers != 1 || c.SimWorkers != 1 || !c.FastForward || !c.ReplayCache {
		t.Fatalf("unexpected base config: %+v", c)
	}
	if c.Tracing || c.Observer || c.Checks {
		t.Fatalf("base config must not attach instrumentation: %+v", c)
	}
}

func TestPropertiesMutateOneKnob(t *testing.T) {
	base := BaseConfig()
	seen := map[string]bool{}
	for _, p := range Properties() {
		if seen[p.Name] {
			t.Errorf("duplicate property name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Mutate(base) == base {
			t.Errorf("property %q does not change the configuration", p.Name)
		}
	}
	// The table must cover every knob the design claims is result-preserving.
	for _, want := range []string{
		"tracing-on", "observer-on", "checks-on",
		"replay-workers-4", "sim-workers-4", "replay-cache-off", "fast-forward-off",
	} {
		if !seen[want] {
			t.Errorf("property %q missing from the table", want)
		}
	}
}

func TestMetamorphicAllIdentical(t *testing.T) {
	runs := 0
	run := func(cfg Config) ([]byte, error) {
		runs++
		return []byte(`{"cycles": 7}`), nil
	}
	if err := Metamorphic(run, Properties()); err != nil {
		t.Fatalf("identical results flagged: %v", err)
	}
	if want := len(Properties()) + 1; runs != want {
		t.Fatalf("%d runs, want %d (base + each property)", runs, want)
	}
}

func TestMetamorphicDivergence(t *testing.T) {
	run := func(cfg Config) ([]byte, error) {
		if cfg.SimWorkers > 1 {
			return []byte(`{"cycles": 8}`), nil
		}
		return []byte(`{"cycles": 7}`), nil
	}
	err := Metamorphic(run, Properties())
	if err == nil {
		t.Fatal("divergent property not reported")
	}
	msg := err.Error()
	if !strings.Contains(msg, "sim-workers-4") || !strings.Contains(msg, "$.cycles") {
		t.Fatalf("error should name the property and the node: %v", err)
	}
	if strings.Contains(msg, "tracing-on:") {
		t.Fatalf("clean property named in failure: %v", err)
	}
	if !strings.Contains(msg, "1 of 7") {
		t.Fatalf("failure tally missing: %v", err)
	}
}

func TestMetamorphicBaseFailure(t *testing.T) {
	boom := errors.New("boom")
	err := Metamorphic(func(Config) ([]byte, error) { return nil, boom }, Properties())
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "base config") {
		t.Fatalf("base failure not surfaced: %v", err)
	}
}

func TestMetamorphicPropertyFailure(t *testing.T) {
	run := func(cfg Config) ([]byte, error) {
		if !cfg.FastForward {
			return nil, fmt.Errorf("engine exploded")
		}
		return []byte(`{}`), nil
	}
	err := Metamorphic(run, Properties())
	if err == nil || !strings.Contains(err.Error(), "fast-forward-off") ||
		!strings.Contains(err.Error(), "engine exploded") {
		t.Fatalf("property run failure not attributed: %v", err)
	}
}

package check

import (
	"math/rand"
	"testing"

	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
	"gputopdown/internal/sim"
)

// fuzzProgram builds a random terminating kernel (structured control flow,
// arithmetic, scratch-buffer memory traffic) — the same shape the simulator's
// own fuzz determinism tests use, regenerated here because sim does not
// export its generator.
func fuzzProgram(rng *rand.Rand, bufN int64) *kernel.Program {
	b := kernel.NewBuilder("invfuzz")
	buf := b.Param(0)
	gid := b.GlobalIDX()
	idx := b.AndImm(gid, bufN-1)
	addr := b.IMad(idx, b.MovImm(4), buf)
	live := []isa.Reg{gid, idx, b.MovImm(int64(rng.Intn(100)))}
	pick := func() isa.Reg { return live[rng.Intn(len(live))] }
	n := 8 + rng.Intn(32)
	for i := 0; i < n; i++ {
		switch op := rng.Intn(10); {
		case op < 3:
			live = append(live, b.IAdd(pick(), pick()))
		case op < 5:
			f := b.I2F(pick())
			live = append(live, b.FFma(f, b.FConst(rng.Float32()), f))
		case op == 5:
			live = append(live, b.Ldg(addr, 0, 4))
		case op == 6:
			b.Stg(addr, pick(), 0, 4)
		case op == 7:
			p := b.ISetpImm(isa.CmpGT, b.AndImm(pick(), 3), int64(rng.Intn(3)))
			b.If(p)
			live = append(live, b.IAddImm(pick(), 1))
			b.EndIf()
		case op == 8:
			it := b.ForImm(0, int64(1+rng.Intn(5)), 1)
			live = append(live, b.IAdd(it, pick()))
			b.EndFor()
		default:
			live = append(live, b.IMulImm(pick(), int64(1+rng.Intn(7))))
		}
		if len(live) > 16 {
			live = live[len(live)-8:]
		}
	}
	b.Stg(addr, pick(), 0, 4)
	b.Exit()
	return b.MustBuild()
}

// FuzzInvariants launches randomly generated kernels with the in-loop checker
// attached: whatever the program does, the conservation laws must hold, on
// both the sequential and parallel engines. The CI fuzz smoke runs this
// briefly; longer local runs explore more programs.
func FuzzInvariants(f *testing.F) {
	for seed := int64(1); seed <= 4; seed++ {
		f.Add(seed, uint8(1))
	}
	f.Add(int64(5), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, workers uint8) {
		const bufN = 512
		w := int(workers%4) + 1
		prog := fuzzProgram(rand.New(rand.NewSource(seed)), bufN)
		inv := New()
		d := sim.NewDevice(testSpec())
		d.SetChecker(inv)
		d.SetSimWorkers(w)
		buf := d.Alloc(bufN * 4)
		host := make([]uint32, bufN)
		r := rand.New(rand.NewSource(seed))
		for i := range host {
			host[i] = uint32(r.Intn(1 << 20))
		}
		d.Storage.WriteU32Slice(buf, host)
		l := &kernel.Launch{
			Program: prog,
			Grid:    kernel.Dim3{X: 3},
			Block:   kernel.Dim3{X: 96},
			Params:  []uint64{buf},
		}
		res := d.MustLaunch(l)
		if err := inv.Err(); err != nil {
			t.Fatalf("seed %d workers %d: invariants violated: %v", seed, w, err)
		}
		if res.Counters.InstExecuted == 0 {
			t.Fatalf("seed %d: generated kernel executed nothing", seed)
		}
	})
}

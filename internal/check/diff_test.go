package check

import (
	"fmt"
	"strings"
	"testing"

	"gputopdown/internal/serve"
)

func TestDiffJSONEqual(t *testing.T) {
	doc := []byte(`{"a": 1, "b": [1, 2]}`)
	if d := DiffJSON(doc, doc); d != "" {
		t.Fatalf("identical docs diffed: %s", d)
	}
}

func TestDiffJSONLeafChange(t *testing.T) {
	want := []byte(`{"cycles": 100, "name": "k"}`)
	got := []byte(`{"cycles": 101, "name": "k"}`)
	d := DiffJSON(want, got)
	if !strings.Contains(d, "$.cycles") || !strings.Contains(d, "100") || !strings.Contains(d, "101") {
		t.Fatalf("diff should locate the leaf: %s", d)
	}
	if strings.Contains(d, "$.name") {
		t.Fatalf("diff flagged an unchanged leaf: %s", d)
	}
}

func TestDiffJSONStructural(t *testing.T) {
	for _, tc := range []struct {
		name, want, got, needle string
	}{
		{"missing-key", `{"a": 1, "b": 2}`, `{"a": 1}`, "$.b: missing"},
		{"extra-key", `{"a": 1}`, `{"a": 1, "c": 3}`, "$.c: unexpected"},
		{"type-change", `{"a": {"x": 1}}`, `{"a": [1]}`, "want object"},
		{"array-type", `{"a": [1]}`, `{"a": 1}`, "want array"},
		{"array-length", `{"a": [1, 2, 3]}`, `{"a": [1, 2]}`, "length 2, want 3"},
		{"array-elem", `{"a": [1, 2]}`, `{"a": [1, 9]}`, "$.a[1]"},
		{"null-vs-num", `{"a": null}`, `{"a": 0}`, "$.a"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := DiffJSON([]byte(tc.want), []byte(tc.got))
			if !strings.Contains(d, tc.needle) {
				t.Fatalf("diff %q missing %q", d, tc.needle)
			}
		})
	}
}

func TestDiffJSONFormattingDrift(t *testing.T) {
	d := DiffJSON([]byte(`{"a":1}`), []byte(`{ "a": 1 }`))
	if !strings.Contains(d, "byte-different") {
		t.Fatalf("formatting drift should be named as such: %s", d)
	}
}

func TestDiffJSONInvalid(t *testing.T) {
	if d := DiffJSON([]byte(`{`), []byte(`{}`)); !strings.Contains(d, "want side") {
		t.Fatalf("invalid want side not reported: %s", d)
	}
	if d := DiffJSON([]byte(`{}`), []byte(`{`)); !strings.Contains(d, "got side") {
		t.Fatalf("invalid got side not reported: %s", d)
	}
}

func TestDiffJSONLineCap(t *testing.T) {
	var w, g strings.Builder
	w.WriteString("{")
	g.WriteString("{")
	for i := 0; i < 100; i++ {
		if i > 0 {
			w.WriteString(",")
			g.WriteString(",")
		}
		fmt.Fprintf(&w, `"k%03d": 0`, i)
		fmt.Fprintf(&g, `"k%03d": 1`, i)
	}
	w.WriteString("}")
	g.WriteString("}")
	d := DiffJSON([]byte(w.String()), []byte(g.String()))
	if !strings.Contains(d, "more diverging nodes") {
		t.Fatalf("cap note missing from a 100-leaf diff:\n%s", d)
	}
	if n := strings.Count(d, "\n"); n > maxDiffLines+2 {
		t.Fatalf("diff has %d lines, cap is %d", n, maxDiffLines)
	}
}

func TestReportJSONCanonicalAndStable(t *testing.T) {
	rep := &serve.Report{
		APIVersion:  serve.APIVersion,
		App:         "a",
		Suite:       "s",
		GPU:         "g",
		WallSeconds: 1.25,
		Kernels: []serve.KernelReport{
			{Kernel: "k", Invocation: 0, Cycles: 42},
		},
	}
	b1, err := ReportJSON(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b1), `"wall_seconds": 0`) {
		t.Fatalf("wall_seconds not zeroed:\n%s", b1)
	}
	if rep.WallSeconds != 1.25 {
		t.Fatal("ReportJSON mutated its argument")
	}
	if !strings.HasSuffix(string(b1), "\n") {
		t.Fatal("missing trailing newline")
	}
	// Round-trip stability: a second marshal of the same report is
	// byte-identical, and so is a marshal of a copy with different wall time.
	rep2 := *rep
	rep2.WallSeconds = 99
	b2, err := ReportJSON(&rep2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("canonical form depends on wall time:\n%s", DiffJSON(b1, b2))
	}
}

package check

import (
	"testing"

	"gputopdown/internal/core"
	"gputopdown/internal/sm"
)

// BenchmarkChecksDisabled gates the disabled path: a nil *Invariants must
// make every hook a pure nil check — 0 allocs/op (the CI bench smoke greps
// for it), so leaving the hook sites compiled into the hot loops is free.
func BenchmarkChecksDisabled(b *testing.B) {
	var inv *Invariants
	var c sm.Counters
	a := &core.Analysis{Level: core.Level2, IPCMax: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inv.CheckCounters("bench", &c)
		inv.CheckAnalysis(a)
		inv.CheckPassMerge("k", nil, nil, nil)
		inv.CheckLaunch(nil, nil)
		inv.CheckEpoch(nil, 0)
	}
	if inv.Count() != 0 {
		b.Fatal("nil checker recorded violations")
	}
}

// BenchmarkChecksEnabledClean measures the enabled counter sweep on a clean
// snapshot — the recurring in-loop cost a -checks run pays per epoch per SM.
func BenchmarkChecksEnabledClean(b *testing.B) {
	inv := New()
	c := goodCounters()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inv.CheckCounters("bench", &c)
	}
	if inv.Count() != 0 {
		b.Fatal("clean counters flagged")
	}
}

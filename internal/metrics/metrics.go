// Package metrics implements the profiler metric layer the paper's tool
// consumes: the nvprof events+metrics model for compute capability < 7.2 and
// the unified ncu metrics model for CC >= 7.2 (paper §II). Every metric
// named in the paper's Tables I–VIII is present under its exact spelling,
// alongside the usual neighbours (achieved occupancy, hit rates, ...).
//
// A Metric is a named formula over raw PMU counters. Registries are gated by
// compute capability, so the Top-Down analyzer can ask "give me IPC_REPORTED
// on this device" and get the right tool's metric — nvprof's "ipc" or ncu's
// "smsp__inst_executed.avg.per_cycle_active".
package metrics

import (
	"fmt"
	"sort"

	"gputopdown/internal/gpu"
	"gputopdown/internal/pmu"
	"gputopdown/internal/sm"
)

// Context carries everything a metric formula may need.
type Context struct {
	Spec   *gpu.Spec
	Values pmu.Values
}

// get reads a raw counter from the context (0 when absent).
func (c *Context) get(id pmu.CounterID) float64 { return float64(c.Values[id]) }

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Metric is one named profiler metric.
type Metric struct {
	Name        string
	Description string
	// Counters lists the raw PMU counters the metric needs; the profiling
	// session schedules them into passes.
	Counters []pmu.CounterID
	// Eval computes the metric from collected counters.
	Eval func(*Context) float64
}

// Registry is a set of metrics available on one tool/CC combination.
type Registry struct {
	tool    string
	byName  map[string]*Metric
	ordered []string
}

// Tool returns "nvprof" or "ncu".
func (r *Registry) Tool() string { return r.tool }

// Lookup finds a metric by its exact name.
func (r *Registry) Lookup(name string) (*Metric, bool) {
	m, ok := r.byName[name]
	return m, ok
}

// Names returns all metric names, sorted.
func (r *Registry) Names() []string {
	out := make([]string, len(r.ordered))
	copy(out, r.ordered)
	sort.Strings(out)
	return out
}

// CountersFor returns the deduplicated raw-counter request for a metric
// list, erroring on unknown names.
func (r *Registry) CountersFor(names []string) ([]pmu.CounterID, error) {
	seen := map[pmu.CounterID]bool{}
	var out []pmu.CounterID
	for _, n := range names {
		m, ok := r.byName[n]
		if !ok {
			return nil, fmt.Errorf("metrics: %s has no metric %q", r.tool, n)
		}
		for _, id := range m.Counters {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out, nil
}

// Eval computes a metric by name.
func (r *Registry) Eval(name string, ctx *Context) (float64, error) {
	m, ok := r.byName[name]
	if !ok {
		return 0, fmt.Errorf("metrics: %s has no metric %q", r.tool, name)
	}
	return m.Eval(ctx), nil
}

func (r *Registry) add(m *Metric) {
	if _, dup := r.byName[m.Name]; dup {
		panic("metrics: duplicate metric " + m.Name)
	}
	r.byName[m.Name] = m
	r.ordered = append(r.ordered, m.Name)
}

// ForCC returns the metric registry matching a compute capability, the way
// the paper's tool picks nvprof below CC 7.2 and ncu at or above it.
func ForCC(cc gpu.CC) *Registry {
	if cc.UsesUnifiedMetrics() {
		return NCU()
	}
	return Nvprof()
}

func stall(s sm.WarpState) pmu.CounterID { return pmu.StallCounter(s) }

// nvprofStallGroups maps each nvprof stall event to the warp states it
// aggregates (see DESIGN.md for the mapping rationale). The groups partition
// every non-issuing state, so the percentages sum to 100.
var nvprofStallGroups = map[string][]sm.WarpState{
	"stall_inst_fetch":                 {sm.StateNoInstruction, sm.StateBranchResolving},
	"stall_sync":                       {sm.StateBarrier, sm.StateMembar},
	"stall_other":                      {sm.StateMisc, sm.StateDispatchStall, sm.StateSleeping, sm.StateDrain},
	"stall_exec_dependency":            {sm.StateWait, sm.StateShortScoreboard},
	"stall_memory_dependency":          {sm.StateLongScoreboard},
	"stall_pipe_busy":                  {sm.StateMathPipeThrottle},
	"stall_memory_throttle":            {sm.StateLGThrottle, sm.StateMIOThrottle},
	"stall_constant_memory_dependency": {sm.StateIMCMiss},
	"stall_texture":                    {sm.StateTEXThrottle},
	"stall_not_selected":               {sm.StateNotSelected},
}

// allStallStates lists every state that is not "selected": the denominator
// of nvprof's issue-stall-reason percentages.
func allStallStates() []sm.WarpState {
	out := make([]sm.WarpState, 0, sm.NumWarpStates-1)
	for s := sm.StateNotSelected; s < sm.NumWarpStates; s++ {
		out = append(out, s)
	}
	return out
}

func stallCounters(states []sm.WarpState) []pmu.CounterID {
	out := make([]pmu.CounterID, len(states))
	for i, s := range states {
		out[i] = stall(s)
	}
	return out
}

func sumStates(ctx *Context, states []sm.WarpState) float64 {
	var t float64
	for _, s := range states {
		t += ctx.get(stall(s))
	}
	return t
}

// Nvprof returns the CC < 7.2 events+metrics registry (paper Tables I, III,
// V, VII).
func Nvprof() *Registry {
	r := &Registry{tool: "nvprof", byName: map[string]*Metric{}}

	r.add(&Metric{
		Name:        "ipc",
		Description: "Average number of executed instructions per cycle, per SM",
		Counters:    []pmu.CounterID{pmu.CtrInstExecuted, pmu.CtrActiveCycles},
		Eval: func(c *Context) float64 {
			return safeDiv(c.get(pmu.CtrInstExecuted), c.get(pmu.CtrActiveCycles))
		},
	})
	r.add(&Metric{
		Name:        "issued_ipc",
		Description: "Average number of instructions issued per cycle, per SM, including replays",
		Counters:    []pmu.CounterID{pmu.CtrInstIssued, pmu.CtrActiveCycles},
		Eval: func(c *Context) float64 {
			return safeDiv(c.get(pmu.CtrInstIssued), c.get(pmu.CtrActiveCycles))
		},
	})
	r.add(&Metric{
		Name:        "warp_execution_efficiency",
		Description: "Ratio of average active threads per warp to the maximum (%)",
		Counters:    []pmu.CounterID{pmu.CtrThreadInstExecuted, pmu.CtrInstExecuted},
		Eval: func(c *Context) float64 {
			return 100 * safeDiv(c.get(pmu.CtrThreadInstExecuted), c.get(pmu.CtrInstExecuted)*32)
		},
	})

	// Stall percentages: each group over the sum of all non-issuing states.
	denomCounters := stallCounters(allStallStates())
	for name, states := range nvprofStallGroups {
		states := states
		ctrs := append(stallCounters(states), denomCounters...)
		r.add(&Metric{
			Name:        name,
			Description: "Percentage of issue stalls attributed to " + name[len("stall_"):],
			Counters:    ctrs,
			Eval: func(c *Context) float64 {
				return 100 * safeDiv(sumStates(c, states), sumStates(c, allStallStates()))
			},
		})
	}

	r.add(&Metric{
		Name:        "achieved_occupancy",
		Description: "Ratio of average active warps per cycle to maximum warps per SM",
		Counters:    []pmu.CounterID{pmu.CtrActiveWarpCycles, pmu.CtrActiveCycles},
		Eval: func(c *Context) float64 {
			return safeDiv(c.get(pmu.CtrActiveWarpCycles),
				c.get(pmu.CtrActiveCycles)*float64(c.Spec.WarpsPerSM()))
		},
	})
	r.add(&Metric{
		Name:        "branch_efficiency",
		Description: "Ratio of non-divergent branches to total branches (%)",
		Counters:    []pmu.CounterID{pmu.CtrBranchInstrs, pmu.CtrDivergentBranches},
		Eval: func(c *Context) float64 {
			b := c.get(pmu.CtrBranchInstrs)
			return 100 * safeDiv(b-c.get(pmu.CtrDivergentBranches), b)
		},
	})
	r.add(&Metric{
		Name:        "gld_transactions_per_request",
		Description: "Average sectors per global load",
		Counters:    []pmu.CounterID{pmu.CtrLoadSectors, pmu.CtrGlobalLoads},
		Eval: func(c *Context) float64 {
			return safeDiv(c.get(pmu.CtrLoadSectors), c.get(pmu.CtrGlobalLoads))
		},
	})
	r.add(&Metric{
		Name:        "tex_cache_hit_rate",
		Description: "L1/tex cache hit rate (%)",
		Counters:    []pmu.CounterID{pmu.CtrL1Hits, pmu.CtrL1Misses},
		Eval: func(c *Context) float64 {
			h := c.get(pmu.CtrL1Hits)
			return 100 * safeDiv(h, h+c.get(pmu.CtrL1Misses))
		},
	})
	r.add(&Metric{
		Name:        "l2_tex_hit_rate",
		Description: "L2 hit rate for L1 misses (%)",
		Counters:    []pmu.CounterID{pmu.CtrL2Hits, pmu.CtrL2Misses},
		Eval: func(c *Context) float64 {
			h := c.get(pmu.CtrL2Hits)
			return 100 * safeDiv(h, h+c.get(pmu.CtrL2Misses))
		},
	})
	r.add(&Metric{
		Name:        "shared_replay_overhead",
		Description: "Average shared-memory replays per executed instruction",
		Counters:    []pmu.CounterID{pmu.CtrSharedBankConflicts, pmu.CtrInstExecuted},
		Eval: func(c *Context) float64 {
			return safeDiv(c.get(pmu.CtrSharedBankConflicts), c.get(pmu.CtrInstExecuted))
		},
	})
	return r
}

// ncuStallNames maps the unified metric's state segment to the warp state,
// matching the paper's Tables VI and VIII name-for-name.
var ncuStallNames = map[string]sm.WarpState{
	"no_instruction":     sm.StateNoInstruction,
	"barrier":            sm.StateBarrier,
	"membar":             sm.StateMembar,
	"branch_resolving":   sm.StateBranchResolving,
	"sleeping":           sm.StateSleeping,
	"misc":               sm.StateMisc,
	"dispatch_stall":     sm.StateDispatchStall,
	"math_pipe_throttle": sm.StateMathPipeThrottle,
	"long_scoreboard":    sm.StateLongScoreboard,
	"imc_miss":           sm.StateIMCMiss,
	"mio_throttle":       sm.StateMIOThrottle,
	"drain":              sm.StateDrain,
	"lg_throttle":        sm.StateLGThrottle,
	"short_scoreboard":   sm.StateShortScoreboard,
	"wait":               sm.StateWait,
	"tex_throttle":       sm.StateTEXThrottle,
	"selected":           sm.StateSelected,
	"not_selected":       sm.StateNotSelected,
}

// NCU returns the CC >= 7.2 unified metrics registry (paper Tables II, IV,
// VI, VIII).
func NCU() *Registry {
	r := &Registry{tool: "ncu", byName: map[string]*Metric{}}

	r.add(&Metric{
		Name:        "smsp__inst_executed.avg.per_cycle_active",
		Description: "Average number of instructions per cycle, per SM",
		Counters:    []pmu.CounterID{pmu.CtrInstExecuted, pmu.CtrActiveCycles},
		Eval: func(c *Context) float64 {
			return safeDiv(c.get(pmu.CtrInstExecuted), c.get(pmu.CtrActiveCycles))
		},
	})
	r.add(&Metric{
		Name:        "smsp__inst_issued.avg.per_cycle_active",
		Description: "Average number of instructions issued per cycle, per SM, including replayed",
		Counters:    []pmu.CounterID{pmu.CtrInstIssued, pmu.CtrActiveCycles},
		Eval: func(c *Context) float64 {
			return safeDiv(c.get(pmu.CtrInstIssued), c.get(pmu.CtrActiveCycles))
		},
	})
	r.add(&Metric{
		Name:        "smsp__thread_inst_executed_per_inst_executed.ratio",
		Description: "Ratio of average active threads per warp to the maximum",
		Counters:    []pmu.CounterID{pmu.CtrThreadInstExecuted, pmu.CtrInstExecuted},
		Eval: func(c *Context) float64 {
			return safeDiv(c.get(pmu.CtrThreadInstExecuted), c.get(pmu.CtrInstExecuted))
		},
	})

	for seg, state := range ncuStallNames {
		state := state
		name := "smsp__warp_issue_stalled_" + seg + "_per_warp_active.pct"
		r.add(&Metric{
			Name:        name,
			Description: "Percentage of active warp-cycles stalled in " + seg,
			Counters:    []pmu.CounterID{stall(state), pmu.CtrActiveWarpCycles},
			Eval: func(c *Context) float64 {
				return 100 * safeDiv(c.get(stall(state)), c.get(pmu.CtrActiveWarpCycles))
			},
		})
	}

	r.add(&Metric{
		Name:        "sm__warps_active.avg.pct_of_peak_sustained_active",
		Description: "Achieved occupancy (%)",
		Counters:    []pmu.CounterID{pmu.CtrActiveWarpCycles, pmu.CtrActiveCycles},
		Eval: func(c *Context) float64 {
			return 100 * safeDiv(c.get(pmu.CtrActiveWarpCycles),
				c.get(pmu.CtrActiveCycles)*float64(c.Spec.WarpsPerSM()))
		},
	})
	r.add(&Metric{
		Name:        "l1tex__t_sector_hit_rate.pct",
		Description: "L1TEX sector hit rate (%)",
		Counters:    []pmu.CounterID{pmu.CtrL1Hits, pmu.CtrL1Misses},
		Eval: func(c *Context) float64 {
			h := c.get(pmu.CtrL1Hits)
			return 100 * safeDiv(h, h+c.get(pmu.CtrL1Misses))
		},
	})
	r.add(&Metric{
		Name:        "lts__t_sector_hit_rate.pct",
		Description: "L2 sector hit rate (%)",
		Counters:    []pmu.CounterID{pmu.CtrL2Hits, pmu.CtrL2Misses},
		Eval: func(c *Context) float64 {
			h := c.get(pmu.CtrL2Hits)
			return 100 * safeDiv(h, h+c.get(pmu.CtrL2Misses))
		},
	})
	r.add(&Metric{
		Name:        "idc__request_hit_rate.pct",
		Description: "Immediate-constant cache hit rate (%)",
		Counters:    []pmu.CounterID{pmu.CtrIMCHits, pmu.CtrIMCMisses},
		Eval: func(c *Context) float64 {
			h := c.get(pmu.CtrIMCHits)
			return 100 * safeDiv(h, h+c.get(pmu.CtrIMCMisses))
		},
	})
	r.add(&Metric{
		Name:        "l1tex__average_t_sectors_per_request_pipe_lsu_mem_global_op_ld.ratio",
		Description: "Average sectors per global load request",
		Counters:    []pmu.CounterID{pmu.CtrLoadSectors, pmu.CtrGlobalLoads},
		Eval: func(c *Context) float64 {
			return safeDiv(c.get(pmu.CtrLoadSectors), c.get(pmu.CtrGlobalLoads))
		},
	})
	r.add(&Metric{
		Name:        "sm__cycles_active.avg",
		Description: "Average active cycles per SM",
		Counters:    []pmu.CounterID{pmu.CtrActiveCycles},
		Eval: func(c *Context) float64 {
			return safeDiv(c.get(pmu.CtrActiveCycles), float64(c.Spec.SMs))
		},
	})
	return r
}

package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"gputopdown/internal/gpu"
	"gputopdown/internal/pmu"
	"gputopdown/internal/sm"
)

// TestPaperTables verifies that every metric named in the paper's Tables
// I–VIII exists in the registry for the corresponding compute-capability
// range, under the exact paper spelling.
func TestPaperTables(t *testing.T) {
	nvprof := Nvprof()
	// Tables I, III, V, VII (CC < 7.2).
	nvprofNames := []string{
		// Table I / III
		"ipc", "warp_execution_efficiency", "issued_ipc",
		// Table V
		"stall_inst_fetch", "stall_sync", "stall_other",
		// Table VII
		"stall_exec_dependency", "stall_pipe_busy", "stall_memory_dependency",
		"stall_constant_memory_dependency", "stall_memory_throttle",
	}
	for _, n := range nvprofNames {
		if _, ok := nvprof.Lookup(n); !ok {
			t.Errorf("nvprof registry missing paper metric %q", n)
		}
	}

	ncu := NCU()
	// Tables II, IV, VI, VIII (CC >= 7.2).
	ncuNames := []string{
		"smsp__inst_executed.avg.per_cycle_active",
		"smsp__thread_inst_executed_per_inst_executed.ratio",
		"smsp__inst_issued.avg.per_cycle_active",
		"smsp__warp_issue_stalled_no_instruction_per_warp_active.pct",
		"smsp__warp_issue_stalled_barrier_per_warp_active.pct",
		"smsp__warp_issue_stalled_membar_per_warp_active.pct",
		"smsp__warp_issue_stalled_branch_resolving_per_warp_active.pct",
		"smsp__warp_issue_stalled_sleeping_per_warp_active.pct",
		"smsp__warp_issue_stalled_misc_per_warp_active.pct",
		"smsp__warp_issue_stalled_dispatch_stall_per_warp_active.pct",
		"smsp__warp_issue_stalled_math_pipe_throttle_per_warp_active.pct",
		"smsp__warp_issue_stalled_long_scoreboard_per_warp_active.pct",
		"smsp__warp_issue_stalled_imc_miss_per_warp_active.pct",
		"smsp__warp_issue_stalled_mio_throttle_per_warp_active.pct",
		"smsp__warp_issue_stalled_drain_per_warp_active.pct",
		"smsp__warp_issue_stalled_lg_throttle_per_warp_active.pct",
		"smsp__warp_issue_stalled_short_scoreboard_per_warp_active.pct",
		"smsp__warp_issue_stalled_wait_per_warp_active.pct",
		"smsp__warp_issue_stalled_tex_throttle_per_warp_active.pct",
	}
	for _, n := range ncuNames {
		if _, ok := ncu.Lookup(n); !ok {
			t.Errorf("ncu registry missing paper metric %q", n)
		}
	}
}

func TestForCCDispatch(t *testing.T) {
	if ForCC(gpu.CC{Major: 6, Minor: 1}).Tool() != "nvprof" {
		t.Error("CC 6.1 should use nvprof")
	}
	if ForCC(gpu.CC{Major: 7, Minor: 5}).Tool() != "ncu" {
		t.Error("CC 7.5 should use ncu")
	}
	if ForCC(gpu.CC{Major: 7, Minor: 0}).Tool() != "nvprof" {
		t.Error("CC 7.0 should use nvprof")
	}
}

func ctxWith(values pmu.Values) *Context {
	return &Context{Spec: gpu.QuadroRTX4000(), Values: values}
}

func TestIPCFormulas(t *testing.T) {
	v := pmu.Values{
		pmu.CtrInstExecuted:       1000,
		pmu.CtrInstIssued:         1200,
		pmu.CtrActiveCycles:       500,
		pmu.CtrThreadInstExecuted: 16000,
	}
	c := ctxWith(v)
	nv := Nvprof()
	if got, _ := nv.Eval("ipc", c); got != 2.0 {
		t.Errorf("ipc = %g, want 2", got)
	}
	if got, _ := nv.Eval("issued_ipc", c); got != 2.4 {
		t.Errorf("issued_ipc = %g, want 2.4", got)
	}
	// 16000 thread insts / (1000*32) = 50%.
	if got, _ := nv.Eval("warp_execution_efficiency", c); got != 50 {
		t.Errorf("warp_execution_efficiency = %g, want 50", got)
	}
	ncu := NCU()
	if got, _ := ncu.Eval("smsp__inst_executed.avg.per_cycle_active", c); got != 2.0 {
		t.Errorf("ncu ipc = %g", got)
	}
	// ncu ratio is threads-per-instruction, 0..32.
	if got, _ := ncu.Eval("smsp__thread_inst_executed_per_inst_executed.ratio", c); got != 16 {
		t.Errorf("ncu thread ratio = %g, want 16", got)
	}
}

func TestNvprofStallPercentagesSumTo100(t *testing.T) {
	f := func(raw [sm.NumWarpStates]uint16) bool {
		v := pmu.Values{}
		var any bool
		for s := sm.StateNotSelected; s < sm.NumWarpStates; s++ {
			v[pmu.StallCounter(s)] = uint64(raw[s])
			if raw[s] > 0 {
				any = true
			}
		}
		if !any {
			return true
		}
		c := ctxWith(v)
		nv := Nvprof()
		var sum float64
		for name := range nvprofStallGroups {
			g, _ := nv.Eval(name, c)
			if g < 0 || g > 100.0001 {
				return false
			}
			sum += g
		}
		return math.Abs(sum-100) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNcuStallPercentagesSumTo100OverAllStates(t *testing.T) {
	v := pmu.Values{}
	var total uint64
	for s := sm.WarpState(0); s < sm.NumWarpStates; s++ {
		v[pmu.StallCounter(s)] = uint64(s + 1)
		total += uint64(s + 1)
	}
	v[pmu.CtrActiveWarpCycles] = total
	c := ctxWith(v)
	ncu := NCU()
	var sum float64
	for seg := range ncuStallNames {
		g, err := ncu.Eval("smsp__warp_issue_stalled_"+seg+"_per_warp_active.pct", c)
		if err != nil {
			t.Fatal(err)
		}
		sum += g
	}
	if math.Abs(sum-100) > 1e-6 {
		t.Errorf("ncu state percentages sum to %g, want 100", sum)
	}
}

func TestCountersForUnknownMetric(t *testing.T) {
	if _, err := Nvprof().CountersFor([]string{"ipc", "bogus"}); err == nil {
		t.Error("unknown metric accepted")
	}
	ids, err := Nvprof().CountersFor([]string{"ipc", "issued_ipc"})
	if err != nil {
		t.Fatal(err)
	}
	// Deduplicated: ipc and issued_ipc share CtrActiveCycles.
	seen := map[pmu.CounterID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate counter %s in request", pmu.Name(id))
		}
		seen[id] = true
	}
	if !seen[pmu.CtrActiveCycles] || !seen[pmu.CtrInstExecuted] || !seen[pmu.CtrInstIssued] {
		t.Errorf("request missing expected counters: %v", ids)
	}
}

func TestEvalUnknown(t *testing.T) {
	if _, err := NCU().Eval("nope", ctxWith(pmu.Values{})); err == nil {
		t.Error("unknown metric evaluated")
	}
}

func TestSafeDivZeroDenominators(t *testing.T) {
	c := ctxWith(pmu.Values{})
	for _, reg := range []*Registry{Nvprof(), NCU()} {
		for _, n := range reg.Names() {
			got, err := reg.Eval(n, c)
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Errorf("%s/%s = %g on empty values", reg.Tool(), n, got)
			}
		}
	}
}

func TestOccupancyMetrics(t *testing.T) {
	spec := gpu.QuadroRTX4000() // 32 warps per SM
	v := pmu.Values{
		pmu.CtrActiveWarpCycles: 1600,
		pmu.CtrActiveCycles:     100,
	}
	c := &Context{Spec: spec, Values: v}
	if got, _ := Nvprof().Eval("achieved_occupancy", c); got != 0.5 {
		t.Errorf("achieved_occupancy = %g, want 0.5", got)
	}
	if got, _ := NCU().Eval("sm__warps_active.avg.pct_of_peak_sustained_active", c); got != 50 {
		t.Errorf("ncu occupancy = %g, want 50", got)
	}
}

func TestHitRates(t *testing.T) {
	v := pmu.Values{
		pmu.CtrL1Hits: 75, pmu.CtrL1Misses: 25,
		pmu.CtrL2Hits: 30, pmu.CtrL2Misses: 10,
		pmu.CtrIMCHits: 9, pmu.CtrIMCMisses: 1,
	}
	c := ctxWith(v)
	ncu := NCU()
	if got, _ := ncu.Eval("l1tex__t_sector_hit_rate.pct", c); got != 75 {
		t.Errorf("L1 hit rate = %g", got)
	}
	if got, _ := ncu.Eval("lts__t_sector_hit_rate.pct", c); got != 75 {
		t.Errorf("L2 hit rate = %g", got)
	}
	if got, _ := ncu.Eval("idc__request_hit_rate.pct", c); got != 90 {
		t.Errorf("IMC hit rate = %g", got)
	}
	nv := Nvprof()
	if got, _ := nv.Eval("tex_cache_hit_rate", c); got != 75 {
		t.Errorf("nvprof L1 hit rate = %g", got)
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	for _, reg := range []*Registry{Nvprof(), NCU()} {
		names := reg.Names()
		if len(names) < 10 {
			t.Errorf("%s registry suspiciously small: %d metrics", reg.Tool(), len(names))
		}
		for i := 1; i < len(names); i++ {
			if names[i-1] >= names[i] {
				t.Errorf("%s names not sorted/unique at %q", reg.Tool(), names[i])
			}
		}
		for _, n := range names {
			m, _ := reg.Lookup(n)
			if m.Description == "" {
				t.Errorf("%s/%s has no description", reg.Tool(), n)
			}
			if len(m.Counters) == 0 {
				t.Errorf("%s/%s declares no counters", reg.Tool(), n)
			}
			for _, id := range m.Counters {
				if !pmu.Valid(id) {
					t.Errorf("%s/%s references invalid counter %d", reg.Tool(), n, id)
				}
			}
		}
	}
}

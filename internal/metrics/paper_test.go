package metrics

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gputopdown/internal/pmu"
)

// readPaperList parses a testdata golden list: one metric name per line,
// '#' comments and blank lines skipped.
func readPaperList(t *testing.T, file string) []string {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var names []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		names = append(names, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return names
}

// TestRegistryMatchesPaperTables is the completeness gate against the paper's
// metric tables: each registry must expose exactly the golden list — every
// paper-named metric present under its exact spelling (Tables I-VIII), and no
// unlisted metric drifting in unreviewed. Every listed metric must also
// schedule counters and evaluate, so the list can't be satisfied by stubs.
func TestRegistryMatchesPaperTables(t *testing.T) {
	for _, tc := range []struct {
		reg  *Registry
		file string
	}{
		{Nvprof(), "paper_metrics_nvprof.txt"},
		{NCU(), "paper_metrics_ncu.txt"},
	} {
		t.Run(tc.reg.Tool(), func(t *testing.T) {
			want := readPaperList(t, tc.file)
			wantSet := map[string]bool{}
			for _, n := range want {
				wantSet[n] = true
			}
			for _, n := range want {
				m, ok := tc.reg.Lookup(n)
				if !ok {
					t.Errorf("paper metric %q missing from the %s registry", n, tc.reg.Tool())
					continue
				}
				if m.Description == "" {
					t.Errorf("paper metric %q has no description", n)
				}
				ids, err := tc.reg.CountersFor([]string{n})
				if err != nil {
					t.Errorf("paper metric %q schedules no counters: %v", n, err)
					continue
				}
				values := pmu.Values{}
				for _, id := range ids {
					values[id] = 100 // nonzero so ratio metrics have denominators
				}
				if _, err := tc.reg.Eval(n, ctxWith(values)); err != nil {
					t.Errorf("paper metric %q does not evaluate: %v", n, err)
				}
			}
			for _, n := range tc.reg.Names() {
				if !wantSet[n] {
					t.Errorf("registry metric %q is not in the paper golden list %s — "+
						"if intentional, add it to the list with a table reference", n, tc.file)
				}
			}
		})
	}
}

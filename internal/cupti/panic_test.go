package cupti

import (
	"context"
	"errors"
	"testing"
	"time"

	"gputopdown/internal/kernel"
)

// wildKernel loads from an address far outside any allocation, which panics
// inside the memory substrate — the injected crash for isolation tests.
func wildKernel() *kernel.Program {
	b := kernel.NewBuilder("wild")
	gid := b.GlobalIDX()
	addr := b.IMad(gid, b.MovImm(4), b.MovImm(1<<30))
	b.Ldg(addr, 0, 4)
	b.Exit()
	return b.MustBuild()
}

func launchWild() *kernel.Launch {
	return &kernel.Launch{
		Program: wildKernel(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 32},
	}
}

// TestPanicIsolationSequential: a panicking kernel must come back as a
// *KernelError wrapping ErrKernelPanic — not a process crash — and the
// session must keep profiling sibling kernels on the recovered device.
func TestPanicIsolationSequential(t *testing.T) {
	d := testDevice()
	const n = 1024
	buf := d.Alloc(n * 4)
	d.Storage.WriteU32Slice(buf, make([]uint32, n))
	s, err := NewSession(d, fullStallRequest(), ModeSMPC)
	if err != nil {
		t.Fatal(err)
	}

	_, err = s.Profile(launchWild())
	if err == nil {
		t.Fatal("panicking kernel profiled without error")
	}
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("error %v does not unwrap to *KernelError", err)
	}
	if ke.Kernel != "wild" {
		t.Errorf("KernelError names kernel %q, want wild", ke.Kernel)
	}
	if !errors.Is(err, ErrKernelPanic) {
		t.Fatalf("error %v does not wrap ErrKernelPanic", err)
	}

	// Sibling kernel on the same session and device still profiles.
	rec, err := s.Profile(launchInc(d, buf, n))
	if err != nil {
		t.Fatalf("sibling kernel after panic: %v", err)
	}
	if rec.Cycles == 0 || rec.Passes == 0 {
		t.Errorf("sibling record looks empty: %+v", rec)
	}
}

// TestPanicIsolationParallel: the same guarantee when passes fan out across
// cloned devices — a panic on a clone goroutine must not escape.
func TestPanicIsolationParallel(t *testing.T) {
	d := testDevice()
	const n = 1024
	buf := d.Alloc(n * 4)
	d.Storage.WriteU32Slice(buf, make([]uint32, n))
	s, err := NewSession(d, fullStallRequest(), ModeSMPC)
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(4)

	if _, err := s.Profile(launchWild()); !errors.Is(err, ErrKernelPanic) {
		t.Fatalf("parallel panicking kernel = %v, want ErrKernelPanic", err)
	}
	if _, err := s.Profile(launchInc(d, buf, n)); err != nil {
		t.Fatalf("sibling kernel after parallel panic: %v", err)
	}
}

// TestProfileCtxCancellationMidPass: cancellation during a replay pass must
// return promptly with a *KernelError wrapping context.Canceled and leave
// the device reusable.
func TestProfileCtxCancellationMidPass(t *testing.T) {
	d := testDevice()
	const n = 64 * 1024
	buf := d.Alloc(n * 4)
	d.Storage.WriteU32Slice(buf, make([]uint32, n))
	s, err := NewSession(d, fullStallRequest(), ModeSMPC)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.ProfileCtx(ctx, launchInc(d, buf, n))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled ProfileCtx = %v, want context.Canceled", err)
		}
		var ke *KernelError
		if !errors.As(err, &ke) {
			t.Fatalf("cancellation error %v is not a *KernelError", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled ProfileCtx did not return promptly")
	}
}

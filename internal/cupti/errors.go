package cupti

import "fmt"

// KernelError is the structured failure of one kernel invocation under
// profiling: which kernel, which replay pass, and the underlying cause. It is
// re-exported by the root package so callers can errors.As on it regardless
// of how many wrapping layers (workloads, profiler) the error crossed.
type KernelError struct {
	// Kernel is the failing kernel's name.
	Kernel string
	// Pass is the replay pass index (0-based) that failed. It is -1 when the
	// failure was not tied to a specific pass (e.g. a skipped-sample native
	// run under the §VII sampling mitigation).
	Pass int
	// Err is the underlying cause.
	Err error
}

// Error implements error, keeping the historical "cupti: pass i of k" shape.
func (e *KernelError) Error() string {
	if e.Pass < 0 {
		return fmt.Sprintf("cupti: kernel %s: %v", e.Kernel, e.Err)
	}
	return fmt.Sprintf("cupti: pass %d of %s: %v", e.Pass, e.Kernel, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *KernelError) Unwrap() error { return e.Err }

package cupti

import (
	"context"
	"errors"
	"fmt"

	"gputopdown/internal/kernel"
	"gputopdown/internal/sim"
)

// ErrKernelPanic marks a kernel invocation whose simulation panicked (wild
// memory access, unhandled opcode, resource-accounting bug). The panic is
// confined to the one invocation: the device is reset to idle and the
// application's remaining kernels keep profiling. Test with
// errors.Is(err, ErrKernelPanic); the enclosing *KernelError names the
// kernel and pass.
var ErrKernelPanic = errors.New("kernel panicked")

// safeLaunch runs one launch under ctx with per-kernel panic isolation: a
// panic anywhere inside the simulator is recovered, the device's SMs are
// rebuilt to idle (global/constant memory keep the panicked kernel's partial
// writes — deterministically, as the panic point is reproducible), and the
// failure is reported as an error wrapping ErrKernelPanic.
func safeLaunch(ctx context.Context, dev *sim.Device, l *kernel.Launch) (res *sim.RunResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			dev.ResetSMs()
			err = fmt.Errorf("%w: %v", ErrKernelPanic, r)
		}
	}()
	return dev.LaunchCtx(ctx, l)
}

// KernelError is the structured failure of one kernel invocation under
// profiling: which kernel, which replay pass, and the underlying cause. It is
// re-exported by the root package so callers can errors.As on it regardless
// of how many wrapping layers (workloads, profiler) the error crossed.
type KernelError struct {
	// Kernel is the failing kernel's name.
	Kernel string
	// Pass is the replay pass index (0-based) that failed. It is -1 when the
	// failure was not tied to a specific pass (e.g. a skipped-sample native
	// run under the §VII sampling mitigation).
	Pass int
	// Err is the underlying cause.
	Err error
}

// Error implements error, keeping the historical "cupti: pass i of k" shape.
func (e *KernelError) Error() string {
	if e.Pass < 0 {
		return fmt.Sprintf("cupti: kernel %s: %v", e.Kernel, e.Err)
	}
	return fmt.Sprintf("cupti: pass %d of %s: %v", e.Pass, e.Kernel, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *KernelError) Unwrap() error { return e.Err }

package cupti

import (
	"strings"
	"testing"

	"gputopdown/internal/gpu"
	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
	"gputopdown/internal/obs"
	"gputopdown/internal/pmu"
	"gputopdown/internal/sim"
	"gputopdown/internal/sm"
)

func testDevice() *sim.Device {
	return sim.NewDevice(gpu.QuadroRTX4000().WithSMs(2))
}

// incKernel increments every element of a buffer — memory-mutating, so it
// exposes broken replay isolation immediately.
func incKernel() *kernel.Program {
	b := kernel.NewBuilder("inc")
	buf := b.Param(0)
	gid := b.GlobalIDX()
	addr := b.IMad(gid, b.MovImm(4), buf)
	v := b.Ldg(addr, 0, 4)
	b.Stg(addr, b.IAddImm(v, 1), 0, 4)
	b.Exit()
	return b.MustBuild()
}

func fullStallRequest() []pmu.CounterID {
	req := []pmu.CounterID{
		pmu.CtrActiveCycles, pmu.CtrActiveWarpCycles, pmu.CtrInstExecuted,
		pmu.CtrInstIssued, pmu.CtrThreadInstExecuted,
	}
	for st := sm.StateNotSelected; st < sm.NumWarpStates; st++ {
		req = append(req, pmu.StallCounter(st))
	}
	return req
}

func launchInc(d *sim.Device, buf uint64, n int) *kernel.Launch {
	return &kernel.Launch{
		Program: incKernel(),
		Grid:    kernel.Dim3{X: n / 128},
		Block:   kernel.Dim3{X: 128},
		Params:  []uint64{buf},
	}
}

func TestReplayPreservesMemorySemantics(t *testing.T) {
	d := testDevice()
	const n = 1024
	buf := d.Alloc(n * 4)
	d.Storage.WriteU32Slice(buf, make([]uint32, n))

	s, err := NewSession(d, fullStallRequest(), ModeSMPC)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPasses() < 2 {
		t.Fatalf("full stall request needs multiple passes, got %d", s.NumPasses())
	}
	rec, err := s.Profile(launchInc(d, buf, n))
	if err != nil {
		t.Fatal(err)
	}
	// Despite N passes, the kernel must appear to have run exactly once.
	vals := d.Storage.ReadU32Slice(buf, n)
	for i, v := range vals {
		if v != 1 {
			t.Fatalf("buf[%d] = %d after profiled run, want 1 (replay leaked)", i, v)
		}
	}
	if rec.Passes != s.NumPasses() {
		t.Errorf("record passes %d != schedule %d", rec.Passes, s.NumPasses())
	}
}

func TestMergedValuesMatchSinglePassTruth(t *testing.T) {
	// Profile with the multi-pass session, then compare against a direct
	// single run with full observability: determinism demands equality.
	const n = 2048
	d1 := testDevice()
	buf1 := d1.Alloc(n * 4)
	d1.Storage.WriteU32Slice(buf1, make([]uint32, n))
	s, _ := NewSession(d1, fullStallRequest(), ModeSMPC)
	rec, err := s.Profile(launchInc(d1, buf1, n))
	if err != nil {
		t.Fatal(err)
	}

	d2 := testDevice()
	buf2 := d2.Alloc(n * 4)
	d2.Storage.WriteU32Slice(buf2, make([]uint32, n))
	d2.FlushCaches()
	res := d2.MustLaunch(launchInc(d2, buf2, n))

	for _, id := range fullStallRequest() {
		want := pmu.Read(&res.Counters, id)
		if got := rec.Values[id]; got != want {
			t.Errorf("%s: merged %d != truth %d", pmu.Name(id), got, want)
		}
	}
}

func TestInvocationIndexing(t *testing.T) {
	d := testDevice()
	const n = 256
	buf := d.Alloc(n * 4)
	d.Storage.WriteU32Slice(buf, make([]uint32, n))
	s, _ := NewSession(d, []pmu.CounterID{pmu.CtrInstExecuted}, ModeSMPC)
	l := launchInc(d, buf, n)
	for i := 0; i < 3; i++ {
		rec, err := s.Profile(l)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Invocation != i {
			t.Errorf("invocation %d recorded as %d", i, rec.Invocation)
		}
	}
	if got := len(s.RecordsFor("inc")); got != 3 {
		t.Errorf("RecordsFor returned %d records", got)
	}
	if got := len(s.RecordsFor("nope")); got != 0 {
		t.Errorf("RecordsFor(bogus) returned %d records", got)
	}
	// Memory reflects three logical executions.
	if v := uint32(d.Storage.Read(buf, 4)); v != 3 {
		t.Errorf("buf[0] = %d after 3 profiled runs, want 3", v)
	}
}

func TestOverheadGrowsWithPasses(t *testing.T) {
	d := testDevice()
	const n = 4096
	buf := d.Alloc(n * 4)
	d.Storage.WriteU32Slice(buf, make([]uint32, n))
	s, _ := NewSession(d, fullStallRequest(), ModeSMPC)
	if _, err := s.Profile(launchInc(d, buf, n)); err != nil {
		t.Fatal(err)
	}
	native, profiled := s.Overhead()
	if native == 0 {
		t.Fatal("no native cycles recorded")
	}
	ratio := float64(profiled) / float64(native)
	if ratio < float64(s.NumPasses()) {
		t.Errorf("overhead ratio %.1f below pass count %d", ratio, s.NumPasses())
	}
	s.Reset()
	if n2, p2 := s.Overhead(); n2 != 0 || p2 != 0 {
		t.Error("Reset did not clear overhead")
	}
	if len(s.Records()) != 0 {
		t.Error("Reset did not clear records")
	}
}

func TestHWPMSamplingScales(t *testing.T) {
	d := testDevice()
	const n = 4096
	buf := d.Alloc(n * 4)
	d.Storage.WriteU32Slice(buf, make([]uint32, n))
	s, _ := NewSession(d, []pmu.CounterID{pmu.CtrInstExecuted, pmu.CtrActiveCycles}, ModeHWPM)
	rec, err := s.Profile(launchInc(d, buf, n))
	if err != nil {
		t.Fatal(err)
	}
	if s.Mode().String() != "HWPM" {
		t.Errorf("mode = %s", s.Mode())
	}
	// The sampled-and-scaled estimate should be within 2x of the truth for a
	// balanced kernel.
	d2 := testDevice()
	buf2 := d2.Alloc(n * 4)
	d2.Storage.WriteU32Slice(buf2, make([]uint32, n))
	d2.FlushCaches()
	truth := d2.MustLaunch(launchInc(d2, buf2, n)).Counters.InstExecuted
	got := rec.Values[pmu.CtrInstExecuted]
	if got < truth/2 || got > truth*2 {
		t.Errorf("HWPM estimate %d vs truth %d", got, truth)
	}
}

func TestSessionRejectsBadRequest(t *testing.T) {
	d := testDevice()
	if _, err := NewSession(d, []pmu.CounterID{pmu.CounterID(60000)}, ModeSMPC); err == nil {
		t.Error("bad counter request accepted")
	}
}

func TestRunNative(t *testing.T) {
	d := testDevice()
	const n = 256
	buf := d.Alloc(n * 4)
	d.Storage.WriteU32Slice(buf, make([]uint32, n))
	res, err := RunNative(d, launchInc(d, buf, n))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Error("native run recorded no cycles")
	}
}

// A kernel with a divergent, shared-memory phase so every stall category has
// a chance to appear; verifies the state-closure invariant survives the
// profiling path.
func TestProfiledStateClosure(t *testing.T) {
	b := kernel.NewBuilder("mixed")
	sh := b.DeclShared(1024)
	buf := b.Param(0)
	gid := b.GlobalIDX()
	tid := b.S2R(isa.SRTidX)
	addr := b.IMad(gid, b.MovImm(4), buf)
	v := b.Ldg(addr, 0, 4)
	sa := b.IMad(tid, b.MovImm(4), b.MovImm(sh))
	b.Sts(sa, v, 0, 4)
	b.Bar()
	p := b.ISetpImm(isa.CmpEQ, b.AndImm(tid, 1), 0)
	b.If(p)
	w := b.Lds(sa, 0, 4)
	b.Stg(addr, b.IAddImm(w, 5), 0, 4)
	b.EndIf()
	b.Exit()
	prog := b.MustBuild()

	d := testDevice()
	const n = 1024
	buf0 := d.Alloc(n * 4)
	d.Storage.WriteU32Slice(buf0, make([]uint32, n))
	s, _ := NewSession(d, fullStallRequest(), ModeSMPC)
	rec, err := s.Profile(&kernel.Launch{
		Program: prog,
		Grid:    kernel.Dim3{X: 4},
		Block:   kernel.Dim3{X: 256},
		Params:  []uint64{buf0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sum every stalled/not-selected state from the profile; "selected"
	// warp-cycles equal inst_issued.
	stateSum := rec.Values[pmu.CtrInstIssued]
	for st := sm.StateNotSelected; st < sm.NumWarpStates; st++ {
		stateSum += rec.Values[pmu.StallCounter(st)]
	}
	if stateSum != rec.Values[pmu.CtrActiveWarpCycles] {
		t.Errorf("profiled state closure violated: %d != %d",
			stateSum, rec.Values[pmu.CtrActiveWarpCycles])
	}
}

func TestSamplingReducesOverhead(t *testing.T) {
	run := func(every int) (native, profiled uint64, sampled, skipped int) {
		d := testDevice()
		const n = 1024
		buf := d.Alloc(n * 4)
		d.Storage.WriteU32Slice(buf, make([]uint32, n))
		s, err := NewSession(d, fullStallRequest(), ModeSMPC)
		if err != nil {
			t.Fatal(err)
		}
		s.SetSampling(every)
		if s.SampleEvery() != max(1, every) {
			t.Fatalf("SampleEvery = %d", s.SampleEvery())
		}
		l := launchInc(d, buf, n)
		for i := 0; i < 12; i++ {
			rec, err := s.Profile(l)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Sampled {
				sampled++
			} else {
				skipped++
				if rec.Passes != 1 {
					t.Errorf("skipped invocation used %d passes", rec.Passes)
				}
				if rec.Values == nil {
					t.Error("skipped invocation has no inherited values")
				}
			}
		}
		// Memory semantics must still be one increment per logical run.
		if v := uint32(d.Storage.Read(buf, 4)); v != 12 {
			t.Errorf("buf[0] = %d after 12 profiled runs, want 12", v)
		}
		native, profiled = s.Overhead()
		return
	}
	nFull, pFull, sFull, _ := run(1)
	nSamp, pSamp, sSamp, skSamp := run(4)
	if sFull != 12 {
		t.Errorf("full profiling sampled %d of 12", sFull)
	}
	if sSamp != 3 || skSamp != 9 {
		t.Errorf("1-in-4 sampling: %d sampled / %d skipped", sSamp, skSamp)
	}
	ovhFull := float64(pFull) / float64(nFull)
	ovhSamp := float64(pSamp) / float64(nSamp)
	if ovhSamp >= ovhFull/2 {
		t.Errorf("sampling overhead %.1fx not much below full %.1fx", ovhSamp, ovhFull)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestSessionObserverSpansAndMetrics: a profiled invocation must emit one
// profile span, one span and one flush per pass, and self-metrics that agree
// exactly with the session's own Overhead() accounting.
func TestSessionObserverSpansAndMetrics(t *testing.T) {
	d := testDevice()
	const n = 1024
	buf := d.Alloc(n * 4)
	d.Storage.WriteU32Slice(buf, make([]uint32, n))

	s, err := NewSession(d, fullStallRequest(), ModeSMPC)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	s.SetObserver(tr, reg)

	if _, err := s.Profile(launchInc(d, buf, n)); err != nil {
		t.Fatal(err)
	}

	var profileSpans, passSpans, flushSpans, launchSpans int
	for _, e := range tr.Events() {
		if e.Ph != "X" {
			continue
		}
		switch {
		case strings.HasPrefix(e.Name, "profile "):
			profileSpans++
		case strings.HasPrefix(e.Name, "pass "):
			passSpans++
		case e.Name == "flush":
			flushSpans++
		case strings.HasPrefix(e.Name, "launch "):
			launchSpans++
		}
	}
	passes := s.NumPasses()
	if profileSpans != 1 {
		t.Errorf("profile spans = %d, want 1", profileSpans)
	}
	if passSpans != passes {
		t.Errorf("pass spans = %d, want %d", passSpans, passes)
	}
	if flushSpans != passes {
		t.Errorf("flush spans = %d, want %d", flushSpans, passes)
	}
	if launchSpans != passes {
		t.Errorf("launch spans = %d, want %d", launchSpans, passes)
	}

	native, profiled := s.Overhead()
	if got := reg.Counter("profiler_native_cycles_total", "", nil).Value(); got != float64(native) {
		t.Errorf("profiler_native_cycles_total = %v, want %d", got, native)
	}
	if got := reg.Counter("profiler_profiled_cycles_total", "", nil).Value(); got != float64(profiled) {
		t.Errorf("profiler_profiled_cycles_total = %v, want %d", got, profiled)
	}
	if got := reg.Counter("profiler_passes_total", "", nil).Value(); got != float64(passes) {
		t.Errorf("profiler_passes_total = %v, want %d", got, passes)
	}
	wantRatio := float64(profiled) / float64(native)
	if got := reg.Gauge("profiler_replay_overhead_ratio", "", nil).Value(); got != wantRatio {
		t.Errorf("profiler_replay_overhead_ratio = %v, want %v", got, wantRatio)
	}
	if got := reg.Histogram("profiler_pass_wall_seconds", "", nil, nil).Count(); got != uint64(passes) {
		t.Errorf("pass wall histogram count = %d, want %d", got, passes)
	}
}

// TestSessionObserverSampling: skipped invocations must count as skipped and
// emit native spans, not pass spans.
func TestSessionObserverSampling(t *testing.T) {
	d := testDevice()
	const n = 1024
	buf := d.Alloc(n * 4)
	d.Storage.WriteU32Slice(buf, make([]uint32, n))

	s, err := NewSession(d, fullStallRequest(), ModeSMPC)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSampling(2)
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	s.SetObserver(tr, reg)

	for i := 0; i < 4; i++ {
		if _, err := s.Profile(launchInc(d, buf, n)); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("profiler_kernels_profiled_total", "", nil).Value(); got != 2 {
		t.Errorf("profiled = %v, want 2", got)
	}
	if got := reg.Counter("profiler_kernels_skipped_total", "", nil).Value(); got != 2 {
		t.Errorf("skipped = %v, want 2", got)
	}
	nativeSpans := 0
	for _, e := range tr.Events() {
		if e.Ph == "X" && strings.HasPrefix(e.Name, "native ") {
			nativeSpans++
		}
	}
	if nativeSpans != 2 {
		t.Errorf("native spans = %d, want 2", nativeSpans)
	}
}

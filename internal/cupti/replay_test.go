package cupti

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"gputopdown/internal/kernel"
	"gputopdown/internal/obs"
)

// fillKernel stores a constant into every element of a buffer. It is
// idempotent: from the second invocation on, the pre-launch device state is
// byte-identical, which is what the replay result cache keys on.
func fillKernel(v int64) *kernel.Program {
	b := kernel.NewBuilder("fill")
	buf := b.Param(0)
	gid := b.GlobalIDX()
	addr := b.IMad(gid, b.MovImm(4), buf)
	b.Stg(addr, b.MovImm(v), 0, 4)
	b.Exit()
	return b.MustBuild()
}

func launchFill(buf uint64, n int) *kernel.Launch {
	return &kernel.Launch{
		Program: fillKernel(7),
		Grid:    kernel.Dim3{X: n / 128},
		Block:   kernel.Dim3{X: 128},
		Params:  []uint64{buf},
	}
}

// TestParallelReplayMatchesSequential is the tentpole contract: fanning the
// scheduled passes across cloned devices must leave every reported bit —
// counter values, cycles, SMs used, memory end-state, overhead accounting —
// identical to the historical sequential engine.
func TestParallelReplayMatchesSequential(t *testing.T) {
	const n = 1024
	run := func(workers int) (*KernelRecord, []uint32, uint64, uint64) {
		d := testDevice()
		buf := d.Alloc(n * 4)
		d.Storage.WriteU32Slice(buf, make([]uint32, n))
		s, err := NewSession(d, fullStallRequest(), ModeSMPC)
		if err != nil {
			t.Fatal(err)
		}
		s.SetWorkers(workers)
		var rec *KernelRecord
		for i := 0; i < 3; i++ { // repeated mutating invocations
			rec, err = s.Profile(launchInc(d, buf, n))
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
		}
		native, profiled := s.Overhead()
		return rec, d.Storage.ReadU32Slice(buf, n), native, profiled
	}

	seqRec, seqMem, seqNat, seqProf := run(1)
	for _, w := range []int{2, 4, 16} {
		rec, mem, nat, prof := run(w)
		if !reflect.DeepEqual(rec, seqRec) {
			t.Errorf("workers=%d: record diverged:\n  seq: %+v\n  par: %+v", w, seqRec, rec)
		}
		if !reflect.DeepEqual(mem, seqMem) {
			t.Errorf("workers=%d: memory end-state diverged", w)
		}
		if nat != seqNat || prof != seqProf {
			t.Errorf("workers=%d: overhead (%d,%d) != sequential (%d,%d)", w, nat, prof, seqNat, seqProf)
		}
	}
}

// TestParallelReplayCloneMetrics checks that the concurrent engine actually
// ran passes on clones (it is easy to silently fall back to sequential).
func TestParallelReplayCloneMetrics(t *testing.T) {
	const n = 512
	d := testDevice()
	buf := d.Alloc(n * 4)
	d.Storage.WriteU32Slice(buf, make([]uint32, n))
	s, err := NewSession(d, fullStallRequest(), ModeSMPC)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.SetObserver(nil, reg)
	s.SetWorkers(4)
	if _, err := s.Profile(launchInc(d, buf, n)); err != nil {
		t.Fatal(err)
	}
	if s.NumPasses() < 2 {
		t.Fatalf("need a multi-pass schedule, got %d", s.NumPasses())
	}
	par := reg.Counter("profiler_parallel_passes_total", "", nil).Value()
	if par == 0 {
		t.Fatal("no pass ran on a cloned device under workers=4")
	}
	if got := reg.Gauge("profiler_replay_workers", "", nil).Value(); got != 4 {
		t.Fatalf("workers gauge = %v, want 4", got)
	}
}

// TestReplayCacheHitsAreBitIdentical profiles an idempotent kernel with and
// without the cache: the cached session must hit from the third invocation
// on (the second is the first with byte-identical pre-state) and report
// exactly the same records and overhead totals as the uncached one.
func TestReplayCacheHitsAreBitIdentical(t *testing.T) {
	const n = 512
	run := func(cache *ReplayCache) (*Session, []uint32) {
		d := testDevice()
		buf := d.Alloc(n * 4)
		d.Storage.WriteU32Slice(buf, make([]uint32, n))
		s, err := NewSession(d, fullStallRequest(), ModeSMPC)
		if err != nil {
			t.Fatal(err)
		}
		s.SetCache(cache)
		for i := 0; i < 5; i++ {
			if _, err := s.Profile(launchFill(buf, n)); err != nil {
				t.Fatal(err)
			}
		}
		return s, d.Storage.ReadU32Slice(buf, n)
	}

	plain, plainMem := run(nil)
	cache := NewReplayCache(0)
	cached, cachedMem := run(cache)

	hits, misses := cache.Stats()
	// Invocation 0 runs on zeroed memory (miss), invocation 1 on the filled
	// buffer (miss, new key), invocations 2..4 repeat invocation 1's bytes.
	if hits != 3 || misses != 2 {
		t.Fatalf("cache stats = %d hits / %d misses, want 3/2", hits, misses)
	}
	if !reflect.DeepEqual(cachedMem, plainMem) {
		t.Fatal("cached run left different memory state")
	}
	pn, pp := plain.Overhead()
	cn, cp := cached.Overhead()
	if pn != cn || pp != cp {
		t.Fatalf("cached overhead (%d,%d) != uncached (%d,%d)", cn, cp, pn, pp)
	}
	pr, cr := plain.Records(), cached.Records()
	if len(pr) != len(cr) {
		t.Fatalf("record counts differ: %d vs %d", len(pr), len(cr))
	}
	for i := range pr {
		cri := cr[i]
		wantCached := i >= 2
		if cri.Cached != wantCached {
			t.Errorf("record %d: Cached = %v, want %v", i, cri.Cached, wantCached)
		}
		cri.Cached = pr[i].Cached // identical except provenance
		if !reflect.DeepEqual(pr[i], cri) {
			t.Errorf("record %d diverged:\n  plain:  %+v\n  cached: %+v", i, pr[i], cr[i])
		}
	}
}

// TestReplayCacheKeyedOnMemory: a mutating kernel must never hit the cache
// across invocations, because each invocation starts from different bytes.
func TestReplayCacheKeyedOnMemory(t *testing.T) {
	const n = 256
	d := testDevice()
	buf := d.Alloc(n * 4)
	d.Storage.WriteU32Slice(buf, make([]uint32, n))
	s, err := NewSession(d, fullStallRequest(), ModeSMPC)
	if err != nil {
		t.Fatal(err)
	}
	s.SetCache(NewReplayCache(0))
	for i := 0; i < 4; i++ {
		if _, err := s.Profile(launchInc(d, buf, n)); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := s.Cache().Stats()
	if hits != 0 || misses != 4 {
		t.Fatalf("mutating kernel: stats = %d hits / %d misses, want 0/4", hits, misses)
	}
	// And memory semantics survived the cache machinery.
	for i, v := range d.Storage.ReadU32Slice(buf, n) {
		if v != 4 {
			t.Fatalf("buf[%d] = %d after 4 cached-miss runs, want 4", i, v)
		}
	}
}

// TestReplayCacheEviction bounds the cache FIFO.
func TestReplayCacheEviction(t *testing.T) {
	c := NewReplayCache(2)
	for i := 0; i < 5; i++ {
		c.put(replayKey{config: uint64(i)}, &replayEntry{})
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want bound 2", c.Len())
	}
	if _, ok := c.get(replayKey{config: 4}); !ok {
		t.Fatal("newest entry evicted")
	}
	if _, ok := c.get(replayKey{config: 0}); ok {
		t.Fatal("oldest entry not evicted")
	}
}

// TestKernelErrorStructure: profiling failures surface as *KernelError with
// the kernel name and pass index, reachable through errors.As.
func TestKernelErrorStructure(t *testing.T) {
	d := testDevice()
	s, err := NewSession(d, fullStallRequest(), ModeSMPC)
	if err != nil {
		t.Fatal(err)
	}
	bad := launchInc(d, d.Alloc(1024*4), 1024)
	bad.Block = kernel.Dim3{X: 4 * kernel.MaxBlockThreads} // rejected by launch validation
	_, err = s.Profile(bad)
	if err == nil {
		t.Fatal("invalid launch profiled without error")
	}
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("error %v is not a *KernelError", err)
	}
	if ke.Kernel != "inc" || ke.Pass != 0 {
		t.Fatalf("KernelError = {Kernel:%q Pass:%d}, want {inc 0}", ke.Kernel, ke.Pass)
	}
}

// TestProfileCtxCancellation: a cancelled context stops the replay between
// passes and surfaces ctx.Err through the KernelError chain.
func TestProfileCtxCancellation(t *testing.T) {
	d := testDevice()
	const n = 512
	buf := d.Alloc(n * 4)
	d.Storage.WriteU32Slice(buf, make([]uint32, n))
	s, err := NewSession(d, fullStallRequest(), ModeSMPC)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = s.ProfileCtx(ctx, launchInc(d, buf, n))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled profile returned %v, want context.Canceled", err)
	}
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("cancellation not wrapped in KernelError: %v", err)
	}
	if len(s.Records()) != 0 {
		t.Fatal("cancelled invocation left a record")
	}
}

// TestSetObserverTracerOnly is the regression test for the nil-registry
// hazard: attaching a tracer without a registry must neither panic at
// SetObserver time nor during profiling, and spans must still be recorded.
func TestSetObserverTracerOnly(t *testing.T) {
	d := testDevice()
	const n = 256
	buf := d.Alloc(n * 4)
	d.Storage.WriteU32Slice(buf, make([]uint32, n))
	s, err := NewSession(d, fullStallRequest(), ModeSMPC)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	s.SetObserver(tr, nil) // must not create handles on a nil registry
	s.SetWorkers(2)        // SetWorkers touches the workers gauge
	if _, err := s.Profile(launchInc(d, buf, n)); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("tracer-only observer recorded no spans")
	}
	// Flipping back to fully disabled must also be safe.
	s.SetObserver(nil, nil)
	if _, err := s.Profile(launchInc(d, buf, n)); err != nil {
		t.Fatal(err)
	}
}

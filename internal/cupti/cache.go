// Replay result cache: deterministic memoization of byte-identical kernel
// invocations.
//
// The device simulator is deterministic (internal/sim), so a kernel
// invocation is fully determined by (program fingerprint, launch
// configuration, device-memory snapshot hash, constant-bank hash) together
// with the session's collection mode and pass schedule identity. When the
// same key recurs — an autotuning harness replays the same configuration
// with identical inputs tens of times × 8 passes (workloads.GemmAutotune
// models this) — the session can skip
// re-simulation entirely: it replays the recorded counter values, re-applies
// the recorded memory effects, and still charges the full simulated
// replay+flush cost to the Fig. 13 overhead accounting, so cached and
// uncached sessions report bit-identical results.
package cupti

import (
	"sync"

	"gputopdown/internal/kernel"
	"gputopdown/internal/pmu"
)

// replayKey identifies a byte-identical kernel invocation under a fixed
// collection mode and pass schedule.
type replayKey struct {
	// config folds the program fingerprint, grid/block geometry, dynamic
	// shared memory and parameter values (kernel.Launch.ConfigHash).
	config uint64
	// mem hashes the allocation watermark plus all allocated device memory.
	mem uint64
	// konst hashes the constant bank (applications may rewrite __constant__
	// data between launches).
	konst uint64
	// mode and sched pin the collection mechanism and the pass identity the
	// cached merged values were produced under.
	mode  Mode
	sched uint64
}

// replayEntry is one memoized invocation: the merged counter readings, the
// native duration, and the memory effects of running the kernel once.
type replayEntry struct {
	values  pmu.Values
	cycles  uint64
	smsUsed int
	passes  int
	// post is the device-memory snapshot after the kernel ran (same
	// watermark as the pre-launch snapshot the key hashed).
	post []byte
}

// DefaultReplayCacheEntries bounds the cache when NewReplayCache is given 0.
const DefaultReplayCacheEntries = 1024

// ReplayCache memoizes profiled kernel invocations. It is safe for
// concurrent use by multiple sessions (ProfileApps fans apps across
// goroutines); determinism is preserved because every entry is a pure
// function of its key, so it does not matter which session populates it.
// Eviction is FIFO with a fixed entry bound.
type ReplayCache struct {
	mu      sync.Mutex
	max     int
	entries map[replayKey]*replayEntry
	order   []replayKey
	hits    uint64
	misses  uint64
}

// NewReplayCache builds a cache bounded to maxEntries invocations
// (0 means DefaultReplayCacheEntries).
func NewReplayCache(maxEntries int) *ReplayCache {
	if maxEntries <= 0 {
		maxEntries = DefaultReplayCacheEntries
	}
	return &ReplayCache{max: maxEntries, entries: map[replayKey]*replayEntry{}}
}

// get returns the entry for key, counting the hit or miss.
func (c *ReplayCache) get(key replayKey) (*replayEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

// put stores an entry, evicting the oldest when full. Racing puts for the
// same key are idempotent by determinism; first writer wins.
func (c *ReplayCache) put(key replayKey, e *replayEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	for len(c.entries) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = e
	c.order = append(c.order, key)
}

// Len returns the number of cached invocations.
func (c *ReplayCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the lifetime hit and miss counts.
func (c *ReplayCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// keyFor derives the cache key of a launch against the session's current
// device state. snap must be the current pre-launch memory snapshot.
func (s *Session) keyFor(l *kernel.Launch, memHash uint64) replayKey {
	return replayKey{
		config: l.ConfigHash(),
		mem:    memHash,
		konst:  s.dev.Const.Hash(),
		mode:   s.mode,
		sched:  s.schedFP,
	}
}

// Package cupti is the profiling middleware between the PMU and the
// analyzer, mirroring NVIDIA's CUDA Profiling Tools Interface: a Session
// schedules a counter request onto passes (internal/pmu), replays every
// kernel launch once per pass with cache flushes and memory save/restore in
// between, and merges the per-pass readings into one record per kernel
// invocation.
//
// The replay machinery is also what makes profiling expensive: a level-3
// Top-Down counter set needs 8 passes, and each pass pays a flush whose cost
// grows with the working set — the ~13x overhead the paper measures in
// Fig. 13 (§V.E).
package cupti

import (
	"fmt"
	"time"

	"gputopdown/internal/kernel"
	"gputopdown/internal/obs"
	"gputopdown/internal/pmu"
	"gputopdown/internal/sim"
	"gputopdown/internal/sm"
)

// Mode selects the collection mechanism (paper §II.A).
type Mode uint8

const (
	// ModeSMPC collects SM counters from every SM on the device.
	ModeSMPC Mode = iota
	// ModeHWPM can observe any unit but only a subgroup of the hardware; we
	// model it as sampling a single SM and extrapolating.
	ModeHWPM
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeHWPM {
		return "HWPM"
	}
	return "SMPC"
}

// passSetupCycles is the fixed driver/PMU reconfiguration cost per pass.
const passSetupCycles = 2000

// KernelRecord is the profile of one kernel invocation.
type KernelRecord struct {
	Kernel string
	// Invocation is the per-kernel-name invocation index (0-based).
	Invocation int
	// Cycles is the kernel's native duration (identical across passes, by
	// determinism).
	Cycles uint64
	// Passes is how many replays were needed (1 for skipped samples).
	Passes int
	// Values holds the merged counter readings (device aggregate for SMPC,
	// single-SM sample scaled to the device for HWPM). For an unsampled
	// invocation under SetSampling these are the most recent sampled values.
	Values pmu.Values
	// Sampled is false when this invocation ran natively under sampling and
	// inherited another invocation's values.
	Sampled bool
	// SMsUsed is how many SMs participated.
	SMsUsed int
}

// Session profiles kernel launches against a fixed counter request.
type Session struct {
	dev   *sim.Device
	sched *pmu.Schedule
	mode  Mode

	// sampleEvery > 1 enables the paper's §VII mitigation: only every n-th
	// invocation of a kernel is fully replayed; the rest run natively once
	// and inherit the most recent sampled counter values.
	sampleEvery int
	lastSampled map[string]pmu.Values

	records     []KernelRecord
	invocations map[string]int

	// Overhead accounting (simulated device cycles).
	nativeCycles   uint64
	profiledCycles uint64

	// Observability (nil/disabled by default; see SetObserver). Handles are
	// created once so the replay hot path is allocation-free when disabled.
	tracer     *obs.Tracer
	obsOn      bool
	mPasses    *obs.Counter
	mFlushes   *obs.Counter
	mFlushCyc  *obs.Counter
	mNativeCyc *obs.Counter
	mProfCyc   *obs.Counter
	mSampled   *obs.Counter
	mSkipped   *obs.Counter
	mPassWall  *obs.Counter
	hPassWall  *obs.Histogram
	gOverhead  *obs.Gauge
	gPassesPK  *obs.Gauge
}

// NewSession builds a profiling session for the requested counters.
func NewSession(dev *sim.Device, request []pmu.CounterID, mode Mode) (*Session, error) {
	sched, err := pmu.BuildSchedule(request)
	if err != nil {
		return nil, err
	}
	return &Session{
		dev:         dev,
		sched:       sched,
		mode:        mode,
		sampleEvery: 1,
		lastSampled: map[string]pmu.Values{},
		invocations: map[string]int{},
	}, nil
}

// SetObserver attaches an execution tracer and metrics registry to the
// session and, through it, to the underlying device. Either may be nil.
// The session emits spans for each profiled kernel, each replay pass and
// each cache flush, and maintains the profiler self-metrics — including the
// live replay_overhead_ratio that reproduces the paper's Fig. 13 accounting
// from instrumentation rather than post-hoc arithmetic.
func (s *Session) SetObserver(tr *obs.Tracer, reg *obs.Registry) {
	s.tracer = tr
	s.obsOn = tr != nil || reg != nil
	s.dev.SetObserver(tr, reg)
	s.mPasses = reg.Counter("profiler_passes_total",
		"Replay passes executed across all profiled kernel invocations.", nil)
	s.mFlushes = reg.Counter("profiler_cache_flushes_total",
		"Device cache flushes performed between replay passes.", nil)
	s.mFlushCyc = reg.Counter("profiler_flush_cycles_total",
		"Simulated cycles charged to inter-pass cache/memory flushes.", nil)
	s.mNativeCyc = reg.Counter("profiler_native_cycles_total",
		"Simulated cycles the application would take without profiling.", nil)
	s.mProfCyc = reg.Counter("profiler_profiled_cycles_total",
		"Simulated cycles including every replay pass and flush.", nil)
	s.mSampled = reg.Counter("profiler_kernels_profiled_total",
		"Kernel invocations fully profiled via multi-pass replay.", nil)
	s.mSkipped = reg.Counter("profiler_kernels_skipped_total",
		"Kernel invocations run natively under sampling (values inherited).", nil)
	s.mPassWall = reg.Counter("profiler_pass_wall_seconds_total",
		"Host wall-clock seconds spent executing replay passes.", nil)
	s.hPassWall = reg.Histogram("profiler_pass_wall_seconds",
		"Wall-clock duration of individual replay passes.", nil, nil)
	s.gOverhead = reg.Gauge("profiler_replay_overhead_ratio",
		"Live profiled/native simulated-cycle ratio (the paper's Fig. 13).", nil)
	s.gPassesPK = reg.Gauge("profiler_passes_per_kernel",
		"Replay passes the scheduled counter set requires per kernel.", nil)
	s.gPassesPK.Set(float64(s.sched.NumPasses()))
}

// SetSampling makes the session fully profile only every n-th invocation of
// each kernel; the others execute once, natively, and reuse the most recent
// sampled values. This is the overhead mitigation the paper proposes for
// applications with very large kernel-invocation counts (§V.E, §VII). n < 1
// is treated as 1 (profile everything).
func (s *Session) SetSampling(n int) {
	if n < 1 {
		n = 1
	}
	s.sampleEvery = n
}

// SampleEvery returns the configured sampling interval.
func (s *Session) SampleEvery() int { return s.sampleEvery }

// NumPasses returns the replay count per kernel.
func (s *Session) NumPasses() int { return s.sched.NumPasses() }

// Mode returns the collection mode.
func (s *Session) Mode() Mode { return s.mode }

// flushCycles models the per-pass cache/memory flush cost: the dirty
// fraction of the working set is written back through DRAM bandwidth, plus a
// fixed reconfiguration cost. Large working sets make profiling
// disproportionately expensive (paper §V.E).
func (s *Session) flushCycles() uint64 {
	allocated := s.dev.Storage.Mark() // watermark ~ working set
	return uint64(float64(allocated)/(4*s.dev.Spec.DRAMBytesPerCycle)) + passSetupCycles
}

// Profile replays the launch once per scheduled pass and returns the merged
// record. Device memory is saved before the first pass and restored before
// each subsequent one, so every pass observes identical initial state; the
// final pass's memory effects are kept (the kernel "ran once" from the
// application's point of view).
func (s *Session) Profile(l *kernel.Launch) (*KernelRecord, error) {
	if s.sampleEvery > 1 {
		if inv := s.invocations[l.Program.Name]; inv%s.sampleEvery != 0 {
			return s.profileSkipped(l, inv)
		}
	}
	values := pmu.Values{}
	var snap []byte
	passes := s.sched.Passes
	rec := &KernelRecord{
		Kernel:  l.Program.Name,
		Passes:  len(passes),
		Sampled: true,
	}
	profStart := s.tracer.Now()
	if len(passes) > 1 {
		snap = s.dev.Storage.Snapshot()
	}
	for i, pass := range passes {
		var passWall time.Time
		passStart := s.tracer.Now()
		if s.obsOn {
			passWall = time.Now()
		}
		if i > 0 {
			s.dev.Storage.Restore(snap)
		}
		flushStart := s.tracer.Now()
		s.dev.FlushCaches()
		fc := s.flushCycles()
		if s.obsOn {
			s.mFlushes.Inc()
			s.mFlushCyc.Add(float64(fc))
			if s.tracer != nil {
				s.tracer.Complete(obs.PIDProfiler, 1, "cupti", "flush",
					flushStart, map[string]any{"flush_cycles": fc})
			}
		}
		res, err := s.dev.Launch(l)
		if err != nil {
			return nil, fmt.Errorf("cupti: pass %d of %s: %w", i, l.Program.Name, err)
		}
		counters := s.collect(res)
		values.Merge(pass, &counters)
		if i == 0 {
			rec.Cycles = res.Cycles
			rec.SMsUsed = res.SMsUsed
			s.nativeCycles += res.Cycles
			s.mNativeCyc.Add(float64(res.Cycles))
		}
		s.profiledCycles += res.Cycles + fc
		if s.obsOn {
			s.mProfCyc.Add(float64(res.Cycles) + float64(fc))
			s.mPasses.Inc()
			wall := time.Since(passWall).Seconds()
			s.mPassWall.Add(wall)
			s.hPassWall.Observe(wall)
			if s.tracer != nil {
				s.tracer.Complete(obs.PIDProfiler, 1, "cupti",
					fmt.Sprintf("pass %d/%d", i+1, len(passes)), passStart,
					map[string]any{"kernel": l.Program.Name, "cycles": res.Cycles})
			}
		}
	}
	rec.Values = values
	rec.Invocation = s.invocations[rec.Kernel]
	s.invocations[rec.Kernel]++
	s.lastSampled[rec.Kernel] = values
	s.records = append(s.records, *rec)
	if s.obsOn {
		s.mSampled.Inc()
		if s.nativeCycles > 0 {
			s.gOverhead.Set(float64(s.profiledCycles) / float64(s.nativeCycles))
		}
		if s.tracer != nil {
			s.tracer.Complete(obs.PIDProfiler, 1, "cupti", "profile "+rec.Kernel,
				profStart, map[string]any{
					"passes": len(passes), "invocation": rec.Invocation,
					"cycles": rec.Cycles, "mode": s.mode.String(),
				})
		}
	}
	return rec, nil
}

// profileSkipped runs an unsampled invocation once, natively, and reuses the
// kernel's most recent sampled values.
func (s *Session) profileSkipped(l *kernel.Launch, inv int) (*KernelRecord, error) {
	skipStart := s.tracer.Now()
	res, err := s.dev.Launch(l)
	if err != nil {
		return nil, fmt.Errorf("cupti: skipped invocation of %s: %w", l.Program.Name, err)
	}
	rec := &KernelRecord{
		Kernel:     l.Program.Name,
		Invocation: inv,
		Cycles:     res.Cycles,
		Passes:     1,
		Values:     s.lastSampled[l.Program.Name],
		Sampled:    false,
		SMsUsed:    res.SMsUsed,
	}
	s.invocations[rec.Kernel]++
	s.nativeCycles += res.Cycles
	s.profiledCycles += res.Cycles
	s.records = append(s.records, *rec)
	if s.obsOn {
		s.mSkipped.Inc()
		s.mNativeCyc.Add(float64(res.Cycles))
		s.mProfCyc.Add(float64(res.Cycles))
		if s.nativeCycles > 0 {
			s.gOverhead.Set(float64(s.profiledCycles) / float64(s.nativeCycles))
		}
		if s.tracer != nil {
			s.tracer.Complete(obs.PIDProfiler, 1, "cupti", "native "+rec.Kernel,
				skipStart, map[string]any{"invocation": inv, "cycles": res.Cycles})
		}
	}
	return rec, nil
}

// collect reduces a run result to one counter snapshot per the session mode.
func (s *Session) collect(res *sim.RunResult) sm.Counters {
	if s.mode == ModeSMPC || len(res.PerSM) == 0 {
		return res.Counters
	}
	// HWPM: observe the first SM that did work, scale to the device.
	var sample sm.Counters
	for i := range res.PerSM {
		if res.PerSM[i].InstExecuted > 0 {
			sample = res.PerSM[i]
			break
		}
	}
	scaled := sm.Counters{}
	for i := 0; i < res.SMsUsed; i++ {
		scaled.Add(&sample)
	}
	return scaled
}

// Records returns all kernel records in invocation order.
func (s *Session) Records() []KernelRecord { return s.records }

// RecordsFor returns the records of one kernel name, ordered by invocation.
func (s *Session) RecordsFor(name string) []KernelRecord {
	var out []KernelRecord
	for _, r := range s.records {
		if r.Kernel == name {
			out = append(out, r)
		}
	}
	return out
}

// Overhead returns (native, profiled) simulated cycle totals across every
// profiled launch; profiled/native is the paper's Fig. 13 ratio.
func (s *Session) Overhead() (native, profiled uint64) {
	return s.nativeCycles, s.profiledCycles
}

// Reset clears records and overhead accounting, keeping the schedule.
func (s *Session) Reset() {
	s.records = nil
	s.invocations = map[string]int{}
	s.nativeCycles = 0
	s.profiledCycles = 0
}

// RunNative executes a launch without any profiling machinery, for
// overhead-baseline measurements.
func RunNative(dev *sim.Device, l *kernel.Launch) (*sim.RunResult, error) {
	return dev.Launch(l)
}

// Package cupti is the profiling middleware between the PMU and the
// analyzer, mirroring NVIDIA's CUDA Profiling Tools Interface: a Session
// schedules a counter request onto passes (internal/pmu), replays every
// kernel launch once per pass with cache flushes and memory save/restore in
// between, and merges the per-pass readings into one record per kernel
// invocation.
//
// The replay machinery is also what makes profiling expensive: a level-3
// Top-Down counter set needs 8 passes, and each pass pays a flush whose cost
// grows with the working set — the ~13x overhead the paper measures in
// Fig. 13 (§V.E).
//
// Two engine features recover host wall-clock time without changing a single
// reported bit (the simulated-cycle overhead accounting stays identical):
//
//   - Concurrent replay (SetWorkers): the N scheduled passes of one launch
//     fan out across a bounded pool of cloned devices (sim.Device.Clone) and
//     are merged in deterministic pass order. Every pass starts from the
//     same memory snapshot with cold caches and a zeroed SM clock, so pass
//     results are bit-identical regardless of which device ran them.
//   - Result caching (SetCache): byte-identical invocations — same program
//     fingerprint, launch configuration, memory-snapshot hash and
//     constant-bank hash — skip re-simulation entirely, replaying the
//     recorded counters and memory effects while still charging the full
//     simulated replay+flush cost to the overhead accounting.
package cupti

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gputopdown/internal/kernel"
	"gputopdown/internal/obs"
	"gputopdown/internal/pmu"
	"gputopdown/internal/sim"
	"gputopdown/internal/sm"
)

// Mode selects the collection mechanism (paper §II.A).
type Mode uint8

const (
	// ModeSMPC collects SM counters from every SM on the device.
	ModeSMPC Mode = iota
	// ModeHWPM can observe any unit but only a subgroup of the hardware; we
	// model it as sampling a single SM and extrapolating.
	ModeHWPM
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeHWPM {
		return "HWPM"
	}
	return "SMPC"
}

// passSetupCycles is the fixed driver/PMU reconfiguration cost per pass.
const passSetupCycles = 2000

// KernelRecord is the profile of one kernel invocation.
type KernelRecord struct {
	Kernel string
	// Invocation is the per-kernel-name invocation index (0-based).
	Invocation int
	// Cycles is the kernel's native duration (identical across passes, by
	// determinism).
	Cycles uint64
	// Passes is how many replays were needed (1 for skipped samples).
	Passes int
	// Values holds the merged counter readings (device aggregate for SMPC,
	// single-SM sample scaled to the device for HWPM). For an unsampled
	// invocation under SetSampling these are the most recent sampled values.
	Values pmu.Values
	// Sampled is false when this invocation ran natively under sampling and
	// inherited another invocation's values.
	Sampled bool
	// Cached is true when the invocation was served from the replay result
	// cache instead of being re-simulated.
	Cached bool
	// SMsUsed is how many SMs participated.
	SMsUsed int
}

// Session profiles kernel launches against a fixed counter request.
type Session struct {
	dev     *sim.Device
	sched   *pmu.Schedule
	schedFP uint64
	mode    Mode

	// workers bounds the replay worker pool; <= 1 replays sequentially on
	// the session device (the historical behaviour).
	workers int
	// clones are the extra devices the parallel engine replays on, built
	// lazily and reused across invocations.
	clones []*sim.Device

	// cache, when non-nil, memoizes byte-identical invocations.
	cache *ReplayCache

	// checker, when non-nil, receives in-loop device invariant hooks (via
	// the session device and every clone) plus the session-level pass-merge
	// check after each profiled invocation.
	checker Checker

	// sampleEvery > 1 enables the paper's §VII mitigation: only every n-th
	// invocation of a kernel is fully replayed; the rest run natively once
	// and inherit the most recent sampled counter values.
	sampleEvery int
	lastSampled map[string]pmu.Values

	records     []KernelRecord
	invocations map[string]int

	// Overhead accounting (simulated device cycles).
	nativeCycles   uint64
	profiledCycles uint64

	// Observability (nil/disabled by default; see SetObserver). Handles are
	// created once so the replay hot path is allocation-free when disabled.
	tracer     *obs.Tracer
	reg        *obs.Registry
	obsOn      bool
	mPasses    *obs.Counter
	mFlushes   *obs.Counter
	mFlushCyc  *obs.Counter
	mNativeCyc *obs.Counter
	mProfCyc   *obs.Counter
	mSampled   *obs.Counter
	mSkipped   *obs.Counter
	mCacheHits *obs.Counter
	mCacheMiss *obs.Counter
	mParPasses *obs.Counter
	mPassWall  *obs.Counter
	hPassWall  *obs.Histogram
	gOverhead  *obs.Gauge
	gPassesPK  *obs.Gauge
	gWorkers   *obs.Gauge
	gCacheSize *obs.Gauge

	// Structured logging (nil/disabled by default; see SetLogger) and live
	// progress tracking (see SetProgress). Both are nil-safe, so the hot
	// path guards only argument construction.
	log      *obs.Logger // component "cupti"
	cacheLog *obs.Logger // component "cache"
	progress *obs.Progress
}

// NewSession builds a profiling session for the requested counters.
func NewSession(dev *sim.Device, request []pmu.CounterID, mode Mode) (*Session, error) {
	sched, err := pmu.BuildSchedule(request)
	if err != nil {
		return nil, err
	}
	return &Session{
		dev:         dev,
		sched:       sched,
		schedFP:     sched.Fingerprint(),
		mode:        mode,
		workers:     1,
		sampleEvery: 1,
		lastSampled: map[string]pmu.Values{},
		invocations: map[string]int{},
	}, nil
}

// SetObserver attaches an execution tracer and metrics registry to the
// session and, through it, to the underlying device. Either may be nil: a
// tracer-only observer records spans without metrics, a registry-only
// observer the reverse. The session emits spans for each profiled kernel,
// each replay pass and each cache flush, and maintains the profiler
// self-metrics — including the live replay_overhead_ratio that reproduces
// the paper's Fig. 13 accounting from instrumentation rather than post-hoc
// arithmetic.
func (s *Session) SetObserver(tr *obs.Tracer, reg *obs.Registry) {
	s.tracer = tr
	s.reg = reg
	s.obsOn = tr != nil || reg != nil
	s.dev.SetObserver(tr, reg)
	for _, c := range s.clones {
		// Clones contribute to device metrics but never to the trace (their
		// launches are replays of the session device's, on other goroutines).
		c.SetObserver(nil, reg)
	}
	if reg == nil {
		// Explicitly guard the handle creation: a tracer-only observer must
		// not depend on nil-receiver forgiveness in the registry.
		s.mPasses, s.mFlushes, s.mFlushCyc = nil, nil, nil
		s.mNativeCyc, s.mProfCyc = nil, nil
		s.mSampled, s.mSkipped = nil, nil
		s.mCacheHits, s.mCacheMiss, s.mParPasses = nil, nil, nil
		s.mPassWall, s.hPassWall = nil, nil
		s.gOverhead, s.gPassesPK, s.gWorkers, s.gCacheSize = nil, nil, nil, nil
		return
	}
	s.mPasses = reg.Counter("profiler_passes_total",
		"Replay passes executed across all profiled kernel invocations.", nil)
	s.mFlushes = reg.Counter("profiler_cache_flushes_total",
		"Device cache flushes performed between replay passes.", nil)
	s.mFlushCyc = reg.Counter("profiler_flush_cycles_total",
		"Simulated cycles charged to inter-pass cache/memory flushes.", nil)
	s.mNativeCyc = reg.Counter("profiler_native_cycles_total",
		"Simulated cycles the application would take without profiling.", nil)
	s.mProfCyc = reg.Counter("profiler_profiled_cycles_total",
		"Simulated cycles including every replay pass and flush.", nil)
	s.mSampled = reg.Counter("profiler_kernels_profiled_total",
		"Kernel invocations fully profiled via multi-pass replay.", nil)
	s.mSkipped = reg.Counter("profiler_kernels_skipped_total",
		"Kernel invocations run natively under sampling (values inherited).", nil)
	s.mCacheHits = reg.Counter("profiler_replay_cache_hits_total",
		"Kernel invocations served from the replay result cache.", nil)
	s.mCacheMiss = reg.Counter("profiler_replay_cache_misses_total",
		"Kernel invocations that missed the replay result cache.", nil)
	s.mParPasses = reg.Counter("profiler_parallel_passes_total",
		"Replay passes executed on cloned devices by the concurrent engine.", nil)
	s.mPassWall = reg.Counter("profiler_pass_wall_seconds_total",
		"Host wall-clock seconds spent executing replay passes.", nil)
	s.hPassWall = reg.Histogram("profiler_pass_wall_seconds",
		"Wall-clock duration of individual replay passes.", nil, nil)
	s.gOverhead = reg.Gauge("profiler_replay_overhead_ratio",
		"Live profiled/native simulated-cycle ratio (the paper's Fig. 13).", nil)
	s.gPassesPK = reg.Gauge("profiler_passes_per_kernel",
		"Replay passes the scheduled counter set requires per kernel.", nil)
	s.gWorkers = reg.Gauge("profiler_replay_workers",
		"Concurrent replay worker bound configured on the session.", nil)
	s.gCacheSize = reg.Gauge("profiler_replay_cache_entries",
		"Invocations currently memoized in the replay result cache.", nil)
	s.gPassesPK.Set(float64(s.sched.NumPasses()))
	s.gWorkers.Set(float64(s.workers))
}

// SetLogger attaches a structured logger to the session and its device. The
// session logs pass starts/stops and schedule decisions under component
// "cupti" and replay-cache hits/misses under component "cache"; the device
// logs launch/fast-forward activity under component "sim". A nil logger
// detaches all three and restores the zero-cost path.
func (s *Session) SetLogger(l *obs.Logger) {
	s.log = l.Component("cupti")
	s.cacheLog = l.Component("cache")
	s.dev.SetLogger(l)
	if s.log.On(obs.LevelDebug) {
		s.log.Debug("session configured",
			"mode", s.mode.String(), "passes", s.sched.NumPasses(),
			"workers", s.workers, "sample_every", s.sampleEvery)
	}
}

// SetProgress attaches a live progress tracker: the session reports the
// kernel and pass it is currently replaying plus cache hit/miss counts, which
// the obs HTTP server exposes on /api/progress. Nil detaches.
func (s *Session) SetProgress(p *obs.Progress) { s.progress = p }

// SetWorkers bounds the concurrent replay worker pool. n <= 1 restores the
// strictly sequential engine. With n > 1 the scheduled passes of each
// profiled launch fan out across up to n devices (the session device plus
// n-1 clones); merge order stays deterministic, so counter values are
// bit-identical to the sequential path.
func (s *Session) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	s.workers = n
	s.gWorkers.Set(float64(n))
}

// Workers returns the configured replay worker bound.
func (s *Session) Workers() int { return s.workers }

// Checker receives the session's invariant hooks. It extends the device-level
// sim.Checker with the pass-merge conservation law: after the deterministic
// pass-order merge, every scheduled counter's merged value must equal its
// reading from the pass that collected it, and free-running counters must be
// identical across all passes (the determinism the merge relies on).
// internal/check.Invariants implements it. Implementations must be
// goroutine-safe: with concurrent replay, cloned devices invoke the device
// hooks from multiple goroutines.
type Checker interface {
	sim.Checker
	// CheckPassMerge runs after merging per-pass readings for one profiled
	// invocation. passes is the schedule, perPass the collected counter
	// snapshot of each pass (index-aligned), merged the final values.
	CheckPassMerge(kernel string, passes [][]pmu.CounterID, perPass []sm.Counters, merged pmu.Values)
}

// SetChecker attaches an invariant checker to the session, its device and
// every replay clone (nil detaches everywhere). Like SetObserver, the
// attachment is observational only: profiled results are bit-identical with
// and without a checker.
func (s *Session) SetChecker(c Checker) {
	s.checker = c
	var devC sim.Checker
	if c != nil {
		devC = c
	}
	s.dev.SetChecker(devC)
	for _, cl := range s.clones {
		cl.SetChecker(devC)
	}
}

// SetCache attaches a replay result cache (nil detaches). The cache may be
// shared by many sessions, including concurrently.
func (s *Session) SetCache(c *ReplayCache) { s.cache = c }

// Cache returns the attached replay result cache (nil when detached).
func (s *Session) Cache() *ReplayCache { return s.cache }

// SetSampling makes the session fully profile only every n-th invocation of
// each kernel; the others execute once, natively, and reuse the most recent
// sampled values. This is the overhead mitigation the paper proposes for
// applications with very large kernel-invocation counts (§V.E, §VII). n < 1
// is treated as 1 (profile everything).
func (s *Session) SetSampling(n int) {
	if n < 1 {
		n = 1
	}
	s.sampleEvery = n
}

// SampleEvery returns the configured sampling interval.
func (s *Session) SampleEvery() int { return s.sampleEvery }

// NumPasses returns the replay count per kernel.
func (s *Session) NumPasses() int { return s.sched.NumPasses() }

// Mode returns the collection mode.
func (s *Session) Mode() Mode { return s.mode }

// flushCycles models the per-pass cache/memory flush cost: the dirty
// fraction of the working set is written back through DRAM bandwidth, plus a
// fixed reconfiguration cost. Large working sets make profiling
// disproportionately expensive (paper §V.E).
func (s *Session) flushCycles() uint64 {
	allocated := s.dev.Storage.Mark() // watermark ~ working set
	return uint64(float64(allocated)/(4*s.dev.Spec.DRAMBytesPerCycle)) + passSetupCycles
}

// passResult is one replay pass's outcome, produced by either engine.
type passResult struct {
	cycles   uint64
	smsUsed  int
	counters sm.Counters
}

// Profile replays the launch once per scheduled pass and returns the merged
// record. Device memory is saved before the first pass and restored before
// each subsequent one, so every pass observes identical initial state; the
// final memory state is the post-kernel one (the kernel "ran once" from the
// application's point of view).
func (s *Session) Profile(l *kernel.Launch) (*KernelRecord, error) {
	return s.ProfileCtx(context.Background(), l)
}

// ProfileCtx is Profile with cooperative cancellation: ctx is consulted
// before the invocation and between replay passes. On cancellation the
// returned error wraps ctx.Err(); device memory is then in an unspecified
// intermediate state, as with any mid-profile failure.
func (s *Session) ProfileCtx(ctx context.Context, l *kernel.Launch) (*KernelRecord, error) {
	if err := ctx.Err(); err != nil {
		return nil, &KernelError{Kernel: l.Program.Name, Pass: -1, Err: err}
	}
	if s.sampleEvery > 1 {
		if inv := s.invocations[l.Program.Name]; inv%s.sampleEvery != 0 {
			return s.profileSkipped(ctx, l, inv)
		}
	}
	passes := s.sched.Passes
	profStart := s.tracer.Now()
	s.progress.StartKernel(l.Program.Name, len(passes))
	if s.log.On(obs.LevelDebug) {
		s.log.Debug("profiling kernel",
			"kernel", l.Program.Name, "invocation", s.invocations[l.Program.Name],
			"passes", len(passes), "workers", s.workers)
	}

	// Pre-launch snapshot: restore point for multi-pass replay, and (with
	// the cache enabled) the byte-identity the cache key hashes.
	var snap []byte
	if len(passes) > 1 || s.cache != nil {
		snap = s.dev.Storage.Snapshot()
	}
	var key replayKey
	if s.cache != nil {
		key = s.keyFor(l, s.dev.Storage.HashAllocated())
		if e, ok := s.cache.get(key); ok && e.passes == len(passes) {
			s.progress.CacheHit()
			if s.cacheLog.On(obs.LevelDebug) {
				s.cacheLog.Debug("replay cache hit",
					"kernel", l.Program.Name, "invocation", s.invocations[l.Program.Name],
					"cycles", e.cycles, "entries", s.cache.Len())
			}
			return s.profileCached(l, e, profStart)
		}
		s.progress.CacheMiss()
		if s.cacheLog.On(obs.LevelDebug) {
			s.cacheLog.Debug("replay cache miss",
				"kernel", l.Program.Name, "invocation", s.invocations[l.Program.Name],
				"entries", s.cache.Len())
		}
		if s.obsOn {
			s.mCacheMiss.Inc()
		}
	}

	var results []passResult
	var err error
	if s.workers > 1 && len(passes) > 1 {
		results, err = s.runPassesParallel(ctx, l, snap)
	} else {
		results, err = s.runPassesSequential(ctx, l, snap)
	}
	if err != nil {
		return nil, err
	}

	// Deterministic merge: pass order, independent of which device (or
	// goroutine) executed which pass.
	values := pmu.Values{}
	fc := s.flushCycles()
	rec := &KernelRecord{
		Kernel:  l.Program.Name,
		Passes:  len(passes),
		Sampled: true,
	}
	for i, pass := range passes {
		values.Merge(pass, &results[i].counters)
		if i == 0 {
			rec.Cycles = results[i].cycles
			rec.SMsUsed = results[i].smsUsed
			s.nativeCycles += results[i].cycles
			s.mNativeCyc.Add(float64(results[i].cycles))
		}
		s.profiledCycles += results[i].cycles + fc
		if s.obsOn {
			s.mProfCyc.Add(float64(results[i].cycles) + float64(fc))
			s.mPasses.Inc()
			s.mFlushes.Inc()
			s.mFlushCyc.Add(float64(fc))
		}
	}
	if s.checker != nil {
		perPass := make([]sm.Counters, len(results))
		for i := range results {
			perPass[i] = results[i].counters
		}
		s.checker.CheckPassMerge(l.Program.Name, passes, perPass, values)
	}
	rec.Values = values
	rec.Invocation = s.invocations[rec.Kernel]
	s.invocations[rec.Kernel]++
	s.lastSampled[rec.Kernel] = values
	s.records = append(s.records, *rec)

	if s.cache != nil {
		s.cache.put(key, &replayEntry{
			values:  values.Clone(),
			cycles:  rec.Cycles,
			smsUsed: rec.SMsUsed,
			passes:  len(passes),
			post:    s.dev.Storage.Snapshot(),
		})
		s.gCacheSize.Set(float64(s.cache.Len()))
	}

	if s.obsOn {
		s.mSampled.Inc()
		if s.nativeCycles > 0 {
			s.gOverhead.Set(float64(s.profiledCycles) / float64(s.nativeCycles))
		}
		if s.tracer != nil {
			s.tracer.Complete(obs.PIDProfiler, 1, "cupti", "profile "+rec.Kernel,
				profStart, map[string]any{
					"passes": len(passes), "invocation": rec.Invocation,
					"cycles": rec.Cycles, "mode": s.mode.String(),
					"workers": s.workers,
				})
		}
	}
	s.progress.KernelDone()
	if s.log.On(obs.LevelDebug) {
		s.log.Debug("kernel profiled",
			"kernel", rec.Kernel, "invocation", rec.Invocation,
			"cycles", rec.Cycles, "passes", rec.Passes)
	}
	return rec, nil
}

// runPassesSequential is the historical engine: every pass replays on the
// session device, restoring memory and flushing caches in between.
func (s *Session) runPassesSequential(ctx context.Context, l *kernel.Launch, snap []byte) ([]passResult, error) {
	passes := s.sched.Passes
	results := make([]passResult, len(passes))
	for i := range passes {
		if err := ctx.Err(); err != nil {
			return nil, &KernelError{Kernel: l.Program.Name, Pass: i, Err: err}
		}
		var passWall time.Time
		passStart := s.tracer.Now()
		if s.obsOn {
			passWall = time.Now()
		}
		if i > 0 {
			s.dev.Storage.Restore(snap)
		}
		flushStart := s.tracer.Now()
		s.dev.FlushCaches()
		if s.obsOn && s.tracer != nil {
			s.tracer.Complete(obs.PIDProfiler, 1, "cupti", "flush",
				flushStart, map[string]any{"flush_cycles": s.flushCycles()})
		}
		res, err := safeLaunch(ctx, s.dev, l)
		if err != nil {
			return nil, &KernelError{Kernel: l.Program.Name, Pass: i, Err: err}
		}
		results[i] = passResult{cycles: res.Cycles, smsUsed: res.SMsUsed, counters: s.collect(res)}
		s.progress.PassDone(i + 1)
		if s.log.On(obs.LevelDebug) {
			s.log.Debug("pass complete",
				"kernel", l.Program.Name, "pass", i+1, "passes", len(passes),
				"cycles", res.Cycles)
		}
		if s.obsOn {
			wall := time.Since(passWall).Seconds()
			s.mPassWall.Add(wall)
			s.hPassWall.Observe(wall)
			if s.tracer != nil {
				s.tracer.Complete(obs.PIDProfiler, 1, "cupti",
					fmt.Sprintf("pass %d/%d", i+1, len(passes)), passStart,
					map[string]any{"kernel": l.Program.Name, "cycles": res.Cycles})
			}
		}
	}
	return results, nil
}

// ensureClones grows the clone pool to n devices and re-syncs every clone's
// global and constant memory to the session device's current state.
func (s *Session) ensureClones(n int) {
	for len(s.clones) < n {
		c := s.dev.Clone()
		if s.reg != nil {
			c.SetObserver(nil, s.reg)
		}
		if s.checker != nil {
			c.SetChecker(s.checker)
		}
		s.clones = append(s.clones, c)
	}
	for _, c := range s.clones[:n] {
		c.SyncState(s.dev)
	}
}

// runPassesParallel fans the scheduled passes across the session device and
// a pool of clones. Pass 0 is pinned to the session device so its memory
// effects are the ones the application observes (by determinism every pass
// produces the same post-kernel memory); the remaining passes are pulled
// from a shared queue by up to workers-1 clone devices. Each pass starts
// from the shared pre-launch snapshot with cold caches, so results are
// bit-identical to the sequential engine; the caller merges them in pass
// order.
func (s *Session) runPassesParallel(ctx context.Context, l *kernel.Launch, snap []byte) ([]passResult, error) {
	passes := s.sched.Passes
	n := len(passes)
	workers := s.workers
	if workers > n {
		workers = n
	}
	s.ensureClones(workers - 1)
	clones := s.clones[:workers-1]

	results := make([]passResult, n)
	errs := make([]error, n)
	runPass := func(dev *sim.Device, tid, i int, onClone bool) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		var passWall time.Time
		passStart := s.tracer.Now()
		if s.obsOn {
			passWall = time.Now()
		}
		// AdoptSnapshot doubles as restore and watermark sync: clones may
		// carry allocations from a previous invocation.
		dev.Storage.AdoptSnapshot(snap)
		dev.FlushCaches()
		res, err := safeLaunch(ctx, dev, l)
		if err != nil {
			errs[i] = err
			return
		}
		results[i] = passResult{cycles: res.Cycles, smsUsed: res.SMsUsed, counters: s.collect(res)}
		s.progress.PassDone(i + 1)
		if s.log.On(obs.LevelDebug) {
			s.log.Debug("pass complete",
				"kernel", l.Program.Name, "pass", i+1, "passes", n,
				"cycles", res.Cycles, "clone", onClone)
		}
		if s.obsOn {
			wall := time.Since(passWall).Seconds()
			s.mPassWall.Add(wall)
			s.hPassWall.Observe(wall)
			if onClone {
				s.mParPasses.Inc()
			}
			if s.tracer != nil {
				s.tracer.Complete(obs.PIDProfiler, tid, "cupti",
					fmt.Sprintf("pass %d/%d", i+1, n), passStart,
					map[string]any{"kernel": l.Program.Name, "cycles": res.Cycles,
						"parallel": true, "clone": onClone})
			}
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // session device: pass 0 first, then help with the queue
		defer wg.Done()
		runPass(s.dev, 1, 0, false)
		for i := range jobs {
			runPass(s.dev, 1, i, false)
		}
	}()
	for w, c := range clones {
		wg.Add(1)
		go func(c *sim.Device, tid int) {
			defer wg.Done()
			for i := range jobs {
				runPass(c, tid, i, true)
			}
		}(c, 2+w)
	}
	for i := 1; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, &KernelError{Kernel: l.Program.Name, Pass: i, Err: err}
		}
	}
	// The session device must end in post-kernel state; if its own pass was
	// the last thing it ran that holds. Verify the determinism contract the
	// merge relies on: every pass must report identical native cycles.
	for i := 1; i < n; i++ {
		if results[i].cycles != results[0].cycles {
			return nil, &KernelError{Kernel: l.Program.Name, Pass: i,
				Err: fmt.Errorf("replay divergence: pass cycles %d != pass-0 cycles %d",
					results[i].cycles, results[0].cycles)}
		}
	}
	return results, nil
}

// profileCached serves an invocation from the replay result cache: the
// recorded counter values and memory effects are replayed, and the full
// simulated replay+flush cost is charged so the Fig. 13 overhead accounting
// is bit-identical to an uncached session.
func (s *Session) profileCached(l *kernel.Launch, e *replayEntry, profStart float64) (*KernelRecord, error) {
	s.dev.Storage.Restore(e.post)
	fc := s.flushCycles()
	passes := s.sched.NumPasses()
	rec := &KernelRecord{
		Kernel:     l.Program.Name,
		Invocation: s.invocations[l.Program.Name],
		Cycles:     e.cycles,
		Passes:     passes,
		Values:     e.values.Clone(),
		Sampled:    true,
		Cached:     true,
		SMsUsed:    e.smsUsed,
	}
	s.invocations[rec.Kernel]++
	s.lastSampled[rec.Kernel] = rec.Values
	s.nativeCycles += e.cycles
	s.profiledCycles += uint64(passes) * (e.cycles + fc)
	s.records = append(s.records, *rec)
	if s.obsOn {
		s.mCacheHits.Inc()
		s.mSampled.Inc()
		s.mNativeCyc.Add(float64(e.cycles))
		s.mProfCyc.Add(float64(passes) * (float64(e.cycles) + float64(fc)))
		s.mPasses.Add(float64(passes))
		s.mFlushCyc.Add(float64(passes) * float64(fc))
		if s.nativeCycles > 0 {
			s.gOverhead.Set(float64(s.profiledCycles) / float64(s.nativeCycles))
		}
		if s.tracer != nil {
			s.tracer.Complete(obs.PIDProfiler, 1, "cupti", "cached "+rec.Kernel,
				profStart, map[string]any{
					"passes": passes, "invocation": rec.Invocation,
					"cycles": rec.Cycles, "mode": s.mode.String(),
				})
		}
	}
	s.progress.KernelDone()
	return rec, nil
}

// profileSkipped runs an unsampled invocation once, natively, and reuses the
// kernel's most recent sampled values.
func (s *Session) profileSkipped(ctx context.Context, l *kernel.Launch, inv int) (*KernelRecord, error) {
	skipStart := s.tracer.Now()
	res, err := safeLaunch(ctx, s.dev, l)
	if err != nil {
		return nil, &KernelError{Kernel: l.Program.Name, Pass: -1,
			Err: fmt.Errorf("skipped invocation: %w", err)}
	}
	rec := &KernelRecord{
		Kernel:     l.Program.Name,
		Invocation: inv,
		Cycles:     res.Cycles,
		Passes:     1,
		Values:     s.lastSampled[l.Program.Name],
		Sampled:    false,
		SMsUsed:    res.SMsUsed,
	}
	s.invocations[rec.Kernel]++
	s.nativeCycles += res.Cycles
	s.profiledCycles += res.Cycles
	s.records = append(s.records, *rec)
	if s.obsOn {
		s.mSkipped.Inc()
		s.mNativeCyc.Add(float64(res.Cycles))
		s.mProfCyc.Add(float64(res.Cycles))
		if s.nativeCycles > 0 {
			s.gOverhead.Set(float64(s.profiledCycles) / float64(s.nativeCycles))
		}
		if s.tracer != nil {
			s.tracer.Complete(obs.PIDProfiler, 1, "cupti", "native "+rec.Kernel,
				skipStart, map[string]any{"invocation": inv, "cycles": res.Cycles})
		}
	}
	s.progress.KernelDone()
	if s.log.On(obs.LevelDebug) {
		s.log.Debug("kernel run natively under sampling",
			"kernel", rec.Kernel, "invocation", inv, "cycles", res.Cycles)
	}
	return rec, nil
}

// collect reduces a run result to one counter snapshot per the session mode.
func (s *Session) collect(res *sim.RunResult) sm.Counters {
	if s.mode == ModeSMPC || len(res.PerSM) == 0 {
		return res.Counters
	}
	// HWPM: observe the first SM that did work, scale to the device.
	var sample sm.Counters
	for i := range res.PerSM {
		if res.PerSM[i].InstExecuted > 0 {
			sample = res.PerSM[i]
			break
		}
	}
	scaled := sm.Counters{}
	for i := 0; i < res.SMsUsed; i++ {
		scaled.Add(&sample)
	}
	return scaled
}

// Records returns all kernel records in invocation order.
func (s *Session) Records() []KernelRecord { return s.records }

// RecordsFor returns the records of one kernel name, ordered by invocation.
func (s *Session) RecordsFor(name string) []KernelRecord {
	var out []KernelRecord
	for _, r := range s.records {
		if r.Kernel == name {
			out = append(out, r)
		}
	}
	return out
}

// Overhead returns (native, profiled) simulated cycle totals across every
// profiled launch; profiled/native is the paper's Fig. 13 ratio.
func (s *Session) Overhead() (native, profiled uint64) {
	return s.nativeCycles, s.profiledCycles
}

// Reset clears records and overhead accounting, keeping the schedule, the
// worker pool and the attached cache.
func (s *Session) Reset() {
	s.records = nil
	s.invocations = map[string]int{}
	s.nativeCycles = 0
	s.profiledCycles = 0
}

// RunNative executes a launch without any profiling machinery, for
// overhead-baseline measurements.
func RunNative(dev *sim.Device, l *kernel.Launch) (*sim.RunResult, error) {
	return dev.Launch(l)
}

package sim

import (
	"reflect"
	"testing"

	"gputopdown/internal/kernel"
)

// TestCloneIsIndependent: mutating a clone's memory or running kernels on it
// must not disturb the original device, and vice versa.
func TestCloneIsIndependent(t *testing.T) {
	d := NewDevice(testSpec())
	const n = 256
	buf := d.Alloc(n * 4)
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i)
	}
	d.Storage.WriteU32Slice(buf, vals)
	d.Const.Write(kernel.ParamSpace, 0xDEAD, 8)

	c := d.Clone()
	if got := c.Storage.ReadU32Slice(buf, n); !reflect.DeepEqual(got, vals) {
		t.Fatal("clone does not see the original's memory contents")
	}
	if got := c.Const.Read(kernel.ParamSpace, 8); got != 0xDEAD {
		t.Fatalf("clone constant bank = %#x, want 0xDEAD", got)
	}

	// Mutate the clone; the original must be untouched.
	c.Storage.WriteU32Slice(buf, make([]uint32, n))
	c.Const.Write(kernel.ParamSpace, 0xBEEF, 8)
	if got := d.Storage.ReadU32Slice(buf, n); !reflect.DeepEqual(got, vals) {
		t.Fatal("mutating the clone changed the original's memory")
	}
	if got := d.Const.Read(kernel.ParamSpace, 8); got != 0xDEAD {
		t.Fatal("mutating the clone changed the original's constant bank")
	}

	// And allocations diverge independently.
	a1 := d.Alloc(64)
	a2 := c.Alloc(128)
	if a1 != a2 {
		t.Fatalf("clone watermark diverged before independent allocs: %#x vs %#x", a1, a2)
	}
}

// TestCloneLaunchBitIdentical: the same launch from the same memory state
// must produce identical cycles and counters on the original and the clone —
// the property the concurrent replay engine rests on.
func TestCloneLaunchBitIdentical(t *testing.T) {
	d := NewDevice(testSpec())
	const n = 1000
	xs := d.Alloc(n * 4)
	ys := d.Alloc(n * 4)
	xh := make([]float32, n)
	yh := make([]float32, n)
	for i := range xh {
		xh[i] = float32(i)
		yh[i] = float32(2 * i)
	}
	d.Storage.WriteF32Slice(xs, xh)
	d.Storage.WriteF32Slice(ys, yh)
	l := &kernel.Launch{
		Program: buildSaxpy(),
		Grid:    kernel.Dim3{X: (n + 127) / 128},
		Block:   kernel.Dim3{X: 128},
		Params:  []uint64{xs, ys, n, uint64(f32b(3.0))},
	}

	c := d.Clone()
	r1 := d.MustLaunch(l)
	r2 := c.MustLaunch(l)
	if r1.Cycles != r2.Cycles || r1.SMsUsed != r2.SMsUsed {
		t.Fatalf("clone launch diverged: %d cyc/%d SMs vs %d cyc/%d SMs",
			r1.Cycles, r1.SMsUsed, r2.Cycles, r2.SMsUsed)
	}
	if !reflect.DeepEqual(r1.Counters, r2.Counters) {
		t.Fatal("clone launch produced different counters")
	}
	if !reflect.DeepEqual(d.Storage.ReadF32Slice(ys, n), c.Storage.ReadF32Slice(ys, n)) {
		t.Fatal("clone launch produced different memory effects")
	}
}

// TestSyncState re-synchronises a drifted clone with its source.
func TestSyncState(t *testing.T) {
	d := NewDevice(testSpec())
	buf := d.Alloc(64 * 4)
	d.Storage.WriteU32Slice(buf, make([]uint32, 64))
	c := d.Clone()

	// Drift both sides.
	d.Alloc(256)
	d.Storage.WriteU32Slice(buf, []uint32{1, 2, 3})
	d.Const.Write(kernel.ParamSpace, 42, 8)
	c.Storage.WriteU32Slice(buf, []uint32{9, 9, 9})

	c.SyncState(d)
	if got := c.Storage.ReadU32Slice(buf, 3); !reflect.DeepEqual(got, []uint32{1, 2, 3}) {
		t.Fatalf("clone memory after SyncState = %v, want [1 2 3]", got)
	}
	if got := c.Const.Read(kernel.ParamSpace, 8); got != 42 {
		t.Fatalf("clone const after SyncState = %d, want 42", got)
	}
	// Watermarks must match so replay snapshots adopt cleanly.
	if d.Storage.Mark() != c.Storage.Mark() {
		t.Fatalf("watermarks differ after SyncState: %d vs %d", d.Storage.Mark(), c.Storage.Mark())
	}
}

package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"gputopdown/internal/kernel"
	"gputopdown/internal/obs"
)

// TestSimWorkersClamp pins the device-level clamp: never below 1, never
// above maxSimWorkers, and Clone carries the setting over.
func TestSimWorkersClamp(t *testing.T) {
	d := NewDevice(testSpec())
	if d.SimWorkers() != 1 {
		t.Errorf("default SimWorkers = %d, want 1", d.SimWorkers())
	}
	d.SetSimWorkers(0)
	if d.SimWorkers() != 1 {
		t.Errorf("SetSimWorkers(0) -> %d, want clamp to 1", d.SimWorkers())
	}
	d.SetSimWorkers(-7)
	if d.SimWorkers() != 1 {
		t.Errorf("SetSimWorkers(-7) -> %d, want clamp to 1", d.SimWorkers())
	}
	d.SetSimWorkers(1 << 20)
	if d.SimWorkers() != maxSimWorkers {
		t.Errorf("SetSimWorkers(1<<20) -> %d, want clamp to %d", d.SimWorkers(), maxSimWorkers)
	}
	d.SetSimWorkers(4)
	if c := d.Clone(); c.SimWorkers() != 4 {
		t.Errorf("Clone dropped SimWorkers: %d, want 4", c.SimWorkers())
	}
}

// TestParallelEngineBasic runs the same launches sequentially and in
// parallel — including with more workers than SMs — and demands identical
// RunResults and correct memory contents.
func TestParallelEngineBasic(t *testing.T) {
	run := func(workers int) (*RunResult, []float32) {
		d := NewDevice(testSpec())
		d.SetSimWorkers(workers)
		l := saxpyLaunch(d, 4096)
		res := d.MustLaunch(l)
		return res, d.Storage.ReadF32Slice(l.Params[1], 4096)
	}
	seqRes, seqOut := run(1)
	for _, w := range []int{2, 4, 64} {
		parRes, parOut := run(w)
		if !reflect.DeepEqual(seqRes, parRes) {
			t.Errorf("workers=%d: RunResult diverges from sequential", w)
		}
		if !reflect.DeepEqual(seqOut, parOut) {
			t.Errorf("workers=%d: memory contents diverge from sequential", w)
		}
	}
}

// TestParallelEngineMemBound repeats the identity check on the serialized
// DRAM-latency chain kernel, whose long idle spans exercise the parallel
// engine's composed per-SM fast-forward, with and without shared memory.
func TestParallelEngineMemBound(t *testing.T) {
	for _, shared := range []int{0, 4096} {
		run := func(workers int) *RunResult {
			d := NewDevice(testSpec())
			d.SetSimWorkers(workers)
			return d.MustLaunch(memBoundLaunch(d, 32, shared))
		}
		seq := run(1)
		par := run(4)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("shared=%d: parallel RunResult diverges from sequential", shared)
		}
	}
}

// TestParallelLaunchCtxCancel: cancellation must work identically under the
// parallel engine — the launch returns context.Canceled promptly, the worker
// pool shuts down, and the device is reusable.
func TestParallelLaunchCtxCancel(t *testing.T) {
	d := NewDevice(testSpec())
	d.SetSimWorkers(4)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := d.LaunchCtx(ctx, &kernel.Launch{
			Program: buildSpin(1 << 40),
			Grid:    kernel.Dim3{X: 4},
			Block:   kernel.Dim3{X: 128},
		})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled parallel launch = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled parallel launch did not return promptly")
	}
	for i, s := range d.SMs {
		if s.Busy() {
			t.Fatalf("SM %d still busy after cancelled parallel launch", i)
		}
	}
	if res := d.MustLaunch(saxpyLaunch(d, 1024)); res.Cycles == 0 {
		t.Error("post-cancellation parallel launch produced no cycles")
	}
}

// TestSetObserverNilRegistry is the regression test for the nil-registry
// path: a tracer-only observer must work exactly like the tracer-plus-
// registry configuration minus the metrics, a registry-only observer must
// count launches, and a nil/nil call must detach both without breaking
// subsequent launches.
func TestSetObserverNilRegistry(t *testing.T) {
	d := NewDevice(testSpec())
	l := saxpyLaunch(d, 1024)

	// Tracer only: spans recorded, no metric handles, no panic.
	tr := obs.NewTracer()
	d.SetObserver(tr, nil)
	d.MustLaunch(l)
	var spans int
	for _, e := range tr.Events() {
		if e.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Error("tracer-only observer recorded no spans")
	}

	// Registry only: launches counted, previous tracer fully detached.
	reg := obs.NewRegistry()
	d.SetObserver(nil, reg)
	before := len(tr.Events())
	d.MustLaunch(l)
	if got := len(tr.Events()); got != before {
		t.Errorf("detached tracer still accumulated events: %d -> %d", before, got)
	}
	if got := reg.Counter("sim_launches_total", "", nil).Value(); got != 1 {
		t.Errorf("sim_launches_total = %v, want 1", got)
	}

	// Detach both: launches keep working, counters freeze.
	d.SetObserver(nil, nil)
	d.MustLaunch(l)
	if got := reg.Counter("sim_launches_total", "", nil).Value(); got != 1 {
		t.Errorf("detached registry still counting: %v", got)
	}
}

// TestLaunchPrologueAllocFree gates the reusable-scratch prologue: once a
// device has run a launch, readying it for the next one (constant-bank
// params, IMC flush, local-memory carve-out, per-SM reset and counter
// snapshots) must allocate nothing.
func TestLaunchPrologueAllocFree(t *testing.T) {
	d := NewDevice(testSpec())
	l := saxpyLaunch(d, 1024)
	d.MustLaunch(l) // size every reusable buffer
	allocs := testing.AllocsPerRun(50, func() {
		markMem, err := d.launchPrologue(l)
		if err != nil {
			t.Fatal(err)
		}
		d.Storage.Release(markMem)
	})
	if allocs != 0 {
		t.Errorf("launch prologue allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkLaunchPrologue measures the per-launch fixed cost in isolation;
// its allocs/op column is the number the alloc-free gate pins at zero.
func BenchmarkLaunchPrologue(b *testing.B) {
	d := NewDevice(testSpec())
	l := saxpyLaunch(d, 1024)
	d.MustLaunch(l)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		markMem, err := d.launchPrologue(l)
		if err != nil {
			b.Fatal(err)
		}
		d.Storage.Release(markMem)
	}
}

// BenchmarkLaunchParallel measures a full launch under the parallel engine
// (4 workers) on the memory-bound chain kernel, the shape `make
// bench-parallel` compares against BenchmarkLaunchFastForward.
func BenchmarkLaunchParallel(b *testing.B) {
	d := NewDevice(testSpec())
	d.SetSimWorkers(4)
	l := memBoundLaunch(d, 32, 0)
	d.MustLaunch(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Launch(l); err != nil {
			b.Fatal(err)
		}
	}
}

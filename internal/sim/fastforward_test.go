package sim

import (
	"reflect"
	"testing"

	"gputopdown/internal/kernel"
)

// memBoundLaunch builds a launch dominated by serialized global loads —
// the workload class whose stall windows the fast-forward engine skips.
func memBoundLaunch(d *Device, blocks, sharedBytes int) *kernel.Launch {
	b := kernel.NewBuilder("memchain")
	gid := b.GlobalIDX()
	buf := b.Param(0)
	addr := b.IMad(b.AndImm(gid, 1023), b.MovImm(4), buf)
	acc := b.MovImm(0)
	for i := 0; i < 3; i++ {
		v := b.Ldg(addr, int64(i*4096), 4)
		acc = b.IAdd(acc, v)
	}
	b.Stg(addr, acc, 0, 4)
	b.Exit()
	prog := b.MustBuild()
	prog.SharedBytes = sharedBytes
	mem := d.Alloc(64 * 1024)
	return &kernel.Launch{
		Program: prog,
		Grid:    kernel.Dim3{X: blocks},
		Block:   kernel.Dim3{X: 64},
		Params:  []uint64{mem},
	}
}

// TestFastForwardRetireMidSkipDispatch pins the dispatch interaction: each
// block's shared-memory footprint fills an SM, so pending blocks can only
// dispatch when a resident block retires — an event that must collapse the
// fast-forward bound so the dispatcher runs at the exact retire cycle. The
// whole run (cycles, counters, per-SM deltas) must match the naive loop.
func TestFastForwardRetireMidSkipDispatch(t *testing.T) {
	run := func(ff bool) *RunResult {
		d := NewDevice(testSpec())
		d.SetFastForward(ff)
		// One block per SM at a time: 2 SMs, 8 blocks → 4 serialized waves.
		return d.MustLaunch(memBoundLaunch(d, 8, d.Spec.SharedMemPerSM))
	}
	naive, fast := run(false), run(true)
	if !reflect.DeepEqual(naive, fast) {
		t.Fatalf("serialized-dispatch run diverges:\nnaive: cycles=%d %+v\nff:    cycles=%d %+v",
			naive.Cycles, naive.Counters, fast.Cycles, fast.Counters)
	}
	if naive.Blocks != 8 || naive.SMsUsed != 2 {
		t.Fatalf("unexpected shape: blocks=%d smsUsed=%d", naive.Blocks, naive.SMsUsed)
	}
}

// TestFastForwardDefaultOn pins the default: new devices and their clones
// run the fast-forward engine unless explicitly disabled.
func TestFastForwardDefaultOn(t *testing.T) {
	d := NewDevice(testSpec())
	if !d.FastForwardEnabled() {
		t.Error("new device does not default to fast-forward")
	}
	if !d.Clone().FastForwardEnabled() {
		t.Error("clone lost the fast-forward flag")
	}
	d.SetFastForward(false)
	if d.Clone().FastForwardEnabled() {
		t.Error("clone of a naive-mode device re-enabled fast-forward")
	}
}

package sim

import (
	"math"
	"testing"

	"gputopdown/internal/gpu"
	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
	"gputopdown/internal/sm"
)

// testSpec returns a small Turing-like device for fast tests.
func testSpec() *gpu.Spec { return gpu.QuadroRTX4000().WithSMs(2) }

// testSpecPascal returns a small Pascal-like device for fast tests.
func testSpecPascal() *gpu.Spec { return gpu.GTX1070().WithSMs(2) }

// buildSaxpy builds y[i] = a*x[i] + y[i] with an n-guard.
func buildSaxpy() *kernel.Program {
	b := kernel.NewBuilder("saxpy")
	xs := b.Param(0)
	ys := b.Param(1)
	n := b.Param(2)
	a := b.Param(3) // float bits in low 32
	gid := b.GlobalIDX()
	p := b.ISetp(isa.CmpGE, gid, n)
	b.ExitIf(p, false)
	off := b.Shl(gid, 2)
	xa := b.IAdd(xs, off)
	ya := b.IAdd(ys, off)
	x := b.Ldg(xa, 0, 4)
	y := b.Ldg(ya, 0, 4)
	r := b.FFma(a, x, y)
	b.Stg(ya, r, 0, 4)
	b.Exit()
	return b.MustBuild()
}

func TestSaxpyCorrectness(t *testing.T) {
	d := NewDevice(testSpec())
	const n = 1000
	xs := d.Alloc(n * 4)
	ys := d.Alloc(n * 4)
	xh := make([]float32, n)
	yh := make([]float32, n)
	for i := range xh {
		xh[i] = float32(i)
		yh[i] = float32(2 * i)
	}
	d.Storage.WriteF32Slice(xs, xh)
	d.Storage.WriteF32Slice(ys, yh)

	l := &kernel.Launch{
		Program: buildSaxpy(),
		Grid:    kernel.Dim3{X: (n + 127) / 128},
		Block:   kernel.Dim3{X: 128},
		Params:  []uint64{xs, ys, n, uint64(f32b(3.0))},
	}
	res := d.MustLaunch(l)

	out := d.Storage.ReadF32Slice(ys, n)
	for i := 0; i < n; i++ {
		want := 3.0*xh[i] + yh[i]
		if out[i] != want {
			t.Fatalf("y[%d] = %g, want %g", i, out[i], want)
		}
	}
	if res.Cycles == 0 || res.Counters.InstExecuted == 0 {
		t.Errorf("empty result: %+v", res)
	}
}

func f32b(f float32) uint32 { return math.Float32bits(f) }

func float32bits(f float32) uint64 { return uint64(math.Float32bits(f)) }

func TestCounterInvariants(t *testing.T) {
	d := NewDevice(testSpec())
	const n = 4096
	xs := d.Alloc(n * 4)
	ys := d.Alloc(n * 4)
	l := &kernel.Launch{
		Program: buildSaxpy(),
		Grid:    kernel.Dim3{X: n / 128},
		Block:   kernel.Dim3{X: 128},
		Params:  []uint64{xs, ys, n, uint64(float32bits(1.5))},
	}
	d.Storage.WriteF32Slice(xs, make([]float32, n))
	d.Storage.WriteF32Slice(ys, make([]float32, n))
	res := d.MustLaunch(l)
	c := &res.Counters

	if c.StateSum() != c.ActiveWarpCycles {
		t.Errorf("state sum %d != active warp cycles %d", c.StateSum(), c.ActiveWarpCycles)
	}
	if c.InstIssued < c.InstExecuted {
		t.Errorf("issued %d < executed %d", c.InstIssued, c.InstExecuted)
	}
	if c.WarpStateCycles[sm.StateSelected] != c.InstIssued {
		t.Errorf("selected cycles %d != issued %d", c.WarpStateCycles[sm.StateSelected], c.InstIssued)
	}
	if c.ThreadInstExecuted > c.InstExecuted*32 {
		t.Errorf("thread insts %d > executed*32 %d", c.ThreadInstExecuted, c.InstExecuted*32)
	}
	// IPC bound: per-SM issue rate cannot exceed dispatch units per SM.
	spec := testSpec()
	ipc := float64(c.InstIssued) / float64(c.ActiveCycles) / float64(res.SMsUsed)
	if ipc > spec.IPCMax()+1e-9 {
		t.Errorf("per-SM IPC %g exceeds IPC_MAX %g", ipc, spec.IPCMax())
	}
	if c.BlocksLaunched != uint64(res.Blocks) {
		t.Errorf("blocks launched %d != %d", c.BlocksLaunched, res.Blocks)
	}
	if res.SMsUsed < 2 {
		t.Errorf("grid of %d blocks used %d SMs", res.Blocks, res.SMsUsed)
	}
}

// buildDivergent: threads with odd lane take a multiply-heavy path, even
// lanes an add-heavy path.
func buildDivergent() *kernel.Program {
	b := kernel.NewBuilder("divergent")
	out := b.Param(0)
	gid := b.GlobalIDX()
	lane := b.AndImm(gid, 1)
	p := b.ISetpImm(isa.CmpEQ, lane, 1)
	acc := b.MovImm(0)
	b.If(p)
	for i := 0; i < 8; i++ {
		v := b.IMulImm(gid, int64(i+3))
		b.MovTo(acc, v)
	}
	b.Else()
	for i := 0; i < 8; i++ {
		v := b.IAddImm(gid, int64(i+7))
		b.MovTo(acc, v)
	}
	b.EndIf()
	addr := b.IMad(gid, b.MovImm(4), out)
	b.Stg(addr, acc, 0, 4)
	b.Exit()
	return b.MustBuild()
}

func TestDivergenceCorrectnessAndCounting(t *testing.T) {
	d := NewDevice(testSpec())
	const n = 256
	out := d.Alloc(n * 4)
	l := &kernel.Launch{
		Program: buildDivergent(),
		Grid:    kernel.Dim3{X: 2},
		Block:   kernel.Dim3{X: 128},
		Params:  []uint64{out},
	}
	res := d.MustLaunch(l)
	vals := d.Storage.ReadU32Slice(out, n)
	for i := 0; i < n; i++ {
		var want uint32
		if i%2 == 1 {
			want = uint32(i * 10) // last iteration: gid*(7+3)
		} else {
			want = uint32(i + 14) // last iteration: gid+(7+7)
		}
		if vals[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, vals[i], want)
		}
	}
	if res.Counters.DivergentBranches == 0 {
		t.Error("no divergent branches counted")
	}
	// Warp efficiency must be visibly below 1: both paths execute with half
	// the lanes active.
	eff := float64(res.Counters.ThreadInstExecuted) / (float64(res.Counters.InstExecuted) * 32)
	if eff > 0.95 {
		t.Errorf("warp efficiency %.2f too high for divergent kernel", eff)
	}
	if eff < 0.3 {
		t.Errorf("warp efficiency %.2f implausibly low", eff)
	}
}

// buildLoopSum: out[i] = sum of 0..i-1 via a data-dependent loop bound.
func buildLoopSum() *kernel.Program {
	b := kernel.NewBuilder("loopsum")
	out := b.Param(0)
	gid := b.GlobalIDX()
	acc := b.MovImm(0)
	i := b.For(0, gid, 1)
	v := b.IAdd(acc, i)
	b.MovTo(acc, v)
	b.EndFor()
	addr := b.IMad(gid, b.MovImm(4), out)
	b.Stg(addr, acc, 0, 4)
	b.Exit()
	return b.MustBuild()
}

func TestLoopWithDivergentTripCounts(t *testing.T) {
	d := NewDevice(testSpec())
	const n = 64
	out := d.Alloc(n * 4)
	l := &kernel.Launch{
		Program: buildLoopSum(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: n},
		Params:  []uint64{out},
	}
	d.MustLaunch(l)
	vals := d.Storage.ReadU32Slice(out, n)
	for i := 0; i < n; i++ {
		want := uint32(i * (i - 1) / 2)
		if vals[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, vals[i], want)
		}
	}
}

// buildReduction: block-wide shared-memory tree reduction with barriers.
func buildReduction() *kernel.Program {
	b := kernel.NewBuilder("reduce")
	in := b.Param(0)
	out := b.Param(1)
	sh := b.DeclShared(256 * 4)
	tid := b.S2R(isa.SRTidX)
	gid := b.GlobalIDX()
	four := b.MovImm(4)
	v := b.Ldg(b.IMad(gid, four, in), 0, 4)
	shAddr := b.IMad(tid, four, b.MovImm(sh))
	b.Sts(shAddr, v, 0, 4)
	b.Bar()
	for stride := 128; stride >= 1; stride /= 2 {
		p := b.ISetpImm(isa.CmpLT, tid, int64(stride))
		b.If(p)
		other := b.Lds(shAddr, int64(stride*4), 4)
		mine := b.Lds(shAddr, 0, 4)
		sum := b.IAdd(mine, other)
		b.Sts(shAddr, sum, 0, 4)
		b.EndIf()
		b.Bar()
	}
	p0 := b.ISetpImm(isa.CmpEQ, tid, 0)
	b.If(p0)
	total := b.Lds(shAddr, 0, 4)
	cta := b.S2R(isa.SRCtaIDX)
	b.Stg(b.IMad(cta, four, out), total, 0, 4)
	b.EndIf()
	b.Exit()
	return b.MustBuild()
}

func TestSharedMemoryReductionWithBarriers(t *testing.T) {
	d := NewDevice(testSpec())
	const blocks, bs = 4, 256
	in := d.Alloc(blocks * bs * 4)
	out := d.Alloc(blocks * 4)
	host := make([]uint32, blocks*bs)
	for i := range host {
		host[i] = uint32(i % 17)
	}
	d.Storage.WriteU32Slice(in, host)
	l := &kernel.Launch{
		Program: buildReduction(),
		Grid:    kernel.Dim3{X: blocks},
		Block:   kernel.Dim3{X: bs},
		Params:  []uint64{in, out},
	}
	res := d.MustLaunch(l)
	got := d.Storage.ReadU32Slice(out, blocks)
	for blk := 0; blk < blocks; blk++ {
		var want uint32
		for i := 0; i < bs; i++ {
			want += host[blk*bs+i]
		}
		if got[blk] != want {
			t.Fatalf("block %d sum = %d, want %d", blk, got[blk], want)
		}
	}
	if res.Counters.WarpStateCycles[sm.StateBarrier] == 0 {
		t.Error("no barrier stall cycles recorded")
	}
	if res.Counters.SharedLoads == 0 || res.Counters.SharedStores == 0 {
		t.Error("shared memory traffic not counted")
	}
}

// buildConflicted: shared-memory accesses with a 32-word stride so all lanes
// hit the same bank.
func buildConflicted() *kernel.Program {
	b := kernel.NewBuilder("conflict")
	sh := b.DeclShared(32 * 32 * 4 * 2)
	tid := b.S2R(isa.SRTidX)
	// addr = sh + tid*32*4 : every lane maps to bank 0.
	addr := b.IMad(tid, b.MovImm(128), b.MovImm(sh))
	b.Sts(addr, tid, 0, 4)
	v := b.Lds(addr, 0, 4)
	b.Sts(addr, v, 4, 4)
	b.Exit()
	return b.MustBuild()
}

func TestSharedBankConflictsCounted(t *testing.T) {
	d := NewDevice(testSpec())
	l := &kernel.Launch{
		Program: buildConflicted(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 32},
		Params:  nil,
	}
	res := d.MustLaunch(l)
	if res.Counters.SharedBankConflicts == 0 {
		t.Error("stride-32 shared accesses produced no bank conflicts")
	}
	if res.Counters.InstIssued <= res.Counters.InstExecuted {
		t.Error("bank-conflict replays did not raise issued above executed")
	}
}

// buildAtomicCount: every thread atomically increments a global counter.
func buildAtomicCount() *kernel.Program {
	b := kernel.NewBuilder("atomic")
	ctr := b.Param(0)
	one := b.MovImm(1)
	old := b.Atom(isa.AtomAdd, ctr, one, 0)
	_ = old
	b.Exit()
	return b.MustBuild()
}

func TestAtomicsSerialiseAndSum(t *testing.T) {
	d := NewDevice(testSpec())
	ctr := d.Alloc(4)
	d.Storage.Write(ctr, 0, 4)
	const total = 512
	l := &kernel.Launch{
		Program: buildAtomicCount(),
		Grid:    kernel.Dim3{X: 4},
		Block:   kernel.Dim3{X: 128},
		Params:  []uint64{ctr},
	}
	res := d.MustLaunch(l)
	if got := uint32(d.Storage.Read(ctr, 4)); got != total {
		t.Errorf("atomic counter = %d, want %d", got, total)
	}
	if res.Counters.Atomics == 0 {
		t.Error("atomics not counted")
	}
}

func TestPartialWarpAndExitGuard(t *testing.T) {
	d := NewDevice(testSpec())
	const n = 50 // 2 warps, second partial (18 lanes)
	xs := d.Alloc(64 * 4)
	ys := d.Alloc(64 * 4)
	d.Storage.WriteF32Slice(xs, make([]float32, 64))
	d.Storage.WriteF32Slice(ys, make([]float32, 64))
	l := &kernel.Launch{
		Program: buildSaxpy(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 64},
		Params:  []uint64{xs, ys, n, uint64(float32bits(1))},
	}
	res := d.MustLaunch(l)
	if res.Counters.WarpsLaunched != 2 {
		t.Errorf("warps launched = %d, want 2", res.Counters.WarpsLaunched)
	}
	// Threads 50..63 must exit via the guard without storing.
	if res.Counters.GlobalStores == 0 {
		t.Error("no stores recorded")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() sm.Counters {
		d := NewDevice(testSpec())
		const n = 2048
		xs := d.Alloc(n * 4)
		ys := d.Alloc(n * 4)
		xh := make([]float32, n)
		for i := range xh {
			xh[i] = float32(i%31) * 0.5
		}
		d.Storage.WriteF32Slice(xs, xh)
		d.Storage.WriteF32Slice(ys, xh)
		l := &kernel.Launch{
			Program: buildSaxpy(),
			Grid:    kernel.Dim3{X: n / 128},
			Block:   kernel.Dim3{X: 128},
			Params:  []uint64{xs, ys, n, uint64(float32bits(2))},
		}
		return d.MustLaunch(l).Counters
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestInDeviceReplayAfterFlush(t *testing.T) {
	// The CUPTI replay pattern: same kernel twice on one device with a cache
	// flush and counter reset in between must produce identical counters.
	d := NewDevice(testSpec())
	const n = 2048
	xs := d.Alloc(n * 4)
	ys := d.Alloc(n * 4)
	d.Storage.WriteF32Slice(xs, make([]float32, n))
	d.Storage.WriteF32Slice(ys, make([]float32, n))
	l := &kernel.Launch{
		Program: buildSaxpy(),
		Grid:    kernel.Dim3{X: n / 128},
		Block:   kernel.Dim3{X: 128},
		Params:  []uint64{xs, ys, n, uint64(float32bits(0))}, // a=0 keeps y stable
	}
	d.FlushCaches()
	r1 := d.MustLaunch(l)
	d.FlushCaches()
	r2 := d.MustLaunch(l)
	if r1.Counters != r2.Counters {
		t.Errorf("replay after flush diverged:\n%+v\n%+v", r1.Counters, r2.Counters)
	}
	if r1.Cycles != r2.Cycles {
		t.Errorf("replay cycles %d != %d", r1.Cycles, r2.Cycles)
	}
}

// buildStrided loads with a 128-byte stride (one sector per lane).
func buildStrided() *kernel.Program {
	b := kernel.NewBuilder("strided")
	in := b.Param(0)
	out := b.Param(1)
	gid := b.GlobalIDX()
	addr := b.IMad(gid, b.MovImm(128), in)
	v := b.Ldg(addr, 0, 4)
	oaddr := b.IMad(gid, b.MovImm(4), out)
	b.Stg(oaddr, v, 0, 4)
	b.Exit()
	return b.MustBuild()
}

func TestUncoalescedLoadsReplay(t *testing.T) {
	d := NewDevice(testSpec())
	const n = 256
	in := d.Alloc(n * 128)
	out := d.Alloc(n * 4)
	l := &kernel.Launch{
		Program: buildStrided(),
		Grid:    kernel.Dim3{X: 2},
		Block:   kernel.Dim3{X: 128},
		Params:  []uint64{in, out},
	}
	res := d.MustLaunch(l)
	if res.Counters.InstIssued <= res.Counters.InstExecuted {
		t.Error("32-sector loads did not produce replays")
	}
	perLoad := float64(res.Counters.LoadSectors) / float64(res.Counters.GlobalLoads)
	if perLoad < 16 {
		t.Errorf("sectors per strided load = %.1f, want ~32", perLoad)
	}
}

func TestConstantPathAndParams(t *testing.T) {
	d := NewDevice(testSpec())
	// Params are read through LDC, so every kernel exercises the IMC.
	out := d.Alloc(4 * 32)
	l := &kernel.Launch{
		Program: buildAtomicCount(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 32},
		Params:  []uint64{out},
	}
	d.Storage.Write(out, 0, 4)
	res := d.MustLaunch(l)
	if res.Counters.ConstLoads == 0 {
		t.Error("param reads did not reach the constant path")
	}
	if res.Counters.IMCMisses == 0 {
		t.Error("cold IMC produced no misses")
	}
}

func TestOccupancyLimitsRespected(t *testing.T) {
	spec := testSpec()
	d := NewDevice(spec)
	// A block using all shared memory: only one resident per SM at a time.
	b := kernel.NewBuilder("shared_hog")
	sh := b.DeclShared(spec.SharedMemPerSM)
	tid := b.S2R(isa.SRTidX)
	addr := b.IMad(tid, b.MovImm(4), b.MovImm(sh))
	b.Sts(addr, tid, 0, 4)
	b.Exit()
	prog := b.MustBuild()
	l := &kernel.Launch{
		Program: prog,
		Grid:    kernel.Dim3{X: 6},
		Block:   kernel.Dim3{X: 64},
	}
	res := d.MustLaunch(l)
	if res.Counters.BlocksLaunched != 6 {
		t.Errorf("blocks launched = %d", res.Counters.BlocksLaunched)
	}
	// With 2 SMs and 1 block resident per SM, at least 3 dispatch rounds:
	// runtime must exceed 2x a single-wave run.
	if res.Cycles < 100 {
		t.Errorf("suspiciously fast shared-hog run: %d cycles", res.Cycles)
	}
}

func TestLocalMemoryRoundtrip(t *testing.T) {
	d := NewDevice(testSpec())
	b := kernel.NewBuilder("localrt")
	b.DeclLocal(64)
	out := b.Param(0)
	gid := b.GlobalIDX()
	zero := b.MovImm(0)
	b.Stl(zero, gid, 0, 4)
	b.Stl(zero, b.IAddImm(gid, 100), 4, 4)
	v0 := b.Ldl(zero, 0, 4)
	v1 := b.Ldl(zero, 4, 4)
	sum := b.IAdd(v0, v1)
	b.Stg(b.IMad(gid, b.MovImm(4), out), sum, 0, 4)
	b.Exit()
	prog := b.MustBuild()
	const n = 128
	out0 := d.Alloc(n * 4)
	l := &kernel.Launch{
		Program: prog,
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: n},
		Params:  []uint64{out0},
	}
	d.MustLaunch(l)
	got := d.Storage.ReadU32Slice(out0, n)
	for i := range got {
		if got[i] != uint32(2*i+100) {
			t.Fatalf("local roundtrip out[%d] = %d, want %d", i, got[i], 2*i+100)
		}
	}
}

func TestNanosleepCountsSleeping(t *testing.T) {
	d := NewDevice(testSpec())
	b := kernel.NewBuilder("sleepy")
	b.Nanosleep(200)
	b.Exit()
	l := &kernel.Launch{Program: b.MustBuild(), Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 32}}
	res := d.MustLaunch(l)
	if res.Counters.WarpStateCycles[sm.StateSleeping] < 150 {
		t.Errorf("sleeping cycles = %d, want >= 150", res.Counters.WarpStateCycles[sm.StateSleeping])
	}
}

func TestMembarWaitsForStores(t *testing.T) {
	d := NewDevice(testSpec())
	b := kernel.NewBuilder("membar")
	out := b.Param(0)
	gid := b.GlobalIDX()
	addr := b.IMad(gid, b.MovImm(4), out)
	b.Stg(addr, gid, 0, 4)
	b.Membar()
	v := b.Ldg(addr, 0, 4)
	b.Stg(addr, b.IAddImm(v, 1), 0, 4)
	b.Exit()
	out0 := d.Alloc(128 * 4)
	l := &kernel.Launch{Program: b.MustBuild(), Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 128}, Params: []uint64{out0}}
	res := d.MustLaunch(l)
	if res.Counters.WarpStateCycles[sm.StateMembar] == 0 {
		t.Error("membar produced no membar stalls")
	}
	got := d.Storage.ReadU32Slice(out0, 128)
	for i := range got {
		if got[i] != uint32(i+1) {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], i+1)
		}
	}
}

func TestFP64PipeThrottles(t *testing.T) {
	d := NewDevice(testSpec())
	b := kernel.NewBuilder("fp64heavy")
	out := b.Param(0)
	gid := b.GlobalIDX()
	x := b.DConst(1.5)
	acc := b.DConst(0)
	for i := 0; i < 16; i++ {
		nv := b.DFma(acc, x, x)
		b.MovTo(acc, nv)
	}
	b.Stg(b.IMad(gid, b.MovImm(8), out), acc, 0, 8)
	b.Exit()
	out0 := d.Alloc(512 * 8)
	l := &kernel.Launch{Program: b.MustBuild(), Grid: kernel.Dim3{X: 4}, Block: kernel.Dim3{X: 128}, Params: []uint64{out0}}
	res := d.MustLaunch(l)
	if res.Counters.WarpStateCycles[sm.StateMathPipeThrottle] == 0 {
		t.Error("FP64-heavy kernel produced no math-pipe throttling")
	}
}

func TestICacheMissesCounted(t *testing.T) {
	d := NewDevice(testSpec())
	b := kernel.NewBuilder("bigprog")
	out := b.Param(0)
	gid := b.GlobalIDX()
	acc := b.MovImm(0)
	for i := 0; i < 200; i++ {
		v := b.IAddImm(gid, int64(i))
		b.MovTo(acc, v)
	}
	b.Stg(b.IMad(gid, b.MovImm(4), out), acc, 0, 4)
	b.Exit()
	out0 := d.Alloc(64 * 4)
	l := &kernel.Launch{Program: b.MustBuild(), Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 64}, Params: []uint64{out0}}
	res := d.MustLaunch(l)
	if res.Counters.ICacheMisses == 0 {
		t.Error("long program produced no icache misses")
	}
	if res.Counters.WarpStateCycles[sm.StateNoInstruction] == 0 {
		t.Error("no no_instruction stalls recorded")
	}
}

func TestShuffleReduction(t *testing.T) {
	d := NewDevice(testSpec())
	b := kernel.NewBuilder("shfl")
	out := b.Param(0)
	lane := b.S2R(isa.SRLaneID)
	v := b.Mov(lane)
	for delta := 16; delta >= 1; delta /= 2 {
		o := b.ShflXor(v, int64(delta))
		nv := b.IAdd(v, o)
		b.MovTo(v, nv)
	}
	p := b.ISetpImm(isa.CmpEQ, lane, 0)
	b.StgIf(p, false, out, v, 0, 4)
	b.Exit()
	out0 := d.Alloc(4)
	l := &kernel.Launch{Program: b.MustBuild(), Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 32}, Params: []uint64{out0}}
	d.MustLaunch(l)
	if got := uint32(d.Storage.Read(out0, 4)); got != 496 { // sum 0..31
		t.Errorf("warp shuffle reduction = %d, want 496", got)
	}
}

func TestBallotVote(t *testing.T) {
	d := NewDevice(testSpec())
	b := kernel.NewBuilder("ballot")
	out := b.Param(0)
	lane := b.S2R(isa.SRLaneID)
	p := b.ISetpImm(isa.CmpLT, lane, 8)
	mask := b.Ballot(p)
	p0 := b.ISetpImm(isa.CmpEQ, lane, 0)
	b.StgIf(p0, false, out, mask, 0, 8)
	b.Exit()
	out0 := d.Alloc(8)
	l := &kernel.Launch{Program: b.MustBuild(), Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 32}, Params: []uint64{out0}}
	d.MustLaunch(l)
	if got := d.Storage.Read(out0, 8); got != 0xFF {
		t.Errorf("ballot = %#x, want 0xff", got)
	}
}

func TestLaunchValidation(t *testing.T) {
	d := NewDevice(testSpec())
	if _, err := d.Launch(&kernel.Launch{}); err == nil {
		t.Error("empty launch accepted")
	}
}

func TestRunResultSeconds(t *testing.T) {
	spec := testSpec()
	r := &RunResult{Cycles: uint64(spec.ClockMHz) * 1e6}
	if got := r.Seconds(spec); got < 0.999 || got > 1.001 {
		t.Errorf("Seconds = %g, want 1.0", got)
	}
}

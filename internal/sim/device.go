// Package sim assembles a whole GPU device from the substrate packages: the
// SMs (internal/sm), the shared L2 and DRAM (internal/mem), device global
// memory, the constant bank, and the block dispatcher that streams a grid's
// thread blocks onto SMs as residency limits allow — the GigaThread engine's
// job on real hardware.
//
// A Device is deterministic: launching the same kernel on the same state
// yields bit-identical counters, which is what makes multi-pass profiler
// replay (internal/cupti) meaningful.
package sim

import (
	"context"
	"fmt"
	"time"

	"gputopdown/internal/gpu"
	"gputopdown/internal/kernel"
	"gputopdown/internal/mem"
	"gputopdown/internal/obs"
	"gputopdown/internal/sm"
)

// DefaultMemBytes is the simulated global-memory size. The paper's GPUs have
// 8 GB; workloads here are scaled to fit comfortably in a small host
// allocation.
const DefaultMemBytes = 64 << 20

// maxLaunchCycles guards against non-terminating kernels.
const maxLaunchCycles = 10_000_000

// residencySampleCycles is the stride, in simulated cycles, at which per-SM
// block-residency counter samples are emitted onto the trace's simulated-time
// track while tracing is enabled.
const residencySampleCycles = 256

// checkStride is the guard-cycle stride between in-loop invariant sweeps when
// a Checker is attached. A sweep walks every SM and L2 slice, so running it
// literally every epoch would dominate the launch; every checkStride guard
// cycles still catches a violated conservation law within one stride of its
// introduction, and CheckLaunch always runs on the final state.
const checkStride = 1024

// Checker receives in-loop invariant hooks. It is an interface defined here
// (rather than importing internal/check) so the simulation loop stays free of
// upward dependencies; internal/check.Invariants implements it. Both methods
// may be called from the launch goroutine of any device — including the
// cloned devices of concurrent replay — so implementations must be
// goroutine-safe.
type Checker interface {
	// CheckEpoch runs mid-launch on the live device state, every checkStride
	// guard cycles. The device is quiescent between epochs when this runs.
	CheckEpoch(d *Device, guard uint64)
	// CheckLaunch runs once per completed launch on the assembled result.
	CheckLaunch(d *Device, res *RunResult)
}

// Device is one simulated GPU.
type Device struct {
	Spec    *gpu.Spec
	Storage *mem.Storage
	Const   *mem.ConstantBank
	Mem     *mem.MemSys // address-sliced L2 banks + per-slice DRAM channels
	SMs     []*sm.SM

	launches      uint64
	traceInterval uint64

	// simWorkers is the intra-launch parallelism degree: 1 (default) runs the
	// sequential engine; >1 shards SM ticks and L2-slice drains across an
	// epoch-lockstep worker pool (see parallel.go). Results are bit-identical
	// at every setting.
	simWorkers int

	// fastForward enables the event-driven engine: when every busy SM
	// reports a wakeup bound past the current cycle, Launch jumps all SM
	// clocks to the device-wide minimum and bulk-accounts the skipped
	// cycles (see sm.SM.NextWakeup/AdvanceTo). Results are bit-identical
	// either way; only host wall-clock changes. On by default.
	fastForward bool
	// adaptiveFF enables per-SM adaptive fast-forward hysteresis: SMs stop
	// maintaining wakeup bookkeeping while they issue every cycle and re-arm
	// on the first idle subpartition (see sm.SM.SetAdaptiveFF). On by
	// default; host-side only.
	adaptiveFF bool
	// lastTicks counts the simulation-loop iterations of the most recent
	// launch; with fast-forward on, Cycles - lastTicks cycles were skipped.
	lastTicks uint64

	// checker, when non-nil, receives stride-gated in-loop invariant sweeps
	// and a per-launch final check (see Checker). checkNext is the guard
	// cycle of the next due sweep. Nil checker costs one pointer compare per
	// loop iteration and allocates nothing.
	checker   Checker
	checkNext uint64

	// Observability (nil/disabled by default; see SetObserver). The metric
	// handles are pre-created so the launch hot path only performs nil-safe
	// method calls — zero allocations when observability is off.
	tracer      *obs.Tracer
	obsOn       bool
	simCursorUS float64  // simulated-time cursor for the PIDSim track
	smTracks    []string // precomputed per-SM counter-track names
	mLaunches   *obs.Counter
	mBlocks     *obs.Counter
	mCycles     *obs.Counter
	mWall       *obs.Counter
	gThroughput *obs.Gauge
	// log is the component-scoped ("sim") structured logger; nil when
	// logging is disabled (see SetLogger).
	log *obs.Logger

	// Per-launch scratch reused across launches so the Launch prologue
	// allocates nothing: pre-launch counter snapshots, which SMs received a
	// block, and the dispatch dirty flags.
	launchBefore   []sm.Counters
	launchUsed     []bool
	launchRejected []uint64
	dueScratch     []*sm.SM
}

// NewDevice builds a device with the default memory size.
func NewDevice(spec *gpu.Spec) *Device {
	return NewDeviceMem(spec, DefaultMemBytes)
}

// NewDeviceMem builds a device with an explicit global-memory size in bytes.
func NewDeviceMem(spec *gpu.Spec, memBytes int) *Device {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	return assemble(spec, mem.NewStorage(memBytes), mem.NewConstantBank(spec.ConstBankSize))
}

// assemble wires SMs and the sliced memory system around the given substrate.
func assemble(spec *gpu.Spec, storage *mem.Storage, constBank *mem.ConstantBank) *Device {
	d := &Device{
		Spec:           spec,
		Storage:        storage,
		Const:          constBank,
		Mem:            mem.NewMemSys(spec),
		fastForward:    true,
		adaptiveFF:     true,
		simWorkers:     1,
		launchBefore:   make([]sm.Counters, spec.SMs),
		launchUsed:     make([]bool, spec.SMs),
		launchRejected: make([]uint64, spec.SMs),
		dueScratch:     make([]*sm.SM, 0, spec.SMs),
	}
	for i := 0; i < spec.SMs; i++ {
		d.SMs = append(d.SMs, sm.New(spec, i, d.Mem, d.Storage, d.Const))
	}
	return d
}

// Clone builds an independent device with the same spec and byte-identical
// global and constant memory, but fresh (idle, cold-cache, cycle-zero) SMs,
// L2 and DRAM. Because the profiler flushes all caches and resets SM clocks
// before every replay pass anyway, a launch on a clone is bit-identical to a
// launch on the original after a Storage.Restore — the property the
// concurrent replay engine (internal/cupti) relies on to fan passes out
// across devices. Clone requires the device to be idle and does not carry
// over observers; attach them explicitly if wanted.
func (d *Device) Clone() *Device {
	for i, s := range d.SMs {
		if s.Busy() {
			panic(fmt.Sprintf("sim: Clone of device with busy SM %d", i))
		}
	}
	c := assemble(d.Spec, d.Storage.Clone(), d.Const.Clone())
	c.traceInterval = d.traceInterval
	c.fastForward = d.fastForward
	c.simWorkers = d.simWorkers
	c.SetAdaptiveFastForward(d.adaptiveFF)
	return c
}

// SetSimWorkers sets the intra-launch parallelism degree, clamped to
// [1, maxSimWorkers]. 1 selects the sequential engine. Results are
// bit-identical at every setting; only host wall-clock changes. The device
// deliberately does not clamp to GOMAXPROCS — correctness never depends on
// worker count, so tests can exercise the parallel engine on any host. The
// root API option (WithSimWorkers) applies the GOMAXPROCS budget clamp.
func (d *Device) SetSimWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > maxSimWorkers {
		n = maxSimWorkers
	}
	d.simWorkers = n
}

// maxSimWorkers bounds the worker pool; beyond the SM count extra workers
// idle anyway, and no real part exceeds this.
const maxSimWorkers = 256

// SimWorkers returns the current intra-launch parallelism degree.
func (d *Device) SimWorkers() int { return d.simWorkers }

// SetFastForward toggles the event-driven fast-forward engine. It exists
// as an escape hatch and as the baseline side of the cross-engine
// equivalence tests; production code should leave it on.
func (d *Device) SetFastForward(on bool) { d.fastForward = on }

// FastForwardEnabled reports whether the fast-forward engine is active.
func (d *Device) FastForwardEnabled() bool { return d.fastForward }

// SetAdaptiveFastForward toggles the per-SM adaptive fast-forward
// hysteresis on every SM. Results are bit-identical either way; the knob
// exists for benchmarking the always-tracking (PR3) engine.
func (d *Device) SetAdaptiveFastForward(on bool) {
	d.adaptiveFF = on
	for _, s := range d.SMs {
		s.SetAdaptiveFF(on)
	}
}

// AdaptiveFastForwardEnabled reports whether adaptive hysteresis is active.
func (d *Device) AdaptiveFastForwardEnabled() bool { return d.adaptiveFF }

// LastLaunchTicks returns how many per-cycle loop iterations the most
// recent launch actually executed. The difference to the launch's Cycles is
// the number of bulk-skipped cycles — the fast-forward engine's win.
func (d *Device) LastLaunchTicks() uint64 { return d.lastTicks }

// SyncState re-synchronises a clone's global and constant memory to src's
// current state (watermark included), so a pool of cloned devices can be
// reused across kernel invocations whose allocations differ.
func (d *Device) SyncState(src *Device) {
	d.Storage.CopyFrom(src.Storage)
	d.Const.CopyFrom(src.Const)
}

// Alloc reserves device global memory.
func (d *Device) Alloc(n int) uint64 { return d.Storage.Alloc(n) }

// FreeAll releases all global-memory allocations (between applications).
func (d *Device) FreeAll() { d.Storage.FreeAll() }

// FlushCaches invalidates every cache on the device — what the profiler does
// between replay passes so each pass observes cold-start conditions.
func (d *Device) FlushCaches() {
	d.Mem.FlushL2()
	for _, s := range d.SMs {
		s.FlushCaches()
	}
}

// EnableTrace makes every subsequent launch record an intra-kernel timeline:
// one device-aggregated counter delta per interval cycles. Pass 0 to
// disable. This is a simulator-side extension (real PMUs would need PM
// sampling support); the Top-Down analyzer consumes the samples unchanged.
func (d *Device) EnableTrace(interval uint64) {
	d.traceInterval = interval
}

// DisableTrace stops intra-kernel timeline recording: subsequent launches
// record no Trace samples. Symmetric to EnableTrace (equivalent to
// EnableTrace(0)); the per-SM sample buffers are cleared at the next launch.
func (d *Device) DisableTrace() {
	d.traceInterval = 0
}

// SetObserver attaches an execution tracer and a metrics registry to the
// device. Either may be nil; passing both nil detaches observability
// entirely and restores the zero-overhead launch path. Metric handles are
// created once here so per-launch accounting is allocation-free.
func (d *Device) SetObserver(tr *obs.Tracer, reg *obs.Registry) {
	d.tracer = tr
	d.obsOn = tr != nil || reg != nil
	// A nil registry detaches the metric handles, exactly as a nil tracer
	// detaches the trace path; the launch epilogue's handle calls are
	// nil-safe, so tracer-only observers pay no metrics cost.
	d.mLaunches, d.mBlocks, d.mCycles, d.mWall, d.gThroughput = nil, nil, nil, nil, nil
	if reg != nil {
		d.mLaunches = reg.Counter("sim_launches_total",
			"Kernel launches executed on the simulated device.", nil)
		d.mBlocks = reg.Counter("sim_blocks_dispatched_total",
			"Thread blocks dispatched to SMs by the GigaThread engine model.", nil)
		d.mCycles = reg.Counter("sim_cycles_total",
			"Simulated device cycles executed across all launches.", nil)
		d.mWall = reg.Counter("sim_wall_seconds_total",
			"Host wall-clock seconds spent simulating kernel launches.", nil)
		d.gThroughput = reg.Gauge("sim_throughput_cycles_per_second",
			"Simulation speed: simulated cycles per wall-clock second.", nil)
	}
	if tr != nil {
		tr.NameProcess(obs.PIDProfiler, "profiler (wall clock)")
		tr.NameProcess(obs.PIDSim, "simulated GPU ("+d.Spec.Name+")")
		d.smTracks = make([]string, len(d.SMs))
		for i := range d.SMs {
			d.smTracks[i] = fmt.Sprintf("SM%d resident blocks", i)
		}
	}
}

// Tracer returns the attached tracer (nil when detached).
func (d *Device) Tracer() *obs.Tracer { return d.tracer }

// SetChecker attaches an in-loop invariant checker (nil detaches). The
// checker observes, never mutates: results are bit-identical with and
// without one, and the nil path stays allocation-free.
func (d *Device) SetChecker(c Checker) { d.checker = c }

// CheckerAttached reports whether an invariant checker is attached.
func (d *Device) CheckerAttached() bool { return d.checker != nil }

// SetLogger attaches a structured logger; launch summaries and fast-forward
// accounting are logged at debug level under component "sim". Nil detaches
// and restores the zero-cost path.
func (d *Device) SetLogger(l *obs.Logger) { d.log = l.Component("sim") }

// ResetCounters zeroes every SM's counters.
func (d *Device) ResetCounters() {
	for _, s := range d.SMs {
		s.ResetCounters()
	}
}

// Counters returns the device-wide aggregate of all SM counters.
func (d *Device) Counters() sm.Counters {
	var total sm.Counters
	for _, s := range d.SMs {
		c := s.Counters()
		total.Add(&c)
	}
	return total
}

// RunResult describes one kernel launch.
type RunResult struct {
	Kernel string
	// Cycles is the launch's duration: the max cycle count over SMs.
	Cycles uint64
	// Counters is the device-wide aggregate delta for this launch.
	Counters sm.Counters
	// PerSM holds each SM's counter delta (index = SM id), for HWPM-style
	// collection that observes a subset of SMs.
	PerSM []sm.Counters
	// SMsUsed is how many SMs received at least one block.
	SMsUsed int
	// Blocks is the grid size.
	Blocks int
	// Trace holds per-interval device-aggregated counter deltas when
	// tracing was enabled (see Device.EnableTrace), oldest first.
	Trace []sm.Counters
}

// Seconds converts the launch duration to wall-clock time on the device.
func (r *RunResult) Seconds(spec *gpu.Spec) float64 {
	return float64(r.Cycles) / (float64(spec.ClockMHz) * 1e6)
}

func ctaidOf(linear int, grid kernel.Dim3) [3]int64 {
	g := grid.Norm()
	return [3]int64{
		int64(linear % g.X),
		int64((linear / g.X) % g.Y),
		int64(linear / (g.X * g.Y)),
	}
}

// Launch executes one kernel to completion and returns its result. It is
// LaunchCtx with a background context.
func (d *Device) Launch(l *kernel.Launch) (*RunResult, error) {
	return d.LaunchCtx(context.Background(), l)
}

// ctxCheckInterval is how many simulation-loop iterations pass between
// cooperative cancellation checks in LaunchCtx. Each iteration covers at
// least one SM tick (or a fast-forward jump), so cancellation lands within a
// small fraction of a kernel — far inside the "~1 replay pass" bound the
// profiling service promises.
const ctxCheckInterval = 256

// LaunchCtx is Launch with cooperative cancellation: ctx is consulted every
// ctxCheckInterval simulation-loop iterations — which includes every
// fast-forward wakeup boundary, since a jump ends the iteration that took it.
// On cancellation the SMs are rebuilt to the idle state (ResetSMs), global
// and constant memory keep whatever intermediate values the aborted kernel
// wrote, and the returned error wraps ctx.Err. A background (or never
// cancelled) context pays one nil check per iteration.
func (d *Device) LaunchCtx(ctx context.Context, l *kernel.Launch) (*RunResult, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	done := ctx.Done()
	if done != nil {
		select {
		case <-done:
			return nil, fmt.Errorf("sim: kernel %s not launched: %w", l.Program.Name, ctx.Err())
		default:
		}
	}
	d.launches++

	// Observability prologue: capture wall-clock and trace-clock starts.
	// Guarded so the disabled path allocates nothing and costs ~one branch.
	var wallStart time.Time
	var spanStart float64
	if d.obsOn {
		wallStart = time.Now()
		spanStart = d.tracer.Now()
	}

	markMem, err := d.launchPrologue(l)
	if err != nil {
		return nil, err
	}
	defer d.Storage.Release(markMem)

	nb := l.NumBlocks()
	d.lastTicks = 0
	if d.simWorkers > 1 && len(d.SMs) > 1 {
		err = d.runLoopParallel(ctx, done, l, nb)
	} else {
		err = d.runLoop(ctx, done, l, nb)
	}
	if err != nil {
		return nil, err
	}

	res := &RunResult{Kernel: l.Program.Name, Blocks: nb, PerSM: make([]sm.Counters, len(d.SMs))}
	for i, s := range d.SMs {
		if c := s.Cycle(); c > res.Cycles {
			res.Cycles = c
		}
		delta := s.Counters().Sub(&d.launchBefore[i])
		res.PerSM[i] = delta
		res.Counters.Add(&delta)
		if d.launchUsed[i] {
			res.SMsUsed++
		}
	}
	if d.traceInterval > 0 {
		// Merge per-SM interval samples index-wise; SM clocks run in
		// lockstep from zero, so index i covers the same cycle window on
		// every SM (SMs that finished early just stop contributing).
		for _, s := range d.SMs {
			for i, sample := range s.TraceSamples() {
				for len(res.Trace) <= i {
					res.Trace = append(res.Trace, sm.Counters{})
				}
				res.Trace[i].Add(&sample)
			}
		}
	}

	// A completed launch always gets a final invariant sweep over the
	// assembled result, regardless of where the stride-gated epoch sweeps
	// last ran.
	if d.checker != nil {
		d.checker.CheckLaunch(d, res)
	}

	// Logging epilogue: one debug line per launch summarising the engine's
	// fast-forward decisions (ticks actually executed vs cycles covered).
	if d.log.On(obs.LevelDebug) {
		d.log.Debug("launch complete",
			"kernel", l.Program.Name, "blocks", nb, "sms_used", res.SMsUsed,
			"cycles", res.Cycles, "ticks", d.lastTicks,
			"fast_forward", d.fastForward)
	}

	// Observability epilogue: spans on both time axes plus self-metrics.
	if d.obsOn {
		d.mLaunches.Inc()
		d.mBlocks.Add(float64(nb))
		d.mCycles.Add(float64(res.Cycles))
		d.mWall.Add(time.Since(wallStart).Seconds())
		if wall := d.mWall.Value(); wall > 0 {
			d.gThroughput.Set(d.mCycles.Value() / wall)
		}
		if d.tracer != nil {
			simDur := obs.CyclesToUS(res.Cycles, d.Spec.ClockMHz)
			d.tracer.CompleteAt(obs.PIDSim, 0, "sim", l.Program.Name,
				d.simCursorUS, simDur, map[string]any{
					"blocks": nb, "cycles": res.Cycles, "sms_used": res.SMsUsed,
					"grid": l.Grid.String(), "block": l.Block.String(),
				})
			d.simCursorUS += simDur
			d.tracer.Complete(obs.PIDProfiler, 1, "sim", "launch "+l.Program.Name,
				spanStart, map[string]any{
					"cycles": res.Cycles, "blocks": nb, "sms_used": res.SMsUsed,
				})
		}
	}
	return res, nil
}

// neverRejected marks an SM the dispatcher has not yet seen reject a block.
const neverRejected = ^uint64(0)

// launchPrologue readies the device for one launch: it materialises the
// launch parameters in the constant bank (invalidating the per-SM constant
// caches, as the driver's upload does), carves the per-launch local-memory
// backing, resets SM clocks, snapshots pre-launch counters and arms tracing.
// It returns the storage mark the caller must Release when the kernel
// finishes. All per-launch slices live on the Device and are reused, so the
// prologue performs no heap allocation (see BenchmarkLaunchPrologue).
func (d *Device) launchPrologue(l *kernel.Launch) (markMem uint64, err error) {
	for i, p := range l.Params {
		d.Const.Write(kernel.ParamOffset(i), p, 8)
	}
	for _, s := range d.SMs {
		s.FlushIMC()
	}

	markMem = d.Storage.Mark()
	var localBase uint64
	totalThreads := l.TotalThreads()
	if l.Program.LocalBytes > 0 {
		localBase = d.Storage.Alloc(l.Program.LocalBytes * totalThreads)
	}

	for i, s := range d.SMs {
		if s.Busy() {
			d.Storage.Release(markMem)
			return 0, fmt.Errorf("sim: SM %d busy at launch of %s", i, l.Program.Name)
		}
		s.ResetClock()
		s.SetLaunchContext(localBase, totalThreads)
		d.launchBefore[i] = s.Counters()
		if d.traceInterval > 0 {
			s.EnableTrace(d.traceInterval)
		} else {
			s.DisableTrace()
		}
		d.launchUsed[i] = false
		// Dispatch dirty flags: the residency version at which each SM last
		// rejected a block. CanAccept is a pure function of occupancy, so
		// until the version moves the SM would keep rejecting — skip
		// re-probing it.
		d.launchRejected[i] = neverRejected
	}
	d.Mem.ResetDRAM()
	d.checkNext = 0
	return markMem, nil
}

// dispatchBlocks greedily places pending blocks, round-robin across SMs for
// balance, advancing *next past every block that found a home.
func (d *Device) dispatchBlocks(l *kernel.Launch, nb int, next *int, guard uint64, blockDetail bool) {
	progress := true
	for progress && *next < nb {
		progress = false
		for i, s := range d.SMs {
			if *next >= nb {
				break
			}
			if d.launchRejected[i] == s.ResidencyVersion() {
				continue // occupancy unchanged since last rejection
			}
			if s.CanAccept(l) {
				s.LaunchBlock(l, ctaidOf(*next, l.Grid), *next)
				if blockDetail {
					d.tracer.Instant(obs.PIDSim, i, "dispatch", "block",
						d.simCursorUS+obs.CyclesToUS(guard, d.Spec.ClockMHz),
						map[string]any{"block": *next, "sm": i})
				}
				d.launchUsed[i] = true
				*next++
				progress = true
			} else {
				d.launchRejected[i] = s.ResidencyVersion()
			}
		}
	}
}

// sampleResidencyTrack emits per-SM block-residency samples onto the trace's
// simulated-time track.
func (d *Device) sampleResidencyTrack(guard uint64) {
	ts := d.simCursorUS + obs.CyclesToUS(guard, d.Spec.ClockMHz)
	for i, s := range d.SMs {
		d.tracer.CounterValue(obs.PIDSim, i, d.smTracks[i], "blocks",
			ts, float64(s.ResidentBlocks()))
	}
}

// runLoop is the sequential simulation loop: one goroutine ticks every SM in
// id order, applying shared-memory traffic inline.
func (d *Device) runLoop(ctx context.Context, done <-chan struct{}, l *kernel.Launch, nb int) error {
	next := 0
	var guard uint64
	blockDetail := d.tracer.BlockDetail()
	// Residency samples ride the trace's simulated-time track; emit them
	// only when tracing is actually enabled, not merely when a tracer is
	// attached.
	sampleResidency := d.tracer != nil && d.traceInterval > 0

	var loopIters uint64
	for {
		if done != nil {
			if loopIters%ctxCheckInterval == 0 {
				select {
				case <-done:
					// Leave the device reusable: the aborted kernel's blocks
					// are still resident, so rebuild the SMs to idle.
					d.ResetSMs()
					return fmt.Errorf("sim: kernel %s cancelled after %d cycles: %w",
						l.Program.Name, guard, ctx.Err())
				default:
				}
			}
			loopIters++
		}

		d.dispatchBlocks(l, nb, &next, guard, blockDetail)

		if sampleResidency && guard%residencySampleCycles == 0 {
			d.sampleResidencyTrack(guard)
		}

		// Tick every busy SM whose clock has caught up with the device
		// cycle. Under fast-forward, an SM whose tick came back quiescent
		// (NextWakeup past its clock) is parked: its idle span is
		// bulk-accounted immediately and the SM is left with its clock in
		// the future, to be ticked again only when guard reaches it. This
		// is safe out of lockstep because a quiescent tick mutates neither
		// the SM nor the shared L2/DRAM — the naive loop's interleaving
		// performs the same shared-state mutation sequence. minNext tracks
		// the earliest cycle at which any busy SM must tick again.
		busy := false
		minNext := ^uint64(0)
		for _, s := range d.SMs {
			if !s.Busy() {
				continue
			}
			busy = true
			c := s.Cycle()
			if c <= guard {
				s.Tick()
				d.lastTicks++
				c = s.Cycle()
				if d.fastForward {
					if w := s.NextWakeup(); w > c {
						// Cap runaway bounds (a deadlocked SM reports
						// neverWake) so the cycle guard below still trips.
						if w > maxLaunchCycles+2 {
							w = maxLaunchCycles + 2
						}
						s.AdvanceTo(w)
						c = w
					}
				}
			}
			if c < minNext {
				minNext = c
			}
		}
		if !busy {
			if next >= nb {
				return nil
			}
			return fmt.Errorf("sim: kernel %s wedged with %d blocks undispatched", l.Program.Name, nb-next)
		}
		if d.checker != nil && guard >= d.checkNext {
			d.checkNext = guard + checkStride
			d.checker.CheckEpoch(d, guard)
		}
		guard++
		// When every busy SM is parked in the future, jump the device
		// cycle straight to the earliest of their wakeups — capped at the
		// next residency-sampling boundary so no sample is skipped.
		// Dispatch needs no extra cap: a parked SM's occupancy is frozen
		// (reaps happen only in ticks), so no pending block could have
		// dispatched during the jumped span.
		if d.fastForward && minNext > guard {
			target := minNext
			if sampleResidency {
				if b := (guard + residencySampleCycles - 1) / residencySampleCycles * residencySampleCycles; b < target {
					target = b
				}
			}
			if target > guard {
				guard = target
			}
		}
		if guard > maxLaunchCycles {
			return fmt.Errorf("sim: kernel %s exceeded %d cycles (non-terminating?)", l.Program.Name, uint64(maxLaunchCycles))
		}
	}
}

// ResetSMs rebuilds every SM from scratch — idle, cycle zero, cold caches,
// zeroed counters — and resets the shared L2 and DRAM. Global and constant
// memory are preserved. This is the recovery path after a kernel panicked or
// was cancelled mid-launch, when SMs may be left busy with resident blocks
// that will never retire; the profiling middleware calls it before converting
// the failure into a KernelError so the device can keep serving the
// application's remaining kernels.
func (d *Device) ResetSMs() {
	for i := range d.SMs {
		d.SMs[i] = sm.New(d.Spec, i, d.Mem, d.Storage, d.Const)
		d.SMs[i].SetAdaptiveFF(d.adaptiveFF)
	}
	d.Mem.FlushL2()
	d.Mem.ResetDRAM()
}

// MustLaunch is Launch that panics on error, for tests and examples.
func (d *Device) MustLaunch(l *kernel.Launch) *RunResult {
	r, err := d.Launch(l)
	if err != nil {
		panic(err)
	}
	return r
}

package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
	"gputopdown/internal/sm"
)

// genProgram builds a random but well-formed, terminating kernel: bounded
// structured control flow, arithmetic over live registers, and memory
// accesses confined to a scratch buffer indexed by (gid mod bufN).
func genProgram(rng *rand.Rand, name string, bufN int64) *kernel.Program {
	b := kernel.NewBuilder(name)
	buf := b.Param(0)
	gid := b.GlobalIDX()
	idx := b.AndImm(gid, bufN-1) // bufN is a power of two
	addr := b.IMad(idx, b.MovImm(4), buf)
	live := []isa.Reg{gid, idx, b.MovImm(int64(rng.Intn(100)))}
	pick := func() isa.Reg { return live[rng.Intn(len(live))] }

	depth := 0
	n := 10 + rng.Intn(40)
	for i := 0; i < n; i++ {
		switch op := rng.Intn(12); {
		case op < 4: // arithmetic
			switch rng.Intn(4) {
			case 0:
				live = append(live, b.IAdd(pick(), pick()))
			case 1:
				live = append(live, b.IMulImm(pick(), int64(1+rng.Intn(7))))
			case 2:
				live = append(live, b.Xor(pick(), pick()))
			case 3:
				live = append(live, b.IMad(pick(), pick(), pick()))
			}
		case op < 6: // float
			f := b.I2F(pick())
			live = append(live, b.FFma(f, b.FConst(rng.Float32()), f))
		case op == 6: // load
			live = append(live, b.Ldg(addr, 0, 4))
		case op == 7: // store
			b.Stg(addr, pick(), 0, 4)
		case op == 8 && depth < 2: // if region
			p := b.ISetpImm(isa.CmpGT, b.AndImm(pick(), 3), int64(rng.Intn(3)))
			b.If(p)
			live = append(live, b.IAddImm(pick(), 1))
			if rng.Intn(2) == 0 {
				b.Else()
				live = append(live, b.IAddImm(pick(), 2))
			}
			b.EndIf()
		case op == 9 && depth == 0: // bounded loop
			i := b.ForImm(0, int64(1+rng.Intn(6)), 1)
			live = append(live, b.IAdd(i, pick()))
			b.EndFor()
		case op == 10:
			live = append(live, b.Mufu(isa.MufuFunc(rng.Intn(7)), b.I2F(pick())))
		default:
			live = append(live, b.IAddImm(pick(), int64(rng.Intn(9))))
		}
		if len(live) > 24 {
			live = live[len(live)-12:]
		}
	}
	b.Stg(addr, pick(), 0, 4)
	b.Exit()
	return b.MustBuild()
}

// TestFuzzDeterminism runs randomly generated kernels twice on fresh devices
// and demands bit-identical counters — the core soundness property behind
// multi-pass profiler replay.
func TestFuzzDeterminism(t *testing.T) {
	const bufN = 1024
	for trial := 0; trial < 12; trial++ {
		seed := int64(1000 + trial)
		prog := genProgram(rand.New(rand.NewSource(seed)), "fuzz", bufN)
		run := func() sm.Counters {
			d := NewDevice(testSpec())
			buf := d.Alloc(bufN * 4)
			host := make([]uint32, bufN)
			r := rand.New(rand.NewSource(seed))
			for i := range host {
				host[i] = uint32(r.Intn(1 << 20))
			}
			d.Storage.WriteU32Slice(buf, host)
			l := &kernel.Launch{
				Program: prog,
				Grid:    kernel.Dim3{X: 3},
				Block:   kernel.Dim3{X: 96},
				Params:  []uint64{buf},
			}
			return d.MustLaunch(l).Counters
		}
		a, b := run(), run()
		if a != b {
			t.Fatalf("seed %d: nondeterministic execution\n%+v\n%+v", seed, a, b)
		}
		if a.StateSum() != a.ActiveWarpCycles {
			t.Fatalf("seed %d: state closure violated: %d != %d", seed, a.StateSum(), a.ActiveWarpCycles)
		}
		if a.InstIssued < a.InstExecuted {
			t.Fatalf("seed %d: issued < executed", seed)
		}
	}
}

// TestFuzzEngineEquivalence diffs the naive, fast-forward, and parallel
// engines on randomly generated kernels: full RunResults (cycles, counters,
// per-SM deltas, trace samples) must be bit-identical three ways, with
// tracing both off and on an interval chosen to land samples mid-skip.
func TestFuzzEngineEquivalence(t *testing.T) {
	const bufN = 1024
	for trial := 0; trial < 16; trial++ {
		seed := int64(4000 + trial)
		prog := genProgram(rand.New(rand.NewSource(seed)), "fuzzff", bufN)
		var traceInterval uint64
		if trial%2 == 1 {
			traceInterval = 32
		}
		run := func(fastForward bool, workers int) *RunResult {
			d := NewDevice(testSpec())
			d.SetFastForward(fastForward)
			d.SetSimWorkers(workers)
			if traceInterval > 0 {
				d.EnableTrace(traceInterval)
			}
			buf := d.Alloc(bufN * 4)
			host := make([]uint32, bufN)
			r := rand.New(rand.NewSource(seed))
			for i := range host {
				host[i] = uint32(r.Intn(1 << 20))
			}
			d.Storage.WriteU32Slice(buf, host)
			l := &kernel.Launch{
				Program: prog,
				Grid:    kernel.Dim3{X: 5},
				Block:   kernel.Dim3{X: 96},
				Params:  []uint64{buf},
			}
			return d.MustLaunch(l)
		}
		naive := run(false, 1)
		ff := run(true, 1)
		if !reflect.DeepEqual(naive, ff) {
			t.Fatalf("seed %d (trace=%d): naive/ff diverge\nnaive: cycles=%d %+v\nff:    cycles=%d %+v",
				seed, traceInterval, naive.Cycles, naive.Counters, ff.Cycles, ff.Counters)
		}
		par := run(true, 4)
		if !reflect.DeepEqual(naive, par) {
			t.Fatalf("seed %d (trace=%d): naive/parallel diverge\nnaive: cycles=%d %+v\npar:   cycles=%d %+v",
				seed, traceInterval, naive.Cycles, naive.Counters, par.Cycles, par.Counters)
		}
		// Parallel must also match with fast-forward off: every epoch ticks
		// every busy SM, so phase interleaving gets maximum coverage.
		parSlow := run(false, 4)
		if !reflect.DeepEqual(naive, parSlow) {
			t.Fatalf("seed %d (trace=%d): naive/parallel-noff diverge\nnaive: cycles=%d %+v\npar:   cycles=%d %+v",
				seed, traceInterval, naive.Cycles, naive.Counters, parSlow.Cycles, parSlow.Counters)
		}
	}
}

// TestFuzzPascalToo runs generated kernels on the Pascal model to cover the
// 4-subpartition configuration.
func TestFuzzPascalToo(t *testing.T) {
	prog := genProgram(rand.New(rand.NewSource(7)), "fuzzp", 512)
	d := NewDevice(testSpecPascal())
	buf := d.Alloc(512 * 4)
	l := &kernel.Launch{
		Program: prog,
		Grid:    kernel.Dim3{X: 4},
		Block:   kernel.Dim3{X: 128},
		Params:  []uint64{buf},
	}
	res := d.MustLaunch(l)
	if res.Counters.InstExecuted == 0 {
		t.Error("no instructions executed on Pascal model")
	}
	if res.Counters.StateSum() != res.Counters.ActiveWarpCycles {
		t.Error("state closure violated on Pascal model")
	}
}

package sim

import (
	"math"
	"testing"

	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
)

// runWarp executes a single-warp kernel built by build and returns the 32
// uint64 values it stored to the out buffer (4 or 8 bytes each).
func runWarp(t *testing.T, size int, build func(b *kernel.Builder, out isa.Reg)) []uint64 {
	t.Helper()
	d := NewDevice(testSpec())
	out := d.Alloc(32 * size)
	b := kernel.NewBuilder("op")
	outReg := b.Param(0)
	build(b, outReg)
	l := &kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 32},
		Params:  []uint64{out},
	}
	d.MustLaunch(l)
	vals := make([]uint64, 32)
	for i := range vals {
		vals[i] = d.Storage.Read(out+uint64(i*size), size)
	}
	return vals
}

// storePerLane emits "out[lane] = v".
func storePerLane(b *kernel.Builder, out, v isa.Reg, size int) {
	lane := b.S2R(isa.SRLaneID)
	b.Stg(b.IMad(lane, b.MovImm(int64(size)), out), v, 0, size)
}

func TestIntegerOpSemantics(t *testing.T) {
	cases := []struct {
		name string
		emit func(b *kernel.Builder, lane isa.Reg) isa.Reg
		want func(lane int64) uint64
	}{
		{"IADD", func(b *kernel.Builder, l isa.Reg) isa.Reg { return b.IAdd(l, l) },
			func(l int64) uint64 { return uint64(2 * l) }},
		{"IADDImm", func(b *kernel.Builder, l isa.Reg) isa.Reg { return b.IAddImm(l, -5) },
			func(l int64) uint64 { return uint64(l - 5) }},
		{"ISUB", func(b *kernel.Builder, l isa.Reg) isa.Reg { return b.ISub(b.IMulImm(l, 3), l) },
			func(l int64) uint64 { return uint64(2 * l) }},
		{"IMUL", func(b *kernel.Builder, l isa.Reg) isa.Reg { return b.IMul(l, l) },
			func(l int64) uint64 { return uint64(l * l) }},
		{"IMAD", func(b *kernel.Builder, l isa.Reg) isa.Reg { return b.IMad(l, l, b.MovImm(7)) },
			func(l int64) uint64 { return uint64(l*l + 7) }},
		{"ISHL", func(b *kernel.Builder, l isa.Reg) isa.Reg { return b.Shl(l, 3) },
			func(l int64) uint64 { return uint64(l << 3) }},
		{"ISHRArith", func(b *kernel.Builder, l isa.Reg) isa.Reg { return b.Shr(b.IAddImm(l, -16), 1) },
			func(l int64) uint64 { return uint64((l - 16) >> 1) }},
		{"IAND", func(b *kernel.Builder, l isa.Reg) isa.Reg { return b.AndImm(l, 0x9) },
			func(l int64) uint64 { return uint64(l & 9) }},
		{"IOR", func(b *kernel.Builder, l isa.Reg) isa.Reg { return b.Or(l, b.MovImm(0x20)) },
			func(l int64) uint64 { return uint64(l | 0x20) }},
		{"IXOR", func(b *kernel.Builder, l isa.Reg) isa.Reg { return b.XorImm(l, 0x15) },
			func(l int64) uint64 { return uint64(l ^ 0x15) }},
		{"IMIN", func(b *kernel.Builder, l isa.Reg) isa.Reg { return b.IMin(l, b.MovImm(10)) },
			func(l int64) uint64 {
				if l < 10 {
					return uint64(l)
				}
				return 10
			}},
		{"IMAX", func(b *kernel.Builder, l isa.Reg) isa.Reg { return b.IMax(l, b.MovImm(10)) },
			func(l int64) uint64 {
				if l > 10 {
					return uint64(l)
				}
				return 10
			}},
		{"POPC", func(b *kernel.Builder, l isa.Reg) isa.Reg { return b.Popc(l) },
			func(l int64) uint64 {
				c := 0
				for v := l; v != 0; v >>= 1 {
					c += int(v & 1)
				}
				return uint64(c)
			}},
		{"SEL", func(b *kernel.Builder, l isa.Reg) isa.Reg {
			p := b.ISetpImm(isa.CmpLT, l, 16)
			return b.Sel(p, b.MovImm(111), b.MovImm(222))
		}, func(l int64) uint64 {
			if l < 16 {
				return 111
			}
			return 222
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			got := runWarp(t, 8, func(b *kernel.Builder, out isa.Reg) {
				lane := b.S2R(isa.SRLaneID)
				storePerLane(b, out, c.emit(b, lane), 8)
				b.Exit()
			})
			for lane := 0; lane < 32; lane++ {
				if got[lane] != c.want(int64(lane)) {
					t.Fatalf("lane %d: got %d, want %d", lane, got[lane], c.want(int64(lane)))
				}
			}
		})
	}
}

func TestFloatOpSemantics(t *testing.T) {
	f32 := func(u uint64) float32 { return math.Float32frombits(uint32(u)) }
	got := runWarp(t, 4, func(b *kernel.Builder, out isa.Reg) {
		lane := b.S2R(isa.SRLaneID)
		x := b.I2F(lane)                         // float(lane)
		y := b.FFma(x, b.FConst(2), b.FConst(1)) // 2*lane+1
		z := b.FMul(b.FAdd(y, x), b.FConst(0.5)) // (3*lane+1)/2
		w := b.FMax(b.FMin(z, b.FConst(20)), b.FConst(2))
		storePerLane(b, out, w, 4)
		b.Exit()
	})
	for lane := 0; lane < 32; lane++ {
		want := (3*float32(lane) + 1) / 2
		if want > 20 {
			want = 20
		}
		if want < 2 {
			want = 2
		}
		if f32(got[lane]) != want {
			t.Fatalf("lane %d: got %g, want %g", lane, f32(got[lane]), want)
		}
	}
}

func TestF2IRoundtrip(t *testing.T) {
	got := runWarp(t, 8, func(b *kernel.Builder, out isa.Reg) {
		lane := b.S2R(isa.SRLaneID)
		storePerLane(b, out, b.F2I(b.FMul(b.I2F(lane), b.FConst(1.5))), 8)
		b.Exit()
	})
	for lane := 0; lane < 32; lane++ {
		want := uint64(int64(float32(lane) * 1.5)) // truncating
		if got[lane] != want {
			t.Fatalf("lane %d: got %d, want %d", lane, got[lane], want)
		}
	}
}

func TestFP64Semantics(t *testing.T) {
	f64 := math.Float64frombits
	got := runWarp(t, 8, func(b *kernel.Builder, out isa.Reg) {
		x := b.DConst(1.25)
		y := b.DMul(x, x)              // 1.5625
		z := b.DFma(y, x, b.DConst(3)) // 1.5625*1.25+3
		w := b.DAdd(z, b.DConst(-1))
		storePerLane(b, out, w, 8)
		b.Exit()
	})
	want := 1.5625*1.25 + 3 - 1
	for lane := 0; lane < 32; lane++ {
		if f64(got[lane]) != want {
			t.Fatalf("lane %d: got %g, want %g", lane, f64(got[lane]), want)
		}
	}
}

func TestMufuFunctions(t *testing.T) {
	funcs := []struct {
		f    isa.MufuFunc
		in   float32
		want float64
	}{
		{isa.MufuRCP, 4, 0.25},
		{isa.MufuRSQ, 16, 0.25},
		{isa.MufuSQRT, 9, 3},
		{isa.MufuSIN, 0, 0},
		{isa.MufuCOS, 0, 1},
		{isa.MufuLG2, 8, 3},
		{isa.MufuEX2, 3, 8},
	}
	for _, c := range funcs {
		c := c
		t.Run(c.f.String(), func(t *testing.T) {
			got := runWarp(t, 4, func(b *kernel.Builder, out isa.Reg) {
				v := b.Mufu(c.f, b.FConst(c.in))
				storePerLane(b, out, v, 4)
				b.Exit()
			})
			res := float64(math.Float32frombits(uint32(got[0])))
			if math.Abs(res-c.want) > 1e-5 {
				t.Fatalf("MUFU.%s(%g) = %g, want %g", c.f, c.in, res, c.want)
			}
		})
	}
}

func TestCompareOperators(t *testing.T) {
	// For each comparator, store 1 where lane <cmp> 16.
	want := map[isa.CmpOp]func(l int64) bool{
		isa.CmpEQ: func(l int64) bool { return l == 16 },
		isa.CmpNE: func(l int64) bool { return l != 16 },
		isa.CmpLT: func(l int64) bool { return l < 16 },
		isa.CmpLE: func(l int64) bool { return l <= 16 },
		isa.CmpGT: func(l int64) bool { return l > 16 },
		isa.CmpGE: func(l int64) bool { return l >= 16 },
	}
	for cmp, pred := range want {
		cmp, pred := cmp, pred
		t.Run(cmp.String(), func(t *testing.T) {
			got := runWarp(t, 4, func(b *kernel.Builder, out isa.Reg) {
				lane := b.S2R(isa.SRLaneID)
				p := b.ISetpImm(cmp, lane, 16)
				v := b.Sel(p, b.MovImm(1), b.MovImm(0))
				storePerLane(b, out, v, 4)
				b.Exit()
			})
			for lane := 0; lane < 32; lane++ {
				want := uint64(0)
				if pred(int64(lane)) {
					want = 1
				}
				if got[lane] != want {
					t.Fatalf("%s lane %d: got %d, want %d", cmp, lane, got[lane], want)
				}
			}
		})
	}
}

func TestAtomicVariants(t *testing.T) {
	run := func(op isa.AtomOp, init uint64, emitVal func(b *kernel.Builder) isa.Reg) uint64 {
		d := NewDevice(testSpec())
		cell := d.Alloc(8)
		d.Storage.Write(cell, init, 4)
		b := kernel.NewBuilder("atomvar")
		addr := b.Param(0)
		v := emitVal(b)
		b.Atom(op, addr, v, 0)
		b.Exit()
		l := &kernel.Launch{
			Program: b.MustBuild(),
			Grid:    kernel.Dim3{X: 1},
			Block:   kernel.Dim3{X: 32},
			Params:  []uint64{cell},
		}
		d.MustLaunch(l)
		return d.Storage.Read(cell, 4)
	}
	laneVal := func(b *kernel.Builder) isa.Reg { return b.S2R(isa.SRLaneID) }

	if got := run(isa.AtomAdd, 5, func(b *kernel.Builder) isa.Reg { return b.MovImm(2) }); got != 5+64 {
		t.Errorf("AtomAdd: %d, want %d", got, 5+64)
	}
	if got := run(isa.AtomMax, 7, laneVal); got != 31 {
		t.Errorf("AtomMax: %d, want 31", got)
	}
	if got := run(isa.AtomMin, 7, laneVal); got != 0 {
		t.Errorf("AtomMin: %d, want 0", got)
	}
	if got := run(isa.AtomAnd, 0xFF, func(b *kernel.Builder) isa.Reg { return b.MovImm(0x3C) }); got != 0x3C {
		t.Errorf("AtomAnd: %#x, want 0x3c", got)
	}
	if got := run(isa.AtomOr, 0x1, func(b *kernel.Builder) isa.Reg { return b.MovImm(0x40) }); got != 0x41 {
		t.Errorf("AtomOr: %#x, want 0x41", got)
	}
	if got := run(isa.AtomExch, 9, func(b *kernel.Builder) isa.Reg { return b.MovImm(77) }); got != 77 {
		t.Errorf("AtomExch: %d, want 77", got)
	}
}

func TestAtomCAS(t *testing.T) {
	d := NewDevice(testSpec())
	cell := d.Alloc(8)
	d.Storage.Write(cell, 0, 4)
	b := kernel.NewBuilder("cas")
	addr := b.Param(0)
	lane := b.S2R(isa.SRLaneID)
	// CAS(cell, expected=0 -> lane+100): exactly lane 0 (first in lane
	// order) wins.
	val := b.IAddImm(b.Mov(lane), 100)
	b.Emit(isa.Instr{
		Op: isa.OpATOM, Atom: isa.AtomCAS, Dst: b.Reg(),
		Srcs: [3]isa.Reg{addr, val, b.MovImm(0)}, Size: 4,
	})
	b.Exit()
	l := &kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 32},
		Params:  []uint64{cell},
	}
	d.MustLaunch(l)
	if got := d.Storage.Read(cell, 4); got != 100 {
		t.Errorf("CAS winner value = %d, want 100 (lane 0)", got)
	}
}

func TestShuffleButterflyPatterns(t *testing.T) {
	got := runWarp(t, 8, func(b *kernel.Builder, out isa.Reg) {
		lane := b.S2R(isa.SRLaneID)
		v := b.ShflXor(lane, 5)
		storePerLane(b, out, v, 8)
		b.Exit()
	})
	for lane := 0; lane < 32; lane++ {
		if got[lane] != uint64(lane^5) {
			t.Fatalf("lane %d: shfl.xor(5) = %d, want %d", lane, got[lane], lane^5)
		}
	}
}

func TestPredicateNegation(t *testing.T) {
	got := runWarp(t, 4, func(b *kernel.Builder, out isa.Reg) {
		lane := b.S2R(isa.SRLaneID)
		p := b.ISetpImm(isa.CmpLT, lane, 8)
		v := b.MovImm(0)
		b.MovToIf(p, true, v, b.MovImm(9)) // lanes >= 8 get 9
		storePerLane(b, out, v, 4)
		b.Exit()
	})
	for lane := 0; lane < 32; lane++ {
		want := uint64(0)
		if lane >= 8 {
			want = 9
		}
		if got[lane] != want {
			t.Fatalf("lane %d: got %d, want %d", lane, got[lane], want)
		}
	}
}

func TestTexFunctionalRead(t *testing.T) {
	d := NewDevice(testSpec())
	img := d.Alloc(128 * 4)
	out := d.Alloc(32 * 4)
	host := make([]float32, 128)
	for i := range host {
		host[i] = float32(i) * 0.25
	}
	d.Storage.WriteF32Slice(img, host)
	b := kernel.NewBuilder("texread")
	imgp := b.Param(0)
	outp := b.Param(1)
	lane := b.S2R(isa.SRLaneID)
	v := b.Tex(b.IMad(lane, b.MovImm(4), imgp), 0)
	storePerLane(b, outp, v, 4)
	b.Exit()
	l := &kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 32},
		Params:  []uint64{img, out},
	}
	res := d.MustLaunch(l)
	for i := 0; i < 32; i++ {
		if got := d.Storage.ReadF32(out + uint64(i*4)); got != host[i] {
			t.Fatalf("tex[%d] = %g, want %g", i, got, host[i])
		}
	}
	if res.Counters.TexFetches == 0 {
		t.Error("tex fetches not counted")
	}
}

func TestWideConstantLoad(t *testing.T) {
	d := NewDevice(testSpec())
	d.Const.Write(kernel.ParamSpace, 0xAABBCCDD11223344, 8)
	out := d.Alloc(32 * 8)
	b := kernel.NewBuilder("ldc64")
	outp := b.Param(0)
	v := b.LdcOff(kernel.ParamSpace, 8)
	storePerLane(b, outp, v, 8)
	b.Exit()
	l := &kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 32},
		Params:  []uint64{out},
	}
	d.MustLaunch(l)
	if got := d.Storage.Read(out, 8); got != 0xAABBCCDD11223344 {
		t.Errorf("64-bit constant load = %#x", got)
	}
}

func TestNestedControlFlow(t *testing.T) {
	// Nested If inside If/Else with a loop: out = classify(lane).
	got := runWarp(t, 4, func(b *kernel.Builder, out isa.Reg) {
		lane := b.S2R(isa.SRLaneID)
		v := b.MovImm(0)
		pHigh := b.ISetpImm(isa.CmpGE, lane, 16)
		b.If(pHigh)
		pOdd := b.ISetpImm(isa.CmpEQ, b.AndImm(lane, 1), 1)
		b.If(pOdd)
		b.MovTo(v, b.MovImm(3)) // high odd
		b.Else()
		b.MovTo(v, b.MovImm(2)) // high even
		b.EndIf()
		b.Else()
		i := b.ForImm(0, 4, 1)
		b.MovTo(v, b.IAdd(v, b.IAddImm(i, 1))) // low: 1+2+3+4 = 10
		b.EndFor()
		b.EndIf()
		storePerLane(b, out, v, 4)
		b.Exit()
	})
	for lane := 0; lane < 32; lane++ {
		var want uint64
		switch {
		case lane < 16:
			want = 10
		case lane%2 == 1:
			want = 3
		default:
			want = 2
		}
		if got[lane] != want {
			t.Fatalf("lane %d: got %d, want %d", lane, got[lane], want)
		}
	}
}

func TestSpecialRegisters(t *testing.T) {
	d := NewDevice(testSpec())
	out := d.Alloc(2 * 3 * 64 * 8 * 8) // generous
	b := kernel.NewBuilder("specials")
	outp := b.Param(0)
	// Flatten: idx = (ctaid.y*nctaid.x + ctaid.x)*blockThreads + linear tid.
	tidx := b.S2R(isa.SRTidX)
	tidy := b.S2R(isa.SRTidY)
	ntidx := b.S2R(isa.SRNTidX)
	ntidy := b.S2R(isa.SRNTidY)
	ctax := b.S2R(isa.SRCtaIDX)
	ctay := b.S2R(isa.SRCtaIDY)
	nctax := b.S2R(isa.SRNCtaIDX)
	lin := b.IMad(tidy, ntidx, tidx)
	bt := b.IMul(ntidx, ntidy)
	blk := b.IMad(ctay, nctax, ctax)
	idx := b.IMad(blk, bt, lin)
	// Pack a checkable value: warpid*1000 + laneid.
	v := b.IMad(b.S2R(isa.SRWarpID), b.MovImm(1000), b.S2R(isa.SRLaneID))
	b.Stg(b.IMad(idx, b.MovImm(8), outp), v, 0, 8)
	b.Exit()
	l := &kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 2, Y: 3},
		Block:   kernel.Dim3{X: 16, Y: 4}, // 64 threads = 2 warps
		Params:  []uint64{out},
	}
	d.MustLaunch(l)
	for blk := 0; blk < 6; blk++ {
		for lin := 0; lin < 64; lin++ {
			got := d.Storage.Read(out+uint64((blk*64+lin)*8), 8)
			want := uint64(lin/32*1000 + lin%32)
			if got != want {
				t.Fatalf("block %d thread %d: got %d, want %d", blk, lin, got, want)
			}
		}
	}
}

func TestClockSpecialRegisterMonotone(t *testing.T) {
	d := NewDevice(testSpec())
	out := d.Alloc(16)
	b := kernel.NewBuilder("clock")
	outp := b.Param(0)
	t0 := b.S2R(isa.SRClockLo)
	acc := b.FConst(1)
	for i := 0; i < 10; i++ {
		acc = b.FMul(acc, acc)
	}
	t1 := b.S2R(isa.SRClockLo)
	lane := b.S2R(isa.SRLaneID)
	p := b.ISetpImm(isa.CmpEQ, lane, 0)
	b.StgIf(p, false, outp, b.ISub(t1, t0), 0, 8)
	b.Exit()
	d.MustLaunch(&kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 32},
		Params: []uint64{out},
	})
	if delta := int64(d.Storage.Read(out, 8)); delta <= 0 {
		t.Errorf("clock delta = %d, want positive", delta)
	}
}

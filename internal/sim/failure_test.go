package sim

import (
	"strings"
	"testing"

	"gputopdown/internal/gpu"
	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
)

// failure_test exercises the guard rails: kernels that would hang, corrupt
// memory or overcommit resources must fail loudly, not silently.

// tinySpec keeps the non-termination guard test fast.
func tinySpec() *gpu.Spec { return gpu.QuadroRTX4000().WithSMs(1) }

func TestBarrierDeadlockIsCaught(t *testing.T) {
	// A barrier that only half the block's live threads can reach on a
	// divergent path where the other warps spin: the classic __syncthreads
	// divergence bug. The launch guard must abort instead of hanging.
	b := kernel.NewBuilder("deadlock")
	tid := b.S2R(isa.SRTidX)
	p := b.ISetpImm(isa.CmpLT, tid, 32)
	b.If(p)
	b.Bar() // only warp 0 arrives; warp 1 never does
	b.EndIf()
	// Warp 1 spins forever waiting for data warp 0 would produce after the
	// barrier.
	spin := b.For(0, b.MovImm(1<<40), 1)
	_ = spin
	b.EndFor()
	b.Exit()
	d := NewDevice(tinySpec())
	_, err := d.Launch(&kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 64},
	})
	if err == nil {
		t.Fatal("deadlocked kernel completed")
	}
	if !strings.Contains(err.Error(), "cycles") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestOutOfBoundsAccessPanics(t *testing.T) {
	b := kernel.NewBuilder("oob")
	gid := b.GlobalIDX()
	// Address far beyond any allocation.
	addr := b.IMad(gid, b.MovImm(4), b.MovImm(1<<30))
	b.Ldg(addr, 0, 4)
	b.Exit()
	d := NewDevice(tinySpec())
	defer func() {
		if recover() == nil {
			t.Error("wild load did not panic")
		}
	}()
	d.MustLaunch(&kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 32},
	})
}

func TestSharedOverflowPanics(t *testing.T) {
	b := kernel.NewBuilder("shoob")
	b.DeclShared(64)
	tid := b.S2R(isa.SRTidX)
	// tid*16 exceeds the 64-byte allocation for tid >= 4.
	addr := b.IMad(tid, b.MovImm(16), b.MovImm(0))
	b.Sts(addr, tid, 0, 4)
	b.Exit()
	d := NewDevice(tinySpec())
	defer func() {
		if recover() == nil {
			t.Error("shared overflow did not panic")
		}
	}()
	d.MustLaunch(&kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 32},
	})
}

func TestOversizedBlockRejected(t *testing.T) {
	b := kernel.NewBuilder("huge")
	b.Exit()
	d := NewDevice(tinySpec())
	if _, err := d.Launch(&kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 2048},
	}); err == nil {
		t.Error("2048-thread block accepted")
	}
}

func TestUndispatchableBlockRejected(t *testing.T) {
	// A block needing more shared memory than the SM has can never become
	// resident; the dispatcher must report it instead of spinning.
	spec := tinySpec()
	b := kernel.NewBuilder("sharedhuge")
	b.DeclShared(spec.SharedMemPerSM + 4096)
	b.Exit()
	d := NewDevice(spec)
	_, err := d.Launch(&kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 32},
	})
	if err == nil {
		t.Fatal("undispatchable block accepted")
	}
	if !strings.Contains(err.Error(), "wedged") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestDeviceMemoryExhaustionPanics(t *testing.T) {
	d := NewDeviceMem(tinySpec(), 1<<16)
	defer func() {
		if recover() == nil {
			t.Error("exhausted allocator did not panic")
		}
	}()
	d.Alloc(1 << 20)
}

func TestSchedulerPoliciesBothWorkAndDiffer(t *testing.T) {
	run := func(policy string) (uint64, uint64) {
		spec := gpu.QuadroRTX4000().WithSMs(1)
		spec.SchedulingPolicy = policy
		d := NewDevice(spec)
		const n = 4096
		in := d.Alloc(n * 4)
		out := d.Alloc(n * 4)
		d.Storage.WriteF32Slice(in, make([]float32, n))
		b := kernel.NewBuilder("sched")
		inp := b.Param(0)
		outp := b.Param(1)
		gid := b.GlobalIDX()
		off := b.Shl(gid, 2)
		v := b.Ldg(b.IAdd(inp, off), 0, 4)
		acc := b.Mov(v)
		for i := 0; i < 8; i++ {
			b.MovTo(acc, b.FFma(acc, b.FConst(1.1), v))
		}
		b.Stg(b.IAdd(outp, off), acc, 0, 4)
		b.Exit()
		res := d.MustLaunch(&kernel.Launch{
			Program: b.MustBuild(),
			Grid:    kernel.Dim3{X: n / 256},
			Block:   kernel.Dim3{X: 256},
			Params:  []uint64{in, out},
		})
		return res.Cycles, res.Counters.InstExecuted
	}
	gtoCycles, gtoInst := run("gto")
	lrrCycles, lrrInst := run("lrr")
	if gtoInst != lrrInst {
		t.Errorf("policies executed different instruction counts: %d vs %d", gtoInst, lrrInst)
	}
	if gtoCycles == 0 || lrrCycles == 0 {
		t.Error("zero-cycle run")
	}
	// Policies must actually differ in schedule (almost surely different
	// durations for a memory/compute mix).
	if gtoCycles == lrrCycles {
		t.Logf("note: gto and lrr coincidentally tied at %d cycles", gtoCycles)
	}
}

// Parallel intra-launch engine: a bounded worker pool ticks the SMs of one
// launch in epoch-lockstep, with the shared memory system partitioned into
// address-sliced L2 banks and per-slice DRAM channels so that every shared
// structure has exactly one writer per phase.
//
// Each device cycle window ("epoch") runs three barrier-separated phases:
//
//	A  compute   — due SMs tick in parallel (sharded by SM index). Shared
//	              memory instructions are buffered into per-SM mailboxes
//	              (sm.SM deferred mode); everything SM-private applies inline.
//	B  memory    — L2 slices drain in parallel (sharded by slice index). A
//	              slice's owner walks every due SM in id order and services
//	              only the sectors/lanes owned by its slice, reproducing the
//	              sequential engine's per-structure access order exactly.
//	C  finalize  — due SMs finalize in parallel: mailbox completions apply to
//	              scoreboards/queues, per-slice stats merge, trace samples
//	              emit, and quiescent SMs fast-forward to their wakeup bound.
//
// The master then runs the serial epoch tail (dispatch, residency sampling,
// guard advance, termination) exactly as the sequential loop does. See
// DESIGN.md §13 for the determinism argument.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"gputopdown/internal/kernel"
	"gputopdown/internal/sm"
)

// minParallelDue is the due-SM count below which an epoch runs inline on the
// master: with one or two SMs to tick, barrier crossings cost more than the
// work they would distribute.
const minParallelDue = 3

// spinBarrier is a sense-reversing central barrier for the intra-epoch phase
// crossings. Participants arrive microseconds apart at worst, so spinning
// (with a Gosched every few iterations to stay scheduler-friendly) beats a
// futex sleep; the epoch-entry gate (epochPool.await) is the one that parks.
type spinBarrier struct {
	count atomic.Int32
	gen   atomic.Uint32
}

func (b *spinBarrier) arrive(n int32) {
	g := b.gen.Load()
	if b.count.Add(1) == n {
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for spins := 0; b.gen.Load() == g; spins++ {
		if spins&63 == 63 {
			runtime.Gosched()
		}
	}
}

// padCell is a cache-line-padded uint64, one per participant, so the phase-C
// minimum-cycle folds don't false-share.
type padCell struct {
	v uint64
	_ [56]byte
}

// epochPool runs the three phases of each epoch across workers+1 goroutines
// (the launch goroutine acts as the last participant). Workers park on a
// condition variable between epochs — launches can be thousands of epochs
// apart from their next due work only in pathological kernels, but replay
// passes also leave the pool idle between launches.
type epochPool struct {
	d     *Device
	procs int // total participants, including the master

	// Epoch gate: master publishes (due, ff) then bumps seq; workers spin
	// briefly and then sleep on cond.
	mu       sync.Mutex
	cond     *sync.Cond
	seq      atomic.Uint64
	sleepers int
	stop     atomic.Bool
	wg       sync.WaitGroup

	due []*sm.SM
	ff  bool

	bar  spinBarrier
	minC []padCell

	// First panic from any phase, rethrown on the master after the epoch's
	// final barrier (workers recover, skip remaining work, and keep crossing
	// barriers so nobody deadlocks).
	panicked atomic.Bool
	panicMu  sync.Mutex
	panicVal any
}

func newEpochPool(d *Device, procs int) *epochPool {
	p := &epochPool{d: d, procs: procs, minC: make([]padCell, procs)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(procs - 1)
	for w := 0; w < procs-1; w++ {
		go p.worker(w)
	}
	return p
}

// shutdown releases and joins the workers. Must be called with no epoch in
// flight (every participant back at the gate).
func (p *epochPool) shutdown() {
	p.mu.Lock()
	p.stop.Store(true)
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *epochPool) worker(id int) {
	defer p.wg.Done()
	var last uint64
	for p.await(&last) {
		p.participate(id)
	}
}

// await blocks until the next epoch is published (returning true) or the
// pool is shut down (false). It spins briefly — consecutive epochs are
// usually back-to-back — then parks on the condition variable.
func (p *epochPool) await(last *uint64) bool {
	for spins := 0; ; spins++ {
		if p.stop.Load() {
			return false
		}
		if s := p.seq.Load(); s != *last {
			*last = s
			return true
		}
		if spins < 4096 {
			runtime.Gosched()
			continue
		}
		p.mu.Lock()
		for !p.stop.Load() && p.seq.Load() == *last {
			p.sleepers++
			p.cond.Wait()
			p.sleepers--
		}
		p.mu.Unlock()
		spins = 0
	}
}

// runEpoch executes one A/B/C epoch over the published due set and returns
// the minimum post-advance cycle across due SMs. Caller is the master.
func (p *epochPool) runEpoch(due []*sm.SM, ff bool) uint64 {
	p.due, p.ff = due, ff
	p.seq.Add(1)
	p.mu.Lock()
	if p.sleepers > 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()

	p.participate(p.procs - 1)

	if p.panicked.Load() {
		p.panicked.Store(false)
		panic(p.panicVal)
	}
	minC := ^uint64(0)
	for i := range p.minC {
		if c := p.minC[i].v; c < minC {
			minC = c
		}
	}
	return minC
}

// participate runs one participant's share of the epoch's three phases.
func (p *epochPool) participate(id int) {
	n := int32(p.procs)

	// Phase A: compute. Tick due SMs sharded by index.
	p.safely(func() {
		for i := id; i < len(p.due); i += p.procs {
			p.due[i].Tick()
		}
	})
	p.bar.arrive(n)

	// Phase B: memory. Drain L2 slices sharded by slice index; within a
	// slice, SMs drain in id order (due is id-ordered), preserving the
	// sequential engine's per-structure access order.
	p.safely(func() {
		for slice := id; slice < p.d.Mem.NumSlices(); slice += p.procs {
			for _, s := range p.due {
				s.DrainSlice(slice)
			}
		}
	})
	p.bar.arrive(n)

	// Phase C: finalize + per-SM fast-forward, sharded by SM index.
	p.safely(func() {
		minC := ^uint64(0)
		for i := id; i < len(p.due); i += p.procs {
			c := finalizeAndAdvance(p.due[i], p.ff)
			if c < minC {
				minC = c
			}
		}
		p.minC[id].v = minC
	})
	p.bar.arrive(n)
}

// safely runs one phase share, capturing the first panic for the master to
// rethrow after the epoch completes. Once a panic is recorded the remaining
// phases become no-ops — the epoch's state is already unrecoverable, the
// barriers just need every participant to keep arriving.
func (p *epochPool) safely(f func()) {
	defer func() {
		if r := recover(); r != nil {
			p.panicMu.Lock()
			if !p.panicked.Load() {
				p.panicVal = r
				p.panicked.Store(true)
			}
			p.panicMu.Unlock()
		}
	}()
	if p.panicked.Load() {
		return
	}
	f()
}

// finalizeAndAdvance applies an SM's epoch mailbox and then fast-forwards it
// exactly as the sequential loop would after its inline tick. Returns the
// SM's post-advance cycle.
func finalizeAndAdvance(s *sm.SM, ff bool) uint64 {
	s.FinalizeEpoch()
	c := s.Cycle()
	if ff {
		if w := s.NextWakeup(); w > c {
			if w > maxLaunchCycles+2 {
				w = maxLaunchCycles + 2
			}
			s.AdvanceTo(w)
			c = w
		}
	}
	return c
}

// runEpochInline is the small-due fallback: the identical phase A → B → C
// sequence on the master alone, with no barrier crossings.
func (d *Device) runEpochInline(due []*sm.SM) uint64 {
	for _, s := range due {
		s.Tick()
	}
	for slice := 0; slice < d.Mem.NumSlices(); slice++ {
		for _, s := range due {
			s.DrainSlice(slice)
		}
	}
	minC := ^uint64(0)
	for _, s := range due {
		if c := finalizeAndAdvance(s, d.fastForward); c < minC {
			minC = c
		}
	}
	return minC
}

// runLoopParallel is the parallel counterpart of runLoop: identical epoch
// structure and serial tail, with the tick/drain/finalize work of each epoch
// sharded across the pool. Bit-identical to runLoop by construction (see the
// package comment and DESIGN.md §13).
func (d *Device) runLoopParallel(ctx context.Context, done <-chan struct{}, l *kernel.Launch, nb int) error {
	procs := d.simWorkers
	if n := len(d.SMs); procs > n {
		procs = n
	}
	for _, s := range d.SMs {
		s.SetDeferred(true)
	}
	defer func() {
		for _, s := range d.SMs {
			s.SetDeferred(false)
		}
	}()
	pool := newEpochPool(d, procs)
	defer pool.shutdown()

	next := 0
	var guard uint64
	blockDetail := d.tracer.BlockDetail()
	sampleResidency := d.tracer != nil && d.traceInterval > 0

	var loopIters uint64
	for {
		if done != nil {
			if loopIters%ctxCheckInterval == 0 {
				select {
				case <-done:
					// Mid-launch state is unrecoverable (resident blocks will
					// never retire); rebuild the SMs to idle. The cancel check
					// sits between epochs, so every mailbox is empty here.
					d.ResetSMs()
					return fmt.Errorf("sim: kernel %s cancelled after %d cycles: %w",
						l.Program.Name, guard, ctx.Err())
				default:
				}
			}
			loopIters++
		}

		d.dispatchBlocks(l, nb, &next, guard, blockDetail)

		if sampleResidency && guard%residencySampleCycles == 0 {
			d.sampleResidencyTrack(guard)
		}

		// Scan: split the busy SMs into due (clock caught up with the device
		// cycle — they tick this epoch) and parked (fast-forwarded into the
		// future — they only contribute their wakeup to minNext).
		busy := false
		minNext := ^uint64(0)
		due := d.dueScratch[:0]
		for _, s := range d.SMs {
			if !s.Busy() {
				continue
			}
			busy = true
			if c := s.Cycle(); c <= guard {
				due = append(due, s)
			} else if c < minNext {
				minNext = c
			}
		}
		d.dueScratch = due // keep the (possibly re-grown) backing
		if !busy {
			if next >= nb {
				return nil
			}
			return fmt.Errorf("sim: kernel %s wedged with %d blocks undispatched", l.Program.Name, nb-next)
		}

		if len(due) > 0 {
			var m uint64
			if len(due) < minParallelDue {
				m = d.runEpochInline(due)
			} else {
				m = pool.runEpoch(due, d.fastForward)
			}
			if m < minNext {
				minNext = m
			}
			d.lastTicks += uint64(len(due))
		}

		// The stride-gated invariant sweep sits in the serial tail, after the
		// epoch's phase C: every mailbox is drained and every worker is back
		// at the gate, so the checker sees the same quiescent state the
		// sequential loop exposes at this point.
		if d.checker != nil && guard >= d.checkNext {
			d.checkNext = guard + checkStride
			d.checker.CheckEpoch(d, guard)
		}

		guard++
		if d.fastForward && minNext > guard {
			target := minNext
			if sampleResidency {
				if b := (guard + residencySampleCycles - 1) / residencySampleCycles * residencySampleCycles; b < target {
					target = b
				}
			}
			if target > guard {
				guard = target
			}
		}
		if guard > maxLaunchCycles {
			return fmt.Errorf("sim: kernel %s exceeded %d cycles (non-terminating?)", l.Program.Name, uint64(maxLaunchCycles))
		}
	}
}

package sim

import (
	"testing"

	"gputopdown/internal/kernel"
	"gputopdown/internal/obs"
)

// saxpyLaunch allocates fresh buffers and builds a standard test launch.
func saxpyLaunch(d *Device, n int) *kernel.Launch {
	xs := d.Alloc(n * 4)
	ys := d.Alloc(n * 4)
	d.Storage.WriteF32Slice(xs, make([]float32, n))
	d.Storage.WriteF32Slice(ys, make([]float32, n))
	return &kernel.Launch{
		Program: buildSaxpy(),
		Grid:    kernel.Dim3{X: (n + 127) / 128},
		Block:   kernel.Dim3{X: 128},
		Params:  []uint64{xs, ys, uint64(n), uint64(float32bits(2))},
	}
}

// TestDisableTraceStopsSamples: re-launching after DisableTrace must record
// no Trace samples (the symmetric counterpart of EnableTrace).
func TestDisableTraceStopsSamples(t *testing.T) {
	d := NewDevice(testSpec())
	l := saxpyLaunch(d, 4096)

	d.EnableTrace(64)
	res := d.MustLaunch(l)
	if len(res.Trace) == 0 {
		t.Fatal("EnableTrace(64) recorded no samples")
	}

	d.DisableTrace()
	res = d.MustLaunch(l)
	if len(res.Trace) != 0 {
		t.Fatalf("launch after DisableTrace recorded %d Trace samples, want 0", len(res.Trace))
	}
	// The per-SM buffers must be cleared too, not just unmerged.
	for i, s := range d.SMs {
		if n := len(s.TraceSamples()); n != 0 {
			t.Errorf("SM %d still holds %d trace samples after disabled launch", i, n)
		}
	}
}

// TestObserverLaunchSpansAndMetrics: an attached observer must yield a
// wall-clock launch span, a simulated-time kernel span, per-SM residency
// counter samples (when tracing is enabled), and consistent self-metrics.
func TestObserverLaunchSpansAndMetrics(t *testing.T) {
	d := NewDevice(testSpec())
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	d.SetObserver(tr, reg)
	d.EnableTrace(64) // residency samples ride the simulated-time track

	l := saxpyLaunch(d, 4096)
	res := d.MustLaunch(l)

	var wallSpan, simSpan, residency bool
	for _, e := range tr.Events() {
		switch {
		case e.Ph == "X" && e.PID == obs.PIDProfiler && e.Name == "launch saxpy":
			wallSpan = true
		case e.Ph == "X" && e.PID == obs.PIDSim && e.Name == "saxpy":
			simSpan = true
			wantDur := obs.CyclesToUS(res.Cycles, d.Spec.ClockMHz)
			if e.Dur != wantDur {
				t.Errorf("sim span dur = %v us, want %v", e.Dur, wantDur)
			}
		case e.Ph == "C" && e.PID == obs.PIDSim:
			residency = true
		}
	}
	if !wallSpan {
		t.Error("no wall-clock launch span recorded")
	}
	if !simSpan {
		t.Error("no simulated-time kernel span recorded")
	}
	if !residency {
		t.Error("no per-SM block-residency counter samples recorded")
	}

	if got := reg.Counter("sim_launches_total", "", nil).Value(); got != 1 {
		t.Errorf("sim_launches_total = %v, want 1", got)
	}
	if got := reg.Counter("sim_blocks_dispatched_total", "", nil).Value(); got != float64(res.Blocks) {
		t.Errorf("sim_blocks_dispatched_total = %v, want %d", got, res.Blocks)
	}
	if got := reg.Counter("sim_cycles_total", "", nil).Value(); got != float64(res.Cycles) {
		t.Errorf("sim_cycles_total = %v, want %d", got, res.Cycles)
	}
}

// TestResidencySamplesGatedOnTracing: with a tracer attached but tracing
// disabled, launches must emit no per-SM residency counter samples — the
// samples belong to the intra-kernel timeline, which is off.
func TestResidencySamplesGatedOnTracing(t *testing.T) {
	d := NewDevice(testSpec())
	tr := obs.NewTracer()
	d.SetObserver(tr, nil)

	d.MustLaunch(saxpyLaunch(d, 4096))
	for _, e := range tr.Events() {
		if e.Ph == "C" && e.PID == obs.PIDSim {
			t.Fatal("residency counter sample emitted with tracing disabled")
		}
	}
}

// TestBlockDetailInstants: per-block dispatch instants appear only when
// block detail is enabled on the tracer.
func TestBlockDetailInstants(t *testing.T) {
	count := func(detail bool) int {
		d := NewDevice(testSpec())
		tr := obs.NewTracer()
		tr.SetBlockDetail(detail)
		d.SetObserver(tr, nil)
		d.MustLaunch(saxpyLaunch(d, 4096))
		n := 0
		for _, e := range tr.Events() {
			if e.Ph == "i" && e.Name == "block" {
				n++
			}
		}
		return n
	}
	if got := count(false); got != 0 {
		t.Errorf("block instants without detail: %d, want 0", got)
	}
	if got := count(true); got != 4096/128 {
		t.Errorf("block instants with detail: %d, want %d", got, 4096/128)
	}
}

// TestNilObserverLaunchAllocsUnchanged asserts the nil-tracer hook path adds
// zero allocations per launch: a device with SetObserver(nil, nil) must
// allocate exactly as much per launch as one that never saw an observer.
func TestNilObserverLaunchAllocsUnchanged(t *testing.T) {
	measure := func(attachNil bool) float64 {
		d := NewDevice(testSpec())
		if attachNil {
			d.SetObserver(nil, nil)
		}
		l := saxpyLaunch(d, 1024)
		d.MustLaunch(l) // warm up caches and slice capacities
		return testing.AllocsPerRun(10, func() {
			if _, err := d.Launch(l); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := measure(false)
	withNil := measure(true)
	if withNil > base {
		t.Errorf("nil-observer launch allocates %.1f allocs/op vs %.1f baseline; hook path must be allocation-free", withNil, base)
	}
}

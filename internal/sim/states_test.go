package sim

import (
	"testing"

	"gputopdown/internal/gpu"
	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
	"gputopdown/internal/sm"
)

// Each warp state of the classifier must be reachable by a kernel built to
// provoke it. This pins down the taxonomy the entire Top-Down attribution
// rests on: a state that can't be provoked can't be measured.
func TestEveryStallStateIsProvokable(t *testing.T) {
	cases := []struct {
		state sm.WarpState
		grid  kernel.Dim3
		block kernel.Dim3
		build func(b *kernel.Builder)
	}{
		{
			// Two warps, one ALU chain each: while one issues the other is
			// eligible but not picked.
			state: sm.StateNotSelected,
			grid:  kernel.Dim3{X: 1}, block: kernel.Dim3{X: 128},
			build: func(b *kernel.Builder) {
				v := b.MovImm(1)
				for i := 0; i < 64; i++ {
					v = b.IAddImm(v, 1)
				}
				b.Exit()
			},
		},
		{
			// A long program streams through the icache.
			state: sm.StateNoInstruction,
			grid:  kernel.Dim3{X: 2}, block: kernel.Dim3{X: 64},
			build: func(b *kernel.Builder) {
				v := b.MovImm(0)
				for i := 0; i < 300; i++ {
					b.Emit(isa.Instr{Op: isa.OpIADD, Dst: v, Srcs: [3]isa.Reg{v, isa.RZ, isa.RZ}, Imm: 1})
				}
				b.Exit()
			},
		},
		{
			// Unbalanced arrival at a CTA barrier.
			state: sm.StateBarrier,
			grid:  kernel.Dim3{X: 1}, block: kernel.Dim3{X: 256},
			build: func(b *kernel.Builder) {
				tid := b.S2R(isa.SRTidX)
				p := b.ISetpImm(isa.CmpLT, tid, 32)
				b.If(p)
				acc := b.FConst(1)
				for i := 0; i < 40; i++ {
					b.MovTo(acc, b.Mufu(isa.MufuSIN, acc))
				}
				b.EndIf()
				b.Bar()
				b.Exit()
			},
		},
		{
			// MEMBAR right after a store waits for visibility.
			state: sm.StateMembar,
			grid:  kernel.Dim3{X: 1}, block: kernel.Dim3{X: 32},
			build: func(b *kernel.Builder) {
				out := b.Param(0)
				b.Stg(out, b.MovImm(1), 0, 4)
				b.Membar()
				b.Exit()
			},
		},
		{
			// A tight loop of back-edges resolves branches constantly.
			state: sm.StateBranchResolving,
			grid:  kernel.Dim3{X: 1}, block: kernel.Dim3{X: 32},
			build: func(b *kernel.Builder) {
				b.ForImm(0, 50, 1)
				b.EndFor()
				b.Exit()
			},
		},
		{
			state: sm.StateSleeping,
			grid:  kernel.Dim3{X: 1}, block: kernel.Dim3{X: 32},
			build: func(b *kernel.Builder) {
				b.Nanosleep(100)
				b.Exit()
			},
		},
		{
			// Two distinct source registers in the same bank conflict in the
			// operand collector (misc).
			state: sm.StateMisc,
			grid:  kernel.Dim3{X: 1}, block: kernel.Dim3{X: 32},
			build: func(b *kernel.Builder) {
				// Registers 0 and 4 share a bank (4 banks).
				a := b.Reg() // R0
				b.Emit(isa.Instr{Op: isa.OpMOV32, Dst: a, Imm: 3})
				_, _, _ = b.Reg(), b.Reg(), b.Reg()
				c := b.Reg() // R4
				b.Emit(isa.Instr{Op: isa.OpMOV32, Dst: c, Imm: 4})
				for i := 0; i < 20; i++ {
					b.IAdd(a, c)
				}
				b.Exit()
			},
		},
		{
			// 64-bit stores take two dispatch cycles.
			state: sm.StateDispatchStall,
			grid:  kernel.Dim3{X: 1}, block: kernel.Dim3{X: 128},
			build: func(b *kernel.Builder) {
				out := b.Param(0)
				gid := b.GlobalIDX()
				addr := b.IMad(gid, b.MovImm(8), out)
				v := b.DConst(1)
				for i := 0; i < 10; i++ {
					b.Stg(addr, v, 0, 8)
				}
				b.Exit()
			},
		},
		{
			// FP64 chains from many warps contend for the 1-lane pipe.
			state: sm.StateMathPipeThrottle,
			grid:  kernel.Dim3{X: 2}, block: kernel.Dim3{X: 256},
			build: func(b *kernel.Builder) {
				x := b.DConst(1.5)
				for i := 0; i < 8; i++ {
					x = b.DMul(x, x)
				}
				b.Exit()
			},
		},
		{
			// Immediate use of a cold global load.
			state: sm.StateLongScoreboard,
			grid:  kernel.Dim3{X: 1}, block: kernel.Dim3{X: 32},
			build: func(b *kernel.Builder) {
				in := b.Param(0)
				v := b.Ldg(in, 0, 4)
				b.IAddImm(v, 1)
				b.Exit()
			},
		},
		{
			// Immediate use of a shared-memory load.
			state: sm.StateShortScoreboard,
			grid:  kernel.Dim3{X: 1}, block: kernel.Dim3{X: 32},
			build: func(b *kernel.Builder) {
				sh := b.DeclShared(256)
				tid := b.S2R(isa.SRTidX)
				addr := b.IMad(tid, b.MovImm(4), b.MovImm(sh))
				b.Sts(addr, tid, 0, 4)
				v := b.Lds(addr, 0, 4)
				b.IAddImm(v, 1)
				b.Exit()
			},
		},
		{
			// Immediate use of an ALU result (fixed-latency dependency).
			state: sm.StateWait,
			grid:  kernel.Dim3{X: 1}, block: kernel.Dim3{X: 32},
			build: func(b *kernel.Builder) {
				v := b.MovImm(1)
				for i := 0; i < 30; i++ {
					v = b.IAddImm(v, 1) // serial dependency chain
				}
				b.Exit()
			},
		},
		{
			// Immediate use of a cold constant load.
			state: sm.StateIMCMiss,
			grid:  kernel.Dim3{X: 1}, block: kernel.Dim3{X: 32},
			build: func(b *kernel.Builder) {
				v := b.LdcOff(kernel.ParamSpace+512, 4)
				b.IAddImm(v, 1)
				b.Exit()
			},
		},
		{
			// Back-to-back shared stores from many warps fill the MIO queue.
			state: sm.StateMIOThrottle,
			grid:  kernel.Dim3{X: 2}, block: kernel.Dim3{X: 512},
			build: func(b *kernel.Builder) {
				sh := b.DeclShared(4096)
				tid := b.S2R(isa.SRTidX)
				addr := b.IMad(b.AndImm(tid, 511), b.MovImm(4), b.MovImm(sh))
				for i := 0; i < 16; i++ {
					b.Sts(addr, tid, 0, 4)
				}
				b.Exit()
			},
		},
		{
			// Streams of uncoalesced loads from many warps fill the LG queue.
			state: sm.StateLGThrottle,
			grid:  kernel.Dim3{X: 4}, block: kernel.Dim3{X: 256},
			build: func(b *kernel.Builder) {
				in := b.Param(0)
				gid := b.GlobalIDX()
				addr := b.IMad(b.AndImm(b.IMulImm(gid, 977), (1<<13)-1), b.MovImm(4), in)
				for i := 0; i < 8; i++ {
					b.Ldg(addr, int64(i*128), 4)
				}
				b.Exit()
			},
		},
		{
			// Texture fetch streams fill the 4-entry TEX queue.
			state: sm.StateTEXThrottle,
			grid:  kernel.Dim3{X: 2}, block: kernel.Dim3{X: 256},
			build: func(b *kernel.Builder) {
				in := b.Param(0)
				gid := b.GlobalIDX()
				addr := b.IMad(b.AndImm(gid, 1023), b.MovImm(4), in)
				for i := 0; i < 8; i++ {
					b.Tex(addr, int64(i*4096))
				}
				b.Exit()
			},
		},
		{
			// EXIT directly after a store drains.
			state: sm.StateDrain,
			grid:  kernel.Dim3{X: 1}, block: kernel.Dim3{X: 32},
			build: func(b *kernel.Builder) {
				out := b.Param(0)
				gid := b.GlobalIDX()
				b.Stg(b.IMad(gid, b.MovImm(128), out), gid, 0, 4)
				b.Exit()
			},
		},
	}

	for _, c := range cases {
		c := c
		t.Run(c.state.String(), func(t *testing.T) {
			d := NewDevice(gpu.QuadroRTX4000().WithSMs(1))
			buf := d.Alloc(1 << 16)
			b := kernel.NewBuilder("provoke_" + c.state.String())
			c.build(b)
			l := &kernel.Launch{
				Program: b.MustBuild(),
				Grid:    c.grid,
				Block:   c.block,
				Params:  []uint64{buf},
			}
			res := d.MustLaunch(l)
			if res.Counters.WarpStateCycles[c.state] == 0 {
				t.Errorf("state %s not provoked; state cycles: %v",
					c.state, res.Counters.WarpStateCycles)
			}
		})
	}
}

// TestSelectedStateAlwaysPresent: any kernel that executes instructions
// spends cycles in the selected state.
func TestSelectedStateAlwaysPresent(t *testing.T) {
	d := NewDevice(gpu.QuadroRTX4000().WithSMs(1))
	b := kernel.NewBuilder("sel")
	b.MovImm(1)
	b.Exit()
	res := d.MustLaunch(&kernel.Launch{Program: b.MustBuild(), Grid: kernel.Dim3{X: 1}, Block: kernel.Dim3{X: 32}})
	if res.Counters.WarpStateCycles[sm.StateSelected] == 0 {
		t.Error("no selected cycles")
	}
}

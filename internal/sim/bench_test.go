package sim

import (
	"testing"

	"gputopdown/internal/obs"
)

// The tracer-nil/tracer-enabled pair quantifies the observability layer's
// overhead on the launch hot path. With no observer attached the hooks are
// single nil-guarded branches; with a tracer attached each launch pays for
// span construction and per-SM residency sampling.

func benchLaunch(b *testing.B, attach func(*Device)) {
	d := NewDevice(testSpec())
	if attach != nil {
		attach(d)
	}
	l := saxpyLaunch(d, 4096)
	d.MustLaunch(l) // warm up
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Launch(l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLaunchTracerNil is the baseline: no observer attached.
func BenchmarkLaunchTracerNil(b *testing.B) {
	benchLaunch(b, nil)
}

// BenchmarkLaunchObserverNilAttached: SetObserver(nil, nil) — the explicit
// disabled path — must cost the same as the baseline.
func BenchmarkLaunchObserverNilAttached(b *testing.B) {
	benchLaunch(b, func(d *Device) { d.SetObserver(nil, nil) })
}

// BenchmarkLaunchTracerEnabled: full tracer and metrics registry attached.
// The tracer is reset each iteration so event memory stays bounded.
func BenchmarkLaunchTracerEnabled(b *testing.B) {
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	benchLaunchReset(b, tr, reg)
}

func benchLaunchReset(b *testing.B, tr *obs.Tracer, reg *obs.Registry) {
	d := NewDevice(testSpec())
	d.SetObserver(tr, reg)
	l := saxpyLaunch(d, 4096)
	d.MustLaunch(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Reset()
		if _, err := d.Launch(l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLaunchMetricsOnly: registry attached but no tracer — the common
// production configuration (cheap counters, no event stream).
func BenchmarkLaunchMetricsOnly(b *testing.B) {
	benchLaunch(b, func(d *Device) { d.SetObserver(nil, obs.NewRegistry()) })
}

// The Naive/FastForward pair quantifies the event-driven engine's wall-clock
// win on a memory-bound kernel (serialized DRAM-latency load chains — the
// workload class the paper's case studies are dominated by). Results are
// bit-identical between the two; only host time differs.

func benchEngine(b *testing.B, fastForward bool) {
	d := NewDevice(testSpec())
	d.SetFastForward(fastForward)
	l := memBoundLaunch(d, 32, 0)
	d.MustLaunch(l) // warm up
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Launch(l); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLaunchNaive ticks every busy SM on every simulated cycle.
func BenchmarkLaunchNaive(b *testing.B) {
	benchEngine(b, false)
}

// BenchmarkLaunchFastForward jumps over provably idle cycle spans.
func BenchmarkLaunchFastForward(b *testing.B) {
	benchEngine(b, true)
}

package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"gputopdown/internal/kernel"
)

// buildSpin builds a kernel that spins through iters loop iterations of ALU
// work — long-running but terminating, for cancellation tests.
func buildSpin(iters int64) *kernel.Program {
	b := kernel.NewBuilder("spin")
	b.For(0, b.MovImm(iters), 1)
	b.EndFor()
	b.Exit()
	return b.MustBuild()
}

func TestLaunchCtxPreCancelled(t *testing.T) {
	d := NewDevice(testSpec())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := d.LaunchCtx(ctx, &kernel.Launch{
		Program: buildSpin(10),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 32},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled LaunchCtx = %v, want context.Canceled", err)
	}
}

func TestLaunchCtxCancelMidLaunch(t *testing.T) {
	d := NewDevice(testSpec())
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := d.LaunchCtx(ctx, &kernel.Launch{
			Program: buildSpin(1 << 40), // would trip the cycle guard long after the test deadline
			Grid:    kernel.Dim3{X: 4},
			Block:   kernel.Dim3{X: 128},
		})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the launch get going
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled launch = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled launch did not return promptly")
	}
	// Cancellation must leave the device idle and reusable.
	for i, s := range d.SMs {
		if s.Busy() {
			t.Fatalf("SM %d still busy after cancelled launch", i)
		}
	}
	res := d.MustLaunch(&kernel.Launch{
		Program: buildSpin(100),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 32},
	})
	if res.Cycles == 0 {
		t.Error("post-cancellation launch produced no cycles")
	}
}

// TestLaunchCtxDeadline: a deadline that expires mid-launch surfaces
// context.DeadlineExceeded, the error the job daemon maps to a failed job.
func TestLaunchCtxDeadline(t *testing.T) {
	d := NewDevice(testSpec())
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := d.LaunchCtx(ctx, &kernel.Launch{
		Program: buildSpin(1 << 40),
		Grid:    kernel.Dim3{X: 4},
		Block:   kernel.Dim3{X: 128},
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline-expired launch = %v, want context.DeadlineExceeded", err)
	}
}

// TestLaunchCtxNoPerturbation: running under an (uncancelled) context must be
// bit-identical to the plain Launch path — the checks are observation-free.
func TestLaunchCtxNoPerturbation(t *testing.T) {
	mk := func() (*Device, *kernel.Launch) {
		d := NewDevice(testSpec())
		const n = 4096
		xs := d.Alloc(n * 4)
		ys := d.Alloc(n * 4)
		xh := make([]float32, n)
		for i := range xh {
			xh[i] = float32(i)
		}
		d.Storage.WriteF32Slice(xs, xh)
		d.Storage.WriteF32Slice(ys, xh)
		return d, &kernel.Launch{
			Program: buildSaxpy(),
			Grid:    kernel.Dim3{X: n / 128},
			Block:   kernel.Dim3{X: 128},
			Params:  []uint64{xs, ys, n, float32bits(2.0)},
		}
	}
	d1, l1 := mk()
	want := d1.MustLaunch(l1)
	d2, l2 := mk()
	got, err := d2.LaunchCtx(context.Background(), l2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles || got.Counters != want.Counters {
		t.Errorf("LaunchCtx diverged from Launch: cycles %d vs %d", got.Cycles, want.Cycles)
	}
}

// TestResetSMsRecoversPanickedLaunch: after a kernel panics mid-launch (wild
// memory access), ResetSMs restores an idle, launchable device — the recovery
// contract the cupti panic-isolation layer depends on.
func TestResetSMsRecoversPanickedLaunch(t *testing.T) {
	d := NewDevice(testSpec())
	b := kernel.NewBuilder("wild")
	gid := b.GlobalIDX()
	addr := b.IMad(gid, b.MovImm(4), b.MovImm(1<<30))
	b.Ldg(addr, 0, 4)
	b.Exit()
	wild := &kernel.Launch{
		Program: b.MustBuild(),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 32},
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("wild load did not panic")
			}
		}()
		_, _ = d.Launch(wild)
	}()
	d.ResetSMs()
	for i, s := range d.SMs {
		if s.Busy() || s.Cycle() != 0 {
			t.Fatalf("SM %d not reset: busy=%v cycle=%d", i, s.Busy(), s.Cycle())
		}
	}
	res := d.MustLaunch(&kernel.Launch{
		Program: buildSpin(100),
		Grid:    kernel.Dim3{X: 1},
		Block:   kernel.Dim3{X: 32},
	})
	if res.Cycles == 0 {
		t.Error("post-reset launch produced no cycles")
	}
}

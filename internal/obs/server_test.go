package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func testServer() (*Server, *Tracer, *Registry, *Progress) {
	tr := NewTracer()
	reg := NewRegistry()
	pr := NewProgress()
	return NewServer(tr, reg, pr), tr, reg, pr
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestServerEndpoints smoke-tests every route of the observability handler.
func TestServerEndpoints(t *testing.T) {
	srv, tr, reg, pr := testServer()
	reg.Counter("demo_total", "a demo counter", nil).Add(3)
	tr.Complete(PIDProfiler, 1, "replay", "pass", tr.Now(), nil)
	pr.StartRun(2)
	pr.StartApp("altis", "gemm")
	h := srv.Handler()

	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("/healthz: code %d body %q", rec.Code, rec.Body.String())
	}

	rec = get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Errorf("/metrics: code %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	if !strings.Contains(rec.Body.String(), "demo_total 3") {
		t.Errorf("/metrics missing counter:\n%s", rec.Body.String())
	}

	rec = get(t, h, "/trace")
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &trace); err != nil {
		t.Errorf("/trace is not valid trace-event JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("/trace has no events despite a recorded span")
	}

	rec = get(t, h, "/debug/pprof/")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("/debug/pprof/: code %d", rec.Code)
	}
	rec = get(t, h, "/debug/pprof/cmdline")
	if rec.Code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: code %d", rec.Code)
	}
}

// TestServerProgressJSONSchema pins the /api/progress JSON field names —
// the contract external pollers depend on.
func TestServerProgressJSONSchema(t *testing.T) {
	srv, _, _, pr := testServer()
	pr.StartRun(4)
	pr.StartApp("rodinia", "bfs")
	pr.StartKernel("bfs_kernel", 9)
	pr.PassDone(1)
	pr.PassDone(2)
	pr.KernelDone()
	pr.CacheHit()
	pr.CacheMiss()
	pr.AppDone()

	rec := get(t, srv.Handler(), "/api/progress")
	if rec.Code != http.StatusOK {
		t.Fatalf("/api/progress: code %d", rec.Code)
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("/api/progress is not JSON: %v", err)
	}
	for _, key := range []string{
		"suite", "app", "kernel", "pass", "pass_total",
		"apps_done", "apps_total", "kernels_done", "passes_done",
		"cache_hits", "cache_misses", "cache_hit_ratio",
		"elapsed_seconds", "passes_per_second", "eta_seconds",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("/api/progress missing field %q", key)
		}
	}
	if m["suite"] != "rodinia" || m["app"] != "bfs" || m["kernel"] != "bfs_kernel" {
		t.Errorf("position fields wrong: %v", m)
	}
	if m["pass"] != float64(2) || m["pass_total"] != float64(9) {
		t.Errorf("pass fields wrong: pass=%v pass_total=%v", m["pass"], m["pass_total"])
	}
	if m["cache_hit_ratio"] != 0.5 {
		t.Errorf("cache_hit_ratio = %v, want 0.5", m["cache_hit_ratio"])
	}
	if eta, ok := m["eta_seconds"].(float64); !ok || eta < 0 {
		t.Errorf("eta_seconds = %v, want >= 0 with 1/4 apps done", m["eta_seconds"])
	}
}

// TestServerNilComponents: endpoints over missing components answer 503, not
// panic, and /healthz still works.
func TestServerNilComponents(t *testing.T) {
	srv := NewServer(nil, nil, nil)
	h := srv.Handler()
	for _, path := range []string{"/metrics", "/trace", "/api/progress"} {
		if rec := get(t, h, path); rec.Code != http.StatusServiceUnavailable {
			t.Errorf("%s with nil component: code %d, want 503", path, rec.Code)
		}
	}
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("/healthz: code %d", rec.Code)
	}
}

// TestServerStartShutdown exercises the live listener: bind :0, scrape over
// real TCP, then shut down gracefully and verify the serve goroutine exits
// and the port closes.
func TestServerStartShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, _, reg, _ := testServer()
	reg.Gauge("up", "server liveness", nil).Set(1)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if addr == "" {
		t.Fatal("no bound address after Start")
	}
	if err := srv.Start("127.0.0.1:0"); err == nil {
		t.Error("second Start succeeded, want already-started error")
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics over TCP: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "up 1") {
		t.Errorf("live scrape: code %d body %q", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown: %v, want nil no-op", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("GET after Shutdown succeeded, want connection refused")
	}

	// The serve goroutine must be gone. Goroutine counts wobble (the HTTP
	// client keep-alive reaper, finished test helpers), so retry briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before || time.Now().After(deadline) {
			if n > before {
				t.Errorf("goroutines: %d before, %d after Shutdown", before, n)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestObservabilityConcurrency is the race-audit regression test: hammer the
// tracer, registry, progress and flame from writer goroutines while scraping
// every read path concurrently. Run under -race (as CI does) this fails on
// any unsynchronized access.
func TestObservabilityConcurrency(t *testing.T) {
	srv, tr, reg, pr := testServer()
	fl := NewFlame()
	c := reg.Counter("races_total", "", nil)
	g := reg.Gauge("races_gauge", "", nil)
	hist := reg.Histogram("races_hist", "", []float64{1, 10, 100}, nil)
	h := srv.Handler()

	const writers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				hist.Observe(float64(i % 150))
				tr.Complete(PIDProfiler, w, "replay", "pass", tr.Now(), nil)
				pr.StartKernel("k", 4)
				pr.PassDone(i % 5)
				pr.KernelDone()
				pr.CacheHit()
				fl.Add(1, "gpu", "app", "k")
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				get(t, h, "/metrics")
				get(t, h, "/api/progress")
				get(t, h, "/trace")
				_ = pr.Snapshot()
				_ = fl.Total()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != writers*iters {
		t.Errorf("races_total = %v, want %d", got, writers*iters)
	}
	if fl.Total() != writers*iters {
		t.Errorf("flame total = %v, want %d", fl.Total(), writers*iters)
	}
}

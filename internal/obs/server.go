// Live observability service: an embedded HTTP server exposing the metrics
// registry as a Prometheus scrape target, the execution tracer as a Chrome
// trace snapshot, the run's live progress as JSON, and net/http/pprof for
// continuous self-profiling of the profiler process.
//
// Two time domains meet here (see DESIGN.md §10): /debug/pprof profiles the
// profiler itself on the host wall clock, while /metrics and /trace carry the
// simulated-GPU accounting. The server is strictly read-only with respect to
// the run — every handler snapshots state guarded by the same mutexes the
// writers take, so a scrape under heavy profiling load is race-free and does
// not perturb results.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is the embedded observability HTTP server. Build with NewServer,
// bind with Start, stop with Shutdown. The zero value is not useful.
type Server struct {
	tracer   *Tracer
	reg      *Registry
	progress *Progress
	log      *Logger

	mu   sync.Mutex
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
}

// NewServer builds a server over the given (possibly nil) observability
// components. A nil component turns its endpoint into a 503 — the server is
// still useful for the rest.
func NewServer(tr *Tracer, reg *Registry, pr *Progress) *Server {
	return &Server{tracer: tr, reg: reg, progress: pr}
}

// SetLogger attaches a logger (component "obs") for lifecycle messages.
func (s *Server) SetLogger(l *Logger) { s.log = l.Component("obs") }

// Handler returns the server's routing handler, independent of any listener —
// what tests drive through net/http/httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/api/progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if s.reg == nil {
		http.Error(w, "no metrics registry attached", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WriteProm(w); err != nil {
		s.log.Error("metrics scrape failed", "err", err)
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	if s.tracer == nil {
		http.Error(w, "no tracer attached", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
	if err := s.tracer.WriteJSON(w); err != nil {
		s.log.Error("trace snapshot failed", "err", err)
	}
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	if s.progress == nil {
		http.Error(w, "no progress tracker attached", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.progress.Snapshot()); err != nil {
		s.log.Error("progress snapshot failed", "err", err)
	}
}

// Start binds addr (":0" picks a free port; query it with Addr) and serves in
// a background goroutine until Shutdown. Starting an already started server
// is an error.
func (s *Server) Start(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.srv != nil {
		return fmt.Errorf("obs: server already started on %s", s.ln.Addr())
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.done = make(chan struct{})
	go func(srv *http.Server, done chan struct{}) {
		defer close(done)
		// ErrServerClosed is the normal Shutdown result.
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.log.Error("observability server failed", "err", err)
		}
	}(s.srv, s.done)
	s.log.Info("observability server listening", "addr", ln.Addr().String())
	return nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the server: the listener closes, in-flight
// requests drain (bounded by ctx), and the serve goroutine exits before
// Shutdown returns, so no goroutine leaks past it. Shutdown of a never
// started (or already stopped) server is a no-op.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv, done := s.srv, s.done
	s.srv, s.ln, s.done = nil, nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Shutdown(ctx)
	select {
	case <-done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	s.log.Info("observability server stopped", "err", err)
	return err
}

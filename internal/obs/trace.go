// Package obs is the observability layer for the profiling stack: a
// low-overhead span/event tracer that exports Chrome trace-event JSON
// (loadable in chrome://tracing or https://ui.perfetto.dev) and a metrics
// registry with Prometheus text exposition.
//
// The paper's operational claims — multi-pass replay costing ~13x native
// execution (Fig. 13), flush cost growing with the working set (§V.E) — are
// made observable here: every profiling session, replay pass, cache flush,
// kernel launch and analysis step becomes a span, and the profiler's
// self-metrics (passes, flush cycles, simulated cycles, wall time, replay
// overhead ratio) become counters, gauges and histograms.
//
// Every hook method is safe on a nil receiver and does nothing, so
// instrumented code paths (internal/sim, internal/cupti, internal/core) pay
// near-zero cost when observability is disabled: callers guard argument
// construction behind a nil check and the methods themselves no-op.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Track process ids: the trace is organised as two "processes", one on the
// host wall-clock axis and one on the simulated-GPU time axis.
const (
	// PIDProfiler is the wall-clock track: sessions, passes, flushes,
	// launches and analyses, timestamped with host time.
	PIDProfiler = 1
	// PIDSim is the simulated-time track: kernel spans and per-SM block
	// residency, timestamped in simulated microseconds (cycles / clock).
	PIDSim = 2
)

// Event is one Chrome trace-event. The JSON field names follow the Trace
// Event Format spec (ph "X" = complete span, "i" = instant, "C" = counter,
// "M" = metadata); ts and dur are in microseconds.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object format of a Chrome trace.
type traceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// Tracer collects trace events. It is safe for concurrent use; all hook
// methods are no-ops on a nil *Tracer.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	events []Event

	// blockDetail enables per-block dispatch instant events (high volume).
	blockDetail bool
}

// NewTracer builds an enabled tracer whose wall clock starts now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// Enabled reports whether the tracer records events (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// SetBlockDetail toggles per-block dispatch instant events, which can be
// voluminous on large grids (off by default).
func (t *Tracer) SetBlockDetail(on bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.blockDetail = on
	t.mu.Unlock()
}

// BlockDetail reports whether per-block instants are enabled.
func (t *Tracer) BlockDetail() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.blockDetail
}

// Now returns the wall-clock timestamp in microseconds since the tracer
// started (0 for nil). Use it to capture a span's start, then close the span
// with Complete.
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return float64(time.Since(t.start).Nanoseconds()) / 1e3
}

func (t *Tracer) push(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Complete emits a complete ("X") span from startUS (a prior Now() reading)
// to the current time on the wall-clock axis.
func (t *Tracer) Complete(pid, tid int, cat, name string, startUS float64, args map[string]any) {
	if t == nil {
		return
	}
	now := t.Now()
	dur := now - startUS
	if dur < 0 {
		dur = 0
	}
	t.push(Event{Name: name, Cat: cat, Ph: "X", TS: startUS, Dur: dur, PID: pid, TID: tid, Args: args})
}

// CompleteAt emits a complete ("X") span with an explicit timestamp and
// duration in microseconds — used for simulated-time spans on PIDSim.
func (t *Tracer) CompleteAt(pid, tid int, cat, name string, tsUS, durUS float64, args map[string]any) {
	if t == nil {
		return
	}
	t.push(Event{Name: name, Cat: cat, Ph: "X", TS: tsUS, Dur: durUS, PID: pid, TID: tid, Args: args})
}

// Instant emits an instant ("i") event at tsUS.
func (t *Tracer) Instant(pid, tid int, cat, name string, tsUS float64, args map[string]any) {
	if t == nil {
		return
	}
	t.push(Event{Name: name, Cat: cat, Ph: "i", TS: tsUS, PID: pid, TID: tid, Args: args})
}

// CounterValue emits a counter ("C") sample: a named value track (Chrome
// renders one chart per pid+name; series is the line within it).
func (t *Tracer) CounterValue(pid, tid int, name, series string, tsUS, value float64) {
	if t == nil {
		return
	}
	t.push(Event{Name: name, Ph: "C", TS: tsUS, PID: pid, TID: tid,
		Args: map[string]any{series: value}})
}

// NameProcess emits the metadata event labelling a pid in the viewer.
func (t *Tracer) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.push(Event{Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": name}})
}

// NameThread emits the metadata event labelling a pid/tid track.
func (t *Tracer) NameThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.push(Event{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name}})
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events (for tests and inspection).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Reset drops all recorded events, keeping the wall-clock origin.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.mu.Unlock()
}

// WriteJSON writes the trace as a Chrome trace-event JSON object.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: WriteJSON on nil tracer")
	}
	t.mu.Lock()
	f := traceFile{TraceEvents: t.events, DisplayTimeUnit: "ms"}
	data, err := json.Marshal(f)
	t.mu.Unlock()
	if err != nil {
		return fmt.Errorf("obs: marshal trace: %w", err)
	}
	_, err = w.Write(data)
	return err
}

// WriteFile writes the trace JSON to a file.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteJSON(f)
}

// CyclesToUS converts simulated cycles at a core clock in MHz to simulated
// microseconds, the PIDSim time base.
func CyclesToUS(cycles uint64, clockMHz int) float64 {
	if clockMHz <= 0 {
		return float64(cycles)
	}
	return float64(cycles) / float64(clockMHz)
}

package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"debug", int(LevelDebug), true},
		{"info", int(LevelInfo), true},
		{"", int(LevelInfo), true},
		{"WARN", int(LevelWarn), true},
		{"warning", int(LevelWarn), true},
		{"Error", int(LevelError), true},
		{"verbose", 0, false},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseLevel(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if err == nil && int(got) != c.want {
			t.Errorf("ParseLevel(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelWarn, "text")
	if l.On(LevelDebug) || l.On(LevelInfo) {
		t.Error("warn-level logger claims debug/info enabled")
	}
	if !l.On(LevelWarn) || !l.On(LevelError) {
		t.Error("warn-level logger claims warn/error disabled")
	}
	l.Debug("dropped debug")
	l.Info("dropped info")
	l.Warn("kept warn")
	l.Error("kept error")
	out := buf.String()
	if strings.Contains(out, "dropped") {
		t.Errorf("below-threshold records emitted:\n%s", out)
	}
	if !strings.Contains(out, "kept warn") || !strings.Contains(out, "kept error") {
		t.Errorf("at/above-threshold records missing:\n%s", out)
	}
}

func TestLoggerComponentJSON(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelDebug, "json")
	l.Component("cupti").Debug("pass complete", "pass", 3, "cycles", 1024)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("JSON log line does not parse: %v\n%s", err, buf.String())
	}
	if rec["component"] != "cupti" {
		t.Errorf("component = %v, want cupti", rec["component"])
	}
	if rec["msg"] != "pass complete" {
		t.Errorf("msg = %v, want %q", rec["msg"], "pass complete")
	}
	if rec["pass"] != float64(3) {
		t.Errorf("pass = %v, want 3", rec["pass"])
	}
	if rec["level"] != "DEBUG" {
		t.Errorf("level = %v, want DEBUG", rec["level"])
	}
}

func TestCountingWriter(t *testing.T) {
	var cw CountingWriter
	l := NewLogger(&cw, LevelInfo, "text")
	l.Info("one line")
	if cw.Bytes() == 0 {
		t.Error("CountingWriter recorded no bytes after a log line")
	}
	before := cw.Bytes()
	l.Debug("filtered, writes nothing")
	if cw.Bytes() != before {
		t.Error("filtered record reached the writer")
	}
}

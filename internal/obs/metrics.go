package obs

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
)

// Labels is a metric's label set. Construct it only behind a nil-registry
// guard on hot paths; better, create metric handles once at setup time and
// call the (nil-safe, allocation-free) Add/Set/Observe methods afterwards.
type Labels map[string]string

// render produces the canonical `{k="v",...}` suffix (empty for no labels),
// with keys sorted for a stable identity and exposition order.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// Counter is a monotonically increasing metric. Methods are no-ops on nil.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add increases the counter by d (d < 0 is ignored).
func (c *Counter) Add(d float64) {
	if c == nil || d < 0 {
		return
	}
	c.mu.Lock()
	c.v += d
	c.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a metric that can go up and down. Methods are no-ops on nil.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram is a cumulative-bucket histogram. Methods are no-ops on nil.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	counts  []uint64  // len(bounds)+1, last is the +Inf bucket
	sum     float64
	samples uint64
}

// DefTimeBuckets are the default wall-time buckets in seconds.
var DefTimeBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.samples++
	h.mu.Unlock()
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// series is one labelled time series inside a family.
type series struct {
	labels string // rendered label suffix
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	order  []string
	series map[string]*series
}

// Registry holds metric families and renders Prometheus text exposition.
// Lookup methods return nil metrics on a nil *Registry, so setup code can
// unconditionally create handles and hot paths stay branch-light.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family returns the named family, creating it with the given type, or
// panics on a type clash (a programming error).
func (r *Registry) family(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: map[string]*series{}}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func (f *family) get(labels Labels) *series {
	key := labels.render()
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns (creating if needed) the counter name{labels}.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, "counter").get(labels)
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge returns (creating if needed) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, "gauge").get(labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram returns (creating if needed) the histogram name{labels} with the
// given ascending bucket upper bounds (nil means DefTimeBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefTimeBuckets
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.family(name, help, "histogram").get(labels)
	if s.hist == nil {
		bounds := make([]float64, len(buckets))
		copy(bounds, buckets)
		s.hist = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	}
	return s.hist
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv(v)
}

func strconv(v float64) string {
	// %g keeps integers clean (16 not 16.000000) and floats precise.
	return fmt.Sprintf("%g", v)
}

// mergeLabels appends extra to a rendered label suffix.
func mergeLabels(rendered, extraKey, extraVal string) string {
	extra := extraKey + `="` + escapeLabel(extraVal) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// WriteProm writes every family in registration order in the Prometheus
// text exposition format (version 0.0.4).
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("obs: WriteProm on nil registry")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, name := range r.order {
		f := r.families[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, key := range f.order {
			s := f.series[key]
			switch f.typ {
			case "counter":
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.ctr.Value()))
			case "gauge":
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.gauge.Value()))
			case "histogram":
				h := s.hist
				h.mu.Lock()
				var cum uint64
				for i, bound := range h.bounds {
					cum += h.counts[i]
					fmt.Fprintf(&b, "%s_bucket%s %d\n",
						f.name, mergeLabels(s.labels, "le", formatValue(bound)), cum)
				}
				cum += h.counts[len(h.bounds)]
				fmt.Fprintf(&b, "%s_bucket%s %d\n",
					f.name, mergeLabels(s.labels, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.labels, formatValue(h.sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labels, h.samples)
				h.mu.Unlock()
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteFile writes the Prometheus exposition to a file.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return r.WriteProm(f)
}

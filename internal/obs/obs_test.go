package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestTraceJSONFormat validates the Chrome trace-event exporter: the output
// must parse with encoding/json and contain well-formed "X", "i", "C" and
// "M" events with microsecond timestamps.
func TestTraceJSONFormat(t *testing.T) {
	tr := NewTracer()
	tr.NameProcess(PIDProfiler, "profiler")
	tr.NameThread(PIDProfiler, 1, "session")
	start := tr.Now()
	tr.Complete(PIDProfiler, 1, "cupti", "pass 1/8", start,
		map[string]any{"kernel": "k"})
	tr.CompleteAt(PIDSim, 0, "sim", "kernel", 10, 25.5,
		map[string]any{"cycles": 1000})
	tr.Instant(PIDSim, 1, "dispatch", "block", 12, map[string]any{"block": 3})
	tr.CounterValue(PIDSim, 0, "SM0 resident blocks", "blocks", 14, 4)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", parsed.DisplayTimeUnit)
	}
	phases := map[string]int{}
	for _, e := range parsed.TraceEvents {
		phases[e.Ph]++
	}
	for _, ph := range []string{"X", "i", "C", "M"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events in trace", ph)
		}
	}
	// The explicit-timestamp span must round-trip exactly.
	found := false
	for _, e := range parsed.TraceEvents {
		if e.Ph == "X" && e.Name == "kernel" {
			found = true
			if e.TS != 10 || e.Dur != 25.5 || e.PID != PIDSim {
				t.Errorf("sim span corrupted: ts=%v dur=%v pid=%d", e.TS, e.Dur, e.PID)
			}
			if e.Args["cycles"].(float64) != 1000 {
				t.Errorf("span args corrupted: %v", e.Args)
			}
		}
	}
	if !found {
		t.Error("explicit sim span missing from trace")
	}
	if got := tr.Len(); got != 6 {
		t.Errorf("Len = %d, want 6", got)
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Error("Reset did not clear events")
	}
}

// TestPrometheusTextFormat validates the metrics exporter: HELP/TYPE lines,
// label rendering, histogram bucket cumulativeness and _sum/_count.
func TestPrometheusTextFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("profiler_passes_total", "Replay passes.", nil)
	c.Add(8)
	c.Inc()
	g := r.Gauge("profiler_replay_overhead_ratio", "Fig. 13 ratio.",
		Labels{"app": "rodinia/srad_v1", "gpu": `q"x`})
	g.Set(13.2)
	h := r.Histogram("profiler_pass_wall_seconds", "Pass wall time.",
		[]float64{0.01, 0.1, 1}, nil)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantLines := []string{
		"# HELP profiler_passes_total Replay passes.",
		"# TYPE profiler_passes_total counter",
		"profiler_passes_total 9",
		"# TYPE profiler_replay_overhead_ratio gauge",
		`profiler_replay_overhead_ratio{app="rodinia/srad_v1",gpu="q\"x"} 13.2`,
		"# TYPE profiler_pass_wall_seconds histogram",
		`profiler_pass_wall_seconds_bucket{le="0.01"} 1`,
		`profiler_pass_wall_seconds_bucket{le="0.1"} 2`,
		`profiler_pass_wall_seconds_bucket{le="1"} 2`,
		`profiler_pass_wall_seconds_bucket{le="+Inf"} 3`,
		"profiler_pass_wall_seconds_sum 5.055",
		"profiler_pass_wall_seconds_count 3",
	}
	for _, w := range wantLines {
		if !strings.Contains(out, w) {
			t.Errorf("exposition missing line %q\ngot:\n%s", w, out)
		}
	}
	// Every non-comment line must be "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestRegistryGetOrCreate checks that handles are shared per name+labels.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", Labels{"k": "v"})
	b := r.Counter("x_total", "x", Labels{"k": "v"})
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	c := r.Counter("x_total", "x", Labels{"k": "w"})
	if a == c {
		t.Error("distinct labels shared a counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("type clash did not panic")
		}
	}()
	r.Gauge("x_total", "x", nil)
}

// TestHistogramInfinities checks formatValue and +/-Inf bucket rendering.
func TestHistogramInfinities(t *testing.T) {
	if formatValue(math.Inf(1)) != "+Inf" || formatValue(math.Inf(-1)) != "-Inf" {
		t.Error("infinity formatting broken")
	}
	if formatValue(16) != "16" {
		t.Errorf("integer formatting: %q", formatValue(16))
	}
}

// TestNilObservabilityIsSafeAndAllocationFree asserts the disabled fast
// path: every hook method on a nil tracer, nil registry and nil metric
// handles is a no-op and allocates zero bytes.
func TestNilObservabilityIsSafeAndAllocationFree(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	var c *Counter
	var g *Gauge
	var h *Histogram
	var lg *Logger
	var pr *Progress
	var fl *Flame
	if tr.Enabled() {
		t.Error("nil tracer claims enabled")
	}
	if reg.Counter("x", "x", nil) != nil {
		t.Error("nil registry returned a live counter")
	}
	if lg.On(LevelError) {
		t.Error("nil logger claims a level enabled")
	}
	if lg.Component("sim") != nil {
		t.Error("nil logger returned a live component logger")
	}
	if got := pr.Snapshot(); got.ETASeconds != -1 {
		t.Errorf("nil progress snapshot ETA = %v, want -1", got.ETASeconds)
	}
	allocs := testing.AllocsPerRun(200, func() {
		_ = tr.Now()
		tr.Complete(PIDProfiler, 1, "cat", "name", 0, nil)
		tr.CompleteAt(PIDSim, 0, "cat", "name", 0, 1, nil)
		tr.Instant(PIDSim, 0, "cat", "name", 0, nil)
		tr.CounterValue(PIDSim, 0, "n", "s", 0, 1)
		tr.NameProcess(1, "p")
		tr.NameThread(1, 1, "t")
		tr.SetBlockDetail(true)
		_ = tr.BlockDetail()
		tr.Reset()
		_ = tr.Len()
		c.Add(1)
		c.Inc()
		_ = c.Value()
		g.Set(2)
		g.Add(1)
		_ = g.Value()
		h.Observe(3)
		_ = h.Count()
		_ = h.Sum()
		if lg.On(LevelDebug) {
			lg.Debug("unreachable on the disabled path")
		}
		pr.StartRun(4)
		pr.StartApp("suite", "app")
		pr.StartKernel("k", 9)
		pr.PassDone(1)
		pr.KernelDone()
		pr.CacheHit()
		pr.CacheMiss()
		pr.AppDone()
		fl.Add(1, "a", "b")
	})
	if allocs != 0 {
		t.Errorf("nil observability hooks allocated %.1f bytes/op, want 0", allocs)
	}
}

// BenchmarkObsDisabled is the CI allocation gate for the disabled
// observability path: the exact hook sequence a profiled kernel pass
// executes, against all-nil handles, must stay at 0 allocs/op.
func BenchmarkObsDisabled(b *testing.B) {
	var tr *Tracer
	var c *Counter
	var g *Gauge
	var h *Histogram
	var lg *Logger
	var pr *Progress
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := tr.Now()
		tr.Complete(PIDProfiler, 1, "replay", "pass", start, nil)
		c.Inc()
		g.Set(float64(i))
		h.Observe(float64(i))
		if lg.On(LevelDebug) {
			lg.Debug("pass complete", "pass", i)
		}
		pr.PassDone(i)
	}
}

// TestWriteFileErrors ensures nil exporters fail loudly instead of silently
// writing nothing.
func TestWriteFileErrors(t *testing.T) {
	var tr *Tracer
	var reg *Registry
	if err := tr.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Error("nil tracer WriteJSON succeeded")
	}
	if err := reg.WriteProm(&bytes.Buffer{}); err == nil {
		t.Error("nil registry WriteProm succeeded")
	}
}

// Structured leveled logging for the profiling stack, on log/slog.
//
// A *Logger is nil-safe the same way the Tracer and metric handles are: every
// method on a nil receiver is a no-op, and On reports false, so instrumented
// hot paths guard argument construction behind On and pay nothing when
// logging is disabled. Component returns a child logger carrying a
// `component` attribute ("cupti", "sim", "cache", "core", ...), so one root
// logger fans out to per-subsystem scopes that can be filtered downstream.
package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// Log levels, re-exported so instrumented packages need not import log/slog.
const (
	LevelDebug = slog.LevelDebug
	LevelInfo  = slog.LevelInfo
	LevelWarn  = slog.LevelWarn
	LevelError = slog.LevelError
)

// ParseLevel resolves a -log-level flag value ("debug", "info", "warn",
// "error", case-insensitive) to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// Logger is a leveled, component-scoped structured logger. The zero value is
// not useful; build one with NewLogger. All methods are no-ops on nil.
type Logger struct {
	sl  *slog.Logger
	min slog.Level
}

// NewLogger builds a logger writing to w at the given minimum level.
// format selects the slog handler: "json" for one JSON object per line,
// anything else (canonically "text") for logfmt-style key=value lines.
func NewLogger(w io.Writer, level slog.Level, format string) *Logger {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	if strings.EqualFold(format, "json") {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return &Logger{sl: slog.New(h), min: level}
}

// NewSlogLogger wraps an existing *slog.Logger, enabling records at or above
// level. It lets callers plug the profiler into an application-wide slog
// setup instead of the flat file/stderr handlers NewLogger builds.
func NewSlogLogger(sl *slog.Logger, level slog.Level) *Logger {
	if sl == nil {
		return nil
	}
	return &Logger{sl: sl, min: level}
}

// Component returns a child logger whose records carry component=name.
// Component on a nil logger returns nil, so wiring code can scope
// unconditionally.
func (l *Logger) Component(name string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{sl: l.sl.With(slog.String("component", name)), min: l.min}
}

// On reports whether records at level would be emitted (false for nil).
// Hot paths use it to skip building attribute lists entirely:
//
//	if log.On(obs.LevelDebug) {
//	        log.Debug("pass complete", "kernel", name, "cycles", cycles)
//	}
func (l *Logger) On(level slog.Level) bool {
	return l != nil && level >= l.min
}

// Log emits a record at an arbitrary level.
func (l *Logger) Log(level slog.Level, msg string, args ...any) {
	if !l.On(level) {
		return
	}
	l.sl.Log(context.Background(), level, msg, args...)
}

// Debug emits a debug record.
func (l *Logger) Debug(msg string, args ...any) { l.Log(slog.LevelDebug, msg, args...) }

// Info emits an info record.
func (l *Logger) Info(msg string, args ...any) { l.Log(slog.LevelInfo, msg, args...) }

// Warn emits a warning record.
func (l *Logger) Warn(msg string, args ...any) { l.Log(slog.LevelWarn, msg, args...) }

// Error emits an error record.
func (l *Logger) Error(msg string, args ...any) { l.Log(slog.LevelError, msg, args...) }

// CountingWriter wraps an io.Writer counting bytes written — used by tests
// and the overhead experiments to observe logging volume without re-parsing
// output. The zero value (nil W) counts and discards, like io.Discard.
type CountingWriter struct {
	W io.Writer
	n atomic.Int64
}

// Write implements io.Writer.
func (c *CountingWriter) Write(p []byte) (int, error) {
	if c.W == nil {
		c.n.Add(int64(len(p)))
		return len(p), nil
	}
	n, err := c.W.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// Bytes returns the total bytes written so far.
func (c *CountingWriter) Bytes() int64 { return c.n.Load() }

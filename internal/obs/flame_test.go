package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestFlameFolded is the golden test for the collapsed-stack exporter:
// accumulation of repeated stacks, frame sanitization, first-seen ordering,
// integer rounding and the dropping of zero-weight rows.
func TestFlameFolded(t *testing.T) {
	f := NewFlame()
	f.Add(100, "rtx4000", "altis/gemm", "sgemm", "Retire")
	f.Add(50, "rtx4000", "altis/gemm", "sgemm", "Backend", "Memory", "long_scoreboard")
	f.Add(25, "rtx4000", "altis/gemm", "sgemm", "Retire") // folds into the first
	f.Add(10.4, "rtx4000", "altis/gemm", "kernel with spaces;and semis")
	f.Add(0.2, "rtx4000", "altis/gemm", "rounds_to_zero")
	f.Add(-5, "rtx4000", "ignored_negative")
	f.Add(7, "", "empty_root_frame")

	var buf bytes.Buffer
	if err := f.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	want := "rtx4000;altis/gemm;sgemm;Retire 125\n" +
		"rtx4000;altis/gemm;sgemm;Backend;Memory;long_scoreboard 50\n" +
		"rtx4000;altis/gemm;kernel_with_spaces:and_semis 10\n" +
		"?;empty_root_frame 7\n"
	if got := buf.String(); got != want {
		t.Errorf("folded output mismatch:\ngot:\n%swant:\n%s", got, want)
	}
	if f.Len() != 5 {
		t.Errorf("Len() = %d, want 5 distinct stacks", f.Len())
	}
	if total := f.Total(); total != 100+50+25+10.4+0.2+7 {
		t.Errorf("Total() = %v", total)
	}

	// Every emitted line must be "<frames> <integer>" with no stray spaces —
	// the property speedscope's importer depends on.
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		if i := strings.LastIndexByte(line, ' '); i < 0 || strings.Count(line, " ") != 1 {
			t.Errorf("malformed folded line %q", line)
		}
	}
}

func TestFlameWriteFileError(t *testing.T) {
	f := NewFlame()
	f.Add(1, "a")
	if err := f.WriteFile("/nonexistent-dir/x.folded"); err == nil {
		t.Error("WriteFile into a missing directory succeeded")
	}
	var nilFlame *Flame
	if err := nilFlame.WriteFolded(&bytes.Buffer{}); err == nil {
		t.Error("nil flame WriteFolded succeeded")
	}
}

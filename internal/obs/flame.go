// Collapsed-stack ("folded") export of simulated-cycle attributions.
//
// The folded format is one line per unique stack — frame;frame;frame weight —
// the interchange format of Brendan Gregg's FlameGraph tools and of
// speedscope's importer. Here the "stacks" are not call stacks but the
// Top-Down attribution hierarchy: device → application → kernel → Top-Down
// node → stall reason, weighted by simulated GPU cycles, so standard
// flamegraph tooling renders where simulated time went.
package obs

import (
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"sync"
)

// Flame accumulates weighted stacks and writes them in folded format.
// Adding the same stack repeatedly accumulates weight (how multiple
// invocations of one kernel fold together). Safe for concurrent use.
type Flame struct {
	mu      sync.Mutex
	weights map[string]float64
	order   []string // first-seen order, for deterministic output
}

// NewFlame builds an empty folded-stack accumulator.
func NewFlame() *Flame {
	return &Flame{weights: map[string]float64{}}
}

// sanitizeFrame keeps a frame legal in folded output: ';' separates frames
// and the final ' ' separates the weight, so both are replaced.
func sanitizeFrame(f string) string {
	f = strings.ReplaceAll(f, ";", ":")
	f = strings.ReplaceAll(f, " ", "_")
	f = strings.ReplaceAll(f, "\n", "_")
	if f == "" {
		return "?"
	}
	return f
}

// Add accumulates weight onto the stack described by frames, root first.
// Non-positive weights and empty stacks are ignored. Nil-safe.
func (f *Flame) Add(weight float64, frames ...string) {
	if f == nil || weight <= 0 || len(frames) == 0 {
		return
	}
	parts := make([]string, len(frames))
	for i, fr := range frames {
		parts[i] = sanitizeFrame(fr)
	}
	key := strings.Join(parts, ";")
	f.mu.Lock()
	if _, ok := f.weights[key]; !ok {
		f.order = append(f.order, key)
	}
	f.weights[key] += weight
	f.mu.Unlock()
}

// Len returns the number of distinct stacks.
func (f *Flame) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.weights)
}

// Total returns the summed weight across all stacks.
func (f *Flame) Total() float64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var t float64
	for _, w := range f.weights {
		t += w
	}
	return t
}

// WriteFolded writes one "stack weight" line per stack in first-added order.
// Weights are rounded to integers (the format FlameGraph/speedscope parse);
// stacks whose weight rounds to zero are dropped.
func (f *Flame) WriteFolded(w io.Writer) error {
	if f == nil {
		return fmt.Errorf("obs: WriteFolded on nil flame")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var b strings.Builder
	for _, key := range f.order {
		n := int64(math.Round(f.weights[key]))
		if n <= 0 {
			continue
		}
		fmt.Fprintf(&b, "%s %d\n", key, n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteFile writes the folded output to a file.
func (f *Flame) WriteFile(path string) error {
	if f == nil {
		return fmt.Errorf("obs: WriteFile on nil flame")
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	return f.WriteFolded(file)
}

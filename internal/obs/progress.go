// Live progress tracking for long profiling sweeps.
//
// A *Progress is the shared scoreboard the profiler layers update as a run
// advances — which suite/app/kernel/pass is executing right now, how many
// passes and kernels have completed, how the replay cache is doing — and the
// /api/progress endpoint snapshots. Like every other obs hook it is nil-safe:
// all mutators no-op on a nil receiver, so instrumented code updates it
// unconditionally and pays nothing when progress tracking is off.
//
// Progress is written concurrently (ProfileApps fans apps across goroutines
// while an HTTP scrape reads), so every method takes the internal mutex.
package obs

import (
	"sync"
	"time"
)

// Progress is the live scoreboard of a profiling run.
type Progress struct {
	mu    sync.Mutex
	start time.Time

	suite, app, kernel   string
	pass, passTotal      int
	appsDone, appsTotal  int
	passesDone           uint64
	kernelsDone          uint64
	cacheHits, cacheMiss uint64
}

// NewProgress builds a progress tracker whose clock starts now.
func NewProgress() *Progress {
	return &Progress{start: time.Now()}
}

// StartRun records the total number of applications the run will profile.
// ETA estimation needs it; single-app runs may skip it.
func (p *Progress) StartRun(appsTotal int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.appsTotal = appsTotal
	p.mu.Unlock()
}

// StartApp records the application now being profiled.
func (p *Progress) StartApp(suite, app string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.suite, p.app = suite, app
	p.mu.Unlock()
}

// AppDone counts one completed application.
func (p *Progress) AppDone() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.appsDone++
	p.mu.Unlock()
}

// StartKernel records the kernel invocation now being replayed and how many
// passes its schedule requires.
func (p *Progress) StartKernel(name string, passTotal int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.kernel = name
	p.pass = 0
	p.passTotal = passTotal
	p.mu.Unlock()
}

// PassDone counts one completed replay pass; pass is its 1-based index
// within the current kernel's schedule.
func (p *Progress) PassDone(pass int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if pass > p.pass {
		p.pass = pass
	}
	p.passesDone++
	p.mu.Unlock()
}

// KernelDone counts one fully profiled kernel invocation.
func (p *Progress) KernelDone() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.kernelsDone++
	p.mu.Unlock()
}

// CacheHit counts a replay-cache hit.
func (p *Progress) CacheHit() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.cacheHits++
	p.mu.Unlock()
}

// CacheMiss counts a replay-cache miss.
func (p *Progress) CacheMiss() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.cacheMiss++
	p.mu.Unlock()
}

// ProgressSnapshot is a consistent point-in-time view of a Progress, shaped
// for JSON exposition on /api/progress.
type ProgressSnapshot struct {
	// Current position: what the profiler is working on right now. Under
	// concurrent app profiling this is the most recently started item.
	Suite  string `json:"suite"`
	App    string `json:"app"`
	Kernel string `json:"kernel"`
	// Pass is the 1-based index of the last completed pass of the current
	// kernel (0 before the first completes); PassTotal its schedule length.
	Pass      int `json:"pass"`
	PassTotal int `json:"pass_total"`

	// Cumulative work.
	AppsDone    int    `json:"apps_done"`
	AppsTotal   int    `json:"apps_total"`
	KernelsDone uint64 `json:"kernels_done"`
	PassesDone  uint64 `json:"passes_done"`

	// Replay cache.
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`

	// Throughput and ETA, derived from completed-pass throughput. ETASeconds
	// is -1 when no estimate is possible (no total or nothing finished yet).
	ElapsedSeconds  float64 `json:"elapsed_seconds"`
	PassesPerSecond float64 `json:"passes_per_second"`
	ETASeconds      float64 `json:"eta_seconds"`
}

// Snapshot returns a consistent copy of the current state with derived rates.
// A nil Progress yields a zero snapshot with ETASeconds == -1.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{ETASeconds: -1}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{
		Suite:       p.suite,
		App:         p.app,
		Kernel:      p.kernel,
		Pass:        p.pass,
		PassTotal:   p.passTotal,
		AppsDone:    p.appsDone,
		AppsTotal:   p.appsTotal,
		KernelsDone: p.kernelsDone,
		PassesDone:  p.passesDone,
		CacheHits:   p.cacheHits,
		CacheMisses: p.cacheMiss,
		ETASeconds:  -1,
	}
	if total := p.cacheHits + p.cacheMiss; total > 0 {
		s.CacheHitRatio = float64(p.cacheHits) / float64(total)
	}
	s.ElapsedSeconds = time.Since(p.start).Seconds()
	if s.ElapsedSeconds > 0 {
		s.PassesPerSecond = float64(p.passesDone) / s.ElapsedSeconds
	}
	// ETA from completed-app throughput: the only unit whose total is known
	// up front. Per-pass throughput seasons the estimate once at least one
	// app finished; before that the remaining-work total is unknowable.
	if p.appsTotal > 0 && p.appsDone > 0 && p.appsDone < p.appsTotal {
		perApp := s.ElapsedSeconds / float64(p.appsDone)
		s.ETASeconds = perApp * float64(p.appsTotal-p.appsDone)
	} else if p.appsTotal > 0 && p.appsDone >= p.appsTotal {
		s.ETASeconds = 0
	}
	return s
}

// LogArgs renders the snapshot as alternating slog key/value pairs for the
// periodic progress line.
func (s ProgressSnapshot) LogArgs() []any {
	return []any{
		"apps_done", s.AppsDone,
		"apps_total", s.AppsTotal,
		"app", s.Suite + "/" + s.App,
		"kernel", s.Kernel,
		"pass", s.Pass,
		"pass_total", s.PassTotal,
		"passes_done", s.PassesDone,
		"passes_per_second", s.PassesPerSecond,
		"cache_hit_ratio", s.CacheHitRatio,
		"eta_seconds", s.ETASeconds,
	}
}

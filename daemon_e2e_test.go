package gputopdown

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// startDaemon builds a real JobRunner-backed daemon on a free port and
// returns a client for it. The caller owns Drain (via cleanup).
func startDaemon(t *testing.T, workers int) (*JobServer, *JobClient) {
	t.Helper()
	runner := NewJobRunner("rtx4000")
	srv, err := NewJobServer(JobServerOptions{
		Runner:  runner.Run,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Drain(ctx) //nolint:errcheck // tests that drained already get the double-drain error
	})
	return srv, &JobClient{Base: "http://" + srv.Addr()}
}

// waitState polls until the job reaches want (or any terminal state) and
// returns the status.
func waitState(t *testing.T, c *JobClient, id string, want JobState, timeout time.Duration) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want || st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDaemonReportBitIdentical: a report fetched over the daemon's HTTP
// API equals the direct library run byte for byte once the only
// non-deterministic field (wall_seconds) is zeroed — the service layer
// adds no perturbation.
func TestDaemonReportBitIdentical(t *testing.T) {
	ctx := context.Background()
	app, err := GetApp("altis", "gups")
	if err != nil {
		t.Fatal(err)
	}
	direct := NewProfiler(QuadroRTX4000(), WithLevel(3))
	res, err := direct.ProfileApp(ctx, app)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Report()
	want.WallSeconds = 0

	_, c := startDaemon(t, 1)
	st, err := c.Submit(ctx, &JobRequest{Suite: "altis", App: "gups", Level: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 20*time.Millisecond); err != nil {
		t.Fatalf("job did not succeed: %v", err)
	}
	got, err := c.Report(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	got.WallSeconds = 0
	if !reflect.DeepEqual(got, want) {
		t.Errorf("daemon report differs from direct library run:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestDaemonCancelRunning: DELETE on a job mid-simulation lands within the
// 2s budget (cancellation is checked inside the pass loop, not just
// between kernels) and the store records cancelled.
func TestDaemonCancelRunning(t *testing.T) {
	ctx := context.Background()
	_, c := startDaemon(t, 1)
	// gemm at level 3 replays one large kernel ~8 times: tens of seconds
	// of work, so the cancel provably interrupts rather than outraces it.
	st, err := c.Submit(ctx, &JobRequest{Suite: "altis", App: "gemm", Level: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st.ID, StateRunning, 10*time.Second)

	cancelled := time.Now()
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, c, st.ID, StateCancelled, 2*time.Second)
	if final.State != StateCancelled {
		t.Fatalf("job after DELETE = %s (%s), want cancelled", final.State, final.Error)
	}
	if d := time.Since(cancelled); d > 2*time.Second {
		t.Errorf("cancellation took %v, want under 2s", d)
	}
}

// TestDaemonDrainWaitsForRunningJob: Drain (the SIGTERM path in
// cmd/gpuprofd) lets the in-flight job finish, then stops cleanly without
// leaking goroutines.
func TestDaemonDrainWaitsForRunningJob(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx := context.Background()
	srv, c := startDaemon(t, 1)
	st, err := c.Submit(ctx, &JobRequest{Suite: "altis", App: "gemm", Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st.ID, StateRunning, 10*time.Second)

	dctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	final, err := srv.Store().Status(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateSucceeded {
		t.Errorf("running job after graceful drain = %s (%s), want succeeded", final.State, final.Error)
	}

	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d > %d before test: drain leaked", runtime.NumGoroutine(), before)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

package gputopdown_test

import (
	"context"
	"fmt"

	"gputopdown"
)

// The godoc examples below run as tests, so the documented workflows can
// never rot. They use heavily downscaled devices to stay fast.

// ExampleProfiler_ProfileApp profiles one benchmark and reads the level-1
// hierarchy components.
func ExampleProfiler_ProfileApp() {
	spec := gputopdown.QuadroRTX4000().WithSMs(2)
	profiler := gputopdown.NewProfiler(spec, gputopdown.WithLevel(1))

	app, _ := gputopdown.LookupApp("altis", "maxflops")
	res, err := profiler.ProfileApp(context.Background(), app)
	if err != nil {
		panic(err)
	}
	a := res.Aggregate
	// maxflops is a pure FMA chain: nearly all of IPC_MAX retires.
	fmt.Println("tool:", a.Tool)
	fmt.Println("passes:", res.Passes)
	fmt.Println("retire dominates:", a.Retire > a.Divergence+a.Stall)
	// Output:
	// tool: ncu
	// passes: 1
	// retire dominates: true
}

// ExampleProfiler_ProfileApp_pascal shows the compute-capability dispatch:
// the same call on a CC 6.1 device consumes nvprof metrics.
func ExampleProfiler_ProfileApp_pascal() {
	spec := gputopdown.GTX1070().WithSMs(2)
	profiler := gputopdown.NewProfiler(spec, gputopdown.WithLevel(3))

	app, _ := gputopdown.LookupApp("shoc", "triad")
	res, err := profiler.ProfileApp(context.Background(), app)
	if err != nil {
		panic(err)
	}
	// Level 3 is capped to 2 below CC 7.2 (paper Fig. 3).
	fmt.Println("tool:", res.Aggregate.Tool)
	fmt.Println("level:", res.Aggregate.Level)
	// Output:
	// tool: nvprof
	// level: 2
}

// ExampleAppResult_Series retrieves the per-invocation dynamic analysis of
// one kernel (the paper's Figs. 11-12 workflow).
func ExampleAppResult_Series() {
	spec := gputopdown.QuadroRTX4000().WithSMs(2)
	profiler := gputopdown.NewProfiler(spec, gputopdown.WithLevel(1))

	app, _ := gputopdown.LookupApp("rodinia", "srad_v1")
	res, err := profiler.ProfileApp(context.Background(), app)
	if err != nil {
		panic(err)
	}
	series := res.Series("srad_cuda_1")
	fmt.Println("invocations:", len(series))
	fmt.Println("kernels:", res.KernelNames())
	// Output:
	// invocations: 24
	// kernels: [srad_cuda_1 srad_cuda_2]
}

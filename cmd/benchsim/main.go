// Command benchsim measures the fast-forward launch engine against the
// naive cycle-by-cycle loop on real suite applications, verifies that both
// engines produce bit-identical results, and writes a machine-readable
// report (BENCH_sim.json).
//
// The run fails (non-zero exit) when the memory-bound reference application
// falls below the required speedup — the regression gate the CI bench smoke
// job enforces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"strings"
	"time"

	"gputopdown/internal/gpu"
	"gputopdown/internal/kernel"
	"gputopdown/internal/sim"
	"gputopdown/internal/sm"
	"gputopdown/internal/workloads"
)

// defaultApps spans the workload classes: the memory-latency-bound
// reference (gups), a serialized solver (myocyte), streaming bandwidth
// (triad), and a compute-bound worst case for the engine (maxflops).
const defaultApps = "altis/gups,rodinia/myocyte,shoc/triad,altis/maxflops"

type result struct {
	GPU     string  `json:"gpu"`
	Suite   string  `json:"suite"`
	App     string  `json:"app"`
	NaiveMS float64 `json:"naive_ms"`
	FastMS  float64 `json:"ff_ms"`
	Speedup float64 `json:"speedup"`
	// Identical reports that the two engines produced bit-identical
	// aggregate results (cycles and device counters over every launch).
	Identical bool `json:"identical"`
}

type report struct {
	GPU     string   `json:"gpu"`
	Reps    int      `json:"reps"`
	Ref     string   `json:"ref"`
	RefMin  float64  `json:"ref_min_speedup"`
	Results []result `json:"results"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchsim: "+format+"\n", args...)
	os.Exit(1)
}

// aggregate is everything a launch sequence observably produces, folded
// into one comparable value.
type aggregate struct {
	Cycles   uint64
	Counters sm.Counters
	Launches int
}

// measure runs app once under the given engine, timing only the Launch
// calls (host-side input generation is engine-independent).
func measure(app *workloads.App, spec *gpu.Spec, ff bool) (time.Duration, aggregate) {
	dev := sim.NewDevice(spec)
	dev.SetFastForward(ff)
	var agg aggregate
	var simTime time.Duration
	err := app.Execute(dev, func(l *kernel.Launch) error {
		start := time.Now()
		res, err := dev.Launch(l)
		simTime += time.Since(start)
		if err != nil {
			return err
		}
		agg.Cycles += res.Cycles
		agg.Counters.Add(&res.Counters)
		agg.Launches++
		return nil
	})
	if err != nil {
		fatalf("%s: %v", app.ID(), err)
	}
	return simTime, agg
}

func main() {
	gpuID := flag.String("gpu", "gtx1070", "device model: gtx1070 or rtx4000")
	appList := flag.String("apps", defaultApps, "comma-separated suite/name pairs, or 'all' for every suite app")
	reps := flag.Int("reps", 3, "repetitions per engine; engines are interleaved and the minimum is kept")
	out := flag.String("out", "BENCH_sim.json", "output report path ('-' for stdout)")
	ref := flag.String("ref", "altis/gups", "memory-bound reference app the speedup gate applies to")
	refMin := flag.Float64("ref-min", 1.0, "minimum required speedup on the reference app")
	flag.Parse()

	spec, ok := gpu.Lookup(*gpuID)
	if !ok {
		fatalf("unknown GPU %q", *gpuID)
	}

	var apps []*workloads.App
	if *appList == "all" {
		for _, s := range workloads.Suites() {
			apps = append(apps, workloads.BySuite(s)...)
		}
	} else {
		for _, id := range strings.Split(*appList, ",") {
			suite, name, ok := strings.Cut(strings.TrimSpace(id), "/")
			if !ok {
				fatalf("bad app id %q (want suite/name)", id)
			}
			a, ok := workloads.Lookup(suite, name)
			if !ok {
				fatalf("unknown app %s/%s", suite, name)
			}
			apps = append(apps, a)
		}
	}

	rep := report{GPU: *gpuID, Reps: *reps, Ref: *ref, RefMin: *refMin}
	gateFailed := false
	refMeasured := false
	for _, a := range apps {
		var naive, fast time.Duration = 1 << 62, 1 << 62
		var naiveAgg, fastAgg aggregate
		// Interleave engines so slow drift in machine load hits both
		// equally; keep the per-engine minimum.
		for r := 0; r < *reps; r++ {
			if d, g := measure(a, spec, false); d < naive {
				naive, naiveAgg = d, g
			}
			if d, g := measure(a, spec, true); d < fast {
				fast, fastAgg = d, g
			}
		}
		res := result{
			GPU:       *gpuID,
			Suite:     a.Suite,
			App:       a.Name,
			NaiveMS:   float64(naive.Microseconds()) / 1000,
			FastMS:    float64(fast.Microseconds()) / 1000,
			Speedup:   float64(naive) / float64(fast),
			Identical: reflect.DeepEqual(naiveAgg, fastAgg),
		}
		rep.Results = append(rep.Results, res)
		fmt.Printf("%-8s %-28s naive=%9.1fms ff=%9.1fms speedup=%5.2fx identical=%v\n",
			*gpuID, a.ID(), res.NaiveMS, res.FastMS, res.Speedup, res.Identical)
		if !res.Identical {
			fmt.Fprintf(os.Stderr, "benchsim: %s: engines diverge (naive %+v, ff %+v)\n", a.ID(), naiveAgg, fastAgg)
			gateFailed = true
		}
		if a.ID() == *ref {
			refMeasured = true
			if res.Speedup < *refMin {
				fmt.Fprintf(os.Stderr, "benchsim: reference %s speedup %.2fx below required %.2fx\n",
					a.ID(), res.Speedup, *refMin)
				gateFailed = true
			}
		}
	}
	if !refMeasured {
		fmt.Fprintf(os.Stderr, "benchsim: reference %s not in -apps; speedup gate did not run\n", *ref)
		gateFailed = true
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("encode: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	if gateFailed {
		os.Exit(1)
	}
}

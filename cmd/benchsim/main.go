// Command benchsim measures the fast-forward launch engine against the
// naive cycle-by-cycle loop on real suite applications, verifies that both
// engines produce bit-identical results, and appends a machine-readable
// entry to the BENCH_sim.json trajectory — one entry per engine generation,
// so the file records how the simulator sped up over time.
//
// The run fails (non-zero exit) when any gated reference application falls
// below its required speedup (-refs) — the regression gate the CI bench
// smoke job enforces. -compare prints per-app deltas against a baseline
// report; -cpuprofile captures a pprof profile of the measured launches.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"gputopdown/internal/check"
	"gputopdown/internal/gpu"
	"gputopdown/internal/kernel"
	"gputopdown/internal/sim"
	"gputopdown/internal/sm"
	"gputopdown/internal/workloads"
)

// defaultApps spans the workload classes: the memory-latency-bound
// reference (gups), a serialized solver (myocyte), streaming bandwidth
// (triad), and a compute-bound worst case for the engine (maxflops).
const defaultApps = "altis/gups,rodinia/myocyte,shoc/triad,altis/maxflops"

// defaultRefs gates both ends of the workload spectrum: the memory-bound
// reference must keep its fast-forward win, and the compute-bound reference
// must stay within noise of the naive loop. Both floors were recalibrated
// (gups from 3.0, maxflops from 1.0) when the device model gained the
// address-sliced L2/DRAM: per-channel queues stall differently, leaving
// fewer provably idle spans to skip, and single-run maxflops jitter is
// a few percent.
const defaultRefs = "altis/gups:2.0,altis/maxflops:0.95"

type result struct {
	GPU     string  `json:"gpu"`
	Suite   string  `json:"suite"`
	App     string  `json:"app"`
	NaiveMS float64 `json:"naive_ms"`
	FastMS  float64 `json:"ff_ms"`
	Speedup float64 `json:"speedup"`
	// Identical reports that the two engines produced bit-identical
	// aggregate results (cycles and device counters over every launch).
	Identical bool `json:"identical"`
	// Parallel-engine columns, present when -sim-workers > 1: wall time,
	// speedup over the sequential fast-forward engine, and bit-identity of
	// the parallel run against the naive baseline.
	ParWorkers   int     `json:"par_workers,omitempty"`
	ParMS        float64 `json:"par_ms,omitempty"`
	ParSpeedup   float64 `json:"par_speedup,omitempty"`
	ParIdentical bool    `json:"par_identical,omitempty"`
}

// entry is one trajectory element: a full benchmark run of one engine
// generation.
type entry struct {
	Engine  string             `json:"engine"`
	GPU     string             `json:"gpu"`
	Reps    int                `json:"reps"`
	Refs    map[string]float64 `json:"ref_min_speedup"`
	Results []result           `json:"results"`
}

// trajectory is the BENCH_sim.json top level: entries oldest-first.
type trajectory struct {
	Trajectory []entry `json:"trajectory"`
}

// legacyReport is the pre-trajectory single-run format, recognised on read
// so existing files upgrade in place.
type legacyReport struct {
	GPU     string   `json:"gpu"`
	Reps    int      `json:"reps"`
	Ref     string   `json:"ref"`
	RefMin  float64  `json:"ref_min_speedup"`
	Results []result `json:"results"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchsim: "+format+"\n", args...)
	os.Exit(1)
}

// loadTrajectory reads path in either format. A missing file yields an
// empty trajectory; a legacy single-report file becomes a one-entry
// trajectory labelled with its engine generation.
func loadTrajectory(path string) trajectory {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return trajectory{}
		}
		fatalf("read %s: %v", path, err)
	}
	var tr trajectory
	if err := json.Unmarshal(raw, &tr); err == nil && tr.Trajectory != nil {
		return tr
	}
	var old legacyReport
	if err := json.Unmarshal(raw, &old); err == nil && old.Results != nil {
		e := entry{
			Engine:  "event-ff",
			GPU:     old.GPU,
			Reps:    old.Reps,
			Refs:    map[string]float64{old.Ref: old.RefMin},
			Results: old.Results,
		}
		return trajectory{Trajectory: []entry{e}}
	}
	fatalf("%s: neither a trajectory nor a legacy benchsim report", path)
	panic("unreachable")
}

// lastEntry returns the newest trajectory entry of a report file, for
// -compare baselines.
func lastEntry(path string) entry {
	tr := loadTrajectory(path)
	if len(tr.Trajectory) == 0 {
		fatalf("%s: empty trajectory", path)
	}
	return tr.Trajectory[len(tr.Trajectory)-1]
}

// parseRefs parses "suite/app:minSpeedup,..." into the gate map.
func parseRefs(s string) map[string]float64 {
	refs := make(map[string]float64)
	if strings.TrimSpace(s) == "" {
		return refs
	}
	for _, part := range strings.Split(s, ",") {
		id, minStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			fatalf("bad ref gate %q (want suite/app:minSpeedup)", part)
		}
		min, err := strconv.ParseFloat(minStr, 64)
		if err != nil {
			fatalf("bad ref gate %q: %v", part, err)
		}
		refs[id] = min
	}
	return refs
}

// aggregate is everything a launch sequence observably produces, folded
// into one comparable value.
type aggregate struct {
	Cycles   uint64
	Counters sm.Counters
	Launches int
}

// inv is the -checks invariant checker, attached to every measured device
// when enabled; nil keeps the zero-cost disabled path.
var inv *check.Invariants

// measure runs app once under the given engine, timing only the Launch
// calls (host-side input generation is engine-independent). workers > 1
// selects the parallel epoch-lockstep engine.
func measure(app *workloads.App, spec *gpu.Spec, ff bool, workers int) (time.Duration, aggregate) {
	dev := sim.NewDevice(spec)
	dev.SetFastForward(ff)
	dev.SetSimWorkers(workers)
	if inv != nil {
		dev.SetChecker(inv)
	}
	var agg aggregate
	var simTime time.Duration
	err := app.Execute(dev, func(l *kernel.Launch) error {
		start := time.Now()
		res, err := dev.Launch(l)
		simTime += time.Since(start)
		if err != nil {
			return err
		}
		agg.Cycles += res.Cycles
		agg.Counters.Add(&res.Counters)
		agg.Launches++
		return nil
	})
	if err != nil {
		fatalf("%s: %v", app.ID(), err)
	}
	return simTime, agg
}

func main() {
	gpuID := flag.String("gpu", "gtx1070", "device model: gtx1070 or rtx4000")
	appList := flag.String("apps", defaultApps, "comma-separated suite/name pairs, or 'all' for every suite app")
	reps := flag.Int("reps", 3, "repetitions per engine; engines are interleaved and the minimum is kept")
	out := flag.String("out", "BENCH_sim.json", "trajectory report path ('-' for stdout)")
	refList := flag.String("refs", defaultRefs, "comma-separated suite/app:minSpeedup gates")
	engine := flag.String("engine", "parallel-sliced", "trajectory entry label for this engine generation")
	compare := flag.String("compare", "", "baseline report to print per-app deltas against (legacy or trajectory format)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the measured launches to this file")
	simWorkers := flag.Int("sim-workers", 0, "also measure the parallel engine with this many intra-launch workers (0 disables)")
	parRefList := flag.String("par-refs", "", "comma-separated suite/app:minParSpeedup gates on the parallel engine (enforced only when the host has >= -sim-workers CPUs)")
	scaling := flag.String("scaling", "", "comma-separated worker counts (e.g. 1,2,4,8): print a parallel-engine scaling table per app instead of gating")
	checks := flag.Bool("checks", false, "assert simulator conservation laws on every measured run (internal/check; perturbs timings — not for record-keeping runs)")
	flag.Parse()

	if *checks {
		inv = check.New()
		defer func() {
			if err := inv.Err(); err != nil {
				fatalf("invariant checks failed:\n%v", err)
			}
			fmt.Fprintln(os.Stderr, "benchsim: invariant checks passed")
		}()
	}

	spec, ok := gpu.Lookup(*gpuID)
	if !ok {
		fatalf("unknown GPU %q", *gpuID)
	}
	refs := parseRefs(*refList)

	var apps []*workloads.App
	if *appList == "all" {
		for _, s := range workloads.Suites() {
			apps = append(apps, workloads.BySuite(s)...)
		}
	} else {
		for _, id := range strings.Split(*appList, ",") {
			suite, name, ok := strings.Cut(strings.TrimSpace(id), "/")
			if !ok {
				fatalf("bad app id %q (want suite/name)", id)
			}
			a, ok := workloads.Lookup(suite, name)
			if !ok {
				fatalf("unknown app %s/%s", suite, name)
			}
			apps = append(apps, a)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	if *scaling != "" {
		runScalingSweep(apps, spec, *gpuID, *scaling, *reps)
		return
	}

	parRefs := parseRefs(*parRefList)
	parGateLive := runtime.NumCPU() >= *simWorkers
	if *simWorkers > 1 && !parGateLive {
		fmt.Fprintf(os.Stderr, "benchsim: host has %d CPUs < %d sim workers; parallel speedup gates report only\n",
			runtime.NumCPU(), *simWorkers)
	}

	cur := entry{Engine: *engine, GPU: *gpuID, Reps: *reps, Refs: refs}
	gateFailed := false
	refsSeen := make(map[string]bool)
	for _, a := range apps {
		var naive, fast, par time.Duration = 1 << 62, 1 << 62, 1 << 62
		var naiveAgg, fastAgg, parAgg aggregate
		// Interleave engines so slow drift in machine load hits both
		// equally; keep the per-engine minimum.
		for r := 0; r < *reps; r++ {
			if d, g := measure(a, spec, false, 1); d < naive {
				naive, naiveAgg = d, g
			}
			if d, g := measure(a, spec, true, 1); d < fast {
				fast, fastAgg = d, g
			}
			if *simWorkers > 1 {
				if d, g := measure(a, spec, true, *simWorkers); d < par {
					par, parAgg = d, g
				}
			}
		}
		res := result{
			GPU:       *gpuID,
			Suite:     a.Suite,
			App:       a.Name,
			NaiveMS:   float64(naive.Microseconds()) / 1000,
			FastMS:    float64(fast.Microseconds()) / 1000,
			Speedup:   float64(naive) / float64(fast),
			Identical: reflect.DeepEqual(naiveAgg, fastAgg),
		}
		if *simWorkers > 1 {
			res.ParWorkers = *simWorkers
			res.ParMS = float64(par.Microseconds()) / 1000
			res.ParSpeedup = float64(fast) / float64(par)
			res.ParIdentical = reflect.DeepEqual(naiveAgg, parAgg)
		}
		cur.Results = append(cur.Results, res)
		fmt.Printf("%-8s %-28s naive=%9.1fms ff=%9.1fms speedup=%5.2fx identical=%v",
			*gpuID, a.ID(), res.NaiveMS, res.FastMS, res.Speedup, res.Identical)
		if *simWorkers > 1 {
			fmt.Printf(" par(%d)=%9.1fms par_speedup=%5.2fx par_identical=%v",
				res.ParWorkers, res.ParMS, res.ParSpeedup, res.ParIdentical)
		}
		fmt.Println()
		if !res.Identical {
			fmt.Fprintf(os.Stderr, "benchsim: %s: engines diverge (naive %+v, ff %+v)\n", a.ID(), naiveAgg, fastAgg)
			gateFailed = true
		}
		if *simWorkers > 1 && !res.ParIdentical {
			fmt.Fprintf(os.Stderr, "benchsim: %s: parallel engine diverges (naive %+v, par %+v)\n", a.ID(), naiveAgg, parAgg)
			gateFailed = true
		}
		if min, gated := refs[a.ID()]; gated {
			refsSeen[a.ID()] = true
			if res.Speedup < min {
				fmt.Fprintf(os.Stderr, "benchsim: reference %s speedup %.2fx below required %.2fx\n",
					a.ID(), res.Speedup, min)
				gateFailed = true
			}
		}
		if min, gated := parRefs[a.ID()]; gated && *simWorkers > 1 {
			if res.ParSpeedup < min {
				fmt.Fprintf(os.Stderr, "benchsim: reference %s parallel speedup %.2fx below required %.2fx\n",
					a.ID(), res.ParSpeedup, min)
				if parGateLive {
					gateFailed = true
				}
			}
		}
	}
	for id := range refs {
		if !refsSeen[id] {
			fmt.Fprintf(os.Stderr, "benchsim: reference %s not in -apps; its speedup gate did not run\n", id)
			gateFailed = true
		}
	}

	if *compare != "" {
		printComparison(lastEntry(*compare), cur)
	}

	tr := loadTrajectory(*out)
	if *out == "-" {
		tr = trajectory{}
	}
	// Re-running the same engine generation replaces its entry in place, so
	// iterating on one machine does not grow the file.
	replaced := false
	for i := range tr.Trajectory {
		if tr.Trajectory[i].Engine == cur.Engine {
			tr.Trajectory[i] = cur
			replaced = true
			break
		}
	}
	if !replaced {
		tr.Trajectory = append(tr.Trajectory, cur)
	}
	enc, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		fatalf("encode: %v", err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	if gateFailed {
		os.Exit(1)
	}
}

// runScalingSweep measures each app under the parallel engine at every
// requested worker count (fast-forward on throughout) and prints a scaling
// table: wall time and speedup relative to the 1-worker (sequential) run.
// Bit-identity against the 1-worker aggregate is checked at every point.
func runScalingSweep(apps []*workloads.App, spec *gpu.Spec, gpuID, counts string, reps int) {
	var workers []int
	for _, part := range strings.Split(counts, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fatalf("bad -scaling entry %q (want a positive worker count)", part)
		}
		workers = append(workers, n)
	}
	fmt.Printf("parallel-engine scaling on %s (host CPUs: %d, reps: %d)\n", gpuID, runtime.NumCPU(), reps)
	diverged := false
	for _, a := range apps {
		fmt.Printf("%-28s", a.ID())
		var baseDur time.Duration
		var baseAgg aggregate
		for i, w := range workers {
			best := time.Duration(1 << 62)
			var bestAgg aggregate
			for r := 0; r < reps; r++ {
				if d, g := measure(a, spec, true, w); d < best {
					best, bestAgg = d, g
				}
			}
			if i == 0 {
				baseDur, baseAgg = best, bestAgg
			}
			ok := reflect.DeepEqual(baseAgg, bestAgg)
			if !ok {
				diverged = true
			}
			fmt.Printf("  w=%d %9.1fms %5.2fx id=%v", w,
				float64(best.Microseconds())/1000, float64(baseDur)/float64(best), ok)
		}
		fmt.Println()
	}
	if diverged {
		fatalf("scaling sweep: worker counts diverge")
	}
}

// printComparison prints per-app fast-forward deltas of the current run
// against a baseline entry, matching apps by suite/name.
func printComparison(base, cur entry) {
	byID := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		byID[r.Suite+"/"+r.App] = r
	}
	ids := make([]string, 0, len(cur.Results))
	for _, r := range cur.Results {
		ids = append(ids, r.Suite+"/"+r.App)
	}
	sort.Strings(ids)
	fmt.Printf("\ncomparison vs baseline engine %q (gpu %s):\n", base.Engine, base.GPU)
	fmt.Printf("%-28s %12s %12s %8s %10s\n", "app", "base ff ms", "head ff ms", "delta", "speedup")
	for _, id := range ids {
		var c result
		for _, r := range cur.Results {
			if r.Suite+"/"+r.App == id {
				c = r
				break
			}
		}
		b, ok := byID[id]
		if !ok {
			fmt.Printf("%-28s %12s %12.1f %8s %9.2fx (not in baseline)\n", id, "-", c.FastMS, "-", c.Speedup)
			continue
		}
		delta := 0.0
		if b.FastMS > 0 {
			delta = (c.FastMS - b.FastMS) / b.FastMS * 100
		}
		fmt.Printf("%-28s %12.1f %12.1f %+7.1f%% %9.2fx (base %.2fx)\n",
			id, b.FastMS, c.FastMS, delta, c.Speedup, b.Speedup)
	}
}

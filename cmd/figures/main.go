// Command figures regenerates every table and figure of the paper's
// evaluation (§V): Table IX, the binaryPartitionCG tile sweep (Fig. 4), the
// Rodinia and Altis suite analyses at levels 1-3 (Figs. 5-10), the srad
// dynamic series (Figs. 11-12) and the profiling-overhead comparison
// (Fig. 13).
//
// Suite runs are shared across figures (a level-3 profile contains the
// level-1 and level-2 data), so -fig all performs four suite profiles plus
// the dynamic run.
//
// Examples:
//
//	figures -fig table9
//	figures -fig 4 -format csv
//	figures -fig all -sms 8 > figures.txt   # downscaled quick run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"gputopdown"
)

type config struct {
	sms    int
	format string // "table" or "csv"
	outDir string // when set, every table is also written as a CSV file

	// Cached suite results, computed on demand.
	rodiniaTuring []*gputopdown.AppResult
	rodiniaPascal []*gputopdown.AppResult
	altisTuring   []*gputopdown.AppResult
	samplesTuring []*gputopdown.AppResult
	sradDynamic   *gputopdown.AppResult
}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: table9, 4..13, or all")
	sms := flag.Int("sms", 0, "override the SM count (0 = full device)")
	format := flag.String("format", "table", "output format: table or csv")
	outDir := flag.String("out", "", "also write each emitted table as a CSV file into this directory")
	flag.Parse()

	cfg := &config{sms: *sms, format: *format, outDir: *outDir}
	if cfg.outDir != "" {
		if err := os.MkdirAll(cfg.outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}
	figs := map[string]func(*config){
		"table9": table9,
		"4":      fig4,
		"5":      fig5,
		"6":      fig6,
		"7":      fig7,
		"8":      fig8,
		"9":      fig9,
		"10":     fig10,
		"11":     fig11,
		"12":     fig12,
		"13":     fig13,
	}
	if *fig == "all" {
		for _, id := range []string{"table9", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13"} {
			figs[id](cfg)
			fmt.Println()
		}
		return
	}
	f, ok := figs[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %q\n", *fig)
		os.Exit(1)
	}
	f(cfg)
}

func (c *config) device(id string) *gputopdown.GPUSpec {
	spec, _ := gputopdown.LookupGPU(id)
	if c.sms > 0 {
		spec = spec.WithSMs(c.sms)
	}
	return spec
}

func (c *config) suite(name, gpuID string, level int, cache *[]*gputopdown.AppResult) []*gputopdown.AppResult {
	if *cache != nil {
		return *cache
	}
	p := gputopdown.NewProfiler(c.device(gpuID), gputopdown.WithLevel(level))
	res, err := p.ProfileSuite(context.Background(), name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %s on %s: %v\n", name, gpuID, err)
		os.Exit(1)
	}
	*cache = res
	return res
}

func (c *config) dynamic() *gputopdown.AppResult {
	if c.sradDynamic != nil {
		return c.sradDynamic
	}
	p := gputopdown.NewProfiler(c.device("rtx4000"), gputopdown.WithLevel(1))
	res, err := p.ProfileApp(context.Background(), gputopdown.SradDynamic())
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: srad dynamic: %v\n", err)
		os.Exit(1)
	}
	c.sradDynamic = res
	return res
}

// emit prints one table in the configured format and, when -out is set,
// writes it as a CSV file named after the title.
func (c *config) emit(title string, header []string, rows [][]string) {
	if c.outDir != "" {
		c.writeCSV(title, header, rows)
	}
	if c.format == "csv" {
		fmt.Printf("# %s\n", title)
		fmt.Println(strings.Join(header, ","))
		for _, r := range rows {
			fmt.Println(strings.Join(r, ","))
		}
		return
	}
	fmt.Println(title)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i == 0 {
				fmt.Printf("%-*s", widths[i]+2, cell)
			} else {
				fmt.Printf("%*s", widths[i]+2, cell)
			}
		}
		fmt.Println()
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
}

func (c *config) writeCSV(title string, header []string, rows [][]string) {
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == ' ' || r == '.' || r == '(' || r == ')':
			return '_'
		default:
			return -1
		}
	}, strings.SplitN(title, ".", 2)[0])
	path := fmt.Sprintf("%s/%s.csv", c.outDir, slug)
	var sb strings.Builder
	sb.WriteString(strings.Join(header, ",") + "\n")
	for _, r := range rows {
		sb.WriteString(strings.Join(r, ",") + "\n")
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
}

func pct(v float64) string { return fmt.Sprintf("%.1f", 100*v) }

func table9(c *config) {
	g := c.device("gtx1070")
	q := c.device("rtx4000")
	rows := [][]string{
		{"Compute Capability", fmt.Sprintf("%s (%s)", g.Compute, g.Architecture), fmt.Sprintf("%s (%s)", q.Compute, q.Architecture)},
		{"Memory", fmt.Sprintf("%dGB %s", g.MemoryGB, g.MemoryType), fmt.Sprintf("%dGB %s", q.MemoryGB, q.MemoryType)},
		{"CUDA cores", fmt.Sprint(g.CUDACores), fmt.Sprint(q.CUDACores)},
		{"SMs", fmt.Sprint(g.SMs), fmt.Sprint(q.SMs)},
		{"SM Subpartitions", fmt.Sprint(g.SubpartitionsPerSM), fmt.Sprint(q.SubpartitionsPerSM)},
		{"Power", fmt.Sprintf("%dW", g.PowerW), fmt.Sprintf("%dW", q.PowerW)},
		{"IPC_MAX", fmt.Sprintf("%.0f", g.IPCMax()), fmt.Sprintf("%.0f", q.IPCMax())},
	}
	c.emit("Table IX. GPU characteristics", []string{"Feature", g.Name, q.Name}, rows)
}

func level1Rows(results []*gputopdown.AppResult) [][]string {
	var rows [][]string
	var avg [4]float64
	for _, r := range results {
		a := r.Aggregate
		f := a.Fraction
		vals := [4]float64{f(a.Retire), f(a.Divergence), f(a.Frontend), f(a.Backend)}
		rows = append(rows, []string{r.App, pct(vals[0]), pct(vals[1]), pct(vals[2]), pct(vals[3])})
		for i := range avg {
			avg[i] += vals[i] / float64(len(results))
		}
	}
	rows = append(rows, []string{"AVERAGE", pct(avg[0]), pct(avg[1]), pct(avg[2]), pct(avg[3])})
	return rows
}

var level1Header = []string{"app", "retire%", "divergence%", "frontend%", "backend%"}

func fig4(c *config) {
	res := c.suite("cudasamples", "rtx4000", 3, &c.samplesTuring)
	// Level 1.
	c.emit("Figure 4 (left). binaryPartitionCG Top-Down level 1 vs tile size (Turing)",
		level1Header, level1Rows(res))
	fmt.Println()
	// Level 2.
	var rows [][]string
	for _, r := range res {
		a := r.Aggregate
		f := a.Fraction
		rows = append(rows, []string{r.App,
			pct(f(a.Branch)), pct(f(a.Replay)),
			pct(f(a.Fetch)), pct(f(a.Decode)),
			pct(f(a.Core)), pct(f(a.Memory))})
	}
	c.emit("Figure 4 (right). binaryPartitionCG Top-Down level 2 vs tile size (Turing)",
		[]string{"app", "branch%", "replay%", "fetch%", "decode%", "core%", "memory%"}, rows)
}

func fig5(c *config) {
	pas := c.suite("rodinia", "gtx1070", 2, &c.rodiniaPascal)
	c.emit("Figure 5 (top). Rodinia Top-Down level 1 on Pascal (GTX 1070)",
		level1Header, level1Rows(pas))
	fmt.Println()
	tur := c.suite("rodinia", "rtx4000", 3, &c.rodiniaTuring)
	c.emit("Figure 5 (bottom). Rodinia Top-Down level 1 on Turing (Quadro RTX 4000)",
		level1Header, level1Rows(tur))
}

// level2Rows normalises components to total IPC degradation, as the paper's
// level-2/3 figures do.
func level2Rows(results []*gputopdown.AppResult) [][]string {
	var rows [][]string
	n := float64(len(results))
	var avg [6]float64
	for _, r := range results {
		a := r.Aggregate
		deg := a.Degradation()
		norm := func(v float64) float64 {
			if deg <= 0 {
				return 0
			}
			return v / deg
		}
		vals := [6]float64{norm(a.Branch), norm(a.Replay), norm(a.Fetch),
			norm(a.Decode), norm(a.Core), norm(a.Memory)}
		rows = append(rows, []string{r.App, pct(vals[0]), pct(vals[1]),
			pct(vals[2]), pct(vals[3]), pct(vals[4]), pct(vals[5])})
		for i := range avg {
			avg[i] += vals[i] / n
		}
	}
	rows = append(rows, []string{"AVERAGE", pct(avg[0]), pct(avg[1]),
		pct(avg[2]), pct(avg[3]), pct(avg[4]), pct(avg[5])})
	return rows
}

var level2Header = []string{"app", "branch%", "replay%", "fetch%", "decode%", "core%", "memory%"}

// level3Segments is the order the level-3 figures report.
var level3Segments = []struct {
	group string
	seg   string
}{
	{"fetch", "no_instruction"}, {"fetch", "barrier"}, {"fetch", "membar"},
	{"fetch", "branch_resolving"}, {"fetch", "sleeping"},
	{"decode", "misc"}, {"decode", "dispatch_stall"},
	{"core", "math_pipe_throttle"}, {"core", "wait"}, {"core", "tex_throttle"},
	{"memory", "long_scoreboard"}, {"memory", "imc_miss"},
	{"memory", "mio_throttle"}, {"memory", "lg_throttle"},
	{"memory", "short_scoreboard"}, {"memory", "drain"},
}

func level3Rows(results []*gputopdown.AppResult) ([]string, [][]string) {
	header := []string{"app"}
	for _, s := range level3Segments {
		header = append(header, s.seg+"%")
	}
	var rows [][]string
	avg := make([]float64, len(level3Segments))
	for _, r := range results {
		a := r.Aggregate
		deg := a.Degradation()
		row := []string{r.App}
		for i, s := range level3Segments {
			var d map[string]float64
			switch s.group {
			case "fetch":
				d = a.FetchDetail
			case "decode":
				d = a.DecodeDetail
			case "core":
				d = a.CoreDetail
			default:
				d = a.MemoryDetail
			}
			v := 0.0
			if d != nil && deg > 0 {
				v = d[s.seg] / deg
			}
			row = append(row, pct(v))
			avg[i] += v / float64(len(results))
		}
		rows = append(rows, row)
	}
	avgRow := []string{"AVERAGE"}
	for _, v := range avg {
		avgRow = append(avgRow, pct(v))
	}
	rows = append(rows, avgRow)
	return header, rows
}

func fig6(c *config) {
	res := c.suite("rodinia", "rtx4000", 3, &c.rodiniaTuring)
	c.emit("Figure 6. Rodinia Top-Down level 2 on Turing (normalised to total IPC degradation)",
		level2Header, level2Rows(res))
}

func fig7(c *config) {
	res := c.suite("rodinia", "rtx4000", 3, &c.rodiniaTuring)
	h, rows := level3Rows(res)
	c.emit("Figure 7. Rodinia Top-Down level 3 on Turing (normalised to total IPC degradation)", h, rows)
}

func fig8(c *config) {
	res := c.suite("altis", "rtx4000", 3, &c.altisTuring)
	c.emit("Figure 8. Altis Top-Down level 1 on Turing", level1Header, level1Rows(res))
}

func fig9(c *config) {
	res := c.suite("altis", "rtx4000", 3, &c.altisTuring)
	c.emit("Figure 9. Altis Top-Down level 2 on Turing (normalised to total IPC degradation)",
		level2Header, level2Rows(res))
}

func fig10(c *config) {
	res := c.suite("altis", "rtx4000", 3, &c.altisTuring)
	h, rows := level3Rows(res)
	c.emit("Figure 10. Altis Top-Down level 3 on Turing (normalised to total IPC degradation)", h, rows)
}

func dynamicRows(res *gputopdown.AppResult, kernelName string) [][]string {
	var rows [][]string
	for i, a := range res.Series(kernelName) {
		f := a.Fraction
		rows = append(rows, []string{fmt.Sprint(i), fmt.Sprintf("%.0f", a.Weight),
			pct(f(a.Retire)), pct(f(a.Divergence)), pct(f(a.Frontend)), pct(f(a.Backend))})
	}
	return rows
}

var dynamicHeader = []string{"invocation", "cycles", "retire%", "divergence%", "frontend%", "backend%"}

func fig11(c *config) {
	res := c.dynamic()
	c.emit("Figure 11. Level-1 Top-Down evolution of srad_cuda_1 on Turing",
		dynamicHeader, dynamicRows(res, "srad_cuda_1"))
}

func fig12(c *config) {
	res := c.dynamic()
	c.emit("Figure 12. Level-1 Top-Down evolution of srad_cuda_2 on Turing",
		dynamicHeader, dynamicRows(res, "srad_cuda_2"))
}

func fig13(c *config) {
	rod := c.suite("rodinia", "rtx4000", 3, &c.rodiniaTuring)
	alt := c.suite("altis", "rtx4000", 3, &c.altisTuring)
	type entry struct {
		name string
		ovh  float64
	}
	var entries []entry
	for _, r := range rod {
		entries = append(entries, entry{"rodinia/" + r.App, r.Overhead()})
	}
	for _, r := range alt {
		entries = append(entries, entry{"altis/" + r.App, r.Overhead()})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	var rows [][]string
	var avg float64
	for _, e := range entries {
		rows = append(rows, []string{e.name, fmt.Sprintf("%.1f", e.ovh)})
		avg += e.ovh / float64(len(entries))
	}
	rows = append(rows, []string{"AVERAGE", fmt.Sprintf("%.1f", avg)})
	c.emit("Figure 13. Overhead of level-3 Top-Down analysis vs native execution on Turing (x)",
		[]string{"app", "overhead_x"}, rows)
}

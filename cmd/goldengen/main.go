// Command goldengen regenerates the golden-report corpus under
// internal/check/testdata/golden: one canonical JSON Top-Down report per
// suite application per evaluation GPU, profiled at the library defaults
// (level 3 — capped to 2 on the Pascal device — normalised, SMPC,
// sequential replay, fast-forward on). The corpus is the repository's
// end-to-end regression baseline: TestGoldenReports re-profiles every app
// and requires byte-identical output, so any change to simulator timing,
// counter accounting, or analysis equations shows up as a reviewable diff
// of these files.
//
// Run it via `make golden` after an intentional behavior change; on an
// unchanged tree it is a no-op (the files are byte-identical because the
// profiler is deterministic and wall-clock is zeroed by the canonical
// form).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"gputopdown"
	"gputopdown/internal/check"
)

// GPUs is the corpus device axis: both evaluation GPUs of the paper
// (Table IX), exercising the nvprof (CC < 7.2) and ncu metric paths.
var gpus = []string{"gtx1070", "rtx4000"}

func main() {
	dir := flag.String("dir", "internal/check/testdata/golden", "corpus root directory")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent profiles")
	flag.Parse()

	type job struct{ gpu, suite, app string }
	var jobs []job
	for _, g := range gpus {
		for _, s := range gputopdown.Suites() {
			for _, a := range gputopdown.SuiteApps(s) {
				jobs = append(jobs, job{gpu: g, suite: s, app: a.Name})
			}
		}
	}
	for _, g := range gpus {
		if err := os.MkdirAll(filepath.Join(*dir, g), 0o755); err != nil {
			fatalf("%v", err)
		}
	}

	var wrote, unchanged atomic.Int64
	var firstErr atomic.Value
	ch := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				path := filepath.Join(*dir, j.gpu, j.suite+"__"+j.app+".json")
				data, err := goldenFor(j.gpu, j.suite, j.app)
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("%s/%s on %s: %w", j.suite, j.app, j.gpu, err))
					continue
				}
				if old, err := os.ReadFile(path); err == nil && string(old) == string(data) {
					unchanged.Add(1)
					continue
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					firstErr.CompareAndSwap(nil, err)
					continue
				}
				wrote.Add(1)
				fmt.Printf("wrote %s\n", path)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("goldengen: %d reports (%d rewritten, %d unchanged)\n",
		len(jobs), wrote.Load(), unchanged.Load())
}

// goldenFor profiles one app at the corpus configuration and returns its
// canonical report bytes. The profiler configuration must match
// TestGoldenReports exactly; both sides use the library defaults.
func goldenFor(gpuID, suite, app string) ([]byte, error) {
	spec, ok := gputopdown.LookupGPU(gpuID)
	if !ok {
		return nil, fmt.Errorf("unknown gpu %q", gpuID)
	}
	a, err := gputopdown.GetApp(suite, app)
	if err != nil {
		return nil, err
	}
	p := gputopdown.NewProfiler(spec)
	res, err := p.ProfileApp(context.Background(), a)
	if err != nil {
		return nil, err
	}
	return check.ReportJSON(res.Report())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "goldengen: "+format+"\n", args...)
	os.Exit(1)
}

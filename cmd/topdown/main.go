// Command topdown is the paper's profiling tool: it runs a benchmark
// application on a simulated NVIDIA GPU under the Top-Down methodology and
// prints the hierarchical IPC breakdown (Retire / Divergence / Frontend /
// Backend, with level 2-3 detail on CC >= 7.2 devices).
//
// Examples:
//
//	topdown -gpu rtx4000 -suite rodinia -app srad_v2 -level 3
//	topdown -gpu gtx1070 -suite altis -app gemm -level 2 -per-kernel
//	topdown -gpu rtx4000 -dynamic              # per-invocation srad series
//	topdown -gpu rtx4000 -autotune -replay-cache  # memoized autotune harness
//	topdown -gpu rtx4000 -suite rodinia -all -serve :8080   # live-observable sweep
//	topdown -gpu rtx4000 -suite altis -app gemm -flame-out gemm.folded
//	topdown -list                              # available apps
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"gputopdown"
)

func main() {
	gpuID := flag.String("gpu", "rtx4000", "device model: gtx1070 or rtx4000")
	suite := flag.String("suite", "rodinia", "benchmark suite: rodinia, altis, shoc, cudasamples")
	appName := flag.String("app", "", "application to profile (see -list)")
	level := flag.Int("level", 3, "Top-Down analysis level (1-3)")
	raw := flag.Bool("raw", false, "use the paper's raw equations (8)-(14) without normalisation")
	hwpm := flag.Bool("hwpm", false, "collect via HWPM sampling instead of SMPC")
	sms := flag.Int("sms", 0, "override the SM count (0 = full device)")
	perKernel := flag.Bool("per-kernel", false, "also print each kernel invocation")
	format := flag.String("format", "text", "aggregate output format: text, csv or json")
	dynamic := flag.Bool("dynamic", false, "run the 100-invocation srad dynamic analysis")
	autotune := flag.Bool("autotune", false, "run the autotuning-harness workload (20 byte-identical GEMM launches; pairs with -replay-cache)")
	compare := flag.Bool("compare", false, "run the app on both GPUs and print a side-by-side comparison")
	list := flag.Bool("list", false, "list available devices and applications")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (open in chrome://tracing or Perfetto)")
	metricsOut := flag.String("metrics-out", "", "write profiler self-metrics in Prometheus text format")
	traceBlocks := flag.Bool("trace-blocks", false, "include per-block dispatch instants in the trace (voluminous)")
	overhead := flag.Bool("overhead", false, "print a measured replay-overhead summary line per app")
	replayWorkers := flag.Int("replay-workers", 1, "concurrent replay-pass workers per kernel (0 = all CPU cores, 1 = sequential)")
	simWorkers := flag.Int("sim-workers", 1, "intra-launch SM-simulation workers per device (1 = sequential; bit-identical results at any setting)")
	replayCache := flag.Bool("replay-cache", false, "memoize byte-identical kernel invocations instead of re-simulating them")
	ff := flag.Bool("ff", true, "fast-forward provably idle cycle spans (bit-identical results; -ff=false runs the naive cycle loop)")
	checks := flag.Bool("checks", false, "assert simulator conservation laws during the run (internal/check); violations are reported and exit nonzero")
	all := flag.Bool("all", false, "profile every app of -suite (a sweep; pairs with -serve and the progress log)")
	serve := flag.String("serve", "", "serve live observability HTTP on this address (/metrics, /healthz, /trace, /api/progress, /debug/pprof/)")
	flameOut := flag.String("flame-out", "", "write the Top-Down cycle attribution as collapsed stacks (open in speedscope or flamegraph.pl)")
	remote := flag.String("remote", "", "submit the profile as a job to a gpuprofd daemon at this base URL (e.g. http://127.0.0.1:8791) and print its JSON report")
	remoteTimeout := flag.Duration("remote-timeout", 0, "per-job deadline sent with -remote (0 = daemon default)")
	logLevel := flag.String("log-level", "", "enable structured logging at this level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	progressEvery := flag.Duration("progress-every", 10*time.Second, "period of the suite-progress log line (0 disables; needs -log-level)")
	flag.Parse()

	if *list {
		listAll()
		return
	}

	// Context-first API: ^C / SIGTERM cancel the run mid-pass instead of
	// killing the process between flushes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *remote != "" {
		remoteProfile(ctx, *remote, *suite, *appName, *gpuID, *level, *raw, *hwpm,
			*replayWorkers, *simWorkers, replayCache, ff, *remoteTimeout)
		return
	}

	// Observability: a tracer and/or metrics registry shared by every
	// profiler this invocation builds, flushed to disk on exit. -serve wants
	// both live even when no output file was asked for, so the HTTP endpoints
	// have something to expose.
	var tracer *gputopdown.Tracer
	var registry *gputopdown.MetricsRegistry
	if *traceOut != "" || *serve != "" {
		tracer = gputopdown.NewTracer()
		tracer.SetBlockDetail(*traceBlocks)
	}
	if *metricsOut != "" || *serve != "" {
		registry = gputopdown.NewMetricsRegistry()
	}
	writeObs := func() {
		if tracer != nil && *traceOut != "" {
			if err := tracer.WriteFile(*traceOut); err != nil {
				fatalf("writing trace: %v", err)
			}
			fmt.Fprintf(os.Stderr, "topdown: wrote %d trace events to %s\n", tracer.Len(), *traceOut)
		}
		if registry != nil && *metricsOut != "" {
			if err := registry.WriteFile(*metricsOut); err != nil {
				fatalf("writing metrics: %v", err)
			}
			fmt.Fprintf(os.Stderr, "topdown: wrote metrics to %s\n", *metricsOut)
		}
	}
	defer writeObs()

	spec, ok := gputopdown.LookupGPU(*gpuID)
	if !ok {
		fatalf("unknown GPU %q (try -list)", *gpuID)
	}
	if *sms > 0 {
		spec = spec.WithSMs(*sms)
	}
	opts := []gputopdown.Option{gputopdown.WithLevel(*level)}
	if *raw {
		opts = append(opts, gputopdown.WithRawEquations())
	}
	if *hwpm {
		opts = append(opts, gputopdown.WithHWPM())
	}
	if tracer != nil || registry != nil {
		opts = append(opts, gputopdown.WithObserver(tracer, registry))
	}
	opts = append(opts, gputopdown.WithReplayWorkers(*replayWorkers),
		gputopdown.WithSimWorkers(*simWorkers),
		gputopdown.WithReplayCache(*replayCache),
		gputopdown.WithFastForward(*ff),
		gputopdown.WithChecks(*checks))

	var logger *gputopdown.Logger
	if *logLevel != "" {
		var err error
		logger, err = gputopdown.NewLogger(os.Stderr, *logLevel, *logFormat)
		if err != nil {
			fatalf("%v", err)
		}
		opts = append(opts, gputopdown.WithLogger(logger),
			gputopdown.WithProgressInterval(*progressEvery))
	}
	if *serve != "" {
		opts = append(opts, gputopdown.WithObsServer(*serve))
	}

	p, err := gputopdown.NewProfilerE(spec, opts...)
	if err != nil {
		fatalf("%v", err)
	}
	defer p.Close()
	if addr := p.ObsAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "topdown: observability HTTP on http://%s (/metrics /healthz /trace /api/progress /debug/pprof/)\n", addr)
	}

	writeFlame := func(results ...*gputopdown.AppResult) {
		if *flameOut == "" {
			return
		}
		if err := gputopdown.WriteFlameFile(*flameOut, results...); err != nil {
			fatalf("writing flamegraph: %v", err)
		}
		fmt.Fprintf(os.Stderr, "topdown: wrote folded stacks to %s (import into https://speedscope.app)\n", *flameOut)
	}

	if *all {
		results, err := p.ProfileSuite(ctx, *suite)
		if err != nil {
			fatalf("%v", err)
		}
		printSweep(results, *overhead)
		writeFlame(results...)
		reportChecks(p, *checks)
		return
	}

	var app *gputopdown.App
	if *dynamic {
		app = gputopdown.SradDynamic()
	} else if *autotune {
		app = gputopdown.GemmAutotune()
	} else {
		if *appName == "" {
			fatalf("missing -app (try -list)")
		}
		app, err = gputopdown.GetApp(*suite, *appName)
		if err != nil {
			fatalf("%v (try -list)", err)
		}
	}

	if *compare {
		compareGPUs(ctx, app, *level, *sms, *ff, tracer, registry)
		return
	}

	res, err := p.ProfileApp(ctx, app)
	if err != nil {
		fatalf("%v", err)
	}
	writeFlame(res)
	reportChecks(p, *checks)

	if *overhead {
		printOverhead(res)
	}

	if *dynamic {
		printDynamic(res)
		return
	}

	switch *format {
	case "csv":
		fmt.Print(res.Aggregate.CSV())
	case "json":
		data, err := res.Aggregate.JSON()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(string(data))
	default:
		fmt.Print(res.Aggregate.String())
	}
	fmt.Printf("kernel invocations: %d, passes per kernel: %d, overhead: %.1fx\n",
		len(res.Kernels), res.Passes, res.Overhead())
	if *perKernel {
		fmt.Println()
		for _, k := range res.Kernels {
			a := k.Analysis
			fmt.Printf("%-24s inv %-3d %8d cyc  retire %5.1f%%  div %5.1f%%  fe %5.1f%%  be %5.1f%%\n",
				k.Kernel, k.Invocation, k.Cycles,
				100*a.Fraction(a.Retire), 100*a.Fraction(a.Divergence),
				100*a.Fraction(a.Frontend), 100*a.Fraction(a.Backend))
		}
	}
}

// printSweep prints one aggregate line per app of a -all suite sweep.
// remoteProfile builds a v1 JobRequest from the CLI flags, submits it to a
// gpuprofd daemon, waits for the terminal state, and prints the report.
func remoteProfile(ctx context.Context, base, suite, appName, gpuID string,
	level int, raw, hwpm bool, replayWorkers, simWorkers int, replayCache, ff *bool, timeout time.Duration) {
	if appName == "" {
		fatalf("missing -app (remote mode profiles one app; try -list)")
	}
	req := &gputopdown.JobRequest{
		Suite:         suite,
		App:           appName,
		GPU:           gpuID,
		Level:         level,
		RawEquations:  raw,
		ReplayWorkers: replayWorkers,
		SimWorkers:    simWorkers,
		ReplayCache:   replayCache,
		FastForward:   ff,
		TimeoutMS:     timeout.Milliseconds(),
	}
	if hwpm {
		req.Mode = "hwpm"
	}
	rep, err := gputopdown.SubmitAndWait(ctx, base, req, 200*time.Millisecond)
	if err != nil {
		fatalf("remote profile: %v", err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println(string(data))
}

func printSweep(results []*gputopdown.AppResult, overhead bool) {
	fmt.Printf("%-28s %10s %7s %7s %7s %7s %9s\n",
		"app", "cycles", "retire", "diverg", "front", "back", "overhead")
	for _, res := range results {
		a := res.Aggregate
		fmt.Printf("%-28s %10d %6.1f%% %6.1f%% %6.1f%% %6.1f%% %8.1fx\n",
			res.Suite+"/"+res.App, res.NativeCycles,
			100*a.Fraction(a.Retire), 100*a.Fraction(a.Divergence),
			100*a.Fraction(a.Frontend), 100*a.Fraction(a.Backend),
			res.Overhead())
	}
	if overhead {
		for _, res := range results {
			printOverhead(res)
		}
	}
}

// printOverhead prints the measured replay-overhead summary: the paper's
// Fig. 13 accounting from live instrumentation, plus wall time and sim
// throughput for the run.
func printOverhead(res *gputopdown.AppResult) {
	throughput := 0.0
	if res.WallSeconds > 0 {
		throughput = float64(res.ProfiledCycles) / res.WallSeconds
	}
	fmt.Printf("overhead: app=%s/%s gpu=%q passes=%d native=%d profiled=%d ratio=%.1fx wall=%.3fs throughput=%.3g cyc/s\n",
		res.Suite, res.App, res.GPU, res.Passes, res.NativeCycles,
		res.ProfiledCycles, res.Overhead(), res.WallSeconds, throughput)
}

// compareGPUs reproduces the paper's architecture-vs-architecture reading of
// the hierarchy (§V.B): the same application on Pascal and Turing,
// component by component.
func compareGPUs(ctx context.Context, app *gputopdown.App, level, sms int, ff bool, tracer *gputopdown.Tracer, registry *gputopdown.MetricsRegistry) {
	type row struct {
		name string
		pick func(a *gputopdown.Analysis) float64
	}
	rows := []row{
		{"Retire", func(a *gputopdown.Analysis) float64 { return a.Retire }},
		{"Divergence", func(a *gputopdown.Analysis) float64 { return a.Divergence }},
		{"Frontend", func(a *gputopdown.Analysis) float64 { return a.Frontend }},
		{"  Fetch", func(a *gputopdown.Analysis) float64 { return a.Fetch }},
		{"  Decode", func(a *gputopdown.Analysis) float64 { return a.Decode }},
		{"Backend", func(a *gputopdown.Analysis) float64 { return a.Backend }},
		{"  Core", func(a *gputopdown.Analysis) float64 { return a.Core }},
		{"  Memory", func(a *gputopdown.Analysis) float64 { return a.Memory }},
	}
	var results []*gputopdown.AppResult
	var names []string
	for _, id := range []string{"gtx1070", "rtx4000"} {
		spec, _ := gputopdown.LookupGPU(id)
		if sms > 0 {
			spec = spec.WithSMs(sms)
		}
		opts := []gputopdown.Option{gputopdown.WithLevel(level), gputopdown.WithFastForward(ff)}
		if tracer != nil || registry != nil {
			opts = append(opts, gputopdown.WithObserver(tracer, registry))
		}
		p := gputopdown.NewProfiler(spec, opts...)
		res, err := p.ProfileApp(ctx, app)
		if err != nil {
			fatalf("%s: %v", id, err)
		}
		results = append(results, res)
		names = append(names, spec.Name)
	}
	fmt.Printf("Top-Down comparison of %s/%s (shares of each device's IPC_MAX)\n", app.Suite, app.Name)
	fmt.Printf("%-12s %24s %24s\n", "component", names[0], names[1])
	for _, r := range rows {
		a0, a1 := results[0].Aggregate, results[1].Aggregate
		fmt.Printf("%-12s %23.1f%% %23.1f%%\n",
			r.name, 100*a0.Fraction(r.pick(a0)), 100*a1.Fraction(r.pick(a1)))
	}
	fmt.Printf("%-12s %24d %24d\n", "cycles", results[0].NativeCycles, results[1].NativeCycles)
	fmt.Printf("%-12s %23.1fx %23.1fx\n", "overhead", results[0].Overhead(), results[1].Overhead())
}

func printDynamic(res *gputopdown.AppResult) {
	for _, name := range res.KernelNames() {
		fmt.Printf("== %s (level-1 evolution) ==\n", name)
		fmt.Printf("%4s %8s %7s %7s %7s %7s\n", "inv", "cycles", "retire", "diverg", "front", "back")
		series := res.Series(name)
		for i, a := range series {
			fmt.Printf("%4d %8.0f %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
				i, a.Weight,
				100*a.Fraction(a.Retire), 100*a.Fraction(a.Divergence),
				100*a.Fraction(a.Frontend), 100*a.Fraction(a.Backend))
		}
	}
}

func listAll() {
	fmt.Println("devices:")
	for _, id := range []string{"gtx1070", "rtx4000"} {
		spec, _ := gputopdown.LookupGPU(id)
		fmt.Printf("  %-10s %s (CC %s, %d SMs, IPC_MAX %.0f)\n",
			id, spec.Name, spec.Compute, spec.SMs, spec.IPCMax())
	}
	for _, s := range gputopdown.Suites() {
		fmt.Printf("suite %s:\n", s)
		apps := gputopdown.SuiteApps(s)
		names := make([]string, len(apps))
		for i, a := range apps {
			names[i] = a.Name
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %s\n", n)
		}
	}
}

// reportChecks surfaces the -checks verdict: violations are fatal (nonzero
// exit) so CI can gate on a clean run; a clean run notes it on stderr.
func reportChecks(p *gputopdown.Profiler, on bool) {
	if !on {
		return
	}
	if err := p.CheckErr(); err != nil {
		fatalf("invariant checks failed:\n%v", err)
	}
	fmt.Fprintln(os.Stderr, "topdown: invariant checks passed")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "topdown: "+format+"\n", args...)
	os.Exit(1)
}

// Command gpuprof is the nvprof/ncu-style raw profiler: it runs a benchmark
// application and reports user-selected profiler metrics per kernel
// invocation, dispatching to the nvprof metric set below compute capability
// 7.2 and the unified ncu metrics at or above it — exactly the middleware
// layer the Top-Down tool builds on (paper §II.B).
//
// Examples:
//
//	gpuprof -list-metrics -gpu rtx4000
//	gpuprof -gpu gtx1070 -suite rodinia -app bfs -metrics ipc,issued_ipc
//	gpuprof -gpu rtx4000 -suite altis -app gemm \
//	    -metrics smsp__inst_executed.avg.per_cycle_active
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"gputopdown/internal/check"
	"gputopdown/internal/cupti"
	"gputopdown/internal/gpu"
	"gputopdown/internal/kernel"
	"gputopdown/internal/metrics"
	"gputopdown/internal/obs"
	"gputopdown/internal/pmu"
	"gputopdown/internal/sim"
	"gputopdown/internal/workloads"
)

func main() {
	gpuID := flag.String("gpu", "rtx4000", "device model: gtx1070 or rtx4000")
	suite := flag.String("suite", "rodinia", "benchmark suite")
	appName := flag.String("app", "", "application to profile")
	metricList := flag.String("metrics", "", "comma-separated metric names")
	listMetrics := flag.Bool("list-metrics", false, "list the device's available metrics")
	hwpm := flag.Bool("hwpm", false, "collect via HWPM instead of SMPC")
	sms := flag.Int("sms", 0, "override the SM count (0 = full device)")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (open in chrome://tracing or Perfetto)")
	metricsOut := flag.String("metrics-out", "", "write profiler self-metrics in Prometheus text format")
	traceBlocks := flag.Bool("trace-blocks", false, "include per-block dispatch instants in the trace (voluminous)")
	overhead := flag.Bool("overhead", false, "print a measured replay-overhead summary line")
	replayWorkers := flag.Int("replay-workers", 1, "concurrent replay-pass workers per kernel (0 = all CPU cores, 1 = sequential)")
	simWorkers := flag.Int("sim-workers", 1, "intra-launch SM-simulation workers per device (1 = sequential; bit-identical results at any setting)")
	replayCache := flag.Bool("replay-cache", false, "memoize byte-identical kernel invocations instead of re-simulating them")
	ff := flag.Bool("ff", true, "fast-forward provably idle cycle spans (bit-identical results; -ff=false runs the naive cycle loop)")
	checks := flag.Bool("checks", false, "assert simulator conservation laws during the run (internal/check); violations exit nonzero")
	serve := flag.String("serve", "", "serve live observability HTTP on this address (/metrics, /healthz, /trace, /api/progress, /debug/pprof/)")
	flameOut := flag.String("flame-out", "", "write per-kernel simulated-cycle stacks in collapsed format (open in speedscope)")
	logLevel := flag.String("log-level", "", "enable structured logging at this level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	flag.Parse()

	spec, ok := gpu.Lookup(*gpuID)
	if !ok {
		fatalf("unknown GPU %q", *gpuID)
	}
	if *sms > 0 {
		spec = spec.WithSMs(*sms)
	}
	reg := metrics.ForCC(spec.Compute)

	if *listMetrics {
		fmt.Printf("%s metrics on %s (CC %s):\n", reg.Tool(), spec.Name, spec.Compute)
		for _, n := range reg.Names() {
			m, _ := reg.Lookup(n)
			fmt.Printf("  %-64s %s\n", n, m.Description)
		}
		return
	}

	if *appName == "" {
		fatalf("missing -app")
	}
	app, ok := workloads.Lookup(*suite, *appName)
	if !ok && *suite == "altis" && *appName == "gemm_autotune" {
		// Standalone workload: not in the suite list (it would skew the
		// suite-average figures) but reachable by name for cache experiments.
		app, ok = workloads.GemmAutotune(), true
	}
	if !ok {
		fatalf("unknown app %s/%s", *suite, *appName)
	}
	var names []string
	for _, n := range strings.Split(*metricList, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		fatalf("missing -metrics (see -list-metrics)")
	}
	request, err := reg.CountersFor(names)
	if err != nil {
		fatalf("%v", err)
	}

	dev := sim.NewDevice(spec)
	dev.SetFastForward(*ff)
	dev.SetSimWorkers(*simWorkers)
	mode := cupti.ModeSMPC
	if *hwpm {
		mode = cupti.ModeHWPM
	}
	sess, err := cupti.NewSession(dev, request, mode)
	if err != nil {
		fatalf("%v", err)
	}
	workers := *replayWorkers
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	sess.SetWorkers(workers)
	if *replayCache {
		sess.SetCache(cupti.NewReplayCache(0))
	}
	var inv *check.Invariants
	if *checks {
		inv = check.New()
		sess.SetChecker(inv)
	}

	var tracer *obs.Tracer
	var registry *obs.Registry
	if *traceOut != "" || *serve != "" {
		tracer = obs.NewTracer()
		tracer.SetBlockDetail(*traceBlocks)
	}
	if *metricsOut != "" || *serve != "" {
		registry = obs.NewRegistry()
	}
	if tracer != nil || registry != nil {
		sess.SetObserver(tracer, registry)
	}
	var logger *obs.Logger
	if *logLevel != "" {
		lvl, err := obs.ParseLevel(*logLevel)
		if err != nil {
			fatalf("%v", err)
		}
		logger = obs.NewLogger(os.Stderr, lvl, *logFormat)
		sess.SetLogger(logger)
	}
	var progress *obs.Progress
	if *serve != "" || logger != nil {
		progress = obs.NewProgress()
		progress.StartRun(1)
		progress.StartApp(*suite, *appName)
		sess.SetProgress(progress)
	}
	if *serve != "" {
		srv := obs.NewServer(tracer, registry, progress)
		srv.SetLogger(logger)
		if err := srv.Start(*serve); err != nil {
			fatalf("%v", err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		fmt.Fprintf(os.Stderr, "gpuprof: observability HTTP on http://%s\n", srv.Addr())
	}
	var flame *obs.Flame
	if *flameOut != "" {
		flame = obs.NewFlame()
	}

	fmt.Printf("==PROF== profiling %s/%s on %s (%s, %d passes per kernel)\n",
		*suite, *appName, spec.Name, mode, sess.NumPasses())
	wallStart := time.Now()

	err = app.Execute(dev, func(l *kernel.Launch) error {
		rec, err := sess.Profile(l)
		if err != nil {
			return err
		}
		// gpuprof has no Top-Down analysis to attribute within a kernel, so
		// the stacks stop at the kernel: gpu;suite/app;kernel cycles.
		flame.Add(float64(rec.Cycles), spec.Name, *suite+"/"+*appName, rec.Kernel)
		fmt.Printf("%s (invocation %d, %d cycles, grid %s block %s)\n",
			rec.Kernel, rec.Invocation, rec.Cycles, l.Grid, l.Block)
		ctx := &metrics.Context{Spec: spec, Values: rec.Values}
		for _, n := range names {
			v, err := reg.Eval(n, ctx)
			if err != nil {
				return err
			}
			fmt.Printf("    %-64s %12.4f\n", n, v)
		}
		return nil
	})
	if err != nil {
		fatalf("%v", err)
	}
	progress.AppDone()
	if flame != nil {
		if err := flame.WriteFile(*flameOut); err != nil {
			fatalf("writing flamegraph: %v", err)
		}
		fmt.Fprintf(os.Stderr, "gpuprof: wrote folded stacks to %s (import into https://speedscope.app)\n", *flameOut)
	}
	native, profiled := sess.Overhead()
	fmt.Printf("==PROF== native %d cycles, profiled %d cycles (%.1fx)\n",
		native, profiled, float64(profiled)/float64(native))
	if c := sess.Cache(); c != nil {
		hits, misses := c.Stats()
		fmt.Printf("==PROF== replay cache: %d hits, %d misses, %d entries\n",
			hits, misses, c.Len())
	}
	if *overhead {
		wall := time.Since(wallStart).Seconds()
		throughput := 0.0
		if wall > 0 {
			throughput = float64(profiled) / wall
		}
		fmt.Printf("overhead: app=%s/%s gpu=%q passes=%d native=%d profiled=%d ratio=%.1fx wall=%.3fs throughput=%.3g cyc/s\n",
			*suite, *appName, spec.Name, sess.NumPasses(), native, profiled,
			float64(profiled)/float64(native), wall, throughput)
	}
	if tracer != nil && *traceOut != "" {
		if err := tracer.WriteFile(*traceOut); err != nil {
			fatalf("writing trace: %v", err)
		}
		fmt.Fprintf(os.Stderr, "gpuprof: wrote %d trace events to %s\n", tracer.Len(), *traceOut)
	}
	if registry != nil && *metricsOut != "" {
		if err := registry.WriteFile(*metricsOut); err != nil {
			fatalf("writing metrics: %v", err)
		}
		fmt.Fprintf(os.Stderr, "gpuprof: wrote metrics to %s\n", *metricsOut)
	}

	// Quiet-but-real use of the raw counter names, mirroring ncu's
	// --query-metrics: report which raw counters backed the request.
	seen := map[pmu.CounterID]bool{}
	var raw []string
	for _, id := range request {
		if !seen[id] {
			seen[id] = true
			raw = append(raw, pmu.Name(id))
		}
	}
	fmt.Printf("==PROF== raw counters: %s\n", strings.Join(raw, ", "))

	if inv != nil {
		if err := inv.Err(); err != nil {
			fatalf("invariant checks failed:\n%v", err)
		}
		fmt.Fprintln(os.Stderr, "gpuprof: invariant checks passed")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gpuprof: "+format+"\n", args...)
	os.Exit(1)
}

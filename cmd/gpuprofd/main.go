// Command gpuprofd is the profiling-as-a-service daemon: it accepts
// profiling jobs over a versioned HTTP API, runs them on a bounded worker
// pool with per-job deadlines and bounded retries, and drains gracefully
// on SIGTERM/SIGINT (stop accepting, finish running jobs, exit 0).
//
//	gpuprofd -addr :8791 -workers 2 &
//	curl -s -X POST localhost:8791/api/v1/jobs \
//	     -d '{"suite":"altis","app":"gups"}'
//	curl -s localhost:8791/api/v1/jobs/job-000001
//	curl -s localhost:8791/api/v1/jobs/job-000001/report
//	curl -s -X DELETE localhost:8791/api/v1/jobs/job-000001
//
// The observability endpoints (/healthz, /metrics, /trace, /api/progress,
// /debug/pprof/) are mounted on the same port, so one scrape target covers
// both job metrics (gpuprofd_jobs_*) and profiler self-metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gputopdown"
	"gputopdown/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8791", "listen address (host:0 picks a free port)")
	workers := flag.Int("workers", 2, "jobs run concurrently (each fans out replay passes internally)")
	simWorkers := flag.Int("sim-workers", 1, "default intra-launch SM-simulation workers for jobs that do not set sim_workers (budget-shared with -workers; bit-identical results)")
	queue := flag.Int("queue", 64, "max jobs waiting for a worker before submissions get 503")
	gpuID := flag.String("gpu", "rtx4000", "default device model for jobs that do not set gpu")
	timeout := flag.Duration("timeout", 0, "default per-job deadline for jobs that do not set timeout_ms (0 = none)")
	maxAttempts := flag.Int("max-attempts", 1, "default run attempts per job (1 = no retries)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max time to let running jobs finish on shutdown before cancelling them")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	flag.Parse()

	logger, err := gputopdown.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpuprofd:", err)
		os.Exit(2)
	}
	if _, ok := gputopdown.LookupGPU(*gpuID); !ok {
		fmt.Fprintf(os.Stderr, "gpuprofd: unknown -gpu %q (want gtx1070 or rtx4000)\n", *gpuID)
		os.Exit(2)
	}

	registry := gputopdown.NewMetricsRegistry()
	progress := obs.NewProgress()
	obsSrv := obs.NewServer(nil, registry, progress)
	obsSrv.SetLogger(logger)

	// The daemon runs -workers jobs concurrently and each job may shard its
	// SM simulation -sim-workers ways, so the two levels share one CPU
	// budget: the per-job default is clamped to GOMAXPROCS / -workers.
	// (Pass-level replay workers apply a further per-job clamp; see
	// WithSimWorkers.) Jobs that set sim_workers explicitly still get the
	// library-side GOMAXPROCS clamp.
	perJob := *simWorkers
	if *workers > 1 {
		if b := runtime.GOMAXPROCS(0) / *workers; perJob > b {
			perJob = b
		}
	}
	if perJob < 1 {
		perJob = 1
	}
	runner := gputopdown.NewJobRunner(*gpuID,
		gputopdown.WithLogger(logger),
		gputopdown.WithObserver(nil, registry),
		gputopdown.WithSimWorkers(perJob),
	)
	srv, err := gputopdown.NewJobServer(gputopdown.JobServerOptions{
		Runner:             runner.Run,
		Workers:            *workers,
		QueueDepth:         *queue,
		DefaultTimeout:     *timeout,
		DefaultMaxAttempts: *maxAttempts,
		Backoff:            gputopdown.DefaultJobBackoff(rand.Float64),
		Registry:           registry,
		Logger:             logger,
		Obs:                obsSrv.Handler(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpuprofd:", err)
		os.Exit(2)
	}
	if err := srv.Start(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "gpuprofd:", err)
		os.Exit(1)
	}
	fmt.Printf("gpuprofd listening on %s (api %s, default gpu %s, %d workers)\n",
		srv.Addr(), gputopdown.ServeAPIVersion, *gpuID, *workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	stop()
	fmt.Println("gpuprofd: shutdown signal received, draining")

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "gpuprofd: drain:", err)
		os.Exit(1)
	}
	fmt.Println("gpuprofd: drained cleanly")
}

// Command whatif explores microarchitectural design points, the second
// purpose the paper gives the methodology: "to identify possible bottlenecks
// in a given GPU microarchitecture, facilitating the improvement of
// subsequent designs". It sweeps one hardware parameter across values, runs
// an application at each point and prints how the Top-Down breakdown shifts
// — answering "would a bigger constant cache fix myocyte?" in seconds
// instead of a simulator campaign.
//
// Examples:
//
//	whatif -suite rodinia -app myocyte -param imcsize -values 2048,8192,32768
//	whatif -suite rodinia -app hotspot -param l1size -values 32768,65536,131072
//	whatif -suite altis -app gemm -param policy -values gto,lrr
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gputopdown"
)

func main() {
	gpuID := flag.String("gpu", "rtx4000", "base device model")
	suite := flag.String("suite", "rodinia", "benchmark suite")
	appName := flag.String("app", "", "application")
	param := flag.String("param", "", "parameter to sweep: l1size, l2size, imcsize, lgqueue, mioqueue, fp64lanes, policy, dramlat")
	values := flag.String("values", "", "comma-separated values")
	sms := flag.Int("sms", 0, "override the SM count (0 = full device)")
	level := flag.Int("level", 3, "analysis level")
	flag.Parse()

	base, ok := gputopdown.LookupGPU(*gpuID)
	if !ok {
		fatalf("unknown GPU %q", *gpuID)
	}
	if *sms > 0 {
		base = base.WithSMs(*sms)
	}
	app, ok := gputopdown.LookupApp(*suite, *appName)
	if !ok {
		fatalf("unknown app %s/%s", *suite, *appName)
	}
	var vals []string
	for _, v := range strings.Split(*values, ",") {
		if v = strings.TrimSpace(v); v != "" {
			vals = append(vals, v)
		}
	}
	if *param == "" || len(vals) == 0 {
		fatalf("missing -param / -values")
	}

	fmt.Printf("what-if: %s/%s on %s, sweeping %s\n", *suite, *appName, base.Name, *param)
	fmt.Printf("%-12s %9s %8s %8s %8s %8s | %8s %8s\n",
		*param, "cycles", "retire", "diverg", "front", "back", "memory", "const")
	for _, v := range vals {
		spec := *base // copy
		if err := apply(&spec, *param, v); err != nil {
			fatalf("%v", err)
		}
		if err := spec.Validate(); err != nil {
			fatalf("variant %s=%s: %v", *param, v, err)
		}
		p := gputopdown.NewProfiler(&spec, gputopdown.WithLevel(*level))
		res, err := p.ProfileApp(context.Background(), app)
		if err != nil {
			fatalf("%v", err)
		}
		a := res.Aggregate
		f := func(x float64) float64 { return 100 * a.Fraction(x) }
		constPct := 0.0
		if a.MemoryDetail != nil {
			constPct = 100 * a.Fraction(a.MemoryDetail["imc_miss"])
		}
		fmt.Printf("%-12s %9d %7.1f%% %7.1f%% %7.1f%% %7.1f%% | %7.1f%% %7.1f%%\n",
			v, res.NativeCycles, f(a.Retire), f(a.Divergence),
			f(a.Frontend), f(a.Backend), f(a.Memory), constPct)
	}
}

// apply mutates one spec parameter from its string value.
func apply(spec *gputopdown.GPUSpec, param, value string) error {
	atoi := func() (int, error) { return strconv.Atoi(value) }
	switch param {
	case "l1size":
		n, err := atoi()
		if err != nil {
			return err
		}
		spec.L1Size = n
	case "l2size":
		n, err := atoi()
		if err != nil {
			return err
		}
		spec.L2Size = n
	case "imcsize":
		n, err := atoi()
		if err != nil {
			return err
		}
		spec.IMCSize = n
	case "lgqueue":
		n, err := atoi()
		if err != nil {
			return err
		}
		spec.LGQueueDepth = n
	case "mioqueue":
		n, err := atoi()
		if err != nil {
			return err
		}
		spec.MIOQueueDepth = n
	case "fp64lanes":
		n, err := atoi()
		if err != nil {
			return err
		}
		spec.PipeLanes[2] = n // isa.PipeFP64
	case "dramlat":
		n, err := atoi()
		if err != nil {
			return err
		}
		spec.DRAMLatency = n
	case "policy":
		spec.SchedulingPolicy = value
	default:
		return fmt.Errorf("unknown parameter %q", param)
	}
	spec.Name = fmt.Sprintf("%s[%s=%s]", spec.Name, param, value)
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "whatif: "+format+"\n", args...)
	os.Exit(1)
}

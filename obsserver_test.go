package gputopdown

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestObsServerEndToEnd is the acceptance check for the live observability
// service: a profiler built with WithObsServer answers /metrics, /healthz,
// /trace and /api/progress over real TCP while (and after) profiling, and
// Close tears the listener down.
func TestObsServerEndToEnd(t *testing.T) {
	spec, _ := LookupGPU("rtx4000")
	logger, err := NewLogger(io.Discard, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProfilerE(spec.WithSMs(2), WithLevel(3),
		WithObsServer("127.0.0.1:0"), WithLogger(logger))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	addr := p.ObsAddr()
	if addr == "" {
		t.Fatal("WithObsServer bound no address")
	}

	app, ok := LookupApp("rodinia", "nw")
	if !ok {
		t.Fatal("unknown app rodinia/nw")
	}
	if _, err := p.ProfileApp(context.Background(), app); err != nil {
		t.Fatal(err)
	}

	fetch := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := fetch("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz: %d %q", code, body)
	}
	if code, body := fetch("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "profiler_replay_overhead_ratio") {
		t.Errorf("/metrics: %d, overhead ratio metric missing", code)
	}
	if code, body := fetch("/trace"); code != http.StatusOK || !strings.Contains(body, `"traceEvents"`) {
		t.Errorf("/trace: %d, not trace-event JSON", code)
	}
	code, body := fetch("/api/progress")
	if code != http.StatusOK {
		t.Fatalf("/api/progress: %d", code)
	}
	for _, field := range []string{`"apps_done": 1`, `"suite": "rodinia"`, `"app": "nw"`} {
		if !strings.Contains(body, field) {
			t.Errorf("/api/progress missing %s:\n%s", field, body)
		}
	}
	if snap := p.Progress(); snap.AppsDone != 1 || snap.KernelsDone == 0 {
		t.Errorf("Progress() = %+v, want 1 app and >0 kernels done", snap)
	}

	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := http.Get("http://" + addr + "/healthz"); err != nil {
			break // listener is down, as required
		}
		if time.Now().After(deadline) {
			t.Fatal("server still answering after Close")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := p.Close(); err != nil {
		t.Errorf("second Close: %v, want nil no-op", err)
	}
}

// TestObsServerBadAddr: an unbindable address must surface as a construction
// error from NewProfilerE, not a silent no-server run.
func TestObsServerBadAddr(t *testing.T) {
	spec, _ := LookupGPU("rtx4000")
	if _, err := NewProfilerE(spec, WithObsServer("256.0.0.1:99999")); err == nil {
		t.Error("NewProfilerE with unbindable obs address succeeded")
	}
}

// TestObservabilityResultsBitIdentical: the full observability stack (debug
// logging, tracer+registry, HTTP server, progress) must not perturb profiling
// results — RunResult equality bit for bit against a bare profiler.
func TestObservabilityResultsBitIdentical(t *testing.T) {
	spec, _ := LookupGPU("gtx1070")
	app, ok := LookupApp("rodinia", "hotspot")
	if !ok {
		t.Fatal("unknown app rodinia/hotspot")
	}
	bare := NewProfiler(spec.WithSMs(2), WithLevel(3))
	want, err := bare.ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}

	logger, err := NewLogger(io.Discard, "debug", "text")
	if err != nil {
		t.Fatal(err)
	}
	observed, err := NewProfilerE(spec.WithSMs(2), WithLevel(3),
		WithObserver(NewTracer(), NewMetricsRegistry()),
		WithLogger(logger),
		WithObsServer("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer observed.Close()
	got, err := observed.ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	want.WallSeconds, got.WallSeconds = 0, 0
	if !reflect.DeepEqual(want, got) {
		t.Error("profiling under full observability diverged from the bare run")
	}
}

// TestFlameExport checks the Top-Down folded export: stacks rooted at the
// device, level-3 stall-reason leaves, parseable "<frames> <int>" lines, and
// a loud error when there is nothing to export.
func TestFlameExport(t *testing.T) {
	spec, _ := LookupGPU("rtx4000")
	p := NewProfiler(spec.WithSMs(2), WithLevel(3))
	app, ok := LookupApp("altis", "gemm")
	if !ok {
		t.Fatal("unknown app altis/gemm")
	}
	res, err := p.ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFlame(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, ";Retire ") {
		t.Errorf("no Retire leaf in folded output:\n%s", out)
	}
	if !strings.Contains(out, ";Backend;Memory;") {
		t.Errorf("no level-3 Backend;Memory stall leaves in folded output:\n%s", out)
	}
	// Frames are sanitized for the folded format (' ' → '_'), so build the
	// expected root the same way.
	root := strings.ReplaceAll(res.GPU, " ", "_") + ";" +
		strings.ReplaceAll(res.Suite+"/"+res.App, " ", "_") + ";"
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		fields := strings.Split(line, " ")
		if len(fields) != 2 {
			t.Fatalf("malformed folded line %q", line)
		}
		if !strings.HasPrefix(fields[0], root) {
			t.Errorf("stack not rooted at device;app: %q", line)
		}
		for _, r := range fields[1] {
			if r < '0' || r > '9' {
				t.Errorf("non-integer weight in %q", line)
			}
		}
	}

	if err := WriteFlame(&bytes.Buffer{}); err == nil {
		t.Error("WriteFlame with no results succeeded")
	}
}

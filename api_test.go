package gputopdown

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"gputopdown/internal/kernel"
	"gputopdown/internal/workloads"
)

func TestNewProfilerEValidation(t *testing.T) {
	spec := QuadroRTX4000().WithSMs(4)
	cases := []struct {
		name string
		spec *GPUSpec
		opts []Option
		ok   bool
	}{
		{"valid defaults", spec, nil, true},
		{"valid full", spec, []Option{WithLevel(2), WithSampling(3), WithMemBytes(1 << 20), WithReplayWorkers(0), WithSimWorkers(2), WithReplayCache(true)}, true},
		{"nil spec", nil, nil, false},
		{"level too low", spec, []Option{WithLevel(0)}, false},
		{"level too high", spec, []Option{WithLevel(4)}, false},
		{"negative sampling", spec, []Option{WithSampling(-1)}, false},
		{"zero memory", spec, []Option{WithMemBytes(0)}, false},
		{"negative memory", spec, []Option{WithMemBytes(-5)}, false},
		{"negative workers", spec, []Option{WithReplayWorkers(-2)}, false},
		{"negative sim workers", spec, []Option{WithSimWorkers(-1)}, false},
	}
	for _, c := range cases {
		p, err := NewProfilerE(c.spec, c.opts...)
		if c.ok && (err != nil || p == nil) {
			t.Errorf("%s: NewProfilerE = (%v, %v), want success", c.name, p, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: NewProfilerE accepted invalid options", c.name)
		}
	}
	// NewProfiler documents clamping for the same inputs.
	p := NewProfiler(spec, WithLevel(9), WithSampling(-3), WithMemBytes(-1), WithReplayWorkers(-4), WithSimWorkers(-2))
	if p.Level() < 1 || p.Level() > 3 {
		t.Errorf("clamped level = %d", p.Level())
	}
	if p.sampleEvery != 0 || p.memBytes <= 0 || p.replayWorkers != 1 || p.simWorkers != 1 {
		t.Errorf("clamping left sampleEvery=%d memBytes=%d workers=%d simWorkers=%d",
			p.sampleEvery, p.memBytes, p.replayWorkers, p.simWorkers)
	}
	// The sim-worker degree is additionally capped by the host budget.
	if p := NewProfiler(spec, WithSimWorkers(1<<20)); p.simWorkers > runtime.GOMAXPROCS(0) {
		t.Errorf("WithSimWorkers not clamped to GOMAXPROCS: %d", p.simWorkers)
	}
}

func TestGetAppTypedErrors(t *testing.T) {
	if _, err := GetApp("rodinia", "hotspot"); err != nil {
		t.Fatalf("GetApp(rodinia, hotspot) = %v", err)
	}
	_, err := GetApp("nosuite", "hotspot")
	if !errors.Is(err, ErrUnknownSuite) {
		t.Fatalf("unknown suite error = %v, want ErrUnknownSuite", err)
	}
	_, err = GetApp("rodinia", "noapp")
	if !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("unknown app error = %v, want ErrUnknownApp", err)
	}
	if _, err := NewProfiler(QuadroRTX4000().WithSMs(2)).ProfileSuite(context.Background(), "nosuite"); !errors.Is(err, ErrUnknownSuite) {
		t.Fatalf("ProfileSuite error = %v, want ErrUnknownSuite", err)
	}
}

func TestProfileAppNoKernels(t *testing.T) {
	empty := &App{Name: "empty", Suite: "test", Run: func(*workloads.RunCtx) error { return nil }}
	_, err := testProfiler(1).ProfileApp(context.Background(), empty)
	if !errors.Is(err, ErrNoKernels) {
		t.Fatalf("empty app error = %v, want ErrNoKernels", err)
	}
}

// TestProfileAppsJoinsErrors: a failing app mid-list must not abort the
// others — every failure is aggregated via errors.Join and the successful
// results are returned at their input positions.
func TestProfileAppsJoinsErrors(t *testing.T) {
	hotspot, _ := LookupApp("rodinia", "hotspot")
	boomA := &App{Name: "boomA", Suite: "test", Run: func(*workloads.RunCtx) error { return fmt.Errorf("boom A") }}
	boomB := &App{Name: "boomB", Suite: "test", Run: func(*workloads.RunCtx) error { return fmt.Errorf("boom B") }}
	apps := []*App{boomA, hotspot, boomB}

	results, err := testProfiler(1).ProfileApps(context.Background(), apps)
	if err == nil {
		t.Fatal("ProfileApps swallowed the failures")
	}
	for _, want := range []string{"test/boomA", "boom A", "test/boomB", "boom B"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q missing %q", err, want)
		}
	}
	if len(results) != 3 || results[0] != nil || results[2] != nil {
		t.Fatalf("results = %v, want nil at failed indices", results)
	}
	if results[1] == nil || results[1].App != "hotspot" {
		t.Fatalf("mid-list success missing: %+v", results[1])
	}
}

func TestProfileAppsEdgeCases(t *testing.T) {
	p := testProfiler(1)
	// Empty list: no error, no results.
	results, err := p.ProfileApps(context.Background(), nil)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty list = (%v, %v)", results, err)
	}
	// More workers than apps (NumCPU > 1 on CI runners): order preserved.
	names := []string{"hotspot", "nw"}
	var apps []*App
	for _, n := range names {
		a, _ := LookupApp("rodinia", n)
		apps = append(apps, a)
	}
	results, err = p.ProfileApps(context.Background(), apps)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.App != names[i] {
			t.Errorf("results[%d] = %s, want %s (order lost)", i, r.App, names[i])
		}
	}
}

func TestProfileAppCtxCancellation(t *testing.T) {
	app, _ := LookupApp("rodinia", "hotspot")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := testProfiler(1).ProfileAppCtx(ctx, app); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ProfileAppCtx = %v, want context.Canceled", err)
	}
	if _, err := testProfiler(1).ProfileAppsCtx(ctx, []*App{app}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ProfileAppsCtx = %v, want context.Canceled", err)
	}
	if _, err := testProfiler(1).TimelineCtx(ctx, app, "hotspot", 0, 1000); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled TimelineCtx = %v, want context.Canceled", err)
	}
}

func TestKernelErrorSurfacesThroughProfiler(t *testing.T) {
	// An app whose kernel launch is invalid: the failure must surface as a
	// *KernelError through every wrapping layer.
	bad := &App{Name: "bad", Suite: "test", Run: func(ctx *workloads.RunCtx) error {
		b := kernel.NewBuilder("badkernel")
		b.Exit()
		return ctx.Exec(&kernel.Launch{
			Program: b.MustBuild(),
			Grid:    kernel.Dim3{X: 1},
			Block:   kernel.Dim3{X: 4 * kernel.MaxBlockThreads}, // invalid
		})
	}}
	_, err := testProfiler(1).ProfileApp(context.Background(), bad)
	if err == nil {
		t.Fatal("invalid launch profiled without error")
	}
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("error %v does not unwrap to *KernelError", err)
	}
	if ke.Kernel == "" {
		t.Fatal("KernelError lost the kernel name")
	}
}

// TestDeterminismAcrossReplayEngines is the acceptance gate for the
// concurrent replay engine: for two apps on both evaluation GPUs, the full
// AppResult — every counter-derived analysis value, pass count and cycle
// total — must be bit-identical between the sequential/uncached profiler and
// the maximally concurrent cached one. Only host wall-clock may differ.
func TestDeterminismAcrossReplayEngines(t *testing.T) {
	gpus := map[string]*GPUSpec{
		"gtx1070": GTX1070().WithSMs(4),
		"rtx4000": QuadroRTX4000().WithSMs(4),
	}
	apps := []string{"hotspot", "nw"}
	for gname, spec := range gpus {
		for _, aname := range apps {
			app, ok := LookupApp("rodinia", aname)
			if !ok {
				t.Fatalf("missing app %s", aname)
			}
			base := NewProfiler(spec, WithLevel(3))
			fast := NewProfiler(spec, WithLevel(3),
				WithReplayWorkers(0), WithReplayCache(true))
			want, err := base.ProfileApp(context.Background(), app)
			if err != nil {
				t.Fatalf("%s/%s sequential: %v", gname, aname, err)
			}
			got, err := fast.ProfileApp(context.Background(), app)
			if err != nil {
				t.Fatalf("%s/%s concurrent: %v", gname, aname, err)
			}
			want.WallSeconds, got.WallSeconds = 0, 0
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s/%s: concurrent+cached profile diverged from sequential", gname, aname)
			}
		}
	}
}

// TestDeterminismAutotuneCache pins the cache's hot path on the workload it
// exists for: repeated byte-identical launches (a small GemmAutotune
// instance). Every invocation's analysis, the pass count and the Fig. 13
// cycle totals must match the sequential engine bit for bit even though all
// but the first two invocations replay from the cache.
func TestDeterminismAutotuneCache(t *testing.T) {
	app := workloads.GemmAutotuneSized(64, 8)
	spec := QuadroRTX4000().WithSMs(4)
	base := NewProfiler(spec, WithLevel(3))
	fast := NewProfiler(spec, WithLevel(3),
		WithReplayWorkers(0), WithReplayCache(true))
	want, err := base.ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fast.ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Kernels) != 8 {
		t.Fatalf("got %d invocations, want 8", len(want.Kernels))
	}
	want.WallSeconds, got.WallSeconds = 0, 0
	if !reflect.DeepEqual(want, got) {
		t.Error("cached autotune profile diverged from sequential")
	}
}

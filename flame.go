package gputopdown

import (
	"fmt"
	"io"
	"os"
	"sort"

	"gputopdown/internal/core"
	"gputopdown/internal/obs"
)

// Flame is the folded-stack accumulator (see internal/obs); NewFlame builds
// an empty one for callers that want to mix their own stacks in.
type Flame = obs.Flame

// NewFlame builds an empty folded-stack accumulator.
func NewFlame() *Flame { return obs.NewFlame() }

// AddFlame folds an app result's Top-Down cycle attribution into f: one
// weighted stack per kernel invocation and hierarchy leaf,
//
//	gpu;suite/app;kernel;<Top-Down node>;<stall reason>  cycles
//
// weighted by the invocation's simulated cycles times the component's share
// of IPC_MAX. Level-3 analyses contribute their stall-reason leaves
// (long_scoreboard, no_instruction, ...), level-2 the four stall categories,
// level-1 only Retire/Divergence/Stall. Repeated invocations of one kernel
// fold together, so the flamegraph answers "where did the simulated cycles
// of this run go?" in any tool that reads collapsed stacks. The SM dimension
// is aggregated away by SMPC collection before analysis, so stacks start at
// the device.
func AddFlame(f *Flame, r *AppResult) {
	if f == nil || r == nil {
		return
	}
	appID := r.Suite + "/" + r.App
	for i := range r.Kernels {
		k := &r.Kernels[i]
		a := k.Analysis
		if a == nil {
			continue
		}
		cyc := float64(k.Cycles)
		add := func(w float64, frames ...string) {
			f.Add(cyc*a.Fraction(w), append([]string{r.GPU, appID, k.Kernel}, frames...)...)
		}
		add(a.Retire, "Retire")
		if a.Level < core.Level2 {
			add(a.Divergence, "Divergence")
			add(a.Stall, "Stall")
			continue
		}
		add(a.Branch, "Divergence", "Branch")
		add(a.Replay, "Divergence", "Replay")
		addCategory(add, "Frontend", "Fetch", a.Fetch, a.FetchDetail)
		addCategory(add, "Frontend", "Decode", a.Decode, a.DecodeDetail)
		addCategory(add, "Backend", "Core", a.Core, a.CoreDetail)
		addCategory(add, "Backend", "Memory", a.Memory, a.MemoryDetail)
	}
}

// addCategory emits one stall category: its level-3 stall-reason leaves when
// the analysis has them, otherwise the category itself as the leaf.
func addCategory(add func(w float64, frames ...string), group, name string, total float64, detail map[string]float64) {
	if len(detail) == 0 {
		add(total, group, name)
		return
	}
	segs := make([]string, 0, len(detail))
	for seg := range detail {
		segs = append(segs, seg)
	}
	sort.Strings(segs)
	for _, seg := range segs {
		add(detail[seg], group, name, seg)
	}
}

// WriteFlame writes the folded-stack ("collapsed") simulated-cycle
// attribution of one or more app results — the format speedscope imports
// directly and flamegraph.pl renders to SVG. Nil results are skipped.
func WriteFlame(w io.Writer, results ...*AppResult) error {
	f := NewFlame()
	for _, r := range results {
		AddFlame(f, r)
	}
	if f.Len() == 0 {
		return fmt.Errorf("gputopdown: no analyses to export as flamegraph")
	}
	return f.WriteFolded(w)
}

// WriteFlameFile writes the folded output of WriteFlame to a file.
func WriteFlameFile(path string, results ...*AppResult) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := WriteFlame(file, results...); err != nil {
		return err
	}
	return file.Close()
}

// customkernel authors a kernel from scratch with the mini-ISA builder DSL,
// wraps it as an application and profiles it — the workflow for analysing
// code that is not part of the bundled suites.
//
// The kernel is a deliberately unbalanced SAXPY variant: every fourth
// element takes a heavy transcendental path, so the profile shows both
// divergence and SFU (core) pressure.
package main

import (
	"context"
	"fmt"
	"log"

	"gputopdown"
	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
	"gputopdown/internal/workloads"
)

func buildKernel() *kernel.Program {
	b := kernel.NewBuilder("saxpy_unbalanced")
	xs := b.Param(0)
	ys := b.Param(1)
	n := b.Param(2)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)
	off := b.Shl(gid, 2)
	x := b.Ldg(b.IAdd(xs, off), 0, 4)
	y := b.Ldg(b.IAdd(ys, off), 0, 4)
	r := b.FFma(b.FConst(2.5), x, y)

	// Every fourth thread refines its result with transcendental work:
	// a divergent, SFU-bound path.
	p := b.ISetpImm(isa.CmpEQ, b.AndImm(gid, 3), 0)
	b.If(p)
	for i := 0; i < 6; i++ {
		b.MovTo(r, b.Mufu(isa.MufuSIN, r))
	}
	b.EndIf()

	b.Stg(b.IAdd(ys, off), r, 0, 4)
	b.Exit()
	return b.MustBuild()
}

func main() {
	prog := buildKernel()
	fmt.Println(prog.Disassemble())

	app := &workloads.App{
		Name:        "saxpy_unbalanced",
		Suite:       "custom",
		Description: "hand-built kernel profiled through the public API",
		Run: func(ctx *workloads.RunCtx) error {
			const n = 32 * 1024
			xs := ctx.Dev.Alloc(n * 4)
			ys := ctx.Dev.Alloc(n * 4)
			host := make([]float32, n)
			for i := range host {
				host[i] = ctx.Rng.Float32()
			}
			ctx.Dev.Storage.WriteF32Slice(xs, host)
			ctx.Dev.Storage.WriteF32Slice(ys, host)
			return ctx.Exec(&kernel.Launch{
				Program: prog,
				Grid:    kernel.Dim3{X: n / 256},
				Block:   kernel.Dim3{X: 256},
				Params:  []uint64{xs, ys, n},
			})
		},
	}

	spec := gputopdown.QuadroRTX4000().WithSMs(8)
	profiler := gputopdown.NewProfiler(spec, gputopdown.WithLevel(3))
	res, err := profiler.ProfileApp(context.Background(), app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Aggregate.String())
	a := res.Aggregate
	fmt.Printf("\ndivergence from the guarded SFU path: %.1f%% of IPC_MAX\n",
		100*a.Fraction(a.Divergence))
	fmt.Printf("core (math-pipe) share of stalls: %.1f%% of IPC_MAX\n",
		100*a.Fraction(a.Core))
}

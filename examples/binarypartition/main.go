// binarypartition reproduces the paper's §V.A experiment (Fig. 4): the
// binaryPartitionCG CUDA sample profiled at cooperative-group tile sizes 32,
// 16, 8 and 4, showing performance degrade — and the bottleneck move from
// Divergence to the memory Backend — as tiles shrink.
package main

import (
	"context"
	"fmt"
	"log"

	"gputopdown"
)

func main() {
	spec := gputopdown.QuadroRTX4000().WithSMs(8)
	profiler := gputopdown.NewProfiler(spec, gputopdown.WithLevel(2))

	fmt.Println("binaryPartitionCG Top-Down vs cooperative-group tile size (Turing)")
	fmt.Printf("%6s %8s %8s %8s %8s | %8s %8s\n",
		"tile", "retire", "diverg", "front", "back", "branch", "memory")
	for _, app := range gputopdown.SuiteApps("cudasamples") {
		res, err := profiler.ProfileApp(context.Background(), app)
		if err != nil {
			log.Fatal(err)
		}
		a := res.Aggregate
		f := func(v float64) float64 { return 100 * a.Fraction(v) }
		// App names end in the tile size: binaryPartitionCG_tile32, ...
		fmt.Printf("%6s %7.1f%% %7.1f%% %7.1f%% %7.1f%% | %7.1f%% %7.1f%%\n",
			app.Name[len("binaryPartitionCG_tile"):],
			f(a.Retire), f(a.Divergence), f(a.Frontend), f(a.Backend),
			f(a.Branch), f(a.Memory))
	}
	fmt.Println("\nexpected shape (paper Fig. 4): retire and divergence fall, memory grows")
}

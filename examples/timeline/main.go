// timeline demonstrates the intra-kernel extension of the paper's dynamic
// analysis (§V.D): instead of one Top-Down result per kernel invocation,
// the profiler samples counters every N cycles *inside* one launch, exposing
// phases within a single kernel — here, a hand-built kernel that streams
// memory in its first half and grinds FMAs in its second.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"gputopdown"
	"gputopdown/internal/isa"
	"gputopdown/internal/kernel"
	"gputopdown/internal/workloads"
)

func twoPhaseKernel() *kernel.Program {
	b := kernel.NewBuilder("stream_then_compute")
	in := b.Param(0)
	out := b.Param(1)
	n := b.Param(2)
	gid := b.GlobalIDX()
	b.ExitIf(b.ISetp(isa.CmpGE, gid, n), false)

	// Phase A: strided streaming — memory-bound.
	acc := b.FConst(0)
	i := b.ForImm(0, 24, 1)
	addr := b.IMad(b.AndImm(b.IMad(i, n, gid), (1<<15)-1), b.MovImm(32), in)
	v := b.Ldg(addr, 0, 4)
	b.MovTo(acc, b.FAdd(acc, v))
	b.EndFor()

	// Phase B: a long register-resident FMA chain — compute-bound.
	x := b.FConst(1.0001)
	b.ForImm(0, 96, 1)
	for u := 0; u < 8; u++ {
		b.MovTo(acc, b.FFma(acc, x, x))
	}
	b.EndFor()

	b.Stg(b.IMad(gid, b.MovImm(4), out), acc, 0, 4)
	b.Exit()
	return b.MustBuild()
}

func main() {
	prog := twoPhaseKernel()
	app := &workloads.App{
		Name:  "twophase",
		Suite: "custom",
		Run: func(ctx *workloads.RunCtx) error {
			const n = 16 * 1024
			in := ctx.Dev.Alloc(32 * (1 << 15))
			out := ctx.Dev.Alloc(n * 4)
			randStride := make([]float32, 1<<15)
			for i := range randStride {
				randStride[i] = ctx.Rng.Float32()
			}
			ctx.Dev.Storage.WriteF32Slice(in, randStride[:8192])
			return ctx.Exec(&kernel.Launch{
				Program: prog,
				Grid:    kernel.Dim3{X: n / 256},
				Block:   kernel.Dim3{X: 256},
				Params:  []uint64{in, out, n},
			})
		},
	}

	spec := gputopdown.QuadroRTX4000().WithSMs(8)
	profiler := gputopdown.NewProfiler(spec, gputopdown.WithLevel(2))
	points, err := profiler.Timeline(context.Background(), app, "stream_then_compute", 0, 500)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("intra-kernel Top-Down timeline (500-cycle intervals)")
	fmt.Printf("%10s %8s %8s %8s  %s\n", "cycle", "retire", "memory", "core", "memory share bar")
	for _, pt := range points {
		a := pt.Analysis
		memShare := 0.0
		if deg := a.Degradation(); deg > 0 {
			memShare = a.Memory / deg
		}
		bar := strings.Repeat("#", int(memShare*40))
		fmt.Printf("%10d %7.1f%% %7.1f%% %7.1f%%  %s\n",
			pt.StartCycle, 100*a.Fraction(a.Retire),
			100*a.Fraction(a.Memory), 100*a.Fraction(a.Core), bar)
	}
	fmt.Println("\nexpected: memory-dominated intervals first, compute-dominated after")
}

// Quickstart: profile one benchmark application on the Turing model and
// print its Top-Down hierarchy — the five-line introduction to the library.
package main

import (
	"context"
	"fmt"
	"log"

	"gputopdown"
)

func main() {
	// A downscaled device keeps the example fast; drop WithSMs for the full
	// Quadro RTX 4000.
	spec := gputopdown.QuadroRTX4000().WithSMs(8)
	profiler := gputopdown.NewProfiler(spec, gputopdown.WithLevel(3))

	app, ok := gputopdown.LookupApp("rodinia", "hotspot")
	if !ok {
		log.Fatal("rodinia/hotspot not found")
	}
	res, err := profiler.ProfileApp(context.Background(), app)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(res.Aggregate.String())
	fmt.Printf("\n%d kernel invocations, %d profiling passes each, overhead %.1fx\n",
		len(res.Kernels), res.Passes, res.Overhead())

	// The analysis is plain data: pick out whatever the tooling needs.
	a := res.Aggregate
	fmt.Printf("memory share of all IPC loss: %.0f%%\n",
		100*a.Memory/a.Degradation())
}

// suites sweeps a whole benchmark suite across both evaluation GPUs and
// prints the level-1 Top-Down comparison — the paper's Fig. 5 workflow of
// judging a microarchitecture against a large set of dissimilar kernels.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"gputopdown"
)

func main() {
	suite := flag.String("suite", "rodinia", "suite to sweep")
	sms := flag.Int("sms", 8, "SM count override (0 = full devices)")
	flag.Parse()

	for _, gpuID := range []string{"gtx1070", "rtx4000"} {
		spec, _ := gputopdown.LookupGPU(gpuID)
		if *sms > 0 {
			spec = spec.WithSMs(*sms)
		}
		profiler := gputopdown.NewProfiler(spec, gputopdown.WithLevel(2))
		results, err := profiler.ProfileSuite(context.Background(), *suite)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== %s on %s (IPC_MAX %.0f, %s metrics) ==\n",
			*suite, spec.Name, spec.IPCMax(), results[0].Aggregate.Tool)
		fmt.Printf("%-18s %8s %8s %8s %8s\n", "app", "retire", "diverg", "front", "back")
		var avg [4]float64
		for _, r := range results {
			a := r.Aggregate
			vals := [4]float64{a.Fraction(a.Retire), a.Fraction(a.Divergence),
				a.Fraction(a.Frontend), a.Fraction(a.Backend)}
			fmt.Printf("%-18s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
				r.App, 100*vals[0], 100*vals[1], 100*vals[2], 100*vals[3])
			for i := range avg {
				avg[i] += vals[i] / float64(len(results))
			}
		}
		fmt.Printf("%-18s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n\n",
			"AVERAGE", 100*avg[0], 100*avg[1], 100*avg[2], 100*avg[3])
	}
	fmt.Println("expected (paper Fig. 5): low retire overall; Pascal loses ~20% in its")
	fmt.Println("frontend, Turing under 10% but with a larger backend share")
}

// dynamic reproduces the paper's §V.D per-invocation analysis (Figs. 11-12):
// profiling every one of srad's 100 kernel invocations individually exposes
// two execution phases that whole-application averaging would hide.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"gputopdown"
)

func main() {
	spec := gputopdown.QuadroRTX4000().WithSMs(8)
	// Level 1 needs a single profiling pass, so even 200 profiled kernel
	// invocations stay cheap.
	profiler := gputopdown.NewProfiler(spec, gputopdown.WithLevel(1))

	res, err := profiler.ProfileApp(context.Background(), gputopdown.SradDynamic())
	if err != nil {
		log.Fatal(err)
	}

	for _, kernel := range res.KernelNames() {
		series := res.Series(kernel)
		fmt.Printf("== %s: %d invocations ==\n", kernel, len(series))
		fmt.Printf("%4s %9s  %s\n", "inv", "cycles", "retire | divergence | stall  (bar = retire share)")
		for i, a := range series {
			if i%5 != 0 {
				continue
			}
			retire := a.Fraction(a.Retire)
			bar := strings.Repeat("#", int(retire*40))
			fmt.Printf("%4d %9.0f  %5.1f%% | %5.1f%% | %5.1f%%  %s\n",
				i, a.Weight, 100*retire, 100*a.Fraction(a.Divergence),
				100*a.Fraction(a.Stall), bar)
		}
		// Phase summary: first vs last quarter.
		quarter := len(series) / 4
		avg := func(as []*gputopdown.Analysis) (r, c float64) {
			for _, a := range as {
				r += a.Fraction(a.Retire) / float64(len(as))
				c += a.Weight / float64(len(as))
			}
			return
		}
		r1, c1 := avg(series[:quarter])
		r2, c2 := avg(series[len(series)-quarter:])
		fmt.Printf("phase 1 (first quarter): retire %.1f%%, %.0f cycles/invocation\n", 100*r1, c1)
		fmt.Printf("phase 2 (last quarter):  retire %.1f%%, %.0f cycles/invocation\n\n", 100*r2, c2)
	}
}

package gputopdown

import (
	"context"
	"os"
	"testing"

	"gputopdown/internal/check"
)

// metamorphicRunner builds the check.Runner for one app on one device: each
// configuration gets a fresh profiler (no shared replay cache between
// property runs) and returns the canonical report bytes.
func metamorphicRunner(t *testing.T, spec *GPUSpec, suite, app string) check.Runner {
	t.Helper()
	a, err := GetApp(suite, app)
	if err != nil {
		t.Fatal(err)
	}
	return func(cfg check.Config) ([]byte, error) {
		opts := []Option{
			WithReplayWorkers(cfg.ReplayWorkers),
			WithSimWorkers(cfg.SimWorkers),
			WithFastForward(cfg.FastForward),
			WithReplayCache(cfg.ReplayCache),
			WithChecks(cfg.Checks),
		}
		if cfg.Tracing {
			// At the profiler surface the tracing knob is the execution
			// tracer; it spans every session, pass, and launch.
			opts = append(opts, WithObserver(NewTracer(), nil))
		}
		if cfg.Observer {
			opts = append(opts, WithObserver(NewTracer(), NewMetricsRegistry()))
		}
		p := NewProfiler(spec, opts...)
		res, err := p.ProfileApp(context.Background(), a)
		if err != nil {
			return nil, err
		}
		if err := p.CheckErr(); err != nil {
			return nil, err
		}
		return check.ReportJSON(res.Report())
	}
}

// TestMetamorphicProperties runs the full property table (internal/check):
// every schedule- or observation-only knob must leave the profiled report
// bit-identical. Reduced-SM devices keep the default run within tier-1
// budget; METAMORPHIC_FULL=1 (the CI job) uses the full device models.
func TestMetamorphicProperties(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling matrix skipped in -short mode")
	}
	full := os.Getenv("METAMORPHIC_FULL") != ""
	matrix := []struct {
		gpu, suite, app string
	}{
		{"rtx4000", "rodinia", "bfs"},
		{"gtx1070", "shoc", "triad"},
	}
	if full {
		matrix = append(matrix,
			struct{ gpu, suite, app string }{"rtx4000", "altis", "gups"},
			struct{ gpu, suite, app string }{"gtx1070", "rodinia", "hotspot"},
			struct{ gpu, suite, app string }{"rtx4000", "shoc", "spmv"},
		)
	}
	for _, m := range matrix {
		m := m
		t.Run(m.gpu+"_"+m.suite+"_"+m.app, func(t *testing.T) {
			spec, ok := LookupGPU(m.gpu)
			if !ok {
				t.Fatalf("unknown gpu %q", m.gpu)
			}
			if !full {
				spec = spec.WithSMs(4)
			}
			run := metamorphicRunner(t, spec, m.suite, m.app)
			if err := check.Metamorphic(run, check.Properties()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestChecksCleanProfile asserts the invariant checker stays silent across a
// real profile on both launch engines and both devices — the in-loop laws
// hold on production workloads, not just unit fixtures. CHECKS_FULL=1 sweeps
// every suite app instead of the sample.
func TestChecksCleanProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling skipped in -short mode")
	}
	full := os.Getenv("CHECKS_FULL") != ""
	type job struct{ gpu, suite, app string }
	var jobs []job
	if full {
		for _, g := range []string{"gtx1070", "rtx4000"} {
			for _, s := range Suites() {
				for _, a := range SuiteApps(s) {
					jobs = append(jobs, job{g, s, a.Name})
				}
			}
		}
	} else {
		jobs = []job{
			{"rtx4000", "rodinia", "bfs"},
			{"gtx1070", "altis", "gups"},
		}
	}
	for _, j := range jobs {
		j := j
		t.Run(j.gpu+"_"+j.suite+"_"+j.app, func(t *testing.T) {
			spec, ok := LookupGPU(j.gpu)
			if !ok {
				t.Fatalf("unknown gpu %q", j.gpu)
			}
			if !full {
				spec = spec.WithSMs(4)
			}
			app, err := GetApp(j.suite, j.app)
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range []struct {
				name string
				opts []Option
			}{
				{"ff", []Option{WithChecks(true)}},
				{"naive", []Option{WithChecks(true), WithFastForward(false)}},
				{"parallel", []Option{WithChecks(true), WithSimWorkers(4)}},
			} {
				p := NewProfiler(spec, eng.opts...)
				if _, err := p.ProfileApp(context.Background(), app); err != nil {
					t.Fatalf("%s: %v", eng.name, err)
				}
				if err := p.CheckErr(); err != nil {
					t.Fatalf("%s engine violated invariants: %v", eng.name, err)
				}
			}
		})
	}
}

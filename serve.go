package gputopdown

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"gputopdown/internal/core"
	"gputopdown/internal/serve"
)

// Profiling-as-a-service surface. The wire types, store, retry policy, and
// HTTP server live in internal/serve; this file re-exports them and
// supplies the one piece serve cannot own without an import cycle: the
// JobRunner that turns a JobRequest into a profiled Report via the library
// API. cmd/gpuprofd wires the two together.

// ServeAPIVersion is the daemon's wire-format version ("v1").
const ServeAPIVersion = serve.APIVersion

// Wire and server types of the job API, shared by the daemon, the CLIs'
// -remote mode, and library callers.
type (
	// JobRequest is the versioned submission body for POST /api/v1/jobs.
	JobRequest = serve.JobRequest
	// JobStatus is a job's lifecycle snapshot.
	JobStatus = serve.JobStatus
	// JobState is queued/running/succeeded/failed/cancelled.
	JobState = serve.JobState
	// JobReport is the versioned profiling result, the wire twin of
	// AppResult.
	JobReport = serve.Report
	// JobClient talks to a gpuprofd daemon over HTTP.
	JobClient = serve.Client
	// JobServer is the daemon: HTTP API, job store, worker pool.
	JobServer = serve.Server
	// JobServerOptions configures NewJobServer.
	JobServerOptions = serve.Options
	// JobBackoff schedules retry delays for failed jobs.
	JobBackoff = serve.Backoff
)

// DefaultJobBackoff is the daemon's stock retry schedule (250ms·2ⁿ capped
// at 10s with ±20% jitter drawn from rand, which may be nil for none).
func DefaultJobBackoff(rand func() float64) JobBackoff { return serve.DefaultBackoff(rand) }

// Job lifecycle states: queued → running → {succeeded, failed, cancelled}.
const (
	StateQueued    = serve.StateQueued
	StateRunning   = serve.StateRunning
	StateSucceeded = serve.StateSucceeded
	StateFailed    = serve.StateFailed
	StateCancelled = serve.StateCancelled
)

// NewJobServer builds a daemon server (and starts its worker pool); see
// serve.Options. Most callers want NewJobRunner's Run as Options.Runner.
func NewJobServer(opts JobServerOptions) (*JobServer, error) { return serve.New(opts) }

// JobRunner executes job requests through the library API. It caches one
// Profiler per distinct request configuration so jobs with the same config
// share a replay cache (repeat submissions hit warm autotune and replay
// state, like repeated ProfileApp calls on one Profiler).
type JobRunner struct {
	defaultGPU string
	base       []Option

	mu        sync.Mutex
	profilers map[string]*Profiler
}

// NewJobRunner returns a runner whose jobs default to the given device id
// ("gtx1070", "rtx4000") when the request leaves gpu empty. base options
// (e.g. WithLogger, WithObserver) apply to every profiler it builds, before
// request-derived options.
func NewJobRunner(defaultGPU string, base ...Option) *JobRunner {
	return &JobRunner{
		defaultGPU: defaultGPU,
		base:       base,
		profilers:  make(map[string]*Profiler),
	}
}

// profilerFor returns the cached Profiler for the request's configuration,
// building it on first use.
func (jr *JobRunner) profilerFor(req *JobRequest) (*Profiler, error) {
	gpuID := req.GPU
	if gpuID == "" {
		gpuID = jr.defaultGPU
	}
	spec, ok := LookupGPU(gpuID)
	if !ok {
		return nil, serve.MarkPermanent(fmt.Errorf("gputopdown: unknown gpu %q", gpuID))
	}
	key := fmt.Sprintf("%s|%d|%s|%t|%d|%d|%d|%v|%v",
		gpuID, req.Level, req.Mode, req.RawEquations, req.SampleEvery,
		req.ReplayWorkers, req.SimWorkers, req.ReplayCache, req.FastForward)

	jr.mu.Lock()
	defer jr.mu.Unlock()
	if p, ok := jr.profilers[key]; ok {
		return p, nil
	}
	opts := append([]Option(nil), jr.base...)
	if req.Level > 0 {
		opts = append(opts, WithLevel(req.Level))
	}
	if req.Mode == "hwpm" {
		opts = append(opts, WithHWPM())
	}
	if req.RawEquations {
		opts = append(opts, WithRawEquations())
	}
	if req.SampleEvery > 0 {
		opts = append(opts, WithSampling(req.SampleEvery))
	}
	if req.ReplayWorkers > 0 {
		opts = append(opts, WithReplayWorkers(req.ReplayWorkers))
	}
	if req.SimWorkers > 0 {
		opts = append(opts, WithSimWorkers(req.SimWorkers))
	}
	if req.ReplayCache != nil {
		opts = append(opts, WithReplayCache(*req.ReplayCache))
	}
	if req.FastForward != nil {
		opts = append(opts, WithFastForward(*req.FastForward))
	}
	p, err := NewProfilerE(spec, opts...)
	if err != nil {
		return nil, serve.MarkPermanent(err)
	}
	jr.profilers[key] = p
	return p, nil
}

// Run is the serve.Runner: resolve the app, profile it under ctx, convert
// the result. Unknown suite/app/gpu and invalid configurations are marked
// permanent so the daemon does not retry them; errors.Is still reaches
// ErrUnknownSuite / ErrUnknownApp through the marker.
func (jr *JobRunner) Run(ctx context.Context, req *JobRequest) (*serve.Report, error) {
	app, err := GetApp(req.Suite, req.App)
	if err != nil {
		return nil, serve.MarkPermanent(err)
	}
	p, err := jr.profilerFor(req)
	if err != nil {
		return nil, err
	}
	res, err := p.ProfileApp(ctx, app)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		// Deterministic simulator: the same request reproduces the same
		// failure bit-identically, so retrying is wasted work.
		return nil, serve.MarkPermanent(err)
	}
	return res.Report(), nil
}

// serveAnalysis converts a core analysis to its wire form (the same schema
// Analysis.JSON emits).
func serveAnalysis(a *core.Analysis) *serve.Analysis {
	if a == nil {
		return nil
	}
	return &serve.Analysis{
		Kernel:     a.Kernel,
		GPU:        a.GPU,
		CC:         a.CC.String(),
		Tool:       a.Tool,
		Level:      a.Level,
		Normalized: a.Normalized,
		IPCMax:     a.IPCMax,
		Components: a.Rows(),
		Metrics:    a.Metrics,
	}
}

// ReportOption configures AppResult.Report conversion.
type ReportOption func(*reportOptions)

type reportOptions struct{ canonical bool }

// Canonical zeroes the report's wall_seconds field — the one value that
// varies between identical runs — so two profiles of the same app on the
// same configuration convert to byte-identical reports. The golden corpus
// (internal/check, cmd/goldengen) stores this form.
func Canonical() ReportOption { return func(o *reportOptions) { o.canonical = true } }

// Report converts the result to its versioned wire form. Everything except
// WallSeconds is deterministic: two identical runs produce byte-identical
// reports once wall_seconds is zeroed (pass Canonical to do so).
func (r *AppResult) Report(opts ...ReportOption) *JobReport {
	rep := &serve.Report{
		APIVersion:     serve.APIVersion,
		App:            r.App,
		Suite:          r.Suite,
		GPU:            r.GPU,
		Passes:         r.Passes,
		NativeCycles:   r.NativeCycles,
		ProfiledCycles: r.ProfiledCycles,
		WallSeconds:    r.WallSeconds,
		Aggregate:      serveAnalysis(r.Aggregate),
	}
	for _, k := range r.Kernels {
		rep.Kernels = append(rep.Kernels, serve.KernelReport{
			Kernel:     k.Kernel,
			Invocation: k.Invocation,
			Cycles:     k.Cycles,
			Analysis:   serveAnalysis(k.Analysis),
		})
	}
	for _, ke := range r.Failed {
		rep.Failed = append(rep.Failed, serve.KernelFailure{
			Kernel: ke.Kernel,
			Pass:   ke.Pass,
			Error:  ke.Err.Error(),
		})
	}
	var o reportOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.canonical {
		rep = rep.Canonical()
	}
	return rep
}

// SubmitAndWait is the one-call remote path the CLIs' -remote flag uses:
// submit the request to the daemon at base, poll until terminal, and fetch
// the report on success.
func SubmitAndWait(ctx context.Context, base string, req *JobRequest, poll time.Duration) (*JobReport, error) {
	c := &JobClient{Base: base}
	st, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	id := st.ID
	if _, err := c.Wait(ctx, id, poll); err != nil {
		return nil, fmt.Errorf("job %s: %w", id, err)
	}
	return c.Report(ctx, id)
}

package gputopdown

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestObserverEndToEnd is the acceptance check for the observability layer:
// profiling an app with an attached observer must produce (1) valid Chrome
// trace-event JSON containing ph:"X" span events for replay passes and
// kernel launches, and (2) Prometheus text exposition containing the
// replay-overhead-ratio metric that matches the AppResult's own accounting.
func TestObserverEndToEnd(t *testing.T) {
	spec, _ := LookupGPU("rtx4000")
	tr := NewTracer()
	reg := NewMetricsRegistry()
	p := NewProfiler(spec.WithSMs(2), WithLevel(3), WithObserver(tr, reg))
	app, ok := LookupApp("rodinia", "nw")
	if !ok {
		t.Fatal("unknown app rodinia/nw")
	}
	res, err := p.ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}

	// --- Chrome trace-event JSON ---
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	if err := tr.WriteFile(tracePath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	var passSpans, launchSpans, profileSpans, sessionSpans, analyzeSpans int
	for _, e := range trace.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		switch {
		case strings.HasPrefix(e.Name, "pass "):
			passSpans++
		case strings.HasPrefix(e.Name, "launch "):
			launchSpans++
		case strings.HasPrefix(e.Name, "profile rodinia/"):
			sessionSpans++
		case strings.HasPrefix(e.Name, "profile "):
			profileSpans++
		case strings.HasPrefix(e.Name, "analyze "):
			analyzeSpans++
		}
	}
	kernels := len(res.Kernels)
	if passSpans != kernels*res.Passes {
		t.Errorf("pass spans = %d, want %d (%d kernels x %d passes)",
			passSpans, kernels*res.Passes, kernels, res.Passes)
	}
	if launchSpans != kernels*res.Passes {
		t.Errorf("launch spans = %d, want %d", launchSpans, kernels*res.Passes)
	}
	if profileSpans != kernels {
		t.Errorf("profile spans = %d, want %d", profileSpans, kernels)
	}
	if sessionSpans != 1 {
		t.Errorf("session spans = %d, want 1", sessionSpans)
	}
	if analyzeSpans != kernels {
		t.Errorf("analyze spans = %d, want %d", analyzeSpans, kernels)
	}

	// --- Prometheus text exposition ---
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, want := range []string{
		"# TYPE profiler_replay_overhead_ratio gauge",
		"profiler_replay_overhead_ratio ",
		`profiler_replay_overhead_ratio{app="rodinia/nw"`,
		"# TYPE profiler_passes_total counter",
		"# TYPE profiler_flush_cycles_total counter",
		"# TYPE sim_throughput_cycles_per_second gauge",
		"# TYPE profiler_pass_wall_seconds histogram",
		"profiler_pass_wall_seconds_count ",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
	// The live-instrumented ratio must agree with the result's arithmetic.
	wantNative := float64(res.NativeCycles)
	wantProfiled := float64(res.ProfiledCycles)
	if got := reg.Counter("profiler_native_cycles_total", "", nil).Value(); got != wantNative {
		t.Errorf("native cycles metric %v != result %v", got, wantNative)
	}
	if got := reg.Counter("profiler_profiled_cycles_total", "", nil).Value(); got != wantProfiled {
		t.Errorf("profiled cycles metric %v != result %v", got, wantProfiled)
	}
	if got := reg.Gauge("profiler_replay_overhead_ratio", "", nil).Value(); got != res.Overhead() {
		t.Errorf("overhead gauge %v != result %v", got, res.Overhead())
	}
	if res.WallSeconds <= 0 {
		t.Errorf("WallSeconds = %v, want > 0", res.WallSeconds)
	}
}

// TestObserverOffByDefault: a profiler without WithObserver must run with a
// detached device — no tracer, no registry, identical results.
func TestObserverOffByDefault(t *testing.T) {
	spec, _ := LookupGPU("rtx4000")
	app, _ := LookupApp("rodinia", "nw")
	plain := NewProfiler(spec.WithSMs(2), WithLevel(1))
	observed := NewProfiler(spec.WithSMs(2), WithLevel(1),
		WithObserver(NewTracer(), NewMetricsRegistry()))
	a, err := plain.ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	b, err := observed.ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	if a.NativeCycles != b.NativeCycles || a.ProfiledCycles != b.ProfiledCycles {
		t.Errorf("observer changed results: native %d/%d profiled %d/%d",
			a.NativeCycles, b.NativeCycles, a.ProfiledCycles, b.ProfiledCycles)
	}
	if a.Aggregate.Retire != b.Aggregate.Retire {
		t.Errorf("observer changed analysis: retire %v vs %v",
			a.Aggregate.Retire, b.Aggregate.Retire)
	}
}

module gputopdown

go 1.22

GO ?= go

.PHONY: all build test bench-sim

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench-sim measures the fast-forward launch engine against the naive
# cycle loop: the Go micro-benchmarks on the synthetic memory-bound kernel,
# then benchsim on real suite applications (writing BENCH_sim.json and
# failing if the memory-bound reference app regresses below the gate).
BENCH_REF ?= altis/gups
BENCH_REF_MIN ?= 1.0
BENCH_REPS ?= 3

bench-sim:
	$(GO) test -run xxx -bench 'BenchmarkLaunch(Naive|FastForward)' -benchmem ./internal/sim/
	$(GO) run ./cmd/benchsim -reps $(BENCH_REPS) -ref $(BENCH_REF) -ref-min $(BENCH_REF_MIN) -out BENCH_sim.json

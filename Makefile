GO ?= go

.PHONY: all build test golden bench-sim bench-parallel bench-compare

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# golden regenerates the committed canonical-report corpus under
# internal/check/testdata/golden (every suite app on both evaluation GPUs).
# On an unchanged tree it rewrites nothing — the profiler is deterministic
# and the canonical form zeroes wall-clock. Run it after an intentional
# simulator or analysis change and review the resulting diff like any other
# code change.
golden:
	$(GO) run ./cmd/goldengen

# bench-sim measures the fast-forward launch engine against the naive
# cycle loop: the Go micro-benchmarks on the synthetic memory-bound kernel
# and the SM hot path, then benchsim on real suite applications (appending
# an entry to the BENCH_sim.json trajectory and failing if any gated
# reference app falls below its required speedup).
# Floors recalibrated (gups 3.0 -> 2.0, maxflops 1.0 -> 0.95) for the
# sliced-L2/DRAM device model and single-run jitter.
BENCH_REFS ?= altis/gups:2.0,altis/maxflops:0.95
BENCH_REPS ?= 3
BENCH_ENGINE ?= parallel-sliced
BENCH_PROFILE ?=
BENCH_SIM_WORKERS ?= 4
# Parallel-vs-sequential gates: the parallel engine must not be slower than
# the sequential fast-forward engine on the reference apps (enforced only on
# hosts with >= BENCH_SIM_WORKERS CPUs; single-core runners report only).
BENCH_PAR_REFS ?= altis/gups:0.95

bench-sim:
	$(GO) test -run xxx -bench 'BenchmarkLaunch(Naive|FastForward)' -benchmem ./internal/sim/
	$(GO) test -run xxx -bench 'BenchmarkIssue(ALU|Memory)' -benchmem ./internal/sm/
	$(GO) run ./cmd/benchsim -reps $(BENCH_REPS) -refs '$(BENCH_REFS)' -engine $(BENCH_ENGINE) \
		-sim-workers $(BENCH_SIM_WORKERS) -par-refs '$(BENCH_PAR_REFS)' \
		$(if $(BENCH_PROFILE),-cpuprofile $(BENCH_PROFILE)) -out BENCH_sim.json

# bench-parallel studies the parallel intra-launch engine in isolation: the
# Go micro-benchmark pair (sequential fast-forward vs 4-worker parallel on
# the synthetic memory-bound kernel) and a worker-count scaling sweep on the
# two memory-heavy reference apps, with bit-identity checked at every point.
BENCH_SCALING ?= 1,2,4,8
BENCH_SCALING_APPS ?= altis/gups,rodinia/myocyte

bench-parallel:
	$(GO) test -run xxx -bench 'BenchmarkLaunch(FastForward|Parallel)' -benchmem ./internal/sim/
	$(GO) run ./cmd/benchsim -reps $(BENCH_REPS) -apps '$(BENCH_SCALING_APPS)' \
		-scaling '$(BENCH_SCALING)' -out -

# bench-compare benchmarks HEAD against a baseline checkout's report:
# point BASELINE at a directory containing a BENCH_sim.json (for example a
# git worktree of the commit to compare against) and the target prints
# per-app fast-forward deltas. The HEAD run is written to a scratch file so
# the tracked trajectory is not modified by comparisons.
BASELINE ?=

bench-compare:
	@test -n "$(BASELINE)" || { echo "usage: make bench-compare BASELINE=<dir with BENCH_sim.json>"; exit 1; }
	@test -f "$(BASELINE)/BENCH_sim.json" || { echo "bench-compare: $(BASELINE)/BENCH_sim.json not found"; exit 1; }
	$(GO) run ./cmd/benchsim -reps $(BENCH_REPS) -refs '$(BENCH_REFS)' -engine head \
		-compare $(BASELINE)/BENCH_sim.json -out /tmp/BENCH_sim_head.json

GO ?= go

.PHONY: all build test bench-sim bench-compare

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench-sim measures the fast-forward launch engine against the naive
# cycle loop: the Go micro-benchmarks on the synthetic memory-bound kernel
# and the SM hot path, then benchsim on real suite applications (appending
# an entry to the BENCH_sim.json trajectory and failing if any gated
# reference app falls below its required speedup).
BENCH_REFS ?= altis/gups:3.0,altis/maxflops:1.0
BENCH_REPS ?= 3
BENCH_ENGINE ?= hotpath-adaptive
BENCH_PROFILE ?=

bench-sim:
	$(GO) test -run xxx -bench 'BenchmarkLaunch(Naive|FastForward)' -benchmem ./internal/sim/
	$(GO) test -run xxx -bench 'BenchmarkIssue(ALU|Memory)' -benchmem ./internal/sm/
	$(GO) run ./cmd/benchsim -reps $(BENCH_REPS) -refs '$(BENCH_REFS)' -engine $(BENCH_ENGINE) \
		$(if $(BENCH_PROFILE),-cpuprofile $(BENCH_PROFILE)) -out BENCH_sim.json

# bench-compare benchmarks HEAD against a baseline checkout's report:
# point BASELINE at a directory containing a BENCH_sim.json (for example a
# git worktree of the commit to compare against) and the target prints
# per-app fast-forward deltas. The HEAD run is written to a scratch file so
# the tracked trajectory is not modified by comparisons.
BASELINE ?=

bench-compare:
	@test -n "$(BASELINE)" || { echo "usage: make bench-compare BASELINE=<dir with BENCH_sim.json>"; exit 1; }
	@test -f "$(BASELINE)/BENCH_sim.json" || { echo "bench-compare: $(BASELINE)/BENCH_sim.json not found"; exit 1; }
	$(GO) run ./cmd/benchsim -reps $(BENCH_REPS) -refs '$(BENCH_REFS)' -engine head \
		-compare $(BASELINE)/BENCH_sim.json -out /tmp/BENCH_sim_head.json

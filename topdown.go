// Package gputopdown is a Top-Down performance-profiling toolkit for NVIDIA
// GPUs, reproducing "Top-Down Performance Profiling on NVIDIA's GPUs"
// (Saiz et al., IPDPS Workshops 2022) on a built-in cycle-level GPU
// simulator.
//
// The package glues the full stack together the way the paper's tool does:
//
//	PMU counters -> multi-pass replay (CUPTI) -> nvprof/ncu metrics ->
//	Top-Down hierarchy (Retire / Divergence / Frontend / Backend)
//
// Typical use:
//
//	p := gputopdown.NewProfiler(gputopdown.QuadroRTX4000(),
//	        gputopdown.WithLevel(3))
//	app, _ := gputopdown.LookupApp("rodinia", "srad_v2")
//	res, _ := p.ProfileApp(context.Background(), app)
//	fmt.Print(res.Aggregate)
//
// The API is context-first: every Profile* method takes a context.Context as
// its first argument, honouring cancellation and deadlines mid-run. The
// former *Ctx names remain as deprecated wrappers.
//
// Devices are simulated (see DESIGN.md for the substitution argument), so
// results are bit-reproducible and need no GPU hardware.
package gputopdown

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"gputopdown/internal/check"
	"gputopdown/internal/core"
	"gputopdown/internal/cupti"
	"gputopdown/internal/gpu"
	"gputopdown/internal/kernel"
	"gputopdown/internal/obs"
	"gputopdown/internal/pmu"
	"gputopdown/internal/sim"
	"gputopdown/internal/workloads"
)

// Re-exported device models (paper Table IX).
var (
	// GTX1070 returns the Pascal (CC 6.1) evaluation GPU.
	GTX1070 = gpu.GTX1070
	// QuadroRTX4000 returns the Turing (CC 7.5) evaluation GPU.
	QuadroRTX4000 = gpu.QuadroRTX4000
)

// GPUSpec is a device model.
type GPUSpec = gpu.Spec

// Analysis is a Top-Down result (IPC components; see internal/core).
type Analysis = core.Analysis

// App is a benchmark application.
type App = workloads.App

// LookupGPU resolves a short device id ("gtx1070", "rtx4000").
func LookupGPU(id string) (*GPUSpec, bool) { return gpu.Lookup(id) }

// LookupApp resolves an app by suite and name ("rodinia", "bfs").
func LookupApp(suite, name string) (*App, bool) { return workloads.Lookup(suite, name) }

// Suites lists the available benchmark suites.
func Suites() []string { return workloads.Suites() }

// SuiteApps lists a suite's applications.
func SuiteApps(suite string) []*App { return workloads.BySuite(suite) }

// SradDynamic returns the 100-invocation SRAD application used for the
// paper's per-invocation dynamic analysis (Figs. 11 and 12).
func SradDynamic() *App { return workloads.SradDynamic() }

// GemmAutotune returns an autotuning-harness workload: the same GEMM
// configuration launched repeatedly with identical inputs, so from the
// second repetition on every invocation is byte-identical. It is the
// reference workload for the replay result cache (see WithReplayCache and
// the BenchmarkReplay* family).
func GemmAutotune() *App { return workloads.GemmAutotune() }

// Option configures a Profiler.
type Option func(*Profiler)

// WithLevel sets the Top-Down analysis depth (1..3; level 3 requires a
// CC >= 7.2 device and is capped otherwise).
func WithLevel(level int) Option { return func(p *Profiler) { p.level = level } }

// WithRawEquations disables the figure-style normalisation and follows the
// paper's equations (8)-(14) literally, leaving a residual in unlisted
// warp states.
func WithRawEquations() Option { return func(p *Profiler) { p.normalize = false } }

// WithHWPM switches counter collection to the HWPM mechanism (single-SM
// sampling) instead of SMPC (paper §II.A).
func WithHWPM() Option { return func(p *Profiler) { p.mode = cupti.ModeHWPM } }

// WithMemBytes sets the simulated device-memory size.
func WithMemBytes(n int) Option { return func(p *Profiler) { p.memBytes = n } }

// WithSampling profiles only every n-th invocation of each kernel, running
// the rest natively with the most recent sampled values — the paper's §VII
// mitigation for applications whose kernel counts make full replay
// impractical.
func WithSampling(n int) Option { return func(p *Profiler) { p.sampleEvery = n } }

// WithRoofline additionally collects the counters for an instruction-
// roofline placement (the complement analysis of the paper's related work
// [26]) and attaches it to each AppResult.
func WithRoofline() Option { return func(p *Profiler) { p.roofline = true } }

// WithReplayWorkers sets the number of worker devices the replay engine may
// fan one kernel's scheduled passes across. 1 (the default) keeps the
// historical strictly sequential replay; n == 0 means one worker per CPU
// core. Because every pass re-runs the deterministic simulator from the same
// restored memory snapshot with cold caches, pass results are bit-identical
// regardless of worker count (see DESIGN.md), and the merged counter values
// are assembled in pass order.
func WithReplayWorkers(n int) Option { return func(p *Profiler) { p.replayWorkers = n } }

// WithSimWorkers sets the intra-launch parallelism degree: the number of
// workers one kernel launch may shard its SM simulation across (the
// epoch-lockstep engine; see DESIGN.md §13). 1 (the default) runs the
// sequential engine; the value is clamped to GOMAXPROCS. Results are
// bit-identical at every setting — only host wall-clock changes. SM-level
// workers multiply with pass-level replay workers (WithReplayWorkers), so
// when both exceed 1 the per-device worker count is further clamped to keep
// the total goroutine budget within GOMAXPROCS.
func WithSimWorkers(n int) Option { return func(p *Profiler) { p.simWorkers = n } }

// WithFastForward selects the launch engine. On (the default), the device
// fast-forwards each SM over provably idle cycle spans — spans the SM proves
// no observable state can change in — bulk-accounting the skipped cycles, so
// memory-latency-bound phases simulate in a fraction of the naive loop's
// wall time. Off runs the historical cycle-by-cycle loop. Both engines
// produce bit-identical results (cycles, counters, per-SM deltas, trace
// samples); see DESIGN.md §"Fast-forward engine".
func WithFastForward(on bool) Option { return func(p *Profiler) { p.fastForward = on } }

// WithReplayCache enables deterministic memoization of byte-identical kernel
// invocations: when the same (program, launch configuration, device memory,
// constant bank) recurs under the same pass schedule, the recorded counter
// values and memory effects are replayed instead of re-simulating, while the
// full replay cost is still charged to the Fig. 13 overhead accounting. The
// cache is shared across every session the profiler creates (ProfileApps runs
// apps concurrently; the cache is safe for that).
func WithReplayCache(on bool) Option { return func(p *Profiler) { p.cacheOn = on } }

// WithChecks attaches the in-loop invariant checker (internal/check): every
// checkpointed simulation epoch, kernel launch, PMU pass merge, and Top-Down
// analysis is asserted against the conservation laws the design guarantees
// (warp-state histogram sums, cache/DRAM accounting, Top-Down closure).
// Violations accumulate on the profiler and are reported by CheckErr; they do
// not interrupt the run. Off (the default) the hook sites are nil checks —
// zero allocations, no measurable cost (BenchmarkChecksDisabled).
func WithChecks(on bool) Option { return func(p *Profiler) { p.checksOn = on } }

// CheckErr reports the invariant violations recorded so far when the profiler
// was built WithChecks(true): nil when none (or when checks are off), else an
// error listing the first violations and the total count. The checker
// accumulates across runs; it is not reset between apps.
func (p *Profiler) CheckErr() error { return p.checks.Err() }

// Tracer is the execution tracer (Chrome trace-event JSON export); see
// internal/obs. Create one with NewTracer.
type Tracer = obs.Tracer

// MetricsRegistry is the profiler self-metrics registry (Prometheus text
// exposition); see internal/obs. Create one with NewMetricsRegistry.
type MetricsRegistry = obs.Registry

// NewTracer builds an execution tracer whose wall clock starts now.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WithObserver attaches an execution tracer and/or a metrics registry to the
// profiler: every profiling session, replay pass, cache flush, kernel launch
// and Top-Down analysis becomes a span, and the profiler self-metrics
// (passes, flush cycles, simulated cycles, wall time, replay overhead ratio,
// sim throughput) are maintained live. Either argument may be nil. The cost
// when no observer is attached is near zero.
func WithObserver(tr *Tracer, reg *MetricsRegistry) Option {
	return func(p *Profiler) {
		p.tracer = tr
		p.metrics = reg
	}
}

// Logger is the structured, component-scoped leveled logger (log/slog based);
// see internal/obs. Create one with NewLogger, attach it with WithLogger.
type Logger = obs.Logger

// ProgressSnapshot is a point-in-time view of a live profiling run — what
// the observability server serves on /api/progress.
type ProgressSnapshot = obs.ProgressSnapshot

// NewLogger builds a structured logger writing to w. level is "debug",
// "info", "warn" or "error" (the -log-level flag values); format is "text"
// for logfmt-style lines or "json" for one JSON object per line.
func NewLogger(w io.Writer, level, format string) (*Logger, error) {
	lv, err := obs.ParseLevel(level)
	if err != nil {
		return nil, err
	}
	return obs.NewLogger(w, lv, format), nil
}

// WithLogger attaches a structured logger to the profiler. Every subsystem
// logs under its own component scope: "cupti" (pass start/stop, session
// configuration), "cache" (replay-cache hits and misses), "sim" (kernel
// launches and fast-forward accounting), "core" (analyses), "profiler"
// (per-app summaries) and "progress" (the periodic suite-progress line; see
// WithProgressInterval). A nil logger — or no WithLogger at all — keeps the
// allocation-free disabled path.
func WithLogger(l *Logger) Option { return func(p *Profiler) { p.logger = l } }

// WithObsServer starts the live observability HTTP server on addr (":0"
// picks a free port; query it with ObsAddr) when the profiler is built. The
// server exposes GET /metrics (live Prometheus scrape), /healthz, /trace
// (current Chrome trace snapshot), /api/progress (live run progress JSON)
// and net/http/pprof under /debug/pprof/ for continuous self-profiling. If
// no tracer or metrics registry was attached with WithObserver, both are
// created so the endpoints have live data. The server shuts down gracefully
// in Profiler.Close; a failed bind is reported by NewProfilerE (NewProfiler
// records it and profiling proceeds without the server).
func WithObsServer(addr string) Option { return func(p *Profiler) { p.obsAddr = addr } }

// WithProgressInterval sets the period of the structured suite-progress log
// line emitted during ProfileApps/ProfileSuite runs (default 10s; requires
// WithLogger). d <= 0 disables the periodic line; progress is then still
// available on /api/progress when the server is running.
func WithProgressInterval(d time.Duration) Option {
	return func(p *Profiler) { p.progressEvery = d }
}

// Profiler runs applications under Top-Down profiling on one GPU model.
type Profiler struct {
	spec          *gpu.Spec
	level         int
	normalize     bool
	mode          cupti.Mode
	memBytes      int
	sampleEvery   int
	roofline      bool
	replayWorkers int
	simWorkers    int
	cacheOn       bool
	fastForward   bool
	checksOn      bool
	checks        *check.Invariants
	cache         *cupti.ReplayCache
	tracer        *obs.Tracer
	metrics       *obs.Registry
	logger        *obs.Logger
	progress      *obs.Progress
	progressEvery time.Duration
	obsAddr       string
	obsServer     *obs.Server
	obsErr        error
}

// NewProfiler builds a profiler for a device model. The default is a
// normalised level-3 analysis with SMPC collection and sequential replay.
//
// Out-of-range options are clamped rather than rejected: a level outside
// 1..3 is capped by the analyzer, memBytes <= 0 falls back to the simulator
// default, sampleEvery < 1 disables sampling, and replayWorkers < 0 becomes
// sequential (1). Use NewProfilerE to have invalid options reported as
// errors instead.
func NewProfiler(spec *gpu.Spec, opts ...Option) *Profiler {
	p := &Profiler{
		spec:          spec,
		level:         core.Level3,
		normalize:     true,
		mode:          cupti.ModeSMPC,
		memBytes:      sim.DefaultMemBytes,
		replayWorkers: 1,
		fastForward:   true,
		progressEvery: 10 * time.Second,
	}
	for _, o := range opts {
		o(p)
	}
	if p.memBytes <= 0 {
		p.memBytes = sim.DefaultMemBytes
	}
	if p.sampleEvery < 0 {
		p.sampleEvery = 0
	}
	if p.replayWorkers < 0 {
		p.replayWorkers = 1
	}
	if p.simWorkers < 1 {
		p.simWorkers = 1
	}
	if max := runtime.GOMAXPROCS(0); p.simWorkers > max {
		p.simWorkers = max
	}
	if p.cacheOn {
		p.cache = cupti.NewReplayCache(0)
	}
	if p.checksOn {
		p.checks = check.New()
	}
	// Live observability service: the server needs a registry and tracer to
	// scrape, and a progress tracker to report; create whatever is missing.
	if p.obsAddr != "" {
		if p.metrics == nil {
			p.metrics = obs.NewRegistry()
		}
		if p.tracer == nil {
			p.tracer = obs.NewTracer()
		}
	}
	if p.obsAddr != "" || p.logger != nil {
		p.progress = obs.NewProgress()
	}
	if p.obsAddr != "" {
		srv := obs.NewServer(p.tracer, p.metrics, p.progress)
		srv.SetLogger(p.logger)
		if err := srv.Start(p.obsAddr); err != nil {
			// NewProfiler has no error return; record the failure for
			// NewProfilerE (and the logger) and profile without the server.
			p.obsErr = err
			p.logger.Error("observability server failed to start",
				"addr", p.obsAddr, "err", err)
		} else {
			p.obsServer = srv
		}
	}
	return p
}

// NewProfilerE is the validating variant of NewProfiler: instead of clamping
// out-of-range options it rejects them, so configuration mistakes fail fast
// at construction rather than silently changing behavior. It returns an
// error when spec is nil, the level is outside 1..3, sampleEvery is
// negative, memBytes is not positive, or replayWorkers is negative.
func NewProfilerE(spec *gpu.Spec, opts ...Option) (*Profiler, error) {
	if spec == nil {
		return nil, fmt.Errorf("gputopdown: nil GPU spec")
	}
	probe := &Profiler{level: core.Level3, memBytes: sim.DefaultMemBytes}
	for _, o := range opts {
		o(probe)
	}
	if probe.level < core.Level1 || probe.level > core.Level3 {
		return nil, fmt.Errorf("gputopdown: analysis level %d outside 1..3", probe.level)
	}
	if probe.sampleEvery < 0 {
		return nil, fmt.Errorf("gputopdown: negative sampling interval %d", probe.sampleEvery)
	}
	if probe.memBytes <= 0 {
		return nil, fmt.Errorf("gputopdown: non-positive device memory size %d", probe.memBytes)
	}
	if probe.replayWorkers < 0 {
		return nil, fmt.Errorf("gputopdown: negative replay worker count %d", probe.replayWorkers)
	}
	if probe.simWorkers < 0 {
		return nil, fmt.Errorf("gputopdown: negative sim worker count %d", probe.simWorkers)
	}
	p := NewProfiler(spec, opts...)
	if p.obsErr != nil {
		return nil, fmt.Errorf("gputopdown: %w", p.obsErr)
	}
	return p, nil
}

// Close releases profiler-owned background resources: when WithObsServer
// started an observability server, it shuts down gracefully (in-flight
// scrapes drain, the serve goroutine exits). Close is idempotent and safe on
// a profiler without a server.
func (p *Profiler) Close() error {
	srv := p.obsServer
	p.obsServer = nil
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(ctx)
}

// ObsAddr returns the bound address of the live observability server, e.g.
// "127.0.0.1:40123" — useful with WithObsServer(":0"). Empty when no server
// is running.
func (p *Profiler) ObsAddr() string {
	if p.obsServer == nil {
		return ""
	}
	return p.obsServer.Addr()
}

// Progress returns a snapshot of the live run progress (apps/kernels/passes
// completed, current position, cache hit ratio, ETA). Without WithObsServer
// or WithLogger no progress is tracked and a zero snapshot is returned.
func (p *Profiler) Progress() ProgressSnapshot { return p.progress.Snapshot() }

// Spec returns the profiler's device model.
func (p *Profiler) Spec() *gpu.Spec { return p.spec }

// Level returns the configured analysis level after device capping.
func (p *Profiler) Level() int {
	return core.NewAnalyzer(p.spec, p.level).Level
}

// KernelResult is the Top-Down analysis of one kernel invocation.
type KernelResult struct {
	Kernel     string
	Invocation int
	// Cycles is the kernel's native duration on the device.
	Cycles uint64
	// Analysis is the per-invocation Top-Down breakdown.
	Analysis *core.Analysis
}

// AppResult is the profile of one application.
type AppResult struct {
	App   string
	Suite string
	GPU   string
	// Kernels holds every kernel invocation in execution order.
	Kernels []KernelResult
	// Aggregate is the duration-weighted application-level analysis
	// (paper §V.D).
	Aggregate *core.Analysis
	// Passes is the replays per kernel the counter set required.
	Passes int
	// NativeCycles and ProfiledCycles are the totals behind the paper's
	// Fig. 13 overhead ratio.
	NativeCycles   uint64
	ProfiledCycles uint64
	// WallSeconds is the host wall-clock time the profiled run took.
	WallSeconds float64
	// Roofline is the app-level instruction-roofline placement, present
	// when the profiler was built WithRoofline.
	Roofline *core.Roofline
	// Failed holds the kernels whose simulation panicked and was isolated
	// (each wraps ErrKernelPanic); the rest of the application completed
	// without them. Empty on a clean run.
	Failed []*KernelError
}

// Overhead returns ProfiledCycles/NativeCycles.
func (r *AppResult) Overhead() float64 {
	if r.NativeCycles == 0 {
		return 0
	}
	return float64(r.ProfiledCycles) / float64(r.NativeCycles)
}

// Series returns the per-invocation analyses of one kernel, in invocation
// order — the paper's dynamic analysis (Figs. 11 and 12).
func (r *AppResult) Series(kernelName string) []*core.Analysis {
	var out []*core.Analysis
	for _, k := range r.Kernels {
		if k.Kernel == kernelName {
			out = append(out, k.Analysis)
		}
	}
	return out
}

// KernelNames returns the distinct kernel names in first-seen order.
func (r *AppResult) KernelNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, k := range r.Kernels {
		if !seen[k.Kernel] {
			seen[k.Kernel] = true
			names = append(names, k.Kernel)
		}
	}
	return names
}

// ProfileApp runs one application on a fresh simulated device under the
// profiler and returns its Top-Down results. The context is first-class:
// cancellation and deadlines are checked between kernel launches, between
// replay passes, and inside the simulation loop itself (every few hundred
// simulated-cycle steps, including fast-forward wakeup boundaries), so a
// profiled run stops well within one replay pass of ctx being cancelled,
// returning ctx.Err wrapped in a *KernelError. Pass context.Background()
// when no cancellation is wanted.
//
// A kernel whose simulation panics is isolated rather than fatal: it is
// recorded on AppResult.Failed as a *KernelError wrapping ErrKernelPanic,
// the device is reset, and the application's remaining kernels profile
// normally (graceful degradation). Only when every kernel fails — or the app
// launches none — does ProfileApp return an error.
func (p *Profiler) ProfileApp(ctx context.Context, app *workloads.App) (*AppResult, error) {
	dev := sim.NewDeviceMem(p.spec, p.memBytes)
	dev.SetFastForward(p.fastForward)
	dev.SetSimWorkers(p.effectiveSimWorkers())
	return p.profileOn(ctx, dev, app)
}

// effectiveSimWorkers is the per-device intra-launch worker count after the
// shared-budget clamp: when the replay engine fans passes across its own
// worker devices (each of which clones the profiled device, inheriting its
// sim-worker setting), the product of the two degrees is held within
// GOMAXPROCS so the two parallelism levels share one CPU budget instead of
// oversubscribing the host.
func (p *Profiler) effectiveSimWorkers() int {
	n := p.simWorkers
	if n < 1 {
		n = 1
	}
	rw := p.replayWorkers
	if rw == 0 {
		rw = runtime.NumCPU()
	}
	if rw > 1 {
		if b := runtime.GOMAXPROCS(0) / rw; n > b {
			n = b
		}
		if n < 1 {
			n = 1
		}
	}
	return n
}

// ProfileAppCtx is the former name of the context-first ProfileApp.
//
// Deprecated: call ProfileApp, which now takes the context first.
func (p *Profiler) ProfileAppCtx(ctx context.Context, app *workloads.App) (*AppResult, error) {
	return p.ProfileApp(ctx, app)
}

func (p *Profiler) profileOn(ctx context.Context, dev *sim.Device, app *workloads.App) (*AppResult, error) {
	analyzer := core.NewAnalyzer(p.spec, p.level)
	analyzer.Normalize = p.normalize
	request, err := analyzer.CounterRequest()
	if err != nil {
		return nil, err
	}
	if p.roofline {
		request = append(request, core.RooflineRequest()...)
	}
	sess, err := cupti.NewSession(dev, request, p.mode)
	if err != nil {
		return nil, err
	}
	if p.sampleEvery > 1 {
		sess.SetSampling(p.sampleEvery)
	}
	workers := p.replayWorkers
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	sess.SetWorkers(workers)
	if p.cache != nil {
		sess.SetCache(p.cache)
	}
	if p.checks != nil {
		sess.SetChecker(p.checks)
	}
	obsOn := p.tracer != nil || p.metrics != nil
	if obsOn {
		sess.SetObserver(p.tracer, p.metrics)
		analyzer.SetObserver(p.tracer, p.metrics)
	}
	if p.logger != nil {
		sess.SetLogger(p.logger)
		analyzer.SetLogger(p.logger)
	}
	sess.SetProgress(p.progress)
	p.progress.StartApp(app.Suite, app.Name)
	sessStart := p.tracer.Now()
	wallStart := time.Now()
	res := &AppResult{App: app.Name, Suite: app.Suite, GPU: p.spec.Name, Passes: sess.NumPasses()}
	err = app.Execute(dev, func(l *kernel.Launch) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		rec, err := sess.ProfileCtx(ctx, l)
		if err != nil {
			// Per-kernel panic isolation: a crashed kernel degrades the
			// profile instead of killing it. The device was already reset by
			// the middleware; record the loss and keep going.
			var ke *KernelError
			if errors.As(err, &ke) && errors.Is(err, ErrKernelPanic) {
				res.Failed = append(res.Failed, ke)
				if p.logger.On(obs.LevelWarn) {
					p.logger.Component("profiler").Warn("kernel isolated after panic",
						"app", app.ID(), "kernel", ke.Kernel, "err", ke.Err)
				}
				return nil
			}
			return err
		}
		a := analyzer.Analyze(rec.Kernel, rec.Values)
		a.Weight = float64(rec.Cycles)
		p.checks.CheckAnalysis(a)
		res.Kernels = append(res.Kernels, KernelResult{
			Kernel:     rec.Kernel,
			Invocation: rec.Invocation,
			Cycles:     rec.Cycles,
			Analysis:   a,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(res.Kernels) == 0 {
		if len(res.Failed) > 0 {
			// Every kernel panicked: nothing to analyse, so degradation
			// becomes failure — joined so errors.Is/As see each KernelError.
			failed := make([]error, len(res.Failed))
			for i, ke := range res.Failed {
				failed[i] = ke
			}
			return nil, fmt.Errorf("gputopdown: %s: all %d kernels failed: %w",
				app.ID(), len(res.Failed), errors.Join(failed...))
		}
		return nil, fmt.Errorf("gputopdown: %s: %w", app.ID(), ErrNoKernels)
	}
	analyses := make([]*core.Analysis, len(res.Kernels))
	for i := range res.Kernels {
		analyses[i] = res.Kernels[i].Analysis
	}
	res.Aggregate = core.Aggregate(app.Name, analyses)
	p.checks.CheckAnalysis(res.Aggregate)
	res.NativeCycles, res.ProfiledCycles = sess.Overhead()
	res.WallSeconds = time.Since(wallStart).Seconds()
	if obsOn {
		if p.tracer != nil {
			p.tracer.Complete(obs.PIDProfiler, 1, "session", "profile "+app.ID(),
				sessStart, map[string]any{
					"gpu": p.spec.Name, "kernels": len(res.Kernels),
					"passes_per_kernel": res.Passes, "overhead": res.Overhead(),
				})
		}
		p.metrics.Gauge("profiler_replay_overhead_ratio",
			"Live profiled/native simulated-cycle ratio (the paper's Fig. 13).",
			obs.Labels{"app": app.ID(), "gpu": p.spec.Name}).Set(res.Overhead())
	}
	if p.roofline {
		total := pmu.Values{}
		for _, rec := range sess.Records() {
			for _, id := range core.RooflineRequest() {
				total[id] += rec.Values[id]
			}
		}
		res.Roofline = core.ComputeRoofline(p.spec, total)
	}
	p.progress.AppDone()
	if p.logger.On(obs.LevelInfo) {
		p.logger.Component("profiler").Info("app profiled",
			"app", app.ID(), "gpu", p.spec.Name,
			"kernels", len(res.Kernels), "passes_per_kernel", res.Passes,
			"overhead", res.Overhead(), "wall_seconds", res.WallSeconds)
	}
	return res, nil
}

// TimelinePoint is one interval of an intra-kernel timeline.
type TimelinePoint = core.TimelinePoint

// Timeline records an intra-kernel Top-Down timeline: the app runs natively
// with per-interval counter sampling enabled, and the invocation of
// kernelName selected by invocation (0-based) is analysed interval by
// interval. This extends the paper's §V.D dynamic analysis below kernel
// granularity (a simulator-side capability; see internal/core.AnalyzeTimeline).
// Cancellation is checked between kernel launches and inside each launch's
// simulation loop.
func (p *Profiler) Timeline(ctx context.Context, app *workloads.App, kernelName string, invocation int, interval uint64) ([]TimelinePoint, error) {
	if interval == 0 {
		return nil, fmt.Errorf("gputopdown: zero timeline interval")
	}
	dev := sim.NewDeviceMem(p.spec, p.memBytes)
	dev.SetFastForward(p.fastForward)
	dev.SetSimWorkers(p.effectiveSimWorkers())
	if p.checks != nil {
		dev.SetChecker(p.checks)
	}
	dev.EnableTrace(interval)
	analyzer := core.NewAnalyzer(p.spec, p.level)
	analyzer.Normalize = p.normalize
	if p.tracer != nil || p.metrics != nil {
		dev.SetObserver(p.tracer, p.metrics)
		analyzer.SetObserver(p.tracer, p.metrics)
	}
	if p.logger != nil {
		dev.SetLogger(p.logger)
		analyzer.SetLogger(p.logger)
	}
	var points []TimelinePoint
	seen := 0
	err := app.Execute(dev, func(l *kernel.Launch) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := dev.LaunchCtx(ctx, l)
		if err != nil {
			return err
		}
		if l.Program.Name == kernelName {
			if seen == invocation {
				points = analyzer.AnalyzeTimeline(kernelName, res.Trace, interval)
			}
			seen++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if seen == 0 {
		return nil, fmt.Errorf("gputopdown: %s never launched kernel %q", app.ID(), kernelName)
	}
	if points == nil {
		return nil, fmt.Errorf("gputopdown: kernel %q has only %d invocations", kernelName, seen)
	}
	return points, nil
}

// TimelineCtx is the former name of the context-first Timeline.
//
// Deprecated: call Timeline, which now takes the context first.
func (p *Profiler) TimelineCtx(ctx context.Context, app *workloads.App, kernelName string, invocation int, interval uint64) ([]TimelinePoint, error) {
	return p.Timeline(ctx, app, kernelName, invocation, interval)
}

// RunNative executes an application without profiling and returns its total
// device cycles — the Fig. 13 baseline.
func (p *Profiler) RunNative(app *workloads.App) (uint64, error) {
	dev := sim.NewDeviceMem(p.spec, p.memBytes)
	dev.SetFastForward(p.fastForward)
	dev.SetSimWorkers(p.effectiveSimWorkers())
	if p.checks != nil {
		dev.SetChecker(p.checks)
	}
	if p.logger != nil {
		dev.SetLogger(p.logger)
	}
	var total uint64
	err := app.Execute(dev, func(l *kernel.Launch) error {
		res, err := dev.Launch(l)
		if err != nil {
			return err
		}
		total += res.Cycles
		return nil
	})
	return total, err
}

// ProfileSuite profiles every app of a suite, each on its own fresh device,
// fanning the independent apps across CPU cores. Results keep suite order.
// An unknown suite reports ErrUnknownSuite. Cancellation semantics are
// ProfileApps'.
func (p *Profiler) ProfileSuite(ctx context.Context, suite string) ([]*AppResult, error) {
	apps := workloads.BySuite(suite)
	if len(apps) == 0 {
		return nil, fmt.Errorf("gputopdown: suite %q: %w", suite, ErrUnknownSuite)
	}
	return p.ProfileApps(ctx, apps)
}

// ProfileSuiteCtx is the former name of the context-first ProfileSuite.
//
// Deprecated: call ProfileSuite, which now takes the context first.
func (p *Profiler) ProfileSuiteCtx(ctx context.Context, suite string) ([]*AppResult, error) {
	return p.ProfileSuite(ctx, suite)
}

// ProfileApps profiles a list of apps concurrently, one fresh device each,
// under a context. Every app is attempted and all failures are aggregated
// with errors.Join, each wrapped with its app id; the returned slice keeps
// input order and holds the results of the apps that succeeded (nil at
// failed indices), so partial progress is not discarded. Cancellation stops
// the remaining apps and surfaces ctx.Err among the joined errors.
func (p *Profiler) ProfileApps(ctx context.Context, apps []*workloads.App) ([]*AppResult, error) {
	p.progress.StartRun(len(apps))
	stopProgressLog := p.startProgressLog()
	defer stopProgressLog()
	results := make([]*AppResult, len(apps))
	errs := make([]error, len(apps))
	workers := runtime.NumCPU()
	if workers > len(apps) {
		workers = len(apps)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = p.ProfileApp(ctx, apps[i])
			}
		}()
	}
	fed := 0
feed:
	for i := range apps {
		select {
		case jobs <- i:
			fed++
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			errs[i] = fmt.Errorf("gputopdown: %s: %w", apps[i].ID(), err)
		}
	}
	if fed < len(apps) {
		// Cancellation stopped the feed; the unfed apps never ran, so make
		// sure ctx.Err is visible even if every started app happened to
		// finish cleanly.
		errs = append(errs, fmt.Errorf("gputopdown: %d of %d apps not profiled: %w",
			len(apps)-fed, len(apps), ctx.Err()))
	}
	if err := errors.Join(errs...); err != nil {
		return results, err
	}
	return results, nil
}

// ProfileAppsCtx is the former name of the context-first ProfileApps.
//
// Deprecated: call ProfileApps, which now takes the context first.
func (p *Profiler) ProfileAppsCtx(ctx context.Context, apps []*workloads.App) ([]*AppResult, error) {
	return p.ProfileApps(ctx, apps)
}

// startProgressLog starts the periodic structured progress line for a suite
// run — apps done/total, current kernel, pass throughput, cache hit ratio —
// so long sweeps stay observable even without the HTTP server. It returns a
// stop function (safe to call exactly once); a no-op closure is returned
// when no logger or progress tracker is attached or the interval is off.
func (p *Profiler) startProgressLog() func() {
	if p.logger == nil || p.progress == nil || p.progressEvery <= 0 {
		return func() {}
	}
	log := p.logger.Component("progress")
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(p.progressEvery)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				log.Info("suite progress", p.progress.Snapshot().LogArgs()...)
			}
		}
	}()
	return func() { close(stop); <-done }
}

// Package gputopdown is a Top-Down performance-profiling toolkit for NVIDIA
// GPUs, reproducing "Top-Down Performance Profiling on NVIDIA's GPUs"
// (Saiz et al., IPDPS Workshops 2022) on a built-in cycle-level GPU
// simulator.
//
// The package glues the full stack together the way the paper's tool does:
//
//	PMU counters -> multi-pass replay (CUPTI) -> nvprof/ncu metrics ->
//	Top-Down hierarchy (Retire / Divergence / Frontend / Backend)
//
// Typical use:
//
//	p := gputopdown.NewProfiler(gputopdown.QuadroRTX4000(),
//	        gputopdown.WithLevel(3))
//	app, _ := gputopdown.LookupApp("rodinia", "srad_v2")
//	res, _ := p.ProfileApp(app)
//	fmt.Print(res.Aggregate)
//
// Devices are simulated (see DESIGN.md for the substitution argument), so
// results are bit-reproducible and need no GPU hardware.
package gputopdown

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"gputopdown/internal/core"
	"gputopdown/internal/cupti"
	"gputopdown/internal/gpu"
	"gputopdown/internal/kernel"
	"gputopdown/internal/obs"
	"gputopdown/internal/pmu"
	"gputopdown/internal/sim"
	"gputopdown/internal/workloads"
)

// Re-exported device models (paper Table IX).
var (
	// GTX1070 returns the Pascal (CC 6.1) evaluation GPU.
	GTX1070 = gpu.GTX1070
	// QuadroRTX4000 returns the Turing (CC 7.5) evaluation GPU.
	QuadroRTX4000 = gpu.QuadroRTX4000
)

// GPUSpec is a device model.
type GPUSpec = gpu.Spec

// Analysis is a Top-Down result (IPC components; see internal/core).
type Analysis = core.Analysis

// App is a benchmark application.
type App = workloads.App

// LookupGPU resolves a short device id ("gtx1070", "rtx4000").
func LookupGPU(id string) (*GPUSpec, bool) { return gpu.Lookup(id) }

// LookupApp resolves an app by suite and name ("rodinia", "bfs").
func LookupApp(suite, name string) (*App, bool) { return workloads.Lookup(suite, name) }

// Suites lists the available benchmark suites.
func Suites() []string { return workloads.Suites() }

// SuiteApps lists a suite's applications.
func SuiteApps(suite string) []*App { return workloads.BySuite(suite) }

// SradDynamic returns the 100-invocation SRAD application used for the
// paper's per-invocation dynamic analysis (Figs. 11 and 12).
func SradDynamic() *App { return workloads.SradDynamic() }

// Option configures a Profiler.
type Option func(*Profiler)

// WithLevel sets the Top-Down analysis depth (1..3; level 3 requires a
// CC >= 7.2 device and is capped otherwise).
func WithLevel(level int) Option { return func(p *Profiler) { p.level = level } }

// WithRawEquations disables the figure-style normalisation and follows the
// paper's equations (8)-(14) literally, leaving a residual in unlisted
// warp states.
func WithRawEquations() Option { return func(p *Profiler) { p.normalize = false } }

// WithHWPM switches counter collection to the HWPM mechanism (single-SM
// sampling) instead of SMPC (paper §II.A).
func WithHWPM() Option { return func(p *Profiler) { p.mode = cupti.ModeHWPM } }

// WithMemBytes sets the simulated device-memory size.
func WithMemBytes(n int) Option { return func(p *Profiler) { p.memBytes = n } }

// WithSampling profiles only every n-th invocation of each kernel, running
// the rest natively with the most recent sampled values — the paper's §VII
// mitigation for applications whose kernel counts make full replay
// impractical.
func WithSampling(n int) Option { return func(p *Profiler) { p.sampleEvery = n } }

// WithRoofline additionally collects the counters for an instruction-
// roofline placement (the complement analysis of the paper's related work
// [26]) and attaches it to each AppResult.
func WithRoofline() Option { return func(p *Profiler) { p.roofline = true } }

// Tracer is the execution tracer (Chrome trace-event JSON export); see
// internal/obs. Create one with NewTracer.
type Tracer = obs.Tracer

// MetricsRegistry is the profiler self-metrics registry (Prometheus text
// exposition); see internal/obs. Create one with NewMetricsRegistry.
type MetricsRegistry = obs.Registry

// NewTracer builds an execution tracer whose wall clock starts now.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WithObserver attaches an execution tracer and/or a metrics registry to the
// profiler: every profiling session, replay pass, cache flush, kernel launch
// and Top-Down analysis becomes a span, and the profiler self-metrics
// (passes, flush cycles, simulated cycles, wall time, replay overhead ratio,
// sim throughput) are maintained live. Either argument may be nil. The cost
// when no observer is attached is near zero.
func WithObserver(tr *Tracer, reg *MetricsRegistry) Option {
	return func(p *Profiler) {
		p.tracer = tr
		p.metrics = reg
	}
}

// Profiler runs applications under Top-Down profiling on one GPU model.
type Profiler struct {
	spec        *gpu.Spec
	level       int
	normalize   bool
	mode        cupti.Mode
	memBytes    int
	sampleEvery int
	roofline    bool
	tracer      *obs.Tracer
	metrics     *obs.Registry
}

// NewProfiler builds a profiler for a device model. The default is a
// normalised level-3 analysis with SMPC collection.
func NewProfiler(spec *gpu.Spec, opts ...Option) *Profiler {
	p := &Profiler{
		spec:      spec,
		level:     core.Level3,
		normalize: true,
		mode:      cupti.ModeSMPC,
		memBytes:  sim.DefaultMemBytes,
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Spec returns the profiler's device model.
func (p *Profiler) Spec() *gpu.Spec { return p.spec }

// Level returns the configured analysis level after device capping.
func (p *Profiler) Level() int {
	return core.NewAnalyzer(p.spec, p.level).Level
}

// KernelResult is the Top-Down analysis of one kernel invocation.
type KernelResult struct {
	Kernel     string
	Invocation int
	// Cycles is the kernel's native duration on the device.
	Cycles uint64
	// Analysis is the per-invocation Top-Down breakdown.
	Analysis *core.Analysis
}

// AppResult is the profile of one application.
type AppResult struct {
	App   string
	Suite string
	GPU   string
	// Kernels holds every kernel invocation in execution order.
	Kernels []KernelResult
	// Aggregate is the duration-weighted application-level analysis
	// (paper §V.D).
	Aggregate *core.Analysis
	// Passes is the replays per kernel the counter set required.
	Passes int
	// NativeCycles and ProfiledCycles are the totals behind the paper's
	// Fig. 13 overhead ratio.
	NativeCycles   uint64
	ProfiledCycles uint64
	// WallSeconds is the host wall-clock time the profiled run took.
	WallSeconds float64
	// Roofline is the app-level instruction-roofline placement, present
	// when the profiler was built WithRoofline.
	Roofline *core.Roofline
}

// Overhead returns ProfiledCycles/NativeCycles.
func (r *AppResult) Overhead() float64 {
	if r.NativeCycles == 0 {
		return 0
	}
	return float64(r.ProfiledCycles) / float64(r.NativeCycles)
}

// Series returns the per-invocation analyses of one kernel, in invocation
// order — the paper's dynamic analysis (Figs. 11 and 12).
func (r *AppResult) Series(kernelName string) []*core.Analysis {
	var out []*core.Analysis
	for _, k := range r.Kernels {
		if k.Kernel == kernelName {
			out = append(out, k.Analysis)
		}
	}
	return out
}

// KernelNames returns the distinct kernel names in first-seen order.
func (r *AppResult) KernelNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, k := range r.Kernels {
		if !seen[k.Kernel] {
			seen[k.Kernel] = true
			names = append(names, k.Kernel)
		}
	}
	return names
}

// ProfileApp runs one application on a fresh simulated device under the
// profiler and returns its Top-Down results.
func (p *Profiler) ProfileApp(app *workloads.App) (*AppResult, error) {
	dev := sim.NewDeviceMem(p.spec, p.memBytes)
	return p.profileOn(dev, app)
}

func (p *Profiler) profileOn(dev *sim.Device, app *workloads.App) (*AppResult, error) {
	analyzer := core.NewAnalyzer(p.spec, p.level)
	analyzer.Normalize = p.normalize
	request, err := analyzer.CounterRequest()
	if err != nil {
		return nil, err
	}
	if p.roofline {
		request = append(request, core.RooflineRequest()...)
	}
	sess, err := cupti.NewSession(dev, request, p.mode)
	if err != nil {
		return nil, err
	}
	if p.sampleEvery > 1 {
		sess.SetSampling(p.sampleEvery)
	}
	obsOn := p.tracer != nil || p.metrics != nil
	if obsOn {
		sess.SetObserver(p.tracer, p.metrics)
		analyzer.SetObserver(p.tracer, p.metrics)
	}
	sessStart := p.tracer.Now()
	wallStart := time.Now()
	res := &AppResult{App: app.Name, Suite: app.Suite, GPU: p.spec.Name, Passes: sess.NumPasses()}
	err = app.Execute(dev, func(l *kernel.Launch) error {
		rec, err := sess.Profile(l)
		if err != nil {
			return err
		}
		a := analyzer.Analyze(rec.Kernel, rec.Values)
		a.Weight = float64(rec.Cycles)
		res.Kernels = append(res.Kernels, KernelResult{
			Kernel:     rec.Kernel,
			Invocation: rec.Invocation,
			Cycles:     rec.Cycles,
			Analysis:   a,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(res.Kernels) == 0 {
		return nil, fmt.Errorf("gputopdown: %s launched no kernels", app.ID())
	}
	analyses := make([]*core.Analysis, len(res.Kernels))
	for i := range res.Kernels {
		analyses[i] = res.Kernels[i].Analysis
	}
	res.Aggregate = core.Aggregate(app.Name, analyses)
	res.NativeCycles, res.ProfiledCycles = sess.Overhead()
	res.WallSeconds = time.Since(wallStart).Seconds()
	if obsOn {
		if p.tracer != nil {
			p.tracer.Complete(obs.PIDProfiler, 1, "session", "profile "+app.ID(),
				sessStart, map[string]any{
					"gpu": p.spec.Name, "kernels": len(res.Kernels),
					"passes_per_kernel": res.Passes, "overhead": res.Overhead(),
				})
		}
		p.metrics.Gauge("profiler_replay_overhead_ratio",
			"Live profiled/native simulated-cycle ratio (the paper's Fig. 13).",
			obs.Labels{"app": app.ID(), "gpu": p.spec.Name}).Set(res.Overhead())
	}
	if p.roofline {
		total := pmu.Values{}
		for _, rec := range sess.Records() {
			for _, id := range core.RooflineRequest() {
				total[id] += rec.Values[id]
			}
		}
		res.Roofline = core.ComputeRoofline(p.spec, total)
	}
	return res, nil
}

// TimelinePoint is one interval of an intra-kernel timeline.
type TimelinePoint = core.TimelinePoint

// Timeline records an intra-kernel Top-Down timeline: the app runs natively
// with per-interval counter sampling enabled, and the invocation of
// kernelName selected by invocation (0-based) is analysed interval by
// interval. This extends the paper's §V.D dynamic analysis below kernel
// granularity (a simulator-side capability; see internal/core.AnalyzeTimeline).
func (p *Profiler) Timeline(app *workloads.App, kernelName string, invocation int, interval uint64) ([]TimelinePoint, error) {
	if interval == 0 {
		return nil, fmt.Errorf("gputopdown: zero timeline interval")
	}
	dev := sim.NewDeviceMem(p.spec, p.memBytes)
	dev.EnableTrace(interval)
	analyzer := core.NewAnalyzer(p.spec, p.level)
	analyzer.Normalize = p.normalize
	if p.tracer != nil || p.metrics != nil {
		dev.SetObserver(p.tracer, p.metrics)
		analyzer.SetObserver(p.tracer, p.metrics)
	}
	var points []TimelinePoint
	seen := 0
	err := app.Execute(dev, func(l *kernel.Launch) error {
		res, err := dev.Launch(l)
		if err != nil {
			return err
		}
		if l.Program.Name == kernelName {
			if seen == invocation {
				points = analyzer.AnalyzeTimeline(kernelName, res.Trace, interval)
			}
			seen++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if seen == 0 {
		return nil, fmt.Errorf("gputopdown: %s never launched kernel %q", app.ID(), kernelName)
	}
	if points == nil {
		return nil, fmt.Errorf("gputopdown: kernel %q has only %d invocations", kernelName, seen)
	}
	return points, nil
}

// RunNative executes an application without profiling and returns its total
// device cycles — the Fig. 13 baseline.
func (p *Profiler) RunNative(app *workloads.App) (uint64, error) {
	dev := sim.NewDeviceMem(p.spec, p.memBytes)
	var total uint64
	err := app.Execute(dev, func(l *kernel.Launch) error {
		res, err := dev.Launch(l)
		if err != nil {
			return err
		}
		total += res.Cycles
		return nil
	})
	return total, err
}

// ProfileSuite profiles every app of a suite, each on its own fresh device,
// fanning the independent apps across CPU cores. Results keep suite order;
// the first error aborts.
func (p *Profiler) ProfileSuite(suite string) ([]*AppResult, error) {
	apps := workloads.BySuite(suite)
	if len(apps) == 0 {
		return nil, fmt.Errorf("gputopdown: unknown suite %q", suite)
	}
	return p.ProfileApps(apps)
}

// ProfileApps profiles a list of apps concurrently (one fresh device each).
func (p *Profiler) ProfileApps(apps []*workloads.App) ([]*AppResult, error) {
	results := make([]*AppResult, len(apps))
	errs := make([]error, len(apps))
	workers := runtime.NumCPU()
	if workers > len(apps) {
		workers = len(apps)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = p.ProfileApp(apps[i])
			}
		}()
	}
	for i := range apps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("gputopdown: %s: %w", apps[i].ID(), err)
		}
	}
	return results, nil
}

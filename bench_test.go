package gputopdown

// One benchmark per table and figure of the paper's evaluation (§V). Each
// benchmark regenerates its artefact on a downscaled device (full-fidelity
// regeneration is cmd/figures) and reports the figure's headline quantities
// as custom metrics, so `go test -bench=.` both exercises and summarises the
// reproduction. Ablation benchmarks at the bottom quantify the design
// choices DESIGN.md calls out (scheduler policy, collection mode,
// normalisation, replay cost).

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

const benchSMs = 2

// Suite profiles are memoised across benchmarks (figures 5-10 and 13 share
// suite runs, as cmd/figures does), so ns/op measures the first
// regeneration and later figures report their shape metrics from the cache.
var (
	suiteCacheMu sync.Mutex
	suiteCache   = map[string][]*AppResult{}
)

func benchProfiler(b *testing.B, gpuID string, level int, opts ...Option) *Profiler {
	b.Helper()
	spec, ok := LookupGPU(gpuID)
	if !ok {
		b.Fatalf("unknown gpu %s", gpuID)
	}
	return NewProfiler(spec.WithSMs(benchSMs), append([]Option{WithLevel(level)}, opts...)...)
}

func mustProfile(b *testing.B, p *Profiler, suite, name string) *AppResult {
	b.Helper()
	app, ok := LookupApp(suite, name)
	if !ok {
		b.Fatalf("unknown app %s/%s", suite, name)
	}
	res, err := p.ProfileApp(context.Background(), app)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func mustSuite(b *testing.B, p *Profiler, suite string) []*AppResult {
	b.Helper()
	key := fmt.Sprintf("%s/%s/L%d", p.Spec().Name, suite, p.Level())
	suiteCacheMu.Lock()
	cached, ok := suiteCache[key]
	suiteCacheMu.Unlock()
	if ok {
		return cached
	}
	res, err := p.ProfileSuite(context.Background(), suite)
	if err != nil {
		b.Fatal(err)
	}
	suiteCacheMu.Lock()
	suiteCache[key] = res
	suiteCacheMu.Unlock()
	return res
}

func suiteAverages(results []*AppResult) (retire, divergence, frontend, backend, memShare, ovh float64) {
	n := float64(len(results))
	for _, r := range results {
		a := r.Aggregate
		retire += a.Fraction(a.Retire) / n
		divergence += a.Fraction(a.Divergence) / n
		frontend += a.Fraction(a.Frontend) / n
		backend += a.Fraction(a.Backend) / n
		if deg := a.Degradation(); deg > 0 {
			memShare += a.Memory / deg / n
		}
		ovh += r.Overhead() / n
	}
	return
}

// BenchmarkTable9GPUCharacteristics checks the two device models against the
// paper's Table IX (the data itself is asserted in internal/gpu tests).
func BenchmarkTable9GPUCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, _ := LookupGPU("gtx1070")
		q, _ := LookupGPU("rtx4000")
		if g.SMs != 15 || q.SMs != 36 {
			b.Fatal("Table IX drifted")
		}
	}
	b.ReportMetric(4, "gtx1070_ipcmax")
	b.ReportMetric(2, "rtx4000_ipcmax")
}

// BenchmarkFig4BinaryPartitionCG regenerates the tile-size sweep. Shape:
// retire and divergence fall, backend/memory grows as tiles shrink.
func BenchmarkFig4BinaryPartitionCG(b *testing.B) {
	p := benchProfiler(b, "rtx4000", 2)
	var first, last *Analysis
	for i := 0; i < b.N; i++ {
		results := mustSuite(b, p, "cudasamples")
		first, last = results[0].Aggregate, results[len(results)-1].Aggregate
	}
	b.ReportMetric(100*first.Fraction(first.Retire), "tile32_retire_pct")
	b.ReportMetric(100*last.Fraction(last.Retire), "tile4_retire_pct")
	b.ReportMetric(100*first.Fraction(first.Memory), "tile32_memory_pct")
	b.ReportMetric(100*last.Fraction(last.Memory), "tile4_memory_pct")
	if last.Fraction(last.Retire) >= first.Fraction(first.Retire) {
		b.Error("fig4 shape: retire should fall as tiles shrink")
	}
	if last.Fraction(last.Memory) <= first.Fraction(first.Memory) {
		b.Error("fig4 shape: memory should grow as tiles shrink")
	}
}

// BenchmarkFig5RodiniaLevel1 regenerates Rodinia level 1 on both GPUs.
// Shape: Pascal frontend ~20%, Turing <10%, Turing backend larger.
func BenchmarkFig5RodiniaLevel1(b *testing.B) {
	var feP, feT, beP, beT float64
	for i := 0; i < b.N; i++ {
		pas := mustSuite(b, benchProfiler(b, "gtx1070", 2), "rodinia")
		tur := mustSuite(b, benchProfiler(b, "rtx4000", 3), "rodinia")
		_, _, feP, beP, _, _ = suiteAverages(pas)
		_, _, feT, beT, _, _ = suiteAverages(tur)
	}
	b.ReportMetric(100*feP, "pascal_frontend_pct")
	b.ReportMetric(100*feT, "turing_frontend_pct")
	b.ReportMetric(100*beP, "pascal_backend_pct")
	b.ReportMetric(100*beT, "turing_backend_pct")
	if feP <= feT {
		b.Error("fig5 shape: Pascal frontend share should exceed Turing's")
	}
	if beT <= beP {
		b.Error("fig5 shape: Turing backend share should exceed Pascal's")
	}
}

// BenchmarkFig6RodiniaLevel2 regenerates the level-2 Rodinia breakdown.
// Shape: memory dominates total IPC degradation (~70% in the paper).
func BenchmarkFig6RodiniaLevel2(b *testing.B) {
	var memShare float64
	for i := 0; i < b.N; i++ {
		res := mustSuite(b, benchProfiler(b, "rtx4000", 3), "rodinia")
		_, _, _, _, memShare, _ = suiteAverages(res)
	}
	b.ReportMetric(100*memShare, "memory_share_of_degradation_pct")
	if memShare < 0.4 {
		b.Errorf("fig6 shape: memory share %.2f below expectation", memShare)
	}
}

// BenchmarkFig7RodiniaLevel3 regenerates the level-3 memory breakdown.
// Shape: L1 (long scoreboard) dominant on average; myocyte and nn spike on
// the constant cache.
func BenchmarkFig7RodiniaLevel3(b *testing.B) {
	var l1, constShare, myocyteConst float64
	for i := 0; i < b.N; i++ {
		res := mustSuite(b, benchProfiler(b, "rtx4000", 3), "rodinia")
		l1, constShare, myocyteConst = 0, 0, 0
		for _, r := range res {
			a := r.Aggregate
			deg := a.Degradation()
			if deg <= 0 || a.MemoryDetail == nil {
				continue
			}
			l1 += a.MemoryDetail["long_scoreboard"] / deg / float64(len(res))
			constShare += a.MemoryDetail["imc_miss"] / deg / float64(len(res))
			if r.App == "myocyte" {
				myocyteConst = a.MemoryDetail["imc_miss"] / deg
			}
		}
	}
	b.ReportMetric(100*l1, "l1_share_pct")
	b.ReportMetric(100*constShare, "constant_share_pct")
	b.ReportMetric(100*myocyteConst, "myocyte_constant_pct")
	if l1 <= constShare {
		b.Error("fig7 shape: L1 should dominate the constant cache suite-wide")
	}
	if myocyteConst < 0.25 {
		b.Errorf("fig7 shape: myocyte constant share %.2f too low", myocyteConst)
	}
}

// BenchmarkFig8AltisLevel1 regenerates Altis level 1. Shape: backend
// dominant, frontend second, mandelbrot the retire leader (~70%).
func BenchmarkFig8AltisLevel1(b *testing.B) {
	var be, fe, div, mandel float64
	for i := 0; i < b.N; i++ {
		res := mustSuite(b, benchProfiler(b, "rtx4000", 3), "altis")
		_, div, fe, be, _, _ = suiteAverages(res)
		for _, r := range res {
			if r.App == "mandelbrot" {
				mandel = r.Aggregate.Fraction(r.Aggregate.Retire)
			}
		}
	}
	b.ReportMetric(100*be, "backend_pct")
	b.ReportMetric(100*fe, "frontend_pct")
	b.ReportMetric(100*div, "divergence_pct")
	b.ReportMetric(100*mandel, "mandelbrot_retire_pct")
	if be <= fe || be <= div {
		b.Error("fig8 shape: backend should dominate")
	}
}

// BenchmarkFig9AltisLevel2: memory ~70% of degradation, as in Rodinia.
func BenchmarkFig9AltisLevel2(b *testing.B) {
	var memShare float64
	for i := 0; i < b.N; i++ {
		res := mustSuite(b, benchProfiler(b, "rtx4000", 3), "altis")
		_, _, _, _, memShare, _ = suiteAverages(res)
	}
	b.ReportMetric(100*memShare, "memory_share_of_degradation_pct")
	if memShare < 0.4 {
		b.Errorf("fig9 shape: memory share %.2f below expectation", memShare)
	}
}

// BenchmarkFig10AltisLevel3: the constant cache becomes the top level-3
// contributor, driven by the ML apps (cnn, lstm).
func BenchmarkFig10AltisLevel3(b *testing.B) {
	var cnnConst, lstmConst, avgConst float64
	for i := 0; i < b.N; i++ {
		res := mustSuite(b, benchProfiler(b, "rtx4000", 3), "altis")
		cnnConst, lstmConst, avgConst = 0, 0, 0
		for _, r := range res {
			a := r.Aggregate
			deg := a.Degradation()
			if deg <= 0 || a.MemoryDetail == nil {
				continue
			}
			c := a.MemoryDetail["imc_miss"] / deg
			avgConst += c / float64(len(res))
			switch r.App {
			case "cnn":
				cnnConst = c
			case "lstm":
				lstmConst = c
			}
		}
	}
	b.ReportMetric(100*avgConst, "constant_share_pct")
	b.ReportMetric(100*cnnConst, "cnn_constant_pct")
	b.ReportMetric(100*lstmConst, "lstm_constant_pct")
	if cnnConst < 0.25 || lstmConst < 0.25 {
		b.Error("fig10 shape: ML apps should be constant-cache bound")
	}
}

func dynamicContrast(b *testing.B, kernelName string) (early, late float64, cyclesEarly, cyclesLate float64) {
	p := benchProfiler(b, "rtx4000", 1)
	res, err := p.ProfileApp(context.Background(), SradDynamic())
	if err != nil {
		b.Fatal(err)
	}
	s := res.Series(kernelName)
	q := len(s) / 4
	for _, a := range s[:q] {
		early += a.Fraction(a.Retire) / float64(q)
		cyclesEarly += a.Weight / float64(q)
	}
	for _, a := range s[len(s)-q:] {
		late += a.Fraction(a.Retire) / float64(q)
		cyclesLate += a.Weight / float64(q)
	}
	return
}

// BenchmarkFig11SradCuda1Dynamic: two phases across the 100 invocations.
func BenchmarkFig11SradCuda1Dynamic(b *testing.B) {
	var early, late, ce, cl float64
	for i := 0; i < b.N; i++ {
		early, late, ce, cl = dynamicContrast(b, "srad_cuda_1")
	}
	b.ReportMetric(100*early, "phase1_retire_pct")
	b.ReportMetric(100*late, "phase2_retire_pct")
	b.ReportMetric(ce/cl, "phase1_to_phase2_cycles_ratio")
	if ce <= cl {
		b.Error("fig11 shape: phase 1 should be the heavy phase")
	}
}

// BenchmarkFig12SradCuda2Dynamic: same for the second kernel.
func BenchmarkFig12SradCuda2Dynamic(b *testing.B) {
	var early, late, ce, cl float64
	for i := 0; i < b.N; i++ {
		early, late, ce, cl = dynamicContrast(b, "srad_cuda_2")
	}
	b.ReportMetric(100*early, "phase1_retire_pct")
	b.ReportMetric(100*late, "phase2_retire_pct")
	b.ReportMetric(ce/cl, "phase1_to_phase2_cycles_ratio")
	if ce <= cl {
		b.Error("fig12 shape: phase 1 should be the heavy phase")
	}
}

// BenchmarkFig13Overhead: level-3 profiling costs ~13x native on average
// with 8 replay passes per kernel (paper §V.E). A representative subset
// keeps the benchmark affordable; cmd/figures runs the full suites.
func BenchmarkFig13Overhead(b *testing.B) {
	apps := []string{"hotspot", "gaussian", "nw", "myocyte", "streamcluster", "srad_v1"}
	p := benchProfiler(b, "rtx4000", 3)
	var avg float64
	var passes int
	for i := 0; i < b.N; i++ {
		avg = 0
		for _, n := range apps {
			res := mustProfile(b, p, "rodinia", n)
			avg += res.Overhead() / float64(len(apps))
			passes = res.Passes
		}
	}
	b.ReportMetric(avg, "overhead_x")
	b.ReportMetric(float64(passes), "passes")
	if passes != 8 {
		b.Errorf("fig13: %d passes, want 8", passes)
	}
	if avg < 8 || avg > 30 {
		b.Errorf("fig13 shape: overhead %.1fx outside plausible band", avg)
	}
}

// ---- Ablations (design choices called out in DESIGN.md) ----

// BenchmarkAblationSchedulerPolicy compares greedy-then-oldest against
// loose round-robin warp scheduling.
func BenchmarkAblationSchedulerPolicy(b *testing.B) {
	run := func(policy string) uint64 {
		spec, _ := LookupGPU("rtx4000")
		spec = spec.WithSMs(benchSMs)
		spec.SchedulingPolicy = policy
		p := NewProfiler(spec, WithLevel(1))
		app, _ := LookupApp("rodinia", "hotspot")
		res, err := p.ProfileApp(context.Background(), app)
		if err != nil {
			b.Fatal(err)
		}
		return res.NativeCycles
	}
	var gto, lrr uint64
	for i := 0; i < b.N; i++ {
		gto = run("gto")
		lrr = run("lrr")
	}
	b.ReportMetric(float64(gto), "gto_cycles")
	b.ReportMetric(float64(lrr), "lrr_cycles")
}

// BenchmarkAblationCollectionMode compares SMPC full collection against
// HWPM single-SM sampling.
func BenchmarkAblationCollectionMode(b *testing.B) {
	var smpc, hwpm float64
	for i := 0; i < b.N; i++ {
		smpc = mustProfile(b, benchProfiler(b, "rtx4000", 1), "rodinia", "hotspot").Aggregate.Retire
		hwpm = mustProfile(b, benchProfiler(b, "rtx4000", 1, WithHWPM()), "rodinia", "hotspot").Aggregate.Retire
	}
	b.ReportMetric(smpc, "smpc_retire_ipc")
	b.ReportMetric(hwpm, "hwpm_retire_ipc")
}

// BenchmarkAblationNormalisation compares the normalised stack against the
// paper's raw equations (8)-(14), whose components leave a residual.
func BenchmarkAblationNormalisation(b *testing.B) {
	var normClose, rawClose float64
	for i := 0; i < b.N; i++ {
		n := mustProfile(b, benchProfiler(b, "rtx4000", 2), "rodinia", "hotspot").Aggregate
		r := mustProfile(b, benchProfiler(b, "rtx4000", 2, WithRawEquations()), "rodinia", "hotspot").Aggregate
		normClose = (n.Retire + n.Divergence + n.Frontend + n.Backend) / n.IPCMax
		rawClose = (r.Retire + r.Divergence + r.Frontend + r.Backend) / r.IPCMax
	}
	b.ReportMetric(100*normClose, "normalised_stack_pct")
	b.ReportMetric(100*rawClose, "raw_stack_pct")
}

// BenchmarkAblationPassCount quantifies how the analysis level drives the
// replay cost: level 1 is single-pass, level 3 needs 8.
func BenchmarkAblationPassCount(b *testing.B) {
	var p1, p3, o1, o3 float64
	for i := 0; i < b.N; i++ {
		r1 := mustProfile(b, benchProfiler(b, "rtx4000", 1), "rodinia", "nw")
		r3 := mustProfile(b, benchProfiler(b, "rtx4000", 3), "rodinia", "nw")
		p1, p3 = float64(r1.Passes), float64(r3.Passes)
		o1, o3 = r1.Overhead(), r3.Overhead()
	}
	b.ReportMetric(p1, "level1_passes")
	b.ReportMetric(p3, "level3_passes")
	b.ReportMetric(o1, "level1_overhead_x")
	b.ReportMetric(o3, "level3_overhead_x")
}

// ---- Concurrent replay engine ----

// benchReplayEngine profiles the autotune workload — 20 byte-identical GEMM
// invocations x 8 scheduled passes at level 3, the multi-pass
// multi-invocation pattern a CUPTI-attached profiler sees under a real
// autotuning harness — under the given engine options and reports the
// wall-clock and the (engine-independent, bit-identical) overhead
// accounting.
func benchReplayEngine(b *testing.B, opts ...Option) {
	var res *AppResult
	for i := 0; i < b.N; i++ {
		p := benchProfiler(b, "rtx4000", 3, opts...)
		var err error
		res, err = p.ProfileApp(context.Background(), GemmAutotune())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Overhead(), "overhead_x")
	b.ReportMetric(float64(res.Passes), "passes")
}

// BenchmarkReplaySequential is the historical engine: one device, passes in
// order, every invocation fully re-simulated.
func BenchmarkReplaySequential(b *testing.B) {
	benchReplayEngine(b)
}

// BenchmarkReplayConcurrent fans each kernel's 8 passes across one cloned
// device per CPU core (no result cache).
func BenchmarkReplayConcurrent(b *testing.B) {
	benchReplayEngine(b, WithReplayWorkers(0))
}

// BenchmarkReplayConcurrentCached adds the deterministic result cache: from
// the second repetition on the autotune launches are byte-identical and skip
// simulation entirely. Reported results stay bit-identical to the sequential
// engine (TestDeterminismAcrossReplayEngines); only wall-clock changes.
func BenchmarkReplayConcurrentCached(b *testing.B) {
	benchReplayEngine(b, WithReplayWorkers(0), WithReplayCache(true))
}

// BenchmarkSimulatorThroughput measures raw simulation speed in simulated
// cycles per second of wall time.
func BenchmarkSimulatorThroughput(b *testing.B) {
	p := benchProfiler(b, "rtx4000", 1)
	app, _ := LookupApp("rodinia", "hotspot")
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := p.RunNative(app)
		if err != nil {
			b.Fatal(err)
		}
		cycles += c
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim_cycles/s")
}

package gputopdown

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gputopdown/internal/check"
)

// goldenDir is the committed corpus root: one canonical report per suite app
// per evaluation GPU, regenerated with `make golden` (cmd/goldengen).
const goldenDir = "internal/check/testdata/golden"

// goldenGPUs is the corpus device axis (must match cmd/goldengen).
var goldenGPUs = []string{"gtx1070", "rtx4000"}

// goldenSample is the subset TestGoldenReports re-profiles on every `go test`
// run: one app per suite spanning both metric paths, cheap enough for tier-1.
// Set GOLDEN_FULL=1 (the CI golden job does) to re-profile the whole corpus.
var goldenSample = map[string][]string{
	"gtx1070": {"rodinia/bfs", "shoc/triad"},
	"rtx4000": {"altis/gups", "cudasamples/binaryPartitionCG_tile8"},
}

func goldenPath(gpuID, suite, app string) string {
	return filepath.Join(goldenDir, gpuID, suite+"__"+app+".json")
}

// goldenProfile profiles one app at the corpus configuration (library
// defaults; must match cmd/goldengen.goldenFor) and returns canonical bytes.
func goldenProfile(t *testing.T, gpuID, suite, app string) []byte {
	t.Helper()
	spec, ok := LookupGPU(gpuID)
	if !ok {
		t.Fatalf("unknown gpu %q", gpuID)
	}
	a, err := GetApp(suite, app)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewProfiler(spec).ProfileApp(context.Background(), a)
	if err != nil {
		t.Fatalf("%s/%s on %s: %v", suite, app, gpuID, err)
	}
	data, err := check.ReportJSON(res.Report())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGoldenCorpusComplete checks corpus shape without profiling: every suite
// app of both GPUs has a committed golden file, and no stale file outlives
// its app. Catches forgotten `make golden` after adding or renaming apps.
func TestGoldenCorpusComplete(t *testing.T) {
	want := map[string]bool{}
	for _, g := range goldenGPUs {
		for _, s := range Suites() {
			for _, a := range SuiteApps(s) {
				p := goldenPath(g, s, a.Name)
				want[p] = true
				if _, err := os.Stat(p); err != nil {
					t.Errorf("missing golden %s (run `make golden`)", p)
				}
			}
		}
	}
	for _, g := range goldenGPUs {
		entries, err := os.ReadDir(filepath.Join(goldenDir, g))
		if err != nil {
			t.Fatalf("corpus directory missing: %v", err)
		}
		for _, e := range entries {
			p := filepath.Join(goldenDir, g, e.Name())
			if !want[p] {
				t.Errorf("stale golden %s: no such suite app (run `make golden` and delete it)", p)
			}
		}
	}
}

// TestGoldenReports is the end-to-end regression gate: re-profile and demand
// byte-identity with the committed corpus, reporting a per-node diff on
// mismatch. Samples goldenSample by default; GOLDEN_FULL=1 sweeps all apps.
func TestGoldenReports(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling gate skipped in -short mode")
	}
	full := os.Getenv("GOLDEN_FULL") != ""
	for _, g := range goldenGPUs {
		var ids []string
		if full {
			for _, s := range Suites() {
				for _, a := range SuiteApps(s) {
					ids = append(ids, s+"/"+a.Name)
				}
			}
		} else {
			ids = goldenSample[g]
		}
		for _, id := range ids {
			g, id := g, id
			t.Run(g+"/"+strings.ReplaceAll(id, "/", "__"), func(t *testing.T) {
				suite, app, _ := strings.Cut(id, "/")
				want, err := os.ReadFile(goldenPath(g, suite, app))
				if err != nil {
					t.Fatalf("missing golden (run `make golden`): %v", err)
				}
				got := goldenProfile(t, g, suite, app)
				if d := check.DiffJSON(want, got); d != "" {
					t.Errorf("report diverged from golden %s:\n%s\n(if intentional, run `make golden` and review the diff)",
						goldenPath(g, suite, app), d)
				}
			})
		}
	}
}

// TestCanonicalReportRoundTrip pins the Canonical option: wall-clock is the
// only field it touches, conversion is repeatable, and the original result is
// left intact.
func TestCanonicalReportRoundTrip(t *testing.T) {
	p := testProfiler(2)
	app, err := GetApp("rodinia", "bfs")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	res.WallSeconds = 1.5 // force a nonzero wall time
	plain := res.Report()
	canon := res.Report(Canonical())
	if plain.WallSeconds != 1.5 {
		t.Errorf("plain report wall_seconds = %v, want 1.5", plain.WallSeconds)
	}
	if canon.WallSeconds != 0 {
		t.Errorf("canonical report wall_seconds = %v, want 0", canon.WallSeconds)
	}
	if res.WallSeconds != 1.5 {
		t.Error("Report(Canonical()) mutated the result")
	}
	// Everything except wall time must be identical, and canonical bytes must
	// be stable across repeated conversions of the same result.
	b1, err := check.ReportJSON(plain)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := check.ReportJSON(canon)
	if err != nil {
		t.Fatal(err)
	}
	if d := check.DiffJSON(b1, b2); d != "" {
		t.Errorf("canonical form differs beyond wall_seconds:\n%s", d)
	}
	a1, err := res.Aggregate.JSON()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := res.Aggregate.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a1) != string(a2) {
		t.Error("Analysis.JSON not stable across calls")
	}
}

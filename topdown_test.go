package gputopdown

import (
	"context"
	"math"
	"testing"
)

func testProfiler(level int, opts ...Option) *Profiler {
	spec := QuadroRTX4000().WithSMs(4)
	return NewProfiler(spec, append([]Option{WithLevel(level)}, opts...)...)
}

func TestLookupHelpers(t *testing.T) {
	if _, ok := LookupGPU("gtx1070"); !ok {
		t.Error("gtx1070 missing")
	}
	if _, ok := LookupGPU("bogus"); ok {
		t.Error("bogus GPU found")
	}
	if _, ok := LookupApp("rodinia", "hotspot"); !ok {
		t.Error("rodinia/hotspot missing")
	}
	if len(Suites()) != 4 {
		t.Errorf("suites = %v", Suites())
	}
	for _, s := range Suites() {
		if len(SuiteApps(s)) == 0 {
			t.Errorf("suite %s empty", s)
		}
	}
}

func TestProfileAppLevel1(t *testing.T) {
	p := testProfiler(1)
	app, _ := LookupApp("rodinia", "hotspot")
	res, err := p.ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 1 {
		t.Errorf("level-1 profile used %d passes, want 1", res.Passes)
	}
	if len(res.Kernels) == 0 || res.Aggregate == nil {
		t.Fatal("empty result")
	}
	a := res.Aggregate
	if a.Retire <= 0 || a.Retire > a.IPCMax {
		t.Errorf("retire = %g", a.Retire)
	}
	// Level-1 closure: retire + divergence + stall == IPC_MAX.
	if got := a.Retire + a.Divergence + a.Stall; math.Abs(got-a.IPCMax) > 1e-6 {
		t.Errorf("level-1 closure: %g != %g", got, a.IPCMax)
	}
}

func TestProfileAppLevel3(t *testing.T) {
	p := testProfiler(3)
	app, _ := LookupApp("rodinia", "myocyte")
	res, err := p.ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 8 {
		t.Errorf("level-3 profile used %d passes, want 8 (paper §V.E)", res.Passes)
	}
	a := res.Aggregate
	if a.MemoryDetail == nil {
		t.Fatal("level-3 analysis missing memory detail")
	}
	// myocyte's signature: the constant cache dominates its memory stalls
	// (paper Fig. 7).
	if a.MemoryDetail["imc_miss"] < a.MemoryDetail["long_scoreboard"] {
		t.Errorf("myocyte: imc %g < L1 %g — constant bottleneck missing",
			a.MemoryDetail["imc_miss"], a.MemoryDetail["long_scoreboard"])
	}
	// Normalised stack closes.
	if got := a.Retire + a.Divergence + a.Frontend + a.Backend; math.Abs(got-a.IPCMax) > 1e-6 {
		t.Errorf("stack closure: %g != %g", got, a.IPCMax)
	}
	if res.Overhead() < float64(res.Passes) {
		t.Errorf("overhead %.1f below pass count %d", res.Overhead(), res.Passes)
	}
}

func TestProfilePascalCapsLevel(t *testing.T) {
	spec := GTX1070().WithSMs(4)
	p := NewProfiler(spec, WithLevel(3))
	app, _ := LookupApp("rodinia", "hotspot")
	res, err := p.ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Aggregate
	if a.Tool != "nvprof" {
		t.Errorf("Pascal tool = %s", a.Tool)
	}
	if a.Level != 2 {
		t.Errorf("Pascal analysis level = %d, want 2", a.Level)
	}
	if a.MemoryDetail != nil {
		t.Error("Pascal produced level-3 detail")
	}
}

func TestDynamicSeries(t *testing.T) {
	p := testProfiler(1)
	res, err := p.ProfileApp(context.Background(), SradDynamic())
	if err != nil {
		t.Fatal(err)
	}
	names := res.KernelNames()
	if len(names) != 2 || names[0] != "srad_cuda_1" || names[1] != "srad_cuda_2" {
		t.Fatalf("kernel names = %v", names)
	}
	s1 := res.Series("srad_cuda_1")
	if len(s1) != 100 {
		t.Fatalf("srad_cuda_1 has %d invocations, want 100", len(s1))
	}
	// Phase behaviour: the last quarter must differ measurably from the
	// first quarter (paper Figs. 11-12).
	avg := func(as []*Analysis, f func(*Analysis) float64) float64 {
		var t float64
		for _, a := range as {
			t += f(a)
		}
		return t / float64(len(as))
	}
	early := avg(s1[:25], func(a *Analysis) float64 { return a.Fraction(a.Retire) })
	late := avg(s1[75:], func(a *Analysis) float64 { return a.Fraction(a.Retire) })
	if math.Abs(early-late) < 0.05 {
		t.Errorf("no phase contrast: early retire %.3f vs late %.3f", early, late)
	}
	if res.Series("nope") != nil {
		t.Error("bogus kernel produced a series")
	}
}

func TestProfileAppsParallelDeterministic(t *testing.T) {
	p := testProfiler(2)
	apps := []*App{}
	for _, n := range []string{"hotspot", "nw", "huffman"} {
		a, _ := LookupApp("rodinia", n)
		apps = append(apps, a)
	}
	r1, err := p.ProfileApps(context.Background(), apps)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.ProfileApps(context.Background(), apps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i].App != apps[i].Name {
			t.Errorf("result %d order broken: %s", i, r1[i].App)
		}
		a, b := r1[i].Aggregate, r2[i].Aggregate
		if a.Retire != b.Retire || a.Memory != b.Memory || r1[i].NativeCycles != r2[i].NativeCycles {
			t.Errorf("%s: parallel profiling nondeterministic", r1[i].App)
		}
	}
}

func TestProfileSuiteUnknown(t *testing.T) {
	if _, err := testProfiler(1).ProfileSuite(context.Background(), "nope"); err == nil {
		t.Error("unknown suite accepted")
	}
}

func TestRunNativeFasterThanProfiled(t *testing.T) {
	p := testProfiler(3)
	app, _ := LookupApp("rodinia", "nw")
	native, err := p.RunNative(app)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	if native == 0 {
		t.Fatal("no native cycles")
	}
	// The profiled session's native accounting is the cold-start (flushed)
	// single-pass cost; a plain run keeps caches warm across launches, so
	// the two agree only within a small margin.
	lo, hi := float64(native)*0.95, float64(native)*1.10
	if got := float64(res.NativeCycles); got < lo || got > hi {
		t.Errorf("session native cycles %d far from plain native run %d", res.NativeCycles, native)
	}
	if res.ProfiledCycles <= native {
		t.Error("profiling added no overhead")
	}
}

func TestRawEquationsLeaveResidual(t *testing.T) {
	app, _ := LookupApp("rodinia", "hotspot")
	raw, err := testProfiler(2, WithRawEquations()).ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	a := raw.Aggregate
	if a.Normalized {
		t.Error("raw mode still normalised")
	}
	// Raw eq (8)-(14): FE+BE <= stall (residual lives in unlisted states).
	if a.Frontend+a.Backend > a.Stall+1e-9 {
		t.Errorf("raw FE+BE %g exceeds stall %g", a.Frontend+a.Backend, a.Stall)
	}
}

func TestHWPMMode(t *testing.T) {
	app, _ := LookupApp("rodinia", "hotspot")
	res, err := testProfiler(1, WithHWPM()).ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	smpc, err := testProfiler(1).ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	// Sampled estimate within 2x of full collection for a regular kernel.
	r1, r2 := res.Aggregate.Retire, smpc.Aggregate.Retire
	if r1 < r2/2 || r1 > r2*2 {
		t.Errorf("HWPM retire %g vs SMPC %g", r1, r2)
	}
}

func TestOverheadAboutThirteenX(t *testing.T) {
	// The paper's Fig. 13 headline: level-3 profiling costs ~13x native,
	// with ~8 passes. Allow a generous band on the small test device.
	p := testProfiler(3)
	var ratios []float64
	for _, n := range []string{"hotspot", "huffman", "nw", "streamcluster"} {
		app, _ := LookupApp("rodinia", n)
		res, err := p.ProfileApp(context.Background(), app)
		if err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, res.Overhead())
	}
	var avg float64
	for _, r := range ratios {
		avg += r / float64(len(ratios))
	}
	if avg < 8 || avg > 25 {
		t.Errorf("average overhead %.1fx outside the plausible band [8,25]", avg)
	}
}

func TestWithRooflinePlacement(t *testing.T) {
	app, _ := LookupApp("altis", "maxflops")
	res, err := testProfiler(1, WithRoofline()).ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	if res.Roofline == nil {
		t.Fatal("no roofline attached")
	}
	if res.Roofline.Bound != "compute" {
		t.Errorf("maxflops roofline bound = %s, want compute", res.Roofline.Bound)
	}

	mem, _ := LookupApp("altis", "gups")
	res2, err := testProfiler(1, WithRoofline()).ProfileApp(context.Background(), mem)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Roofline.Bound != "memory" {
		t.Errorf("gups roofline bound = %s, want memory", res2.Roofline.Bound)
	}
	// Without the option, no roofline.
	res3, err := testProfiler(1).ProfileApp(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Roofline != nil {
		t.Error("roofline attached without WithRoofline")
	}
}

func TestWithSamplingFacade(t *testing.T) {
	p := testProfiler(3, WithSampling(10))
	res, err := p.ProfileApp(context.Background(), SradDynamic())
	if err != nil {
		t.Fatal(err)
	}
	full, err := testProfiler(3).ProfileApp(context.Background(), SradDynamic())
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead() >= full.Overhead()/2 {
		t.Errorf("sampling overhead %.1fx not well below full %.1fx",
			res.Overhead(), full.Overhead())
	}
	if len(res.Kernels) != len(full.Kernels) {
		t.Errorf("sampling changed invocation count: %d vs %d",
			len(res.Kernels), len(full.Kernels))
	}
}

// TestSHOCBottleneckAttribution uses SHOC's microbenchmark-grade members as
// an oracle for the Top-Down attribution itself: each app has one sharply
// defined bottleneck by construction, and the analysis must land on it.
func TestSHOCBottleneckAttribution(t *testing.T) {
	p := testProfiler(3)
	profile := func(name string) *Analysis {
		app, ok := LookupApp("shoc", name)
		if !ok {
			t.Fatalf("shoc/%s missing", name)
		}
		res, err := p.ProfileApp(context.Background(), app)
		if err != nil {
			t.Fatal(err)
		}
		return res.Aggregate
	}

	// triad: pure streaming — memory must dominate the degradation.
	if a := profile("triad"); a.Memory < a.Degradation()/2 {
		t.Errorf("triad: memory %.2f below half of degradation %.2f", a.Memory, a.Degradation())
	}
	// md5hash: register-resident integer mixing — retire-led, minimal memory.
	if a := profile("md5hash"); a.Fraction(a.Retire) < 0.5 || a.Memory > a.Retire {
		t.Errorf("md5hash: retire %.2f / memory %.2f not compute-shaped",
			a.Fraction(a.Retire), a.Fraction(a.Memory))
	}
	// scan: barrier-phased — the fetch group (which holds barrier stalls)
	// must be a visible frontend contributor.
	if a := profile("scan"); a.FetchDetail["barrier"] <= 0 {
		t.Error("scan shows no barrier stalls")
	}
	// neuralnet: constant weights — imc_miss must lead its memory detail.
	if a := profile("neuralnet"); a.MemoryDetail["imc_miss"] < a.MemoryDetail["long_scoreboard"] {
		t.Errorf("neuralnet: imc %.3f below L1 %.3f",
			a.MemoryDetail["imc_miss"], a.MemoryDetail["long_scoreboard"])
	}
	// spmv: irregular gathers — long scoreboard leads.
	if a := profile("spmv"); a.MemoryDetail["long_scoreboard"] < a.MemoryDetail["imc_miss"] {
		t.Error("spmv not L1-latency shaped")
	}
	// s3d: transcendental-heavy — the core group must be a major share.
	if a := profile("s3d"); a.Core < a.Degradation()/5 {
		t.Errorf("s3d: core %.2f below a fifth of degradation %.2f", a.Core, a.Degradation())
	}
}

func TestTimelineIntraKernelPhases(t *testing.T) {
	// srad_cuda_1 on the dynamic app: intervals must exist, cover the
	// launch, and carry well-formed analyses.
	p := testProfiler(2)
	app, _ := LookupApp("rodinia", "hotspot")
	points, err := p.Timeline(context.Background(), app, "calculate_temp", 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 3 {
		t.Fatalf("only %d timeline points", len(points))
	}
	for i, pt := range points {
		a := pt.Analysis
		if a.Retire < 0 || a.Retire > a.IPCMax {
			t.Errorf("point %d: retire %g out of range", i, a.Retire)
		}
		if pt.Interval != 200 {
			t.Errorf("point %d: interval %d", i, pt.Interval)
		}
		if i > 0 && pt.StartCycle <= points[i-1].StartCycle {
			t.Errorf("points not ordered at %d", i)
		}
	}
	// Errors surface for unknown kernels and out-of-range invocations.
	if _, err := p.Timeline(context.Background(), app, "nope", 0, 200); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := p.Timeline(context.Background(), app, "calculate_temp", 99, 200); err == nil {
		t.Error("out-of-range invocation accepted")
	}
	if _, err := p.Timeline(context.Background(), app, "calculate_temp", 0, 0); err == nil {
		t.Error("zero interval accepted")
	}
}
